// Benchmarks: one per reproduced table/figure (exercising that experiment's
// computational kernel at a fixed size) plus micro-benchmarks for the core
// algorithm kernels. The full table/figure reports are produced by
// cmd/experiments; these benches track the cost of the underlying machinery.
package prf_test

import (
	"context"
	"math/rand"
	"net/http"
	"testing"

	prf "repro"
	"repro/internal/andxor"
	"repro/internal/benchwork"
	"repro/internal/datagen"
	"repro/internal/dftapprox"
	"repro/internal/engine"
	"repro/internal/poly"
)

// --- Table 1: the five baseline semantics on one dataset. ---

func BenchmarkTable1RankingFunctions(b *testing.B) {
	d := datagen.IIPLike(5000, 1)
	d.SortByScore()
	k := 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = prf.TopK(prf.EScore(d), k)
		_ = prf.TopK(prf.PTh(d, k), k)
		_, _ = prf.URank(d, k)
		_ = prf.ERankRanking(prf.ERank(d)).TopK(k)
		_, _, _ = prf.UTopK(d, k)
	}
}

// --- Figure 4: the four DFT adaptation variants. ---

func BenchmarkFigure4DFTAdaptations(b *testing.B) {
	omega := dftapprox.Step(1000)
	for i := 0; i < b.N; i++ {
		for _, opt := range dftapprox.VariantOptions(20) {
			_ = dftapprox.Approximate(omega, 1000, opt)
		}
	}
}

// --- Figure 5: approximating the three weight-function shapes. ---

func BenchmarkFigure5ApproxCoefficients(b *testing.B) {
	n := 1000
	funcs := []func(int) float64{
		dftapprox.Step(n), dftapprox.LinearDecay(n), dftapprox.Smooth(n),
	}
	for i := 0; i < b.N; i++ {
		for _, f := range funcs {
			_ = dftapprox.Approximate(f, n, dftapprox.DefaultOptions(50))
		}
	}
}

// --- Figure 6: PRFe curves over an α grid. ---

func BenchmarkFigure6PRFeCurves(b *testing.B) {
	d, _ := prf.NewDataset(
		[]float64{100, 80, 50, 30}, []float64{0.4, 0.6, 0.5, 0.9})
	alphas := make([]float64, 100)
	for i := range alphas {
		alphas[i] = float64(i+1) / 100
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = prf.PRFeCurve(d, alphas)
	}
}

// --- Figure 7: the PRFe spectrum sweep against one reference ranking. ---

func BenchmarkFigure7PRFeSpectrum(b *testing.B) {
	d := datagen.IIPLike(5000, 2)
	d.SortByScore()
	ref := prf.TopK(prf.PTh(d, 100), 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, alpha := range []float64{0.5, 0.9, 0.99, 0.999, 0.9999} {
			r := prf.RankPRFe(d, alpha)
			_ = prf.KendallTopK(r.TopK(100), ref, 100)
		}
	}
}

// --- Figure 8: PT(h) by a 20-term PRFe combination. ---

func BenchmarkFigure8ApproxPTh(b *testing.B) {
	d := datagen.IIPLike(10000, 3)
	d.SortByScore()
	terms := prf.ApproxPRFeTerms(
		prf.ApproximateWeights(prf.StepWeights(1000), 1000, prf.DefaultApproxOptions(20)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		combo := prf.PRFeCombo(d, terms)
		_ = prf.RankByValue(prf.RealParts(combo))
	}
}

// --- Figure 9: learning α from a sample. ---

func BenchmarkFigure9Learning(b *testing.B) {
	d := datagen.IIPLike(500, 4)
	user := prf.RankPRFe(d, 0.95)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = prf.LearnAlpha(d, user, 100, 8)
	}
}

// --- Figure 10: correlation-aware vs independence-assuming PRFe. ---

func BenchmarkFigure10Correlations(b *testing.B) {
	tree, err := datagen.SynMED(2000, 5)
	if err != nil {
		b.Fatal(err)
	}
	indep := tree.Dataset()
	indep.SortByScore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aware := prf.TreeRankPRFe(tree, 0.9)
		naive := prf.RankPRFe(indep, 0.9)
		_ = prf.KendallTopK(aware.TopK(100), naive.TopK(100), 100)
	}
}

// --- Figure 11: the individual timing kernels. ---

func BenchmarkFigure11PRFe100k(b *testing.B) {
	d := datagen.IIPLike(100000, 6)
	d.SortByScore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = prf.PRFeLog(d, complex(0.95, 0))
	}
}

func BenchmarkFigure11PTh100k(b *testing.B) {
	d := datagen.IIPLike(100000, 6)
	d.SortByScore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = prf.PTh(d, 100)
	}
}

func BenchmarkFigure11URank100k(b *testing.B) {
	d := datagen.IIPLike(100000, 6)
	d.SortByScore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = prf.URank(d, 100)
	}
}

func BenchmarkFigure11ERank100k(b *testing.B) {
	d := datagen.IIPLike(100000, 6)
	d.SortByScore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = prf.ERank(d)
	}
}

func BenchmarkFigure11TreePRFe20k(b *testing.B) {
	tree, err := datagen.SynHIGH(20000, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = prf.TreePRFe(tree, complex(0.95, 0))
	}
}

func BenchmarkFigure11TreePTh(b *testing.B) {
	tree, err := datagen.SynXOR(1000, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = prf.TreePTh(tree, 100)
	}
}

// --- Table 3: incremental vs naive tree PRFe (the headline asymptotic win).

func BenchmarkTable3IncrementalTreePRFe(b *testing.B) {
	tree, err := datagen.SynMED(2000, 9)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = prf.TreePRFe(tree, complex(0.9, 0))
	}
}

func BenchmarkTable3NaiveTreePRFe(b *testing.B) {
	tree, err := datagen.SynMED(2000, 9)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = treePRFeNaive(tree)
	}
}

// --- Core kernels. ---

func BenchmarkRankDistribution2k(b *testing.B) {
	d := datagen.SynIND(2000, 10)
	d.SortByScore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = prf.RankDistribution(d)
	}
}

func BenchmarkJunctionRankDistribution(b *testing.B) {
	// A 14-variable chain network: treewidth 1.
	scores := make([]float64, 14)
	var factors []prf.MarkovFactor
	for v := 0; v < 14; v++ {
		scores[v] = float64(14 - v)
		factors = append(factors, prf.MarkovFactor{Vars: []int{v}, Table: []float64{0.5, 0.5}})
		if v+1 < 14 {
			factors = append(factors, prf.MarkovFactor{Vars: []int{v, v + 1}, Table: []float64{2, 1, 1, 2}})
		}
	}
	net, err := prf.NewMarkovNetwork(scores, factors)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prf.NetworkRankDistribution(net); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKendallTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	k := 1000
	a := make(prf.Ranking, k)
	c := make(prf.Ranking, k)
	pa, pc := rng.Perm(3*k), rng.Perm(3*k)
	for i := 0; i < k; i++ {
		a[i] = prf.TupleID(pa[i])
		c[i] = prf.TupleID(pc[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = prf.KendallTopK(a, c, k)
	}
}

func BenchmarkUTopK100k(b *testing.B) {
	d := datagen.IIPLike(100000, 12)
	d.SortByScore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = prf.UTopK(d, 100)
	}
}

func BenchmarkKSelection(b *testing.B) {
	d := datagen.IIPLike(10000, 13)
	d.SortByScore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = prf.KSelection(d, 100)
	}
}

// treePRFeNaive calls the O(n²) re-evaluation baseline (not part of the
// public facade; the ablation compares it against Algorithm 3).
func treePRFeNaive(t *prf.Tree) []complex128 {
	return andxor.PRFeValuesNaive(t, complex(0.9, 0))
}

// --- Ablation benches for the design choices DESIGN.md calls out. ---

// Divide-and-conquer multi-product vs naive left-to-right (Appendix B.1).
func BenchmarkMultiProductDivideConquer(b *testing.B) {
	ps := make([]polyT, 512)
	for i := range ps {
		ps[i] = polyT{1, 0.5}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = polyMultiProduct(ps)
	}
}

func BenchmarkMultiProductNaive(b *testing.B) {
	ps := make([]polyT, 512)
	for i := range ps {
		ps[i] = polyT{1, 0.5}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = polyMultiProductNaive(ps)
	}
}

// Log-space PRFe vs the direct complex product (the numerical-robustness
// path costs within a small factor of the raw one).
func BenchmarkPRFeLog100k(b *testing.B) {
	d := datagen.IIPLike(100000, 21)
	d.SortByScore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = prf.PRFeLog(d, complex(0.5, 0))
	}
}

func BenchmarkPRFeDirect100k(b *testing.B) {
	d := datagen.IIPLike(100000, 21)
	d.SortByScore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = prf.PRFe(d, complex(0.5, 0))
	}
}

// Specialized §4.4 uncertain-scores sweep vs the generic tree algorithm.
func BenchmarkUncertainScoresFast(b *testing.B) {
	groups := benchGroups(800)
	omega := func(_ prf.Tuple, rank int) float64 { return 1 / float64(rank) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prf.PRFUncertainScores(groups, omega); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUncertainScoresTree(b *testing.B) {
	groups := benchGroups(800)
	omega := func(_ prf.Tuple, rank int) float64 { return 1 / float64(rank) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := andxor.PRFUncertain(groups, omega); err != nil {
			b.Fatal(err)
		}
	}
}

func benchGroups(n int) [][]prf.Alternative {
	rng := rand.New(rand.NewSource(5))
	groups := make([][]prf.Alternative, n)
	for g := range groups {
		na := 1 + rng.Intn(3)
		alts := make([]prf.Alternative, na)
		rem := rng.Float64()
		for i := range alts {
			p := rem / float64(na)
			alts[i] = prf.Alternative{Score: rng.Float64() * 1000, Prob: p}
		}
		groups[g] = alts
	}
	return groups
}

// --- Prepared-evaluation engine: repeated-query workloads (BENCH_1). ---
//
// The workload bodies live in internal/benchwork and are shared with
// cmd/bench, so the BENCH_N.json trajectory measures exactly these benches.

// BenchmarkPreparedVsOneShot measures an α-spectrum value sweep (PRFeLog at
// 16 grid points, the Figure 11 kernel) at n=10⁴. The one-shot path
// rebuilds and re-sorts a view per query; the prepared path sorts once and
// then runs pure scans; the parallel path additionally fans the sweep across
// GOMAXPROCS goroutines. "ranked-*" are the same sweeps producing full
// rankings (adds an O(n log n) sort-by-value per grid point to both paths).
func BenchmarkPreparedVsOneShot(b *testing.B) {
	d := benchwork.Dataset(10000)
	alphas, calphas := benchwork.Grid(16)
	b.Run("oneshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.SpectrumOneShot(d, calphas)
		}
	})
	b.Run("prepared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.SpectrumPrepared(d, calphas)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.SpectrumParallel(d, calphas)
		}
	})
	b.Run("ranked-oneshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.RankedOneShot(d, alphas)
		}
	})
	b.Run("ranked-prepared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.RankedPrepared(d, alphas)
		}
	})
	b.Run("ranked-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.RankedParallel(d, alphas)
		}
	})
}

// BenchmarkPRFeComboFused compares the pre-fusion multi-pass PRFeCombo (one
// scan of the data per term) against the fused single-pass kernel and the
// parallel-by-term variant, at n=10⁴ with a 20-term PT(1000) approximation.
func BenchmarkPRFeComboFused(b *testing.B) {
	d := benchwork.Dataset(10000)
	terms := benchwork.Terms(20)
	v := prf.Prepare(d)
	b.Run("multipass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.ComboMultiPass(v, terms)
		}
	})
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.ComboFused(v, terms)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.ComboParallel(v, terms)
		}
	})
	b.Run("oneshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.ComboOneShot(d, terms)
		}
	})
}

// BenchmarkParallelSpectrum isolates the ranked-sweep strategies over one
// shared prepared view, 32-point sweep: serial re-sort per α, per-α
// parallel fan-out, and the kinetic sweep (sort once, advance by
// Theorem 4 crossings — what RankPRFeBatch picks for a monotone grid).
func BenchmarkParallelSpectrum(b *testing.B) {
	d := benchwork.Dataset(10000)
	v := prf.Prepare(d)
	alphas, _ := benchwork.Grid(32)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, a := range alphas {
				_ = v.RankPRFe(a)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = v.RankPRFeBatchParallel(alphas)
		}
	})
	b.Run("kinetic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = v.RankPRFeSweep(context.Background(), alphas)
		}
	})
}

// BenchmarkCrossingPoint compares the Theorem 4 crossing-point solvers on a
// fixed mixed-span pair set: the incremental Newton/secant solver with the
// hoisted α-independent terms vs the original full-pass bisection.
func BenchmarkCrossingPoint(b *testing.B) {
	d := benchwork.Dataset(10000)
	v := prf.Prepare(d)
	pairs := benchwork.CrossingPairs(10000, 64)
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.CrossingIncremental(v, pairs)
		}
	})
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.CrossingReference(v, pairs)
		}
	})
}

// BenchmarkCorrelatedPRFe covers the correlated-data trajectory: PRFe on
// and/xor trees (x-tuple and deep-correlation shapes) and the Markov-chain
// partial-sum DP.
func BenchmarkCorrelatedPRFe(b *testing.B) {
	xorTree := benchwork.XTupleTree(10000)
	deepTree := benchwork.DeepTree(10000)
	chain := benchwork.MarkovChain(200)
	b.Run("andxor-xor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.TreePRFe(xorTree)
		}
	})
	b.Run("andxor-high", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.TreePRFe(deepTree)
		}
	})
	b.Run("junction-chain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.ChainPRFe(chain)
		}
	})
	b.Run("junction-chain-dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.ChainPRFeDP(chain)
		}
	})
}

// BenchmarkCorrelatedPrepared covers the PR 3 prepared engine for correlated
// data: α sweeps and term combinations on and/xor trees via PreparedTree
// (sort + evaluation state amortized), the Markov-chain product-tree sweep,
// and the junction-tree prepared path (build + DP once, fold per α).
func BenchmarkCorrelatedPrepared(b *testing.B) {
	xorTree := benchwork.XTupleTree(10000)
	preparedXor := benchwork.PrepareTree(xorTree)
	chain := benchwork.MarkovChain(200)
	net := benchwork.ChainNetwork(benchwork.MarkovChain(100))
	_, calphas := benchwork.Grid(16)
	_, netCalphas := benchwork.Grid(8)
	terms := benchwork.Terms(20)
	b.Run("andxor-sweep-oneshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.TreeSweepOneShot(xorTree, calphas)
		}
	})
	b.Run("andxor-sweep-prepared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.TreeSweepPrepared(xorTree, calphas)
		}
	})
	b.Run("andxor-combo-prepared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.TreeComboPrepared(preparedXor, terms)
		}
	})
	b.Run("chain-sweep-prepared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.ChainSweepPrepared(chain, calphas)
		}
	})
	b.Run("network-sweep-oneshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.NetworkSweepOneShot(net, netCalphas)
		}
	})
	b.Run("network-sweep-prepared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.NetworkSweepPrepared(net, netCalphas)
		}
	})
}

// BenchmarkDashboard measures the PR 5 engine-level result cache on the
// repeated-dashboard workload: one op is a full dashboard refresh (the
// panel query mix plus a ranked α sweep), uncached vs answered from the
// canonical-query cache (warmed; steady-state hits).
func BenchmarkDashboard(b *testing.B) {
	e := benchwork.NewEngine(prf.Prepare(benchwork.Dataset(10000)))
	qs := benchwork.DashboardQueries(10)
	sweep := benchwork.DashboardSweep(16)
	ce := benchwork.NewCachedEngine(e, 0)
	benchwork.CachedDashboard(ce, qs, sweep) // warm
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.EngineDashboard(e, qs, sweep)
		}
	})
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.CachedDashboard(ce, qs, sweep)
		}
	})
}

// BenchmarkServeRoundTrip measures full HTTP round trips through the
// internal/serve front end (PR 5): a PRFe top-k panel against an uncached
// and a cached (warmed) dataset.
func BenchmarkServeRoundTrip(b *testing.B) {
	v := prf.Prepare(benchwork.Dataset(10000))
	client := &http.Client{}
	body := benchwork.ServeRankBody("bench", 0.95, 10)
	uncached := benchwork.StartServeFixture(map[string]*engine.Engine{"bench": benchwork.NewEngine(v)}, -1)
	defer uncached.Close()
	cached := benchwork.StartServeFixture(map[string]*engine.Engine{"bench": benchwork.NewEngine(v)}, 0)
	defer cached.Close()
	benchwork.ServeRoundTrip(client, cached.URL+"/rank", body) // warm
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.ServeRoundTrip(client, uncached.URL+"/rank", body)
		}
	})
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchwork.ServeRoundTrip(client, cached.URL+"/rank", body)
		}
	})
}

// BenchmarkExactSpectrum measures the exact kinetic spectrum enumeration
// (every crossing event popped and counted) against the sampled grid count
// on a dataset small enough for the full event walk.
func BenchmarkExactSpectrum(b *testing.B) {
	d := benchwork.Dataset(300)
	v := prf.Prepare(d)
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = v.SpectrumSize()
		}
	})
	b.Run("grid64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = v.SpectrumSizeGrid(64)
		}
	})
}

// Local aliases keeping the poly ablation bench self-contained.
type polyT = poly.Poly

func polyMultiProduct(ps []polyT) polyT      { return poly.MultiProduct(ps) }
func polyMultiProductNaive(ps []polyT) polyT { return poly.MultiProductNaive(ps) }
