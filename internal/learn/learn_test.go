package learn

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/andxor"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/junction"
	"repro/internal/pdb"
	"repro/internal/rankdist"
)

func randDataset(rng *rand.Rand, n int) *pdb.Dataset {
	scores := make([]float64, n)
	probs := make([]float64, n)
	for i := 0; i < n; i++ {
		scores[i] = rng.Float64() * 10000
		probs[i] = rng.Float64()
	}
	return pdb.MustDataset(scores, probs)
}

// When the user ranking IS a PRFe ranking, LearnAlpha must recover it
// (distance ≈ 0), as the paper reports ("the value of α can be learned
// perfectly").
func TestLearnAlphaRecoversPRFe(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := randDataset(rng, 200)
	for _, trueAlpha := range []float64{0.3, 0.8, 0.95} {
		user := core.RankPRFe(d, trueAlpha)
		res := LearnAlpha(d, user, 50, 8)
		if res.Distance > 1e-9 {
			t.Fatalf("α*=%v: learned α=%v with distance %v, want 0", trueAlpha, res.Alpha, res.Distance)
		}
	}
}

// PT(h) rankings are approximable by PRFe with small distance (Figure 9(i)).
func TestLearnAlphaApproximatesPTh(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := randDataset(rng, 300)
	user := pdb.RankByValue(core.PTh(d, 50))
	res := LearnAlpha(d, user, 50, 8)
	if res.Distance > 0.15 {
		t.Fatalf("PT(50): learned α=%v distance %v, want < 0.15", res.Alpha, res.Distance)
	}
}

// The refinement search must be no worse than a coarse grid scan (the
// uni-valley observation makes it near-optimal).
func TestLearnAlphaBeatsGridScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := randDataset(rng, 150)
	user := pdb.RankByValue(baselines.EScore(d))
	res := LearnAlpha(d, user, 30, 8)
	_, dists := GridScanAlpha(d, user, 30, 40)
	gridBest := math.Inf(1)
	for _, v := range dists {
		if v < gridBest {
			gridBest = v
		}
	}
	if res.Distance > gridBest+1e-9 {
		t.Fatalf("refinement found %v, grid scan found %v", res.Distance, gridBest)
	}
}

func TestLearnAlphaDefaultsAndBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := randDataset(rng, 50)
	user := core.RankPRFe(d, 0.5)
	res := LearnAlpha(d, user, 0, 0) // defaults: k=len(user), iters=6
	if res.Evaluations == 0 || res.Evaluations > 2+9*6 {
		t.Fatalf("evaluations = %d", res.Evaluations)
	}
	if res.Alpha < 0 || res.Alpha > 1 {
		t.Fatalf("alpha out of range: %v", res.Alpha)
	}
}

// LearnOmega must recover a PT(h)-style ranking from preferences.
func TestLearnOmegaRecoversPTh(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := randDataset(rng, 80)
	h := 10
	user := pdb.RankByValue(core.PTh(d, h))
	w := LearnOmega(d, user, OmegaOptions{H: 20, Iters: 800})
	if w == nil {
		t.Fatal("nil weights")
	}
	learned := RankWithOmega(d, w)
	dist := rankdist.KendallTopK(user.TopK(20), learned.TopK(20), 20)
	if dist > 0.2 {
		t.Fatalf("learned PT(%d) ranking at distance %v, want < 0.2", h, dist)
	}
}

// LearnOmega must recover a PRFe ranking (Figure 9(ii): "PRF-e can be
// learned very well from a small size sample").
func TestLearnOmegaRecoversPRFe(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := randDataset(rng, 80)
	user := core.RankPRFe(d, 0.9)
	w := LearnOmega(d, user, OmegaOptions{H: 30, Iters: 800})
	learned := RankWithOmega(d, w)
	dist := rankdist.KendallTopK(user.TopK(20), learned.TopK(20), 20)
	if dist > 0.25 {
		t.Fatalf("learned PRFe ranking at distance %v, want < 0.25", dist)
	}
}

func TestLearnOmegaDegenerate(t *testing.T) {
	if w := LearnOmega(pdb.MustDataset(nil, nil), nil, OmegaOptions{}); w != nil {
		t.Fatalf("empty sample: %v", w)
	}
	d := pdb.MustDataset([]float64{1}, []float64{0.5})
	if w := LearnOmega(d, pdb.Ranking{0}, OmegaOptions{}); w != nil {
		t.Fatalf("single-tuple ranking has no pairs: %v", w)
	}
}

func TestGridScanAlphaShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := randDataset(rng, 60)
	user := core.RankPRFe(d, 0.7)
	// gridSize 10 puts the true α=0.7 exactly on the grid (7/10).
	alphas, dists := GridScanAlpha(d, user, 20, 10)
	if len(alphas) != 10 || len(dists) != 10 {
		t.Fatalf("lengths %d/%d", len(alphas), len(dists))
	}
	minDist := math.Inf(1)
	for _, v := range dists {
		if v < minDist {
			minDist = v
		}
	}
	if minDist > 1e-9 {
		t.Fatalf("grid scan should hit the true α: min distance %v", minDist)
	}
}

// Learned PRFω weights should give *decreasing importance* to deeper ranks
// when trained on a decreasing-weight ranking (qualitative check on the
// learned shape: mass concentrates in the early coordinates).
func TestLearnOmegaWeightMassConcentratesEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := randDataset(rng, 70)
	user := pdb.RankByValue(core.PTh(d, 5))
	w := LearnOmega(d, user, OmegaOptions{H: 40, Iters: 800})
	var early, late float64
	for i, v := range w {
		if i < 10 {
			early += math.Abs(v)
		} else if i >= 30 {
			late += math.Abs(v)
		}
	}
	if !(early > late) {
		t.Fatalf("weight mass should concentrate early: early %v vs late %v", early, late)
	}
}

// The two-stage combo learner must approximate a PT(h)-style preference and
// scale it to a larger dataset at O(n·L) cost.
func TestLearnPRFeComboRecoversPTh(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sample := randDataset(rng, 120)
	h := 15
	user := pdb.RankByValue(core.PTh(sample, h))
	terms := LearnPRFeCombo(sample, user, ComboOptions{
		Omega: OmegaOptions{H: 30, Iters: 600},
		L:     20,
	})
	if len(terms) == 0 {
		t.Fatal("no terms learned")
	}
	// Apply to a fresh, larger dataset drawn from the same distribution.
	big := randDataset(rng, 600)
	truth := pdb.RankByValue(core.PTh(big, h))
	learned := RankWithCombo(big, terms)
	dist := rankdist.KendallTopK(truth.TopK(30), learned.TopK(30), 30)
	if dist > 0.35 {
		t.Fatalf("combo-learned ranking at distance %v", dist)
	}
}

func TestLearnPRFeComboDegenerate(t *testing.T) {
	if terms := LearnPRFeCombo(pdb.MustDataset(nil, nil), nil, ComboOptions{}); terms != nil {
		t.Fatalf("empty sample: %v", terms)
	}
}

// When the user ranking IS a tree PRFe ranking, LearnAlphaTree must recover
// it on the correlated sample — the prepared-tree arm of the α search.
func TestLearnAlphaTreeRecoversPRFe(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	groups := make([][]andxor.Alternative, 60)
	for g := range groups {
		alts := make([]andxor.Alternative, 1+rng.Intn(3))
		rem := 1.0
		for i := range alts {
			p := rng.Float64() * rem
			rem -= p
			alts[i] = andxor.Alternative{Score: rng.Float64() * 1000, Prob: p}
		}
		groups[g] = alts
	}
	sample, err := andxor.XTuples(groups)
	if err != nil {
		t.Fatal(err)
	}
	for _, trueAlpha := range []float64{0.4, 0.9} {
		user := andxor.RankPRFe(sample, trueAlpha)
		res := LearnAlphaTree(sample, user, 30, 8)
		if res.Distance > 1e-9 {
			t.Fatalf("α*=%v: learned α=%v with distance %v, want 0", trueAlpha, res.Alpha, res.Distance)
		}
	}
}

// TestLearnAlphaRankerAllBackends runs the generic α search against every
// unified-engine backend: when the user ranking is that backend's own
// PRFe(α*) ranking, the search must recover a near-zero distance.
func TestLearnAlphaRankerAllBackends(t *testing.T) {
	chain := datagen.MarkovChainLike(40, 11)
	net, err := chain.Network()
	if err != nil {
		t.Fatal(err)
	}
	pn, err := junction.PrepareNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := datagen.SynXOR(80, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	backends := map[string]engine.Ranker{
		"independent": core.Prepare(randDataset(rng, 120)),
		"tree":        andxor.PrepareTree(tree),
		"network":     pn,
		"chain":       junction.PrepareChain(chain),
	}
	ctx := context.Background()
	for name, r := range backends {
		user, err := r.QueryRankPRFe(ctx, 0.85)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := LearnAlphaRanker(ctx, r, user, 10, 6)
		if err != nil {
			t.Fatalf("%s: LearnAlphaRanker: %v", name, err)
		}
		if res.Distance > 0.05 {
			t.Errorf("%s: learned α=%v distance %v, want ≈0", name, res.Alpha, res.Distance)
		}
	}
}

// TestLearnAlphaRankerValidatesAndCancels: malformed user rankings error
// instead of panicking, and a canceled context aborts the search.
func TestLearnAlphaRankerValidatesAndCancels(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	r := core.Prepare(randDataset(rng, 50))
	ctx := context.Background()
	if _, err := LearnAlphaRanker(ctx, r, pdb.Ranking{1, 1}, 2, 3); err == nil {
		t.Error("duplicate user IDs must error")
	}
	if _, err := LearnAlphaRanker(ctx, r, pdb.Ranking{1, 99}, 2, 3); err == nil {
		t.Error("out-of-range user ID must error")
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	user, _ := r.QueryRankPRFe(ctx, 0.5)
	if _, err := LearnAlphaRanker(canceled, r, user, 5, 3); err == nil {
		t.Error("canceled context must abort the search")
	}
	if _, _, err := GridScanAlphaRanker(canceled, r, user, 5, 16); err == nil {
		t.Error("canceled context must abort the grid scan")
	}
}

// TestLearnAlphaEmptyUserRanking pins the legacy degenerate-input contract:
// an empty user ranking (k defaults to 0) must return normally, not panic —
// top-0 queries are valid and every distance is 0.
func TestLearnAlphaEmptyUserRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d := randDataset(rng, 30)
	res := LearnAlpha(d, pdb.Ranking{}, 0, 2)
	if res.Distance != 0 {
		t.Fatalf("empty user ranking: distance %v, want 0", res.Distance)
	}
}
