// Package learn implements Section 5.2: learning the parameters of the
// ranking functions from user preferences.
//
// The features of a tuple are its positional probabilities Pr(r(t)=i), which
// cannot be computed per tuple in isolation — they depend on the whole
// relation — so, exactly as the paper prescribes, learning operates on a
// *sample* of the relation ranked by the user, with features computed as if
// the sample were the entire relation.
//
//   - LearnAlpha fits the single parameter of PRFe(α) with the paper's
//     recursive 9-point grid-refinement search, minimizing the normalized
//     Kendall distance to the user's ranking. The prior ranking functions
//     all exhibit a uni-valley distance profile (Section 8.1), so the
//     refinement converges to the global optimum in practice.
//   - LearnOmega fits a PRFω(h) weight vector with an L2-regularized
//     pairwise hinge loss — the RankSVM objective the paper optimizes with
//     SVM-light — minimized by deterministic subgradient descent
//     (stdlib-only substitute; see DESIGN.md §6).
package learn

import (
	"context"
	"fmt"
	"math"

	"repro/internal/andxor"
	"repro/internal/core"
	"repro/internal/dftapprox"
	"repro/internal/engine"
	"repro/internal/pdb"
	"repro/internal/rankdist"
)

// AlphaResult is the outcome of LearnAlpha.
type AlphaResult struct {
	// Alpha is the fitted PRFe parameter in [0, 1].
	Alpha float64
	// Distance is the normalized Kendall top-k distance between the user
	// ranking and PRFe(Alpha) on the sample.
	Distance float64
	// Evaluations counts ranking evaluations spent by the search.
	Evaluations int
}

// LearnAlpha fits α by recursive grid refinement on [0,1] (Section 5.2): at
// each of iters rounds the current interval is probed at nine interior
// points, and the interval shrinks to the two grid cells around the best
// probe. k is the top-k length used by the Kendall distance (defaults to the
// user ranking's length).
func LearnAlpha(sample *pdb.Dataset, user pdb.Ranking, k, iters int) AlphaResult {
	// Sort once; the search evaluates many α — each refinement round's nine
	// ascending probes are a monotone grid, so one kinetic sweep answers the
	// whole round off a single sort instead of nine independent re-sorts.
	//lint:allow ctxflow legacy ctx-free wrapper; callers needing deadlines use LearnAlphaRanker directly
	return mustAlpha(LearnAlphaRanker(context.Background(), core.Prepare(sample), user, k, iters))
}

// LearnAlphaTree fits α from a user-ranked sample of *correlated* data: the
// same recursive grid refinement as LearnAlpha, with every candidate ranking
// evaluated by the incremental and/xor Algorithm 3 on one shared
// PreparedTree — the tree is indexed once and each refinement round's
// nine-point grid runs as one parallel batch.
func LearnAlphaTree(sample *andxor.Tree, user pdb.Ranking, k, iters int) AlphaResult {
	//lint:allow ctxflow legacy ctx-free wrapper; callers needing deadlines use LearnAlphaRanker directly
	return mustAlpha(LearnAlphaRanker(context.Background(), andxor.PrepareTree(sample), user, k, iters))
}

// mustAlpha adapts the error-returning generic search to the legacy
// panicking wrappers (which accept only in-process data and a background
// context, so an error means caller misuse exactly as before).
func mustAlpha(res AlphaResult, err error) AlphaResult {
	if err != nil {
		panic(err)
	}
	return res
}

// LearnAlphaRanker is the α-learning search over any unified-engine backend
// (core.Prepared, andxor.PreparedTree, junction.PreparedNetwork,
// junction.PreparedChain): one generic recursive grid refinement replaces
// the former per-backend specializations. Every refinement round's
// nine-point probe grid runs as one batch through the backend's fastest
// sweep kernel, the context aborts long searches promptly, and a malformed
// user ranking (duplicate or out-of-range IDs) surfaces as an error.
func LearnAlphaRanker(ctx context.Context, r engine.Ranker, user pdb.Ranking, k, iters int) (AlphaResult, error) {
	if err := pdb.CheckRankingIDs(user, r.Len()); err != nil {
		return AlphaResult{}, fmt.Errorf("learn: invalid user ranking: %w", err)
	}
	if k <= 0 {
		k = len(user)
	}
	if iters <= 0 {
		iters = 6
	}
	evals := 0
	userTop := user.TopK(k)
	dist := func(alpha float64) (float64, error) {
		evals++
		rk, err := r.QueryRankPRFe(ctx, alpha)
		if err != nil {
			return 0, err
		}
		return rankdist.KendallTopK(userTop, rk.TopK(k), k), nil
	}
	lo, hi := 0.0, 1.0
	bestAlpha := 1.0
	bestDist, err := dist(1)
	if err != nil {
		return AlphaResult{}, err
	}
	if d0, err := dist(1e-9); err != nil {
		return AlphaResult{}, err
	} else if d0 < bestDist {
		bestAlpha, bestDist = 1e-9, d0
	}
	probes := make([]float64, 9)
	for it := 0; it < iters; it++ {
		step := (hi - lo) / 10
		if step < 1e-12 {
			break
		}
		for i := range probes {
			probes[i] = lo + float64(i+1)*step
		}
		tops, err := r.QueryTopKPRFeBatch(ctx, probes, k)
		if err != nil {
			return AlphaResult{}, err
		}
		evals += len(probes)
		bestI := 0
		bestLocal := math.Inf(1)
		for i, top := range tops {
			if d := rankdist.KendallTopK(userTop, top, k); d < bestLocal {
				bestLocal, bestI = d, i+1
			}
		}
		a := lo + float64(bestI)*step
		if bestLocal < bestDist {
			bestDist, bestAlpha = bestLocal, a
		}
		newLo := math.Max(lo, lo+float64(bestI-1)*step)
		newHi := math.Min(hi, lo+float64(bestI+1)*step)
		lo, hi = newLo, newHi
	}
	return AlphaResult{Alpha: bestAlpha, Distance: bestDist, Evaluations: evals}, nil
}

// OmegaOptions configures LearnOmega.
type OmegaOptions struct {
	// H is the number of positional-probability features (weights learned
	// for ranks 1..H). Defaults to the sample size.
	H int
	// Lambda is the L2 regularization strength. Defaults to 1e-4.
	Lambda float64
	// Iters is the number of subgradient steps. Defaults to 500.
	Iters int
}

// LearnOmega fits a PRFω(h) weight vector from the user's ranking of the
// sample. Preference pairs are all ordered pairs of the user ranking
// (tuples the user ranked higher should score higher); the optimizer
// minimizes the RankSVM objective
//
//	λ‖w‖² + (1/|P|)·Σ_{(a,b)∈P} max(0, 1 − w·(x_a − x_b))
//
// over feature vectors x_t = (Pr(r(t)=1), …, Pr(r(t)=H)). The returned
// vector plugs straight into core.PRFOmega.
func LearnOmega(sample *pdb.Dataset, user pdb.Ranking, opts OmegaOptions) []float64 {
	n := sample.Len()
	if n == 0 || len(user) < 2 {
		return nil
	}
	h := opts.H
	if h <= 0 || h > n {
		h = n
	}
	lambda := opts.Lambda
	if lambda <= 0 {
		lambda = 1e-4
	}
	iters := opts.Iters
	if iters <= 0 {
		iters = 500
	}

	// Features: x_t[i] = Pr(r(t) = i+1) computed on the sample alone.
	rd := core.Prepare(sample).RankDistributionTrunc(h)
	feat := make([][]float64, n)
	for id := 0; id < n; id++ {
		row := make([]float64, h)
		copy(row, rd.Dist[id])
		feat[id] = row
	}

	// Difference vectors for every user-ordered pair (a above b).
	type pair struct{ a, b pdb.TupleID }
	var pairs []pair
	for i := 0; i < len(user); i++ {
		for j := i + 1; j < len(user); j++ {
			pairs = append(pairs, pair{user[i], user[j]})
		}
	}
	if len(pairs) == 0 {
		return nil
	}

	w := make([]float64, h)
	diff := make([]float64, h)
	for t := 1; t <= iters; t++ {
		// Full subgradient: λ·w minus the mean of violated differences.
		grad := make([]float64, h)
		for i := range w {
			grad[i] = lambda * w[i]
		}
		inv := 1 / float64(len(pairs))
		for _, p := range pairs {
			fa, fb := feat[p.a], feat[p.b]
			var margin float64
			for i := 0; i < h; i++ {
				diff[i] = fa[i] - fb[i]
				margin += w[i] * diff[i]
			}
			if margin < 1 {
				for i := 0; i < h; i++ {
					grad[i] -= diff[i] * inv
				}
			}
		}
		lr := 1 / (lambda * float64(t+100))
		for i := range w {
			w[i] -= lr * grad[i]
		}
	}
	return w
}

// RankWithOmega ranks a dataset with a learned weight vector (convenience
// wrapper over core.PRFOmega).
func RankWithOmega(d *pdb.Dataset, w []float64) pdb.Ranking {
	return pdb.RankByValue(core.PRFOmega(d, w))
}

// GridScanAlpha evaluates the Kendall distance on a uniform α grid — the
// exhaustive reference LearnAlpha is checked against, and the data series
// behind the Figure 7-style distance-vs-α curves.
func GridScanAlpha(sample *pdb.Dataset, user pdb.Ranking, k, gridSize int) (alphas, dists []float64) {
	//lint:allow ctxflow legacy ctx-free wrapper; callers needing deadlines use GridScanAlphaRanker directly
	alphas, dists, err := GridScanAlphaRanker(context.Background(), core.Prepare(sample), user, k, gridSize)
	if err != nil {
		//lint:allow errdiscipline legacy ctx-free wrapper: with in-process data and a Background ctx an error means caller misuse, matching mustAlpha
		panic(err)
	}
	return alphas, dists
}

// GridScanAlphaRanker is GridScanAlpha over any unified-engine backend: the
// monotone grid rides the backend's fastest batch kernel (the kinetic sweep
// on independent data — sort once, advance by crossings), and only the
// top-k prefixes materialize.
func GridScanAlphaRanker(ctx context.Context, r engine.Ranker, user pdb.Ranking, k, gridSize int) (alphas, dists []float64, err error) {
	if err := pdb.CheckRankingIDs(user, r.Len()); err != nil {
		return nil, nil, fmt.Errorf("learn: invalid user ranking: %w", err)
	}
	if k <= 0 {
		k = len(user)
	}
	if gridSize < 2 {
		gridSize = 2
	}
	alphas = make([]float64, gridSize)
	dists = make([]float64, gridSize)
	for i := 0; i < gridSize; i++ {
		alphas[i] = float64(i+1) / float64(gridSize)
	}
	tops, err := r.QueryTopKPRFeBatch(ctx, alphas, k)
	if err != nil {
		return nil, nil, err
	}
	userTop := user.TopK(k)
	for i, top := range tops {
		dists[i] = rankdist.KendallTopK(userTop, top, k)
	}
	return alphas, dists, nil
}

// ComboOptions configures LearnPRFeCombo.
type ComboOptions struct {
	// Omega configures the inner PRFω learning step.
	Omega OmegaOptions
	// L is the number of PRFe terms used to approximate the learned weights.
	L int
}

// LearnPRFeCombo implements the paper's two-stage recipe for learning a
// linear combination of PRFe functions (Section 5.2: "we first learn a PRFω
// function and then approximate it"): fit a weight vector with LearnOmega,
// then compress it into L complex exponentials with the Section 5.1 DFT
// pipeline. The returned terms feed core.PRFeCombo, giving O(n·L) ranking
// on arbitrarily large datasets with the learned preference.
func LearnPRFeCombo(sample *pdb.Dataset, user pdb.Ranking, opts ComboOptions) []core.ExpTerm {
	w := LearnOmega(sample, user, opts.Omega)
	if len(w) == 0 {
		return nil
	}
	l := opts.L
	if l <= 0 {
		l = 20
	}
	terms := dftapprox.Approximate(func(i int) float64 {
		if i >= 0 && i < len(w) {
			return w[i]
		}
		return 0
	}, len(w), dftapprox.DefaultOptions(l))
	rankTerms := dftapprox.TermsForRankWeights(terms)
	out := make([]core.ExpTerm, len(rankTerms))
	for i, t := range rankTerms {
		out[i] = core.ExpTerm{U: t.U, Alpha: t.Alpha}
	}
	return out
}

// RankWithCombo ranks a dataset with learned PRFe-combination terms.
func RankWithCombo(d *pdb.Dataset, terms []core.ExpTerm) pdb.Ranking {
	return pdb.RankByValue(core.RealParts(core.PRFeCombo(d, terms)))
}
