package oracle

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/andxor"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/junction"
	"repro/internal/pdb"
)

// The conformance suite: every backend × metric × output × Parallelism
// combination of the unified engine runs against the brute-force
// possible-worlds oracle on a seeded instance zoo — random draws plus the
// adversarial shapes (duplicate scores, ties, zero/one probabilities,
// degenerate single-tuple and empty-ish worlds) that historically break
// ranking kernels.

// parallelisms is the Parallelism knob sweep ISSUE'd for certification:
// default dispatch, the P=1 degenerate shard, and a multi-shard setting.
var parallelisms = []int{0, 1, 4}

// conformanceQueries is the full metric × output matrix for an n-tuple
// instance. Every query is valid for every backend.
func conformanceQueries(n int) []engine.Query {
	k := n/2 + 1
	omega := func(t pdb.Tuple, rank int) float64 { return t.Score / float64(rank) }
	terms := []core.ExpTerm{
		{U: complex(0.75, 0), Alpha: complex(0.9, 0)},
		{U: complex(-0.25, 0), Alpha: complex(0.4, 0)},
	}
	var qs []engine.Query
	add := func(m engine.Metric, outs []engine.Output, mut func(*engine.Query)) {
		for _, out := range outs {
			q := engine.Query{Metric: m, Output: out, K: k}
			if mut != nil {
				mut(&q)
			}
			qs = append(qs, q)
		}
	}
	all := []engine.Output{engine.OutputValues, engine.OutputRanking, engine.OutputTopK}
	add(engine.MetricPRFe, all, func(q *engine.Query) { q.Alpha = 0.85 })
	add(engine.MetricPRFOmega, all, func(q *engine.Query) { q.Weights = []float64{1, 0.5, 0.25} })
	add(engine.MetricPTh, all, func(q *engine.Query) { q.H = (n + 1) / 2 })
	add(engine.MetricPRF, all, func(q *engine.Query) { q.Omega = omega })
	add(engine.MetricERank, all, nil)
	add(engine.MetricPRFeCombo, all, func(q *engine.Query) { q.Terms = terms })
	add(engine.MetricGlobalTopk, all, nil)
	add(engine.MetricExpectedRank, all, nil)
	add(engine.MetricMedianRank, all, nil)
	// Batch path: a PRFe α grid certifies RankBatch per grid point.
	qs = append(qs,
		engine.Query{Metric: engine.MetricPRFe, Output: engine.OutputValues, Alphas: []float64{0.2, 0.55, 0.9}},
		engine.Query{Metric: engine.MetricPRFe, Output: engine.OutputTopK, Alphas: []float64{0.3, 0.8}, K: k},
	)
	return qs
}

// certifyAll sweeps the full query matrix × Parallelism knob for one
// backend against one oracle.
func certifyAll(t *testing.T, name string, o *Oracle, r engine.Ranker) {
	t.Helper()
	ctx := context.Background()
	if mass := o.TotalMass(); math.Abs(mass-1) > 1e-9 {
		t.Fatalf("%s: oracle world mass %v, want 1", name, mass)
	}
	for _, q := range conformanceQueries(o.Len()) {
		for _, p := range parallelisms {
			q.Parallelism = p
			if err := o.Certify(ctx, r, q); err != nil {
				t.Errorf("%s: %v/%v P=%d: %v", name, q.Metric, q.Output, p, err)
			}
		}
	}
}

// independentInstances is the seeded zoo of tuple-independent datasets.
func independentInstances(t *testing.T) map[string]*pdb.Dataset {
	t.Helper()
	build := pdb.MustDataset
	out := map[string]*pdb.Dataset{
		"single":       build([]float64{5}, []float64{0.7}),
		"single-sure":  build([]float64{5}, []float64{1}),
		"single-never": build([]float64{5}, []float64{0}),
		// Dyadic probabilities keep every cumulative sum exact in binary, so
		// the Median-Rank 0.5 threshold is hit exactly, not approached.
		"dyadic-ties": build(
			[]float64{9, 9, 9, 4, 4, 1},
			[]float64{1, 0.5, 0.5, 0.25, 0.75, 0}),
		"zero-one": build(
			[]float64{8, 7, 6, 5, 4},
			[]float64{1, 0, 1, 0, 1}),
		"all-sure":  build([]float64{3, 2, 1}, []float64{1, 1, 1}),
		"all-never": build([]float64{3, 2, 1}, []float64{0, 0, 0}),
	}
	for _, n := range []int{4, 8, 12} {
		r := rand.New(rand.NewSource(int64(1000 + n)))
		scores := make([]float64, n)
		probs := make([]float64, n)
		for i := range scores {
			scores[i] = math.Round(r.Float64()*100) / 4 // forces some ties
			probs[i] = r.Float64()
		}
		out[fmt.Sprintf("random-%d", n)] = build(scores, probs)
	}
	return out
}

func TestConformanceIndependent(t *testing.T) {
	for name, d := range independentInstances(t) {
		t.Run(name, func(t *testing.T) {
			o, err := FromDataset(d)
			if err != nil {
				t.Fatal(err)
			}
			certifyAll(t, "core.Prepared", o, core.Prepare(d))
			tr, err := andxor.Independent(d)
			if err != nil {
				t.Fatal(err)
			}
			certifyAll(t, "andxor(independent)", o, andxor.PrepareTree(tr))
		})
	}
}

// xrelationInstances is the seeded zoo of x-relations (mutually exclusive
// alternative groups), built as height-2 and/xor trees.
func xrelationInstances(t *testing.T) map[string][][]andxor.Alternative {
	t.Helper()
	out := map[string][][]andxor.Alternative{
		"two-groups": {
			{{Score: 10, Prob: 0.5}, {Score: 3, Prob: 0.5}},
			{{Score: 7, Prob: 0.25}, {Score: 5, Prob: 0.25}},
		},
		"forced-choice": { // each group's mass is exactly 1: no empty option
			{{Score: 9, Prob: 1}},
			{{Score: 8, Prob: 0.5}, {Score: 2, Prob: 0.5}},
		},
		"duplicate-scores": {
			{{Score: 6, Prob: 0.5}, {Score: 6, Prob: 0.25}},
			{{Score: 6, Prob: 0.75}},
			{{Score: 1, Prob: 0.125}},
		},
		"zero-prob-alternative": {
			{{Score: 10, Prob: 0}, {Score: 4, Prob: 0.5}},
			{{Score: 7, Prob: 1}},
		},
	}
	for _, spec := range []struct{ groups, maxAlts int }{{3, 2}, {5, 3}} {
		r := rand.New(rand.NewSource(int64(31*spec.groups + spec.maxAlts)))
		var groups [][]andxor.Alternative
		for g := 0; g < spec.groups; g++ {
			alts := make([]andxor.Alternative, 1+r.Intn(spec.maxAlts))
			budget := 1.0
			for i := range alts {
				p := r.Float64() * budget / float64(len(alts))
				alts[i] = andxor.Alternative{Score: r.Float64() * 50, Prob: p}
				budget -= p
			}
			groups = append(groups, alts)
		}
		out[fmt.Sprintf("random-%dx%d", spec.groups, spec.maxAlts)] = groups
	}
	return out
}

func TestConformanceXRelation(t *testing.T) {
	for name, groups := range xrelationInstances(t) {
		t.Run(name, func(t *testing.T) {
			tr, err := andxor.XTuples(groups)
			if err != nil {
				t.Fatal(err)
			}
			o, err := FromTree(tr)
			if err != nil {
				t.Fatal(err)
			}
			certifyAll(t, "andxor(xtuples)", o, andxor.PrepareTree(tr))
		})
	}
}

// makeChain constructs a calibrated chain from an initial marginal and
// per-step transition rows: pair[j] = marg_j ⊗ cond_j, with the next
// marginal read back off the joint so calibration holds exactly.
func makeChain(scores []float64, m0 float64, cond [][2]float64) (*junction.Chain, error) {
	n := len(scores)
	marg := [2]float64{1 - m0, m0}
	pair := make([][2][2]float64, n-1)
	for j := 0; j < n-1; j++ {
		for a := 0; a < 2; a++ {
			p1 := cond[j][a] // Pr(Y_{j+1}=1 | Y_j=a)
			pair[j][a][1] = marg[a] * p1
			pair[j][a][0] = marg[a] * (1 - p1)
		}
		marg = [2]float64{pair[j][0][0] + pair[j][1][0], pair[j][0][1] + pair[j][1][1]}
	}
	return junction.NewChain(scores, pair)
}

// buildChain is makeChain for table-driven tests: it fails the test on a
// construction error.
func buildChain(t *testing.T, scores []float64, m0 float64, cond [][2]float64) *junction.Chain {
	t.Helper()
	c, err := makeChain(scores, m0, cond)
	if err != nil {
		t.Fatalf("buildChain: %v", err)
	}
	return c
}

func chainInstances(t *testing.T) map[string]*junction.Chain {
	t.Helper()
	out := map[string]*junction.Chain{
		"pair": buildChain(t, []float64{4, 9}, 0.5, [][2]float64{{0.25, 0.75}}),
		"deterministic": buildChain(t, []float64{5, 3, 8}, 1,
			[][2]float64{{0, 1}, {0, 1}}),
		"absorbing-zero": buildChain(t, []float64{6, 2, 7, 1}, 0.5,
			[][2]float64{{0, 0.5}, {0, 1}, {0.5, 0.5}}),
		"tied-scores": buildChain(t, []float64{5, 5, 5, 2}, 0.5,
			[][2]float64{{0.5, 0.5}, {0.25, 0.75}, {0.5, 0.5}}),
	}
	for _, n := range []int{5, 10} {
		r := rand.New(rand.NewSource(int64(7700 + n)))
		scores := make([]float64, n)
		cond := make([][2]float64, n-1)
		for i := range scores {
			scores[i] = math.Round(r.Float64()*80) / 2
		}
		for j := range cond {
			cond[j] = [2]float64{r.Float64(), r.Float64()}
		}
		out[fmt.Sprintf("random-%d", n)] = buildChain(t, scores, r.Float64(), cond)
	}
	return out
}

func TestConformanceChain(t *testing.T) {
	for name, c := range chainInstances(t) {
		t.Run(name, func(t *testing.T) {
			o, err := FromChain(c)
			if err != nil {
				t.Fatal(err)
			}
			certifyAll(t, "junction.PreparedChain", o, junction.PrepareChain(c))
			net, err := c.Network()
			if err != nil {
				t.Fatal(err)
			}
			pn, err := junction.PrepareNetwork(net)
			if err != nil {
				t.Fatal(err)
			}
			certifyAll(t, "junction.PreparedNetwork", o, pn)
		})
	}
}

// TestOracleMetamorphic pins the oracle to itself through identities every
// semantics must satisfy — the metamorphic layer that catches a wrong
// oracle before it certifies wrong backends.
func TestOracleMetamorphic(t *testing.T) {
	for name, d := range independentInstances(t) {
		t.Run(name, func(t *testing.T) {
			o, err := FromDataset(d)
			if err != nil {
				t.Fatal(err)
			}
			n := o.Len()
			presence := o.PresenceProb()

			// Expected-Rank and E-Rank differ by exactly the absence mass.
			er, xr := o.ERank(), o.ExpectedRank()
			for id := 0; id < n; id++ {
				if diff := xr[id] - er[id]; !closeEnough(diff, 1-presence[id]) {
					t.Errorf("tuple %d: ExpectedRank−ERank = %v, want absence mass %v", id, diff, 1-presence[id])
				}
			}
			// Global-Topk at k = n is the presence probability, and PT(h)
			// saturates beyond n.
			gt := o.GlobalTopk(n)
			deep := o.PTh(n + 5)
			for id := 0; id < n; id++ {
				if !closeEnough(gt[id], presence[id]) || !closeEnough(deep[id], presence[id]) {
					t.Errorf("tuple %d: GlobalTopk(n)=%v PTh(n+5)=%v, want presence %v",
						id, gt[id], deep[id], presence[id])
				}
			}
			// PRFω with h ones is PT(h); PRFe at α=1 is presence.
			h := (n + 1) / 2
			ones := make([]float64, h)
			for i := range ones {
				ones[i] = 1
			}
			pw, ph := o.PRFOmega(ones), o.PTh(h)
			one := o.PRFe(1)
			for id := 0; id < n; id++ {
				if !closeEnough(pw[id], ph[id]) {
					t.Errorf("tuple %d: PRFω(1…1)=%v ≠ PT(%d)=%v", id, pw[id], h, ph[id])
				}
				if !closeEnough(real(one[id]), presence[id]) || imag(one[id]) != 0 {
					t.Errorf("tuple %d: PRFe(1)=%v, want presence %v", id, one[id], presence[id])
				}
			}
			// Median-Rank hits the sentinel exactly when presence mass
			// never reaches 1/2.
			med := o.MedianRank()
			for id := 0; id < n; id++ {
				if (presence[id] < 0.5) != (med[id] == pdb.MedianRankSentinel(n)) {
					t.Errorf("tuple %d: median %v vs presence %v (sentinel %v)",
						id, med[id], presence[id], pdb.MedianRankSentinel(n))
				}
			}
			// The rank distribution row masses are the presence probabilities
			// and each world position's column mass is ≤ 1.
			rd := o.RankDistribution()
			for id := 0; id < n; id++ {
				var row float64
				for _, p := range rd.Dist[id] {
					row += p
				}
				if !closeEnough(row, presence[id]) {
					t.Errorf("tuple %d: rank-distribution row mass %v, want %v", id, row, presence[id])
				}
			}
		})
	}
}

// TestOracleGuards pins the enumeration guards: instance sizes beyond
// MaxTuples are refused rather than enumerated.
func TestOracleGuards(t *testing.T) {
	big := make([]float64, MaxTuples+1)
	halves := make([]float64, MaxTuples+1)
	for i := range big {
		big[i], halves[i] = float64(i), 0.5
	}
	d := pdb.MustDataset(big, halves)
	if _, err := FromDataset(d); err == nil {
		t.Fatalf("FromDataset accepted %d tuples", d.Len())
	}
	tr, err := andxor.Independent(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromTree(tr); err == nil {
		t.Fatalf("FromTree accepted %d leaves", tr.Len())
	}
	scores := make([]float64, MaxTuples+1)
	cond := make([][2]float64, MaxTuples)
	for i := range scores {
		scores[i] = float64(i)
	}
	for j := range cond {
		cond[j] = [2]float64{0.5, 0.5}
	}
	if _, err := FromChain(buildChain(t, scores, 0.5, cond)); err == nil {
		t.Fatalf("FromChain accepted %d variables", len(scores))
	}
}
