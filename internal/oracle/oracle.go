// Package oracle is the repository's independent ground truth: a
// brute-force possible-worlds enumeration engine that computes every ranking
// semantics from first principles — materialize (stream) every world,
// accumulate the exact rank distribution and absence masses, fold the
// metric's definition — with none of the generating-function, product-tree
// or DP machinery the fast backends use. Every backend × metric × output
// combination of the unified engine is certified against it (Certify) on
// small instances, so the fast paths are pinned to the paper's definitions
// rather than to each other.
//
// The enumerators cover all four correlation models: tuple-independent
// datasets (bitmask streaming, no 2^n world allocation), and/xor trees and
// x-relations (xor-choice enumeration via andxor.Tree.EnumerateWorlds), and
// Markov chains (bitmask assignments priced from the calibrated pairwise
// joints alone). Junction-tree networks are certified through chains
// converted with Chain.Network, which exercises the full triangulate → DP
// pipeline on the same ground truth.
package oracle

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"repro/internal/andxor"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/junction"
	"repro/internal/pdb"
)

// MaxTuples bounds the exact enumerators: 2^MaxTuples worlds stream through
// the accumulator. 18 keeps the worst case (~262k worlds × n work each)
// well under a second.
const MaxTuples = 18

// Tolerance is the scaled comparison tolerance Certify applies: values
// agree when |a−b| ≤ Tolerance·max(1, |a|, |b|). The backends accumulate in
// different orders (and the sharded kernels merge per-shard partials), so
// bit-equality is not the contract — 1e-9 is ~7 decimal digits of slack on
// top of the ≤1e-12 certification the kernels carry against each other.
const Tolerance = 1e-9

// Oracle holds the exact per-tuple statistics accumulated over every
// possible world of one instance: the positional-probability matrix plus
// the absence masses every rank-metric definition needs. All slices are
// indexed by TupleID.
type Oracle struct {
	n      int
	scores []float64
	// rd[id][pos] = Pr(r(t) = pos+1): the exact rank distribution.
	rd [][]float64
	// absentMass[id] = Pr(t ∉ pw).
	absentMass []float64
	// absentSize[id] = Σ_{pw: t∉pw} Pr(pw)·|pw| — the E-Rank absent term
	// under the Cormode convention (absent tuples take rank |pw|).
	absentSize []float64
	// total is the accumulated world mass (≈1; enumeration drops
	// zero-probability worlds, never positive mass).
	total   float64
	scratch []bool
}

// New returns an empty accumulator over n = len(scores) tuples; scores are
// indexed by TupleID. Feed it worlds with AddWorld, or use the FromDataset /
// FromTree / FromChain enumerators.
func New(scores []float64) *Oracle {
	n := len(scores)
	o := &Oracle{
		n:          n,
		scores:     append([]float64(nil), scores...),
		rd:         make([][]float64, n),
		absentMass: make([]float64, n),
		absentSize: make([]float64, n),
		scratch:    make([]bool, n),
	}
	for i := range o.rd {
		o.rd[i] = make([]float64, n)
	}
	return o
}

// AddWorld accumulates one world: present lists the world's tuples in
// ranked (best-first) order, prob its probability. Duplicate tuple sets are
// fine — accumulation is linear — so enumerators need not merge worlds.
func (o *Oracle) AddWorld(present []pdb.TupleID, prob float64) {
	if prob == 0 {
		return
	}
	for pos, id := range present {
		o.rd[id][pos] += prob
		o.scratch[id] = true
	}
	size := float64(len(present))
	for id := 0; id < o.n; id++ {
		if o.scratch[id] {
			o.scratch[id] = false
			continue
		}
		o.absentMass[id] += prob
		o.absentSize[id] += prob * size
	}
	o.total += prob
}

// Len returns the number of tuples.
func (o *Oracle) Len() int { return o.n }

// TotalMass returns the accumulated world probability (≈1 on a complete
// enumeration).
func (o *Oracle) TotalMass() float64 { return o.total }

// RankDistribution returns a copy of the exact positional-probability
// matrix, indexed by TupleID then 0-based position.
func (o *Oracle) RankDistribution() *pdb.RankDistribution {
	dist := make([][]float64, o.n)
	for id := range dist {
		dist[id] = append([]float64(nil), o.rd[id]...)
	}
	return &pdb.RankDistribution{Dist: dist}
}

// ---------------------------------------------------------------------------
// Enumerators, one per correlation model.
// ---------------------------------------------------------------------------

// FromDataset enumerates every world of a tuple-independent dataset through
// a streaming bitmask loop: no world list is ever materialized.
func FromDataset(d *pdb.Dataset) (*Oracle, error) {
	n := d.Len()
	if n > MaxTuples {
		return nil, fmt.Errorf("oracle: refusing to enumerate 2^%d worlds (max %d tuples)", n, MaxTuples)
	}
	ordered := d.Clone()
	ordered.SortByScore()
	ts := ordered.Tuples()
	scores := make([]float64, n)
	for _, t := range ts {
		scores[t.ID] = t.Score
	}
	o := New(scores)
	present := make([]pdb.TupleID, 0, n)
	for mask := 0; mask < 1<<n; mask++ {
		prob := 1.0
		present = present[:0]
		for i, t := range ts {
			if mask&(1<<i) != 0 {
				prob *= t.Prob
				present = append(present, t.ID) // ts is in ranked order
			} else {
				prob *= 1 - t.Prob
			}
		}
		o.AddWorld(present, prob)
	}
	return o, nil
}

// FromTree enumerates every world of an and/xor tree (which covers
// x-relations: an x-relation is a ∧ root over ∨ groups). The tree's own
// xor-choice enumeration supplies the worlds; the oracle folds the metric
// definitions over them from scratch.
func FromTree(t *andxor.Tree) (*Oracle, error) {
	if t.Len() > MaxTuples {
		return nil, fmt.Errorf("oracle: tree has %d leaves (max %d)", t.Len(), MaxTuples)
	}
	worlds, err := t.EnumerateWorlds(0)
	if err != nil {
		return nil, err
	}
	scores := make([]float64, t.Len())
	for id := range scores {
		scores[id] = t.Leaf(pdb.TupleID(id)).Score
	}
	o := New(scores)
	for _, w := range worlds {
		o.AddWorld(w.Present, w.Prob)
	}
	return o, nil
}

// FromChain enumerates every assignment of a Markov chain's presence
// variables, pricing each from the calibrated pairwise joints alone —
// Pr(y) = Pr(Y₀,Y₁) · ∏_j Pr(Y_{j+1}|Y_j) — independent of every chain
// kernel. Tuple IDs are the variable indices.
func FromChain(c *junction.Chain) (*Oracle, error) {
	n := c.Len()
	if n > MaxTuples {
		return nil, fmt.Errorf("oracle: chain has %d variables (max %d)", n, MaxTuples)
	}
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = c.Score(i)
	}
	// Ranked order of the variable indices: score desc, index asc — the
	// same strict total order every chain kernel uses.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] > scores[order[b]]
		}
		return order[a] < order[b]
	})
	joints := make([][2][2]float64, n-1)
	margs := make([][2]float64, n-1) // margs[j][a] = Pr(Y_j = a)
	for j := 0; j < n-1; j++ {
		joints[j] = c.PairJoint(j)
		margs[j] = [2]float64{joints[j][0][0] + joints[j][0][1], joints[j][1][0] + joints[j][1][1]}
	}
	o := New(scores)
	present := make([]pdb.TupleID, 0, n)
	for mask := 0; mask < 1<<n; mask++ {
		y := func(i int) int { return (mask >> i) & 1 }
		prob := joints[0][y(0)][y(1)]
		for j := 1; j < n-1 && prob != 0; j++ {
			m := margs[j][y(j)]
			if m == 0 {
				prob = 0
				break
			}
			prob *= joints[j][y(j)][y(j+1)] / m
		}
		if prob == 0 {
			continue
		}
		present = present[:0]
		for _, v := range order {
			if y(v) == 1 {
				present = append(present, pdb.TupleID(v))
			}
		}
		o.AddWorld(present, prob)
	}
	return o, nil
}

// ---------------------------------------------------------------------------
// Metric definitions, folded directly over the accumulated statistics.
// ---------------------------------------------------------------------------

// PresenceProb returns Pr(t ∈ pw) per tuple (the row mass of the rank
// distribution).
func (o *Oracle) PresenceProb() []float64 {
	out := make([]float64, o.n)
	for id := 0; id < o.n; id++ {
		for _, p := range o.rd[id] {
			out[id] += p
		}
	}
	return out
}

// PRF evaluates Υω(t) = Σ_j ω(t, j)·Pr(r(t) = j) for an arbitrary weight
// function (Definition 2; absent worlds contribute nothing, the paper's
// ω(t, ∞) = 0 convention).
func (o *Oracle) PRF(omega func(t pdb.Tuple, rank int) float64) []float64 {
	presence := o.PresenceProb()
	out := make([]float64, o.n)
	for id := 0; id < o.n; id++ {
		tu := pdb.Tuple{ID: pdb.TupleID(id), Score: o.scores[id], Prob: presence[id]}
		for j, p := range o.rd[id] {
			if p != 0 {
				out[id] += omega(tu, j+1) * p
			}
		}
	}
	return out
}

// PRFOmega evaluates the PRFω(h) family: w[j] weighs rank j+1, ranks beyond
// len(w) weigh zero.
func (o *Oracle) PRFOmega(w []float64) []float64 {
	out := make([]float64, o.n)
	for id := 0; id < o.n; id++ {
		for j, p := range o.rd[id] {
			if j < len(w) && p != 0 {
				out[id] += w[j] * p
			}
		}
	}
	return out
}

// PTh evaluates Pr(r(t) ≤ h).
func (o *Oracle) PTh(h int) []float64 {
	out := make([]float64, o.n)
	for id := 0; id < o.n; id++ {
		for j, p := range o.rd[id] {
			if j < h {
				out[id] += p
			}
		}
	}
	return out
}

// GlobalTopk evaluates the Zhang/Chomicki Global-Topk value
// Pr(t ∈ top-k(pw)), which equals Pr(r(t) ≤ k).
func (o *Oracle) GlobalTopk(k int) []float64 { return o.PTh(k) }

// PRFe evaluates Υ_α(t) = Σ_j Pr(r(t) = j)·α^j.
func (o *Oracle) PRFe(alpha complex128) []complex128 {
	out := make([]complex128, o.n)
	for id := 0; id < o.n; id++ {
		pow := alpha
		for _, p := range o.rd[id] {
			out[id] += complex(p, 0) * pow
			pow *= alpha
		}
	}
	return out
}

// PRFeCombo evaluates Σ_l u_l·Υ_{α_l}(t), terms in order.
func (o *Oracle) PRFeCombo(us, alphas []complex128) []complex128 {
	out := make([]complex128, o.n)
	for l := range us {
		vals := o.PRFe(alphas[l])
		for id, v := range vals {
			out[id] += us[l] * v
		}
	}
	return out
}

// ERank evaluates the Cormode-convention expected rank: present worlds
// contribute the rank, absent worlds contribute |pw|.
func (o *Oracle) ERank() []float64 {
	out := make([]float64, o.n)
	for id := 0; id < o.n; id++ {
		for j, p := range o.rd[id] {
			out[id] += float64(j+1) * p
		}
		out[id] += o.absentSize[id]
	}
	return out
}

// ExpectedRank evaluates the Li/Deshpande consensus expected rank: absent
// worlds contribute |pw|+1.
func (o *Oracle) ExpectedRank() []float64 {
	out := o.ERank()
	for id := 0; id < o.n; id++ {
		out[id] += o.absentMass[id]
	}
	return out
}

// MedianRank evaluates the consensus median rank: the smallest j with
// Pr(r(t) ≤ j) ≥ 1/2 (absent → rank ∞), sentinel n+1 when no finite rank
// accumulates half the mass.
func (o *Oracle) MedianRank() []float64 {
	out := make([]float64, o.n)
	for id := 0; id < o.n; id++ {
		out[id] = pdb.MedianRankSentinel(o.n)
		cum := 0.0
		for j, p := range o.rd[id] {
			cum += p
			if cum >= 0.5 {
				out[id] = float64(j + 1)
				break
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Conformance: drive a backend through the engine and compare.
// ---------------------------------------------------------------------------

// Certify runs q against the backend r through the unified engine and
// checks the answer against this oracle's ground truth: values within
// Tolerance, rankings as permutations whose oracle key values are
// non-increasing, top-k answers additionally separated from every excluded
// tuple. A PRFe query with a non-empty Alphas grid runs through RankBatch
// and certifies every grid point. A non-nil error describes the first
// mismatch.
func (o *Oracle) Certify(ctx context.Context, r engine.Ranker, q engine.Query) error {
	if r.Len() != o.n {
		return fmt.Errorf("oracle: backend has %d tuples, oracle %d", r.Len(), o.n)
	}
	eng := engine.New(r)
	if q.Metric == engine.MetricPRFe && len(q.Alphas) > 0 {
		results, err := eng.RankBatch(ctx, q)
		if err != nil {
			return fmt.Errorf("oracle: RankBatch: %w", err)
		}
		for a, res := range results {
			single := q
			single.Alphas = nil
			single.Alpha = q.Alphas[a]
			if err := o.checkResult(&res, single); err != nil {
				return fmt.Errorf("grid point %d (α=%v): %w", a, q.Alphas[a], err)
			}
		}
		return nil
	}
	res, err := eng.Rank(ctx, q)
	if err != nil {
		return fmt.Errorf("oracle: Rank: %w", err)
	}
	return o.checkResult(res, q)
}

// checkResult certifies one single-evaluation result against the oracle.
func (o *Oracle) checkResult(res *engine.Result, q engine.Query) error {
	switch q.Output {
	case engine.OutputValues:
		switch q.Metric {
		case engine.MetricPRFe:
			return compareComplex(res.Complex, o.PRFe(complex(q.Alpha, 0)), o.n)
		case engine.MetricPRFeCombo:
			us, alphas := splitTerms(q.Terms)
			return compareComplex(res.Complex, o.PRFeCombo(us, alphas), o.n)
		default:
			want, err := o.realValues(q)
			if err != nil {
				return err
			}
			return compareReal(res.Values, want, o.n)
		}
	case engine.OutputRanking, engine.OutputTopK:
		key, err := o.rankingKey(q)
		if err != nil {
			return err
		}
		return o.checkRanking(res.Ranking, key, q)
	default:
		return fmt.Errorf("oracle: unknown output %v", q.Output)
	}
}

// realValues folds the oracle definition of a real-valued metric.
func (o *Oracle) realValues(q engine.Query) ([]float64, error) {
	switch q.Metric {
	case engine.MetricPRFOmega:
		return o.PRFOmega(q.Weights), nil
	case engine.MetricPTh:
		return o.PTh(q.H), nil
	case engine.MetricPRF:
		return o.PRF(q.Omega), nil
	case engine.MetricERank:
		return o.ERank(), nil
	case engine.MetricGlobalTopk:
		return o.GlobalTopk(q.K), nil
	case engine.MetricExpectedRank:
		return o.ExpectedRank(), nil
	case engine.MetricMedianRank:
		return o.MedianRank(), nil
	default:
		return nil, fmt.Errorf("oracle: no real-valued definition for %v", q.Metric)
	}
}

// rankingKey returns the per-tuple sort key (higher = better) the metric's
// rankings must be non-increasing in. PRFe ranks by |Υ| (the backends' two
// native conventions — log-domain magnitude and RankByAbs — both order by
// it), combos by real part (the learn.RankWithCombo convention), and the
// rank metrics by negated value (lower rank = better).
func (o *Oracle) rankingKey(q engine.Query) ([]float64, error) {
	switch q.Metric {
	case engine.MetricPRFe:
		vals := o.PRFe(complex(q.Alpha, 0))
		key := make([]float64, o.n)
		for id, v := range vals {
			key[id] = cmplx.Abs(v)
		}
		return key, nil
	case engine.MetricPRFeCombo:
		us, alphas := splitTerms(q.Terms)
		vals := o.PRFeCombo(us, alphas)
		key := make([]float64, o.n)
		for id, v := range vals {
			key[id] = real(v)
		}
		return key, nil
	case engine.MetricERank, engine.MetricExpectedRank, engine.MetricMedianRank:
		vals, err := o.realValues(q)
		if err != nil {
			return nil, err
		}
		for id := range vals {
			vals[id] = -vals[id]
		}
		return vals, nil
	default:
		return o.realValues(q)
	}
}

// checkRanking validates a ranking (or top-k answer) against a key vector.
func (o *Oracle) checkRanking(rk pdb.Ranking, key []float64, q engine.Query) error {
	if err := pdb.CheckRankingIDs(rk, o.n); err != nil {
		return err
	}
	wantLen := o.n
	if q.Output == engine.OutputTopK && q.K < wantLen {
		wantLen = q.K
	}
	if len(rk) != wantLen {
		return fmt.Errorf("oracle: ranking has %d entries, want %d", len(rk), wantLen)
	}
	for i := 0; i+1 < len(rk); i++ {
		a, b := key[rk[i]], key[rk[i+1]]
		if b > a && !closeEnough(a, b) {
			return fmt.Errorf("oracle: ranking positions %d,%d out of order: key(%d)=%v < key(%d)=%v",
				i, i+1, rk[i], a, rk[i+1], b)
		}
	}
	if q.Output == engine.OutputTopK && len(rk) > 0 && len(rk) < o.n {
		included := make([]bool, o.n)
		minIn := math.Inf(1)
		for _, id := range rk {
			included[id] = true
			if key[id] < minIn {
				minIn = key[id]
			}
		}
		for id := 0; id < o.n; id++ {
			if !included[id] && key[id] > minIn && !closeEnough(key[id], minIn) {
				return fmt.Errorf("oracle: excluded tuple %d beats included minimum: key=%v > %v",
					id, key[id], minIn)
			}
		}
	}
	return nil
}

// splitTerms mirrors the engine's term decomposition (order preserved).
func splitTerms(terms []core.ExpTerm) (us, alphas []complex128) {
	us = make([]complex128, len(terms))
	alphas = make([]complex128, len(terms))
	for i, t := range terms {
		us[i], alphas[i] = t.U, t.Alpha
	}
	return us, alphas
}

// closeEnough is the scaled tolerance comparison: exact for non-finite
// values, |a−b| ≤ Tolerance·max(1, |a|, |b|) otherwise.
func closeEnough(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b || (math.IsNaN(a) && math.IsNaN(b))
	}
	scale := 1.0
	if s := math.Abs(a); s > scale {
		scale = s
	}
	if s := math.Abs(b); s > scale {
		scale = s
	}
	return math.Abs(a-b) <= Tolerance*scale
}

// compareReal checks two TupleID-indexed value vectors entry by entry.
func compareReal(got, want []float64, n int) error {
	if len(got) != n || len(want) != n {
		return fmt.Errorf("oracle: got %d values, want %d", len(got), n)
	}
	for id := range got {
		if !closeEnough(got[id], want[id]) {
			return fmt.Errorf("oracle: tuple %d: got %v, want %v (Δ=%v)",
				id, got[id], want[id], got[id]-want[id])
		}
	}
	return nil
}

// compareComplex checks two TupleID-indexed complex vectors component-wise.
func compareComplex(got, want []complex128, n int) error {
	if len(got) != n || len(want) != n {
		return fmt.Errorf("oracle: got %d values, want %d", len(got), n)
	}
	for id := range got {
		if !closeEnough(real(got[id]), real(want[id])) || !closeEnough(imag(got[id]), imag(want[id])) {
			return fmt.Errorf("oracle: tuple %d: got %v, want %v", id, got[id], want[id])
		}
	}
	return nil
}
