package oracle

import (
	"context"
	"testing"

	"repro/internal/andxor"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/junction"
	"repro/internal/pdb"
)

// Fuzz harnesses: bytes decode into a small instance (n ≤ 8), the oracle
// enumerates it, and every backend for that correlation model must agree on
// a compact query battery. Go's fuzzer minimizes any failing input, so a
// counterexample arrives as a near-minimal instance. Each decoder is
// byte-monotone — dropping bytes yields a smaller valid instance — which is
// what makes the built-in shrinking effective.

// fuzzMaxTuples caps fuzz instances well under MaxTuples: enumeration stays
// trivial and the mutator explores shapes, not sizes.
const fuzzMaxTuples = 8

// fuzzProb maps one byte to an exactly-representable probability in [0, 1].
func fuzzProb(b byte) float64 { return float64(b) / 256 }

// fuzzScore maps one byte to a small score domain, forcing frequent ties.
func fuzzScore(b byte) float64 { return float64(b % 16) }

// fuzzQueries is the compact battery each fuzz iteration certifies: one
// complex-valued metric with its native ranking, plus every real-valued
// semantics, at default and sharded parallelism.
func fuzzQueries(n int) []engine.Query {
	k := n/2 + 1
	qs := []engine.Query{
		{Metric: engine.MetricPRFe, Output: engine.OutputValues, Alpha: 0.85},
		{Metric: engine.MetricPRFe, Output: engine.OutputRanking, Alpha: 0.85},
		{Metric: engine.MetricPRFOmega, Output: engine.OutputValues, Weights: []float64{1, 0.5}},
		{Metric: engine.MetricPTh, Output: engine.OutputValues, H: k},
		{Metric: engine.MetricERank, Output: engine.OutputValues},
		{Metric: engine.MetricGlobalTopk, Output: engine.OutputValues, K: k},
		{Metric: engine.MetricExpectedRank, Output: engine.OutputValues},
		{Metric: engine.MetricMedianRank, Output: engine.OutputRanking},
	}
	out := make([]engine.Query, 0, 2*len(qs))
	for _, p := range []int{0, 4} {
		for _, q := range qs {
			q.Parallelism = p
			out = append(out, q)
		}
	}
	return out
}

func fuzzCertify(t *testing.T, o *Oracle, backends map[string]engine.Ranker) {
	t.Helper()
	ctx := context.Background()
	for name, r := range backends {
		for _, q := range fuzzQueries(o.Len()) {
			if err := o.Certify(ctx, r, q); err != nil {
				t.Fatalf("%s: %v/%v P=%d: %v", name, q.Metric, q.Output, q.Parallelism, err)
			}
		}
	}
}

func FuzzOracleIndependent(f *testing.F) {
	f.Add([]byte{0x80, 0xff})
	f.Add([]byte{0x10, 0x00, 0x20, 0xff, 0x10, 0x80})
	f.Add([]byte{0x05, 0x40, 0x05, 0x40, 0x05, 0x40, 0x01, 0xc0})
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 2
		if n == 0 || n > fuzzMaxTuples {
			t.Skip()
		}
		scores := make([]float64, n)
		probs := make([]float64, n)
		for i := 0; i < n; i++ {
			scores[i] = fuzzScore(data[2*i])
			probs[i] = fuzzProb(data[2*i+1])
		}
		d, err := pdb.NewDataset(scores, probs)
		if err != nil {
			t.Skip()
		}
		o, err := FromDataset(d)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := andxor.Independent(d)
		if err != nil {
			t.Fatal(err)
		}
		fuzzCertify(t, o, map[string]engine.Ranker{
			"core":   core.Prepare(d),
			"andxor": andxor.PrepareTree(tr),
		})
	})
}

func FuzzOracleXRelation(f *testing.F) {
	f.Add([]byte{1, 0x50, 0x80, 0x30, 0x40})
	f.Add([]byte{0, 0xff, 0xff, 1, 0x20, 0x20, 0x20, 0x20})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Stream of groups: one size byte (1–2 alternatives), then
		// (score, prob) byte pairs; probabilities are scaled by the group
		// size so each group's mass stays strictly under 1.
		var groups [][]andxor.Alternative
		total := 0
		for i := 0; i < len(data); {
			size := int(data[i])%2 + 1
			i++
			if total+size > fuzzMaxTuples || i+2*size > len(data) {
				break
			}
			alts := make([]andxor.Alternative, size)
			for a := range alts {
				alts[a] = andxor.Alternative{
					Score: fuzzScore(data[i]),
					Prob:  fuzzProb(data[i+1]) / float64(size),
				}
				i += 2
			}
			groups = append(groups, alts)
			total += size
		}
		if len(groups) == 0 {
			t.Skip()
		}
		tr, err := andxor.XTuples(groups)
		if err != nil {
			t.Skip()
		}
		o, err := FromTree(tr)
		if err != nil {
			t.Fatal(err)
		}
		fuzzCertify(t, o, map[string]engine.Ranker{
			"andxor": andxor.PrepareTree(tr),
		})
	})
}

func FuzzOracleChain(f *testing.F) {
	f.Add([]byte{0x80, 0x05, 0x40, 0x0a, 0xc0, 0x20})
	f.Add([]byte{0xff, 0x01, 0x00, 0x02, 0xff, 0xff, 0x03, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Layout: marginal byte, then per-variable (score, cond0, cond1)
		// triples; the first variable only consumes its score byte.
		if len(data) < 4 {
			t.Skip()
		}
		m0 := fuzzProb(data[0])
		rest := data[1:]
		var scores []float64
		var cond [][2]float64
		scores = append(scores, fuzzScore(rest[0]))
		for i := 1; i+2 < len(rest) && len(scores) < 6; i += 3 {
			scores = append(scores, fuzzScore(rest[i]))
			cond = append(cond, [2]float64{fuzzProb(rest[i+1]), fuzzProb(rest[i+2])})
		}
		if len(scores) < 2 {
			t.Skip()
		}
		c, err := makeChain(scores, m0, cond)
		if err != nil {
			t.Skip()
		}
		o, err := FromChain(c)
		if err != nil {
			t.Fatal(err)
		}
		net, err := c.Network()
		if err != nil {
			t.Fatal(err)
		}
		pn, err := junction.PrepareNetwork(net)
		if err != nil {
			t.Fatal(err)
		}
		fuzzCertify(t, o, map[string]engine.Ranker{
			"chain":   junction.PrepareChain(c),
			"network": pn,
		})
	})
}
