package serve

// Tests for the wire path added for wire-speed serving: Content-Type
// enforcement, gzip negotiation, streamed and columnar /rankbatch forms
// (each certified byte-equivalent to the buffered JSON path across all four
// backends), the single-flight cold-storm guarantee at the HTTP layer, and
// the byte cache's bounds.

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/pdb"
)

// postRaw POSTs with full header control and returns status, headers, body.
func postRaw(t *testing.T, url, body, contentType, acceptEncoding string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if acceptEncoding != "" {
		// Setting the header ourselves stops net/http's transparent
		// decompression, so the raw (possibly gzipped) bytes come back.
		req.Header.Set("Accept-Encoding", acceptEncoding)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func gunzip(t *testing.T, data []byte) []byte {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("gzip.NewReader: %v", err)
	}
	out, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	if err := zr.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServeContentType: POST bodies that do not declare JSON are a typed
// 415 on both endpoints; JSON media types (with parameters, +json subtypes)
// pass.
func TestServeContentType(t *testing.T) {
	s, _ := testServer(t, Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	body := reqBody(t, "iip", WireQuery{Metric: "prfe", Alpha: 0.5})

	rejected := []string{"", "text/plain", "application/x-www-form-urlencoded", "application/octet-stream", "json"}
	for _, path := range []string{"/rank", "/rankbatch"} {
		for _, ct := range rejected {
			resp, data := postRaw(t, ts.URL+path, body, ct, "")
			if resp.StatusCode != http.StatusUnsupportedMediaType {
				t.Errorf("%s with Content-Type %q: status %d, want 415", path, ct, resp.StatusCode)
				continue
			}
			var er ErrorResponse
			if err := json.Unmarshal(data, &er); err != nil {
				t.Fatalf("%s: non-JSON 415 body: %v", path, err)
			}
			if er.Code != "unsupported_media_type" || !strings.HasPrefix(er.Error, "serve:") {
				t.Errorf("%s with Content-Type %q: error %+v", path, ct, er)
			}
		}
	}

	for _, ct := range []string{"application/json", "application/json; charset=utf-8", "application/problem+json"} {
		resp, _ := postRaw(t, ts.URL+"/rank", body, ct, "")
		if resp.StatusCode != http.StatusOK {
			t.Errorf("Content-Type %q: status %d, want 200", ct, resp.StatusCode)
		}
	}
}

// wireBatchBody builds a /rankbatch body for one dataset/output/format.
func wireBatchBody(t *testing.T, dataset, output, format string, stream bool, alphas []float64) string {
	t.Helper()
	b, err := json.Marshal(RankRequest{
		Dataset: dataset,
		Query:   WireQuery{Metric: "prfe", Alphas: alphas, Output: output},
		Stream:  stream,
		Format:  format,
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServeWireEquivalence certifies, for every backend and both batch
// payload shapes, that gzip (after decompression), streaming (after
// reassembly) and the columnar form (after Rows() mapping) reproduce the
// buffered identity JSON response exactly.
func TestServeWireEquivalence(t *testing.T) {
	s, _ := testServer(t, Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// A grid wide enough that every dataset's body clears gzipMinSize.
	alphas := make([]float64, 48)
	for i := range alphas {
		alphas[i] = float64(i+1) / 50
	}

	for _, dsname := range []string{"iip", "sensors", "grid", "chain", "traffic"} {
		for _, output := range []string{"values", "ranking"} {
			name := dsname + "/" + output
			buffered := wireBatchBody(t, dsname, output, "", false, alphas)
			resp, want := postRaw(t, ts.URL+"/rankbatch", buffered, "application/json", "identity")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s buffered: status %d: %s", name, resp.StatusCode, want)
			}
			if len(want) < gzipMinSize {
				t.Fatalf("%s: buffered body only %d bytes, too small to exercise gzip", name, len(want))
			}

			// gzip negotiation: compressed on the wire, identical after gunzip.
			resp, zdata := postRaw(t, ts.URL+"/rankbatch", buffered, "application/json", "gzip")
			if resp.Header.Get("Content-Encoding") != "gzip" {
				t.Fatalf("%s: gzip not negotiated (Content-Encoding %q)", name, resp.Header.Get("Content-Encoding"))
			}
			if len(zdata) >= len(want) {
				t.Errorf("%s: gzip body %d bytes is not smaller than identity %d", name, len(zdata), len(want))
			}
			if got := gunzip(t, zdata); !bytes.Equal(got, want) {
				t.Errorf("%s: gunzipped body differs from buffered body", name)
			}

			// Streamed: chunked on the wire, byte-identical reassembled.
			streamed := wireBatchBody(t, dsname, output, "", true, alphas)
			resp, got := postRaw(t, ts.URL+"/rankbatch", streamed, "application/json", "identity")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s streamed: status %d", name, resp.StatusCode)
			}
			if len(resp.TransferEncoding) == 0 || resp.TransferEncoding[0] != "chunked" {
				t.Errorf("%s streamed: transfer encoding %v, want chunked", name, resp.TransferEncoding)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: reassembled stream differs from buffered body", name)
			}

			// Streamed + gzip.
			resp, zgot := postRaw(t, ts.URL+"/rankbatch", streamed, "application/json", "gzip")
			if resp.Header.Get("Content-Encoding") != "gzip" {
				t.Fatalf("%s streamed: gzip not negotiated", name)
			}
			if got := gunzip(t, zgot); !bytes.Equal(got, want) {
				t.Errorf("%s: gunzipped stream differs from buffered body", name)
			}

			// Columnar: Rows() maps back onto the buffered results array.
			columnar := wireBatchBody(t, dsname, output, "columnar", false, alphas)
			resp, cdata := postRaw(t, ts.URL+"/rankbatch", columnar, "application/json", "identity")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s columnar: status %d: %s", name, resp.StatusCode, cdata)
			}
			var cb ColumnarBatch
			if err := json.Unmarshal(cdata, &cb); err != nil {
				t.Fatal(err)
			}
			var br BatchResponse
			if err := json.Unmarshal(want, &br); err != nil {
				t.Fatal(err)
			}
			if cb.Format != "columnar" || cb.Dataset != br.Dataset {
				t.Errorf("%s: columnar envelope %q/%q", name, cb.Format, cb.Dataset)
			}
			if !reflect.DeepEqual(cb.Rows(), br.Results) {
				t.Errorf("%s: columnar Rows() differ from buffered results", name)
			}
			if len(cdata) >= len(want) {
				t.Errorf("%s: columnar body %d bytes is not smaller than row form %d", name, len(cdata), len(want))
			}
		}
	}

	// Stream and format are /rankbatch concepts; /rank rejects them.
	rankReq := `{"dataset":"iip","query":{"metric":"prfe","alpha":0.5},"stream":true}`
	if resp, _ := postRaw(t, ts.URL+"/rank", rankReq, "application/json", ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("/rank with stream: status %d, want 400", resp.StatusCode)
	}
	badFormat := wireBatchBody(t, "iip", "ranking", "protobuf", false, alphas)
	if resp, _ := postRaw(t, ts.URL+"/rankbatch", badFormat, "application/json", ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format: status %d, want 400", resp.StatusCode)
	}
	streamColumnar := wireBatchBody(t, "iip", "ranking", "columnar", true, alphas)
	if resp, _ := postRaw(t, ts.URL+"/rankbatch", streamColumnar, "application/json", ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("streamed columnar: status %d, want 400", resp.StatusCode)
	}
}

// TestServeSmallBodyStaysIdentity: responses under gzipMinSize are served
// uncompressed even when the client accepts gzip.
func TestServeSmallBodyStaysIdentity(t *testing.T) {
	s, _ := testServer(t, Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	body := reqBody(t, "grid", WireQuery{Metric: "prfe", Alpha: 0.5, Output: "topk", K: 2})
	resp, data := postRaw(t, ts.URL+"/rank", body, "application/json", "gzip")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if enc := resp.Header.Get("Content-Encoding"); enc != "" {
		t.Errorf("tiny body got Content-Encoding %q", enc)
	}
	if !json.Valid(data) {
		t.Error("tiny body is not plain JSON")
	}
}

// stormRanker wraps a Ranker, counting batch evaluations and holding each
// one long enough for a storm of waiters to pile onto the flight.
type stormRanker struct {
	engine.Ranker
	evals atomic.Int64
}

func (c *stormRanker) QueryRankPRFeBatch(ctx context.Context, alphas []float64) ([]pdb.Ranking, error) {
	c.evals.Add(1)
	time.Sleep(20 * time.Millisecond)
	return c.Ranker.QueryRankPRFeBatch(ctx, alphas)
}

// TestServeSingleFlightStorm (run under -race in CI): 32 concurrent clients
// hit one cold key; the backend must evaluate exactly once and every client
// must receive byte-identical bodies.
func TestServeSingleFlightStorm(t *testing.T) {
	cr := &stormRanker{Ranker: core.Prepare(datagen.IIPLike(96, 11))}
	s := New(Options{})
	if err := s.AddDataset("storm", engine.New(cr)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	const clients = 32
	body := wireBatchBody(t, "storm", "ranking", "", false, []float64{0.2, 0.4, 0.6, 0.8})
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, data := postRaw(t, ts.URL+"/rankbatch", body, "application/json", "identity")
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			bodies[i] = data
		}()
	}
	close(start)
	wg.Wait()

	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d received different bytes than client 0", i)
		}
	}
	if got := cr.evals.Load(); got != 1 {
		t.Errorf("backend evaluated %d times under the storm, want exactly 1", got)
	}

	// Every client is exactly one of: byte-cache hit, flight leader, or
	// flight sharer.
	_, statsBody := get(t, ts.URL+"/stats")
	var st StatsResponse
	if err := json.Unmarshal(statsBody, &st); err != nil {
		t.Fatal(err)
	}
	bc := st.Datasets["storm"].ByteCache
	if bc == nil {
		t.Fatal("stats missing byte_cache block")
	}
	if bc.Hits+bc.Flights+bc.Shared != clients {
		t.Errorf("hits %d + flights %d + shared %d ≠ %d clients", bc.Hits, bc.Flights, bc.Shared, clients)
	}
	if bc.Flights < 1 || bc.Shared < 1 {
		t.Errorf("storm produced no sharing: flights %d, shared %d", bc.Flights, bc.Shared)
	}
}

// TestServeWirePathDisabled: with the byte cache and single-flight off the
// server still answers correctly and /stats omits the byte_cache block.
func TestServeWirePathDisabled(t *testing.T) {
	s, _ := testServer(t, Options{ByteCacheCapacity: -1, DisableSingleFlight: true})
	ts := httptest.NewServer(s)
	defer ts.Close()
	body := reqBody(t, "iip", WireQuery{Metric: "prfe", Alpha: 0.5, Output: "ranking"})
	_, first := post(t, ts.URL+"/rank", body)
	_, second := post(t, ts.URL+"/rank", body)
	if !bytes.Equal(first, second) {
		t.Error("identical queries disagree with the wire path disabled")
	}
	_, statsBody := get(t, ts.URL+"/stats")
	var st StatsResponse
	if err := json.Unmarshal(statsBody, &st); err != nil {
		t.Fatal(err)
	}
	if st.Datasets["iip"].ByteCache != nil {
		t.Error("byte_cache stats present though the byte cache is disabled")
	}
}

// TestServeStreamContext: a deadline that expires mid-stream truncates the
// response instead of hanging.
func TestServeStreamContext(t *testing.T) {
	cr := &stormRanker{Ranker: core.Prepare(datagen.IIPLike(64, 3))}
	s := New(Options{})
	if err := s.AddDataset("slow", engine.New(cr)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	alphas := make([]float64, 64)
	for i := range alphas {
		alphas[i] = float64(i+1) / 65
	}
	b, _ := json.Marshal(RankRequest{
		Dataset:   "slow",
		Query:     WireQuery{Metric: "prfe", Alphas: alphas, Output: "ranking"},
		Stream:    true,
		TimeoutMS: 90, // a few 20ms chunks, then the deadline cuts the grid
	})
	resp, data := postRaw(t, ts.URL+"/rankbatch", string(b), "application/json", "identity")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (stream starts before the deadline fires)", resp.StatusCode)
	}
	if json.Valid(data) {
		t.Error("mid-stream deadline should truncate the JSON body")
	}
	if !bytes.HasPrefix(data, []byte(`{"dataset":"slow","results":[`)) {
		t.Errorf("truncated stream has wrong prefix: %.60s", data)
	}
}

// TestByteCacheBounds exercises the LRU's entry and byte accounting.
func TestByteCacheBounds(t *testing.T) {
	c := newByteCache(4)
	c.capBytes = 1000
	body := func(n int) byteBody { return byteBody{bytes: bytes.Repeat([]byte{'x'}, n)} }
	for i := 0; i < 6; i++ {
		c.put(fmt.Sprintf("k%d", i), body(100))
	}
	st := c.stats()
	if st.Entries != 4 || st.Bytes != 400 || st.Evictions != 2 {
		t.Errorf("after entry-bound fill: %+v", st)
	}
	if _, ok := c.get("k0"); ok {
		t.Error("k0 should have been evicted")
	}
	if _, ok := c.get("k5"); !ok {
		t.Error("k5 should be resident")
	}
	// One 900-byte body forces byte-bound evictions of the older entries.
	c.put("big", body(900))
	st = c.stats()
	if st.Bytes > 1000 {
		t.Errorf("byte bound violated: %+v", st)
	}
	if _, ok := c.get("big"); !ok {
		t.Error("big should be resident")
	}
	// A body over the byte bound is refused outright.
	c.put("huge", body(2000))
	if _, ok := c.get("huge"); ok {
		t.Error("huge exceeds the byte bound and must not be cached")
	}
	// Replacing a key adjusts the byte account rather than double-counting.
	c.put("big", body(100))
	if st = c.stats(); st.Bytes > 1000 {
		t.Errorf("replace double-counted: %+v", st)
	}
	// A disabled cache (nil) is a no-op, never a panic.
	var nilCache *byteCache
	nilCache.put("k", body(1))
	if _, ok := nilCache.get("k"); ok {
		t.Error("nil cache returned a hit")
	}
}
