package serve

// Wire-path coverage for the consensus semantics (Global-Topk,
// Expected-Rank, Median-Rank): byte-equality between cached and uncached
// servers on /rank, and the ToQuery finite-parameter guard that keeps
// NaN/Inf out of cache keys.

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestServeSemanticsCacheByteEqual certifies that for every new metric the
// response bytes are identical across (a) a cold cache miss, (b) a warm
// byte-cache hit, and (c) a fully uncached server — oracle-certified
// results survive the serving caches unmutated.
func TestServeSemanticsCacheByteEqual(t *testing.T) {
	cached, _ := testServer(t, Options{})
	uncached, _ := testServer(t, Options{CacheCapacity: -1, ByteCacheCapacity: -1})
	tsc := httptest.NewServer(cached)
	defer tsc.Close()
	tsu := httptest.NewServer(uncached)
	defer tsu.Close()

	queries := []WireQuery{
		{Metric: "globaltopk", K: 2},
		{Metric: "globaltopk", Output: "ranking", K: 2},
		{Metric: "globaltopk", Output: "topk", K: 2},
		{Metric: "expectedrank"},
		{Metric: "expectedrank", Output: "ranking"},
		{Metric: "expectedrank", Output: "topk", K: 2, Parallelism: 4},
		{Metric: "medianrank"},
		{Metric: "medianrank", Output: "ranking", Parallelism: 1},
		{Metric: "medianrank", Output: "topk", K: 2},
	}
	for _, name := range []string{"iip", "sensors", "chain", "traffic", "grid"} {
		for _, wq := range queries {
			body := reqBody(t, name, wq)
			resp, miss := post(t, tsc.URL+"/rank", body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s %s: status %d: %s", name, wq.Metric, resp.StatusCode, miss)
			}
			_, hit := post(t, tsc.URL+"/rank", body)
			_, plain := post(t, tsu.URL+"/rank", body)
			if !bytes.Equal(miss, hit) {
				t.Errorf("%s %s/%s: cache hit differs from miss", name, wq.Metric, wq.Output)
			}
			if !bytes.Equal(miss, plain) {
				t.Errorf("%s %s/%s: cached server differs from uncached", name, wq.Metric, wq.Output)
			}
		}
	}
}

// TestToQueryRejectsNonFinite pins the validation layer: NaN/Inf
// parameters (which JSON cannot carry but in-process callers can) are
// rejected with typed serve errors before any cache key is derived.
func TestToQueryRejectsNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	bad := map[string]WireQuery{
		"nan alpha":       {Metric: "prfe", Alpha: nan},
		"inf alpha":       {Metric: "prfe", Alpha: inf},
		"nan grid point":  {Metric: "prfe", Alphas: []float64{0.5, nan}},
		"-inf grid point": {Metric: "prfe", Alphas: []float64{math.Inf(-1)}},
		"nan weight":      {Metric: "prfomega", Weights: []float64{1, nan}},
		"inf weight":      {Metric: "prfomega", Weights: []float64{inf, 1}},
		"nan term u":      {Metric: "prfecombo", Terms: []Term{{U: Complex{nan, 0}, Alpha: Complex{0.5, 0}}}},
		"inf term alpha":  {Metric: "prfecombo", Terms: []Term{{U: Complex{1, 0}, Alpha: Complex{0, inf}}}},
		"negative knob":   {Metric: "erank", Parallelism: -1},
	}
	for name, wq := range bad {
		if _, err := wq.ToQuery(); err == nil {
			t.Errorf("%s: ToQuery accepted %+v", name, wq)
		} else if !strings.HasPrefix(err.Error(), "serve:") {
			t.Errorf("%s: untyped error %q", name, err)
		}
	}
	// The finite guard must not over-reject: ordinary queries still decode.
	for _, wq := range []WireQuery{
		{Metric: "globaltopk", K: 3},
		{Metric: "expectedrank"},
		{Metric: "medianrank", Output: "ranking"},
		{Metric: "prfomega", Weights: []float64{3, 2, 1}},
	} {
		q, err := wq.ToQuery()
		if err != nil {
			t.Errorf("ToQuery rejected valid %+v: %v", wq, err)
			continue
		}
		if _, ok := q.CacheKey(); !ok {
			t.Errorf("decoded query %+v is not cacheable", wq)
		}
	}
}
