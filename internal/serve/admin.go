package serve

// The dataset-lifecycle admin endpoints. All three require the configured
// Bearer token and a configured store; without either they answer a typed
// 403 so probing an unconfigured server reveals nothing it can do.
//
// An import is parse → persist → re-open → swap: the body is parsed and
// validated exactly like a startup file, written to the store as the next
// immutable generation, then *re-opened from disk* before the in-memory
// swap — the served view is provably the stored bytes, not the parsed
// intermediate. The swap itself is one map-entry replacement under the
// server lock: queries that already resolved the old *dataset finish on the
// old view and old caches; queries that resolve after see only the new
// ones. Nothing is ever mutated in place, so there is no torn state for a
// concurrent reader to observe.

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/store"
)

// authAdmin gates the lifecycle endpoints. The token comparison is
// constant-time; a missing token configuration is a 403 (the feature is
// off), a bad credential a 401.
func (s *Server) authAdmin(w http.ResponseWriter, r *http.Request) bool {
	if s.opts.AdminToken == "" || s.opts.Store == nil {
		writeError(w, http.StatusForbidden, "admin_disabled",
			"serve: dataset administration is disabled (server started without -store and -admin-token)")
		return false
	}
	auth := r.Header.Get("Authorization")
	const scheme = "Bearer "
	if len(auth) < len(scheme) || auth[:len(scheme)] != scheme ||
		subtle.ConstantTimeCompare([]byte(auth[len(scheme):]), []byte(s.opts.AdminToken)) != 1 {
		writeError(w, http.StatusUnauthorized, "unauthorized",
			"serve: admin endpoints need Authorization: Bearer <admin token>")
		return false
	}
	return true
}

// handleDatasetImport is POST /datasets/{name}?kind=K: body is a raw
// dataset file (CSV for ind/xrel, JSON for tree/chain). On success the
// response carries the store metadata of the new generation, already
// installed and serving.
func (s *Server) handleDatasetImport(w http.ResponseWriter, r *http.Request) {
	if !s.authAdmin(w, r) {
		return
	}
	name := r.PathValue("name")
	if err := store.CheckName(name); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	kind := r.URL.Query().Get("kind")
	if kind == "" {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("serve: import needs ?kind= (one of %v)", store.Kinds))
		return
	}
	maxBody := s.opts.MaxAdminBodyBytes
	if maxBody <= 0 {
		maxBody = defaultMaxAdminBody
	}
	ds, err := store.Parse(kind, http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "too_large",
				fmt.Sprintf("serve: dataset body exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	info, err := s.opts.Store.Import(name, ds)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "store_error", err.Error())
		return
	}
	if err := s.InstallFromStore(name); err != nil {
		// Persisted but not serveable — should be impossible (import
		// validated the bytes); report it and leave the old view serving.
		s.RecordLoadError(name, err)
		writeError(w, http.StatusInternalServerError, "store_error", err.Error())
		return
	}
	writeJSON(w, info)
}

// handleDatasetDelete is DELETE /datasets/{name}: the dataset disappears
// from the store and the serving set; in-flight queries on the old view
// still finish.
func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	if !s.authAdmin(w, r) {
		return
	}
	name := r.PathValue("name")
	s.mu.Lock()
	_, inMem := s.datasets[name]
	delete(s.datasets, name)
	delete(s.loadErrors, name)
	s.mu.Unlock()
	err := s.opts.Store.Delete(name)
	switch {
	case err == nil:
	case errors.Is(err, store.ErrNotFound) || errors.Is(err, store.ErrBadName):
		if !inMem {
			writeError(w, http.StatusNotFound, "unknown_dataset",
				fmt.Sprintf("serve: unknown dataset %q (GET /datasets lists the loaded ones)", name))
			return
		}
	default:
		writeError(w, http.StatusInternalServerError, "store_error", err.Error())
		return
	}
	writeJSON(w, map[string]string{"deleted": name})
}

// handleDatasetInfo is GET /datasets/{name}/info: the serving-side view
// (model, tuples, kind, generation, cache state) of one dataset.
func (s *Server) handleDatasetInfo(w http.ResponseWriter, r *http.Request) {
	if !s.authAdmin(w, r) {
		return
	}
	name := r.PathValue("name")
	s.mu.RLock()
	d, ok := s.datasets[name]
	s.mu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_dataset",
			fmt.Sprintf("serve: unknown dataset %q (GET /datasets lists the loaded ones)", name))
		return
	}
	writeJSON(w, d.info())
}
