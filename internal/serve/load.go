package serve

// Dataset loaders: every correlation model the engine serves can be loaded
// from a file at startup. CSV covers the flat models (independent tuples,
// x-relations); JSON specs cover the structured ones (and/xor trees, Markov
// chains). Loading ends in a prepared view wrapped in an engine.Engine —
// the one-time cost that makes every later query cheap.

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/andxor"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/junction"
	"repro/internal/pdb"
)

// Kinds accepted by LoadFile.
const (
	KindIndependent = "ind"   // CSV: score,probability
	KindXRelation   = "xrel"  // CSV: score,probability,group
	KindTree        = "tree"  // JSON: nested and/xor spec
	KindChain       = "chain" // JSON: {"scores": [...], "pairs": [...]}
)

// LoadFile loads one dataset file of the given kind into a prepared engine.
func LoadFile(kind, path string) (*engine.Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	e, err := Load(kind, f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return e, nil
}

// Load loads one dataset of the given kind from a reader.
func Load(kind string, r io.Reader) (*engine.Engine, error) {
	switch kind {
	case KindIndependent:
		return LoadIndependentCSV(r)
	case KindXRelation:
		return LoadXRelationCSV(r)
	case KindTree:
		return LoadTreeJSON(r)
	case KindChain:
		return LoadChainJSON(r)
	default:
		return nil, fmt.Errorf("serve: unknown dataset kind %q (want %s|%s|%s|%s)",
			kind, KindIndependent, KindXRelation, KindTree, KindChain)
	}
}

// readCSV parses score,probability[,group] rows (an optional non-numeric
// header row is skipped) and reports whether any row carried a group.
func readCSV(r io.Reader) (scores, probs []float64, groups []string, grouped bool, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, nil, false, err
		}
		line++
		if len(rec) < 2 {
			return nil, nil, nil, false, fmt.Errorf("serve: line %d: need score,probability", line)
		}
		if line == 1 {
			_, err0 := strconv.ParseFloat(rec[0], 64)
			_, err1 := strconv.ParseFloat(rec[1], 64)
			// Only a row that is non-numeric in BOTH value columns reads as
			// a header; a data row with one typo'd field must error below,
			// not silently vanish (it would shift every tuple ID).
			if err0 != nil && err1 != nil {
				continue
			}
		}
		s, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, nil, nil, false, fmt.Errorf("serve: line %d: bad score %q", line, rec[0])
		}
		p, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, nil, nil, false, fmt.Errorf("serve: line %d: bad probability %q", line, rec[1])
		}
		scores = append(scores, s)
		probs = append(probs, p)
		g := ""
		if len(rec) >= 3 {
			g = rec[2]
		}
		if g != "" {
			grouped = true
		}
		groups = append(groups, g)
	}
	return scores, probs, groups, grouped, nil
}

// LoadIndependentCSV loads score,probability rows as a tuple-independent
// dataset prepared into a sorted view. A group column, if present, is an
// error — use LoadXRelationCSV for x-relations.
func LoadIndependentCSV(r io.Reader) (*engine.Engine, error) {
	scores, probs, _, grouped, err := readCSV(r)
	if err != nil {
		return nil, err
	}
	if grouped {
		return nil, errors.New("serve: independent CSV has a group column; load it as an x-relation (kind xrel)")
	}
	if len(scores) == 0 {
		return nil, errors.New("serve: empty dataset")
	}
	d, err := pdb.NewDataset(scores, probs)
	if err != nil {
		return nil, err
	}
	return engine.New(core.Prepare(d)), nil
}

// LoadXRelationCSV loads score,probability,group rows as an x-relation:
// rows sharing a group label are mutually exclusive alternatives of one
// x-tuple, encoded as the standard height-2 and/xor tree. Groups form in
// first-appearance order; rows with an empty group are singleton x-tuples.
// Tuple IDs in answers are leaf indices in that order.
func LoadXRelationCSV(r io.Reader) (*engine.Engine, error) {
	scores, probs, groups, _, err := readCSV(r)
	if err != nil {
		return nil, err
	}
	if len(scores) == 0 {
		return nil, errors.New("serve: empty dataset")
	}
	gs, _ := andxor.GroupRows(scores, probs, groups)
	t, err := andxor.XTuples(gs)
	if err != nil {
		return nil, err
	}
	return engine.New(andxor.PrepareTree(t)), nil
}

// treeSpec is the recursive JSON form of an and/xor tree node: exactly one
// of leaf, and, xor per node.
//
//	{"and": [
//	  {"xor": {"probs": [0.4, 0.6], "children": [
//	    {"leaf": {"score": 120}}, {"leaf": {"score": 80}}]}},
//	  {"leaf": {"key": "t3", "score": 95}}]}
type treeSpec struct {
	Leaf *leafSpec  `json:"leaf,omitempty"`
	And  []treeSpec `json:"and,omitempty"`
	Xor  *xorSpec   `json:"xor,omitempty"`
}

type leafSpec struct {
	Key   string  `json:"key,omitempty"`
	Score float64 `json:"score"`
}

type xorSpec struct {
	Probs    []float64  `json:"probs"`
	Children []treeSpec `json:"children"`
}

// node builds the andxor node for a spec.
func (ts treeSpec) node(path string) (*andxor.Node, error) {
	set := 0
	if ts.Leaf != nil {
		set++
	}
	if len(ts.And) > 0 {
		set++
	}
	if ts.Xor != nil {
		set++
	}
	if set != 1 {
		return nil, fmt.Errorf("serve: tree node %s must set exactly one of leaf, and, xor", path)
	}
	switch {
	case ts.Leaf != nil:
		if ts.Leaf.Key != "" {
			return andxor.NewKeyedLeaf(ts.Leaf.Key, ts.Leaf.Score), nil
		}
		return andxor.NewLeaf(ts.Leaf.Score), nil
	case ts.Xor != nil:
		kids := make([]*andxor.Node, len(ts.Xor.Children))
		for i, c := range ts.Xor.Children {
			n, err := c.node(fmt.Sprintf("%s.xor[%d]", path, i))
			if err != nil {
				return nil, err
			}
			kids[i] = n
		}
		return andxor.NewXor(ts.Xor.Probs, kids...), nil
	default:
		kids := make([]*andxor.Node, len(ts.And))
		for i, c := range ts.And {
			n, err := c.node(fmt.Sprintf("%s.and[%d]", path, i))
			if err != nil {
				return nil, err
			}
			kids[i] = n
		}
		return andxor.NewAnd(kids...), nil
	}
}

// LoadTreeJSON loads a nested and/xor tree spec (see treeSpec) and prepares
// it. Probability and key constraints are validated by the tree
// constructor.
func LoadTreeJSON(r io.Reader) (*engine.Engine, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec treeSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("serve: malformed tree spec: %w", err)
	}
	root, err := spec.node("root")
	if err != nil {
		return nil, err
	}
	t, err := andxor.New(root)
	if err != nil {
		return nil, err
	}
	return engine.New(andxor.PrepareTree(t)), nil
}

// chainSpec is the JSON form of a Markov chain: n scores and n−1 calibrated
// pairwise joints Pr(Y_j, Y_{j+1}), each a [[p00, p01], [p10, p11]] table.
type chainSpec struct {
	Scores []float64       `json:"scores"`
	Pairs  [][2][2]float64 `json:"pairs"`
}

// LoadChainJSON loads a Markov chain spec and prepares it (the product-tree
// PRFe backend). Calibration of the pairwise joints is validated by the
// chain constructor.
func LoadChainJSON(r io.Reader) (*engine.Engine, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec chainSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("serve: malformed chain spec: %w", err)
	}
	c, err := junction.NewChain(spec.Scores, spec.Pairs)
	if err != nil {
		return nil, err
	}
	return engine.New(junction.PrepareChain(c)), nil
}
