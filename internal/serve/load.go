package serve

// Dataset loaders: every correlation model the engine serves can be loaded
// from a file at startup. Parsing and validation live in internal/store
// (the same code path an imported segment goes through, so a dataset loaded
// at startup and one imported into a store are interchangeable); these
// wrappers keep the serve-level names and finish the job by preparing an
// engine.Engine — the one-time cost that makes every later query cheap.

import (
	"fmt"
	"io"
	"os"

	"repro/internal/engine"
	"repro/internal/store"
)

// Kinds accepted by LoadFile (re-exported from the store, which owns the
// dataset formats).
const (
	KindIndependent = store.KindIndependent // CSV: score,probability
	KindXRelation   = store.KindXRelation   // CSV: score,probability,group
	KindTree        = store.KindTree        // JSON: nested and/xor spec
	KindChain       = store.KindChain       // JSON: {"scores": [...], "pairs": [...]}
)

// LoadFile loads one dataset file of the given kind into a prepared engine.
func LoadFile(kind, path string) (*engine.Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	e, err := Load(kind, f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return e, nil
}

// Load loads one dataset of the given kind from a reader.
func Load(kind string, r io.Reader) (*engine.Engine, error) {
	ds, err := store.Parse(kind, r)
	if err != nil {
		return nil, err
	}
	return ds.Engine()
}

// LoadIndependentCSV loads score,probability rows as a tuple-independent
// dataset prepared into a sorted view. A group column, if present, is an
// error — use LoadXRelationCSV for x-relations.
func LoadIndependentCSV(r io.Reader) (*engine.Engine, error) {
	return Load(KindIndependent, r)
}

// LoadXRelationCSV loads score,probability,group rows as an x-relation:
// rows sharing a group label are mutually exclusive alternatives of one
// x-tuple, encoded as the standard height-2 and/xor tree. Groups form in
// first-appearance order; rows with an empty group are singleton x-tuples.
// Tuple IDs in answers are leaf indices in that order.
func LoadXRelationCSV(r io.Reader) (*engine.Engine, error) {
	return Load(KindXRelation, r)
}

// LoadTreeJSON loads a nested and/xor tree spec (see store.TreeSpec) and
// prepares it. Probability and key constraints are validated by the tree
// constructor.
func LoadTreeJSON(r io.Reader) (*engine.Engine, error) {
	return Load(KindTree, r)
}

// LoadChainJSON loads a Markov chain spec and prepares it (the product-tree
// PRFe backend). Calibration of the pairwise joints is validated by the
// chain constructor.
func LoadChainJSON(r io.Reader) (*engine.Engine, error) {
	return Load(KindChain, r)
}
