package serve

// The buffered response path: byte cache → per-key single-flight → encode
// (→ gzip). Every buffered /rank and /rankbatch answer funnels through
// Server.respond, which tries the encoded-byte cache first, then collapses
// concurrent identical cold requests into one evaluation + one encode via
// the dataset's flight group (reusing engine.FlightGroup — same latch
// semantics at both layers), and only then runs the engine.
//
// Byte-cache keys are composed as prefix|encoding|Query.CacheKey, where the
// prefix separates /rank ("R") from buffered /rankbatch ("B") and columnar
// /rankbatch ("C") keyspaces, and the encoding tag ("gz"/"id") keeps the
// gzip and identity variants of one query as distinct entries — a cache
// that ignored encoding would serve compressed bytes to a client that
// cannot decode them.

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// gzipMinSize is the smallest body worth compressing: below this the gzip
// header/trailer and the client's inflate outweigh the byte savings, so the
// identity bytes are served (and cached) even when gzip was negotiated.
const gzipMinSize = 1024

// gzipPool recycles gzip writers; BestSpeed because the wire win we are
// after is latency, and level-9's extra ratio on JSON number soup is small.
var gzipPool = sync.Pool{
	New: func() any {
		zw, _ := gzip.NewWriterLevel(nil, gzip.BestSpeed)
		return zw
	},
}

// acceptsGzip reports whether the client's Accept-Encoding admits gzip.
// Parsing is deliberately minimal: a gzip (or *) token accepts unless it
// carries an explicit q=0.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		token, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		token = strings.TrimSpace(token)
		if token != "gzip" && token != "*" {
			continue
		}
		q := strings.TrimSpace(params)
		if q == "q=0" || strings.HasPrefix(q, "q=0.0") || strings.HasPrefix(q, "q=0,") {
			return false
		}
		return true
	}
	return false
}

// byteKey composes the byte-cache / flight key for one buffered response.
func byteKey(prefix string, wantGzip bool, qkey string) string {
	enc := "id"
	if wantGzip {
		enc = "gz"
	}
	return prefix + "|" + enc + "|" + qkey
}

// encodeBody encodes v exactly as writeJSON would (json.Encoder, trailing
// newline — the smoke test diffs these bytes against `prfserve -oneshot`)
// and optionally gzips the result.
func encodeBody(v any, wantGzip bool) (byteBody, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		return byteBody{}, err
	}
	raw := buf.Bytes()
	if !wantGzip || len(raw) < gzipMinSize {
		return byteBody{bytes: raw}, nil
	}
	var zbuf bytes.Buffer
	zw := gzipPool.Get().(*gzip.Writer)
	zw.Reset(&zbuf)
	_, werr := zw.Write(raw)
	cerr := zw.Close()
	gzipPool.Put(zw)
	if werr != nil {
		return byteBody{}, werr
	}
	if cerr != nil {
		return byteBody{}, cerr
	}
	return byteBody{bytes: zbuf.Bytes(), gzipped: true}, nil
}

// writeBody emits a cached-or-fresh encoded body as the 200 answer.
func writeBody(w http.ResponseWriter, b byteBody) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Vary", "Accept-Encoding")
	if b.gzipped {
		h.Set("Content-Encoding", "gzip")
	}
	h.Set("Content-Length", strconv.Itoa(len(b.bytes)))
	_, _ = w.Write(b.bytes)
}

// respond drives the buffered hot path for one request: byte-cache get →
// single-flight{byte-cache peek → build → encode → put} → write. build
// evaluates the query and returns the response value to encode; it runs at
// most once per key across all concurrent callers (unless single-flight is
// disabled). A key of "" bypasses both the cache and the latch.
func (s *Server) respond(ctx context.Context, w http.ResponseWriter, d *dataset, key string, wantGzip bool, build func(context.Context) (any, error)) {
	if key != "" {
		if body, ok := d.bytes.get(key); ok {
			writeBody(w, body)
			return
		}
	}
	fill := func() (any, error) {
		if body, ok := d.bytes.peek(key); ok {
			return body, nil
		}
		v, err := build(ctx)
		if err != nil {
			return nil, err
		}
		body, err := encodeBody(v, wantGzip)
		if err != nil {
			return nil, err
		}
		if key != "" {
			d.bytes.put(key, body)
		}
		return body, nil
	}
	var got any
	var err error
	if key == "" || s.opts.DisableSingleFlight {
		got, err = fill()
	} else {
		got, err = d.flight.Do(ctx, key, fill)
	}
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeBody(w, got.(byteBody))
}
