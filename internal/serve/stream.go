package serve

// Streamed /rankbatch: instead of materializing the full grid and buffering
// a ~1 MB JSON body, each grid-point result is evaluated, encoded and
// flushed as soon as it exists (chunked transfer encoding — net/http adds
// the chunking automatically once the handler flushes before returning).
// The emitted bytes are composed to be byte-identical to the buffered
// BatchResponse encoding, so reassembling a streamed response reproduces
// the buffered body exactly — that equivalence is certified by the tests
// and by scripts/serve_smoke.sh.
//
// Streaming trades the byte cache and the encode-once batch for first-byte
// latency, so it bypasses both the byte cache and the single-flight latch:
// every streamed request evaluates on the engine-level cache directly
// (chunk by chunk, which also means a context cut mid-grid stops the
// remaining evaluation immediately). Mid-stream failures cannot be turned
// into an error status — the 200 header is already on the wire — so the
// stream is truncated instead, which a client detects as unterminated JSON.

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/engine"
)

// flushWriter pairs the response writer with its flusher; httptest
// recorders and net/http's real writer both implement http.Flusher.
type flushWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func (fw flushWriter) flush() {
	if fw.f != nil {
		fw.f.Flush()
	}
}

// streamBatch answers POST /rankbatch with "stream": true.
func (s *Server) streamBatch(w http.ResponseWriter, r *http.Request, d *dataset, req *RankRequest, q engine.Query) {
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	fw := flushWriter{w: w}
	if f, ok := w.(http.Flusher); ok {
		fw.f = f
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Vary", "Accept-Encoding")
	wantGzip := acceptsGzip(r)
	var out io.Writer = w
	var zw *gzip.Writer
	if wantGzip {
		h.Set("Content-Encoding", "gzip")
		zw = gzipPool.Get().(*gzip.Writer)
		zw.Reset(w)
		defer gzipPool.Put(zw)
		out = zw
	}

	// The prefix/separator/suffix bytes below mirror json.Encoder on a
	// BatchResponse value; json.Marshal per element matches the encoder's
	// element encoding, so the concatenation is the buffered body.
	started := false
	err := d.eng.RankBatchStream(ctx, q, 1, func(rs []engine.Result) error {
		for i := range rs {
			b, err := json.Marshal(FromResult(&rs[i]))
			if err != nil {
				return err
			}
			if !started {
				started = true
				name, err := json.Marshal(d.name)
				if err != nil {
					return err
				}
				fmt.Fprintf(out, `{"dataset":%s,"results":[`, name)
			} else {
				if _, err := out.Write([]byte{','}); err != nil {
					return err
				}
			}
			if _, err := out.Write(b); err != nil {
				return err
			}
		}
		if zw != nil {
			if err := zw.Flush(); err != nil {
				return err
			}
		}
		fw.flush()
		return nil
	})
	if err != nil {
		if !started {
			// Nothing on the wire yet: undo the streaming headers and
			// answer with the uniform JSON error instead.
			h.Del("Content-Encoding")
			writeEngineError(w, err)
			return
		}
		return // mid-stream: truncate
	}
	if !started {
		// RankBatchStream validates a non-empty grid, so success always
		// emitted at least one element; guard anyway.
		name, _ := json.Marshal(d.name)
		fmt.Fprintf(out, `{"dataset":%s,"results":[`, name)
	}
	_, _ = out.Write([]byte("]}\n"))
	if zw != nil {
		_ = zw.Close()
	}
	fw.flush()
}
