// Package serve is the HTTP front end of the unified ranking engine — the
// ROADMAP's serving layer. One Server holds a set of named, immutable
// datasets (each already prepared into its fastest backend view and wrapped
// in an engine.Engine), routes declarative JSON queries to the right
// backend, enforces per-request deadlines through the engines' context
// plumbing, and memoizes hot queries at two layers: a per-dataset
// engine-level result cache and, above it, a per-dataset encoded-byte cache
// so a hot hit is one Write with no re-encode (bytecache.go). Concurrent
// identical cold requests collapse into one evaluation + one encode through
// per-key single-flight latches (singleflight.go), POST /rankbatch can
// stream each grid point as it is computed (stream.go), responses negotiate
// Accept-Encoding: gzip, and large grids can ask for a compact columnar
// payload ("format": "columnar").
//
// Endpoints:
//
//	POST /rank       {"dataset": name, "query": {...}, "timeout_ms": n}
//	POST /rankbatch  same body; query.alphas is the α grid; plus
//	                 "stream": true and "format": "columnar"
//	GET  /datasets   the loaded datasets (name, model, size, cache on/off)
//	GET  /stats      request, cache, byte-cache and single-flight counters
//	GET  /healthz    liveness
//
// A server built over a dataset store (Options.Store) additionally speaks
// the authenticated admin lifecycle (Bearer Options.AdminToken):
//
//	POST   /datasets/{name}?kind=K  import/replace a dataset (body = CSV/JSON)
//	DELETE /datasets/{name}         drop a dataset from server and store
//	GET    /datasets/{name}/info    kind, generation, cache counters
//
// POST bodies must declare Content-Type: application/json (or a +json
// subtype); admin imports are raw dataset files and skip that check. Every
// error is a JSON body with a stable code and the matching HTTP status:
// bad_request 400, unauthorized 401, admin_disabled 403, unknown_dataset
// and not_found 404, method_not_allowed 405, too_large 413,
// unsupported_media_type 415, deadline_exceeded 504, store_error 500.
// Dataset views stay immutable — a refresh installs a brand-new dataset
// (fresh engine + caches, next store generation) behind the name with one
// atomic pointer swap, in-flight queries finish on the old view, and
// neither cache ever needs item-level invalidation: a generation's caches
// live exactly as long as its view.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/andxor"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/junction"
	"repro/internal/store"
)

// Options configures a Server.
type Options struct {
	// DefaultTimeout bounds requests that carry no timeout_ms; zero means
	// no default deadline.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested timeouts (and the default); zero
	// means no clamp.
	MaxTimeout time.Duration
	// CacheCapacity is the per-dataset result-cache entry bound: 0 takes
	// engine.DefaultCacheCapacity, negative disables caching.
	CacheCapacity int
	// ByteCacheCapacity is the per-dataset response-byte-cache entry bound:
	// 0 takes DefaultByteCacheCapacity, negative disables the byte cache
	// (the engine-level result cache is governed by CacheCapacity alone).
	ByteCacheCapacity int
	// DisableSingleFlight turns off the per-key latches that collapse
	// concurrent identical cold requests into one evaluation + encode.
	// Exists so the load benchmark can measure the latch; leave it off in
	// production.
	DisableSingleFlight bool
	// MaxBodyBytes bounds request bodies; 0 takes 1 MiB.
	MaxBodyBytes int64
	// MaxParallelism clamps the per-request query parallelism knob
	// (query.parallelism): one giant query may fan out across idle cores,
	// but never wider than this, so it cannot starve concurrent requests.
	// 0 takes GOMAXPROCS; negative disables the knob (every query runs the
	// scalar path).
	MaxParallelism int
	// Store, when set, backs the dataset-lifecycle admin endpoints: imports
	// persist there and installs re-open from it (so what is served is
	// provably what was stored).
	Store *store.Store
	// AdminToken authorizes the admin endpoints via Authorization: Bearer.
	// Empty leaves them disabled (typed 403) — there is no default secret.
	AdminToken string
	// MaxAdminBodyBytes bounds admin dataset uploads; 0 takes 64 MiB.
	MaxAdminBodyBytes int64
}

const (
	defaultMaxBody      = 1 << 20
	defaultMaxAdminBody = 64 << 20
)

// dataset is one loaded, immutable dataset with its engines and wire-path
// state: the encoded-byte cache and the serve-level single-flight group
// (the engine-level CachedEngine carries its own flight group for callers
// that bypass HTTP).
type dataset struct {
	name   string
	model  string
	kind   string // store dataset kind; "" when registered directly
	gen    uint64 // store generation; 0 when registered directly
	eng    *engine.Engine
	cached *engine.CachedEngine // nil when caching is disabled
	bytes  *byteCache           // nil when byte caching is disabled
	flight engine.FlightGroup
}

// rank evaluates through the result cache when one is attached.
func (d *dataset) rank(ctx context.Context, q engine.Query) (*engine.Result, error) {
	if d.cached != nil {
		return d.cached.Rank(ctx, q)
	}
	return d.eng.Rank(ctx, q)
}

func (d *dataset) rankBatch(ctx context.Context, q engine.Query) ([]engine.Result, error) {
	if d.cached != nil {
		return d.cached.RankBatch(ctx, q)
	}
	return d.eng.RankBatch(ctx, q)
}

// Server is the HTTP front end. Datasets are registered before serving via
// AddDataset; the Server itself is an http.Handler. Safe for concurrent
// use.
type Server struct {
	opts  Options
	mux   *http.ServeMux
	start time.Time

	mu       sync.RWMutex
	datasets map[string]*dataset
	// loadErrors records datasets that failed to load or install, keyed by
	// name — the skip-and-report startup contract surfaces them on /stats
	// instead of aborting the server. A later successful install clears the
	// entry.
	loadErrors map[string]string

	// requests counts every /rank and /rankbatch attempt, including ones
	// rejected before evaluation — rejected traffic must stay visible on
	// /stats during incidents.
	requests atomic.Int64
}

// New builds an empty server with the given options.
func New(opts Options) *Server {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = defaultMaxBody
	}
	s := &Server{opts: opts, datasets: map[string]*dataset{}, loadErrors: map[string]string{}, start: time.Now()}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /rank", s.handleRank)
	s.mux.HandleFunc("POST /rankbatch", s.handleRankBatch)
	s.mux.HandleFunc("GET /datasets", s.handleDatasets)
	s.mux.HandleFunc("POST /datasets/{name}", s.handleDatasetImport)
	s.mux.HandleFunc("DELETE /datasets/{name}", s.handleDatasetDelete)
	s.mux.HandleFunc("GET /datasets/{name}/info", s.handleDatasetInfo)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return s
}

// endpointMethods maps every fixed path to its one allowed method, for the
// JSON 405/404 fallbacks in ServeHTTP.
var endpointMethods = map[string]string{
	"/rank":      http.MethodPost,
	"/rankbatch": http.MethodPost,
	"/datasets":  http.MethodGet,
	"/stats":     http.MethodGet,
	"/healthz":   http.MethodGet,
}

// allowedMethods reports the Allow set for a path, covering the wildcard
// admin routes the endpointMethods table cannot.
func allowedMethods(path string) (string, bool) {
	if m, ok := endpointMethods[path]; ok {
		return m, true
	}
	rest, ok := strings.CutPrefix(path, "/datasets/")
	if !ok || rest == "" {
		return "", false
	}
	if name, isInfo := strings.CutSuffix(rest, "/info"); isInfo && name != "" && !strings.Contains(name, "/") {
		return http.MethodGet, true
	}
	if !strings.Contains(rest, "/") {
		return "POST, DELETE", true
	}
	return "", false
}

// AddDataset registers a prepared dataset under a unique name. The model
// label is inferred from the engine's backend. Engines must not be shared
// across names (each name owns its cache).
func (s *Server) AddDataset(name string, e *engine.Engine) error {
	if name == "" {
		return errors.New("serve: dataset name must be non-empty")
	}
	if e == nil || e.Ranker() == nil {
		return fmt.Errorf("serve: dataset %q has no engine", name)
	}
	d := s.newDataset(name, e)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.datasets[name]; dup {
		return fmt.Errorf("serve: dataset %q already registered", name)
	}
	s.datasets[name] = d
	delete(s.loadErrors, name)
	return nil
}

// newDataset builds a dataset entry with its own fresh cache generation —
// every install goes through here, so counters always start at zero for a
// new view.
func (s *Server) newDataset(name string, e *engine.Engine) *dataset {
	d := &dataset{name: name, model: modelName(e.Ranker()), eng: e}
	if s.opts.CacheCapacity >= 0 {
		d.cached = engine.NewCached(e, s.opts.CacheCapacity)
	}
	d.bytes = newByteCache(s.opts.ByteCacheCapacity)
	return d
}

// RecordLoadError reports a dataset that failed to load at startup; it
// appears under load_errors on /stats until a later install of the same
// name succeeds. The skip-and-report startup path in cmd/prfserve uses
// this so one broken file no longer takes the whole server down.
func (s *Server) RecordLoadError(name string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loadErrors[name] = err.Error()
}

// InstallFromStore (re)opens one dataset from the configured store and
// atomically swaps it in under its name: a brand-new immutable view with
// brand-new engine/byte caches. In-flight queries keep the old view;
// the old generation's caches retire with it.
func (s *Server) InstallFromStore(name string) error {
	if s.opts.Store == nil {
		return errors.New("serve: no dataset store configured")
	}
	e, info, err := s.opts.Store.OpenEngine(name)
	if err != nil {
		return err
	}
	d := s.newDataset(name, e)
	d.kind, d.gen = info.Kind, info.Generation
	s.mu.Lock()
	defer s.mu.Unlock()
	s.datasets[name] = d
	delete(s.loadErrors, name)
	return nil
}

// modelName labels the correlation model behind a Ranker.
func modelName(r engine.Ranker) string {
	switch r.(type) {
	case *core.Prepared, *store.LazyPrepared:
		return "independent"
	case *andxor.PreparedTree:
		return "andxor"
	case *junction.PreparedNetwork:
		return "network"
	case *junction.PreparedChain:
		return "chain"
	default:
		return "custom"
	}
}

func (s *Server) dataset(name string) (*dataset, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.datasets[name]
	return d, ok
}

// ServeHTTP implements http.Handler. Requests the mux cannot route — wrong
// method on a known path, unknown path — get the same JSON error shape as
// everything else instead of net/http's plain-text defaults.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if _, pattern := s.mux.Handler(r); pattern == "" {
		if methods, known := allowedMethods(r.URL.Path); known {
			w.Header().Set("Allow", methods)
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
				fmt.Sprintf("serve: %s %s: use %s", r.Method, r.URL.Path, methods))
			return
		}
		writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("serve: no such endpoint %s (have /rank, /rankbatch, /datasets, /datasets/{name}, /stats, /healthz)", r.URL.Path))
		return
	}
	s.mux.ServeHTTP(w, r)
}

// writeError emits the uniform JSON error body.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: msg, Code: code})
}

// writeJSON emits a 200 with the JSON body. Encoding errors at this point
// mean the client is gone (headers are already written); nothing to do.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// checkContentType enforces JSON request bodies on the POST endpoints: the
// declared media type must be application/json or a +json subtype. Anything
// else — including a missing or unparseable Content-Type — is a typed 415,
// not a generic decode 400: a client POSTing a form or protobuf body should
// learn what the endpoint speaks, not that its bytes failed to parse.
func checkContentType(w http.ResponseWriter, r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	mt, _, err := mime.ParseMediaType(ct)
	if err == nil && (mt == "application/json" || strings.HasSuffix(mt, "+json")) {
		return true
	}
	writeError(w, http.StatusUnsupportedMediaType, "unsupported_media_type",
		fmt.Sprintf("serve: Content-Type %q is not JSON (send application/json)", ct))
	return false
}

// decodeRequest parses and validates the shared request envelope, resolving
// the dataset. A nil *dataset return means the error was already written.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*RankRequest, *dataset) {
	if !checkContentType(w, r) {
		return nil, nil
	}
	var req RankRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "too_large",
				fmt.Sprintf("serve: request body exceeds %d bytes", tooLarge.Limit))
			return nil, nil
		}
		writeError(w, http.StatusBadRequest, "bad_request", "serve: malformed request JSON: "+err.Error())
		return nil, nil
	}
	if req.TimeoutMS < 0 {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("serve: negative timeout_ms %d", req.TimeoutMS))
		return nil, nil
	}
	d, ok := s.dataset(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_dataset",
			fmt.Sprintf("serve: unknown dataset %q (GET /datasets lists the loaded ones)", req.Dataset))
		return nil, nil
	}
	return &req, d
}

// requestContext derives the per-request deadline context: the client's
// timeout_ms (else the server default), clamped by MaxTimeout. A server
// with no default and no client timeout imposes no deadline — MaxTimeout
// only bounds deadlines that exist, it never creates one.
func (s *Server) requestContext(r *http.Request, timeoutMS int64) (ctx context.Context, cancel context.CancelFunc) {
	d := s.opts.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d <= 0 {
		return context.WithCancel(r.Context())
	}
	if s.opts.MaxTimeout > 0 && d > s.opts.MaxTimeout {
		d = s.opts.MaxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

// clampParallelism applies the server's per-request parallelism cap to a
// decoded query: client values above the cap are lowered, not rejected (the
// knob is advisory width, and the clamp runs before the cache key is
// computed so equivalent-after-clamp requests share cache entries).
// Negative client values pass through to the engine's validation error.
func (s *Server) clampParallelism(q *engine.Query) {
	maxPar := s.opts.MaxParallelism
	if maxPar == 0 {
		maxPar = runtime.GOMAXPROCS(0)
	}
	if maxPar < 0 {
		maxPar = 0
	}
	if q.Parallelism > maxPar {
		q.Parallelism = maxPar
	}
}

// writeEngineError maps evaluation errors onto statuses: context deadline
// and cancellation are 504 (the request-scoped work was cut off), anything
// else the engines return is a query-validation failure, 400.
func writeEngineError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		writeError(w, http.StatusGatewayTimeout, "deadline_exceeded", "serve: "+err.Error())
		return
	}
	writeError(w, http.StatusBadRequest, "bad_request", "serve: "+err.Error())
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	req, d := s.decodeRequest(w, r)
	if req == nil {
		return
	}
	if req.Stream || req.Format != "" {
		writeError(w, http.StatusBadRequest, "bad_request",
			"serve: stream and format apply to /rankbatch only")
		return
	}
	q, err := req.Query.ToQuery()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	s.clampParallelism(&q)
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	wantGzip := acceptsGzip(r)
	key := ""
	if qkey, ok := q.CacheKey(); ok {
		key = byteKey("R", wantGzip, qkey)
	}
	s.respond(ctx, w, d, key, wantGzip, func(ctx context.Context) (any, error) {
		res, err := d.rank(ctx, q)
		if err != nil {
			return nil, err
		}
		return RankResponse{Dataset: d.name, WireResult: FromResult(res)}, nil
	})
}

func (s *Server) handleRankBatch(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	req, d := s.decodeRequest(w, r)
	if req == nil {
		return
	}
	q, err := req.Query.ToQuery()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	s.clampParallelism(&q)
	prefix := "B"
	switch req.Format {
	case "", "results":
	case "columnar":
		prefix = "C"
	default:
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("serve: unknown format %q (want results|columnar)", req.Format))
		return
	}
	if req.Stream {
		if prefix == "C" {
			writeError(w, http.StatusBadRequest, "bad_request",
				"serve: streamed responses use the results format, not columnar")
			return
		}
		s.streamBatch(w, r, d, req, q)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	wantGzip := acceptsGzip(r)
	key := ""
	if qkey, ok := q.CacheKey(); ok {
		key = byteKey(prefix, wantGzip, qkey)
	}
	s.respond(ctx, w, d, key, wantGzip, func(ctx context.Context) (any, error) {
		res, err := d.rankBatch(ctx, q)
		if err != nil {
			return nil, err
		}
		if prefix == "C" {
			return FromResultsColumnar(d.name, res), nil
		}
		return BatchResponse{Dataset: d.name, Results: FromResults(res)}, nil
	})
}

// DatasetInfo is one row of GET /datasets (and the body of
// GET /datasets/{name}/info).
type DatasetInfo struct {
	Name   string `json:"name"`
	Model  string `json:"model"`
	Tuples int    `json:"tuples"`
	Cached bool   `json:"cached"`
	// Kind and Generation identify the stored snapshot behind the view;
	// both are absent for datasets registered directly via AddDataset.
	Kind       string `json:"kind,omitempty"`
	Generation uint64 `json:"generation,omitempty"`
}

func (d *dataset) info() DatasetInfo {
	return DatasetInfo{
		Name:       d.name,
		Model:      d.model,
		Tuples:     d.eng.Ranker().Len(),
		Cached:     d.cached != nil,
		Kind:       d.kind,
		Generation: d.gen,
	}
}

func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	infos := make([]DatasetInfo, 0, len(s.datasets))
	for _, d := range s.datasets {
		infos = append(infos, d.info())
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, infos)
}

// DatasetStats is the per-dataset block of GET /stats.
type DatasetStats struct {
	Model      string             `json:"model"`
	Tuples     int                `json:"tuples"`
	Kind       string             `json:"kind,omitempty"`
	Generation uint64             `json:"generation,omitempty"`
	Cache      *engine.CacheStats `json:"cache,omitempty"`
	ByteCache  *ByteCacheStats    `json:"byte_cache,omitempty"`
}

// StatsResponse is the body of GET /stats.
type StatsResponse struct {
	UptimeMS int64                   `json:"uptime_ms"`
	Requests int64                   `json:"requests"`
	Datasets map[string]DatasetStats `json:"datasets"`
	// LoadErrors lists datasets that failed to load at startup (or whose
	// last install attempt failed), keyed by name — the skip-and-report
	// contract: a broken dataset is visible here, not fatal.
	LoadErrors map[string]string `json:"load_errors,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := StatsResponse{
		UptimeMS: time.Since(s.start).Milliseconds(),
		Requests: s.requests.Load(),
		Datasets: map[string]DatasetStats{},
	}
	s.mu.RLock()
	for name, d := range s.datasets {
		st := DatasetStats{Model: d.model, Tuples: d.eng.Ranker().Len(), Kind: d.kind, Generation: d.gen}
		if d.cached != nil {
			cs := d.cached.Stats()
			st.Cache = &cs
		}
		if d.bytes != nil {
			bs := d.bytes.stats()
			bs.Flights, bs.Shared = d.flight.Stats()
			st.ByteCache = &bs
		}
		resp.Datasets[name] = st
	}
	if len(s.loadErrors) > 0 {
		resp.LoadErrors = make(map[string]string, len(s.loadErrors))
		for name, msg := range s.loadErrors {
			resp.LoadErrors[name] = msg
		}
	}
	s.mu.RUnlock()
	writeJSON(w, resp)
}
