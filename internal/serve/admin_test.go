package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/store"
)

const adminToken = "test-admin-token"

// adminServer builds a store-backed server with the lifecycle endpoints
// enabled and one independent dataset imported as generation 1.
func adminServer(t *testing.T, opts Options) (*Server, *store.Store) {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "segs"))
	if err != nil {
		t.Fatal(err)
	}
	opts.Store = st
	opts.AdminToken = adminToken
	s := New(opts)
	ds, err := store.Parse(store.KindIndependent, strings.NewReader("10,0.9\n8,0.5\n6,0.25\n4,0.8\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Import("d", ds); err != nil {
		t.Fatal(err)
	}
	if err := s.InstallFromStore("d"); err != nil {
		t.Fatal(err)
	}
	return s, st
}

func adminReq(t *testing.T, method, url, token string, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func errCode(t *testing.T, data []byte) string {
	t.Helper()
	var e ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("non-JSON error body %q: %v", data, err)
	}
	return e.Code
}

func TestAdminAuth(t *testing.T) {
	s, _ := adminServer(t, Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, tc := range []struct {
		name, method, path, token string
		status                    int
		code                      string
	}{
		{"import no token", http.MethodPost, "/datasets/d?kind=ind", "", http.StatusUnauthorized, "unauthorized"},
		{"import bad token", http.MethodPost, "/datasets/d?kind=ind", "wrong", http.StatusUnauthorized, "unauthorized"},
		{"delete no token", http.MethodDelete, "/datasets/d", "", http.StatusUnauthorized, "unauthorized"},
		{"info bad token", http.MethodGet, "/datasets/d/info", "nope", http.StatusUnauthorized, "unauthorized"},
	} {
		resp, body := adminReq(t, tc.method, ts.URL+tc.path, tc.token, "")
		if resp.StatusCode != tc.status || errCode(t, body) != tc.code {
			t.Errorf("%s: got %d %s, want %d %s", tc.name, resp.StatusCode, errCode(t, body), tc.status, tc.code)
		}
	}

	// A server without admin configuration answers 403 admin_disabled even
	// to the right method and path — the feature is off, not forbidden.
	plain := httptest.NewServer(New(Options{}))
	defer plain.Close()
	resp, body := adminReq(t, http.MethodPost, plain.URL+"/datasets/d?kind=ind", adminToken, "1,0.5\n")
	if resp.StatusCode != http.StatusForbidden || errCode(t, body) != "admin_disabled" {
		t.Fatalf("unconfigured admin: got %d %s", resp.StatusCode, errCode(t, body))
	}
}

func TestAdminImportSwapAndInfo(t *testing.T) {
	s, st := adminServer(t, Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Replace generation 1 with a different dataset.
	resp, body := adminReq(t, http.MethodPost, ts.URL+"/datasets/d?kind=ind", adminToken, "5,0.5\n3,0.25\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("import: %d %s", resp.StatusCode, body)
	}
	var info store.Info
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Generation != 2 || info.Tuples != 2 || info.Kind != store.KindIndependent {
		t.Fatalf("import info %+v", info)
	}
	if got, err := st.Info("d"); err != nil || got.Generation != 2 {
		t.Fatalf("store not updated: %+v %v", got, err)
	}

	// The serving view swapped with it.
	resp, body = adminReq(t, http.MethodGet, ts.URL+"/datasets/d/info", adminToken, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("info: %d %s", resp.StatusCode, body)
	}
	var di DatasetInfo
	if err := json.Unmarshal(body, &di); err != nil {
		t.Fatal(err)
	}
	if di.Generation != 2 || di.Tuples != 2 || di.Model != "independent" || di.Kind != store.KindIndependent {
		t.Fatalf("serving info %+v", di)
	}

	// Unknown name and bad inputs are typed client errors.
	resp, body = adminReq(t, http.MethodGet, ts.URL+"/datasets/ghost/info", adminToken, "")
	if resp.StatusCode != http.StatusNotFound || errCode(t, body) != "unknown_dataset" {
		t.Fatalf("ghost info: %d %s", resp.StatusCode, body)
	}
	resp, body = adminReq(t, http.MethodPost, ts.URL+"/datasets/d", adminToken, "1,0.5\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing kind: %d %s", resp.StatusCode, body)
	}
	resp, body = adminReq(t, http.MethodPost, ts.URL+"/datasets/d?kind=ind", adminToken, "not,a,csv\nrow")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: %d %s", resp.StatusCode, body)
	}
	resp, body = adminReq(t, http.MethodPost, ts.URL+"/datasets/bad..name$?kind=ind", adminToken, "1,0.5\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad name: %d %s", resp.StatusCode, body)
	}
	// A failed import must leave the old view serving.
	s.mu.RLock()
	d, ok := s.datasets["d"]
	s.mu.RUnlock()
	if !ok || d.gen != 2 {
		t.Fatalf("failed imports disturbed the serving view")
	}
}

func TestAdminDelete(t *testing.T) {
	s, st := adminServer(t, Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, body := adminReq(t, http.MethodDelete, ts.URL+"/datasets/d", adminToken, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d %s", resp.StatusCode, body)
	}
	if _, err := st.Info("d"); err == nil {
		t.Fatal("segment survived the delete")
	}
	// Queries now see an unknown dataset; a second delete is the typed 404.
	resp, body = post(t, ts.URL+"/rank", reqBody(t, "d", WireQuery{Metric: "prfe", Alpha: 0.5}))
	if resp.StatusCode != http.StatusNotFound || errCode(t, body) != "unknown_dataset" {
		t.Fatalf("rank after delete: %d %s", resp.StatusCode, body)
	}
	resp, body = adminReq(t, http.MethodDelete, ts.URL+"/datasets/d", adminToken, "")
	if resp.StatusCode != http.StatusNotFound || errCode(t, body) != "unknown_dataset" {
		t.Fatalf("double delete: %d %s", resp.StatusCode, body)
	}
}

// TestAdminWrongMethodAllow pins the JSON 405 on the wildcard admin paths.
func TestAdminWrongMethodAllow(t *testing.T) {
	s, _ := adminServer(t, Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, body := adminReq(t, http.MethodPut, ts.URL+"/datasets/d", adminToken, "")
	if resp.StatusCode != http.StatusMethodNotAllowed || errCode(t, body) != "method_not_allowed" {
		t.Fatalf("PUT on dataset: %d %s", resp.StatusCode, body)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "POST") || !strings.Contains(allow, "DELETE") {
		t.Fatalf("Allow %q", allow)
	}
	resp, body = adminReq(t, http.MethodPost, ts.URL+"/datasets/d/info", adminToken, "")
	if resp.StatusCode != http.StatusMethodNotAllowed || errCode(t, body) != "method_not_allowed" {
		t.Fatalf("POST on info: %d %s", resp.StatusCode, body)
	}
}

// TestAdminCacheCountersResetPerGeneration: a swap installs fresh caches,
// so /stats counters for the name start over and the old generation's
// entries can never answer for the new data.
func TestAdminCacheCountersResetPerGeneration(t *testing.T) {
	s, _ := adminServer(t, Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	rank := reqBody(t, "d", WireQuery{Metric: "prfe", Alpha: 0.5})
	for i := 0; i < 3; i++ { // one miss, two hits
		if resp, body := post(t, ts.URL+"/rank", rank); resp.StatusCode != http.StatusOK {
			t.Fatalf("rank %d: %d %s", i, resp.StatusCode, body)
		}
	}
	stats := func() DatasetStats {
		resp, body := adminReq(t, http.MethodGet, ts.URL+"/stats", "", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stats: %d %s", resp.StatusCode, body)
		}
		var sr StatsResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		return sr.Datasets["d"]
	}
	warm := stats()
	if warm.ByteCache == nil || warm.ByteCache.Hits == 0 {
		t.Fatalf("warm-up produced no byte-cache hits: %+v", warm)
	}
	if warm.Generation != 1 {
		t.Fatalf("generation %d before swap", warm.Generation)
	}

	resp, body := adminReq(t, http.MethodPost, ts.URL+"/datasets/d?kind=ind", adminToken, "5,0.5\n3,0.25\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap: %d %s", resp.StatusCode, body)
	}
	fresh := stats()
	if fresh.Generation != 2 {
		t.Fatalf("generation %d after swap", fresh.Generation)
	}
	if fresh.ByteCache != nil && (fresh.ByteCache.Hits != 0 || fresh.ByteCache.Misses != 0) {
		t.Fatalf("byte-cache counters survived the swap: %+v", fresh.ByteCache)
	}
	if fresh.Cache != nil && (fresh.Cache.Hits != 0 || fresh.Cache.Misses != 0) {
		t.Fatalf("result-cache counters survived the swap: %+v", fresh.Cache)
	}
}

// TestStartupSkipAndReport is the regression test for the startup
// partial-failure bug: a broken dataset must surface as a typed /stats
// entry while the healthy ones serve.
func TestStartupSkipAndReport(t *testing.T) {
	s, st := adminServer(t, Options{})
	// Simulate the prfserve startup loop over a store that also holds a
	// corrupt segment.
	if err := writeCorruptSegment(st); err != nil {
		t.Fatal(err)
	}
	names, err := st.Names()
	if err != nil {
		t.Fatal(err)
	}
	broken := 0
	for _, name := range names {
		s.mu.RLock()
		_, have := s.datasets[name]
		s.mu.RUnlock()
		if have {
			continue
		}
		if err := s.InstallFromStore(name); err != nil {
			s.RecordLoadError(name, err)
			broken++
		}
	}
	if broken != 1 {
		t.Fatalf("corrupt segment loaded cleanly")
	}

	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, body := adminReq(t, http.MethodGet, ts.URL+"/stats", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d %s", resp.StatusCode, body)
	}
	var sr StatsResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.LoadErrors["broken"] == "" {
		t.Fatalf("load_errors missing the broken dataset: %+v", sr.LoadErrors)
	}
	if _, ok := sr.Datasets["d"]; !ok {
		t.Fatal("healthy dataset missing from stats")
	}
	// The healthy dataset serves; the broken one is a typed 404.
	if resp, body := post(t, ts.URL+"/rank", reqBody(t, "d", WireQuery{Metric: "prfe", Alpha: 0.5})); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy rank: %d %s", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL+"/rank", reqBody(t, "broken", WireQuery{Metric: "prfe", Alpha: 0.5}))
	if resp.StatusCode != http.StatusNotFound || errCode(t, body) != "unknown_dataset" {
		t.Fatalf("broken rank: %d %s", resp.StatusCode, body)
	}
	// A successful re-import of the broken name clears the report.
	resp, body = adminReq(t, http.MethodPost, ts.URL+"/datasets/broken?kind=ind", adminToken, "2,0.5\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repair import: %d %s", resp.StatusCode, body)
	}
	resp, body = adminReq(t, http.MethodGet, ts.URL+"/stats", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatal("stats after repair")
	}
	sr = StatsResponse{}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.LoadErrors["broken"] != "" {
		t.Fatalf("load_errors not cleared by repair: %+v", sr.LoadErrors)
	}
}

// writeCorruptSegment imports a valid dataset named "broken" and then
// flips a header byte on disk (the header checksum is verified on every
// open, unlike payload checksums, which lazy opens defer to import time).
func writeCorruptSegment(st *store.Store) error {
	ds, err := store.Parse(store.KindIndependent, strings.NewReader("9,0.5\n7,0.25\n"))
	if err != nil {
		return err
	}
	if _, err := st.Import("broken", ds); err != nil {
		return err
	}
	path := filepath.Join(st.Dir(), "broken.seg")
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	data[9] ^= 0xff // inside the version field, breaking the header CRC
	return os.WriteFile(path, data, 0o644)
}

// TestSwapUnderLoad is the atomicity contract, run with -race in CI: 32
// clients hammer one dataset across a POST swap; every response must be
// byte-identical to the pre-swap answer or the post-swap answer — never a
// blend, never an error.
func TestSwapUnderLoad(t *testing.T) {
	s, _ := adminServer(t, Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	rank := reqBody(t, "d", WireQuery{Metric: "prfe", Alpha: 0.75, Output: "ranking"})
	fetch := func() (int, []byte) {
		resp, body := post(t, ts.URL+"/rank", rank)
		return resp.StatusCode, body
	}
	code, oldBody := fetch()
	if code != http.StatusOK {
		t.Fatalf("pre-swap rank: %d %s", code, oldBody)
	}

	start := make(chan struct{})
	results := make(chan []byte, 256)
	errs := make(chan error, 33)
	var wg sync.WaitGroup
	for c := 0; c < 32; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 8; i++ {
				code, body := fetch()
				if code != http.StatusOK {
					errs <- fmt.Errorf("mid-swap rank: %d %s", code, body)
					return
				}
				results <- body
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		resp, body := adminReq(t, http.MethodPost, ts.URL+"/datasets/d?kind=ind",
			adminToken, "10,0.1\n8,0.95\n6,0.6\n4,0.2\n2,0.7\n")
		if resp.StatusCode != http.StatusOK {
			errs <- fmt.Errorf("swap: %d %s", resp.StatusCode, body)
		}
	}()
	close(start)
	wg.Wait()
	close(results)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	code, newBody := fetch()
	if code != http.StatusOK {
		t.Fatalf("post-swap rank: %d %s", code, newBody)
	}
	if bytes.Equal(oldBody, newBody) {
		t.Fatal("swap produced identical answers; the test cannot distinguish generations")
	}
	sawOld, sawNew := false, false
	for body := range results {
		switch {
		case bytes.Equal(body, oldBody):
			sawOld = true
		case bytes.Equal(body, newBody):
			sawNew = true
		default:
			t.Fatalf("mid-swap answer matches neither generation:\n%s", body)
		}
	}
	if !sawOld && !sawNew {
		t.Fatal("no responses captured")
	}
}
