package serve

// The wire format: JSON encodings of engine.Query and engine.Result. The
// same conversion functions build the HTTP responses and the in-process
// responses of `prfserve -oneshot`, so the serve smoke test can certify the
// HTTP path against Engine.Rank byte for byte.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/pdb"
)

// Complex is the wire form of a complex number: [real, imaginary].
type Complex [2]float64

// Term is the wire form of one u·PRFe(α) term of a combination query.
type Term struct {
	U     Complex `json:"u"`
	Alpha Complex `json:"alpha"`
}

// WireQuery is the JSON form of engine.Query. Metrics are lowercase names
// ("prfe", "prfomega", "pth", "erank", "prfecombo"); outputs are "values"
// (the default), "ranking" and "topk". MetricPRF has no wire form — its ω
// is an arbitrary Go function — and is rejected at parse time.
type WireQuery struct {
	Metric  string    `json:"metric"`
	Output  string    `json:"output,omitempty"`
	Alpha   float64   `json:"alpha,omitempty"`
	Alphas  []float64 `json:"alphas,omitempty"`
	Weights []float64 `json:"weights,omitempty"`
	H       int       `json:"h,omitempty"`
	K       int       `json:"k,omitempty"`
	Terms   []Term    `json:"terms,omitempty"`
}

// metricNames maps wire names onto engine metrics.
var metricNames = map[string]engine.Metric{
	"prfe":      engine.MetricPRFe,
	"prfomega":  engine.MetricPRFOmega,
	"pth":       engine.MetricPTh,
	"erank":     engine.MetricERank,
	"prfecombo": engine.MetricPRFeCombo,
}

// wireMetricName inverts metricNames for responses.
func wireMetricName(m engine.Metric) string {
	for name, mm := range metricNames {
		if mm == m {
			return name
		}
	}
	return m.String()
}

// ToQuery converts the wire form into the engine's declarative Query.
func (w WireQuery) ToQuery() (engine.Query, error) {
	var q engine.Query
	m, ok := metricNames[w.Metric]
	if !ok {
		if w.Metric == "prf" {
			return q, fmt.Errorf("serve: metric %q needs an arbitrary ω function and has no wire form; use prfomega (a weight vector) or prfecombo (an exponential-sum approximation)", w.Metric)
		}
		return q, fmt.Errorf("serve: unknown metric %q (want prfe|prfomega|pth|erank|prfecombo)", w.Metric)
	}
	q.Metric = m
	switch w.Output {
	case "", "values":
		q.Output = engine.OutputValues
	case "ranking":
		q.Output = engine.OutputRanking
	case "topk":
		q.Output = engine.OutputTopK
	default:
		return q, fmt.Errorf("serve: unknown output %q (want values|ranking|topk)", w.Output)
	}
	q.Alpha = w.Alpha
	q.Alphas = w.Alphas
	q.Weights = w.Weights
	q.H = w.H
	q.K = w.K
	if len(w.Terms) > 0 {
		q.Terms = make([]core.ExpTerm, len(w.Terms))
		for i, t := range w.Terms {
			q.Terms[i] = core.ExpTerm{
				U:     complex(t.U[0], t.U[1]),
				Alpha: complex(t.Alpha[0], t.Alpha[1]),
			}
		}
	}
	return q, nil
}

// WireResult is the JSON form of engine.Result: exactly one of Values,
// Complex or Ranking is set, mirroring the query's metric and output form.
type WireResult struct {
	Metric  string      `json:"metric"`
	Alpha   float64     `json:"alpha,omitempty"`
	Values  []float64   `json:"values,omitempty"`
	Complex []Complex   `json:"complex,omitempty"`
	Ranking pdb.Ranking `json:"ranking,omitempty"`
}

// FromResult converts one engine result into its wire form.
func FromResult(r *engine.Result) WireResult {
	w := WireResult{
		Metric:  wireMetricName(r.Metric),
		Alpha:   r.Alpha,
		Values:  r.Values,
		Ranking: r.Ranking,
	}
	if r.Complex != nil {
		w.Complex = make([]Complex, len(r.Complex))
		for i, c := range r.Complex {
			w.Complex[i] = Complex{real(c), imag(c)}
		}
	}
	return w
}

// FromResults converts a batch of engine results.
func FromResults(rs []engine.Result) []WireResult {
	out := make([]WireResult, len(rs))
	for i := range rs {
		out[i] = FromResult(&rs[i])
	}
	return out
}

// RankRequest is the body of POST /rank and POST /rankbatch.
type RankRequest struct {
	// Dataset names one of the server's loaded datasets.
	Dataset string `json:"dataset"`
	// Query declares the computation in wire form.
	Query WireQuery `json:"query"`
	// TimeoutMS optionally bounds this request's evaluation time; it is
	// clamped to the server's MaxTimeout. Zero uses the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// RankResponse is the body of a successful POST /rank.
type RankResponse struct {
	Dataset string `json:"dataset"`
	WireResult
}

// BatchResponse is the body of a successful POST /rankbatch: one result per
// α grid point, in grid order.
type BatchResponse struct {
	Dataset string       `json:"dataset"`
	Results []WireResult `json:"results"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code is a stable machine-readable discriminator: bad_request,
	// unknown_dataset, not_found, method_not_allowed, too_large or
	// deadline_exceeded.
	Code string `json:"code"`
}
