package serve

// The wire format: JSON encodings of engine.Query and engine.Result. The
// same conversion functions build the HTTP responses and the in-process
// responses of `prfserve -oneshot`, so the serve smoke test can certify the
// HTTP path against Engine.Rank byte for byte.

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/pdb"
)

// Complex is the wire form of a complex number: [real, imaginary].
type Complex [2]float64

// Term is the wire form of one u·PRFe(α) term of a combination query.
type Term struct {
	U     Complex `json:"u"`
	Alpha Complex `json:"alpha"`
}

// WireQuery is the JSON form of engine.Query. Metrics are lowercase names
// ("prfe", "prfomega", "pth", "erank", "prfecombo"); outputs are "values"
// (the default), "ranking" and "topk". MetricPRF has no wire form — its ω
// is an arbitrary Go function — and is rejected at parse time.
type WireQuery struct {
	Metric  string    `json:"metric"`
	Output  string    `json:"output,omitempty"`
	Alpha   float64   `json:"alpha,omitempty"`
	Alphas  []float64 `json:"alphas,omitempty"`
	Weights []float64 `json:"weights,omitempty"`
	H       int       `json:"h,omitempty"`
	K       int       `json:"k,omitempty"`
	Terms   []Term    `json:"terms,omitempty"`
	// Parallelism asks the engine to evaluate this query with up to that
	// many parallel shards/workers (0 = the scalar default). The server
	// clamps it to Options.MaxParallelism (default GOMAXPROCS) so one query
	// cannot starve concurrent requests.
	Parallelism int `json:"parallelism,omitempty"`
}

// metricNames maps wire names onto engine metrics.
var metricNames = map[string]engine.Metric{
	"prfe":         engine.MetricPRFe,
	"prfomega":     engine.MetricPRFOmega,
	"pth":          engine.MetricPTh,
	"erank":        engine.MetricERank,
	"prfecombo":    engine.MetricPRFeCombo,
	"globaltopk":   engine.MetricGlobalTopk,
	"expectedrank": engine.MetricExpectedRank,
	"medianrank":   engine.MetricMedianRank,
}

// wireMetricName inverts metricNames for responses.
func wireMetricName(m engine.Metric) string {
	for name, mm := range metricNames {
		if mm == m {
			return name
		}
	}
	return m.String()
}

// ToQuery converts the wire form into the engine's declarative Query.
func (w WireQuery) ToQuery() (engine.Query, error) {
	var q engine.Query
	m, ok := metricNames[w.Metric]
	if !ok {
		if w.Metric == "prf" {
			return q, fmt.Errorf("serve: metric %q needs an arbitrary ω function and has no wire form; use prfomega (a weight vector) or prfecombo (an exponential-sum approximation)", w.Metric)
		}
		return q, fmt.Errorf("serve: unknown metric %q (want prfe|prfomega|pth|erank|prfecombo|globaltopk|expectedrank|medianrank)", w.Metric)
	}
	q.Metric = m
	switch w.Output {
	case "", "values":
		q.Output = engine.OutputValues
	case "ranking":
		q.Output = engine.OutputRanking
	case "topk":
		q.Output = engine.OutputTopK
	default:
		return q, fmt.Errorf("serve: unknown output %q (want values|ranking|topk)", w.Output)
	}
	// Reject non-finite parameters here, before the engine ever sees the
	// query: a NaN/Inf that slipped through would otherwise be encoded
	// bit-exactly into cache keys (engine.Query.CacheKey and the byte
	// cache) and poison warm entries the engine's own validation only
	// partially guards (pdb.CheckWeights admits ±Inf). Each rejection is a
	// typed serve error the handlers map to a 400.
	if !isFinite(w.Alpha) {
		return q, fmt.Errorf("serve: non-finite alpha %v", w.Alpha)
	}
	for i, a := range w.Alphas {
		if !isFinite(a) {
			return q, fmt.Errorf("serve: non-finite alphas[%d] = %v", i, a)
		}
	}
	for i, x := range w.Weights {
		if !isFinite(x) {
			return q, fmt.Errorf("serve: non-finite weights[%d] = %v", i, x)
		}
	}
	for i, t := range w.Terms {
		for _, part := range [...]float64{t.U[0], t.U[1], t.Alpha[0], t.Alpha[1]} {
			if !isFinite(part) {
				return q, fmt.Errorf("serve: non-finite terms[%d]", i)
			}
		}
	}
	if w.Parallelism < 0 {
		return q, fmt.Errorf("serve: negative parallelism %d", w.Parallelism)
	}
	q.Alpha = w.Alpha
	q.Alphas = w.Alphas
	q.Weights = w.Weights
	q.H = w.H
	q.K = w.K
	q.Parallelism = w.Parallelism
	if len(w.Terms) > 0 {
		q.Terms = make([]core.ExpTerm, len(w.Terms))
		for i, t := range w.Terms {
			q.Terms[i] = core.ExpTerm{
				U:     complex(t.U[0], t.U[1]),
				Alpha: complex(t.Alpha[0], t.Alpha[1]),
			}
		}
	}
	return q, nil
}

// isFinite reports whether f is neither NaN nor ±Inf.
func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// WireResult is the JSON form of engine.Result: exactly one of Values,
// Complex or Ranking is set, mirroring the query's metric and output form.
type WireResult struct {
	Metric  string      `json:"metric"`
	Alpha   float64     `json:"alpha,omitempty"`
	Values  []float64   `json:"values,omitempty"`
	Complex []Complex   `json:"complex,omitempty"`
	Ranking pdb.Ranking `json:"ranking,omitempty"`
}

// FromResult converts one engine result into its wire form.
func FromResult(r *engine.Result) WireResult {
	w := WireResult{
		Metric:  wireMetricName(r.Metric),
		Alpha:   r.Alpha,
		Values:  r.Values,
		Ranking: r.Ranking,
	}
	if r.Complex != nil {
		w.Complex = make([]Complex, len(r.Complex))
		for i, c := range r.Complex {
			w.Complex[i] = Complex{real(c), imag(c)}
		}
	}
	return w
}

// FromResults converts a batch of engine results.
func FromResults(rs []engine.Result) []WireResult {
	out := make([]WireResult, len(rs))
	for i := range rs {
		out[i] = FromResult(&rs[i])
	}
	return out
}

// RankRequest is the body of POST /rank and POST /rankbatch.
type RankRequest struct {
	// Dataset names one of the server's loaded datasets.
	Dataset string `json:"dataset"`
	// Query declares the computation in wire form.
	Query WireQuery `json:"query"`
	// TimeoutMS optionally bounds this request's evaluation time; it is
	// clamped to the server's MaxTimeout. Zero uses the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Stream asks /rankbatch to emit each grid-point result as it is
	// computed via chunked transfer encoding instead of buffering the full
	// body. The reassembled stream is byte-identical to the buffered
	// response. Only valid on /rankbatch with the default results format.
	Stream bool `json:"stream,omitempty"`
	// Format selects the /rankbatch payload shape: "" or "results" is the
	// per-grid-point object form, "columnar" the parallel-array form for
	// large grids. Only valid on /rankbatch.
	Format string `json:"format,omitempty"`
}

// RankResponse is the body of a successful POST /rank.
type RankResponse struct {
	Dataset string `json:"dataset"`
	WireResult
}

// BatchResponse is the body of a successful POST /rankbatch: one result per
// α grid point, in grid order.
type BatchResponse struct {
	Dataset string       `json:"dataset"`
	Results []WireResult `json:"results"`
}

// ColumnarBatch is the compact wire form of a batch: one parallel array
// per field instead of one object per grid point, which drops the repeated
// `{"metric":...,"alpha":...}` framing from large grids. Exactly one of
// Values, Complex or Rankings is set; index i of every array belongs to
// Alphas[i].
type ColumnarBatch struct {
	Dataset  string        `json:"dataset"`
	Format   string        `json:"format"` // always "columnar"
	Metric   string        `json:"metric"`
	Alphas   []float64     `json:"alphas"`
	Values   [][]float64   `json:"values,omitempty"`
	Complex  [][]Complex   `json:"complex,omitempty"`
	Rankings []pdb.Ranking `json:"rankings,omitempty"`
}

// FromResultsColumnar converts a batch of engine results into the columnar
// wire form.
func FromResultsColumnar(dataset string, rs []engine.Result) ColumnarBatch {
	c := ColumnarBatch{Dataset: dataset, Format: "columnar", Alphas: make([]float64, len(rs))}
	for i := range rs {
		w := FromResult(&rs[i])
		if i == 0 {
			c.Metric = w.Metric
		}
		c.Alphas[i] = w.Alpha
		switch {
		case w.Ranking != nil:
			c.Rankings = append(c.Rankings, w.Ranking)
		case w.Complex != nil:
			c.Complex = append(c.Complex, w.Complex)
		default:
			c.Values = append(c.Values, w.Values)
		}
	}
	return c
}

// Rows maps the columnar form back onto the per-grid-point form, inverting
// FromResultsColumnar — the equivalence certification in the tests and the
// smoke script compares Rows() output against the buffered results array.
func (c ColumnarBatch) Rows() []WireResult {
	out := make([]WireResult, len(c.Alphas))
	for i := range c.Alphas {
		out[i] = WireResult{Metric: c.Metric, Alpha: c.Alphas[i]}
		switch {
		case c.Rankings != nil:
			out[i].Ranking = c.Rankings[i]
		case c.Complex != nil:
			out[i].Complex = c.Complex[i]
		default:
			out[i].Values = c.Values[i]
		}
	}
	return out
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code is a stable machine-readable discriminator: bad_request,
	// unknown_dataset, not_found, method_not_allowed, too_large,
	// unsupported_media_type or deadline_exceeded.
	Code string `json:"code"`
}
