package serve

// The response-byte cache: the serving layer's answer to BENCH_5, which
// showed that once the engine-level result cache is hot, nearly all of a
// cached HTTP request's cost is re-encoding the same ~1 MB JSON body. The
// byteCache stores the fully encoded (and, when negotiated, gzip-compressed)
// response bytes keyed on (endpoint, encoding, format, Query.CacheKey), so a
// hot hit is a single Write with no JSON encoder or compressor on the path.
//
// It is a plain mutex-guarded LRU — unlike the engine's sharded cache it
// holds megabyte-scale values, so the bound that matters is bytes, not
// entries, and the lock is held only for map/list surgery (never while
// encoding). Eviction runs from the LRU tail until both the entry bound and
// the byte bound hold.

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// DefaultByteCacheCapacity is the per-dataset entry bound applied when
// Options.ByteCacheCapacity is zero.
const DefaultByteCacheCapacity = 256

// defaultByteCacheBytes bounds the total encoded bytes a dataset's byte
// cache may retain: 256 sweep-sized bodies at ~1 MB each would otherwise
// dwarf the dataset itself.
const defaultByteCacheBytes = 64 << 20

// byteBody is one cached response body. gzipped marks whether the bytes are
// a gzip stream (and the response needs Content-Encoding: gzip).
type byteBody struct {
	bytes   []byte
	gzipped bool
}

// ByteCacheStats is the byte_cache block of GET /stats. Flights and Shared
// come from the per-dataset single-flight group: Flights counts evaluations
// led, Shared counts callers that piggybacked on another caller's flight.
type ByteCacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Flights   int64 `json:"flights"`
	Shared    int64 `json:"shared"`
}

type byteEntry struct {
	key  string
	body byteBody
}

// byteCache is the bounded LRU of encoded bodies. Safe for concurrent use.
type byteCache struct {
	capEntries int
	capBytes   int64

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	m     map[string]*list.Element
	bytes int64

	hits, misses, evictions atomic.Int64
}

// newByteCache builds a cache bounded to capEntries (0 takes
// DefaultByteCacheCapacity) and defaultByteCacheBytes. A negative capacity
// disables byte caching entirely: the returned cache is nil, and all the
// nil-receiver methods below degrade to misses.
func newByteCache(capEntries int) *byteCache {
	if capEntries < 0 {
		return nil
	}
	if capEntries == 0 {
		capEntries = DefaultByteCacheCapacity
	}
	return &byteCache{
		capEntries: capEntries,
		capBytes:   defaultByteCacheBytes,
		ll:         list.New(),
		m:          make(map[string]*list.Element),
	}
}

// get looks up a body and counts the hit or miss.
func (c *byteCache) get(key string) (byteBody, bool) {
	if c == nil {
		return byteBody{}, false
	}
	c.mu.Lock()
	el, ok := c.m[key]
	var body byteBody
	if ok {
		c.ll.MoveToFront(el)
		body = el.Value.(*byteEntry).body
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return body, ok
}

// peek is get without the hit/miss accounting and without an LRU touch —
// the double-check inside a flight uses it so a leader that finds the body
// already filled does not inflate the counters with a second lookup.
func (c *byteCache) peek(key string) (byteBody, bool) {
	if c == nil {
		return byteBody{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		return el.Value.(*byteEntry).body, true
	}
	return byteBody{}, false
}

// put inserts (or replaces) a body and evicts from the LRU tail until both
// bounds hold again. Bodies larger than the byte bound are simply not
// retained — evicting the whole cache to fit one giant would be worse.
func (c *byteCache) put(key string, body byteBody) {
	if c == nil || int64(len(body.bytes)) > c.capBytes {
		return
	}
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		e := el.Value.(*byteEntry)
		c.bytes += int64(len(body.bytes)) - int64(len(e.body.bytes))
		e.body = body
		c.ll.MoveToFront(el)
	} else {
		c.m[key] = c.ll.PushFront(&byteEntry{key: key, body: body})
		c.bytes += int64(len(body.bytes))
	}
	for c.ll.Len() > c.capEntries || c.bytes > c.capBytes {
		tail := c.ll.Back()
		e := tail.Value.(*byteEntry)
		c.ll.Remove(tail)
		delete(c.m, e.key)
		c.bytes -= int64(len(e.body.bytes))
		c.evictions.Add(1)
	}
	c.mu.Unlock()
}

// stats snapshots the counters (Flights/Shared are filled by the caller
// from the dataset's flight group).
func (c *byteCache) stats() ByteCacheStats {
	if c == nil {
		return ByteCacheStats{}
	}
	c.mu.Lock()
	entries, bytes := c.ll.Len(), c.bytes
	c.mu.Unlock()
	return ByteCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
		Bytes:     bytes,
	}
}
