package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
)

// Tests for the wire-level parallelism knob: the "parallelism" query field
// reaches the engine, is clamped by Options.MaxParallelism, and sharded
// answers stay within the certified 1e-12 of the scalar response.

func TestParallelismWire(t *testing.T) {
	s, _ := testServer(t, Options{MaxParallelism: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	scalarQ := WireQuery{Metric: "pth", H: 5}
	parQ := WireQuery{Metric: "pth", H: 5, Parallelism: 3}
	resp, body := post(t, ts.URL+"/rank", reqBody(t, "iip", scalarQ))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scalar: status %d: %s", resp.StatusCode, body)
	}
	var scalar RankResponse
	if err := json.Unmarshal(body, &scalar); err != nil {
		t.Fatal(err)
	}
	resp, body = post(t, ts.URL+"/rank", reqBody(t, "iip", parQ))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("parallel: status %d: %s", resp.StatusCode, body)
	}
	var sharded RankResponse
	if err := json.Unmarshal(body, &sharded); err != nil {
		t.Fatal(err)
	}
	if len(sharded.Values) != len(scalar.Values) {
		t.Fatalf("value lengths differ: %d vs %d", len(sharded.Values), len(scalar.Values))
	}
	for i := range scalar.Values {
		diff := math.Abs(sharded.Values[i] - scalar.Values[i])
		scale := math.Max(1, math.Abs(scalar.Values[i]))
		if diff > 1e-12*scale {
			t.Fatalf("value[%d]: sharded %v vs scalar %v", i, sharded.Values[i], scalar.Values[i])
		}
	}

	// Negative parallelism is a 400, not a panic or a silent clamp — even
	// when the equivalent scalar response is already byte-cached (prime it
	// first): the invalid knob must not alias the scalar cache key and be
	// answered 200 from the warm cache without ever reaching validation.
	resp, body = post(t, ts.URL+"/rank", reqBody(t, "iip", WireQuery{Metric: "prfe", Alpha: 0.5}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prime scalar prfe: status %d: %s", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL+"/rank", reqBody(t, "iip", WireQuery{Metric: "prfe", Alpha: 0.5, Parallelism: -3}))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative parallelism: status %d: %s", resp.StatusCode, body)
	}

	// Correlated backends ignore the knob for single queries but must still
	// answer (the cap flows through their batch fan-outs only).
	resp, body = post(t, ts.URL+"/rank", reqBody(t, "chain", WireQuery{Metric: "prfe", Alpha: 0.6, Parallelism: 2}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chain with parallelism: status %d: %s", resp.StatusCode, body)
	}
}

// TestParallelismClamp certifies the server-side cap: a request far above
// MaxParallelism is lowered before evaluation and before cache-keying, so
// it shares bytes with an at-the-cap request.
func TestParallelismClamp(t *testing.T) {
	s, _ := testServer(t, Options{MaxParallelism: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	atCap := WireQuery{Metric: "prfe", Alpha: 0.7, Parallelism: 2}
	overCap := WireQuery{Metric: "prfe", Alpha: 0.7, Parallelism: 1000}
	_, wantBody := post(t, ts.URL+"/rank", reqBody(t, "iip", atCap))
	resp, gotBody := post(t, ts.URL+"/rank", reqBody(t, "iip", overCap))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("over-cap: status %d: %s", resp.StatusCode, gotBody)
	}
	if string(gotBody) != string(wantBody) {
		t.Fatal("over-cap request did not clamp onto the at-cap response")
	}

	// MaxParallelism < 0 disables the knob entirely: the response must be
	// byte-identical to the scalar path (Parallelism clamped to 0).
	sOff, _ := testServer(t, Options{MaxParallelism: -1})
	tsOff := httptest.NewServer(sOff)
	defer tsOff.Close()
	_, scalarBody := post(t, tsOff.URL+"/rank", reqBody(t, "iip", WireQuery{Metric: "prfe", Alpha: 0.7}))
	_, knobBody := post(t, tsOff.URL+"/rank", reqBody(t, "iip", WireQuery{Metric: "prfe", Alpha: 0.7, Parallelism: 8}))
	if string(knobBody) != string(scalarBody) {
		t.Fatal("disabled knob did not fall back to the scalar response bytes")
	}
}
