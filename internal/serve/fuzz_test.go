package serve

// Fuzz target for the wire-form query decoder: arbitrary bytes through
// json.Unmarshal + WireQuery.ToQuery must never panic, every rejection must
// be a typed serve-prefixed error, and every accepted query must be
// cacheable (the wire form cannot express MetricPRF, the only uncacheable
// metric). Run with: go test ./internal/serve -fuzz FuzzWireQueryDecode

import (
	"encoding/json"
	"strings"
	"testing"
)

func FuzzWireQueryDecode(f *testing.F) {
	seeds := []string{
		`{"metric":"prfe","alpha":0.5}`,
		`{"metric":"prfe","alphas":[0.1,0.9],"output":"ranking"}`,
		`{"metric":"prfomega","weights":[3,2,1]}`,
		`{"metric":"pth","h":4,"output":"topk","k":3}`,
		`{"metric":"erank"}`,
		`{"metric":"prfecombo","terms":[{"u":[1,0],"alpha":[0.9,0]}]}`,
		`{"metric":"prf"}`,
		`{"metric":"nope","output":"sideways"}`,
		`{"metric":"prfe","alpha":1e309}`,
		`{"metric":"prfe","k":-1}`,
		`{}`,
		`null`,
		`[]`,
		`{"metric":42}`,
		`{"metric":"prfe","terms":[{"u":[null,0]}]}`,
		"\x00\xff",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var w WireQuery
		if err := json.Unmarshal(data, &w); err != nil {
			return // not a WireQuery at all; nothing to decode
		}
		q, err := w.ToQuery()
		if err != nil {
			if !strings.HasPrefix(err.Error(), "serve:") {
				t.Fatalf("untyped decode error %q for input %q", err, data)
			}
			return
		}
		if _, ok := q.CacheKey(); !ok {
			t.Fatalf("wire query decoded to an uncacheable engine query: %q", data)
		}
	})
}
