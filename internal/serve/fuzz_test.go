package serve

// Fuzz target for the wire-form query decoder: arbitrary bytes through
// json.Unmarshal + WireQuery.ToQuery must never panic, every rejection must
// be a typed serve-prefixed error, and every accepted query must be
// cacheable (the wire form cannot express MetricPRF, the only uncacheable
// metric). Run with: go test ./internal/serve -fuzz FuzzWireQueryDecode

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/pdb"
)

func FuzzWireQueryDecode(f *testing.F) {
	seeds := []string{
		`{"metric":"prfe","alpha":0.5}`,
		`{"metric":"prfe","alphas":[0.1,0.9],"output":"ranking"}`,
		`{"metric":"prfomega","weights":[3,2,1]}`,
		`{"metric":"pth","h":4,"output":"topk","k":3}`,
		`{"metric":"erank"}`,
		`{"metric":"prfecombo","terms":[{"u":[1,0],"alpha":[0.9,0]}]}`,
		`{"metric":"prf"}`,
		`{"metric":"nope","output":"sideways"}`,
		`{"metric":"prfe","alpha":1e309}`,
		`{"metric":"prfe","k":-1}`,
		`{}`,
		`null`,
		`[]`,
		`{"metric":42}`,
		`{"metric":"prfe","terms":[{"u":[null,0]}]}`,
		"\x00\xff",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var w WireQuery
		if err := json.Unmarshal(data, &w); err != nil {
			return // not a WireQuery at all; nothing to decode
		}
		q, err := w.ToQuery()
		if err != nil {
			if !strings.HasPrefix(err.Error(), "serve:") {
				t.Fatalf("untyped decode error %q for input %q", err, data)
			}
			return
		}
		if _, ok := q.CacheKey(); !ok {
			t.Fatalf("wire query decoded to an uncacheable engine query: %q", data)
		}
	})
}

// FuzzColumnarRows certifies the columnar result path: for any batch of
// homogeneous engine results decoded from the fuzz input, the columnar wire
// form — including a JSON round trip, the shape a client actually receives
// — must invert back through Rows() to exactly the per-grid-point results
// array. Run with: go test ./internal/serve -fuzz FuzzColumnarRows
func FuzzColumnarRows(f *testing.F) {
	f.Add([]byte{0, 2, 0x10, 0x20, 0x30})
	f.Add([]byte{1, 3, 0xff, 0x00, 0x7f, 0x40})
	f.Add([]byte{2, 1, 0x05, 0x04, 0x03, 0x02, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		shape := data[0] % 3
		width := int(data[1])%3 + 1 // tuples per result
		payload := data[2:]
		var rs []engine.Result
		for i := 0; i+width <= len(payload) && len(rs) < 8; i += width {
			r := engine.Result{Metric: engine.MetricPRFe, Alpha: float64(payload[i]) / 16}
			switch shape {
			case 0:
				r.Values = make([]float64, width)
				for j := range r.Values {
					r.Values[j] = float64(payload[i+j]) / 4
				}
			case 1:
				r.Complex = make([]complex128, width)
				for j := range r.Complex {
					r.Complex[j] = complex(float64(payload[i+j])/4, float64(payload[i+j]%8))
				}
			case 2:
				r.Ranking = make(pdb.Ranking, width)
				for j := range r.Ranking {
					r.Ranking[j] = pdb.TupleID(payload[i+j])
				}
			}
			rs = append(rs, r)
		}
		want := FromResults(rs)
		col := FromResultsColumnar("fuzz", rs)

		// Direct inversion.
		if got := col.Rows(); !reflect.DeepEqual(got, want) {
			t.Fatalf("Rows() != FromResults():\n got %+v\nwant %+v", got, want)
		}
		// Inversion after the JSON round trip a client performs.
		enc, err := json.Marshal(col)
		if err != nil {
			t.Fatal(err)
		}
		var dec ColumnarBatch
		if err := json.Unmarshal(enc, &dec); err != nil {
			t.Fatal(err)
		}
		if dec.Dataset != "fuzz" || dec.Format != "columnar" {
			t.Fatalf("framing lost in round trip: %+v", dec)
		}
		if got := dec.Rows(); !reflect.DeepEqual(got, want) {
			t.Fatalf("decoded Rows() != FromResults():\n got %+v\nwant %+v", got, want)
		}
	})
}
