package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/junction"
)

const xrelCSV = `score,probability,group
120,0.4,a
130,0.7,b
80,0.3,b
95,0.4,c
110,0.6,c
105,1.0,
`

const chainJSON = `{
  "scores": [30, 20, 10],
  "pairs": [
    [[0.30, 0.20], [0.10, 0.40]],
    [[0.28, 0.12], [0.42, 0.18]]
  ]
}`

const treeJSON = `{"and": [
  {"xor": {"probs": [0.4], "children": [{"leaf": {"score": 120}}]}},
  {"xor": {"probs": [0.7, 0.3], "children": [{"leaf": {"score": 130}}, {"leaf": {"score": 80}}]}}
]}`

// testServer builds a server with one dataset per loadable model.
func testServer(t *testing.T, opts Options) (*Server, map[string]*engine.Engine) {
	t.Helper()
	engines := map[string]*engine.Engine{
		"iip": engine.New(core.Prepare(datagen.IIPLike(128, 9))),
	}
	for name, src := range map[string][2]string{
		"sensors": {KindXRelation, xrelCSV},
		"chain":   {KindChain, chainJSON},
		"traffic": {KindTree, treeJSON},
	} {
		e, err := Load(src[0], strings.NewReader(src[1]))
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		engines[name] = e
	}
	// A genuine Markov-network dataset so all four backends (independent,
	// andxor, network, chain) sit behind one server.
	net, err := junction.NewNetwork(
		[]float64{90, 75, 60, 45},
		[]junction.Factor{
			{Vars: []int{0, 1}, Table: []float64{0.10, 0.30, 0.35, 0.25}},
			{Vars: []int{1, 2}, Table: []float64{0.20, 0.25, 0.30, 0.25}},
			{Vars: []int{3}, Table: []float64{0.45, 0.55}},
		})
	if err != nil {
		t.Fatal(err)
	}
	pn, err := junction.PrepareNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	engines["grid"] = engine.New(pn)
	s := New(opts)
	for name, e := range engines {
		if err := s.AddDataset(name, e); err != nil {
			t.Fatal(err)
		}
	}
	return s, engines
}

func post(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func reqBody(t *testing.T, dataset string, q WireQuery) string {
	t.Helper()
	b, err := json.Marshal(RankRequest{Dataset: dataset, Query: q})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServeMatchesEngine certifies the HTTP path against Engine.Rank run
// in-process, per model and query shape: decoding the HTTP body must
// DeepEqual the locally built response.
func TestServeMatchesEngine(t *testing.T) {
	s, engines := testServer(t, Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	ctx := context.Background()

	queries := []WireQuery{
		{Metric: "prfe", Alpha: 0.9, Output: "topk", K: 3},
		{Metric: "prfe", Alpha: 0.5, Output: "ranking"},
		{Metric: "prfe", Alpha: 0.5},
		{Metric: "pth", H: 2, Output: "ranking"},
		{Metric: "erank", Output: "topk", K: 2},
		{Metric: "prfomega", Weights: []float64{3, 2, 1}},
		{Metric: "prfecombo", Output: "ranking", Terms: []Term{
			{U: Complex{1, 0}, Alpha: Complex{0.9, 0}},
			{U: Complex{-0.25, 0.5}, Alpha: Complex{0.5, 0.1}},
		}},
		{Metric: "globaltopk", K: 2},
		{Metric: "expectedrank", Output: "ranking"},
		{Metric: "medianrank", Output: "topk", K: 3},
	}
	for name, e := range engines {
		for i, wq := range queries {
			resp, body := post(t, ts.URL+"/rank", reqBody(t, name, wq))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s query %d: status %d: %s", name, i, resp.StatusCode, body)
			}
			var got RankResponse
			if err := json.Unmarshal(body, &got); err != nil {
				t.Fatalf("%s query %d: %v", name, i, err)
			}
			q, err := wq.ToQuery()
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Rank(ctx, q)
			if err != nil {
				t.Fatalf("%s query %d in-process: %v", name, i, err)
			}
			want := RankResponse{Dataset: name, WireResult: FromResult(res)}
			// Round-trip the local response through JSON too, so nil-vs-empty
			// slice and float formatting are compared on equal footing.
			var wantRT RankResponse
			wb, _ := json.Marshal(want)
			_ = json.Unmarshal(wb, &wantRT)
			if !reflect.DeepEqual(got, wantRT) {
				t.Errorf("%s query %d: HTTP answer diverges from in-process engine\n got: %+v\nwant: %+v", name, i, got, wantRT)
			}
		}
	}
}

// TestServeBatchMatchesEngine does the same for /rankbatch α sweeps.
func TestServeBatchMatchesEngine(t *testing.T) {
	s, engines := testServer(t, Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	wq := WireQuery{Metric: "prfe", Alphas: []float64{0.2, 0.5, 0.8}, Output: "topk", K: 3}
	for name, e := range engines {
		resp, body := post(t, ts.URL+"/rankbatch", reqBody(t, name, wq))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, body)
		}
		var got BatchResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		q, _ := wq.ToQuery()
		res, err := e.RankBatch(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		want := BatchResponse{Dataset: name, Results: FromResults(res)}
		var wantRT BatchResponse
		wb, _ := json.Marshal(want)
		_ = json.Unmarshal(wb, &wantRT)
		if !reflect.DeepEqual(got, wantRT) {
			t.Errorf("%s: batch HTTP answer diverges from in-process engine", name)
		}
		if len(got.Results) != len(wq.Alphas) {
			t.Errorf("%s: got %d results for %d grid points", name, len(got.Results), len(wq.Alphas))
		}
	}
}

// TestServeCacheObservable: repeating a query must byte-match the first
// answer and show up as a cache hit in /stats.
func TestServeCacheObservable(t *testing.T) {
	s, _ := testServer(t, Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := reqBody(t, "iip", WireQuery{Metric: "prfe", Alpha: 0.95, Output: "topk", K: 10})
	_, first := post(t, ts.URL+"/rank", body)
	_, second := post(t, ts.URL+"/rank", body)
	if !bytes.Equal(first, second) {
		t.Error("cached repeat of an identical query returned different bytes")
	}

	resp, data := post(t, ts.URL+"/rank", body) // third: another hit
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	_ = data
	statsResp, statsBody := get(t, ts.URL+"/stats")
	if statsResp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", statsResp.StatusCode)
	}
	var st StatsResponse
	if err := json.Unmarshal(statsBody, &st); err != nil {
		t.Fatal(err)
	}
	ds, ok := st.Datasets["iip"]
	if !ok || ds.Cache == nil {
		t.Fatalf("stats missing iip cache block: %s", statsBody)
	}
	if ds.ByteCache == nil {
		t.Fatalf("stats missing iip byte_cache block: %s", statsBody)
	}
	// The byte cache sits above the engine cache: the first request misses
	// both and fills both, the two repeats are byte-cache hits that never
	// reach the engine layer.
	if ds.Cache.Misses < 1 {
		t.Errorf("cache counters off: %+v", *ds.Cache)
	}
	if ds.ByteCache.Hits < 2 || ds.ByteCache.Misses < 1 || ds.ByteCache.Entries < 1 || ds.ByteCache.Bytes <= 0 {
		t.Errorf("byte-cache counters off: %+v", *ds.ByteCache)
	}
	if st.Requests < 3 {
		t.Errorf("request counter off: %d", st.Requests)
	}
}

// TestServeCacheDisabled: negative capacity serves uncached but correct.
func TestServeCacheDisabled(t *testing.T) {
	s, _ := testServer(t, Options{CacheCapacity: -1})
	ts := httptest.NewServer(s)
	defer ts.Close()
	body := reqBody(t, "iip", WireQuery{Metric: "prfe", Alpha: 0.95, Output: "topk", K: 5})
	_, first := post(t, ts.URL+"/rank", body)
	_, second := post(t, ts.URL+"/rank", body)
	if !bytes.Equal(first, second) {
		t.Error("uncached identical queries must still agree")
	}
	_, statsBody := get(t, ts.URL+"/stats")
	var st StatsResponse
	if err := json.Unmarshal(statsBody, &st); err != nil {
		t.Fatal(err)
	}
	if st.Datasets["iip"].Cache != nil {
		t.Error("cache stats present though caching is disabled")
	}
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestServeErrors covers every error surface: malformed JSON, unknown
// fields, unknown dataset, bad query parameters, unsupported metric, wrong
// method, negative timeout, oversized body.
func TestServeErrors(t *testing.T) {
	s, _ := testServer(t, Options{MaxBodyBytes: 4096})
	ts := httptest.NewServer(s)
	defer ts.Close()

	cases := []struct {
		name       string
		path, body string
		status     int
		code       string
	}{
		{"malformed json", "/rank", `{"dataset": "iip", `, http.StatusBadRequest, "bad_request"},
		{"unknown field", "/rank", `{"dataset": "iip", "querry": {}}`, http.StatusBadRequest, "bad_request"},
		{"unknown dataset", "/rank", reqBody(t, "nope", WireQuery{Metric: "prfe", Alpha: 0.5}), http.StatusNotFound, "unknown_dataset"},
		{"unknown metric", "/rank", reqBody(t, "iip", WireQuery{Metric: "magic"}), http.StatusBadRequest, "bad_request"},
		{"prf has no wire form", "/rank", reqBody(t, "iip", WireQuery{Metric: "prf"}), http.StatusBadRequest, "bad_request"},
		{"bad output", "/rank", reqBody(t, "iip", WireQuery{Metric: "prfe", Output: "best"}), http.StatusBadRequest, "bad_request"},
		{"negative h", "/rank", reqBody(t, "iip", WireQuery{Metric: "pth", H: -2}), http.StatusBadRequest, "bad_request"},
		{"negative k", "/rank", reqBody(t, "iip", WireQuery{Metric: "prfe", Output: "topk", K: -1}), http.StatusBadRequest, "bad_request"},
		{"grid on rank", "/rank", reqBody(t, "iip", WireQuery{Metric: "prfe", Alphas: []float64{0.1, 0.2}}), http.StatusBadRequest, "bad_request"},
		{"batch without grid", "/rankbatch", reqBody(t, "iip", WireQuery{Metric: "prfe", Alpha: 0.5}), http.StatusBadRequest, "bad_request"},
		{"batch gridless metric", "/rankbatch", reqBody(t, "iip", WireQuery{Metric: "erank"}), http.StatusBadRequest, "bad_request"},
		{"batch gridless globaltopk", "/rankbatch", reqBody(t, "iip", WireQuery{Metric: "globaltopk", K: 2}), http.StatusBadRequest, "bad_request"},
		{"negative parallelism", "/rank", reqBody(t, "iip", WireQuery{Metric: "medianrank", Parallelism: -3}), http.StatusBadRequest, "bad_request"},
		{"negative timeout", "/rank", `{"dataset": "iip", "query": {"metric": "prfe"}, "timeout_ms": -5}`, http.StatusBadRequest, "bad_request"},
		{"oversized body", "/rank", `{"dataset": "iip", "query": {"metric": "prfomega", "weights": [` + strings.Repeat("1,", 4000) + `1]}}`, http.StatusRequestEntityTooLarge, "too_large"},
	}
	for _, tc := range cases {
		resp, body := post(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
			continue
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Errorf("%s: non-JSON error body %q", tc.name, body)
			continue
		}
		if er.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, er.Code, tc.code)
		}
	}

	// Wrong method on a known path: 405 with the JSON shape and Allow —
	// on the POST endpoints and the GET endpoints alike.
	methodCases := []struct {
		do    func() (*http.Response, []byte)
		name  string
		allow string
	}{
		{func() (*http.Response, []byte) { return get(t, ts.URL+"/rank") }, "GET /rank", "POST"},
		{func() (*http.Response, []byte) { return post(t, ts.URL+"/stats", "{}") }, "POST /stats", "GET"},
		{func() (*http.Response, []byte) { return post(t, ts.URL+"/datasets", "{}") }, "POST /datasets", "GET"},
	}
	for _, mc := range methodCases {
		resp, body := mc.do()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s: status %d, want 405 (%s)", mc.name, resp.StatusCode, body)
			continue
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Code != "method_not_allowed" {
			t.Errorf("%s: body %q", mc.name, body)
		}
		if got := resp.Header.Get("Allow"); got != mc.allow {
			t.Errorf("%s: Allow %q, want %q", mc.name, got, mc.allow)
		}
	}

	// Unknown path: JSON 404 with code not_found.
	resp, body := get(t, ts.URL+"/nosuch")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nosuch: status %d, want 404 (%s)", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Code != "not_found" {
		t.Errorf("GET /nosuch: body %q", body)
	}
}

// TestLoadXRelationGroupCollision: a user group literally named like a
// row index must stay separate from ungrouped singleton rows.
func TestLoadXRelationGroupCollision(t *testing.T) {
	e, err := LoadXRelationCSV(strings.NewReader("10,0.5,\n20,0.4,_row0\n30,0.3,_row0\n"))
	if err != nil {
		t.Fatal(err)
	}
	// Three leaves in two x-tuples: the singleton plus the two _row0
	// alternatives — never one merged three-way group.
	if e.Ranker().Len() != 3 {
		t.Fatalf("leaves = %d, want 3", e.Ranker().Len())
	}
	ctx := context.Background()
	res, err := e.Rank(ctx, engine.Query{Metric: engine.MetricPTh, H: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The ungrouped tuple (p=0.5) is independent of the x-tuple, so its
	// PT(3) value is exactly its probability; if it had been merged into
	// the group the xor constraint (sum ≤ 1) would have failed validation
	// or changed the value.
	if res.Values[0] != 0.5 {
		t.Fatalf("singleton PT(3) = %v, want 0.5", res.Values[0])
	}
}

// TestServeDeadline: an immediately-expiring default deadline must surface
// as 504 deadline_exceeded — the context is cut off mid-request and the
// engines abort between grid points.
func TestServeDeadline(t *testing.T) {
	s, _ := testServer(t, Options{DefaultTimeout: time.Nanosecond})
	ts := httptest.NewServer(s)
	defer ts.Close()
	// A batch sweep exercises the ctx checks between grid points.
	resp, body := post(t, ts.URL+"/rankbatch",
		reqBody(t, "iip", WireQuery{Metric: "prfe", Alphas: []float64{0.1, 0.3, 0.5, 0.7, 0.9}, Output: "ranking"}))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Code != "deadline_exceeded" {
		t.Fatalf("body %q", body)
	}

	// A per-request timeout_ms above the tiny default is still clamped by
	// nothing here, so a generous timeout succeeds on the same server only
	// if it overrides the default — it does.
	resp, body = post(t, ts.URL+"/rank",
		`{"dataset": "iip", "query": {"metric": "prfe", "alpha": 0.5, "output": "ranking"}, "timeout_ms": 30000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request-level timeout did not override the default: %d %s", resp.StatusCode, body)
	}
}

// TestServeMaxTimeoutClamp: a client timeout above MaxTimeout is clamped,
// but MaxTimeout never creates a deadline where none was requested.
func TestServeMaxTimeoutClamp(t *testing.T) {
	s, _ := testServer(t, Options{MaxTimeout: time.Nanosecond})
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, body := post(t, ts.URL+"/rank",
		`{"dataset": "iip", "query": {"metric": "prfe", "alpha": 0.5, "output": "ranking"}, "timeout_ms": 60000}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("MaxTimeout clamp not applied: %d %s", resp.StatusCode, body)
	}
	// No default timeout, no timeout_ms: the same server must NOT impose
	// its MaxTimeout as a deadline.
	resp, body = post(t, ts.URL+"/rank",
		`{"dataset": "iip", "query": {"metric": "prfe", "alpha": 0.5, "output": "ranking"}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deadline imposed without default or request timeout: %d %s", resp.StatusCode, body)
	}
}

// TestServeDatasets checks the listing endpoint.
func TestServeDatasets(t *testing.T) {
	s, _ := testServer(t, Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, body := get(t, ts.URL+"/datasets")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var infos []DatasetInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"chain": "chain", "grid": "network", "iip": "independent", "sensors": "andxor", "traffic": "andxor"}
	if len(infos) != len(want) {
		t.Fatalf("got %d datasets, want %d: %s", len(infos), len(want), body)
	}
	for _, info := range infos {
		if want[info.Name] != info.Model {
			t.Errorf("dataset %s: model %q, want %q", info.Name, info.Model, want[info.Name])
		}
		if info.Tuples <= 0 || !info.Cached {
			t.Errorf("dataset %s: bad info %+v", info.Name, info)
		}
	}
}

// TestServeHealthz checks liveness.
func TestServeHealthz(t *testing.T) {
	s, _ := testServer(t, Options{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
}

// TestServeConcurrent hammers the server with identical and distinct
// queries from many clients (run with -race): every answer must byte-match
// the reference answer for its query.
func TestServeConcurrent(t *testing.T) {
	s, _ := testServer(t, Options{CacheCapacity: 8}) // small cache: force concurrent eviction
	ts := httptest.NewServer(s)
	defer ts.Close()

	bodies := []string{
		reqBody(t, "iip", WireQuery{Metric: "prfe", Alpha: 0.9, Output: "topk", K: 5}),
		reqBody(t, "iip", WireQuery{Metric: "prfe", Alpha: 0.4, Output: "ranking"}),
		reqBody(t, "iip", WireQuery{Metric: "pth", H: 3, Output: "ranking"}),
		reqBody(t, "sensors", WireQuery{Metric: "prfe", Alpha: 0.7, Output: "topk", K: 4}),
		reqBody(t, "chain", WireQuery{Metric: "erank", Output: "ranking"}),
	}
	want := make([][]byte, len(bodies))
	for i, b := range bodies {
		resp, data := post(t, ts.URL+"/rank", b)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference %d: %d %s", i, resp.StatusCode, data)
		}
		want[i] = data
	}

	const workers = 12
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				qi := (w + i) % len(bodies)
				resp, err := http.Post(ts.URL+"/rank", "application/json", strings.NewReader(bodies[qi]))
				if err != nil {
					errs <- err
					return
				}
				data, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("worker %d: status %d", w, resp.StatusCode)
					return
				}
				if !bytes.Equal(data, want[qi]) {
					errs <- fmt.Errorf("worker %d query %d: answer diverged under concurrency", w, qi)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestLoadErrors covers the loader error surfaces.
func TestLoadErrors(t *testing.T) {
	cases := []struct {
		name, kind, src, want string
	}{
		{"unknown kind", "csv", "", "unknown dataset kind"},
		{"empty independent", KindIndependent, "score,probability\n", "empty dataset"},
		{"grouped as independent", KindIndependent, "1,0.5,g\n", "group column"},
		{"bad probability", KindIndependent, "1,nope\n", "bad probability"},
		{"typo'd first data row is not a header", KindIndependent, "N/A,0.5\n1,0.5\n", "bad score"},
		{"short row", KindXRelation, "1\n", "need score,probability"},
		{"invalid tree json", KindTree, "{", "malformed tree spec"},
		{"ambiguous tree node", KindTree, `{"leaf": {"score": 1}, "and": [{"leaf": {"score": 2}}]}`, "exactly one"},
		{"invalid chain json", KindChain, `{"scores": "x"}`, "malformed chain spec"},
		{"uncalibrated chain", KindChain, `{"scores": [1, 2], "pairs": [[[0.9, 0.9], [0.9, 0.9]]]}`, ""},
	}
	for _, tc := range cases {
		_, err := Load(tc.kind, strings.NewReader(tc.src))
		if err == nil {
			t.Errorf("%s: expected an error", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %q, want containing %q", tc.name, err, tc.want)
		}
	}
	if _, err := LoadFile(KindIndependent, "/nonexistent/x.csv"); err == nil {
		t.Error("missing file must error")
	}
}
