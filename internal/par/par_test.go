package par

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

func TestForWorkersRunsEveryJobOnce(t *testing.T) {
	for _, jobs := range []int{0, 1, 7, 100} {
		counts := make([]int32, jobs)
		ForWorkers(Workers(jobs), jobs, func(_, j int) {
			atomic.AddInt32(&counts[j], 1)
		})
		for j, c := range counts {
			if c != 1 {
				t.Fatalf("jobs=%d: job %d ran %d times", jobs, j, c)
			}
		}
	}
}

func TestForCtxNilAndBackgroundRunEverything(t *testing.T) {
	var ran int32
	if err := ForWorkersCtx(nil, 4, 32, func(_, _ int) { atomic.AddInt32(&ran, 1) }); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	if err := ForCtx(context.Background(), 32, func(int) { atomic.AddInt32(&ran, 1) }); err != nil {
		t.Fatalf("background ctx: %v", err)
	}
	if ran != 64 {
		t.Fatalf("ran %d jobs, want 64", ran)
	}
}

func TestForCtxAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	err := ForCtx(ctx, 100, func(int) { atomic.AddInt32(&ran, 1) })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("%d jobs ran after pre-canceled context", ran)
	}
}

// TestForCtxCancelAbortsPromptly cancels mid-batch and checks that the
// fan-out stops claiming jobs instead of draining the whole queue: with
// slow jobs and a cancel fired by the first one, only the in-flight jobs
// (at most one per worker) plus a small claim race can complete.
func TestForCtxCancelAbortsPromptly(t *testing.T) {
	const jobs = 10_000
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	workers := Workers(jobs)
	err := ForWorkersCtx(ctx, workers, jobs, func(_, j int) {
		if atomic.AddInt32(&ran, 1) == 1 {
			cancel()
		}
		time.Sleep(200 * time.Microsecond)
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Each worker can have claimed at most a couple of jobs before observing
	// the cancellation; far below the full queue.
	if got := atomic.LoadInt32(&ran); got > int32(8*workers) {
		t.Fatalf("%d jobs ran after cancel with %d workers; abort was not prompt", got, workers)
	}
}

func TestForWorkersCtxSerialCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int
	err := ForWorkersCtx(ctx, 1, 100, func(_, j int) {
		ran++
		if j == 4 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 5 {
		t.Fatalf("serial path ran %d jobs after cancel at job 4, want 5", ran)
	}
}
