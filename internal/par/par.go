// Package par holds the tiny work-stealing fan-out primitive shared by every
// parallel batch API in the repository (core.Prepared, andxor.PreparedTree,
// junction.PreparedNetwork/PreparedChain). It exists so the correlated-data
// packages can parallelize without importing the independent-tuples engine.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the worker count ForWorkers will use for the given job
// count — callers size per-worker scratch with it.
func Workers(jobs int) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// limitKey carries a per-request parallelism cap through a context (see
// WithLimit). The cap is advisory fan-out width, not an affinity mask.
type limitKey struct{}

// WithLimit returns a context carrying a parallelism cap of p workers for
// every fan-out below it. Non-positive p returns ctx unchanged (no cap). The
// engine sets this from Query.Parallelism so one giant query can be bounded
// without starving concurrent requests.
func WithLimit(ctx context.Context, p int) context.Context {
	if p <= 0 {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background() //lint:allow ctxflow nil-ctx normalization: Background is the documented nil fallback
	}
	return context.WithValue(ctx, limitKey{}, p)
}

// Limit reports the parallelism cap carried by ctx, or 0 when none is set.
// A zero return means "no explicit knob": callers keep their legacy
// (GOMAXPROCS-wide, scalar-kernel) behavior.
func Limit(ctx context.Context) int {
	if ctx == nil {
		return 0
	}
	if p, ok := ctx.Value(limitKey{}).(int); ok && p > 0 {
		return p
	}
	return 0
}

// WorkersFor is Workers additionally clamped by the context's parallelism
// cap: min(GOMAXPROCS, jobs, Limit(ctx)). With no cap set it is exactly
// Workers(jobs), so existing callers keep their behavior bit-for-bit.
func WorkersFor(ctx context.Context, jobs int) int {
	workers := Workers(jobs)
	if p := Limit(ctx); p > 0 && workers > p {
		workers = p
	}
	return workers
}

// ForWorkers runs fn(worker, 0..jobs-1) across the given number of
// goroutines — callers obtain it from Workers(jobs) once and size any
// per-worker scratch with the same value, so a concurrent GOMAXPROCS change
// between sizing and dispatch cannot send a worker index out of range. Each
// job index runs exactly once; the worker index lets callers reuse per-worker
// scratch buffers across the jobs a worker drains instead of allocating fresh
// buffers per job. The call returns when all jobs are done.
func ForWorkers(workers, jobs int, fn func(worker, job int)) {
	if workers <= 1 {
		for j := 0; j < jobs; j++ {
			fn(0, j)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				j := int(atomic.AddInt64(&next, 1)) - 1
				if j >= jobs {
					return
				}
				fn(worker, j)
			}
		}(w)
	}
	wg.Wait()
}

// For runs fn(0..jobs-1) across at most GOMAXPROCS goroutines. Each index
// runs exactly once; the call returns when all are done.
func For(jobs int, fn func(j int)) {
	ForWorkers(Workers(jobs), jobs, func(_, j int) { fn(j) })
}

// ForWorkersCtx is ForWorkers with cooperative cancellation: every worker
// re-checks the context before claiming its next job, so a canceled batch
// stops after at most one in-flight job per worker instead of draining the
// whole queue. It returns ctx.Err() if the context was canceled (some jobs
// may then never have run) and nil once every job completed. A nil context
// behaves like context.Background().
//
// Cancellation granularity is one job: fn itself is never interrupted, so
// callers batching long-running work should keep individual jobs small
// (one grid point, one tuple block) for prompt aborts.
func ForWorkersCtx(ctx context.Context, workers, jobs int, fn func(worker, job int)) error {
	if ctx == nil {
		ctx = context.Background() //lint:allow ctxflow nil-ctx normalization: Background is the documented nil fallback
	}
	done := ctx.Done()
	if done == nil {
		ForWorkers(workers, jobs, fn)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if workers <= 1 {
		for j := 0; j < jobs; j++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(0, j)
		}
		return nil
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for ctx.Err() == nil {
				j := int(atomic.AddInt64(&next, 1)) - 1
				if j >= jobs {
					return
				}
				fn(worker, j)
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil && int(atomic.LoadInt64(&next)) < jobs {
		return err
	}
	return nil
}

// ForCtx is For with cooperative cancellation: fn(0..jobs-1) across at most
// GOMAXPROCS goroutines, aborting between jobs once ctx is canceled.
func ForCtx(ctx context.Context, jobs int, fn func(j int)) error {
	return ForWorkersCtx(ctx, Workers(jobs), jobs, func(_, j int) { fn(j) })
}
