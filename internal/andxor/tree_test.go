package andxor

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/pdb"
)

// figure1Tree builds the traffic-monitoring database of Figure 1:
// six tuples, t2/t3 and t4/t5 mutually exclusive, t6 certain.
// Leaf IDs: 0=t1(120,.4) 1=t2(130,.7) 2=t3(80,.3) 3=t4(95,.4)
// 4=t5(110,.6) 5=t6(105,1).
func figure1Tree(t *testing.T) *Tree {
	t.Helper()
	root := NewAnd(
		NewXor([]float64{0.4}, NewLeaf(120)),
		NewXor([]float64{0.7, 0.3}, NewKeyedLeaf("Y-245", 130), NewKeyedLeaf("Y-245", 80)),
		NewXor([]float64{0.4, 0.6}, NewKeyedLeaf("Z-541", 95), NewKeyedLeaf("Z-541", 110)),
		NewXor([]float64{1.0}, NewLeaf(105)),
	)
	tree, err := New(root)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// figure1Worlds is the possible-worlds table printed in Figure 1 (tuples in
// ranked order).
var figure1Worlds = []struct {
	ids  []pdb.TupleID
	prob float64
}{
	{[]pdb.TupleID{1, 0, 5, 3}, 0.112}, // pw1 = {t2,t1,t6,t4}
	{[]pdb.TupleID{1, 0, 4, 5}, 0.168}, // pw2 = {t2,t1,t5,t6}
	{[]pdb.TupleID{0, 5, 3, 2}, 0.048}, // pw3 = {t1,t6,t4,t3}
	{[]pdb.TupleID{0, 4, 5, 2}, 0.072}, // pw4 = {t1,t5,t6,t3}
	{[]pdb.TupleID{1, 5, 3}, 0.168},    // pw5 = {t2,t6,t4}
	{[]pdb.TupleID{1, 4, 5}, 0.252},    // pw6 = {t2,t5,t6}
	{[]pdb.TupleID{5, 3, 2}, 0.072},    // pw7 = {t6,t4,t3}
	{[]pdb.TupleID{4, 5, 2}, 0.108},    // pw8 = {t5,t6,t3}
}

func TestFigure1WorldEnumeration(t *testing.T) {
	tree := figure1Tree(t)
	worlds, err := tree.EnumerateWorlds(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(worlds) != len(figure1Worlds) {
		t.Fatalf("got %d worlds, want %d", len(worlds), len(figure1Worlds))
	}
	for _, want := range figure1Worlds {
		found := false
		for _, w := range worlds {
			if idsEqual(w.Present, want.ids) {
				found = true
				if math.Abs(w.Prob-want.prob) > 1e-12 {
					t.Fatalf("world %v has prob %v, want %v", want.ids, w.Prob, want.prob)
				}
			}
		}
		if !found {
			t.Fatalf("world %v missing (got %+v)", want.ids, worlds)
		}
	}
}

func idsEqual(a, b []pdb.TupleID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Example 4: Pr(r(t4)=3) = 0.216 on the Figure 1 database.
func TestExample4PositionalProbability(t *testing.T) {
	tree := figure1Tree(t)
	rd := RankDistribution(tree)
	if got := rd.At(3, 3); math.Abs(got-0.216) > 1e-12 {
		t.Fatalf("Pr(r(t4)=3) = %v, want 0.216", got)
	}
}

func TestFigure1RankDistributionMatchesEnumeration(t *testing.T) {
	tree := figure1Tree(t)
	worlds, _ := tree.EnumerateWorlds(0)
	want := pdb.RankDistributionFromWorlds(worlds, tree.Len())
	got := RankDistribution(tree)
	for id := 0; id < tree.Len(); id++ {
		for j := 1; j <= tree.Len(); j++ {
			g, w := got.At(pdb.TupleID(id), j), want.At(pdb.TupleID(id), j)
			if math.Abs(g-w) > 1e-9 {
				t.Fatalf("id=%d j=%d: %v vs %v", id, j, g, w)
			}
		}
	}
}

// Figure 2: three explicit possible worlds encoded with a ∨ root.
func TestFigure2FromWorlds(t *testing.T) {
	worlds := [][]Alternative{
		{{Score: 6}, {Score: 5}, {Score: 1}},
		{{Score: 9}, {Score: 7}},
		{{Score: 8}, {Score: 4}, {Score: 3}},
	}
	keys := [][]string{
		{"t3", "t2", "t1"},
		{"t3", "t1"},
		{"t2", "t4", "t5"},
	}
	tree, ids, err := FromWorlds(worlds, []float64{0.3, 0.3, 0.4}, keys)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 8 {
		t.Fatalf("tree has %d leaves, want 8", tree.Len())
	}
	got, err := tree.EnumerateWorlds(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d worlds, want 3", len(got))
	}
	// Size distribution (Example 2 / Figure 3(i)): sizes 3,2,3 with probs
	// .3,.3,.4 → Pr(2)=.3, Pr(3)=.7.
	sd := SizeDistribution(tree)
	if math.Abs(sd[2]-0.3) > 1e-12 || math.Abs(sd[3]-0.7) > 1e-12 {
		t.Fatalf("size distribution %v", sd)
	}
	_ = ids
}

func TestFromWorldsRejectsMismatch(t *testing.T) {
	if _, _, err := FromWorlds([][]Alternative{{{Score: 1}}}, []float64{0.5, 0.5}, nil); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		root *Node
	}{
		{"edge probs above one", NewXor([]float64{0.7, 0.7}, NewLeaf(1), NewLeaf(2))},
		{"negative edge prob", NewXor([]float64{-0.1}, NewLeaf(1))},
		{"prob count mismatch", NewXor([]float64{0.5}, NewLeaf(1), NewLeaf(2))},
		{"empty and", NewAnd()},
		{"empty xor", NewXor(nil)},
		{"key constraint", NewAnd(NewKeyedLeaf("k", 1), NewKeyedLeaf("k", 2))},
		{"nan score", NewAnd(NewLeaf(math.NaN()))},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.root); err == nil {
				t.Fatalf("expected validation error for %s", c.name)
			}
		})
	}
	t.Run("nil root", func(t *testing.T) {
		if _, err := New(nil); err == nil {
			t.Fatal("expected error for nil root")
		}
	})
	t.Run("shared node", func(t *testing.T) {
		shared := NewLeaf(1)
		if _, err := New(NewAnd(shared, shared)); err == nil {
			t.Fatal("expected error for node with two parents")
		}
	})
}

func TestLeafMarginals(t *testing.T) {
	tree := figure1Tree(t)
	want := []float64{0.4, 0.7, 0.3, 0.4, 0.6, 1.0}
	for id, w := range want {
		if got := tree.Leaf(pdb.TupleID(id)).Prob; math.Abs(got-w) > 1e-12 {
			t.Fatalf("marginal of t%d = %v, want %v", id+1, got, w)
		}
	}
	d := tree.Dataset()
	if d.Len() != 6 {
		t.Fatalf("dataset size %d", d.Len())
	}
}

func TestSampleMatchesMarginals(t *testing.T) {
	tree := figure1Tree(t)
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, tree.Len())
	const nSamples = 100000
	for s := 0; s < nSamples; s++ {
		w := tree.Sample(rng)
		for _, id := range w.Present {
			counts[id]++
		}
	}
	for id := 0; id < tree.Len(); id++ {
		got := float64(counts[id]) / nSamples
		want := tree.Leaf(pdb.TupleID(id)).Prob
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("sampled marginal of %d = %v, want %v", id, got, want)
		}
	}
	// Mutual exclusion: t2 (id 1) and t3 (id 2) never co-occur.
	for s := 0; s < 1000; s++ {
		w := tree.Sample(rng)
		if w.Rank(1) > 0 && w.Rank(2) > 0 {
			t.Fatal("mutually exclusive tuples sampled together")
		}
	}
}

// randomTree builds a random and/xor tree with at most maxLeaves leaves.
func randomTree(rng *rand.Rand, budget *int, depth int) *Node {
	if depth >= 4 || *budget <= 1 || rng.Float64() < 0.35 {
		*budget--
		return NewLeaf(rng.Float64() * 100)
	}
	nc := 1 + rng.Intn(3)
	children := make([]*Node, 0, nc)
	for i := 0; i < nc && *budget > 0; i++ {
		children = append(children, randomTree(rng, budget, depth+1))
	}
	if rng.Float64() < 0.5 {
		probs := make([]float64, len(children))
		rem := 1.0
		for i := range probs {
			p := rng.Float64() * rem
			probs[i] = p
			rem -= p
		}
		return NewXor(probs, children...)
	}
	return NewAnd(children...)
}

func mustRandomTree(t *testing.T, rng *rand.Rand, maxLeaves int) *Tree {
	t.Helper()
	budget := maxLeaves
	tree, err := New(randomTree(rng, &budget, 0))
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// Property: the generating-function rank distribution matches enumeration on
// random trees.
func TestQuickTreeRankDistributionMatchesEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		budget := 2 + rng.Intn(9)
		tree, err := New(randomTree(rng, &budget, 0))
		if err != nil {
			return false
		}
		worlds, err := tree.EnumerateWorlds(1 << 16)
		if err != nil {
			return true // oversized enumeration: skip
		}
		want := pdb.RankDistributionFromWorlds(worlds, tree.Len())
		got := RankDistribution(tree)
		for id := 0; id < tree.Len(); id++ {
			for j := 1; j <= tree.Len(); j++ {
				if math.Abs(got.At(pdb.TupleID(id), j)-want.At(pdb.TupleID(id), j)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: incremental PRFe (Algorithm 3) matches the naive re-evaluation
// and the enumeration-based Υ on random trees, for real and complex α.
func TestQuickPRFeIncrementalMatchesNaive(t *testing.T) {
	alphas := []complex128{
		complex(0.3, 0), complex(0.95, 0), complex(1, 0),
		complex(0.6, 0.3), complex(0.2, -0.7),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := mustRandomTreeQ(rng, 2+rng.Intn(15))
		if tree == nil {
			return false
		}
		for _, alpha := range alphas {
			inc := PRFeValues(tree, alpha)
			naive := PRFeValuesNaive(tree, alpha)
			for i := range inc {
				if cAbs(inc[i]-naive[i]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func mustRandomTreeQ(rng *rand.Rand, maxLeaves int) *Tree {
	budget := maxLeaves
	tree, err := New(randomTree(rng, &budget, 0))
	if err != nil {
		return nil
	}
	return tree
}

func cAbs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}

// PRFe on a tree must equal Σ_j Pr(r=j)·α^j from the rank distribution.
func TestPRFeMatchesRankDistribution(t *testing.T) {
	tree := figure1Tree(t)
	rd := RankDistribution(tree)
	alpha := 0.8
	vals := PRFeValues(tree, complex(alpha, 0))
	for id := 0; id < tree.Len(); id++ {
		var want float64
		for j := 1; j <= tree.Len(); j++ {
			want += rd.At(pdb.TupleID(id), j) * math.Pow(alpha, float64(j))
		}
		if math.Abs(real(vals[id])-want) > 1e-9 {
			t.Fatalf("id=%d: PRFe=%v want %v", id, real(vals[id]), want)
		}
	}
}

// An Independent() tree must reproduce the core package's results exactly.
func TestIndependentTreeMatchesCorePackage(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	scores := make([]float64, 20)
	probs := make([]float64, 20)
	for i := range scores {
		scores[i] = rng.Float64() * 100
		probs[i] = rng.Float64()
	}
	d := pdb.MustDataset(scores, probs)
	tree, err := Independent(d)
	if err != nil {
		t.Fatal(err)
	}
	worlds, err := pdb.EnumerateWorlds(d)
	if err != nil {
		t.Fatal(err)
	}
	want := pdb.RankDistributionFromWorlds(worlds, 20)
	got := RankDistribution(tree)
	for id := 0; id < 20; id++ {
		for j := 1; j <= 20; j++ {
			if math.Abs(got.At(pdb.TupleID(id), j)-want.At(pdb.TupleID(id), j)) > 1e-9 {
				t.Fatalf("id=%d j=%d", id, j)
			}
		}
	}
}

func TestPRFOmegaTruncationOnTree(t *testing.T) {
	tree := figure1Tree(t)
	rd := RankDistribution(tree)
	w := []float64{1, 0.5, 0.25}
	got := PRFOmega(tree, w)
	for id := 0; id < tree.Len(); id++ {
		var want float64
		for j := 1; j <= len(w); j++ {
			want += w[j-1] * rd.At(pdb.TupleID(id), j)
		}
		if math.Abs(got[id]-want) > 1e-9 {
			t.Fatalf("id=%d: %v vs %v", id, got[id], want)
		}
	}
	// PT(h) is the all-ones special case.
	pt := PTh(tree, 2)
	for id := 0; id < tree.Len(); id++ {
		want := rd.At(pdb.TupleID(id), 1) + rd.At(pdb.TupleID(id), 2)
		if math.Abs(pt[id]-want) > 1e-9 {
			t.Fatalf("PT(2) id=%d: %v vs %v", id, pt[id], want)
		}
	}
}

// Expected ranks on trees match brute-force enumeration.
func TestQuickExpectedRanksMatchEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := mustRandomTreeQ(rng, 2+rng.Intn(8))
		if tree == nil {
			return false
		}
		worlds, err := tree.EnumerateWorlds(1 << 14)
		if err != nil {
			return true
		}
		want := make([]float64, tree.Len())
		for _, w := range worlds {
			for id := 0; id < tree.Len(); id++ {
				r := w.Rank(pdb.TupleID(id))
				if r == 0 {
					r = len(w.Present) // |pw| convention for absent tuples
				}
				want[id] += w.Prob * float64(r)
			}
		}
		got := ExpectedRanks(tree)
		for id := range want {
			if math.Abs(got[id]-want[id]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeDistributionSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		tree := mustRandomTree(t, rng, 12)
		sd := SizeDistribution(tree)
		var sum float64
		for _, p := range sd {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("size distribution sums to %v", sum)
		}
	}
}

func TestXTuplesModel(t *testing.T) {
	groups := [][]Alternative{
		{{Score: 10, Prob: 0.5}, {Score: 8, Prob: 0.5}},
		{{Score: 9, Prob: 0.4}},
		{{Score: 7, Prob: 0.3}, {Score: 6, Prob: 0.2}, {Score: 5, Prob: 0.1}},
	}
	tree, err := XTuples(groups)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 6 {
		t.Fatalf("leaves %d", tree.Len())
	}
	if tree.Height() != 2 {
		t.Fatalf("x-tuple tree height %d, want 2", tree.Height())
	}
	// Alternatives of group 0 never co-occur.
	worlds, err := tree.EnumerateWorlds(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range worlds {
		if w.Rank(0) > 0 && w.Rank(1) > 0 {
			t.Fatal("x-tuple alternatives co-occur")
		}
	}
}

func TestPRFeUncertainAggregatesAlternatives(t *testing.T) {
	groups := [][]Alternative{
		{{Score: 10, Prob: 0.5}, {Score: 4, Prob: 0.3}},
		{{Score: 8, Prob: 0.9}},
	}
	alpha := complex(0.7, 0)
	got, err := PRFeUncertain(groups, alpha)
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := XTuples(groups)
	perLeaf := PRFeValues(tree, alpha)
	want0 := perLeaf[0] + perLeaf[1]
	want1 := perLeaf[2]
	if cAbs(got[0]-want0) > 1e-12 || cAbs(got[1]-want1) > 1e-12 {
		t.Fatalf("got %v, want %v and %v", got, want0, want1)
	}
}

func TestPRFUncertainMatchesEnumeration(t *testing.T) {
	groups := [][]Alternative{
		{{Score: 10, Prob: 0.5}, {Score: 4, Prob: 0.3}},
		{{Score: 8, Prob: 0.9}},
		{{Score: 6, Prob: 0.25}, {Score: 5, Prob: 0.25}},
	}
	// ω(i)=1 for i≤1: Υ(group) = Pr(one of its alternatives ranks first).
	got, err := PRFUncertain(groups, func(_ pdb.Tuple, rank int) float64 {
		if rank == 1 {
			return 1
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := XTuples(groups)
	worlds, _ := tree.EnumerateWorlds(0)
	gi := groupIndex(groups)
	want := make([]float64, len(groups))
	for _, w := range worlds {
		if len(w.Present) > 0 {
			want[gi[w.Present[0]]] += w.Prob
		}
	}
	for g := range want {
		if math.Abs(got[g]-want[g]) > 1e-9 {
			t.Fatalf("group %d: %v vs %v", g, got[g], want[g])
		}
	}
}

func TestUncertainValidation(t *testing.T) {
	bad := [][]Alternative{{{Score: 1, Prob: 0.7}, {Score: 2, Prob: 0.6}}}
	if _, err := PRFeUncertain(bad, 1); err == nil {
		t.Fatal("expected validation error for Σp > 1")
	}
	neg := [][]Alternative{{{Score: 1, Prob: -0.1}}}
	if _, err := PRFUncertain(neg, func(pdb.Tuple, int) float64 { return 1 }); err == nil {
		t.Fatal("expected validation error for negative prob")
	}
}

func TestRankUncertainScores(t *testing.T) {
	groups := [][]Alternative{
		{{Score: 1, Prob: 0.1}},
		{{Score: 100, Prob: 0.99}},
	}
	order, err := RankUncertainScores(groups, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != 1 {
		t.Fatalf("order %v, want group 1 first", order)
	}
}

func TestEnumerateWorldsRespectsCap(t *testing.T) {
	// 2^20 worlds exceed a cap of 100.
	children := make([]*Node, 20)
	for i := range children {
		children[i] = NewXor([]float64{0.5}, NewLeaf(float64(i)))
	}
	tree, err := New(NewAnd(children...))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.EnumerateWorlds(100); err == nil {
		t.Fatal("expected world-count cap error")
	}
}

func TestSortedLeafOrderStable(t *testing.T) {
	tree, err := New(NewAnd(
		NewXor([]float64{0.5}, NewLeaf(5)),
		NewXor([]float64{0.5}, NewLeaf(5)),
		NewXor([]float64{0.5}, NewLeaf(9)),
	))
	if err != nil {
		t.Fatal(err)
	}
	order := tree.sortedLeafOrder()
	want := []pdb.TupleID{2, 0, 1}
	if !idsEqual(order, want) {
		t.Fatalf("order %v, want %v", order, want)
	}
}

func TestTreeMetadata(t *testing.T) {
	tree := figure1Tree(t)
	if tree.Height() != 2 {
		t.Fatalf("height %d, want 2", tree.Height())
	}
	if tree.NodeCount() != 11 {
		t.Fatalf("nodes %d, want 11", tree.NodeCount())
	}
	if tree.LeafDepth(0) != 2 {
		t.Fatalf("leaf depth %d, want 2", tree.LeafDepth(0))
	}
	if tree.LeafKey(1) != "Y-245" {
		t.Fatalf("key %q", tree.LeafKey(1))
	}
	order := tree.sortedLeafOrder()
	if !sort.SliceIsSorted(order, func(a, b int) bool {
		return tree.Leaf(order[a]).Score > tree.Leaf(order[b]).Score
	}) {
		t.Fatal("sortedLeafOrder not sorted")
	}
}
