package andxor

import (
	"fmt" //lint:allow kernelpurity fmt.Errorf/Sprintf on construction and validation paths only; no formatting in the per-tuple inner loops
	"math/cmplx"
	"sort"

	"repro/internal/pdb"
)

// Section 4.4: attribute uncertainty / uncertain scores. A tuple tᵢ whose
// score takes value v_{i,j} with probability p_{i,j} (Σ_j p_{i,j} ≤ 1; the
// residual is absence) is expanded into one alternative leaf per score, the
// alternatives joined by a ∨ (xor) node. The PRF value of the original tuple
// is the sum of its alternatives' values: Υ(tᵢ) = Σ_j Υ(t_{i,j}).

// groupIndex maps the leaf IDs of an XTuples tree back to group indices.
func groupIndex(groups [][]Alternative) []int {
	var idx []int
	for g, alts := range groups {
		for range alts {
			idx = append(idx, g)
		}
	}
	return idx
}

// validateGroups checks Σ_j p_{i,j} ≤ 1 per group.
func validateGroups(groups [][]Alternative) error {
	for g, alts := range groups {
		var sum float64
		for _, a := range alts {
			if a.Prob < 0 || a.Prob > 1 {
				return fmt.Errorf("andxor: group %d has invalid probability %v", g, a.Prob)
			}
			sum += a.Prob
		}
		if sum > 1+1e-9 {
			return fmt.Errorf("andxor: group %d probabilities sum to %v > 1", g, sum)
		}
	}
	return nil
}

// PRFUncertain computes Υω per original tuple for independent tuples with
// discrete score distributions. The ω function receives the alternative
// (with its score and probability) so score-dependent weights such as
// E-Score and k-selection work unchanged. O(N³) in the total number N of
// alternatives via the tree algorithm; the paper's O(N²) bound applies to
// the specialized independent expansion, which PRFeUncertain achieves for
// exponential weights.
func PRFUncertain(groups [][]Alternative, omega func(tu pdb.Tuple, rank int) float64) ([]float64, error) {
	if err := validateGroups(groups); err != nil {
		return nil, err
	}
	t, err := XTuples(groups)
	if err != nil {
		return nil, err
	}
	perLeaf := PRF(t, omega)
	return sumByGroup(perLeaf, groupIndex(groups), len(groups)), nil
}

// PRFeUncertain computes Υ_α per original tuple under score uncertainty in
// O(N·d + N log N) time via the incremental tree algorithm (the x-tuple tree
// has height 2, so effectively O(N log N)).
func PRFeUncertain(groups [][]Alternative, alpha complex128) ([]complex128, error) {
	if err := validateGroups(groups); err != nil {
		return nil, err
	}
	t, err := XTuples(groups)
	if err != nil {
		return nil, err
	}
	perLeaf := PRFeValues(t, alpha)
	gi := groupIndex(groups)
	out := make([]complex128, len(groups))
	for id, v := range perLeaf {
		out[gi[id]] += v
	}
	return out, nil
}

// RankUncertainScores ranks original tuples by |Υ_α| under score
// uncertainty, returning group indices best-first.
func RankUncertainScores(groups [][]Alternative, alpha float64) ([]int, error) {
	vals, err := PRFeUncertain(groups, complex(alpha, 0))
	if err != nil {
		return nil, err
	}
	r := pdb.RankByAbs(vals)
	out := make([]int, len(r))
	for i, id := range r {
		out[i] = int(id)
	}
	return out, nil
}

func sumByGroup(perLeaf []float64, gi []int, nGroups int) []float64 {
	out := make([]float64, nGroups)
	for id, v := range perLeaf {
		out[gi[id]] += v
	}
	return out
}

// RankByKey aggregates PRFe values per possible-worlds key on an arbitrary
// tree (Section 4.4 generalized beyond x-tuples): leaves sharing a key are
// alternatives of one logical tuple, and the tuple's Υ is the sum over its
// alternatives. Unkeyed leaves aggregate under their own singleton entry.
// Returns the distinct keys best-first along with their |Υ| values.
func RankByKey(t *Tree, alpha complex128) ([]string, []float64) {
	perLeaf := PRFeValues(t, alpha)
	order := make([]string, 0)
	sums := make(map[string]complex128)
	for id, v := range perLeaf {
		key := t.LeafKey(pdb.TupleID(id))
		if key == "" {
			key = fmt.Sprintf("_leaf%d", id)
		}
		if _, ok := sums[key]; !ok {
			order = append(order, key)
		}
		sums[key] += v
	}
	abs := make([]float64, len(order))
	for i, key := range order {
		abs[i] = cmplx.Abs(sums[key])
	}
	// Sort keys by value descending (stable on first-appearance order).
	idx := make([]int, len(order))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return abs[idx[a]] > abs[idx[b]] })
	outKeys := make([]string, len(order))
	outVals := make([]float64, len(order))
	for i, j := range idx {
		outKeys[i] = order[j]
		outVals[i] = abs[j]
	}
	return outKeys, outVals
}
