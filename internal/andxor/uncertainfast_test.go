package andxor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pdb"
)

// randGroups builds random uncertain-score groups; highMass sprinkles in
// groups whose total probability approaches 1 (the unstable-division path).
func randGroups(rng *rand.Rand, nGroups int, highMass bool) [][]Alternative {
	groups := make([][]Alternative, nGroups)
	for g := range groups {
		na := 1 + rng.Intn(4)
		alts := make([]Alternative, na)
		budget := rng.Float64()
		if highMass && rng.Intn(3) == 0 {
			budget = 0.95 + 0.05*rng.Float64()
		}
		rem := budget
		for i := range alts {
			p := rem * rng.Float64()
			if i == na-1 {
				p = rem
			}
			alts[i] = Alternative{Score: rng.Float64() * 1000, Prob: p}
			rem -= p
		}
		groups[g] = alts
	}
	return groups
}

// The O(N²) fast path must match the generic tree algorithm exactly.
func TestQuickPRFUncertainFastMatchesTree(t *testing.T) {
	omega := func(_ pdb.Tuple, rank int) float64 { return 1 / float64(rank) }
	f := func(seed int64, highMass bool) bool {
		rng := rand.New(rand.NewSource(seed))
		groups := randGroups(rng, 1+rng.Intn(6), highMass)
		fast, err := PRFUncertainFast(groups, omega)
		if err != nil {
			return false
		}
		slow, err := PRFUncertain(groups, omega)
		if err != nil {
			return false
		}
		for g := range fast {
			if math.Abs(fast[g]-slow[g]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The O(N log N) PRFe fast path must match the tree algorithm, including at
// complex α and with full-mass (q=1) groups whose factor vanishes at α
// values where 1−q+qα = 0.
func TestQuickPRFeUncertainFastMatchesTree(t *testing.T) {
	alphas := []complex128{complex(0.3, 0), complex(0.95, 0), complex(0.5, 0.5), complex(0, 0)}
	f := func(seed int64, highMass bool) bool {
		rng := rand.New(rand.NewSource(seed))
		groups := randGroups(rng, 1+rng.Intn(6), highMass)
		for _, alpha := range alphas {
			fast, err := PRFeUncertainFast(groups, alpha)
			if err != nil {
				return false
			}
			slow, err := PRFeUncertain(groups, alpha)
			if err != nil {
				return false
			}
			for g := range fast {
				if cAbs(fast[g]-slow[g]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// A certain group (Σp = 1) exercises the zero-factor path at α = 0:
// its factor (1−q+qα) = 0 annihilates every other alternative's chance of
// ranking first only when the certain group outranks it.
func TestPRFeUncertainFastCertainGroup(t *testing.T) {
	groups := [][]Alternative{
		{{Score: 100, Prob: 1}}, // certain top scorer
		{{Score: 50, Prob: 0.5}},
	}
	got, err := PRFeUncertainFast(groups, 0)
	if err != nil {
		t.Fatal(err)
	}
	// At α→0 the value is Pr(rank 1)·α → 0 for everything, and exactly 0
	// at α=0; check against the tree path for identity.
	want, err := PRFeUncertain(groups, 0)
	if err != nil {
		t.Fatal(err)
	}
	for g := range got {
		if cAbs(got[g]-want[g]) > 1e-12 {
			t.Fatalf("group %d: %v vs %v", g, got[g], want[g])
		}
	}
}

func TestPRFUncertainFastValidation(t *testing.T) {
	bad := [][]Alternative{{{Score: 1, Prob: 0.7}, {Score: 2, Prob: 0.6}}}
	if _, err := PRFUncertainFast(bad, func(pdb.Tuple, int) float64 { return 1 }); err == nil {
		t.Fatal("expected validation error")
	}
	if _, err := PRFeUncertainFast(bad, 1); err == nil {
		t.Fatal("expected validation error")
	}
	empty, err := PRFUncertainFast(nil, func(pdb.Tuple, int) float64 { return 1 })
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty groups: %v %v", empty, err)
	}
}

func TestDivideSwapFactorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		// Build a product of random factors, divide one out, check against
		// rebuilding from scratch.
		qs := make([]float64, 1+rng.Intn(8))
		for i := range qs {
			qs[i] = rng.Float64() * maxStableQ
		}
		coeff := []float64{1}
		for _, q := range qs {
			coeff = mulLinear(coeff, q)
		}
		pick := rng.Intn(len(qs))
		got := divideFactor(coeff, qs[pick])
		want := []float64{1}
		for i, q := range qs {
			if i != pick {
				want = mulLinear(want, q)
			}
		}
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-9 {
				t.Fatalf("divide mismatch at %d: %v vs %v", j, got[j], want[j])
			}
		}
		// swapFactor: replace qs[pick] by a new q.
		newQ := rng.Float64() * maxStableQ
		swapped := swapFactor(coeff, qs[pick], newQ, len(coeff)+1)
		want2 := mulLinear(want, newQ)
		for j := range want2 {
			if j < len(swapped) && math.Abs(swapped[j]-want2[j]) > 1e-9 {
				t.Fatalf("swap mismatch at %d", j)
			}
		}
	}
}

func TestQSanityHelper(t *testing.T) {
	groups := [][]Alternative{
		{{Score: 1, Prob: 0.3}, {Score: 2, Prob: 0.4}},
		{{Score: 3, Prob: 0.95}},
	}
	if got := qSanity(groups); math.Abs(got-0.95) > 1e-12 {
		t.Fatalf("qSanity = %v", got)
	}
}

// RankByKey on the Figure 2 tree: alternatives of t1/t2/t3 (appearing with
// different scores in different worlds) aggregate per key.
func TestRankByKeyAggregates(t *testing.T) {
	tree, _, err := FromWorlds(
		[][]Alternative{
			{{Score: 6}, {Score: 5}, {Score: 1}},
			{{Score: 9}, {Score: 7}},
			{{Score: 8}, {Score: 4}, {Score: 3}},
		},
		[]float64{0.3, 0.3, 0.4},
		[][]string{{"t3", "t2", "t1"}, {"t3", "t1"}, {"t2", "t4", "t5"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	keys, vals := RankByKey(tree, complex(0.9, 0))
	if len(keys) != 5 {
		t.Fatalf("keys: %v", keys)
	}
	seen := map[string]float64{}
	for i, k := range keys {
		seen[k] = vals[i]
		if i > 0 && vals[i] > vals[i-1]+1e-12 {
			t.Fatal("values not descending")
		}
	}
	// Cross-check t3's aggregate: Υ(t3@6) + Υ(t3@9) from per-leaf values.
	perLeaf := PRFeValues(tree, complex(0.9, 0))
	want := cAbs(perLeaf[0] + perLeaf[3]) // leaf 0 = (t3,6), leaf 3 = (t3,9)
	if math.Abs(seen["t3"]-want) > 1e-12 {
		t.Fatalf("t3 aggregate %v, want %v", seen["t3"], want)
	}
}
