// Package andxor implements probabilistic and/xor trees (Section 3.1,
// Definition 2 of the paper) and the ranking algorithms that operate on them:
//
//   - the tree model itself, with ∧ (co-existence) and ∨ (mutual exclusion)
//     inner nodes, probability and key constraints, leaf marginals, world
//     enumeration and Monte-Carlo sampling;
//   - the bivariate generating-function algorithm ANDXOR-PRF-RANK
//     (Section 4.2, Algorithm 2, Theorem 1) computing rank distributions and
//     PRF/PRFω values on correlated data;
//   - the incremental PRFe algorithm ANDXOR-PRFe-RANK (Section 4.3,
//     Algorithm 3), with division-free ∧-node updates;
//   - expected ranks on trees via derivative evaluation;
//   - the Section 4.4 reduction of attribute (score) uncertainty to xor
//     groups of alternatives;
//   - PreparedTree, the repeated-query fast path: the ranked leaf order and
//     the incremental evaluation state are built once and reused, with
//     parallel batch APIs over the shared view.
//
// Complexity bounds (n leaves, m nodes, dᵢ the depth of leaf i, Table 3 of
// the paper): one PRFe evaluation is O(n log n + m + Σdᵢ) — O(Σdᵢ) after
// preparation — versus O(n·m) for the naive re-evaluation; the full rank
// distribution (Algorithm 2) is O(n³) worst case and O(n²·h) truncated to
// ranks ≤ h; expected ranks are O(n·m).
//
// And/xor trees generalize x-tuples, block-independent-disjoint tables and
// p-or-sets, and can encode any finite set of possible worlds (Figure 2).
package andxor

import (
	"errors"
	"fmt" //lint:allow kernelpurity fmt.Errorf/Sprintf on construction and validation paths only; no formatting in the per-tuple inner loops
	"math"
	"math/rand" //lint:allow kernelpurity rand.Rand is an injected parameter type; Sample never draws from ambient global randomness
	"sort"

	"repro/internal/exact"
	"repro/internal/pdb"
)

// Kind labels a tree node.
type Kind int

// Node kinds. And nodes (∧) force their children to co-exist; Xor nodes (∨)
// select at most one child, child v with probability p(u,v); leaves are
// tuples.
const (
	And Kind = iota
	Xor
	Leaf
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case And:
		return "and"
	case Xor:
		return "xor"
	case Leaf:
		return "leaf"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Node is one node of a probabilistic and/xor tree. Construct nodes with
// NewLeaf/NewAnd/NewXor and assemble them into a Tree with New.
type Node struct {
	kind      Kind
	score     float64
	key       string
	children  []*Node
	edgeProbs []float64 // Xor nodes: p(u,v) aligned with children

	// Filled in by New:
	parent    *Node
	parentIdx int         // index of this node within parent.children
	id        pdb.TupleID // leaves only
	idx       int         // dense node index across the whole tree
	depth     int
	marginal  float64 // leaves only: Pr(leaf present)
}

// NewLeaf returns a leaf node with the given score.
func NewLeaf(score float64) *Node {
	return &Node{kind: Leaf, score: score}
}

// NewKeyedLeaf returns a leaf carrying a possible-worlds key. The key
// constraint of Definition 2 (leaves sharing a key must have a ∨ ancestor as
// LCA) is enforced by New.
func NewKeyedLeaf(key string, score float64) *Node {
	return &Node{kind: Leaf, score: score, key: key}
}

// NewAnd returns a ∧ node over the given children.
func NewAnd(children ...*Node) *Node {
	return &Node{kind: And, children: children}
}

// NewXor returns a ∨ node; each child v is selected with probability
// probs[v], and no child is selected with the residual 1−Σprobs.
func NewXor(probs []float64, children ...*Node) *Node {
	return &Node{kind: Xor, children: children, edgeProbs: probs}
}

// Tree is a validated probabilistic and/xor tree. Leaves are numbered with
// dense TupleIDs 0..n−1 in construction order; Dataset exposes them with
// their marginal probabilities so independence-assuming algorithms can be
// run on the same data (Figure 10's comparison).
type Tree struct {
	root   *Node
	leaves []*Node
	nodes  []*Node // all nodes in preorder
	height int
}

// New validates the node structure and returns the finished tree: edge
// probabilities must be non-negative and sum to ≤ 1 per ∨ node, every node
// must have a single parent, ∧/∨ nodes must have at least one child, and
// leaves sharing a key must have a ∨ LCA.
func New(root *Node) (*Tree, error) {
	if root == nil {
		return nil, errors.New("andxor: nil root")
	}
	t := &Tree{root: root}
	if err := t.index(root, nil, 0, 0); err != nil {
		return nil, err
	}
	t.computeMarginals()
	if err := t.checkKeyConstraint(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Tree) index(n *Node, parent *Node, parentIdx, depth int) error {
	if n.parent != nil || (t.root != n && parent == nil) {
		return errors.New("andxor: node attached to multiple parents")
	}
	if parent != nil {
		n.parent = parent
		n.parentIdx = parentIdx
	}
	n.depth = depth
	n.idx = len(t.nodes)
	t.nodes = append(t.nodes, n)
	if depth > t.height {
		t.height = depth
	}
	switch n.kind {
	case Leaf:
		if len(n.children) != 0 {
			return errors.New("andxor: leaf with children")
		}
		if math.IsNaN(n.score) || math.IsInf(n.score, 0) {
			return fmt.Errorf("andxor: leaf has invalid score %v", n.score)
		}
		n.id = pdb.TupleID(len(t.leaves))
		t.leaves = append(t.leaves, n)
	case And:
		if len(n.children) == 0 {
			return errors.New("andxor: ∧ node without children")
		}
	case Xor:
		if len(n.children) == 0 {
			return errors.New("andxor: ∨ node without children")
		}
		if len(n.edgeProbs) != len(n.children) {
			return fmt.Errorf("andxor: ∨ node has %d children but %d edge probabilities",
				len(n.children), len(n.edgeProbs))
		}
		var sum float64
		for _, p := range n.edgeProbs {
			if math.IsNaN(p) || p < 0 || p > 1 {
				return fmt.Errorf("andxor: invalid edge probability %v", p)
			}
			sum += p
		}
		if sum > 1+1e-9 {
			return fmt.Errorf("andxor: ∨ node edge probabilities sum to %v > 1", sum)
		}
	default:
		return fmt.Errorf("andxor: unknown node kind %d", n.kind)
	}
	for i, c := range n.children {
		if err := t.index(c, n, i, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func (t *Tree) computeMarginals() {
	var walk func(n *Node, p float64)
	walk = func(n *Node, p float64) {
		if n.kind == Leaf {
			n.marginal = p
			return
		}
		for i, c := range n.children {
			cp := p
			if n.kind == Xor {
				cp *= n.edgeProbs[i]
			}
			walk(c, cp)
		}
	}
	walk(t.root, 1)
}

func (t *Tree) checkKeyConstraint() error {
	byKey := make(map[string][]*Node)
	for _, l := range t.leaves {
		if l.key != "" {
			byKey[l.key] = append(byKey[l.key], l)
		}
	}
	for key, ls := range byKey {
		for i := 0; i < len(ls); i++ {
			for j := i + 1; j < len(ls); j++ {
				if lca(ls[i], ls[j]).kind != Xor {
					return fmt.Errorf("andxor: leaves with key %q have non-∨ LCA (key constraint)", key)
				}
			}
		}
	}
	return nil
}

func lca(a, b *Node) *Node {
	for a.depth > b.depth {
		a = a.parent
	}
	for b.depth > a.depth {
		b = b.parent
	}
	for a != b {
		a = a.parent
		b = b.parent
	}
	return a
}

// Len returns the number of leaves (tuples).
func (t *Tree) Len() int { return len(t.leaves) }

// Height returns the height d of the tree (root depth 0).
func (t *Tree) Height() int { return t.height }

// NodeCount returns the total number of nodes.
func (t *Tree) NodeCount() int { return len(t.nodes) }

// Leaf returns the leaf with the given TupleID as a pdb.Tuple whose Prob is
// the leaf's marginal presence probability.
func (t *Tree) Leaf(id pdb.TupleID) pdb.Tuple {
	l := t.leaves[id]
	return pdb.Tuple{ID: l.id, Score: l.score, Prob: l.marginal}
}

// LeafKey returns the possible-worlds key of the leaf ("" if unkeyed).
func (t *Tree) LeafKey(id pdb.TupleID) string { return t.leaves[id].key }

// LeafDepth returns the depth d_i of the leaf, the cost of one incremental
// PRFe update (Table 3).
func (t *Tree) LeafDepth(id pdb.TupleID) int { return t.leaves[id].depth }

// Dataset returns the leaves as a tuple-independent dataset with marginal
// probabilities. Running the core (independence-assuming) algorithms on it
// is exactly the "ignore the correlations" arm of Figure 10.
func (t *Tree) Dataset() *pdb.Dataset {
	tuples := make([]pdb.Tuple, len(t.leaves))
	for i, l := range t.leaves {
		tuples[i] = pdb.Tuple{ID: l.id, Score: l.score, Prob: l.marginal}
	}
	d, err := pdb.FromTuples(tuples)
	if err != nil {
		// Marginals are products of validated probabilities; failure here is
		// a bug in this package, not caller error.
		//lint:allow errdiscipline internal invariant: validated marginals cannot fail FromTuples, so this is unreachable absent a bug here
		panic(err)
	}
	return d
}

// sortedLeafOrder returns leaf IDs sorted by non-increasing score, ties by
// ID — the T = {t₁ ≥ t₂ ≥ …} order every ranking algorithm uses.
func (t *Tree) sortedLeafOrder() []pdb.TupleID {
	ids := make([]pdb.TupleID, len(t.leaves))
	for i := range ids {
		ids[i] = pdb.TupleID(i)
	}
	sort.SliceStable(ids, func(a, b int) bool {
		la, lb := t.leaves[ids[a]], t.leaves[ids[b]]
		if !exact.Same(la.score, lb.score) {
			return la.score > lb.score
		}
		return la.id < lb.id
	})
	return ids
}

// Sample draws one possible world from the tree's distribution; Present is
// in ranked (score) order.
func (t *Tree) Sample(rng *rand.Rand) pdb.World {
	var present []pdb.TupleID
	var walk func(n *Node)
	walk = func(n *Node) {
		switch n.kind {
		case Leaf:
			present = append(present, n.id)
		case And:
			for _, c := range n.children {
				walk(c)
			}
		case Xor:
			u := rng.Float64()
			acc := 0.0
			for i, c := range n.children {
				acc += n.edgeProbs[i]
				if u < acc {
					walk(c)
					break
				}
			}
		}
	}
	walk(t.root)
	sort.Slice(present, func(a, b int) bool {
		la, lb := t.leaves[present[a]], t.leaves[present[b]]
		if !exact.Same(la.score, lb.score) {
			return la.score > lb.score
		}
		return la.id < lb.id
	})
	return pdb.World{Present: present, Prob: math.NaN()}
}

// weightedSet is an intermediate world during enumeration.
type weightedSet struct {
	ids  []pdb.TupleID
	prob float64
}

// EnumerateWorlds lists every possible world with positive probability,
// refusing to materialize more than maxWorlds intermediate worlds (pass 0
// for the default pdb.MaxEnumerate-derived bound). Present slices are in
// ranked order. Worlds with identical tuple sets are merged.
func (t *Tree) EnumerateWorlds(maxWorlds int) ([]pdb.World, error) {
	if maxWorlds <= 0 {
		maxWorlds = 1 << 20
	}
	sets, err := t.enum(t.root, maxWorlds)
	if err != nil {
		return nil, err
	}
	// Merge duplicates (different branches can yield the same tuple set).
	merged := make(map[string]*weightedSet)
	order := make([]string, 0, len(sets))
	for _, s := range sets {
		sort.Slice(s.ids, func(a, b int) bool {
			la, lb := t.leaves[s.ids[a]], t.leaves[s.ids[b]]
			if !exact.Same(la.score, lb.score) {
				return la.score > lb.score
			}
			return la.id < lb.id
		})
		k := fmt.Sprint(s.ids)
		if m, ok := merged[k]; ok {
			m.prob += s.prob
		} else {
			cp := s
			merged[k] = &cp
			order = append(order, k)
		}
	}
	worlds := make([]pdb.World, 0, len(merged))
	for _, k := range order {
		s := merged[k]
		if s.prob > 0 {
			worlds = append(worlds, pdb.World{Present: s.ids, Prob: s.prob})
		}
	}
	return worlds, nil
}

func (t *Tree) enum(n *Node, maxWorlds int) ([]weightedSet, error) {
	switch n.kind {
	case Leaf:
		return []weightedSet{{ids: []pdb.TupleID{n.id}, prob: 1}}, nil
	case Xor:
		var out []weightedSet
		residual := 1.0
		for i, c := range n.children {
			p := n.edgeProbs[i]
			residual -= p
			if p == 0 {
				continue
			}
			sub, err := t.enum(c, maxWorlds)
			if err != nil {
				return nil, err
			}
			for _, s := range sub {
				out = append(out, weightedSet{ids: s.ids, prob: p * s.prob})
			}
			if len(out) > maxWorlds {
				return nil, fmt.Errorf("andxor: more than %d worlds", maxWorlds)
			}
		}
		if residual > 1e-12 {
			out = append(out, weightedSet{prob: residual})
		}
		return out, nil
	case And:
		acc := []weightedSet{{prob: 1}}
		for _, c := range n.children {
			sub, err := t.enum(c, maxWorlds)
			if err != nil {
				return nil, err
			}
			if len(acc)*len(sub) > maxWorlds {
				return nil, fmt.Errorf("andxor: more than %d worlds", maxWorlds)
			}
			next := make([]weightedSet, 0, len(acc)*len(sub))
			for _, a := range acc {
				for _, b := range sub {
					ids := make([]pdb.TupleID, 0, len(a.ids)+len(b.ids))
					ids = append(ids, a.ids...)
					ids = append(ids, b.ids...)
					next = append(next, weightedSet{ids: ids, prob: a.prob * b.prob})
				}
			}
			acc = next
		}
		return acc, nil
	}
	return nil, fmt.Errorf("andxor: unknown node kind %v", n.kind)
}

// Independent builds the trivial tree for a tuple-independent dataset: a ∧
// root with one single-child ∨ node per tuple (height 2). Tuple IDs follow
// the dataset order.
func Independent(d *pdb.Dataset) (*Tree, error) {
	children := make([]*Node, d.Len())
	for i, t := range d.Tuples() {
		children[i] = NewXor([]float64{t.Prob}, NewLeaf(t.Score))
	}
	return New(NewAnd(children...))
}

// Alternative is one (score, probability) choice of an x-tuple or of an
// uncertain-score tuple.
type Alternative struct {
	Score float64
	Prob  float64
}

// GroupRows turns labeled score/probability rows into x-tuple groups: rows
// sharing a non-empty label are mutually exclusive alternatives of one
// x-tuple (groups form in label first-appearance order), rows with an empty
// label become singleton x-tuples at their own position. Grouping never
// involves synthetic labels, so a user label can never merge with a
// singleton. leafLabels gives each resulting leaf its group label, in
// XTuples ID order; singletons get the display-only label "#row<i>" (i the
// input row) — "#" keeps it visually apart from user labels, though a user
// label could still spell the same string (it would only look alike, never
// group together). This is the one shared CSV-to-x-relation convention:
// cmd/prfrank and the serving layer's loader must group identically or the
// same file would rank differently per surface.
func GroupRows(scores, probs []float64, labels []string) (groups [][]Alternative, leafLabels []string) {
	type xgroup struct {
		label string
		alts  []Alternative
	}
	var units []*xgroup
	byLabel := map[string]*xgroup{}
	for i := range scores {
		alt := Alternative{Score: scores[i], Prob: probs[i]}
		l := labels[i]
		if l == "" {
			units = append(units, &xgroup{label: fmt.Sprintf("#row%d", i), alts: []Alternative{alt}})
			continue
		}
		u, ok := byLabel[l]
		if !ok {
			u = &xgroup{label: l}
			byLabel[l] = u
			units = append(units, u)
		}
		u.alts = append(u.alts, alt)
	}
	groups = make([][]Alternative, len(units))
	leafLabels = make([]string, 0, len(scores))
	for g, u := range units {
		groups[g] = u.alts
		for range u.alts {
			leafLabels = append(leafLabels, u.label)
		}
	}
	return groups, leafLabels
}

// XTuples builds the classic x-tuple model: a ∧ root over one ∨ node per
// group of mutually exclusive alternatives (height 2). Leaves of group g get
// the key "x<g>". Tuple IDs are assigned group by group in alternative
// order.
func XTuples(groups [][]Alternative) (*Tree, error) {
	children := make([]*Node, len(groups))
	for g, alts := range groups {
		probs := make([]float64, len(alts))
		leaves := make([]*Node, len(alts))
		for i, a := range alts {
			probs[i] = a.Prob
			leaves[i] = NewKeyedLeaf(fmt.Sprintf("x%d", g), a.Score)
		}
		children[g] = NewXor(probs, leaves...)
	}
	return New(NewAnd(children...))
}

// FromWorlds encodes an explicit finite set of possible worlds as a tree
// (Figure 2): a ∨ root with one ∧ child per world. Each world is a list of
// (key, score) pairs; leaves across worlds that share a key are mutually
// exclusive by construction (their LCA is the root ∨). Probabilities must
// sum to ≤ 1. Returns the tree and, for bookkeeping, the mapping from
// (world, position) to leaf TupleID.
func FromWorlds(worlds [][]Alternative, probs []float64, keys [][]string) (*Tree, [][]pdb.TupleID, error) {
	if len(worlds) != len(probs) {
		return nil, nil, fmt.Errorf("andxor: %d worlds but %d probabilities", len(worlds), len(probs))
	}
	children := make([]*Node, len(worlds))
	for w, tuples := range worlds {
		leaves := make([]*Node, len(tuples))
		for i, a := range tuples {
			key := ""
			if keys != nil {
				key = keys[w][i]
			}
			leaves[i] = NewKeyedLeaf(key, a.Score)
		}
		children[w] = NewAnd(leaves...)
	}
	tree, err := New(NewXor(probs, children...))
	if err != nil {
		return nil, nil, err
	}
	ids := make([][]pdb.TupleID, len(worlds))
	next := pdb.TupleID(0)
	for w := range worlds {
		ids[w] = make([]pdb.TupleID, len(worlds[w]))
		for i := range worlds[w] {
			ids[w][i] = next
			next++
		}
	}
	return tree, ids, nil
}
