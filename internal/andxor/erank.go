package andxor

// Expected ranks (the E-Rank baseline of Cormode et al., reviewed in
// Section 3.2) on correlated data. The paper shows (Section 3.3,
// "Relationship to other ranking functions") that the expected rank of t
// splits into
//
//	er1(t) = Σ_j j·Pr(r(t)=j)              (worlds containing t)
//	er2(t) = Σ_{pw: t∉pw} Pr(pw)·|pw|      (worlds missing t)
//
// Both reduce to first-derivative evaluations of the tree's generating
// function at x=1, so each tuple costs two O(n) dual-number tree walks —
// generalizing the prior expected-rank algorithms to and/xor trees exactly
// as the paper remarks.

// dualBi tracks (A(1), A'(1), B(1), B'(1)) of the bivariate generating
// function F = A(x) + B(x)·y under a leaf labeling.
type dualBi struct {
	a, da, b, db float64
}

// evalDual computes the dual-number evaluation for the labeling where leaf
// positions in xSet carry x, the leaf target carries y, and the rest 1.
// xAll=true labels every non-target leaf x (the er2 labeling).
func evalDual(n *Node, pos []int, target int, xAll bool) dualBi {
	switch n.kind {
	case Leaf:
		switch {
		case pos[n.id] == target:
			return dualBi{b: 1}
		case xAll || pos[n.id] < target:
			return dualBi{a: 1, da: 1} // A(x)=x
		default:
			return dualBi{a: 1}
		}
	case Xor:
		residual := 1.0
		for _, p := range n.edgeProbs {
			residual -= p
		}
		out := dualBi{a: residual}
		for i, c := range n.children {
			p := n.edgeProbs[i]
			if p == 0 {
				continue
			}
			cd := evalDual(c, pos, target, xAll)
			out.a += p * cd.a
			out.da += p * cd.da
			out.b += p * cd.b
			out.db += p * cd.db
		}
		return out
	default: // And
		acc := dualBi{a: 1}
		for _, c := range n.children {
			cd := evalDual(c, pos, target, xAll)
			acc = dualBi{
				a:  acc.a * cd.a,
				da: acc.da*cd.a + acc.a*cd.da,
				b:  acc.a*cd.b + acc.b*cd.a,
				db: acc.da*cd.b + acc.a*cd.db + acc.db*cd.a + acc.b*cd.da,
			}
		}
		return acc
	}
}

// ExpectedRanks returns E[r(t)] for every leaf, where absent tuples take
// rank |pw| in their world (the Cormode et al. convention). O(n²) total.
// One-shot wrapper over PreparedTree.ERank.
func ExpectedRanks(t *Tree) []float64 {
	return PrepareTree(t).ERank()
}
