package andxor

import (
	"context"

	"repro/internal/pdb"
)

// This file is the and/xor-tree arm of the unified Ranker engine: the
// Query* methods make *PreparedTree satisfy engine.Ranker. The PRFe family
// runs on the prepared incremental Algorithm 3 state (cached leaf order,
// pooled evaluation buffers); the ω-based family (PRF, PRFω(h), PT(h))
// dispatches to the bivariate generating-function Algorithm 2 on the
// underlying tree — the fastest known kernels for each metric on correlated
// trees. Every answer is bit-for-bit what the legacy flat functions return.

// QueryPRFe evaluates Υ_α per TupleID. Identical to PRFe / PRFeValues.
func (pt *PreparedTree) QueryPRFe(ctx context.Context, alpha complex128) ([]complex128, error) {
	if err := pdb.CheckAlphaC(alpha); err != nil {
		return nil, err
	}
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	return pt.PRFe(alpha), nil
}

// QueryPRFeBatch evaluates Υ_α for every α of a batch over pooled
// evaluation states. out[a] is bit-for-bit PRFe(alphas[a]).
func (pt *PreparedTree) QueryPRFeBatch(ctx context.Context, alphas []complex128) ([][]complex128, error) {
	if err := pdb.CheckAlphaGridC(alphas); err != nil {
		return nil, err
	}
	return pt.prfeBatchCtx(ctx, alphas)
}

// QueryRankPRFe returns the PRFe(α) ranking by |Υ| — the paper's top-k
// convention for correlated data. Identical to RankPRFe.
func (pt *PreparedTree) QueryRankPRFe(ctx context.Context, alpha float64) (pdb.Ranking, error) {
	if err := pdb.CheckAlpha(alpha); err != nil {
		return nil, err
	}
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	return pt.RankPRFe(alpha), nil
}

// QueryRankPRFeBatch ranks every α of a batch in parallel. out[a] is
// bit-for-bit RankPRFe(alphas[a]).
func (pt *PreparedTree) QueryRankPRFeBatch(ctx context.Context, alphas []float64) ([]pdb.Ranking, error) {
	if err := pdb.CheckAlphaGrid(alphas); err != nil {
		return nil, err
	}
	out := make([]pdb.Ranking, len(alphas))
	if err := pt.rankBatch(ctx, alphas, func(a int, r pdb.Ranking) { out[a] = r }); err != nil {
		return nil, err
	}
	return out, nil
}

// QueryTopKPRFeBatch answers top-k at every α of a batch. out[a] is
// bit-for-bit RankPRFe(alphas[a]).TopK(k).
func (pt *PreparedTree) QueryTopKPRFeBatch(ctx context.Context, alphas []float64, k int) ([]pdb.Ranking, error) {
	if err := pdb.CheckAlphaGrid(alphas); err != nil {
		return nil, err
	}
	if err := pdb.CheckTopK(k); err != nil {
		return nil, err
	}
	out := make([]pdb.Ranking, len(alphas))
	if err := pt.rankBatch(ctx, alphas, func(a int, r pdb.Ranking) { out[a] = r.TopK(k) }); err != nil {
		return nil, err
	}
	return out, nil
}

// QueryPRFeCombo evaluates Σ_l u_l·Υ_{α_l} with one incremental pass per
// term over pooled states. Identical to PRFeCombo.
func (pt *PreparedTree) QueryPRFeCombo(ctx context.Context, us, alphas []complex128) ([]complex128, error) {
	if err := pdb.CheckCombo(us, alphas); err != nil {
		return nil, err
	}
	vals, err := pt.prfeBatchCtx(ctx, alphas[:len(us)])
	if err != nil {
		return nil, err
	}
	return pdb.ComboSum(us, vals, pt.Len()), nil
}

// QueryPRF evaluates Υω with the bivariate generating-function Algorithm 2
// (O(n²·min(n, tree width)) worst case). Identical to PRF on the tree.
func (pt *PreparedTree) QueryPRF(ctx context.Context, omega func(t pdb.Tuple, rank int) float64) ([]float64, error) {
	if omega == nil {
		return nil, pdb.ErrNilOmega
	}
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	return PRF(pt.t, omega), nil
}

// QueryPRFOmega evaluates the PRFω(h) family via the truncated Algorithm 2.
// Identical to PRFOmega on the tree.
func (pt *PreparedTree) QueryPRFOmega(ctx context.Context, w []float64) ([]float64, error) {
	if err := pdb.CheckWeights(w); err != nil {
		return nil, err
	}
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	return PRFOmega(pt.t, w), nil
}

// QueryPTh evaluates Pr(r(t) ≤ h). Identical to PTh on the tree.
func (pt *PreparedTree) QueryPTh(ctx context.Context, h int) ([]float64, error) {
	if err := pdb.CheckDepth(h); err != nil {
		return nil, err
	}
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	return PTh(pt.t, h), nil
}

// QueryERank returns E[r(t)] per leaf over the cached order and world-size
// constant. Identical to ERank / ExpectedRanks.
func (pt *PreparedTree) QueryERank(ctx context.Context) ([]float64, error) {
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	return pt.ERank(), nil
}

// QueryExpectedRank returns the consensus expected rank (absent → |pw|+1)
// per leaf. Identical to ExpectedRank.
func (pt *PreparedTree) QueryExpectedRank(ctx context.Context) ([]float64, error) {
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	return pt.ExpectedRank(), nil
}

// QueryMedianRank returns the consensus median rank per leaf over the tree's
// exact rank distribution. Identical to MedianRank.
func (pt *PreparedTree) QueryMedianRank(ctx context.Context) ([]float64, error) {
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	return pt.MedianRank(), nil
}
