package andxor

import (
	"math/cmplx"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/pdb"
)

// preparedGrid is the α grid the equivalence suite sweeps: interior points,
// the α→0 and α=1 boundaries, and a complex point (the DFT-approximation
// regime).
var preparedGrid = []complex128{
	complex(1e-9, 0), complex(0.1, 0), complex(0.5, 0), complex(0.9, 0),
	complex(0.95, 0), complex(1, 0), complex(0.8, 0.3),
}

// edgeTrees returns the adversarial fixtures: score ties, zero edge
// probabilities, single-tuple parts, a single-leaf tree, and x-tuple groups
// with one alternative.
func edgeTrees(t *testing.T) map[string]*Tree {
	t.Helper()
	mk := func(root *Node) *Tree {
		tree, err := New(root)
		if err != nil {
			t.Fatal(err)
		}
		return tree
	}
	ties := mk(NewAnd(
		NewXor([]float64{0.4}, NewLeaf(10)),
		NewXor([]float64{0.7}, NewLeaf(10)),
		NewXor([]float64{0.2, 0.8}, NewLeaf(10), NewLeaf(10)),
	))
	zeros := mk(NewAnd(
		NewXor([]float64{0, 0.5}, NewLeaf(30), NewLeaf(20)),
		NewXor([]float64{0}, NewLeaf(50)),
		NewXor([]float64{1}, NewLeaf(40)),
	))
	single := mk(NewLeaf(7))
	xt, err := XTuples([][]Alternative{
		{{Score: 5, Prob: 1}},
		{{Score: 3, Prob: 0.25}},
		{{Score: 9, Prob: 0.5}, {Score: 1, Prob: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Tree{"ties": ties, "zero-probs": zeros, "single-leaf": single, "single-part-xtuples": xt}
}

// forEachSuiteTree runs fn over the edge fixtures and a set of random trees.
func forEachSuiteTree(t *testing.T, fn func(name string, tree *Tree)) {
	t.Helper()
	for name, tree := range edgeTrees(t) {
		fn(name, tree)
	}
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fn("random", mustRandomTree(t, rng, 3+rng.Intn(20)))
	}
}

// The prepared path must return, bit for bit, what a fresh per-query
// evaluation returns — across pooled-state reuse at many α values.
func TestPreparedPRFeMatchesFreshEvaluation(t *testing.T) {
	forEachSuiteTree(t, func(name string, tree *Tree) {
		pt := PrepareTree(tree)
		for _, alpha := range preparedGrid {
			want := PrepareTree(tree).PRFe(alpha) // fresh view: no reused state
			got := pt.PRFe(alpha)                 // shared view: pooled, reset state
			wrapper := PRFeValues(tree, alpha)    // one-shot wrapper
			for id := range want {
				if got[id] != want[id] || wrapper[id] != want[id] {
					t.Fatalf("%s: alpha=%v id=%d: prepared %v / wrapper %v, want %v",
						name, alpha, id, got[id], wrapper[id], want[id])
				}
			}
		}
	})
}

// The prepared incremental values must agree with the O(n²) naive
// re-evaluation oracle.
func TestPreparedPRFeMatchesNaive(t *testing.T) {
	forEachSuiteTree(t, func(name string, tree *Tree) {
		pt := PrepareTree(tree)
		for _, alpha := range preparedGrid {
			want := PRFeValuesNaive(tree, alpha)
			got := pt.PRFe(alpha)
			for id := range want {
				if cmplx.Abs(got[id]-want[id]) > 1e-9 {
					t.Fatalf("%s: alpha=%v id=%d: got %v want %v", name, alpha, id, got[id], want[id])
				}
			}
		}
	})
}

// withWorkers forces the parallel fan-out to really spawn goroutines even on
// a single-core host, so -race runs observe the batch paths concurrently.
func withWorkers(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// Batch results are defined to be element-wise identical to serial calls.
func TestPreparedPRFeBatchMatchesSerial(t *testing.T) {
	withWorkers(t, 4)
	forEachSuiteTree(t, func(name string, tree *Tree) {
		pt := PrepareTree(tree)
		batch := pt.PRFeBatch(preparedGrid)
		for a, alpha := range preparedGrid {
			want := pt.PRFe(alpha)
			for id := range want {
				if batch[a][id] != want[id] {
					t.Fatalf("%s: alpha=%v id=%d: batch %v serial %v", name, alpha, id, batch[a][id], want[id])
				}
			}
		}
	})
}

// Ranking batches (full and top-k) must reproduce the serial rankings.
func TestPreparedRankBatchesMatchSerial(t *testing.T) {
	withWorkers(t, 4)
	alphas := []float64{1e-9, 0.25, 0.5, 0.75, 0.95, 1}
	forEachSuiteTree(t, func(name string, tree *Tree) {
		pt := PrepareTree(tree)
		ranks := pt.RankPRFeBatch(alphas)
		k := 1 + tree.Len()/2
		tops := pt.TopKPRFeBatch(alphas, k)
		for a, alpha := range alphas {
			want := pt.RankPRFe(alpha)
			wrapper := RankPRFe(tree, alpha)
			if !rankingsEqual(ranks[a], want) || !rankingsEqual(wrapper, want) {
				t.Fatalf("%s: alpha=%v: batch %v wrapper %v serial %v", name, alpha, ranks[a], wrapper, want)
			}
			if !rankingsEqual(tops[a], want.TopK(k)) {
				t.Fatalf("%s: alpha=%v: topk batch %v want %v", name, alpha, tops[a], want.TopK(k))
			}
		}
	})
}

func rankingsEqual(a, b pdb.Ranking) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The prepared combo must equal the per-term sum in term order, bit for bit.
func TestPreparedComboMatchesPerTermSum(t *testing.T) {
	withWorkers(t, 4)
	us := []complex128{complex(0.5, 0.1), complex(-0.3, 0), complex(1.1, -0.2)}
	alphas := []complex128{complex(0.9, 0), complex(0.5, 0.2), complex(0.99, 0)}
	forEachSuiteTree(t, func(name string, tree *Tree) {
		pt := PrepareTree(tree)
		want := make([]complex128, tree.Len())
		for l := range us {
			vals := pt.PRFe(alphas[l])
			for i, v := range vals {
				want[i] += us[l] * v
			}
		}
		got := pt.PRFeCombo(us, alphas)
		wrapper := PRFeCombo(tree, us, alphas)
		for id := range want {
			if got[id] != want[id] || wrapper[id] != want[id] {
				t.Fatalf("%s: id=%d: combo %v wrapper %v want %v", name, id, got[id], wrapper[id], want[id])
			}
		}
	})
}

// Prepared expected ranks must equal the one-shot wrapper and stay stable
// across repeated evaluations on the shared view.
func TestPreparedERankMatchesOneShot(t *testing.T) {
	forEachSuiteTree(t, func(name string, tree *Tree) {
		pt := PrepareTree(tree)
		want := ExpectedRanks(tree)
		for rep := 0; rep < 2; rep++ {
			got := pt.ERank()
			for id := range want {
				if got[id] != want[id] {
					t.Fatalf("%s: rep=%d id=%d: got %v want %v", name, rep, id, got[id], want[id])
				}
			}
		}
	})
}
