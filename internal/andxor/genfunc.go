package andxor

import (
	"repro/internal/pdb"
	"repro/internal/poly"
)

// This file implements ANDXOR-PRF-RANK (Section 4.2, Algorithm 2): for each
// tuple tᵢ the tree's generating function
//
//	Fⁱ(x, y) = A(x) + B(x)·y
//
// is computed bottom-up, where leaves ranked above tᵢ carry label x, tᵢ
// itself carries y, and the rest carry 1 (Theorem 1). Because exactly one
// leaf carries y, the y-degree never exceeds 1, so a pair of univariate
// polynomials suffices; the coefficient of x^{j−1}·y is Pr(r(tᵢ) = j).

// labelKind is the variable assigned to a leaf for one tuple's computation.
type labelKind uint8

const (
	labelOne labelKind = iota // leaf ranked below the target (constant 1)
	labelX                    // leaf ranked above the target
	labelY                    // the target leaf itself
)

// bipoly is A(x) + B(x)·y with the y²-free invariant.
type bipoly struct {
	a poly.Poly
	b poly.Poly
}

// evalBipoly computes the node's generating function under the labeling.
// maxLen > 0 truncates every polynomial to that many coefficients (ranks
// 1..maxLen), the PRFω(h) optimization.
func evalBipoly(n *Node, label []labelKind, maxLen int) bipoly {
	switch n.kind {
	case Leaf:
		switch label[n.id] {
		case labelX:
			return bipoly{a: poly.Poly{0, 1}}
		case labelY:
			return bipoly{b: poly.Poly{1}}
		default:
			return bipoly{a: poly.Poly{1}}
		}
	case Xor:
		residual := 1.0
		var a, b poly.Poly
		for i, c := range n.children {
			p := n.edgeProbs[i]
			residual -= p
			if p == 0 {
				continue
			}
			cb := evalBipoly(c, label, maxLen)
			a = poly.Add(a, cb.a.Scale(p))
			b = poly.Add(b, cb.b.Scale(p))
		}
		a = poly.Add(a, poly.Poly{residual})
		return bipoly{a: a, b: b}
	default: // And
		acc := bipoly{a: poly.Poly{1}}
		for _, c := range n.children {
			cb := evalBipoly(c, label, maxLen)
			// (A + By)(A' + B'y) = AA' + (AB' + BA')y; BB'y² cannot occur
			// because at most one subtree holds the y leaf.
			var newA, newB poly.Poly
			if maxLen > 0 {
				newA = poly.MulTrunc(acc.a, cb.a, maxLen)
				newB = poly.Add(poly.MulTrunc(acc.a, cb.b, maxLen), poly.MulTrunc(acc.b, cb.a, maxLen))
			} else {
				newA = poly.Mul(acc.a, cb.a)
				newB = poly.Add(poly.Mul(acc.a, cb.b), poly.Mul(acc.b, cb.a))
			}
			acc = bipoly{a: newA, b: newB}
		}
		return acc
	}
}

// labelsFor builds the per-leaf labels for the tuple at sorted position i of
// order: positions < i get x, position i gets y, the rest 1.
func labelsFor(order []pdb.TupleID, i int, buf []labelKind) []labelKind {
	for j := range buf {
		buf[j] = labelOne
	}
	for j := 0; j < i; j++ {
		buf[order[j]] = labelX
	}
	buf[order[i]] = labelY
	return buf
}

// RankDistribution computes the full positional-probability matrix of the
// tree: Pr(r(t)=j) for every leaf t and rank j, by one bivariate tree
// evaluation per tuple (O(n²) per tuple worst case, O(n³) total — the
// Table 3 "And/Xor tree" row).
func RankDistribution(t *Tree) *pdb.RankDistribution {
	return RankDistributionTrunc(t, t.Len())
}

// RankDistributionTrunc computes Pr(r(t)=j) for ranks j ≤ h only, with all
// polynomial products truncated to h coefficients.
func RankDistributionTrunc(t *Tree, h int) *pdb.RankDistribution {
	n := t.Len()
	if h > n {
		h = n
	}
	dist := make([][]float64, n)
	order := t.sortedLeafOrder()
	buf := make([]labelKind, n)
	for i, id := range order {
		f := evalBipoly(t.root, labelsFor(order, i, buf), h)
		rows := i + 1
		if rows > h {
			rows = h
		}
		row := make([]float64, rows)
		for j := 0; j < rows && j < len(f.b); j++ {
			row[j] = f.b[j] // coefficient of x^j·y = Pr(rank j+1)
		}
		dist[id] = row
	}
	return &pdb.RankDistribution{Dist: dist}
}

// PRF computes Υω for every leaf of a correlated dataset in O(n³) time and
// O(n) space per tuple evaluation.
func PRF(t *Tree, omega func(tu pdb.Tuple, rank int) float64) []float64 {
	n := t.Len()
	out := make([]float64, n)
	order := t.sortedLeafOrder()
	buf := make([]labelKind, n)
	for i, id := range order {
		f := evalBipoly(t.root, labelsFor(order, i, buf), 0)
		tu := t.Leaf(id)
		var up float64
		for j, c := range f.b {
			if c != 0 {
				up += omega(tu, j+1) * c
			}
		}
		out[id] = up
	}
	return out
}

// PRFOmega computes Υ for the weight vector w (PRFω(h) with h = len(w)) on a
// correlated dataset, truncating all polynomials to h coefficients: O(n²·h)
// worst case.
func PRFOmega(t *Tree, w []float64) []float64 {
	n := t.Len()
	h := len(w)
	out := make([]float64, n)
	order := t.sortedLeafOrder()
	buf := make([]labelKind, n)
	for i, id := range order {
		f := evalBipoly(t.root, labelsFor(order, i, buf), h)
		var up float64
		for j := 0; j < len(f.b) && j < h; j++ {
			up += w[j] * f.b[j]
		}
		out[id] = up
	}
	return out
}

// PTh computes Pr(r(t) ≤ h) for every leaf — PT(h) on correlated data.
func PTh(t *Tree, h int) []float64 {
	w := make([]float64, h)
	for i := range w {
		w[i] = 1
	}
	return PRFOmega(t, w)
}

// SizeDistribution returns Pr(|pw| = i) for i = 0..n: Example 2 of the
// paper, obtained by labeling every leaf x.
func SizeDistribution(t *Tree) []float64 {
	n := t.Len()
	label := make([]labelKind, n)
	for i := range label {
		label[i] = labelX
	}
	f := evalBipoly(t.root, label, 0)
	out := make([]float64, n+1)
	for i := 0; i < len(f.a) && i <= n; i++ {
		out[i] = f.a[i]
	}
	return out
}
