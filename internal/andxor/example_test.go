package andxor_test

import (
	"fmt"

	"repro/internal/andxor"
)

// A PreparedTree pays the leaf sort and the incremental Algorithm 3 buffers
// once, then serves the whole α spectrum — here the Figure 1 traffic
// database, whose PRFe ranking shifts from score-dominated to
// probability-dominated as α grows.
func ExamplePrepareTree() {
	tree, _ := andxor.New(andxor.NewAnd(
		andxor.NewXor([]float64{0.4}, andxor.NewLeaf(120)),
		andxor.NewXor([]float64{0.7, 0.3}, andxor.NewLeaf(130), andxor.NewLeaf(80)),
		andxor.NewXor([]float64{0.4, 0.6}, andxor.NewLeaf(95), andxor.NewLeaf(110)),
		andxor.NewXor([]float64{1.0}, andxor.NewLeaf(105)),
	))
	pt := andxor.PrepareTree(tree)
	for _, alpha := range []float64{0.1, 0.9} {
		fmt.Println(alpha, pt.RankPRFe(alpha).TopK(3))
	}
	// The batch API answers a grid in one call (identical results, shared
	// evaluation state, parallel across α).
	sweep := pt.RankPRFeBatch([]float64{0.1, 0.9})
	fmt.Println(sweep[0].TopK(3), sweep[1].TopK(3))
	// Output:
	// 0.1 [1 0 4]
	// 0.9 [5 1 4]
	// [1 0 4] [5 1 4]
}
