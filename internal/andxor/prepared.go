package andxor

import (
	"context"
	"math/cmplx"
	"sync"

	"repro/internal/par"
	"repro/internal/pdb"
)

// PreparedTree is the correlated-data analogue of core.Prepared: an immutable
// view of an and/xor tree that pays the indexing work — the O(n log n)
// ranked leaf order and the O(m) incremental-evaluation buffers of
// Algorithm 3 — exactly once, and then serves any number of PRFe, PRFe-combo
// and expected-rank queries without re-sorting or re-allocating. One-shot
// calls spend most of their time on exactly that per-call setup (sorting the
// leaves dominates the profile at n = 10⁴), so amortizing it is what makes
// α-spectrum sweeps and multi-term combinations on trees cheap.
//
// A PreparedTree is safe for concurrent use: the cached order is read-only
// and every query checks a private evaluation state out of an internal pool,
// so the parallel batch methods (PRFeBatch, RankPRFeBatch, TopKPRFeBatch)
// can fan α values across GOMAXPROCS goroutines over the shared view.
type PreparedTree struct {
	t     *Tree
	order []pdb.TupleID // leaves by non-increasing score, ties by ID
	c     float64       // Σ leaf marginals (the E-Rank constant)
	pool  sync.Pool     // *prfeEval scratch, reset on checkout
}

// PrepareTree builds the prepared view of a tree. The tree is never mutated;
// the one-shot package functions (PRFeValues, PRFeCombo, RankPRFe,
// ExpectedRanks) are thin prepare-then-call wrappers over the same methods.
func PrepareTree(t *Tree) *PreparedTree {
	pt := &PreparedTree{t: t, order: t.sortedLeafOrder()}
	for id := 0; id < t.Len(); id++ {
		pt.c += t.leaves[id].marginal
	}
	return pt
}

// Len returns the number of leaves (tuples).
func (pt *PreparedTree) Len() int { return pt.t.Len() }

// Tree returns the underlying tree.
func (pt *PreparedTree) Tree() *Tree { return pt.t }

// getEval checks an incremental evaluation state out of the pool, resetting
// a recycled one to the all-leaves-1 labeling. Fresh states are built (and
// initialized) on demand, so concurrent queries each hold a private state.
func (pt *PreparedTree) getEval() *prfeEval {
	if e, ok := pt.pool.Get().(*prfeEval); ok {
		e.reset()
		return e
	}
	return newPRFeEval(pt.t)
}

func (pt *PreparedTree) putEval(e *prfeEval) { pt.pool.Put(e) }

// prfeInto runs one incremental Algorithm 3 pass at the given α over the
// cached leaf order, writing Υ_α per TupleID into out (length n). The
// arithmetic is identical, operation for operation, to a fresh PRFeValues
// evaluation, so results are bit-for-bit equal to the one-shot path.
func (pt *PreparedTree) prfeInto(e *prfeEval, alpha complex128, out []complex128) {
	t := pt.t
	rootIdx := t.root.idx
	for i, id := range pt.order {
		if i > 0 {
			// Previous target leaf: y → x, i.e. values (α, α).
			e.setLeaf(t.leaves[pt.order[i-1]], alpha, alpha)
		}
		// Current target leaf: 1 → y, i.e. values (α, 0).
		e.setLeaf(t.leaves[id], alpha, 0)
		out[id] = e.vAA[rootIdx] - e.vA0[rootIdx]
	}
}

// PRFe computes Υ_α for every leaf with the incremental Algorithm 3 over the
// prepared order. α may be complex; for ranking with real α use RankPRFe or
// take AbsParts. Results are identical to PRFeValues.
func (pt *PreparedTree) PRFe(alpha complex128) []complex128 {
	out := make([]complex128, pt.Len())
	if pt.Len() == 0 {
		return out
	}
	e := pt.getEval()
	pt.prfeInto(e, alpha, out)
	pt.putEval(e)
	return out
}

// PRFeBatch evaluates PRFe for every α of a batch, fanning the grid across
// GOMAXPROCS goroutines; each worker drains its share of the grid with one
// pooled evaluation state. out[a] equals PRFe(alphas[a]) bit-for-bit.
func (pt *PreparedTree) PRFeBatch(alphas []complex128) [][]complex128 {
	//lint:allow ctxflow ctx-free compatibility API; the engine's query path uses prfeBatchCtx with the caller's ctx
	out, err := pt.prfeBatchCtx(context.Background(), alphas)
	pdb.MustNoErr(err) // Background never cancels
	return out
}

// prfeBatchCtx is PRFeBatch with cooperative cancellation between grid
// points — the engine's QueryPRFeBatch arm.
func (pt *PreparedTree) prfeBatchCtx(ctx context.Context, alphas []complex128) ([][]complex128, error) {
	out := make([][]complex128, len(alphas))
	if pt.Len() == 0 {
		for a := range out {
			out[a] = make([]complex128, 0)
		}
		return out, nil
	}
	workers := par.WorkersFor(ctx, len(alphas))
	evals := make([]*prfeEval, workers)
	err := par.ForWorkersCtx(ctx, workers, len(alphas), func(w, a int) {
		if evals[w] == nil {
			evals[w] = pt.getEval()
		} else {
			evals[w].reset()
		}
		out[a] = make([]complex128, pt.Len())
		pt.prfeInto(evals[w], alphas[a], out[a])
	})
	for _, e := range evals {
		if e != nil {
			pt.putEval(e)
		}
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PRFeCombo evaluates a linear combination Σ_l u_l·Υ_{α_l} on the tree — the
// correlated-data backend of the Section 5.1 approximation. The per-term
// passes run in parallel over pooled states and the terms are summed in term
// order, so the result is bit-for-bit the one-shot PRFeCombo answer while
// the sort and the evaluation buffers are paid once for all L terms.
func (pt *PreparedTree) PRFeCombo(us, alphas []complex128) []complex128 {
	out := make([]complex128, pt.Len())
	vals := pt.PRFeBatch(alphas[:len(us)])
	for l := range us {
		for i, v := range vals[l] {
			out[i] += us[l] * v
		}
	}
	return out
}

// RankPRFe returns the PRFe(α) ranking of the tree's leaves for real α,
// ranking by |Υ| as the paper's top-k definition prescribes.
func (pt *PreparedTree) RankPRFe(alpha float64) pdb.Ranking {
	return pdb.RankByAbs(pt.PRFe(complex(alpha, 0)))
}

// RankPRFeBatch computes the full PRFe(α) ranking for every α of a batch in
// parallel. out[a] equals RankPRFe(alphas[a]) bit-for-bit.
func (pt *PreparedTree) RankPRFeBatch(alphas []float64) []pdb.Ranking {
	out := make([]pdb.Ranking, len(alphas))
	//lint:allow ctxflow ctx-free compatibility API; the engine's query path uses rankBatch with the caller's ctx
	pdb.MustNoErr(pt.rankBatch(context.Background(), alphas, func(a int, r pdb.Ranking) { out[a] = r }))
	return out
}

// TopKPRFeBatch answers many PRFe top-k queries against the shared view —
// the correlated arm of the learning loops. out[a] equals
// RankPRFe(alphas[a]).TopK(k).
func (pt *PreparedTree) TopKPRFeBatch(alphas []float64, k int) []pdb.Ranking {
	out := make([]pdb.Ranking, len(alphas))
	//lint:allow ctxflow ctx-free compatibility API; the engine's query path uses rankBatch with the caller's ctx
	pdb.MustNoErr(pt.rankBatch(context.Background(), alphas, func(a int, r pdb.Ranking) { out[a] = r.TopK(k) }))
	return out
}

// rankBatch runs the parallel per-α ranking loop behind RankPRFeBatch and
// TopKPRFeBatch, reusing one evaluation state and one value buffer per
// worker across the whole grid. Cancellation is honored between grid
// points.
func (pt *PreparedTree) rankBatch(ctx context.Context, alphas []float64, emit func(a int, r pdb.Ranking)) error {
	n := pt.Len()
	workers := par.WorkersFor(ctx, len(alphas))
	evals := make([]*prfeEval, workers)
	vals := make([][]complex128, workers)
	abs := make([][]float64, workers)
	err := par.ForWorkersCtx(ctx, workers, len(alphas), func(w, a int) {
		if n == 0 {
			emit(a, pdb.Ranking{})
			return
		}
		if evals[w] == nil {
			evals[w] = pt.getEval()
			vals[w] = make([]complex128, n)
			abs[w] = make([]float64, n)
		} else {
			evals[w].reset()
		}
		pt.prfeInto(evals[w], complex(alphas[a], 0), vals[w])
		for i, v := range vals[w] {
			abs[w][i] = cmplx.Abs(v)
		}
		emit(a, pdb.RankByValue(abs[w]))
	})
	for _, e := range evals {
		if e != nil {
			pt.putEval(e)
		}
	}
	return err
}

// ERank returns E[r(t)] for every leaf (the Cormode et al. convention:
// absent tuples take rank |pw|) over the cached order and world-size
// constant. Results are identical to ExpectedRanks.
func (pt *PreparedTree) ERank() []float64 {
	t := pt.t
	n := t.Len()
	out := make([]float64, n)
	pos := make([]int, n)
	for i, id := range pt.order {
		pos[id] = i
	}
	for i, id := range pt.order {
		// er1: B(x) = Σ_j Pr(r=j)·x^{j−1} ⇒ Σ_j j·Pr(r=j) = B'(1)+B(1).
		d1 := evalDual(t.root, pos, i, false)
		er1 := d1.db + d1.b
		// er2: with all other leaves x, B(x) = Σ_j Pr(t ∧ j others)·x^j ⇒
		// E[|pw|·δ(t∈pw)] = B'(1)+B(1), and er2 = C − that.
		d2 := evalDual(t.root, pos, i, true)
		er2 := pt.c - (d2.db + d2.b)
		out[id] = er1 + er2
	}
	return out
}

// ExpectedRank returns the consensus expected rank (the Li/Deshpande
// convention: absent leaves take rank |pw|+1) for every leaf. The two
// conventions differ by one on exactly the worlds missing the leaf, so this
// is ERank plus the leaf's absence mass 1 − marginal.
func (pt *PreparedTree) ExpectedRank() []float64 {
	out := pt.ERank()
	for id := range out {
		out[id] += 1 - pt.t.Leaf(pdb.TupleID(id)).Prob
	}
	return out
}

// MedianRank returns the consensus median rank per leaf: the smallest j with
// Pr(r(t) ≤ j) ≥ 1/2, or the sentinel n+1 when the leaf is absent from a
// majority of worlds. Folds the tree's exact rank distribution (Algorithm 2).
func (pt *PreparedTree) MedianRank() []float64 {
	return pdb.MedianRankFromDistribution(RankDistribution(pt.t), pt.Len())
}
