package andxor

import (
	"math"
	"sort"

	"repro/internal/exact"
	"repro/internal/pdb"
)

// This file implements the specialized Section 4.4 algorithm for uncertain
// scores over *independent* tuples at the complexity the paper claims:
// O(N²) for a general PRF and O(N log N) for PRFe, where N is the total
// number of alternatives — instead of routing through the generic and/xor
// tree machinery (O(N³) for PRF).
//
// Alternatives are sorted by score. For the alternative a = (g, s) of group
// g, the generating function is
//
//	F_a(x) = p_a·x · ∏_{g'≠g} (1 − q_{g'} + q_{g'}·x),
//
// where q_{g'} is the total probability of g'’s alternatives with score
// above s. Sweeping alternatives in score order changes one group factor at
// a time; the coefficient array is maintained under factor swaps with
// synthetic division. Division by (1−q+qx) is numerically stable for
// q ≤ maxStableQ; groups that ever exceed it are handled by recomputing the
// product without that group (rare, and still O(N) each), keeping the whole
// computation exact to float64 roundoff.

// maxStableQ bounds the leading coefficient of factors removed by synthetic
// division; beyond it the recurrence c'_j = (c_j − q·c'_{j−1})/(1−q)
// amplifies error too much and the slow path is used.
const maxStableQ = 0.9

// scoredAlt is one alternative with its group index.
type scoredAlt struct {
	group int
	score float64
	prob  float64
	idx   int // index within its group (for stable tie-breaks)
}

// sortAlternatives flattens and sorts alternatives by non-increasing score
// (ties by group then intra-group index, matching the tree leaf order).
func sortAlternatives(groups [][]Alternative) []scoredAlt {
	var alts []scoredAlt
	for g, as := range groups {
		for i, a := range as {
			alts = append(alts, scoredAlt{group: g, score: a.Score, prob: a.Prob, idx: i})
		}
	}
	sort.SliceStable(alts, func(i, j int) bool {
		if !exact.Same(alts[i].score, alts[j].score) {
			return alts[i].score > alts[j].score
		}
		if alts[i].group != alts[j].group {
			return alts[i].group < alts[j].group
		}
		return alts[i].idx < alts[j].idx
	})
	return alts
}

// PRFUncertainFast computes Υω per original tuple for independent tuples
// with uncertain scores in O(N²) total (N = number of alternatives). The
// result matches PRFUncertain exactly up to roundoff.
func PRFUncertainFast(groups [][]Alternative, omega func(tu pdb.Tuple, rank int) float64) ([]float64, error) {
	if err := validateGroups(groups); err != nil {
		return nil, err
	}
	m := len(groups)
	alts := sortAlternatives(groups)
	n := len(alts)
	out := make([]float64, m)
	if n == 0 {
		return out, nil
	}

	// Coefficients of G(x) = ∏_g (1 − q_g + q_g·x) over all groups, where
	// q_g is the mass of g's alternatives seen so far (score above the
	// sweep point). Initially every q_g = 0, so G = 1.
	coeff := make([]float64, 1, n+1)
	coeff[0] = 1
	q := make([]float64, m)
	unstable := make([]bool, m) // groups whose factor left the stable range

	// For unstable groups the factor is excluded from coeff; exclCount
	// tracks how many are excluded.
	excl := 0

	for _, a := range alts {
		g := a.group
		// F_a needs the product over groups ≠ g with their current q.
		// coeff holds the product over *stable* groups; unstable groups'
		// factors are convolved back in on demand (O(excl·N), and excl is
		// almost always 0).
		var base []float64
		if unstable[g] {
			base = coeff
		} else {
			base = divideFactor(coeff, q[g])
		}
		if excl > 0 {
			base = withUnstableFactors(base, q, unstable, g)
		}
		// Υ contribution: p_a · Σ_j ω(rank j+1) · base_j.
		tu := pdb.Tuple{ID: pdb.TupleID(g), Score: a.score, Prob: a.prob}
		var up float64
		for j, c := range base {
			if c != 0 {
				up += omega(tu, j+1) * c
			}
		}
		out[g] += a.prob * up

		// Advance the sweep: group g's mass grows by p_a.
		newQ := q[g] + a.prob
		if newQ > 1 {
			newQ = 1 // guard against roundoff
		}
		switch {
		case unstable[g]:
			q[g] = newQ
		case newQ > maxStableQ:
			// Retire g's factor from coeff before it becomes unstable.
			coeff = divideFactor(coeff, q[g])
			unstable[g] = true
			excl++
			q[g] = newQ
		default:
			coeff = swapFactor(coeff, q[g], newQ, n+1)
			q[g] = newQ
		}
	}
	return out, nil
}

// PRFeUncertainFast computes Υ_α per original tuple in O(N log N): the
// factor swaps become O(1) scalar updates because only the value G(α)
// matters, with the usual zero-count guard for vanished factors.
func PRFeUncertainFast(groups [][]Alternative, alpha complex128) ([]complex128, error) {
	if err := validateGroups(groups); err != nil {
		return nil, err
	}
	m := len(groups)
	alts := sortAlternatives(groups)
	out := make([]complex128, m)
	q := make([]float64, m)
	// prod = ∏ non-zero factors (1−q_g+q_g·α); zeros counted separately.
	prod := complex128(1)
	zeros := 0
	factor := func(qg float64) complex128 {
		return complex(1-qg, 0) + complex(qg, 0)*alpha
	}
	for _, a := range alts {
		g := a.group
		// Value without group g's factor.
		fg := factor(q[g])
		var base complex128
		switch {
		case fg == 0 && zeros == 1:
			base = prod
		case fg == 0:
			base = 0
		case zeros > 0:
			base = 0
		default:
			base = prod / fg
		}
		out[g] += complex(a.prob, 0) * alpha * base

		newQ := q[g] + a.prob
		if newQ > 1 {
			newQ = 1
		}
		nf := factor(newQ)
		// Swap fg → nf in the zero-counted product.
		if fg == 0 {
			zeros--
		} else {
			prod /= fg
		}
		if nf == 0 {
			zeros++
		} else {
			prod *= nf
		}
		q[g] = newQ
	}
	return out, nil
}

// divideFactor returns coeff / (1−q+q·x) by synthetic division. q must be
// well below 1 (callers enforce maxStableQ); q=0 divides by 1.
func divideFactor(coeff []float64, q float64) []float64 {
	if q == 0 {
		out := make([]float64, len(coeff))
		copy(out, coeff)
		return out
	}
	inv := 1 / (1 - q)
	out := make([]float64, len(coeff)-1)
	prev := 0.0
	for j := 0; j < len(out); j++ {
		prev = (coeff[j] - q*prev) * inv
		out[j] = prev
	}
	return out
}

// swapFactor replaces the factor (1−q+qx) by (1−q'+q'x) in the coefficient
// array, capped at maxLen coefficients.
func swapFactor(coeff []float64, oldQ, newQ float64, maxLen int) []float64 {
	c := divideFactor(coeff, oldQ)
	// Multiply by (1−newQ+newQ·x).
	outLen := len(c) + 1
	if outLen > maxLen {
		outLen = maxLen
	}
	out := make([]float64, outLen)
	for j, v := range c {
		if j < outLen {
			out[j] += v * (1 - newQ)
		}
		if j+1 < outLen {
			out[j+1] += v * newQ
		}
	}
	return out
}

// withUnstableFactors convolves the factors of all unstable groups except
// skip back into base — the slow path for high-mass groups.
func withUnstableFactors(base []float64, q []float64, unstable []bool, skip int) []float64 {
	out := make([]float64, len(base))
	copy(out, base)
	for g, u := range unstable {
		if !u || g == skip {
			continue
		}
		out = mulLinear(out, q[g])
	}
	return out
}

func mulLinear(c []float64, q float64) []float64 {
	out := make([]float64, len(c)+1)
	for j, v := range c {
		out[j] += v * (1 - q)
		out[j+1] += v * q
	}
	return out
}

// qSanity reports the max group mass, for tests probing the unstable path.
func qSanity(groups [][]Alternative) float64 {
	worst := 0.0
	for _, as := range groups {
		var s float64
		for _, a := range as {
			s += a.Prob
		}
		worst = math.Max(worst, s)
	}
	return worst
}
