package andxor

import (
	"repro/internal/exact"
	"repro/internal/pdb"
)

// This file implements ANDXOR-PRFe-RANK (Section 4.3, Algorithm 3): the
// PRFe value of tuple tᵢ is Υ(tᵢ) = Fⁱ(α,α) − Fⁱ(α,0), and instead of
// re-evaluating the tree per tuple, the two numeric evaluations are
// maintained incrementally. Iteration i relabels leaf t_{i−1} from y to x
// and leaf tᵢ from 1 to y, updating only the two root paths — O(dᵢ) work per
// tuple, O(Σdᵢ + n log n) total (Table 3).
//
// The paper's ∧-node update rule divides by the child's previous value,
// which is ill-defined when that value is 0 (every leaf labeled y has
// F(α,0) = 0, so this happens on every iteration). Each ∧ node therefore
// maintains the product of its *non-zero* children plus a zero counter,
// making every update exact and division-by-zero free.

// prfeEval holds the incremental evaluation state for one α.
type prfeEval struct {
	t *Tree
	// Node values at the two evaluation points, indexed by node idx.
	vAA, vA0 []complex128
	// ∧-node state: product of non-zero child values and zero counts.
	prodAA, prodA0 []complex128
	zeroAA, zeroA0 []int
}

func newPRFeEval(t *Tree) *prfeEval {
	m := t.NodeCount()
	e := &prfeEval{
		t:      t,
		vAA:    make([]complex128, m),
		vA0:    make([]complex128, m),
		prodAA: make([]complex128, m),
		prodA0: make([]complex128, m),
		zeroAA: make([]int, m),
		zeroA0: make([]int, m),
	}
	e.initNode(t.root)
	return e
}

// initNode computes the initial bottom-up values with every leaf labeled 1.
func (e *prfeEval) initNode(n *Node) (vAA, vA0 complex128) {
	switch n.kind {
	case Leaf:
		e.vAA[n.idx], e.vA0[n.idx] = 1, 1
		return 1, 1
	case Xor:
		residual := 1.0
		for _, p := range n.edgeProbs {
			residual -= p
		}
		sAA := complex(residual, 0)
		sA0 := complex(residual, 0)
		for i, c := range n.children {
			cAA, cA0 := e.initNode(c)
			p := complex(n.edgeProbs[i], 0)
			sAA += p * cAA
			sA0 += p * cA0
		}
		e.vAA[n.idx], e.vA0[n.idx] = sAA, sA0
		return sAA, sA0
	default: // And
		prodAA, prodA0 := complex128(1), complex128(1)
		zAA, zA0 := 0, 0
		for _, c := range n.children {
			cAA, cA0 := e.initNode(c)
			if cAA == 0 {
				zAA++
			} else {
				prodAA *= cAA
			}
			if cA0 == 0 {
				zA0++
			} else {
				prodA0 *= cA0
			}
		}
		e.prodAA[n.idx], e.prodA0[n.idx] = prodAA, prodA0
		e.zeroAA[n.idx], e.zeroA0[n.idx] = zAA, zA0
		vAA = andValue(prodAA, zAA)
		vA0 = andValue(prodA0, zA0)
		e.vAA[n.idx], e.vA0[n.idx] = vAA, vA0
		return vAA, vA0
	}
}

// reset restores the all-leaves-1 labeling by re-running the bottom-up
// initialization over the existing buffers — the same arithmetic as a fresh
// newPRFeEval, with zero allocations. (∧-node product/zero state is only read
// for ∧ nodes, so stale entries at other indices are harmless.)
func (e *prfeEval) reset() { e.initNode(e.t.root) }

func andValue(prod complex128, zeros int) complex128 {
	if zeros > 0 {
		return 0
	}
	return prod
}

// updateProd replaces one factor of a zero-tracked product.
func updateProd(prod complex128, zeros int, old, new complex128) (complex128, int) {
	switch {
	case old == 0 && new == 0:
		return prod, zeros
	case old == 0:
		return prod * new, zeros - 1
	case new == 0:
		return prod / old, zeros + 1
	default:
		return prod / old * new, zeros
	}
}

// setLeaf relabels a leaf to the given evaluation values and refreshes the
// path to the root.
func (e *prfeEval) setLeaf(l *Node, newAA, newA0 complex128) {
	oldAA, oldA0 := e.vAA[l.idx], e.vA0[l.idx]
	if exact.SameC(oldAA, newAA) && exact.SameC(oldA0, newA0) {
		return
	}
	e.vAA[l.idx], e.vA0[l.idx] = newAA, newA0
	child := l
	chOldAA, chNewAA := oldAA, newAA
	chOldA0, chNewA0 := oldA0, newA0
	for v := child.parent; v != nil; v = v.parent {
		prevAA, prevA0 := e.vAA[v.idx], e.vA0[v.idx]
		if v.kind == And {
			e.prodAA[v.idx], e.zeroAA[v.idx] = updateProd(e.prodAA[v.idx], e.zeroAA[v.idx], chOldAA, chNewAA)
			e.prodA0[v.idx], e.zeroA0[v.idx] = updateProd(e.prodA0[v.idx], e.zeroA0[v.idx], chOldA0, chNewA0)
			e.vAA[v.idx] = andValue(e.prodAA[v.idx], e.zeroAA[v.idx])
			e.vA0[v.idx] = andValue(e.prodA0[v.idx], e.zeroA0[v.idx])
		} else { // Xor (leaves have no children)
			p := complex(v.edgeProbs[child.parentIdx], 0)
			e.vAA[v.idx] = prevAA + p*(chNewAA-chOldAA)
			e.vA0[v.idx] = prevA0 + p*(chNewA0-chOldA0)
		}
		chOldAA, chNewAA = prevAA, e.vAA[v.idx]
		chOldA0, chNewA0 = prevA0, e.vA0[v.idx]
		child = v
	}
}

// PRFeValues computes Υ_α for every leaf with the incremental Algorithm 3.
// α may be complex; for ranking with real α use RankPRFe or take AbsParts.
// One-shot convenience: prepares the tree and evaluates once. Anything that
// queries the same tree more than once (α grids, term combinations) should
// hold a PreparedTree instead.
func PRFeValues(t *Tree, alpha complex128) []complex128 {
	return PrepareTree(t).PRFe(alpha)
}

// PRFeValuesNaive recomputes the whole tree for every tuple — the O(n²)
// baseline Algorithm 3 improves on. Kept as the cross-check oracle and for
// the Table 3 ablation benchmark.
func PRFeValuesNaive(t *Tree, alpha complex128) []complex128 {
	out := make([]complex128, t.Len())
	order := t.sortedLeafOrder()
	pos := make([]int, t.Len())
	for i, id := range order {
		pos[id] = i
	}
	for i, id := range order {
		fAA := evalScalar(t.root, pos, i, alpha, alpha)
		fA0 := evalScalar(t.root, pos, i, alpha, 0)
		out[id] = fAA - fA0
	}
	return out
}

// evalScalar evaluates the generating function numerically with leaf labels
// determined by sorted position: pos < i ↦ x, pos == i ↦ y, else 1.
func evalScalar(n *Node, pos []int, i int, x, y complex128) complex128 {
	switch n.kind {
	case Leaf:
		switch {
		case pos[n.id] < i:
			return x
		case pos[n.id] == i:
			return y
		default:
			return 1
		}
	case Xor:
		residual := 1.0
		for _, p := range n.edgeProbs {
			residual -= p
		}
		s := complex(residual, 0)
		for c, ch := range n.children {
			s += complex(n.edgeProbs[c], 0) * evalScalar(ch, pos, i, x, y)
		}
		return s
	default:
		prod := complex128(1)
		for _, ch := range n.children {
			prod *= evalScalar(ch, pos, i, x, y)
		}
		return prod
	}
}

// PRFeCombo evaluates a linear combination Σ_l u_l·Υ_{α_l} on the tree, the
// correlated-data backend of the Section 5.1 approximation: one incremental
// pass per term over a shared prepared view.
func PRFeCombo(t *Tree, us, alphas []complex128) []complex128 {
	return PrepareTree(t).PRFeCombo(us, alphas)
}

// RankPRFe returns the PRFe(α) ranking of the tree's leaves for real α,
// ranking by |Υ| as the paper's top-k definition prescribes.
func RankPRFe(t *Tree, alpha float64) pdb.Ranking {
	return PrepareTree(t).RankPRFe(alpha)
}
