package datagen

import (
	"math"
	"testing"

	"repro/internal/andxor"
	"repro/internal/pdb"
)

func TestIIPLikeShape(t *testing.T) {
	d := IIPLike(5000, 42)
	if d.Len() != 5000 {
		t.Fatalf("size %d", d.Len())
	}
	// Probabilities must cluster near the seven confidence levels.
	nearLevel := 0
	for _, tu := range d.Tuples() {
		if tu.Prob <= 0 || tu.Prob >= 1 {
			t.Fatalf("probability %v out of (0,1)", tu.Prob)
		}
		for _, lv := range confidenceLevels {
			if math.Abs(tu.Prob-lv) < 0.05 {
				nearLevel++
				break
			}
		}
		if tu.Score < 0 {
			t.Fatalf("negative drift %v", tu.Score)
		}
	}
	if float64(nearLevel)/5000 < 0.99 {
		t.Fatalf("only %d/5000 probabilities near a confidence level", nearLevel)
	}
	// Heavy tail: the max score should far exceed the median.
	c := d.Clone()
	c.SortByScore()
	maxScore := c.Tuple(0).Score
	median := c.Tuple(2500).Score
	if maxScore < 8*median {
		t.Fatalf("score distribution not heavy-tailed: max %v median %v", maxScore, median)
	}
}

func TestIIPLikeDeterministic(t *testing.T) {
	a := IIPLike(100, 7)
	b := IIPLike(100, 7)
	for i := 0; i < 100; i++ {
		if a.Tuple(i) != b.Tuple(i) {
			t.Fatal("same seed produced different data")
		}
	}
	c := IIPLike(100, 8)
	same := true
	for i := 0; i < 100; i++ {
		if a.Tuple(i) != c.Tuple(i) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSynINDShape(t *testing.T) {
	d := SynIND(2000, 1)
	if d.Len() != 2000 {
		t.Fatalf("size %d", d.Len())
	}
	var probSum float64
	for _, tu := range d.Tuples() {
		if tu.Score < 0 || tu.Score > 10000 || tu.Prob < 0 || tu.Prob > 1 {
			t.Fatalf("out of range tuple %+v", tu)
		}
		probSum += tu.Prob
	}
	// Expected world size ≈ n/2, the property §3.2 relies on.
	if probSum < 900 || probSum > 1100 {
		t.Fatalf("expected world size %v, want ≈1000", probSum)
	}
}

func TestSynTreePresets(t *testing.T) {
	cases := []struct {
		name      string
		build     func(n int, seed int64) (*andxor.Tree, error)
		maxHeight int
	}{
		{"SynXOR", SynXOR, 2},
		{"SynLOW", SynLOW, 3},
		{"SynMED", SynMED, 5},
		{"SynHIGH", SynHIGH, 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tree, err := c.build(500, 3)
			if err != nil {
				t.Fatal(err)
			}
			if tree.Len() != 500 {
				t.Fatalf("leaves %d, want 500", tree.Len())
			}
			if tree.Height() > c.maxHeight+1 {
				// +1: leaves wrapped in presence-∨ nodes sit one level
				// below their structural parent.
				t.Fatalf("height %d exceeds %d", tree.Height(), c.maxHeight+1)
			}
			// Every leaf must have a valid marginal.
			for id := 0; id < tree.Len(); id++ {
				p := tree.Leaf(pdb.TupleID(id)).Prob
				if p < 0 || p > 1 {
					t.Fatalf("marginal %v", p)
				}
			}
		})
	}
}

func TestSynXORIsXTuples(t *testing.T) {
	tree, err := SynXOR(100, 9)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Height() != 2 {
		t.Fatalf("SynXOR height %d, want 2", tree.Height())
	}
}

func TestSynTreeDeterministic(t *testing.T) {
	a, err := SynMED(200, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SynMED(200, 5)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 200; id++ {
		ta := a.Leaf(pdb.TupleID(id))
		tb := b.Leaf(pdb.TupleID(id))
		if ta.Score != tb.Score || math.Abs(ta.Prob-tb.Prob) > 1e-15 {
			t.Fatal("same seed produced different trees")
		}
	}
}

func TestSynTreeCustomParams(t *testing.T) {
	tree, err := SynTree(50, TreeParams{Height: 4, MaxDegree: 3, XorShare: 0.9}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 50 {
		t.Fatalf("leaves %d", tree.Len())
	}
	// Degenerate params are clamped, not fatal.
	tree2, err := SynTree(10, TreeParams{}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if tree2.Len() != 10 {
		t.Fatalf("leaves %d", tree2.Len())
	}
}
