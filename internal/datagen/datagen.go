// Package datagen generates the Section 8 evaluation workloads:
//
//   - IIPLike, a synthetic stand-in for the International Ice Patrol iceberg
//     sightings dataset (see DESIGN.md §6 for the substitution argument):
//     scores are drift durations drawn from a heavy-tailed mixture,
//     probabilities are the paper's own confidence-level conversion —
//     {0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.4} plus a small Gaussian tie-breaking
//     noise;
//   - SynIND, the independent-tuples synthetic dataset (scores uniform in
//     [0, 10000], probabilities uniform in [0, 1]);
//   - SynXOR / SynLOW / SynMED / SynHIGH, random probabilistic and/xor trees
//     with the paper's height (L), degree (d) and ∨-to-∧ proportion (X/A)
//     parameters;
//   - MarkovChainLike, a calibrated Markov chain of presence indicators
//     (the Section 9.3 correlated workload).
//
// All generators are deterministic in their seed.
package datagen

import (
	"math"
	"math/rand"

	"repro/internal/andxor"
	"repro/internal/junction"
	"repro/internal/pdb"
)

// confidenceLevels are the paper's probabilities for the seven IIP sighting
// sources: R/V, VIS, RAD, SAT-LOW, SAT-MED, SAT-HIGH, EST.
var confidenceLevels = []float64{0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.4}

// IIPLike generates n iceberg-sighting-like records. The score ("number of
// days drifted") follows a mixture of exponentials — most icebergs drift
// briefly, a few for a very long time — and the probability is a uniformly
// chosen confidence level with N(0, 0.01²) noise, clipped to (0, 1).
func IIPLike(n int, seed int64) *pdb.Dataset {
	rng := rand.New(rand.NewSource(seed))
	scores := make([]float64, n)
	probs := make([]float64, n)
	for i := 0; i < n; i++ {
		mean := 30.0
		if rng.Float64() < 0.1 {
			mean = 400.0 // long-drifting tail
		}
		scores[i] = rng.ExpFloat64() * mean
		p := confidenceLevels[rng.Intn(len(confidenceLevels))] + rng.NormFloat64()*0.01
		probs[i] = clampProb(p)
	}
	return pdb.MustDataset(scores, probs)
}

// SynIND generates n independent tuples with uniform scores in [0, 10000]
// and uniform probabilities in [0, 1].
func SynIND(n int, seed int64) *pdb.Dataset {
	rng := rand.New(rand.NewSource(seed))
	scores := make([]float64, n)
	probs := make([]float64, n)
	for i := 0; i < n; i++ {
		scores[i] = rng.Float64() * 10000
		probs[i] = rng.Float64()
	}
	return pdb.MustDataset(scores, probs)
}

func clampProb(p float64) float64 {
	return math.Min(0.99, math.Max(0.01, p))
}

// TreeParams controls the random and/xor tree generators: the tree has
// height at most Height, non-root inner nodes have at most MaxDegree
// children, and an inner node is a ∨ with probability XorShare (the paper's
// X/A ratio r corresponds to XorShare = r/(r+1); X/A=∞ is XorShare=1).
type TreeParams struct {
	Height    int
	MaxDegree int
	XorShare  float64
}

// SynTree generates a random and/xor tree with exactly n leaves. The root
// is a ∧ node of unbounded degree (as in the x-tuples layout); subtrees are
// grown randomly under the height/degree constraints, with uniform leaf
// scores in [0, 10000] and random ∨ edge probabilities summing to at most 1.
func SynTree(n int, p TreeParams, seed int64) (*andxor.Tree, error) {
	rng := rand.New(rand.NewSource(seed))
	if p.Height < 2 {
		p.Height = 2
	}
	if p.MaxDegree < 2 {
		p.MaxDegree = 2
	}
	var children []*andxor.Node
	budget := n
	for budget > 0 {
		c, used := growSubtree(rng, p, 1, budget)
		children = append(children, c)
		budget -= used
	}
	return andxor.New(andxor.NewAnd(children...))
}

// growSubtree builds a random subtree at the given depth using at most
// budget leaves; returns the node and the number of leaves consumed.
func growSubtree(rng *rand.Rand, p TreeParams, depth, budget int) (*andxor.Node, int) {
	if budget <= 1 || depth >= p.Height {
		return leafNode(rng, p, depth), 1
	}
	width := 2 + rng.Intn(p.MaxDegree-1)
	if width > budget {
		width = budget
	}
	kids := make([]*andxor.Node, 0, width)
	used := 0
	for i := 0; i < width && used < budget; i++ {
		c, u := growSubtree(rng, p, depth+1, budget-used)
		kids = append(kids, c)
		used += u
	}
	if rng.Float64() < p.XorShare {
		return andxor.NewXor(randomEdgeProbs(rng, len(kids)), kids...), used
	}
	return andxor.NewAnd(kids...), used
}

// leafNode wraps a leaf in a single-child ∨ node (giving it an existence
// probability) unless its parent context will already randomize presence; a
// bare leaf under a ∧ chain would otherwise be certain. To keep every tuple
// genuinely uncertain the leaf always gets its own ∨ unless the tree height
// budget is exhausted at depth ≥ Height.
func leafNode(rng *rand.Rand, p TreeParams, depth int) *andxor.Node {
	leaf := andxor.NewLeaf(rng.Float64() * 10000)
	if depth >= p.Height {
		return leaf
	}
	return andxor.NewXor([]float64{0.05 + 0.9*rng.Float64()}, leaf)
}

func randomEdgeProbs(rng *rand.Rand, k int) []float64 {
	probs := make([]float64, k)
	var sum float64
	for i := range probs {
		probs[i] = 0.05 + rng.Float64()
		sum += probs[i]
	}
	// Scale so the total lands in [0.5, 1]: some ∨ nodes may select nothing.
	target := 0.5 + 0.5*rng.Float64()
	for i := range probs {
		probs[i] *= target / sum
	}
	return probs
}

// SynXOR generates the Syn-XOR dataset (L=2, X/A=∞, d=5): pure x-tuples,
// groups of at most 5 mutually exclusive alternatives.
func SynXOR(n int, seed int64) (*andxor.Tree, error) {
	rng := rand.New(rand.NewSource(seed))
	var groups [][]andxor.Alternative
	remaining := n
	for remaining > 0 {
		size := 1 + rng.Intn(5)
		if size > remaining {
			size = remaining
		}
		alts := make([]andxor.Alternative, size)
		probs := randomEdgeProbs(rng, size)
		for i := range alts {
			alts[i] = andxor.Alternative{Score: rng.Float64() * 10000, Prob: probs[i]}
		}
		groups = append(groups, alts)
		remaining -= size
	}
	return andxor.XTuples(groups)
}

// SynLOW generates the Syn-LOW dataset (L=3, X/A=10, d=2).
func SynLOW(n int, seed int64) (*andxor.Tree, error) {
	return SynTree(n, TreeParams{Height: 3, MaxDegree: 2, XorShare: 10.0 / 11.0}, seed)
}

// SynMED generates the Syn-MED dataset (L=5, X/A=3, d=5).
func SynMED(n int, seed int64) (*andxor.Tree, error) {
	return SynTree(n, TreeParams{Height: 5, MaxDegree: 5, XorShare: 3.0 / 4.0}, seed)
}

// SynHIGH generates the Syn-HIGH dataset (L=5, X/A=1, d=10).
func SynHIGH(n int, seed int64) (*andxor.Tree, error) {
	return SynTree(n, TreeParams{Height: 5, MaxDegree: 10, XorShare: 0.5}, seed)
}

// MarkovChainLike builds a calibrated n-variable Markov chain of
// tuple-presence indicators (the Section 9.3 correlated workload): scores
// are uniform in [0, 10000], and each pairwise joint Pr(Y_j, Y_{j+1}) is
// constructed from seeded transition probabilities and the running marginal,
// so adjacent tables agree by construction. A chain needs at least two
// variables, so smaller n is clamped to 2. Deterministic in the seed.
func MarkovChainLike(n int, seed int64) *junction.Chain {
	if n < 2 {
		n = 2
	}
	rng := rand.New(rand.NewSource(seed))
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = rng.Float64() * 10000
	}
	pair := make([][2][2]float64, n-1)
	m := 0.6 // running Pr(Y_j = 1)
	for j := 0; j < n-1; j++ {
		q1 := 0.2 + 0.6*rng.Float64() // Pr(Y_{j+1}=1 | Y_j=1)
		q0 := 0.2 + 0.6*rng.Float64() // Pr(Y_{j+1}=1 | Y_j=0)
		pair[j] = [2][2]float64{
			{(1 - m) * (1 - q0), (1 - m) * q0},
			{m * (1 - q1), m * q1},
		}
		m = m*q1 + (1-m)*q0
	}
	c, err := junction.NewChain(scores, pair)
	if err != nil {
		// The construction calibrates by design; failure is a bug here.
		//lint:allow errdiscipline generator self-calibration cannot fail absent a bug in this package
		panic(err)
	}
	return c
}
