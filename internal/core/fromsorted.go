package core

// The storage layer's entry points into the prepared-view core: FromSorted
// admits arrays that are already in the canonical sorted order (the on-disk
// segment layout of internal/store) without paying the O(n log n) sort a
// Prepare would, and PRFeLogSpan is the resumable span form of the PRFeLog
// kernel that lazy partial materialization uses to extend per-tuple values
// as more of a score prefix is read from disk.

import (
	"errors"
	"math"
	"math/cmplx"

	"repro/internal/exact"
	"repro/internal/pdb"
)

// FromSorted validation errors.
var (
	// ErrNotSorted reports input arrays that violate the canonical
	// (score descending, ID ascending) prepared order.
	ErrNotSorted = errors.New("core: arrays are not in (score desc, ID asc) order")
	// ErrBadArrays reports mismatched lengths, an ID set that is not a
	// permutation of 0..n-1, a probability outside [0, 1], or a non-finite
	// score.
	ErrBadArrays = errors.New("core: invalid prepared arrays")
)

// FromSorted builds a Prepared view directly from arrays already in the
// canonical order Prepare would establish: scores non-increasing, ties
// broken by ascending tuple ID, with ids a permutation of 0..n-1. The
// arrays are copied, then validated in O(n) — no sort happens, which is
// what makes opening a score-ordered on-disk segment a sequential scan.
// The resulting view is bit-for-bit the one Prepare builds from the same
// tuples.
func FromSorted(ids []pdb.TupleID, scores, probs []float64) (*Prepared, error) {
	n := len(ids)
	if len(scores) != n || len(probs) != n {
		return nil, ErrBadArrays
	}
	v := &Prepared{
		ids:    make([]pdb.TupleID, n),
		scores: make([]float64, n),
		probs:  make([]float64, n),
	}
	copy(v.ids, ids)
	copy(v.scores, scores)
	copy(v.probs, probs)
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		id := v.ids[i]
		if id < 0 || int(id) >= n || seen[id] {
			return nil, ErrBadArrays
		}
		seen[id] = true
		if math.IsNaN(v.probs[i]) || v.probs[i] < 0 || v.probs[i] > 1 {
			return nil, ErrBadArrays
		}
		if math.IsNaN(v.scores[i]) || math.IsInf(v.scores[i], 0) {
			return nil, ErrBadArrays
		}
		if i == 0 {
			continue
		}
		// The canonical comparator: strictly decreasing score, or the same
		// IEEE value with ascending IDs (so -0 ties 0, exactly as the
		// Prepare/SortByScore comparators treat them).
		if exact.Same(v.scores[i-1], v.scores[i]) {
			if v.ids[i-1] >= id {
				return nil, ErrNotSorted
			}
		} else if !(v.scores[i-1] > v.scores[i]) {
			return nil, ErrNotSorted
		}
	}
	return v, nil
}

// PRFeLogState is the running state of a log-domain PRFe scan, carried
// across PRFeLogSpan calls so a scan can resume where the previous span
// ended. The zero value is the state before position 0.
type PRFeLogState struct {
	// LogProd is Σ log|1 − p_l + p_l·α| over the positions consumed so far.
	LogProd float64
	// Zeroed records that some consumed factor was exactly 0, annihilating
	// every later product.
	Zeroed bool
}

// PRFeLogSpan continues a log-domain PRFe evaluation across the next span
// of sorted-order probabilities: out[i] receives log|Υ_α| for span position
// i (out is positional — the caller owns the mapping back to tuple IDs),
// and st advances past the span. Feeding the full probability array through
// one span (or any partition of it into consecutive spans) produces exactly
// the values PRFeLogInto computes — the per-element arithmetic below must
// stay textually identical to PRFeLogInto's, and the equivalence is pinned
// bit-for-bit by TestPRFeLogSpanMatchesPRFeLog.
//
// The span form also carries the partial-materialization bound: for real
// α ∈ (0, 1] every remaining value is ≤ st.LogProd + log α (−Inf once
// st.Zeroed), because each remaining factor and probability only subtract
// from the running sum — see store.LazyPrepared.
func PRFeLogSpan(alpha complex128, probs []float64, st *PRFeLogState, out []float64) {
	logAlpha := math.Log(cmplx.Abs(alpha))
	logProd, zeroed := st.LogProd, st.Zeroed
	for i, pr := range probs {
		switch {
		case zeroed, pr == 0:
			out[i] = math.Inf(-1)
		default:
			out[i] = logProd + math.Log(pr) + logAlpha
		}
		p := complex(pr, 0)
		f := 1 - p + p*alpha
		if f == 0 {
			zeroed = true
		} else if !zeroed {
			logProd += math.Log(cmplx.Abs(f))
		}
	}
	st.LogProd, st.Zeroed = logProd, zeroed
}
