package core

import (
	"context"
	"errors"
	"fmt" //lint:allow kernelpurity fmt.Errorf/Sprintf on construction and validation paths only; no formatting in the per-tuple inner loops
	"math"
	"slices"

	"repro/internal/exact"
	"repro/internal/pdb"
)

// This file implements the kinetic spectrum engine: incremental maintenance
// of the PRFe(α) ranking as α sweeps upward through (0, 1].
//
// Theorem 4 proves that for independent tuples the value curves Υ_α of any
// two tuples cross at most once in α ∈ (0, 1): the ratio
//
//	ρ_{j,i}(α) = Υ_j(α)/Υ_i(α) = (p_j/p_i) · ∏_{l=i}^{j−1} (1 − p_l + p_l·α)
//
// (i < j sorted-by-score positions) is monotone increasing in α. The ranking
// therefore evolves along the α axis purely by adjacent transpositions — a
// kinetic sorted list. A Sweep materializes that structure in two
// complementary modes, both starting from one sort at the initial α:
//
// Predictive (event) mode — NewSweep/AdvanceTo, and SpectrumSize — schedules
// a pending crossing event for every adjacent pair that will swap and
// advances by popping events from a priority queue (a calendar queue of
// β-buckets with a small active heap), applying the swap and re-testing the
// two pairs that become newly adjacent. Advancing across K crossings costs
// O(n + K·(log n + solve)) total, and the event *times* themselves are the
// product: SpectrumSize counts distinct crossing times to report the exact
// number of rankings in the spectrum, which no grid sample can do.
// Monotonicity gives two O(1) facts the scheduler leans on hard: a pair
// whose upper tuple has the larger score position has already crossed and
// can never cross again, and otherwise a future crossing exists iff
// p_lower > p_upper, because ρ(1) = p_j/p_i. Only genuine crossings pay a
// root solve, and the solver is tiered: closed forms for one- and
// two-factor spans, a log-free secant iteration on the raw product for
// short spans, a prefix-power-sum series (O(M) per evaluation, span-free)
// for long spans at large α, and a renormalized log evaluator as the
// general fallback — every solve seeded by the closed-form second-order
// root, which typically lands within 1e-4 of the answer.
//
// Deferred (observational) mode — the grid sweeps RankPRFeSweep,
// TopKPRFeSweep, SpectrumSizeGrid — exploits the same theorem without
// predicting anything: between consecutive grid points the ranking changes
// by exactly the interval's adjacent transpositions, so the certification
// pass below applies them by insertion repair at amortized O(1) per
// crossing, roughly two orders of magnitude cheaper per transposition than
// solving for when it happens. Measurement drove this split: on the bench
// workload (n = 10⁴, 16-point grid, ~55k crossings) the event path costs
// ~150 ns per crossing — root solve plus queue traffic — while the
// insertion pass pays ~2 ns per crossing; predict only when the prediction
// itself is the answer.
//
// Exactness contract. Event times and value evaluations are float
// arithmetic of different shapes; near a crossing they can disagree about
// which side of a grid point a swap lands on, and at exact value ties the
// reference ranking breaks by tuple ID, which no event models. Every
// emitted ranking is therefore certified: the PRFe log-values are
// re-evaluated at the query α with bit-identical arithmetic to PRFeLog and
// one insertion pass restores RankByValue's exact order (value desc, ID
// asc) — O(n) plus one move per residual disagreement. The emitted ranking
// is bit-for-bit the ranking RankPRFe(α) returns; the equivalence suite in
// sweep_test.go pins this at every grid point, including ties, duplicates
// and zero-probability tuples. Both modes carry the same safety valve for
// event storms (Θ(n²) crossings cluster below α = 1 when probabilities
// nearly tie): past a 4n work budget they fall back to one O(n log n)
// re-sort, which is cheaper than walking the storm.
//
// A Sweep is single-owner: unlike the Prepared view it advances internal
// state and must not be shared between goroutines without external locking.

// sweepEvent is one pending adjacent-pair crossing: at α = beta the tuples
// occupying ranks k and k+1 — score positions left and right when the event
// was scheduled — swap. Events are invalidated lazily: if perm[k]/perm[k+1]
// no longer hold left/right at pop time, the adjacency was broken by an
// earlier swap and the event is dropped (the pair was re-tested when its new
// adjacency formed, so nothing is lost).
type sweepEvent struct {
	beta        float64
	k           int32
	left, right int32
}

// eventHeap is a hand-rolled 4-ary min-heap ordered by (beta, k). It avoids
// container/heap so pushes don't box events into interfaces — the grid sweep
// pushes two events per crossing and the allocation churn would dominate —
// and the wide fan-out halves the depth of the cache-missing sift-down walks
// that dominate heap cost at tens of thousands of pending events.
type eventHeap []sweepEvent

func (h eventHeap) before(a, b sweepEvent) bool {
	if !exact.Same(a.beta, b.beta) {
		return a.beta < b.beta
	}
	return a.k < b.k
}

func (h *eventHeap) push(e sweepEvent) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !s.before(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h eventHeap) siftDown(i int) {
	for {
		c := 4*i + 1
		if c >= len(h) {
			return
		}
		end := c + 4
		if end > len(h) {
			end = len(h)
		}
		smallest := i
		for l := c; l < end; l++ {
			if h.before(h[l], h[smallest]) {
				smallest = l
			}
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// heapify establishes the heap order over arbitrary contents (Floyd's
// bottom-up construction, O(len)) — used when a calendar bucket's unsorted
// event list is merged into the active heap.
func (h eventHeap) heapify() {
	for i := (len(h) - 2) / 4; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *eventHeap) pop() sweepEvent {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	s.siftDown(0)
	return top
}

// Sweep is a kinetic sorted list over the PRFe(α) spectrum of a Prepared
// view. Create one with Prepared.NewSweep at the smallest α of interest and
// move it monotonically upward with AdvanceTo / RankingAt / TopKAt. See the
// file comment for the algorithm and the exactness contract.
type Sweep struct {
	v     *Prepared
	alpha float64
	perm  []int // perm[k] = sorted-score position of the rank-k tuple

	// Pending events live in a calendar queue: the β domain (α₀, 1]
	// is cut into uniform buckets, far-future events are appended to their
	// bucket's unsorted list (O(1), cache-friendly), and only the bucket
	// currently being drained is kept heap-ordered. This keeps the hot
	// heap small — pops walk a few cache lines instead of a
	// tens-of-thousands-element tree.
	heap       eventHeap      // active bucket, heap-ordered
	buckets    [][]sweepEvent // future buckets, unsorted
	active     int            // index of the bucket heap currently drains
	bucketBase float64
	bucketInv  float64 // 1/(1−α₀); 0 when only one bucket

	logP []float64 // log p by sorted position (-Inf for p = 0)
	maxP float64

	// Prefix power sums for the series crossing evaluator, built lazily:
	// powSums[m][k] = Σ_{l<k} p_l^(m+1). powCur holds p_l^(m+1) for the
	// highest m built so the next order extends in one O(n) pass. maxM caps
	// the order so the lazily grown tables stay within a fixed memory
	// budget at any n.
	powSums [][]float64
	powCur  []float64
	maxM    int
	deltas  []float64 // per-solve ΔS_m scratch, reused across all solves

	// deferred marks the observational grid mode: no event queue at all —
	// each certified grid step applies the interval's transpositions by
	// insertion repair. Chosen by the grid sweep constructors; manual
	// NewSweep sweeps always run the predictive event queue, whose crossing
	// times are themselves the product (SpectrumSize, event introspection).
	deferred bool

	// betaTol is the convergence tolerance for event times: tight enough
	// (1e-10) that distinct crossing times are counted faithfully by the
	// exact spectrum enumeration, loose enough that the second-order seed
	// plus a couple of secant steps reach it.
	betaTol float64

	crossings     int
	distinctTimes int
	lastBeta      float64

	vals []float64 // certification scratch: PRFe log-values by position
}

// NewSweep builds the kinetic list positioned at alpha, which must lie in
// (0, 1]: it evaluates the PRFe log-values, sorts once, and schedules the
// initial crossing events. Subsequent queries must be at non-decreasing α.
func (v *Prepared) NewSweep(alpha float64) *Sweep {
	return v.newSweep(alpha, false)
}

// newSweep is NewSweep with mode selection: deferred sweeps skip the event
// infrastructure entirely (no initial scheduling, no seed tables, no
// calendar) because their grid steps repair by insertion instead.
func (v *Prepared) newSweep(alpha float64, deferred bool) *Sweep {
	if !(alpha > 0 && alpha <= 1) {
		panic(fmt.Sprintf("core: NewSweep alpha %v outside (0,1]", alpha))
	}
	n := v.Len()
	maxM := seriesMaxM
	if n > 0 {
		if byBudget := seriesMemBudget / (8 * (n + 1)); byBudget < maxM {
			maxM = byBudget
		}
		if maxM < 1 {
			maxM = 1 // order 1 is always kept: it seeds every solve
		}
	}
	s := &Sweep{
		v:        v,
		alpha:    alpha,
		deferred: deferred,
		perm:     make([]int, n),
		logP:     make([]float64, n),
		vals:     make([]float64, n),
		maxM:     maxM,
		betaTol:  1e-10,
		lastBeta: math.NaN(),
	}
	for i, p := range v.probs {
		s.logP[i] = math.Log(p) // Log(0) = -Inf, matching PRFeLog's sentinel
		if p > s.maxP {
			s.maxP = p
		}
	}
	s.fillVals(alpha)
	for i := range s.perm {
		s.perm[i] = i
	}
	slices.SortFunc(s.perm, func(a, b int) int {
		if s.above(a, b) {
			return -1
		}
		return 1
	})
	if deferred {
		return s // no events: grid steps repair by insertion instead
	}
	s.deltas = make([]float64, maxM)
	nb := n / 16
	if nb < 1 {
		nb = 1
	} else if nb > 1024 {
		nb = 1024
	}
	if width := 1 - alpha; width > 0 && nb > 1 {
		s.bucketInv = 1 / width
	} else {
		nb = 1
	}
	s.bucketBase = alpha
	s.buckets = make([][]sweepEvent, nb)
	if n > 0 {
		s.ensurePowSums(2) // ΔS₁/ΔS₂ seed every crossing solve
	}
	for k := 0; k+1 < n; k++ {
		s.schedule(k, alpha)
	}
	return s
}

// Alpha returns the sweep's current position.
func (s *Sweep) Alpha() float64 { return s.alpha }

// Len returns the number of tuples in the underlying view.
func (s *Sweep) Len() int { return len(s.perm) }

// Crossings returns the number of crossing events applied so far.
func (s *Sweep) Crossings() int { return s.crossings }

// DistinctCrossingTimes returns the number of distinct α values at which
// applied crossings occurred. Simultaneous transpositions (several disjoint
// pairs crossing at one α) change the ranking once, so the number of
// distinct PRFe rankings seen in (α₀, α_now] is DistinctCrossingTimes()+1.
func (s *Sweep) DistinctCrossingTimes() int { return s.distinctTimes }

// above reports whether sorted position a ranks above position b under the
// current s.vals — the exact pdb.RankByValue order (value desc, tuple ID
// asc). Every ordering decision in the engine — the initial sort and both
// certification repairs — goes through this one comparator, so the
// bit-for-bit contract with the reference ranking cannot drift between
// copies. (PRFe log-values are never NaN, so no NaN arm is needed.)
func (s *Sweep) above(a, b int) bool {
	va, vb := s.vals[a], s.vals[b]
	if !exact.Same(va, vb) {
		return va > vb
	}
	return s.v.ids[a] < s.v.ids[b]
}

// fillVals writes the PRFe log-values at alpha into s.vals indexed by sorted
// position. The arithmetic mirrors Prepared.PRFeLog operation for operation
// (same running sum, same factor expression) so the values — and therefore
// any comparison-based ordering — are bit-identical to the reference path.
func (s *Sweep) fillVals(alpha float64) {
	logProd := 0.0
	zeroed := false
	logAlpha := math.Log(alpha)
	for i, pr := range s.v.probs {
		switch {
		case zeroed, pr == 0:
			s.vals[i] = math.Inf(-1)
		default:
			s.vals[i] = logProd + s.logP[i] + logAlpha
		}
		f := 1 - pr + pr*alpha
		if f == 0 {
			zeroed = true
		} else if !zeroed {
			logProd += math.Log(f)
		}
	}
}

// schedule re-tests the adjacency (k, k+1) and pushes its crossing event if
// one lies in (lo, 1). The O(1) prefilter does almost all the work: a pair
// whose upper tuple sits at the larger score position has already crossed
// (monotone ρ) and a pair with p_lower ≤ p_upper has ρ(1) ≤ 1; only genuine
// future crossings reach the root solver.
func (s *Sweep) schedule(k int, lo float64) {
	if k < 0 || k+1 >= len(s.perm) {
		return
	}
	u, w := s.perm[k], s.perm[k+1]
	if u > w {
		return // post-crossing order: ρ monotone, never swaps back
	}
	beta, ok := s.crossingIn(u, w, lo)
	if !ok {
		return
	}
	e := sweepEvent{beta: beta, k: int32(k), left: int32(u), right: int32(w)}
	if b := s.bucketOf(beta); b > s.active {
		s.buckets[b] = append(s.buckets[b], e)
	} else {
		s.heap.push(e)
	}
}

// bucketOf maps a crossing time to its calendar bucket. The cubic
// compression frac³ makes bucket widths shrink like 1/frac² toward α = 1,
// where crossing density piles up (near-tied probabilities separate only
// as α → 1), keeping per-bucket event counts roughly level.
func (s *Sweep) bucketOf(beta float64) int {
	frac := (beta - s.bucketBase) * s.bucketInv
	if frac >= 1 {
		return len(s.buckets) - 1
	}
	b := int(frac * frac * frac * float64(len(s.buckets)))
	if b < 0 {
		b = 0
	}
	if b >= len(s.buckets) {
		b = len(s.buckets) - 1
	}
	return b
}

// closedFormRoot solves the crossing of spans of one or two factors exactly:
// ρ(α)·(p_i/p_j) = ∏f_l is linear (one factor) or quadratic (two) in α.
// Returns (β, true) for an event clamped to fire no earlier than lo,
// (0, false) when the crossing lies beyond hi or cannot occur, and
// (NaN, false) for numerically degenerate cases the iterative solver should
// handle instead.
func closedFormRoot(probs []float64, i, j int, lo, hi float64) (float64, bool) {
	invR := probs[i] / probs[j] // < 1: the caller established log ρ(1) > 0
	var root float64
	if j-i == 1 {
		p := probs[i]
		if p == 0 {
			return 0, false // ρ is constant in α: no interior crossing
		}
		root = 1 - (1-invR)/p
	} else {
		p1, p2 := probs[i], probs[i+1]
		a := p1 * p2
		b := p1*(1-p2) + p2*(1-p1)
		cc := (1-p1)*(1-p2) - invR
		switch {
		case a == 0 && b == 0:
			return 0, false // both factors constant in α
		case a == 0:
			root = -cc / b
		default:
			disc := b*b - 4*a*cc
			if disc < 0 {
				return math.NaN(), false
			}
			// Stable quadratic: b ≥ 0 always, and the increasing branch of
			// ρ on α ≥ 0 crosses at the larger root.
			q := -0.5 * (b + math.Sqrt(disc))
			root = q / a
			if q != 0 {
				if r2 := cc / q; r2 > root {
					root = r2
				}
			}
		}
	}
	if math.IsNaN(root) {
		return math.NaN(), false
	}
	if root > hi {
		return 0, false // crossing at or beyond α = 1: not interior
	}
	if root <= lo {
		return lo, true // numerically already crossed: fire immediately
	}
	return root, true
}

// AdvanceTo processes every crossing event in (Alpha(), target] in time
// order, applying adjacent transpositions and re-testing the pairs each swap
// makes newly adjacent. This is the pure kinetic path — O(log n) per
// crossing, no value evaluation — used by SpectrumSize; RankingAt adds the
// certification pass on top. target must be ≥ Alpha() and ≤ 1; violations
// are reported as errors (a Sweep only moves upward through α).
func (s *Sweep) AdvanceTo(target float64) error {
	if math.IsNaN(target) || target < s.alpha {
		return fmt.Errorf("core: Sweep.AdvanceTo(%v) moves backwards from %v", target, s.alpha)
	}
	if target > 1 {
		return fmt.Errorf("core: Sweep.AdvanceTo(%v) beyond α = 1", target)
	}
	s.advanceBounded(target, math.MaxInt)
	s.alpha = target
	return nil
}

// advanceBounded pops events up to target, applying at most budget of them.
// It reports whether the advance completed; on false the caller owns repair:
// the heap has been cleared and the order is stale, so it must fully re-sort
// and reschedule (the certified grid path does exactly that). The budget is
// the safety valve for pathological event storms — e.g. a grid ending at
// α = 1.0 on data whose probabilities nearly tie, where Θ(n²) crossings
// cluster just below 1 and processing them one by one would cost far more
// than the single O(n log n) re-sort the fallback performs.
func (s *Sweep) advanceBounded(target float64, budget int) bool {
	targetBucket := s.bucketOf(target)
	for {
		for len(s.heap) > 0 && s.heap[0].beta <= target {
			e := s.heap.pop()
			k := int(e.k)
			if k+1 >= len(s.perm) || s.perm[k] != int(e.left) || s.perm[k+1] != int(e.right) {
				continue // stale: adjacency broken since scheduling
			}
			if budget--; budget < 0 {
				s.clearEvents(targetBucket)
				return false
			}
			s.perm[k], s.perm[k+1] = int(e.right), int(e.left)
			s.crossings++
			if !exact.Same(e.beta, s.lastBeta) {
				s.distinctTimes++
				s.lastBeta = e.beta
			}
			// The swapped pair is now post-crossing and inert; only the two
			// adjacencies it disturbed need re-testing, from this event's time.
			s.schedule(k-1, e.beta)
			s.schedule(k+1, e.beta)
		}
		if s.active >= targetBucket {
			return true
		}
		// Merge the next calendar bucket into the (small) active heap. Heap
		// leftovers all have β beyond the merged bucket's range start, so
		// one heapify restores global order.
		s.active++
		if evs := s.buckets[s.active]; len(evs) > 0 {
			s.heap = append(s.heap, evs...)
			s.buckets[s.active] = evs[:0]
			s.heap.heapify()
		}
	}
}

// clearEvents drops every pending event (budget blowout: the caller
// re-sorts and reschedules from scratch) and fast-forwards the calendar.
func (s *Sweep) clearEvents(targetBucket int) {
	s.heap = s.heap[:0]
	for b := s.active + 1; b < len(s.buckets); b++ {
		s.buckets[b] = s.buckets[b][:0]
	}
	s.active = targetBucket
}

// RankingAt advances to alpha and returns the certified full ranking there —
// bit-for-bit the ranking Prepared.RankPRFe(alpha) returns. alpha must be
// ≥ Alpha() and inside (0, 1].
func (s *Sweep) RankingAt(alpha float64) (pdb.Ranking, error) {
	out := make(pdb.Ranking, len(s.perm))
	if err := s.rankingInto(alpha, out); err != nil {
		return nil, err
	}
	return out, nil
}

// TopKAt advances to alpha and returns the certified top-k ranking there.
func (s *Sweep) TopKAt(alpha float64, k int) (pdb.Ranking, error) {
	if k > len(s.perm) {
		k = len(s.perm)
	}
	if err := s.advanceAndCertify(alpha); err != nil {
		return nil, err
	}
	out := make(pdb.Ranking, k)
	for i := 0; i < k; i++ {
		out[i] = s.v.ids[s.perm[i]]
	}
	return out, nil
}

func (s *Sweep) rankingInto(alpha float64, out pdb.Ranking) error {
	if err := s.advanceAndCertify(alpha); err != nil {
		return err
	}
	for k, pos := range s.perm {
		out[k] = s.v.ids[pos]
	}
	return nil
}

// advanceAndCertify is the certified grid step. In event mode it advances
// the queue with a budget and then certifies. In deferred mode there is no
// queue: Theorem 4 guarantees the ranking at the previous grid point and
// the ranking here differ only by the interval's adjacent transpositions,
// so the certification pass itself applies them — amortized O(1) per
// crossing with no root-solving, predicting nothing and observing
// everything.
func (s *Sweep) advanceAndCertify(alpha float64) error {
	if alpha < s.alpha {
		return fmt.Errorf("core: Sweep queried at %v after advancing to %v", alpha, s.alpha)
	}
	if !(alpha > 0 && alpha <= 1) {
		return fmt.Errorf("core: Sweep queried at alpha %v outside (0,1]", alpha)
	}
	if s.deferred {
		s.alpha = alpha
		s.certifyDeferred(alpha)
		return nil
	}
	complete := s.advanceBounded(alpha, 4*len(s.perm)+64)
	s.alpha = alpha
	s.certify(alpha, !complete)
	return nil
}

// certifyDeferred is the deferred-mode grid step: re-evaluate the values at
// alpha and insertion-repair the previous grid point's permutation. The
// move budget is the same safety valve as the event path's: an interval
// packed with Θ(n²) crossings (near-tied probabilities approaching α = 1)
// costs less as one O(n log n) re-sort than as quadratic insertion work.
func (s *Sweep) certifyDeferred(alpha float64) {
	n := len(s.perm)
	if n == 0 {
		return
	}
	s.fillVals(alpha)
	budget := 4*n + 64
	moved := 0
	for k := 1; k < n; k++ {
		p := s.perm[k]
		m := k
		for m > 0 && s.above(p, s.perm[m-1]) {
			s.perm[m] = s.perm[m-1]
			m--
		}
		s.perm[m] = p
		if moved += k - m; moved > budget {
			slices.SortFunc(s.perm, func(a, b int) int {
				if s.above(a, b) {
					return -1
				}
				return 1
			})
			break // crossings counted so far remain a lower bound
		}
	}
	s.crossings += moved
}

// certify re-evaluates the PRFe log-values at alpha and restores the exact
// reference order (value desc, ID asc). With fresh events the permutation is
// already sorted — the insertion pass is a single O(n) scan — and each
// residual float-boundary disagreement or tie costs one move. When the
// event budget blew (rebuild), the order may be arbitrarily stale, so it
// re-sorts outright and reschedules every adjacency.
func (s *Sweep) certify(alpha float64, rebuild bool) {
	n := len(s.perm)
	if n == 0 {
		return
	}
	s.fillVals(alpha)
	if rebuild {
		slices.SortFunc(s.perm, func(a, b int) int {
			if s.above(a, b) {
				return -1
			}
			return 1
		})
		for k := 0; k+1 < n; k++ {
			s.schedule(k, alpha)
		}
		return
	}
	dirtyLo, dirtyHi := n, -1
	for k := 1; k < n; k++ {
		p := s.perm[k]
		m := k
		for m > 0 && s.above(p, s.perm[m-1]) {
			s.perm[m] = s.perm[m-1]
			m--
		}
		if m == k {
			continue
		}
		s.perm[m] = p
		if m < dirtyLo {
			dirtyLo = m
		}
		if k > dirtyHi {
			dirtyHi = k
		}
	}
	if dirtyHi < 0 {
		return // already in reference order: the common case
	}
	// Ranks in [dirtyLo, dirtyHi] shifted, which both changes adjacencies
	// and strands any pending events keyed to the old rank indices (they
	// will pop stale). Re-test the whole dirty span.
	for k := dirtyLo - 1; k <= dirtyHi; k++ {
		s.schedule(k, alpha)
	}
}

// ---------------------------------------------------------------------------
// Crossing-point solver.
// ---------------------------------------------------------------------------

// crossEps is the left end of the crossing search domain: the one-shot
// CrossingPoint contract searches (0, 1) but the evaluator needs α > 0.
const crossEps = 1e-12

// spectrumEps is where the exact spectrum sweep starts: close enough to 0
// that the initial order is the α→0⁺ (rank-1 probability) order for any
// realistically separated dataset.
const spectrumEps = 1e-9

// solveCtx is the per-solve state of the crossing root finder: the span,
// the hoisted α-independent terms (log(p_j)−log(p_i) and the raw ratio
// p_j/p_i), and the chosen evaluation strategy. It lives on the stack — the
// solver allocates nothing per event.
type solveCtx struct {
	i, j    int
	logDiff float64
	ratio   float64 // p_j/p_i, for the log-free product evaluator
	mode    uint8
	m       int // series order when mode == solveSeries
}

// Evaluation strategies, cheapest first for the span shapes they cover.
const (
	// solveProduct evaluates ρ−1 = (p_j/p_i)·∏f_l − 1 directly — no log
	// calls at all. The workhorse: most adjacencies that cross sit close
	// together in score order, and for short spans the product cannot
	// underflow, so the transcendental overhead of the log form (one
	// math.Log per evaluation) is pure waste.
	solveProduct uint8 = iota
	// solveSeries evaluates log ρ via prefix power sums in O(m), span-free;
	// picked for long spans at large α where it converges fast.
	solveSeries
	// solveLog is the renormalized-product log evaluator — the fully
	// general fallback for long spans the series can't cover.
	solveLog
)

// crossingIn finds the α ∈ (lo, 1) at which the tuples at sorted
// positions i < j swap PRFe order, given that position i currently ranks
// above j. Monotonicity of log ρ makes existence an O(1) test — log ρ(1) =
// log p_j − log p_i must be positive — after which a bracketed
// secant/Newton iteration locates the root, seeded by the closed-form
// first-order root 1 − (log p_j − log p_i)/ΣΔp, which lands within a few
// percent of the true crossing for typical near-tied pairs and cuts the
// solve to a handful of evaluations. If the pair has numerically already
// crossed (log ρ(lo) ≥ 0, possible when certification re-ordered a float
// boundary), the event fires immediately at lo.
func (s *Sweep) crossingIn(i, j int, lo float64) (float64, bool) {
	logDiff := s.logP[j] - s.logP[i]
	if !(logDiff > 0) { // covers p_j ≤ p_i, either probability zero, and ties
		return 0, false
	}
	if lo < crossEps {
		lo = crossEps
	}
	// Spans of one or two factors — the bulk of real crossings, since pairs
	// that swap adjacent ranks tend to sit adjacent in score order too —
	// have closed-form roots: ρ is linear (resp. quadratic) in α there, so
	// the solve is a couple of flops with no iteration at all.
	if j-i <= 2 {
		if beta, ok := closedFormRoot(s.v.probs, i, j, lo, 1); ok {
			return beta, true
		} else if !math.IsNaN(beta) {
			return 0, false
		}
		// NaN signals a degenerate case; fall through to the iteration.
	}
	c := s.prepSolve(i, j, logDiff, lo)
	glo, _ := s.evalG(&c, lo, false)
	if glo >= 0 {
		return lo, true
	}
	hi := 1.0
	// Second-order seed: log ρ ≈ logDiff − σ·ΔS₁ − σ²·ΔS₂/2 (σ = 1−α)
	// vanishes at σ* = (√(ΔS₁²+2·ΔS₂·logDiff) − ΔS₁)/ΔS₂, with the ΔS from
	// the always-built order-1/2 prefix sums. The cubic-order error puts the
	// seed within ~|σ·p|³ of the root, so the secant refinement below needs
	// only a couple of evaluations.
	seed := 0.5 * (lo + hi)
	ds1 := s.powSums[0][j] - s.powSums[0][i]
	ds2 := s.powSums[1][j] - s.powSums[1][i]
	if ds2 > 0 {
		if sigma := (math.Sqrt(ds1*ds1+2*ds2*logDiff) - ds1) / ds2; sigma > 0 {
			if x := 1 - sigma; x > lo && x < hi {
				seed = x
			}
		}
	} else if ds1 > 0 {
		if x := 1 - logDiff/ds1; x > lo && x < hi {
			seed = x
		}
	}
	if c.mode == solveProduct {
		return s.productRoot(&c, lo, hi, glo, seed), true
	}
	return s.newton(&c, lo, hi, seed), true
}

// productRoot solves ρ(β)−1 = 0 on the bracket with derivative-free secant
// steps over the inlined product evaluation — the hot path: the spans of
// adjacent pairs that actually cross are short (the ranking stays near the
// score order until α is large), so each evaluation is a handful of
// multiplies and the whole solve runs without a single division, log, or
// indirect call.
func (s *Sweep) productRoot(c *solveCtx, lo, hi, flo, seed float64) float64 {
	probs := s.v.probs
	i, j, ratio := c.i, c.j, c.ratio
	x0, f0 := lo, flo
	x1 := seed
	for iter := 0; iter < 60; iter++ {
		prod := 1.0
		for l := i; l < j; l++ {
			p := probs[l]
			prod *= 1 - p + p*x1
		}
		var f1 float64
		if prod < 1e-280 {
			f1, _ = logRhoDirect(probs, i, j, c.logDiff, x1, false)
		} else {
			f1 = ratio*prod - 1
		}
		if f1 == 0 {
			return x1
		}
		if f1 < 0 {
			lo = x1
		} else {
			hi = x1
		}
		if hi-lo <= 1e-12 {
			break
		}
		nx := 0.5 * (lo + hi)
		if !exact.Same(f1, f0) {
			if sx := x1 - f1*(x1-x0)/(f1-f0); sx > lo && sx < hi {
				nx = sx
			}
		}
		if math.Abs(nx-x1) <= s.betaTol {
			return nx // the secant error tracks the step size
		}
		x0, f0 = x1, f1
		x1 = nx
	}
	return 0.5 * (lo + hi)
}

const (
	seriesMinSpan   = 24         // below this the product pass beats the series
	seriesMaxM      = 48         // prefix power sums kept at most to p^48
	seriesMemBudget = 48_000_000 // bytes of power-sum tables a sweep may grow
	seriesTol       = 1e-9       // absolute truncation tolerance for g
	productMaxSpan  = 256        // longest span the product form attempts
)

// prepSolve picks the cheapest sound evaluation strategy for the span
// [i, j). Short spans take the log-free product form. Long spans prefer the
// prefix-power-sum series — O(M) independent of the span — which converges
// fast exactly where long spans occur: rankings at large α interleave
// tuples far apart in score order (the probability order is score-blind),
// and there x_l = p_l(1−α) is small. Long spans the series can't cover fall
// back to the product form up to a larger cutoff and finally to the
// renormalized log evaluator. The seriesTol truncation (≤ 1e-9 on g)
// perturbs event times by far less than the certification pass absorbs, and
// far less than the spacing of distinguishable crossings.
func (s *Sweep) prepSolve(i, j int, logDiff, lo float64) solveCtx {
	c := solveCtx{i: i, j: j, logDiff: logDiff, ratio: s.v.probs[j] / s.v.probs[i]}
	dist := j - i
	if dist < seriesMinSpan {
		return c // solveProduct
	}
	xmax := s.maxP * (1 - lo)
	if m, ok := seriesOrder(xmax, dist, s.maxM); ok {
		s.ensurePowSums(m)
		for t := 0; t < m; t++ {
			sums := s.powSums[t]
			s.deltas[t] = sums[j] - sums[i]
		}
		c.mode, c.m = solveSeries, m
		return c
	}
	if dist <= productMaxSpan {
		return c // solveProduct, with per-eval underflow fallback
	}
	c.mode = solveLog
	return c
}

// seriesOrder returns the number of series terms needed to evaluate g within
// seriesTol over a span of dist tuples with x ≤ xmax, or ok=false when maxM
// terms can't reach the tolerance (caller falls back to the direct pass).
// Truncation after M terms is bounded by dist·xmax^(M+1)/((M+1)(1−xmax)).
func seriesOrder(xmax float64, dist, maxM int) (int, bool) {
	if !(xmax > 0) {
		return 1, true
	}
	if xmax >= 0.7 {
		return 0, false
	}
	bound := float64(dist) * xmax / (1 - xmax)
	for m := 1; m <= maxM; m++ {
		bound *= xmax
		if bound/float64(m+1) <= seriesTol {
			return m, true
		}
	}
	return 0, false
}

// evalG evaluates a sign-equivalent form of g(α) = log ρ(α) — and, when
// asked, its derivative — under the solve's chosen strategy. All three forms
// are increasing with the same root and sign, which is what the safeguarded
// Newton needs; their absolute scales differ (ρ−1 versus log ρ), which it
// tolerates.
//
// The product form returns ρ(α)−1 with zero transcendental calls. The
// series form uses log(1−x) = −Σ_m x^m/m with x_l = p_l(1−α):
//
//	g(α)  = logDiff − Σ_{m=1..M} ((1−α)^m / m) · ΔS_m
//	g'(α) =           Σ_{m=1..M} (1−α)^(m−1)  · ΔS_m
//
// where ΔS_m = Σ_{l∈[i,j)} p_l^m was loaded from two prefix-sum lookups at
// prepSolve time — O(M) per evaluation regardless of the span. In the rare
// case the product underflows (a long span packed with near-one
// probabilities at tiny α), the evaluation falls back to the log form: the
// sign stays consistent, and the Newton bracket absorbs the scale switch.
func (s *Sweep) evalG(c *solveCtx, alpha float64, needDeriv bool) (float64, float64) {
	switch c.mode {
	case solveProduct:
		probs := s.v.probs
		prod := 1.0
		sum := 0.0
		if needDeriv {
			for l := c.i; l < c.j; l++ {
				p := probs[l]
				f := 1 - p + p*alpha
				prod *= f
				sum += p / f
			}
		} else {
			for l := c.i; l < c.j; l++ {
				p := probs[l]
				prod *= 1 - p + p*alpha
			}
		}
		if prod < 1e-280 {
			return logRhoDirect(probs, c.i, c.j, c.logDiff, alpha, needDeriv)
		}
		rp := c.ratio * prod
		return rp - 1, rp * sum
	case solveSeries:
		sigma := 1 - alpha
		g := c.logDiff
		dg := 0.0
		pow := 1.0 // sigma^t
		for t := 0; t < c.m; t++ {
			d := s.deltas[t]
			dg += pow * d
			pow *= sigma
			g -= pow * d / float64(t+1)
		}
		return g, dg
	default:
		return logRhoDirect(s.v.probs, c.i, c.j, c.logDiff, alpha, needDeriv)
	}
}

// ensurePowSums extends the prefix power sums up to order m (powSums[m-1]
// holds Σ p^m). Each new order costs one O(n) pass.
func (s *Sweep) ensurePowSums(m int) {
	n := len(s.logP)
	if s.powCur == nil {
		s.powCur = make([]float64, n)
		for i := range s.powCur {
			s.powCur[i] = 1
		}
	}
	for len(s.powSums) < m {
		probs := s.v.probs
		sums := make([]float64, n+1)
		var acc float64
		for i := 0; i < n; i++ {
			s.powCur[i] *= probs[i]
			acc += s.powCur[i]
			sums[i+1] = acc
		}
		s.powSums = append(s.powSums, sums)
	}
}

// logRhoDirect computes g(α) = logDiff + Σ_{l∈[i,j)} log(1−p_l+p_l·α) and
// optionally g'(α) = Σ p_l/f_l in one pass. The α-independent logDiff is
// hoisted by the caller, and the log-sum is carried as a renormalized
// running product — one math.Log call per ~10³ factors instead of one per
// factor, which is what makes each Newton iteration a cheap incremental
// pass (the factors are all in [0, 1] for α ≤ 1, so the product only
// shrinks and a single underflow guard suffices).
func logRhoDirect(probs []float64, i, j int, logDiff, alpha float64, needDeriv bool) (float64, float64) {
	g := logDiff
	dg := 0.0
	prod := 1.0
	if needDeriv {
		for l := i; l < j; l++ {
			p := probs[l]
			f := 1 - p + p*alpha
			prod *= f
			dg += p / f
			if prod < 1e-280 {
				g += math.Log(prod)
				prod = 1
			}
		}
	} else {
		for l := i; l < j; l++ {
			p := probs[l]
			prod *= 1 - p + p*alpha
			if prod < 1e-280 {
				g += math.Log(prod)
				prod = 1
			}
		}
	}
	return g + math.Log(prod), dg
}

// newton solves g(β) = 0 for β ∈ (lo, hi) given g increasing with
// g(lo) < 0 < g(hi). Newton steps are taken whenever they stay inside the
// shrinking bisection bracket, so convergence is quadratic in the typical
// case and never worse than bisection. The 1e-12 bracket tolerance is ample:
// event times feed grid-interval assignment and distinct-time counting, and
// the certification pass absorbs any residual boundary fuzz.
func (s *Sweep) newton(c *solveCtx, lo, hi, seed float64) float64 {
	x := seed
	for iter := 0; iter < 80 && hi-lo > 1e-12; iter++ {
		g, dg := s.evalG(c, x, true)
		if g == 0 {
			return x
		}
		if g < 0 {
			lo = x
		} else {
			hi = x
		}
		if dg > 0 {
			if nx := x - g/dg; nx > lo && nx < hi {
				// A sub-tolerance step means x has converged even while the
				// far bracket side is still distant — stop here rather than
				// creeping the near side by ulps for the remaining budget.
				if math.Abs(nx-x) <= s.betaTol {
					return nx
				}
				x = nx
				continue
			}
		}
		x = 0.5 * (lo + hi)
	}
	return 0.5 * (lo + hi)
}

// ---------------------------------------------------------------------------
// Grid sweeps and the exact spectrum on a Prepared view.
// ---------------------------------------------------------------------------

// gridForSweep reports whether alphas is a strictly increasing grid inside
// (0, 1] — the domain Theorem 4's kinetic structure covers.
func gridForSweep(alphas []float64) bool {
	if len(alphas) == 0 || !(alphas[0] > 0) || alphas[len(alphas)-1] > 1 {
		return false
	}
	for i := 1; i < len(alphas); i++ {
		if !(alphas[i] > alphas[i-1]) {
			return false
		}
	}
	return true
}

// errSweepGrid reports a batch handed to a sweep kernel that is not a
// strictly increasing α grid inside (0, 1] — the Theorem 4 domain.
// RankPRFeBatch is the forgiving dispatcher that falls back to the parallel
// per-α path instead of erroring.
var errSweepGrid = errors.New("core: kinetic sweep needs a strictly increasing α grid in (0,1]")

// RankPRFeSweep computes the full PRFe ranking at every point of a strictly
// increasing α grid in (0, 1] with one kinetic sweep: sort once at
// alphas[0], then advance by crossing events. out[a] is bit-for-bit
// RankPRFe(alphas[a]). The sweep is serial along the grid, so cancellation
// is honored between grid points.
func (v *Prepared) RankPRFeSweep(ctx context.Context, alphas []float64) ([]pdb.Ranking, error) {
	if !gridForSweep(alphas) {
		return nil, errSweepGrid
	}
	if ctx == nil {
		ctx = context.Background() //lint:allow ctxflow nil-ctx normalization: Background is the documented nil fallback
	}
	out := make([]pdb.Ranking, len(alphas))
	s := v.newSweep(alphas[0], true)
	n := v.Len()
	for a, alpha := range alphas {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out[a] = make(pdb.Ranking, n)
		if err := s.rankingInto(alpha, out[a]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TopKPRFeSweep answers PRFe top-k at every point of a strictly increasing
// α grid in (0, 1] with one kinetic sweep. out[a] is bit-for-bit
// RankPRFe(alphas[a]).TopK(k). Cancellation is honored between grid points.
func (v *Prepared) TopKPRFeSweep(ctx context.Context, alphas []float64, k int) ([]pdb.Ranking, error) {
	if !gridForSweep(alphas) {
		return nil, errSweepGrid
	}
	if ctx == nil {
		ctx = context.Background() //lint:allow ctxflow nil-ctx normalization: Background is the documented nil fallback
	}
	out := make([]pdb.Ranking, len(alphas))
	s := v.newSweep(alphas[0], true)
	for a, alpha := range alphas {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		top, err := s.TopKAt(alpha, k)
		if err != nil {
			return nil, err
		}
		out[a] = top
	}
	return out, nil
}

// SpectrumSize counts the distinct PRFe rankings the view passes through as
// α sweeps (0, 1) — exactly, by running the kinetic sweep across the whole
// interval and counting distinct crossing times, rather than sampling a grid
// and missing every ranking that lives between two grid points (use
// SpectrumSizeGrid for the sampled variant). Theorem 4 bounds the answer by
// 1 + C(n,2); the cost is Θ((n + K) log n) for K actual crossings, and K
// itself can reach Θ(n²) — on datasets whose probabilities nearly tie the
// crossings cluster just below α = 1, so the exact count is an inherently
// heavy query at scale. The sweep starts at α = 1e-9; rankings that exist
// only below that are not distinguished.
func (v *Prepared) SpectrumSize() int {
	if v.Len() <= 1 {
		return 1
	}
	s := v.NewSweep(spectrumEps)
	pdb.MustNoErr(s.AdvanceTo(1)) // 1 ≥ spectrumEps and ≤ 1: cannot fail
	return 1 + s.DistinctCrossingTimes()
}

// SpectrumSizeGrid counts distinct PRFe rankings on the uniform α grid
// {1/g, 2/g, …, 1} — the sampled spectrum, kept for comparison with the
// exact SpectrumSize. It rides the kinetic sweep (one sort plus events)
// instead of re-ranking every grid point, and its counts are identical to
// ranking each grid point independently.
func (v *Prepared) SpectrumSizeGrid(gridSize int) int {
	if gridSize < 2 {
		gridSize = 2
	}
	n := v.Len()
	if n == 0 {
		return 1
	}
	s := v.newSweep(1/float64(gridSize), true)
	cur := make(pdb.Ranking, n)
	prev := make(pdb.Ranking, n)
	count := 0
	for a := 1; a <= gridSize; a++ {
		pdb.MustNoErr(s.rankingInto(float64(a)/float64(gridSize), cur)) // uniform grid in (0,1]: cannot fail
		if a == 1 || !sameRanking(prev, cur) {
			count++
			prev, cur = cur, prev
		}
	}
	return count
}
