// Package core implements the paper's parameterized ranking functions (PRF,
// PRFω(h), PRFe(α)) and the generating-function algorithms of Section 4.1
// for tuple-independent datasets:
//
//   - rank distributions Pr(r(t)=j) for all tuples in O(n²) (Algorithm 1,
//     IND-PRF-RANK), or O(n·h) truncated to the first h positions;
//   - Υω(t) for an arbitrary weight function ω in O(n²) time and O(n) space;
//   - PRFω(h) in O(n·h + n log n);
//   - PRFe(α) in O(n log n) — O(n) when pre-sorted — for real or complex α,
//     with a log-space path that stays exact in ranking order down to
//     n = 10⁶ and beyond (Section 4.3, Equation 3);
//   - linear combinations of PRFe functions (Section 5.1), the evaluation
//     backend for the DFT approximation of arbitrary PRFω functions.
//
// All algorithms run on a Prepared view — an immutable, score-sorted
// struct-of-arrays snapshot of the dataset built once with Prepare. The
// package-level one-shot functions are thin prepare-then-call wrappers kept
// for convenience and backward compatibility; repeated-query workloads
// (α sweeps, multi-term combinations, batch top-k) should Prepare once and
// call the methods, which never re-clone or re-sort.
//
// Dense α-spectrum workloads additionally ride the kinetic spectrum engine
// (sweep.go): per Theorem 4 the PRFe ranking evolves along α purely by
// adjacent transpositions, so a Sweep maintains it incrementally — an event
// queue of pair-crossing times for the exact spectrum enumeration
// (SpectrumSize), and insertion-certified grid stepping behind
// RankPRFeBatch/TopKPRFeBatch for monotone α grids — instead of re-sorting
// at every grid point.
//
// Correlated datasets are handled by the andxor and junction packages; this
// package is the independent-tuples fast path that the paper's Figure 11
// timings exercise. Attribute (score) uncertainty reduces to x-tuples and
// lives in the andxor package (Section 4.4).
package core

import (
	"repro/internal/pdb"
)

// WeightFunc is the paper's ω: it maps a tuple and a 1-based rank to a real
// weight. Implementations must be O(1) per call (the algorithms assume so).
type WeightFunc func(t pdb.Tuple, rank int) float64

// RankDistribution computes the full positional-probability matrix for a
// tuple-independent dataset with Algorithm 1: the generating function
// F^i(x) = (∏_{t∈T_{i−1}} (1−p+px)) · pᵢ·x is expanded incrementally, so
// each tuple costs O(i) and the whole matrix O(n²) time and O(n²) space.
// Use RankDistributionTrunc when only the first h positions matter.
func RankDistribution(d *pdb.Dataset) *pdb.RankDistribution {
	return Prepare(d).RankDistribution()
}

// RankDistributionTrunc computes Pr(r(t)=j) for j = 1..h only, in O(n·h)
// time and O(n·h) space.
func RankDistributionTrunc(d *pdb.Dataset, h int) *pdb.RankDistribution {
	return Prepare(d).RankDistributionTrunc(h)
}

// advance multiplies the coefficient vector g by (1−p+p·x), truncating to
// maxLen coefficients. It mutates and returns g.
func advance(g []float64, p float64, maxLen int) []float64 {
	q := 1 - p
	if len(g) < maxLen {
		g = append(g, 0)
	}
	for j := len(g) - 1; j >= 1; j-- {
		g[j] = g[j]*q + g[j-1]*p
	}
	g[0] *= q
	return g
}

// PRF computes Υω(t) for every tuple under an arbitrary weight function, in
// O(n²) time but only O(n) space: the generating-function coefficients are
// folded into Υ on the fly instead of being stored (Equation 1).
// The result is indexed by TupleID.
func PRF(d *pdb.Dataset, omega WeightFunc) []float64 {
	return Prepare(d).PRF(omega)
}

// PRFOmega computes Υ for the weight vector w, where w[j] is the weight of
// rank j+1 and all ranks beyond len(w) weigh zero — the PRFω(h) family with
// h = len(w). Runs in O(n·h + n log n) time and O(h) extra space.
func PRFOmega(d *pdb.Dataset, w []float64) []float64 {
	return Prepare(d).PRFOmega(w)
}

// PTWeights returns the PT(h) weight vector: ω(i)=1 for i ≤ h (Probabilistic
// Threshold top-k / Global-top-k as a PRFω special case).
func PTWeights(h int) []float64 {
	w := make([]float64, h)
	for i := range w {
		w[i] = 1
	}
	return w
}

// PTh computes Pr(r(t) ≤ h) for every tuple — the PT(h) ranking function —
// in O(n·h) time.
func PTh(d *pdb.Dataset, h int) []float64 {
	return Prepare(d).PTh(h)
}

// TopK ranks all tuples by non-increasing value and returns the first k IDs.
func TopK(values []float64, k int) pdb.Ranking {
	return pdb.RankByValue(values).TopK(k)
}

// RankPositionProbabilities returns, for each tuple, Pr(r(t)=j) for
// j = 1..k as a dense n×k matrix indexed by TupleID. This is the input the
// U-Rank baseline needs; it matches the O(nk + n log n) bound of Yi et al.
// cited in Section 4.1.
func RankPositionProbabilities(d *pdb.Dataset, k int) [][]float64 {
	rd := RankDistributionTrunc(d, k)
	out := make([][]float64, d.Len())
	flat := make([]float64, d.Len()*k)
	for id := range out {
		row := flat[id*k : (id+1)*k : (id+1)*k]
		copy(row, rd.Dist[id])
		out[id] = row
	}
	return out
}
