package core

import (
	"repro/internal/pdb"
)

// This file holds the one-shot entry points for the Section 7 analysis of
// how PRFe(α) rankings evolve as α sweeps from 0 to 1 (Theorem 4): for
// independent tuples, any two tuples swap relative order at most once, so
// the sweep resembles a bubble sort from the Pr(r(t)=1) order (α→0) towards
// the Pr(t) order (α=1). The kinetic spectrum engine in sweep.go turns that
// structure into an event-driven incremental ranking maintenance scheme;
// the functions below wrap the Prepared methods built on it. Sweep-heavy
// callers should Prepare once and use the Prepared/Sweep APIs directly.

// PRFeCurve evaluates Υ_α(t) for every tuple over a grid of real α values:
// curve[i][a] is the PRFe value of the tuple with ID i at alphas[a]
// (Figure 6 / Example 7). The grid is evaluated by fused scans split across
// workers; see Prepared.PRFeCurve.
func PRFeCurve(d *pdb.Dataset, alphas []float64) [][]float64 {
	return Prepare(d).PRFeCurve(alphas)
}

// CrossingPoint finds the unique β ∈ (0,1) at which tuples with sorted
// positions i < j (score order, 0-based) swap their PRFe order, if any
// (Theorem 4). It returns (β, true) when the pair ranks differently at the
// two ends of (0,1), and (0, false) when one tuple dominates the other
// across all of it. Both tuples must have positive probability.
//
// The ratio ρ_{j,i}(α) = (p_j/p_i)·∏_{l=i}^{j−1}(1−p_l+p_l·α) is monotone in
// α (the proof of Theorem 4), so existence is a sign test at the two ends
// and the unique root is located by a safeguarded Newton iteration; see
// Prepared.CrossingPoint.
func CrossingPoint(d *pdb.Dataset, i, j int) (float64, bool) {
	return Prepare(d).CrossingPoint(i, j)
}

// SpectrumSize counts the number of distinct PRFe rankings the dataset
// passes through as α sweeps (0, 1) — exactly, by running the kinetic sweep
// over the whole interval and counting distinct crossing times. Per
// Theorem 4 this is at most 1 + the number of crossing pairs (O(n²)); PT(h)
// by contrast spans at most n distinct rankings, which is why PRFe spans a
// richer spectrum (end of Section 7). See Prepared.SpectrumSize for cost
// caveats, and SpectrumSizeGrid for the cheaper sampled variant.
func SpectrumSize(d *pdb.Dataset) int {
	return Prepare(d).SpectrumSize()
}

// SpectrumSizeGrid counts the distinct PRFe rankings encountered on a
// uniform grid sweep of α over (0, 1] — the sampled spectrum, which misses
// any ranking that lives entirely between two grid points. Kept alongside
// the exact SpectrumSize for comparison.
func SpectrumSizeGrid(d *pdb.Dataset, gridSize int) int {
	return Prepare(d).SpectrumSizeGrid(gridSize)
}

func sameRanking(a, b pdb.Ranking) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
