package core

import (
	"repro/internal/pdb"
)

// This file implements the Section 7 analysis of how PRFe(α) rankings evolve
// as α sweeps from 0 to 1 (Theorem 4): for independent tuples, any two tuples
// swap relative order at most once, so the sweep resembles a bubble sort from
// the Pr(r(t)=1) order (α→0) towards the Pr(t) order (α=1).
//
// The one-shot functions below wrap the Prepared methods; sweep-heavy
// callers should Prepare once and use the batch methods directly.

// PRFeCurve evaluates Υ_α(t) for every tuple over a grid of real α values:
// curve[i][a] is the PRFe value of the tuple with ID i at alphas[a]
// (Figure 6 / Example 7). Intended for small datasets; uses the direct
// product evaluation, parallel across grid points.
func PRFeCurve(d *pdb.Dataset, alphas []float64) [][]float64 {
	return Prepare(d).PRFeCurve(alphas)
}

// CrossingPoint finds the unique β ∈ (0,1) at which tuples with sorted
// positions i < j (score order, 0-based) swap their PRFe order, if any
// (Theorem 4). It returns (β, true) when the pair ranks differently at the
// two extremes, and (0, false) when one tuple dominates the other across all
// of (0,1]. Both tuples must have positive probability.
//
// The ratio ρ_{j,i}(α) = (p_j/p_i)·∏_{l=i}^{j−1}(1−p_l+p_l·α) is monotone in
// α (the proof of Theorem 4), so a bisection on log ρ converges to the unique
// root.
func CrossingPoint(d *pdb.Dataset, i, j int) (float64, bool) {
	return Prepare(d).CrossingPoint(i, j)
}

// SpectrumSize counts the number of distinct PRFe rankings encountered on a
// grid sweep of α over (0, 1]. Per Theorem 4 this is at most 1 + the number
// of crossing pairs (O(n²)); PT(h) by contrast can reach at most n distinct
// rankings, which is why PRFe spans a richer spectrum (end of Section 7).
func SpectrumSize(d *pdb.Dataset, gridSize int) int {
	return Prepare(d).SpectrumSize(gridSize)
}

func sameRanking(a, b pdb.Ranking) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
