package core

import (
	"math"

	"repro/internal/pdb"
)

// This file implements the Section 7 analysis of how PRFe(α) rankings evolve
// as α sweeps from 0 to 1 (Theorem 4): for independent tuples, any two tuples
// swap relative order at most once, so the sweep resembles a bubble sort from
// the Pr(r(t)=1) order (α→0) towards the Pr(t) order (α=1).

// PRFeCurve evaluates Υ_α(t) for every tuple over a grid of real α values:
// curve[i][a] is the PRFe value of the tuple with ID i at alphas[a]
// (Figure 6 / Example 7). Intended for small datasets; uses the direct
// product evaluation.
func PRFeCurve(d *pdb.Dataset, alphas []float64) [][]float64 {
	out := make([][]float64, d.Len())
	for i := range out {
		out[i] = make([]float64, len(alphas))
	}
	for a, alpha := range alphas {
		vals := PRFe(d, complex(alpha, 0))
		for i, v := range vals {
			out[i][a] = real(v)
		}
	}
	return out
}

// CrossingPoint finds the unique β ∈ (0,1) at which tuples with sorted
// positions i < j (score order, 0-based) swap their PRFe order, if any
// (Theorem 4). It returns (β, true) when the pair ranks differently at the
// two extremes, and (0, false) when one tuple dominates the other across all
// of (0,1]. Both tuples must have positive probability.
//
// The ratio ρ_{j,i}(α) = (p_j/p_i)·∏_{l=i}^{j−1}(1−p_l+p_l·α) is monotone in
// α (the proof of Theorem 4), so a bisection on log ρ converges to the unique
// root.
func CrossingPoint(d *pdb.Dataset, i, j int) (float64, bool) {
	if i == j {
		return 0, false
	}
	if i > j {
		i, j = j, i
	}
	ts := sortedCopy(d)
	pi, pj := ts[i].Prob, ts[j].Prob
	if pi <= 0 || pj <= 0 {
		return 0, false
	}
	logRho := func(alpha float64) float64 {
		v := math.Log(pj) - math.Log(pi)
		for l := i; l < j; l++ {
			f := 1 - ts[l].Prob + ts[l].Prob*alpha
			if f <= 0 {
				return math.Inf(-1)
			}
			v += math.Log(f)
		}
		return v
	}
	const eps = 1e-12
	lo, hi := eps, 1.0
	flo, fhi := logRho(lo), logRho(hi)
	if flo == fhi || (flo < 0) == (fhi < 0) {
		return 0, false // same sign at both ends: no swap in (0,1)
	}
	for iter := 0; iter < 200 && hi-lo > 1e-14; iter++ {
		mid := (lo + hi) / 2
		if (logRho(mid) < 0) == (flo < 0) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, true
}

// SpectrumSize counts the number of distinct PRFe rankings encountered on a
// grid sweep of α over (0, 1]. Per Theorem 4 this is at most 1 + the number
// of crossing pairs (O(n²)); PT(h) by contrast can reach at most n distinct
// rankings, which is why PRFe spans a richer spectrum (end of Section 7).
func SpectrumSize(d *pdb.Dataset, gridSize int) int {
	if gridSize < 2 {
		gridSize = 2
	}
	var prev pdb.Ranking
	count := 0
	for a := 1; a <= gridSize; a++ {
		alpha := float64(a) / float64(gridSize)
		r := RankPRFe(d, alpha)
		if prev == nil || !sameRanking(prev, r) {
			count++
			prev = r
		}
	}
	return count
}

func sameRanking(a, b pdb.Ranking) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
