package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pdb"
)

// Property suite for the sharded evaluation layer (shard.go, lanes.go):
// every kernel is diffed against its scalar reference across shard counts
// P ∈ {1, 2, 7, n, n+3} (the last producing empty shards) and across the
// degenerate dataset shapes — all-tied scores, zero- and one-probability
// tuples, annihilating α, tiny n. Kernels documented bit-for-bit are
// compared with ==; the product/polynomial merges with the 1e-12 scaled
// tolerance their certification promises. A -race test runs sharded and
// scalar kernels concurrently over one shared view.

// shardShapes are the dataset shapes every property test sweeps.
func shardShapes(tb testing.TB) map[string]*pdb.Dataset {
	rng := rand.New(rand.NewSource(7))
	n := 500
	scores := make([]float64, n)
	probs := make([]float64, n)
	for i := range scores {
		scores[i] = rng.Float64() * 100
		probs[i] = rng.Float64()
	}
	random := pdb.MustDataset(scores, probs)

	ties := make([]float64, n)
	half := make([]float64, n)
	for i := range ties {
		ties[i] = 42 // every score tied: sorted order is ID order
		half[i] = 0.5
	}
	allTies := pdb.MustDataset(ties, half)

	extreme := make([]float64, n)
	for i := range extreme {
		switch i % 4 {
		case 0:
			extreme[i] = 0 // absent tuples: -Inf log values, identity factors
		case 1:
			extreme[i] = 1 // certain tuples: f = α exactly
		default:
			extreme[i] = rng.Float64()
		}
	}
	zeroOne := pdb.MustDataset(scores, extreme)

	tiny := pdb.MustDataset([]float64{3, 2, 1}, []float64{0.9, 0, 1})
	single := pdb.MustDataset([]float64{1}, []float64{0.7})
	empty := pdb.MustDataset(nil, nil)

	return map[string]*pdb.Dataset{
		"random":  random,
		"allTies": allTies,
		"zeroOne": zeroOne,
		"tiny":    tiny,
		"single":  single,
		"empty":   empty,
	}
}

// shardCounts returns the shard-count ladder for a view of n tuples,
// including one count past n so empty shards are exercised.
func shardCounts(n int) []int {
	return []int{1, 2, 7, max(n, 1), n + 3}
}

// closeEnough is the 1e-12 scaled tolerance of the sharded certification;
// non-finite values must match exactly.
func closeEnough(a, b float64) bool {
	if a == b {
		return true // covers ±Inf and exact ties
	}
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-12*scale
}

func diffVals(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !closeEnough(got[i], want[i]) {
			t.Fatalf("%s: value[%d] = %v, want %v", label, i, got[i], want[i])
		}
	}
}

func diffComplex(t *testing.T, label string, got, want []complex128) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !closeEnough(real(got[i]), real(want[i])) || !closeEnough(imag(got[i]), imag(want[i])) {
			t.Fatalf("%s: value[%d] = %v, want %v", label, i, got[i], want[i])
		}
	}
}

func TestShardBounds(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{10, 3}, {0, 4}, {5, 8}, {500, 7}, {1, 1}} {
		bounds := shardBounds(tc.n, tc.p)
		if len(bounds) != tc.p+1 || bounds[0] != 0 || bounds[tc.p] != tc.n {
			t.Fatalf("shardBounds(%d,%d) = %v: bad frame", tc.n, tc.p, bounds)
		}
		for s := 0; s < tc.p; s++ {
			width := bounds[s+1] - bounds[s]
			if width < 0 || width > tc.n/tc.p+1 {
				t.Fatalf("shardBounds(%d,%d) = %v: shard %d width %d", tc.n, tc.p, bounds, s, width)
			}
		}
	}
	// p > n must yield empty shards, not panic.
	bounds := shardBounds(5, 8)
	empties := 0
	for s := 0; s < 8; s++ {
		if bounds[s] == bounds[s+1] {
			empties++
		}
	}
	if empties != 3 {
		t.Fatalf("shardBounds(5,8) = %v: %d empty shards, want 3", bounds, empties)
	}
}

func TestPThLadderBitForBit(t *testing.T) {
	hs := []int{1, 5, 17, 60}
	for name, d := range shardShapes(t) {
		v := Prepare(d)
		outs := v.PThLadder(hs)
		for k, h := range hs {
			want := v.PTh(h)
			for i := range want {
				if outs[k][i] != want[i] {
					t.Fatalf("%s: PThLadder h=%d id=%d: %v != scalar %v", name, h, i, outs[k][i], want[i])
				}
			}
		}
	}
	// h = 0 rung: everywhere zero, still well-formed.
	v := Prepare(shardShapes(t)["tiny"])
	outs := v.PThLadder([]int{0, 2})
	for i, x := range outs[0] {
		if x != 0 {
			t.Fatalf("PThLadder h=0: out[%d] = %v, want 0", i, x)
		}
	}
}

func TestPThLadderSharded(t *testing.T) {
	hs := []int{3, 10, 25}
	for name, d := range shardShapes(t) {
		v := Prepare(d)
		want := v.PThLadder(hs)
		for _, p := range shardCounts(v.Len()) {
			got := v.PThLadderSharded(hs, p)
			for k := range hs {
				if p == 1 {
					for i := range want[k] {
						if got[k][i] != want[k][i] {
							t.Fatalf("%s P=1: ladder h=%d id=%d not bit-for-bit", name, hs[k], i)
						}
					}
				} else {
					diffVals(t, name+"/ladderSharded", got[k], want[k])
				}
			}
		}
	}
}

func TestPRFOmegaSharded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := make([]float64, 40)
	for i := range w {
		w[i] = rng.NormFloat64() // negative weights included
	}
	for name, d := range shardShapes(t) {
		v := Prepare(d)
		want := v.PRFOmega(w)
		for _, p := range shardCounts(v.Len()) {
			got := v.PRFOmegaSharded(w, p)
			if p == 1 {
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s P=1: PRFOmegaSharded[%d] not bit-for-bit", name, i)
					}
				}
			} else {
				diffVals(t, name+"/prfomegaSharded", got, want)
			}
		}
		wantPT := v.PTh(7)
		diffVals(t, name+"/pthSharded", v.PThSharded(7, 4), wantPT)
	}
}

func TestPRFeSharded(t *testing.T) {
	alphas := []complex128{
		complex(0.3, 0),
		complex(1, 0),
		complex(0.05, 0),
		complex(-0.5, 0),   // negative real: factors change sign
		complex(-1, 0),     // annihilates at p = 0.5 (f = 0 exactly)
		complex(0.5, 0.25), // genuinely complex
	}
	for name, d := range shardShapes(t) {
		v := Prepare(d)
		for _, alpha := range alphas {
			want := v.PRFe(alpha)
			for _, p := range shardCounts(v.Len()) {
				got := v.PRFeSharded(alpha, p)
				if p == 1 {
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s α=%v P=1: PRFeSharded[%d] = %v, want %v", name, alpha, i, got[i], want[i])
						}
					}
				} else {
					diffComplex(t, name+"/prfeSharded", got, want)
				}
			}
		}
	}
}

func TestPRFeLogSharded(t *testing.T) {
	alphas := []complex128{
		complex(0.3, 0),
		complex(1, 0),
		complex(0.05, 0),
		complex(-0.5, 0),
		complex(-1, 0), // exact-zero factor at p = 0.5: annihilation path
		complex(0, 0),  // log|α| = -Inf: everything -Inf
		complex(0.5, 0.25),
	}
	for name, d := range shardShapes(t) {
		v := Prepare(d)
		for _, alpha := range alphas {
			want := v.PRFeLog(alpha)
			for _, p := range shardCounts(v.Len()) {
				got := v.PRFeLogSharded(alpha, p)
				diffVals(t, name+"/prfeLogSharded", got, want)
			}
		}
	}
}

func TestRankPRFeShardedAgrees(t *testing.T) {
	for _, name := range []string{"random", "zeroOne", "tiny"} {
		v := Prepare(shardShapes(t)[name])
		want := v.RankPRFe(0.3)
		for _, p := range shardCounts(v.Len()) {
			got := v.RankPRFeSharded(0.3, p)
			if len(got) != len(want) {
				t.Fatalf("%s P=%d: ranking length %d, want %d", name, p, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s P=%d: ranking[%d] = %d, want %d", name, p, i, got[i], want[i])
				}
			}
		}
	}
}

func TestPRFeComboSharded(t *testing.T) {
	terms := []ExpTerm{
		{U: complex(0.4, 0.1), Alpha: complex(0.9, 0.05)},
		{U: complex(-0.2, 0.3), Alpha: complex(0.7, -0.1)},
		{U: complex(1.1, 0), Alpha: complex(0.3, 0)},
	}
	for name, d := range shardShapes(t) {
		v := Prepare(d)
		want := v.PRFeCombo(terms)
		for _, p := range shardCounts(v.Len()) {
			got := v.PRFeComboSharded(terms, p)
			if p == 1 {
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s P=1: PRFeComboSharded[%d] not bit-for-bit", name, i)
					}
				}
			} else {
				diffComplex(t, name+"/comboSharded", got, want)
			}
		}
	}
}

func TestPrefixSumShardedExact(t *testing.T) {
	// ERank and PRFl resume from the prepare-time sequential prefix sums,
	// so they are bit-for-bit for EVERY shard count.
	for name, d := range shardShapes(t) {
		v := Prepare(d)
		wantER := v.ERank()
		wantPL := v.PRFl()
		wantXR := v.ExpectedRank()
		for _, p := range shardCounts(v.Len()) {
			gotER := v.ERankSharded(p)
			gotPL := v.PRFlSharded(p)
			gotXR := v.ExpectedRankSharded(p)
			for i := range wantER {
				if gotER[i] != wantER[i] {
					t.Fatalf("%s P=%d: ERankSharded[%d] = %v, want %v", name, p, i, gotER[i], wantER[i])
				}
				if gotPL[i] != wantPL[i] {
					t.Fatalf("%s P=%d: PRFlSharded[%d] = %v, want %v", name, p, i, gotPL[i], wantPL[i])
				}
				if gotXR[i] != wantXR[i] {
					t.Fatalf("%s P=%d: ExpectedRankSharded[%d] = %v, want %v", name, p, i, gotXR[i], wantXR[i])
				}
			}
		}
	}
}

// TestShardedScalarConcurrent runs sharded and scalar kernels concurrently
// over one shared view and diffs the results — the -race certification that
// the sharded layer (including the lazily built shardData aggregates) never
// writes shared state.
func TestShardedScalarConcurrent(t *testing.T) {
	v := Prepare(shardShapes(t)["random"])
	hs := []int{2, 9, 30}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := 1 + g%5
			for iter := 0; iter < 5; iter++ {
				switch g % 4 {
				case 0:
					want := v.PRFeLog(complex(0.3, 0))
					got := v.PRFeLogSharded(complex(0.3, 0), p)
					for i := range want {
						if !closeEnough(got[i], want[i]) {
							errs <- "concurrent PRFeLogSharded diverged"
							return
						}
					}
				case 1:
					want := v.PThLadder(hs)
					got := v.PThLadderSharded(hs, p)
					for k := range hs {
						for i := range want[k] {
							if !closeEnough(got[k][i], want[k][i]) {
								errs <- "concurrent PThLadderSharded diverged"
								return
							}
						}
					}
				case 2:
					want := v.ERank()
					got := v.ERankSharded(p)
					for i := range want {
						if got[i] != want[i] {
							errs <- "concurrent ERankSharded diverged"
							return
						}
					}
				case 3:
					want := v.PRFe(complex(0.7, 0))
					got := v.PRFeSharded(complex(0.7, 0), p)
					for i := range want {
						if !closeEnough(real(got[i]), real(want[i])) {
							errs <- "concurrent PRFeSharded diverged"
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestShardedRandomSweep is the seeded P×input property sweep: random
// datasets (ties, zero/one probabilities and plain draws mixed per tuple)
// × random shard counts × every sharded kernel, asserting the documented
// exactness tiers draw by draw — P = 1 bit-for-bit, P > 1 within the
// 1e-12 scaled tolerance, prefix-sum kernels (E-Rank, Expected-Rank, PRFl)
// bit-for-bit at EVERY P, and −Inf log magnitudes reproduced exactly.
func TestShardedRandomSweep(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		scores := make([]float64, n)
		probs := make([]float64, n)
		for i := range scores {
			scores[i] = math.Floor(rng.Float64() * 40) // coarse grid: frequent ties
			switch rng.Intn(8) {
			case 0:
				probs[i] = 0
			case 1:
				probs[i] = 1
			default:
				probs[i] = rng.Float64()
			}
		}
		v := Prepare(pdb.MustDataset(scores, probs))
		alpha := complex(rng.Float64(), 0)
		if seed%2 == 0 {
			alpha = complex(rng.Float64()-0.5, rng.Float64()/2)
		}
		w := make([]float64, 1+rng.Intn(30))
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		hs := []int{0, 1 + rng.Intn(4), n, n + 2} // h=0 and h=n rungs included
		if hs[1] >= n {
			hs = []int{0, n, n + 2}
		}
		terms := []ExpTerm{
			{U: complex(rng.Float64(), 0), Alpha: complex(rng.Float64(), 0)},
			{U: complex(-rng.Float64(), rng.Float64()), Alpha: complex(rng.Float64()/2, rng.Float64()/4)},
		}

		wantPRFe := v.PRFe(alpha)
		wantLog := v.PRFeLog(alpha)
		wantOmega := v.PRFOmega(w)
		wantLadder := v.PThLadder(hs)
		wantCombo := v.PRFeCombo(terms)
		wantER := v.ERank()
		wantXR := v.ExpectedRank()

		ps := []int{1, 1 + rng.Intn(2*n), 1 + rng.Intn(2*n)}
		for _, p := range ps {
			label := func(k string) string {
				return k + " seed=" + string(rune('0'+seed)) + " P=" + string(rune('0'+min(p, 9)))
			}
			gotPRFe := v.PRFeSharded(alpha, p)
			gotOmega := v.PRFOmegaSharded(w, p)
			gotLadder := v.PThLadderSharded(hs, p)
			gotCombo := v.PRFeComboSharded(terms, p)
			if p == 1 {
				// Tier 1: the P=1 dispatch is the scalar kernel itself.
				for i := 0; i < n; i++ {
					if gotPRFe[i] != wantPRFe[i] || gotOmega[i] != wantOmega[i] || gotCombo[i] != wantCombo[i] {
						t.Fatalf("seed %d P=1: tuple %d not bit-for-bit", seed, i)
					}
					for k := range hs {
						if gotLadder[k][i] != wantLadder[k][i] {
							t.Fatalf("seed %d P=1: ladder h=%d tuple %d not bit-for-bit", seed, hs[k], i)
						}
					}
				}
			} else {
				// Tier 2: sharded merges within 1e-12 scaled.
				diffComplex(t, label("prfe"), gotPRFe, wantPRFe)
				diffVals(t, label("prfomega"), gotOmega, wantOmega)
				diffComplex(t, label("combo"), gotCombo, wantCombo)
				for k := range hs {
					diffVals(t, label("ladder"), gotLadder[k], wantLadder[k])
				}
			}
			// Tier 3: prefix-sum kernels are exact at every P.
			gotER := v.ERankSharded(p)
			gotXR := v.ExpectedRankSharded(p)
			for i := 0; i < n; i++ {
				if gotER[i] != wantER[i] || gotXR[i] != wantXR[i] {
					t.Fatalf("seed %d P=%d: rank kernels not bit-for-bit at tuple %d", seed, p, i)
				}
			}
			// Tier 4: −Inf log magnitudes (zero-probability tuples, and the
			// whole vector when α = 0) are reproduced exactly, never as a
			// large-negative approximation.
			gotLog := v.PRFeLogSharded(alpha, p)
			diffVals(t, label("prfelog"), gotLog, wantLog)
			for i := 0; i < n; i++ {
				if math.IsInf(wantLog[i], -1) && gotLog[i] != wantLog[i] {
					t.Fatalf("seed %d P=%d: -Inf log value approximated at tuple %d: %v", seed, p, i, gotLog[i])
				}
			}
		}
		// The α = 0 column: every log magnitude is exactly -Inf.
		for _, p := range ps {
			for i, x := range v.PRFeLogSharded(0, p) {
				if !math.IsInf(x, -1) {
					t.Fatalf("seed %d P=%d: PRFeLogSharded(0)[%d] = %v, want -Inf", seed, p, i, x)
				}
			}
		}
	}
}

// TestPThLadderAdversarial pins the rung edge cases: the h = 0 rung is an
// all-zero row, the h = n rung is the presence probability (PT saturates),
// rungs beyond n change nothing, and each rung of an adversarial ladder
// equals the standalone scalar PT(h) bit-for-bit.
func TestPThLadderAdversarial(t *testing.T) {
	for _, name := range []string{"random", "zeroOne", "allTies", "tiny"} {
		d := shardShapes(t)[name]
		v := Prepare(d)
		n := v.Len()
		hs := []int{0, 1, n, n + 7}
		for _, p := range []int{0, 1, 4} {
			var outs [][]float64
			if p == 0 {
				outs = v.PThLadder(hs)
			} else {
				outs = v.PThLadderSharded(hs, p)
			}
			for k, h := range hs {
				want := v.PTh(h)
				if p <= 1 {
					for i := range want {
						if outs[k][i] != want[i] {
							t.Fatalf("%s P=%d h=%d: ladder[%d] = %v, want scalar %v", name, p, h, i, outs[k][i], want[i])
						}
					}
				} else {
					diffVals(t, name+"/adversarialLadder", outs[k], want)
				}
			}
			for i, x := range outs[0] { // h = 0: everywhere zero
				if x != 0 {
					t.Fatalf("%s P=%d: PT(0)[%d] = %v, want 0", name, p, i, x)
				}
			}
			if n > 0 { // h = n vs h = n+7: saturated, identical
				for i := range outs[2] {
					if outs[2][i] != outs[3][i] {
						t.Fatalf("%s P=%d: PT(n)[%d] = %v but PT(n+7)[%d] = %v", name, p, i, outs[2][i], i, outs[3][i])
					}
				}
			}
		}
	}
}

// TestPThLadderRejectsBadRungs pins checkLadder: duplicate, decreasing and
// negative rungs panic instead of silently folding garbage through the
// shared prefix sums.
func TestPThLadderRejectsBadRungs(t *testing.T) {
	v := Prepare(shardShapes(t)["tiny"])
	for name, hs := range map[string][]int{
		"duplicate":  {2, 2},
		"decreasing": {5, 3},
		"negative":   {-1, 2},
	} {
		for _, sharded := range []bool{false, true} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s rungs %v (sharded=%v): no panic", name, hs, sharded)
					}
				}()
				if sharded {
					v.PThLadderSharded(hs, 4)
				} else {
					v.PThLadder(hs)
				}
			}()
		}
	}
}

func TestRenorm(t *testing.T) {
	// The renormalized representation must track extreme products exactly
	// in scale: value = m·2^e with |m| pinned into [2^-512, 2^512].
	m, e := 1.0, int64(0)
	for i := 0; i < 10000; i++ {
		m *= 1e-3
		if am := math.Abs(m); am < 0x1p-512 || am > 0x1p512 {
			m, e = renorm(m, e)
		}
	}
	got := logMag(m, e)
	want := 10000 * math.Log(1e-3)
	if math.Abs(got-want) > 1e-6*math.Abs(want) {
		t.Fatalf("renorm drifted: logMag = %v, want %v", got, want)
	}
	// Subnormal-scale factors need the looped renorm.
	m, e = renorm(0x1p-1070, 0)
	if lm := logMag(m, e); math.Abs(lm-(-1070*math.Ln2)) > 1e-9 {
		t.Fatalf("subnormal renorm: logMag = %v, want %v", lm, -1070*math.Ln2)
	}
	// Zero mantissa stays zero (annihilated product).
	if m, _ := renorm(0, 3); m != 0 {
		t.Fatalf("renorm(0) = %v, want 0", m)
	}
}
