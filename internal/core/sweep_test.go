package core

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/pdb"
)

// refRankings is the per-α reference the kinetic sweep is pinned against:
// an independent PRFeLog evaluation and full re-sort at every grid point.
func refRankings(v *Prepared, alphas []float64) []pdb.Ranking {
	out := make([]pdb.Ranking, len(alphas))
	for a, alpha := range alphas {
		out[a] = v.RankPRFe(alpha)
	}
	return out
}

// duplicateHeavyDataset stresses the tie handling: a small score alphabet
// and a small probability alphabet, so many tuples are exact (score, prob)
// duplicates of each other and whole value curves coincide.
func duplicateHeavyDataset(rng *rand.Rand, n int) *pdb.Dataset {
	scores := make([]float64, n)
	probs := make([]float64, n)
	probAlphabet := []float64{0, 0.2, 0.5, 0.5, 0.8, 1}
	for i := 0; i < n; i++ {
		scores[i] = float64(rng.Intn(4))
		probs[i] = probAlphabet[rng.Intn(len(probAlphabet))]
	}
	return pdb.MustDataset(scores, probs)
}

// nearTieDataset makes almost all probabilities coincide up to tiny noise,
// which piles Θ(n²) crossings just below α = 1 — the event-storm shape that
// exercises the sweep's bounded-advance rebuild fallback.
func nearTieDataset(rng *rand.Rand, n int) *pdb.Dataset {
	scores := make([]float64, n)
	probs := make([]float64, n)
	for i := 0; i < n; i++ {
		scores[i] = rng.Float64() * 1000
		probs[i] = 0.6 + 1e-9*rng.NormFloat64()
	}
	return pdb.MustDataset(scores, probs)
}

func sweepGrids(rng *rand.Rand) [][]float64 {
	uniform := func(m int, includeOne bool) []float64 {
		g := make([]float64, m)
		for i := range g {
			g[i] = float64(i+1) / float64(m+1)
		}
		if includeOne {
			g[m-1] = 1
		}
		return g
	}
	logg := make([]float64, 24)
	for i := range logg {
		logg[i] = 1 - math.Pow(0.82, float64(i+1))
	}
	irregular := make([]float64, 17)
	for i := range irregular {
		irregular[i] = rng.Float64()
	}
	sort.Float64s(irregular)
	for i := range irregular {
		if irregular[i] == 0 {
			irregular[i] = 1e-6
		}
	}
	// Strictness: random draws are distinct with probability 1, but guard.
	for i := 1; i < len(irregular); i++ {
		if irregular[i] <= irregular[i-1] {
			irregular[i] = irregular[i-1] + 1e-9
		}
	}
	return [][]float64{
		uniform(33, false),
		uniform(16, true), // ends exactly at α = 1
		{0.5, 0.9},        // minimal grid
		logg,
		irregular,
	}
}

// TestSweepMatchesReferenceEverywhere is the equivalence suite of the
// kinetic engine: on adversarial datasets (score ties, zero and unit
// probabilities, exact duplicates, near-tied probabilities) and a variety of
// grids, the sweep's ranking at every grid point must be bit-for-bit the
// per-α re-sort reference.
func TestSweepMatchesReferenceEverywhere(t *testing.T) {
	rng := rand.New(rand.NewSource(1009))
	shapes := []struct {
		name string
		mk   func(*rand.Rand, int) *pdb.Dataset
	}{
		{"gnarly", gnarlyDataset},
		{"duplicate-heavy", duplicateHeavyDataset},
		{"near-tie", nearTieDataset},
	}
	for _, shape := range shapes {
		for _, n := range []int{1, 2, 3, 17, 64, 257, 600} {
			d := shape.mk(rng, n)
			v := Prepare(d)
			for gi, alphas := range sweepGrids(rng) {
				got, err := v.RankPRFeSweep(context.Background(), alphas)
				if err != nil {
					t.Fatalf("%s n=%d grid=%d: RankPRFeSweep: %v", shape.name, n, gi, err)
				}
				want := refRankings(v, alphas)
				for a := range alphas {
					if !sameRanking(got[a], want[a]) {
						t.Fatalf("%s n=%d grid=%d: sweep ranking differs from reference at α=%v",
							shape.name, n, gi, alphas[a])
					}
				}
				k := n/3 + 1
				gotK, err := v.TopKPRFeSweep(context.Background(), alphas, k)
				if err != nil {
					t.Fatalf("%s n=%d grid=%d: TopKPRFeSweep: %v", shape.name, n, gi, err)
				}
				for a := range alphas {
					if !sameRanking(gotK[a], want[a].TopK(k)) {
						t.Fatalf("%s n=%d grid=%d: sweep top-%d differs at α=%v",
							shape.name, n, gi, k, alphas[a])
					}
				}
			}
		}
	}
}

// TestBatchDispatchersMatchReference checks both dispatcher arms: monotone
// grids (kinetic) and non-monotone batches (parallel per-α) must all equal
// the serial reference bit-for-bit.
func TestBatchDispatchersMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	d := gnarlyDataset(rng, 150)
	v := Prepare(d)
	batches := [][]float64{
		{0.1, 0.2, 0.4, 0.8, 1.0}, // kinetic
		{0.9, 0.1, 0.5, 0.5, 0.2}, // unsorted + duplicate → parallel
		{0.3},                     // single query → parallel
		{},                        // empty
		{0.2, 0.2, 0.4},           // non-strict → parallel
		{1e-12, 0.999999999, 1.0}, // extreme grid → kinetic
		{0.5, 1.5},                // out of range → parallel
	}
	for bi, alphas := range batches {
		got := v.RankPRFeBatch(alphas)
		for a, alpha := range alphas {
			if !sameRanking(got[a], v.RankPRFe(alpha)) {
				t.Fatalf("batch %d: RankPRFeBatch differs at α=%v", bi, alpha)
			}
		}
		gotK := v.TopKPRFeBatch(alphas, 7)
		for a, alpha := range alphas {
			if !sameRanking(gotK[a], v.RankPRFe(alpha).TopK(7)) {
				t.Fatalf("batch %d: TopKPRFeBatch differs at α=%v", bi, alpha)
			}
		}
	}
}

// TestSweepManualAdvance drives a Sweep by hand through AdvanceTo/RankingAt
// and checks monotonicity enforcement.
func TestSweepManualAdvance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v := Prepare(gnarlyDataset(rng, 120))
	s := v.NewSweep(0.05)
	if s.Alpha() != 0.05 || s.Len() != 120 {
		t.Fatalf("fresh sweep state: alpha=%v len=%d", s.Alpha(), s.Len())
	}
	for _, alpha := range []float64{0.05, 0.3, 0.3, 0.77, 1} {
		r, err := s.RankingAt(alpha)
		if err != nil {
			t.Fatalf("RankingAt(%v): %v", alpha, err)
		}
		if !sameRanking(r, v.RankPRFe(alpha)) {
			t.Fatalf("manual sweep differs at α=%v", alpha)
		}
	}
	if s.Crossings() < s.DistinctCrossingTimes() {
		t.Fatalf("crossings %d < distinct times %d", s.Crossings(), s.DistinctCrossingTimes())
	}
	if err := s.AdvanceTo(0.5); err == nil {
		t.Fatal("moving a sweep backwards must error")
	}
	if err := s.AdvanceTo(1.5); err == nil {
		t.Fatal("advancing beyond α = 1 must error")
	}
	if _, err := s.RankingAt(0.2); err == nil {
		t.Fatal("querying behind the cursor must error")
	}
}

// TestSpectrumSizeExactVsBruteForce verifies the event-counting spectrum
// against first principles: enumerate every pairwise crossing point with the
// reference bisection, evaluate the reference ranking between consecutive
// crossings, and count distinct rankings.
func TestSpectrumSizeExactVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{2, 3, 5, 8, 12} {
		for trial := 0; trial < 8; trial++ {
			d := gnarlyDataset(rng, n)
			v := Prepare(d)

			var betas []float64
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if v.Prob(i) == v.Prob(j) {
						continue // tangency at α=1 only; not an interior crossing
					}
					if beta, ok := v.CrossingPointReference(i, j); ok && beta > spectrumEps {
						// SpectrumSize's documented domain starts at 1e-9;
						// crossings below it (tiny-probability artifacts)
						// are outside both counts.
						betas = append(betas, beta)
					}
				}
			}
			sort.Float64s(betas)
			// Sample a probe α inside every inter-crossing cell of (0, 1).
			probes := []float64{}
			prev := spectrumEps
			for _, b := range betas {
				if b-prev > 1e-12 {
					probes = append(probes, prev+(b-prev)/2)
				}
				prev = b
			}
			probes = append(probes, prev+(1-prev)/2)
			count := 0
			var last pdb.Ranking
			for _, alpha := range probes {
				r := v.RankPRFe(alpha)
				if last == nil || !sameRanking(last, r) {
					count++
					last = r
				}
			}
			if got := v.SpectrumSize(); got != count {
				t.Fatalf("n=%d trial=%d: exact spectrum %d, brute force %d (crossings at %v)",
					n, trial, got, count, betas)
			}
		}
	}
}

// TestSpectrumSizeExactDominatesGrid: the sampled spectrum can only miss
// rankings, never invent them, and a sufficiently dense grid converges to
// the exact count.
func TestSpectrumSizeExactDominatesGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for _, n := range []int{6, 10, 20} {
		d := gnarlyDataset(rng, n)
		v := Prepare(d)
		exact := v.SpectrumSize()
		for _, g := range []int{5, 50, 500} {
			if grid := v.SpectrumSizeGrid(g); grid > exact {
				t.Fatalf("n=%d: grid(%d) spectrum %d exceeds exact %d", n, g, grid, exact)
			}
		}
		if dense := v.SpectrumSizeGrid(2_000_000); dense != exact {
			t.Fatalf("n=%d: dense grid %d != exact %d", n, v.SpectrumSizeGrid(2_000_000), exact)
		}
	}
}

// TestCrossingPointMatchesReference pins the incremental Newton solver to
// the plain-bisection reference across random pairs, including long spans
// that trigger the series evaluator inside sweeps.
func TestCrossingPointMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(864))
	for _, n := range []int{10, 100, 800} {
		d := gnarlyDataset(rng, n)
		v := Prepare(d)
		for trial := 0; trial < 300; trial++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if v.Prob(min(i, j)) == v.Prob(max(i, j)) {
				continue // semantics differ deliberately: tangency at α=1
			}
			b1, ok1 := v.CrossingPoint(i, j)
			b2, ok2 := v.CrossingPointReference(i, j)
			if ok1 != ok2 {
				t.Fatalf("n=%d pair (%d,%d): incremental ok=%v reference ok=%v", n, i, j, ok1, ok2)
			}
			if ok1 && math.Abs(b1-b2) > 1e-9 {
				t.Fatalf("n=%d pair (%d,%d): crossing %v vs reference %v", n, i, j, b1, b2)
			}
		}
	}
}

// TestSweepSeriesEvaluatorAgainstDirect forces long-span crossings at large
// α (where the sweep picks the prefix-power-sum series) and checks the
// resulting event times against the direct evaluator through the public
// equivalence: rankings must still match the reference at a fine grid.
func TestSweepSeriesEvaluatorAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(246))
	n := 500
	scores := make([]float64, n)
	probs := make([]float64, n)
	for i := range scores {
		scores[i] = rng.Float64() * 100
		probs[i] = 0.05 + 0.9*rng.Float64()
	}
	v := Prepare(pdb.MustDataset(scores, probs))
	alphas := make([]float64, 60)
	for i := range alphas {
		alphas[i] = 0.55 + 0.45*float64(i+1)/float64(len(alphas)) // α ∈ (0.55, 1]
	}
	got, err := v.RankPRFeSweep(context.Background(), alphas)
	if err != nil {
		t.Fatalf("RankPRFeSweep: %v", err)
	}
	for a, alpha := range alphas {
		if !sameRanking(got[a], v.RankPRFe(alpha)) {
			t.Fatalf("series-path sweep differs from reference at α=%v", alpha)
		}
	}
}

// TestSweepConcurrentBatches: independent sweeps and batch calls over one
// shared Prepared view must be race-free (meaningful under go test -race).
func TestSweepConcurrentBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	d := gnarlyDataset(rng, 300)
	v := Prepare(d)
	grid := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0}
	done := make(chan struct{}, 3)
	go func() { v.RankPRFeBatch(grid); done <- struct{}{} }()
	go func() { v.TopKPRFeBatch(grid, 9); done <- struct{}{} }()
	go func() { v.SpectrumSizeGrid(40); done <- struct{}{} }()
	want := refRankings(v, grid)
	got, err := v.RankPRFeSweep(context.Background(), grid)
	if err != nil {
		t.Fatalf("RankPRFeSweep: %v", err)
	}
	for a := range grid {
		if !sameRanking(got[a], want[a]) {
			t.Fatalf("concurrent sweep differs at α=%v", grid[a])
		}
	}
	for i := 0; i < 3; i++ {
		<-done
	}
}
