package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/pdb"
)

// randomDataset builds a dataset with ties, zero and one probabilities —
// the edge cases the sorted-order and log-kernel invariants must survive.
func randomDataset(t *testing.T, n int, seed int64) *pdb.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	scores := make([]float64, n)
	probs := make([]float64, n)
	for i := range scores {
		scores[i] = float64(rng.Intn(n / 2)) // integer scores force ties
		switch rng.Intn(10) {
		case 0:
			probs[i] = 0
		case 1:
			probs[i] = 1
		default:
			probs[i] = rng.Float64()
		}
	}
	d, err := pdb.NewDataset(scores, probs)
	if err != nil {
		t.Fatalf("NewDataset: %v", err)
	}
	return d
}

func TestFromSortedMatchesPrepare(t *testing.T) {
	for _, n := range []int{1, 2, 17, 400} {
		d := randomDataset(t, max(n, 2), int64(n))
		want := Prepare(d)
		got, err := FromSorted(want.IDs(), want.Scores(), want.Probs())
		if err != nil {
			t.Fatalf("n=%d: FromSorted: %v", n, err)
		}
		for i := 0; i < want.Len(); i++ {
			if got.ID(i) != want.ID(i) ||
				math.Float64bits(got.Score(i)) != math.Float64bits(want.Score(i)) ||
				math.Float64bits(got.Prob(i)) != math.Float64bits(want.Prob(i)) {
				t.Fatalf("n=%d: position %d differs: got %v want %v", n, i, got.Tuple(i), want.Tuple(i))
			}
		}
	}
}

func TestFromSortedCopiesInput(t *testing.T) {
	ids := []pdb.TupleID{1, 0}
	scores := []float64{5, 3}
	probs := []float64{0.5, 0.25}
	v, err := FromSorted(ids, scores, probs)
	if err != nil {
		t.Fatalf("FromSorted: %v", err)
	}
	ids[0], scores[0], probs[0] = 99, -1, -1
	if v.ID(0) != 1 || v.Score(0) != 5 || v.Prob(0) != 0.5 {
		t.Fatalf("view aliases caller arrays: %v", v.Tuple(0))
	}
}

func TestFromSortedRejectsInvalid(t *testing.T) {
	cases := []struct {
		name   string
		ids    []pdb.TupleID
		scores []float64
		probs  []float64
	}{
		{"length mismatch", []pdb.TupleID{0}, []float64{1, 2}, []float64{0.5}},
		{"unsorted scores", []pdb.TupleID{0, 1}, []float64{1, 2}, []float64{0.5, 0.5}},
		{"tie broken descending", []pdb.TupleID{1, 0}, []float64{2, 2}, []float64{0.5, 0.5}},
		{"duplicate id", []pdb.TupleID{0, 0}, []float64{2, 1}, []float64{0.5, 0.5}},
		{"id out of range", []pdb.TupleID{0, 2}, []float64{2, 1}, []float64{0.5, 0.5}},
		{"negative id", []pdb.TupleID{-1, 0}, []float64{2, 1}, []float64{0.5, 0.5}},
		{"probability above one", []pdb.TupleID{0, 1}, []float64{2, 1}, []float64{0.5, 1.5}},
		{"NaN score", []pdb.TupleID{0, 1}, []float64{math.NaN(), 1}, []float64{0.5, 0.5}},
		{"infinite score", []pdb.TupleID{0, 1}, []float64{math.Inf(1), 1}, []float64{0.5, 0.5}},
	}
	for _, tc := range cases {
		if _, err := FromSorted(tc.ids, tc.scores, tc.probs); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
}

// TestPRFeLogSpanMatchesPRFeLog pins the resumable span kernel bit-for-bit
// to PRFeLogInto: any partition of the probability array into consecutive
// spans must reproduce the exact per-position values and running state of
// the one-pass kernel. The store's lazy partial materialization depends on
// this equivalence for its ≡-full-load certification.
func TestPRFeLogSpanMatchesPRFeLog(t *testing.T) {
	for _, n := range []int{1, 3, 64, 257} {
		v := Prepare(randomDataset(t, max(n, 2), int64(1000+n)))
		for _, alpha := range []float64{1e-6, 0.3, 0.95, 1} {
			want := v.PRFeLog(complex(alpha, 0)) // indexed by TupleID
			// Positional reference via the view's position→ID mapping.
			wantPos := make([]float64, v.Len())
			for i := 0; i < v.Len(); i++ {
				wantPos[i] = want[v.ID(i)]
			}
			for _, chunk := range []int{1, 2, 7, v.Len()} {
				var st PRFeLogState
				got := make([]float64, v.Len())
				for lo := 0; lo < v.Len(); lo += chunk {
					hi := min(lo+chunk, v.Len())
					PRFeLogSpan(complex(alpha, 0), v.Probs()[lo:hi], &st, got[lo:hi])
				}
				for i := range got {
					if math.Float64bits(got[i]) != math.Float64bits(wantPos[i]) {
						t.Fatalf("n=%d α=%v chunk=%d: position %d: span %v != kernel %v",
							n, alpha, chunk, i, got[i], wantPos[i])
					}
				}
			}
		}
	}
}

// TestPRFeLogSpanBound verifies the partial-materialization bound the lazy
// store path certifies against: after consuming a prefix, every later value
// is ≤ LogProd + log α for α ∈ (0, 1], bit-wise (no epsilon).
func TestPRFeLogSpanBound(t *testing.T) {
	v := Prepare(randomDataset(t, 500, 7))
	for _, alpha := range []float64{0.05, 0.5, 1} {
		logAlpha := math.Log(alpha)
		all := make([]float64, v.Len())
		var full PRFeLogState
		PRFeLogSpan(complex(alpha, 0), v.Probs(), &full, all)
		for m := 1; m < v.Len(); m += 13 {
			var st PRFeLogState
			PRFeLogSpan(complex(alpha, 0), v.Probs()[:m], &st, make([]float64, m))
			bound := math.Inf(-1)
			if !st.Zeroed {
				bound = st.LogProd + logAlpha
			}
			for j := m; j < v.Len(); j++ {
				if all[j] > bound {
					t.Fatalf("α=%v m=%d: value at %d (%v) exceeds bound %v", alpha, m, j, all[j], bound)
				}
			}
		}
	}
}
