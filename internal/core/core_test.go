package core

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pdb"
)

// example1 is Example 1 of the paper: three independent tuples already in
// score order with probabilities 0.5, 0.6, 0.4.
func example1() *pdb.Dataset {
	return pdb.MustDataset([]float64{30, 20, 10}, []float64{0.5, 0.6, 0.4})
}

func TestExample1RankDistribution(t *testing.T) {
	rd := RankDistribution(example1())
	// F³(x) = (.5+.5x)(.4+.6x)(.4x) = .08x + .2x² + .12x³.
	want := []float64{0.08, 0.2, 0.12}
	for j, w := range want {
		if got := rd.At(2, j+1); math.Abs(got-w) > 1e-12 {
			t.Fatalf("Pr(r(t3)=%d) = %v, want %v", j+1, got, w)
		}
	}
}

func TestExample5PRFe(t *testing.T) {
	vals := PRFe(example1(), complex(0.6, 0))
	// Υ(t3) = F³(0.6) = (.5+.5·.6)(.4+.6·.6)(.4·.6) = .14592.
	if got := real(vals[2]); math.Abs(got-0.14592) > 1e-12 {
		t.Fatalf("Υ(t3) = %v, want 0.14592", got)
	}
	if imag(vals[2]) != 0 {
		t.Fatalf("real α should give real Υ, got %v", vals[2])
	}
}

func randDataset(rng *rand.Rand, n int) *pdb.Dataset {
	scores := make([]float64, n)
	probs := make([]float64, n)
	for i := 0; i < n; i++ {
		scores[i] = rng.Float64() * 100
		probs[i] = rng.Float64()
	}
	return pdb.MustDataset(scores, probs)
}

// Property: Algorithm 1 matches brute-force possible-world enumeration.
func TestQuickRankDistributionMatchesEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(9)
		d := randDataset(rng, n)
		got := RankDistribution(d)
		worlds, err := pdb.EnumerateWorlds(d)
		if err != nil {
			return false
		}
		want := pdb.RankDistributionFromWorlds(worlds, n)
		for id := 0; id < n; id++ {
			for j := 1; j <= n; j++ {
				if math.Abs(got.At(pdb.TupleID(id), j)-want.At(pdb.TupleID(id), j)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Σ_j Pr(r(t)=j) = Pr(t).
func TestQuickRankDistributionSumsToPresence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		d := randDataset(rng, n)
		rd := RankDistribution(d)
		for _, tu := range d.Tuples() {
			if math.Abs(rd.PresenceProb(tu.ID)-tu.Prob) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRankDistributionTruncPrefixOfFull(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := randDataset(rng, 25)
	full := RankDistribution(d)
	trunc := RankDistributionTrunc(d, 5)
	for id := 0; id < 25; id++ {
		for j := 1; j <= 5; j++ {
			if math.Abs(full.At(pdb.TupleID(id), j)-trunc.At(pdb.TupleID(id), j)) > 1e-12 {
				t.Fatalf("trunc mismatch at id=%d j=%d", id, j)
			}
		}
	}
}

// PRF with ω(t,i) = α^i must equal PRFe(α).
func TestPRFMatchesPRFe(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := randDataset(rng, 40)
	alpha := 0.7
	viaPRF := PRF(d, func(_ pdb.Tuple, i int) float64 { return math.Pow(alpha, float64(i)) })
	viaPRFe := PRFe(d, complex(alpha, 0))
	for i := range viaPRF {
		if math.Abs(viaPRF[i]-real(viaPRFe[i])) > 1e-9 {
			t.Fatalf("tuple %d: PRF=%v PRFe=%v", i, viaPRF[i], viaPRFe[i])
		}
	}
}

// PRFOmega must agree with generic PRF under the same (rank-only) weights.
func TestPRFOmegaMatchesPRF(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := randDataset(rng, 30)
	w := make([]float64, 7)
	for i := range w {
		w[i] = rng.Float64()
	}
	got := PRFOmega(d, w)
	want := PRF(d, func(_ pdb.Tuple, i int) float64 {
		if i <= len(w) {
			return w[i-1]
		}
		return 0
	})
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("tuple %d: PRFOmega=%v PRF=%v", i, got[i], want[i])
		}
	}
}

// PT(h) values must equal Σ_{j≤h} Pr(r(t)=j) from enumeration.
func TestPThMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := randDataset(rng, 8)
	worlds, err := pdb.EnumerateWorlds(d)
	if err != nil {
		t.Fatal(err)
	}
	rd := pdb.RankDistributionFromWorlds(worlds, 8)
	for _, h := range []int{1, 3, 8} {
		got := PTh(d, h)
		for id := 0; id < 8; id++ {
			var want float64
			for j := 1; j <= h; j++ {
				want += rd.At(pdb.TupleID(id), j)
			}
			if math.Abs(got[id]-want) > 1e-9 {
				t.Fatalf("h=%d id=%d: got %v want %v", h, id, got[id], want)
			}
		}
	}
}

// PRFeLog must induce the same ranking as the direct PRFe product where the
// latter does not underflow.
func TestPRFeLogOrderMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := randDataset(rng, 60)
	for _, alpha := range []float64{0.1, 0.5, 0.9, 1.0} {
		direct := AbsParts(PRFe(d, complex(alpha, 0)))
		logs := PRFeLog(d, complex(alpha, 0))
		r1 := pdb.RankByValue(direct)
		r2 := pdb.RankByValue(logs)
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("alpha=%v: order differs at %d: %v vs %v", alpha, i, r1, r2)
			}
		}
	}
}

func TestPRFeLogHandlesEdgeProbabilities(t *testing.T) {
	// p=0 tuple must get -Inf; p=1 tuples must not break later ones.
	d := pdb.MustDataset([]float64{40, 30, 20, 10}, []float64{1, 0, 0.5, 0.7})
	logs := PRFeLog(d, complex(0.5, 0))
	if !math.IsInf(logs[1], -1) {
		t.Fatalf("p=0 tuple log value = %v, want -Inf", logs[1])
	}
	for _, i := range []int{0, 2, 3} {
		if math.IsNaN(logs[i]) || math.IsInf(logs[i], 0) {
			t.Fatalf("tuple %d log value = %v", i, logs[i])
		}
	}
	// α=0 with a certain preceding tuple: every later tuple is annihilated.
	logs0 := PRFeLog(d, 0)
	for i := range logs0 {
		if !math.IsInf(logs0[i], -1) {
			t.Fatalf("alpha=0: tuple %d = %v, want -Inf", i, logs0[i])
		}
	}
}

func TestPRFeLogNoUnderflowAtScale(t *testing.T) {
	// 5000 tuples at α=0.3: the direct product underflows to 0 and collapses
	// ties; the log version must stay strictly ordered.
	n := 5000
	scores := make([]float64, n)
	probs := make([]float64, n)
	for i := 0; i < n; i++ {
		scores[i] = float64(n - i)
		probs[i] = 0.5
	}
	d := pdb.MustDataset(scores, probs)
	logs := PRFeLog(d, complex(0.3, 0))
	distinct := make(map[float64]bool)
	for _, v := range logs {
		if math.IsNaN(v) {
			t.Fatal("NaN log value")
		}
		distinct[v] = true
	}
	if len(distinct) < n {
		t.Fatalf("only %d distinct log values for %d tuples", len(distinct), n)
	}
	direct := AbsParts(PRFe(d, complex(0.3, 0)))
	zeros := 0
	for _, v := range direct {
		if v == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Skip("direct product unexpectedly did not underflow; log path untested against it")
	}
}

func TestPRFeComboMatchesSeparateSums(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := randDataset(rng, 25)
	terms := []ExpTerm{
		{U: complex(0.5, 0.25), Alpha: complex(0.8, 0.1)},
		{U: complex(0.5, -0.25), Alpha: complex(0.8, -0.1)},
		{U: complex(0.1, 0), Alpha: complex(0.3, 0)},
	}
	got := PRFeCombo(d, terms)
	want := make([]complex128, d.Len())
	for _, term := range terms {
		vals := PRFe(d, term.Alpha)
		for i := range want {
			want[i] += term.U * vals[i]
		}
	}
	for i := range got {
		if cmplx.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("combo mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
	// Conjugate-closed terms ⇒ (near-)real combination for the conjugate
	// pair part; the third real term keeps everything real too.
	for i, v := range got {
		if math.Abs(imag(v)) > 1e-10 {
			t.Fatalf("tuple %d: imaginary residue %v", i, v)
		}
	}
}

// Theorem 4: along an α sweep, any pair of tuples swaps order at most once.
func TestQuickSingleCrossingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		d := randDataset(rng, n)
		// Avoid zero probabilities for a clean statement.
		ts := make([]pdb.Tuple, n)
		copy(ts, d.Tuples())
		for i := range ts {
			ts[i].Prob = 0.05 + 0.9*ts[i].Prob
		}
		d2, _ := pdb.FromTuples(ts)
		grid := make([]float64, 60)
		for i := range grid {
			grid[i] = float64(i+1) / 60.0
		}
		curves := PRFeCurve(d2, grid)
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				sign := func(x float64) int {
					if x > 0 {
						return 1
					}
					if x < 0 {
						return -1
					}
					return 0
				}
				flips := 0
				prev := sign(curves[a][0] - curves[b][0])
				for g := 1; g < len(grid); g++ {
					s := sign(curves[a][g] - curves[b][g])
					if s != 0 && prev != 0 && s != prev {
						flips++
					}
					if s != 0 {
						prev = s
					}
				}
				if flips > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Example 7 of the paper: four tuples whose PRFe ranking morphs from the
// Pr(r=1) order at α→0 to the Pr(t) order at α=1.
func example7() *pdb.Dataset {
	return pdb.MustDataset([]float64{100, 80, 50, 30}, []float64{0.4, 0.6, 0.5, 0.9})
}

func TestExample7Extremes(t *testing.T) {
	d := example7()
	// α→0: order by Pr(r(t)=1) = {t1:.4, t2:.36, t3:.12, t4:.108}.
	r0 := RankPRFe(d, 1e-6)
	want0 := pdb.Ranking{0, 1, 2, 3}
	for i := range want0 {
		if r0[i] != want0[i] {
			t.Fatalf("α→0 ranking = %v, want %v", r0, want0)
		}
	}
	// α=1: order by probability = t4(.9), t2(.6), t3(.5), t1(.4).
	r1 := RankPRFe(d, 1)
	want1 := pdb.Ranking{3, 1, 2, 0}
	for i := range want1 {
		if r1[i] != want1[i] {
			t.Fatalf("α=1 ranking = %v, want %v", r1, want1)
		}
	}
}

func TestCrossingPointExample7(t *testing.T) {
	d := example7()
	// t1 (sorted pos 0) and t4 (sorted pos 3) must cross exactly once: t1
	// wins at α→0 (0.4 > 0.108) and loses at α=1 (0.4 < 0.9).
	beta, ok := CrossingPoint(d, 0, 3)
	if !ok {
		t.Fatal("expected a crossing between t1 and t4")
	}
	if beta <= 0 || beta >= 1 {
		t.Fatalf("crossing at %v, want interior point", beta)
	}
	// Verify by evaluating just below and above β.
	lo := PRFe(d, complex(beta-1e-4, 0))
	hi := PRFe(d, complex(beta+1e-4, 0))
	if !(real(lo[0]) > real(lo[3]) && real(hi[0]) < real(hi[3])) {
		t.Fatalf("crossing point %v does not separate the orders", beta)
	}
	// A dominated pair never crosses: t2 (score 80, p .6) dominates t3
	// (score 50, p .5) in both score and probability.
	if _, ok := CrossingPoint(d, 1, 2); ok {
		t.Fatal("dominating pair should not cross (end of Section 7)")
	}
}

func TestSpectrumSizeGrowsBeyondTwo(t *testing.T) {
	d := example7()
	if got := SpectrumSizeGrid(d, 200); got < 3 {
		t.Fatalf("sampled spectrum size %d, want ≥ 3 distinct rankings", got)
	}
	if exact, grid := SpectrumSize(d), SpectrumSizeGrid(d, 200); exact < grid {
		t.Fatalf("exact spectrum %d smaller than sampled %d", exact, grid)
	}
}

func TestTopKHelper(t *testing.T) {
	vals := []float64{0.1, 0.9, 0.5}
	top := TopK(vals, 2)
	if len(top) != 2 || top[0] != 1 || top[1] != 2 {
		t.Fatalf("TopK = %v", top)
	}
}

func TestRankPositionProbabilitiesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := randDataset(rng, 10)
	m := RankPositionProbabilities(d, 4)
	if len(m) != 10 {
		t.Fatalf("rows %d", len(m))
	}
	for id, row := range m {
		if len(row) != 4 {
			t.Fatalf("row %d has %d cols", id, len(row))
		}
	}
}

func TestEmptyDatasetIsHarmless(t *testing.T) {
	d := pdb.MustDataset(nil, nil)
	if got := PRF(d, func(pdb.Tuple, int) float64 { return 1 }); len(got) != 0 {
		t.Fatalf("PRF on empty = %v", got)
	}
	if got := PRFe(d, complex(0.5, 0)); len(got) != 0 {
		t.Fatalf("PRFe on empty = %v", got)
	}
	if got := RankDistribution(d); len(got.Dist) != 0 {
		t.Fatalf("RankDistribution on empty = %v", got)
	}
}

func TestTiedScoresDeterministic(t *testing.T) {
	d := pdb.MustDataset([]float64{5, 5, 5}, []float64{0.5, 0.5, 0.5})
	r1 := RankPRFe(d, 0.7)
	r2 := RankPRFe(d, 0.7)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("tied scores produced nondeterministic ranking")
		}
	}
}

// PRFl must equal the generic PRF with ω(i) = −i.
func TestPRFlMatchesGenericPRF(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d := randDataset(rng, 40)
	got := PRFl(d)
	want := PRF(d, func(_ pdb.Tuple, i int) float64 { return -float64(i) })
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("tuple %d: PRFl=%v generic=%v", i, got[i], want[i])
		}
	}
}

// The Section 3.3 decomposition must reconstruct the expected rank exactly.
func TestExpectedRankDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	d := randDataset(rng, 8)
	er1, er2 := ExpectedRankDecomposition(d)
	worlds, err := pdb.EnumerateWorlds(d)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 8)
	for _, w := range worlds {
		for id := 0; id < 8; id++ {
			r := w.Rank(pdb.TupleID(id))
			if r == 0 {
				r = len(w.Present)
			}
			want[id] += w.Prob * float64(r)
		}
	}
	for id := range want {
		if math.Abs(er1[id]+er2[id]-want[id]) > 1e-9 {
			t.Fatalf("id=%d: er1+er2=%v want %v", id, er1[id]+er2[id], want[id])
		}
	}
}
