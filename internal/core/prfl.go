package core

import "repro/internal/pdb"

// PRFl evaluates the PRFℓ (PRF-linear) special case ω(i) = −i of Section 3.3
// for every tuple:
//
//	Υℓ(t) = −Σ_i i·Pr(r(t)=i) = −er1(t),
//
// the negated contribution of the worlds containing t to its expected rank.
// For independent tuples er1(tᵢ) = pᵢ·(1 + Σ_{l<i} p_l), so one prefix-sum
// scan suffices: O(n log n) with the sort, O(n) pre-sorted — matching the
// paper's observation that expected ranks cost no more than PRFℓ.
func PRFl(d *pdb.Dataset) []float64 {
	return Prepare(d).PRFl()
}

// ExpectedRankDecomposition returns the two parts of the expected rank of
// Section 3.3 for every tuple: er1 (worlds containing t, which is −PRFℓ)
// and er2 = (1−p)·(C−p) (worlds missing t, whose rank convention is |pw|).
// E[r(t)] = er1 + er2; the baselines package exposes the combined E-Rank.
func ExpectedRankDecomposition(d *pdb.Dataset) (er1, er2 []float64) {
	n := d.Len()
	er1 = PRFl(d)
	for i := range er1 {
		er1[i] = -er1[i]
	}
	er2 = make([]float64, n)
	c := d.ExpectedWorldSize()
	for _, t := range d.Tuples() {
		er2[t.ID] = (1 - t.Prob) * (c - t.Prob)
	}
	return er1, er2
}
