package core

// This file holds the lane-split arithmetic behind the sharded kernels:
// the complex128 hot loops rewritten over separate re/im float64 lanes in
// the struct-of-arrays spirit, plus the renormalized running-product
// representation that replaces per-element logarithm accumulation.
//
// Two facts make the lanes exact where it matters:
//
//   - Go's complex multiply is the textbook (ac−bd, ad+bc) formula, so a
//     product whose imaginary lane is exactly zero stays exactly zero: the
//     real lane of the lane-split loop computes bit-for-bit the same values
//     as the complex loop for real α > 0 (prfeRealSpan).
//   - A running product tracked as mantissa × 2^exponent (renormalized
//     whenever the mantissa leaves [2^-512, 2^512]) never under- or
//     overflows, and log|prod| = log|m| + e·ln2 recovers the log-domain
//     value with one logarithm per element — versus the scalar PRFeLog
//     path's log(p) + log(|f|) + complex magnitude per element. The
//     regrouping costs at most ~n·ε relative error, far inside the 1e-12
//     certification bound (see shard_test.go).
//
// Annihilation needs no special casing in this representation: a factor of
// exactly 0 drives the mantissa to 0, log|0| = -Inf, and -Inf propagates
// through the remaining finite addends — reproducing the scalar path's
// "zeroed" flag. Likewise p = 0 tuples pick up -Inf from the precomputed
// log p lane.

import "math"

// renorm rescales a single-lane renormalized product so its mantissa
// magnitude returns to [2^-512, 2^512], accumulating the shifted powers of
// two in e. Powers-of-two scaling is exact. A zero mantissa is left alone
// (the product is annihilated; its logarithm is -Inf regardless of e).
func renorm(m float64, e int64) (float64, int64) {
	if m == 0 {
		return m, e
	}
	for am := math.Abs(m); am < 0x1p-512; am = math.Abs(m) {
		m *= 0x1p512
		e -= 512
	}
	for am := math.Abs(m); am > 0x1p512; am = math.Abs(m) {
		m *= 0x1p-512
		e += 512
	}
	return m, e
}

// renormC rescales a two-lane (re/im) renormalized product by shared
// powers of two until |m|² returns to [2^-512, 2^512].
func renormC(mr, mi float64, e int64) (float64, float64, int64) {
	if mr == 0 && mi == 0 {
		return mr, mi, e
	}
	for mr*mr+mi*mi < 0x1p-512 {
		mr *= 0x1p256
		mi *= 0x1p256
		e -= 256
	}
	for mr*mr+mi*mi > 0x1p512 {
		mr *= 0x1p-256
		mi *= 0x1p-256
		e += 256
	}
	return mr, mi, e
}

// logMag returns log|m·2^e|.
func logMag(m float64, e int64) float64 {
	return math.Log(math.Abs(m)) + float64(e)*math.Ln2
}

// logMagC returns log|(mr+mi·i)·2^e| via the squared magnitude (one log).
func logMagC(mr, mi float64, e int64) float64 {
	return 0.5*math.Log(mr*mr+mi*mi) + float64(e)*math.Ln2
}

// laneBlock is the span kernels' block size: mantissa/exponent snapshots
// live in fixed stack buffers of this many elements, splitting each block
// into a pure-multiply pass and a pure-log/scatter pass.
const laneBlock = 2048

// prfeRealSpan is the PRFe values recurrence over positions [lo, hi) in the
// real lane alone, valid for real α > 0 (every factor and prefix product is
// then non-negative real, and the imaginary lane of the complex recurrence
// is exactly +0 throughout). Bit-for-bit the complex prfeSpan.
func (v *Prepared) prfeRealSpan(out []complex128, lo, hi int, ar, prod float64) {
	probs, ids := v.probs, v.ids
	for i := lo; i < hi; i++ {
		pr := probs[i]
		out[ids[i]] = complex(prod*pr*ar, 0)
		prod *= 1 - pr + pr*ar
	}
}

// prfeLogRealSpan evaluates log|Υ_α| over positions [lo, hi) for real α,
// with base the log-magnitude of the prefix product before lo. Blocked
// two-pass: the first pass advances the renormalized running product and
// snapshots (mantissa, exponent) per element; the second turns snapshots
// into outputs with a single math.Log each.
func (v *Prepared) prfeLogRealSpan(out, logProbs []float64, lo, hi int, ar, logAlpha, base float64) {
	probs, ids := v.probs, v.ids
	var mbuf [laneBlock]float64
	var ebuf [laneBlock]int64
	m, e := 1.0, int64(0)
	for blo := lo; blo < hi; blo += laneBlock {
		bhi := min(blo+laneBlock, hi)
		for i := blo; i < bhi; i++ {
			k := i - blo
			mbuf[k], ebuf[k] = m, e
			pr := probs[i]
			m *= 1 - pr + pr*ar
			if am := math.Abs(m); am < 0x1p-512 || am > 0x1p512 {
				m, e = renorm(m, e)
			}
		}
		for i := blo; i < bhi; i++ {
			k := i - blo
			out[ids[i]] = base + math.Log(math.Abs(mbuf[k])) + float64(ebuf[k])*math.Ln2 + logProbs[i] + logAlpha
		}
	}
}

// prfeLogComplexSpan is prfeLogRealSpan for complex α: the product runs in
// two float64 lanes with a shared exponent, and the snapshot stores the
// squared magnitude (one log, halved, per element).
func (v *Prepared) prfeLogComplexSpan(out, logProbs []float64, lo, hi int, ar, ai, logAlpha, base float64) {
	probs, ids := v.probs, v.ids
	var m2buf [laneBlock]float64
	var ebuf [laneBlock]int64
	mr, mi, e := 1.0, 0.0, int64(0)
	for blo := lo; blo < hi; blo += laneBlock {
		bhi := min(blo+laneBlock, hi)
		for i := blo; i < bhi; i++ {
			k := i - blo
			m2buf[k], ebuf[k] = mr*mr+mi*mi, e
			pr := probs[i]
			fr := 1 - pr + pr*ar
			fi := pr * ai
			mr, mi = mr*fr-mi*fi, mr*fi+mi*fr
			if mag2 := mr*mr + mi*mi; mag2 < 0x1p-512 || mag2 > 0x1p512 {
				mr, mi, e = renormC(mr, mi, e)
			}
		}
		for i := blo; i < bhi; i++ {
			k := i - blo
			out[ids[i]] = base + 0.5*math.Log(m2buf[k]) + float64(ebuf[k])*math.Ln2 + logProbs[i] + logAlpha
		}
	}
}
