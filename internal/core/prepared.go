package core

import (
	"context"
	"math"
	"math/cmplx"
	"runtime"
	"sort"
	"sync"

	"repro/internal/exact"
	"repro/internal/par"
	"repro/internal/pdb"
)

// Prepared is an immutable, score-sorted view of a dataset, stored in
// struct-of-arrays layout (separate id/score/probability slices) so the
// generating-function kernels scan contiguous float64 memory instead of
// striding over Tuple structs. Preparing pays the O(n log n) sort exactly
// once; every kernel method afterwards is a pure scan that never clones or
// re-sorts, which is what makes repeated-query workloads (α-spectrum sweeps,
// multi-term PRFe combinations, learning loops) near-linear in practice as
// the paper's Section 4.3 analysis promises.
//
// A Prepared view is safe for concurrent use: all methods are read-only, and
// the parallel batch methods (PRFeLogBatch, RankPRFeBatch, PRFeCurve,
// PRFeComboParallel, TopKPRFeBatch) fan work out across GOMAXPROCS
// goroutines over the shared view.
type Prepared struct {
	ids    []pdb.TupleID // sorted position -> original tuple ID
	scores []float64     // non-increasing
	probs  []float64

	// aux holds the lazily built prepare-time aggregates the sharded and
	// lane-split kernels (shard.go, lanes.go) consume: per-position log
	// probabilities and the exact sequential probability prefix sums. Built
	// once on first parallel query; plain scans never pay for it.
	aux shardAux
}

// shardAux is the lazily materialized sharded-kernel support data.
type shardAux struct {
	once sync.Once
	// logProbs[i] = log p_i in sorted order (-Inf where p_i = 0), hoisting
	// one of the two logarithms out of every log-domain kernel element.
	logProbs []float64
	// probPrefix[i] = p_0 + … + p_{i−1} accumulated in the exact sequential
	// order the scalar prefix-sum kernels (ERank, PRFl) use, so a shard
	// starting at position i resumes from a bit-identical partial sum.
	// probPrefix[n] is the full Σp — bit-identical to ExpectedWorldSize().
	probPrefix []float64
}

// shardData returns the lazily built aggregates, materializing them on
// first use. Safe for concurrent callers.
func (v *Prepared) shardData() *shardAux {
	a := &v.aux
	a.once.Do(func() {
		n := len(v.probs)
		a.logProbs = make([]float64, n)
		a.probPrefix = make([]float64, n+1)
		sum := 0.0
		for i, p := range v.probs {
			a.logProbs[i] = math.Log(p)
			a.probPrefix[i] = sum
			sum += p
		}
		a.probPrefix[n] = sum
	})
	return a
}

// Prepare builds the sorted view of a dataset. If the dataset already
// reports Sorted, its order is taken as-is; otherwise the view sorts by
// non-increasing score with ties broken by ID — the exact order
// Dataset.SortByScore establishes. The dataset is never mutated.
func Prepare(d *pdb.Dataset) *Prepared {
	ts := d.Tuples()
	n := len(ts)
	v := &Prepared{
		ids:    make([]pdb.TupleID, n),
		scores: make([]float64, n),
		probs:  make([]float64, n),
	}
	if d.Sorted() {
		for i, t := range ts {
			v.ids[i], v.scores[i], v.probs[i] = t.ID, t.Score, t.Prob
		}
		return v
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// (score desc, ID asc) is a strict total order — IDs are unique — so the
	// unstable sort yields the same permutation as SortByScore's stable one.
	sort.Slice(idx, func(a, b int) bool {
		ta, tb := ts[idx[a]], ts[idx[b]]
		if !exact.Same(ta.Score, tb.Score) {
			return ta.Score > tb.Score
		}
		return ta.ID < tb.ID
	})
	for i, j := range idx {
		t := ts[j]
		v.ids[i], v.scores[i], v.probs[i] = t.ID, t.Score, t.Prob
	}
	return v
}

// Len returns the number of tuples in the view.
func (v *Prepared) Len() int { return len(v.ids) }

// ID returns the original tuple ID at sorted position i.
func (v *Prepared) ID(i int) pdb.TupleID { return v.ids[i] }

// Score returns the score at sorted position i.
func (v *Prepared) Score(i int) float64 { return v.scores[i] }

// Prob returns the existence probability at sorted position i.
func (v *Prepared) Prob(i int) float64 { return v.probs[i] }

// Tuple reconstructs the tuple at sorted position i.
func (v *Prepared) Tuple(i int) pdb.Tuple {
	return pdb.Tuple{ID: v.ids[i], Score: v.scores[i], Prob: v.probs[i]}
}

// IDs returns the position→ID slice. Callers must not mutate it.
func (v *Prepared) IDs() []pdb.TupleID { return v.ids }

// Scores returns the sorted score slice. Callers must not mutate it.
func (v *Prepared) Scores() []float64 { return v.scores }

// Probs returns the probability slice in sorted order. Callers must not
// mutate it.
func (v *Prepared) Probs() []float64 { return v.probs }

// ExpectedWorldSize returns C = Σ p_i (summed in sorted order).
func (v *Prepared) ExpectedWorldSize() float64 {
	var c float64
	for _, p := range v.probs {
		c += p
	}
	return c
}

// ---------------------------------------------------------------------------
// Kernels (Section 4.1 / 4.3): single scans over the prepared arrays.
// ---------------------------------------------------------------------------

// RankDistribution computes the full positional-probability matrix
// (Algorithm 1, O(n²)).
func (v *Prepared) RankDistribution() *pdb.RankDistribution {
	return v.RankDistributionTrunc(v.Len())
}

// RankDistributionTrunc computes Pr(r(t)=j) for j = 1..h in O(n·h). The
// whole matrix lives in one flat backing array sliced into rows (row i holds
// min(i+1, h) entries), so the allocation count is O(1) instead of O(n).
func (v *Prepared) RankDistributionTrunc(h int) *pdb.RankDistribution {
	n := v.Len()
	if h > n {
		h = n
	}
	dist := make([][]float64, n)
	total := 0
	for i := 0; i < n; i++ {
		if i+1 < h {
			total += i + 1
		} else {
			total += h
		}
	}
	flat := make([]float64, total)
	// g holds the coefficients of G_{i−1}(x) = ∏_{l<i}(1−p_l+p_l·x),
	// truncated to degree h−1 (rank j needs coefficient j−1).
	g := make([]float64, 1, h+1)
	g[0] = 1
	off := 0
	for i := 0; i < n; i++ {
		p := v.probs[i]
		rows := i + 1
		if rows > h {
			rows = h
		}
		row := flat[off : off+rows : off+rows]
		off += rows
		for j := 0; j < rows && j < len(g); j++ {
			row[j] = p * g[j]
		}
		dist[v.ids[i]] = row
		g = advance(g, p, h)
	}
	return &pdb.RankDistribution{Dist: dist}
}

// PRF computes Υω(t) for an arbitrary weight function in O(n²) time and
// O(n) space (Equation 1). Results are indexed by TupleID.
func (v *Prepared) PRF(omega WeightFunc) []float64 {
	n := v.Len()
	out := make([]float64, n)
	g := make([]float64, 1, n+1)
	g[0] = 1
	for i := 0; i < n; i++ {
		t := v.Tuple(i)
		var up float64
		for j := 0; j <= i && j < len(g); j++ {
			if g[j] != 0 {
				up += omega(t, j+1) * g[j]
			}
		}
		out[t.ID] = t.Prob * up
		g = advance(g, t.Prob, n)
	}
	return out
}

// PRFOmega computes the PRFω(h) family for the weight vector w (w[j] weighs
// rank j+1; ranks beyond len(w) weigh zero). O(n·h) on the prepared view.
func (v *Prepared) PRFOmega(w []float64) []float64 {
	n := v.Len()
	h := len(w)
	out := make([]float64, n)
	g := make([]float64, 1, h+1)
	g[0] = 1
	for i := 0; i < n; i++ {
		p := v.probs[i]
		var up float64
		for j := 0; j < len(g) && j < h; j++ {
			up += w[j] * g[j]
		}
		out[v.ids[i]] = p * up
		g = advance(g, p, h)
	}
	return out
}

// PTh computes Pr(r(t) ≤ h) — the PT(h) ranking function — in O(n·h).
func (v *Prepared) PTh(h int) []float64 { return v.PRFOmega(PTWeights(h)) }

// PRFe evaluates Υ_α(t) with a single scan (Section 4.3, Equation 3): O(n)
// on the prepared view. See PRFeLog for the underflow-free form at scale.
func (v *Prepared) PRFe(alpha complex128) []complex128 {
	out := make([]complex128, v.Len())
	prod := complex(1, 0)
	for i := range v.probs {
		p := complex(v.probs[i], 0)
		out[v.ids[i]] = prod * p * alpha
		prod *= 1 - p + p*alpha
	}
	return out
}

// PRFeLog evaluates log|Υ_α(t)|, the numerically robust form of PRFe for
// ranking (summed log-magnitudes never underflow). Tuples with Υ = 0 get
// -Inf. O(n) on the prepared view.
func (v *Prepared) PRFeLog(alpha complex128) []float64 {
	return v.PRFeLogInto(alpha, nil)
}

// PRFeLogInto is PRFeLog writing into out (reallocated only when its
// capacity is short) — the allocation-free form the batch paths use to keep
// one value buffer per worker across an entire query batch.
func (v *Prepared) PRFeLogInto(alpha complex128, out []float64) []float64 {
	if cap(out) < v.Len() {
		out = make([]float64, v.Len())
	}
	out = out[:v.Len()]
	logProd := 0.0
	zeroed := false // a factor of exactly 0 annihilates all later products
	logAlpha := math.Log(cmplx.Abs(alpha))
	for i := range v.probs {
		pr := v.probs[i]
		switch {
		case zeroed, pr == 0:
			out[v.ids[i]] = math.Inf(-1)
		default:
			out[v.ids[i]] = logProd + math.Log(pr) + logAlpha
		}
		p := complex(pr, 0)
		f := 1 - p + p*alpha
		if f == 0 {
			zeroed = true
		} else if !zeroed {
			logProd += math.Log(cmplx.Abs(f))
		}
	}
	return out
}

// RankPRFe returns the full PRFe(α) ranking for real α via the log-space
// evaluation.
func (v *Prepared) RankPRFe(alpha float64) pdb.Ranking {
	return pdb.RankByValue(v.PRFeLog(complex(alpha, 0)))
}

// ERank returns E[r(t)] for every tuple (the Cormode et al. convention:
// absent tuples take rank |pw|) with one prefix-sum scan over the prepared
// view — the Section 3.3 closed form er1 + er2. baselines.ERankPrepared is
// a thin wrapper over this kernel.
func (v *Prepared) ERank() []float64 {
	out := make([]float64, v.Len())
	c := v.ExpectedWorldSize()
	prefix := 0.0
	for i := 0; i < v.Len(); i++ {
		p := v.probs[i]
		er1 := p * (1 + prefix)
		er2 := (1 - p) * (c - p)
		out[v.ids[i]] = er1 + er2
		prefix += p
	}
	return out
}

// ExpectedRank returns the consensus expected rank (the Li/Deshpande
// convention: absent tuples take rank |pw|+1). On every correlation model it
// exceeds the Cormode-convention ERank by exactly Pr(t absent), since the
// conventions differ by one on each world missing t — so the kernel is the
// ERank scan plus a per-tuple (1−p) shift.
func (v *Prepared) ExpectedRank() []float64 {
	out := v.ERank()
	for i := 0; i < v.Len(); i++ {
		out[v.ids[i]] += 1 - v.probs[i]
	}
	return out
}

// ExpectedRankSharded is ExpectedRank over the sharded ERank kernel (which
// is bit-for-bit equal to the scalar one at every worker count; the (1−p)
// shift is per-element, so this variant is too).
func (v *Prepared) ExpectedRankSharded(workers int) []float64 {
	out := v.ERankSharded(workers)
	for i := 0; i < v.Len(); i++ {
		out[v.ids[i]] += 1 - v.probs[i]
	}
	return out
}

// MedianRank returns the consensus median rank per tuple: the smallest j
// with Pr(r(t) ≤ j) ≥ 1/2 under the absent-→-∞ convention, or the sentinel
// n+1 when the tuple is absent from a majority of worlds. One generating-
// function scan with an early-exit cumulative fold per tuple: O(n²) worst
// case, O(n) space (the full rank-distribution matrix is never
// materialized).
func (v *Prepared) MedianRank() []float64 {
	n := v.Len()
	out := make([]float64, n)
	g := make([]float64, 1, n+1)
	g[0] = 1
	for i := 0; i < n; i++ {
		p := v.probs[i]
		med := pdb.MedianRankSentinel(n)
		if p > 0 {
			cum := 0.0
			for j := 0; j < len(g); j++ {
				cum += p * g[j]
				if cum >= 0.5 {
					med = float64(j + 1)
					break
				}
			}
		}
		out[v.ids[i]] = med
		g = advance(g, p, n)
	}
	return out
}

// PRFl evaluates the PRFℓ special case ω(i) = −i via one prefix-sum scan.
func (v *Prepared) PRFl() []float64 {
	out := make([]float64, v.Len())
	prefix := 0.0
	for i := range v.probs {
		p := v.probs[i]
		out[v.ids[i]] = -p * (1 + prefix)
		prefix += p
	}
	return out
}

// PRFeCombo evaluates Υ(t) = Σ_l u_l·Υ_{α_l}(t) — the linear combination of
// PRFe functions approximating an arbitrary PRFω (Section 5.1) — in a single
// fused pass: all L running products advance together through one scan of
// the data, so the tuple arrays are read once instead of L times. O(n·L)
// arithmetic, O(n) memory traffic. Values are identical (bit-for-bit) to
// evaluating the terms in separate scans and summing per tuple in term
// order. See PRFeComboParallel for the parallel-by-term variant at large L.
func (v *Prepared) PRFeCombo(terms []ExpTerm) []complex128 {
	n := v.Len()
	out := make([]complex128, n)
	l := len(terms)
	if l == 0 {
		return out
	}
	prods := make([]complex128, l)
	us := make([]complex128, l)
	alphas := make([]complex128, l)
	for j, term := range terms {
		prods[j] = 1
		us[j] = term.U
		alphas[j] = term.Alpha
	}
	for i := range v.probs {
		p := complex(v.probs[i], 0)
		var sum complex128
		for j := 0; j < l; j++ {
			sum += us[j] * prods[j] * p * alphas[j]
			prods[j] *= 1 - p + p*alphas[j]
		}
		out[v.ids[i]] = sum
	}
	return out
}

// PRFeComboParallel evaluates the same linear combination as PRFeCombo but
// splits the terms across GOMAXPROCS workers, each running the fused
// single-pass kernel on its own chunk, and sums the partial results in chunk
// order. Worthwhile for large L; for small L it falls back to the serial
// fused pass. Results agree with PRFeCombo up to floating-point summation
// order (≤ 1e-12 in practice).
func (v *Prepared) PRFeComboParallel(terms []ExpTerm) []complex128 {
	l := len(terms)
	workers := runtime.GOMAXPROCS(0)
	if workers > l {
		workers = l
	}
	// Below a few terms per worker the fan-out overhead dominates.
	if workers < 2 || l < 8 {
		return v.PRFeCombo(terms)
	}
	chunks := make([][]ExpTerm, workers)
	per := (l + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > l {
			hi = l
		}
		if lo < hi {
			chunks[w] = terms[lo:hi]
		}
	}
	partial := make([][]complex128, workers)
	parallelFor(workers, func(w int) {
		if len(chunks[w]) > 0 {
			partial[w] = v.PRFeCombo(chunks[w])
		}
	})
	out := partial[0]
	for w := 1; w < workers; w++ {
		if partial[w] == nil {
			continue
		}
		for i, pv := range partial[w] {
			out[i] += pv
		}
	}
	return out
}

// CrossingPoint finds the unique β ∈ (0,1) at which the tuples at sorted
// positions i < j swap their PRFe order, if any (Theorem 4). See the
// package-level CrossingPoint for the contract.
//
// log ρ(α) is monotone increasing, so existence reduces to sign checks at
// the two ends — and the right end is the O(1) closed form
// log ρ(1) = log p_j − log p_i, hoisted out of the iteration entirely. The
// root itself is found by safeguarded Newton steps where each iteration is a
// single incremental pass over the span (see logRhoDirect), instead of the
// former fixed-count bisection that re-walked the span and recomputed the
// α-independent log(p_j)−log(p_i) on every probe (kept as
// CrossingPointReference for equivalence tests and benchmarks). Pairs with
// p_i = p_j exactly are reported as non-crossing: their curves meet only at
// the boundary α = 1, not inside (0,1).
func (v *Prepared) CrossingPoint(i, j int) (float64, bool) {
	if i == j {
		return 0, false
	}
	if i > j {
		i, j = j, i
	}
	pi, pj := v.probs[i], v.probs[j]
	if pi <= 0 || pj <= 0 {
		return 0, false
	}
	logDiff := math.Log(pj) - math.Log(pi)
	if !(logDiff > 0) {
		return 0, false // ρ(1) ≤ 1: position j never overtakes i in (0,1)
	}
	glo, _ := logRhoDirect(v.probs, i, j, logDiff, crossEps, false)
	if glo >= 0 {
		return 0, false // ρ > 1 across all of (0,1): j dominates throughout
	}
	return newtonRootDirect(v.probs, i, j, logDiff, crossEps, 1), true
}

// newtonRootDirect is the safeguarded Newton iteration over the direct
// evaluator, for one-off crossing queries outside a Sweep (which carries
// its own evaluation state; see Sweep.newton).
func newtonRootDirect(probs []float64, i, j int, logDiff, lo, hi float64) float64 {
	x := 0.5 * (lo + hi)
	for iter := 0; iter < 80 && hi-lo > 1e-14; iter++ {
		g, dg := logRhoDirect(probs, i, j, logDiff, x, true)
		if g == 0 {
			return x
		}
		if g < 0 {
			lo = x
		} else {
			hi = x
		}
		if dg > 0 {
			if nx := x - g/dg; nx > lo && nx < hi {
				if math.Abs(nx-x) <= 1e-14 {
					return nx // converged; the far bracket side may still be distant
				}
				x = nx
				continue
			}
		}
		x = 0.5 * (lo + hi)
	}
	return 0.5 * (lo + hi)
}

// CrossingPointReference is the pre-optimization crossing finder: plain
// bisection where every probe recomputes the full O(j−i) log-sum including
// the α-independent log(p_j)−log(p_i). Kept as the equivalence reference
// and benchmark baseline for CrossingPoint.
func (v *Prepared) CrossingPointReference(i, j int) (float64, bool) {
	if i == j {
		return 0, false
	}
	if i > j {
		i, j = j, i
	}
	pi, pj := v.probs[i], v.probs[j]
	if pi <= 0 || pj <= 0 {
		return 0, false
	}
	logRho := func(alpha float64) float64 {
		r := math.Log(pj) - math.Log(pi)
		for l := i; l < j; l++ {
			f := 1 - v.probs[l] + v.probs[l]*alpha
			if f <= 0 {
				return math.Inf(-1)
			}
			r += math.Log(f)
		}
		return r
	}
	lo, hi := crossEps, 1.0
	flo, fhi := logRho(lo), logRho(hi)
	if exact.Same(flo, fhi) || (flo < 0) == (fhi < 0) {
		return 0, false // same sign at both ends: no swap in (0,1)
	}
	for iter := 0; iter < 200 && hi-lo > 1e-14; iter++ {
		mid := (lo + hi) / 2
		if (logRho(mid) < 0) == (flo < 0) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, true
}

// ---------------------------------------------------------------------------
// Parallel batch evaluation over the shared immutable view.
// ---------------------------------------------------------------------------

// parallelWorkers, parallelForWorkers and parallelFor are thin aliases over
// internal/par, the fan-out primitive shared with the correlated-data
// prepared engines (andxor.PreparedTree, junction.PreparedNetwork).
func parallelWorkers(jobs int) int { return par.Workers(jobs) }

func parallelForWorkers(workers, jobs int, fn func(worker, job int)) {
	par.ForWorkers(workers, jobs, fn)
}

func parallelFor(jobs int, fn func(j int)) { par.For(jobs, fn) }

// PRFeLogBatch evaluates PRFeLog for every α in parallel. out[a] is indexed
// by TupleID, exactly as PRFeLog(alphas[a]) would return.
func (v *Prepared) PRFeLogBatch(alphas []complex128) [][]float64 {
	out := make([][]float64, len(alphas))
	parallelFor(len(alphas), func(a int) {
		out[a] = v.PRFeLog(alphas[a])
	})
	return out
}

// RankPRFeBatch computes the full PRFe(α) ranking for every α of a batch —
// the spectrum-sweep workhorse. out[a] equals RankPRFe(alphas[a]),
// bit-for-bit. When the batch is a strictly increasing grid inside (0, 1] —
// the Theorem 4 domain — it runs the kinetic sweep: one sort at alphas[0],
// then crossing events instead of a re-sort per grid point. Any other batch
// falls back to per-α evaluation parallelized across GOMAXPROCS workers.
func (v *Prepared) RankPRFeBatch(alphas []float64) []pdb.Ranking {
	if len(alphas) >= 2 && gridForSweep(alphas) {
		//lint:allow ctxflow ctx-free compatibility API; the engine's query path uses RankPRFeSweep with the caller's ctx
		out, err := v.RankPRFeSweep(context.Background(), alphas)
		pdb.MustNoErr(err) // grid pre-checked and ctx never cancels
		return out
	}
	return v.RankPRFeBatchParallel(alphas)
}

// RankPRFeBatchParallel evaluates each α independently across GOMAXPROCS
// workers — the non-kinetic batch path, used for batches that are not
// monotone α grids. Each worker owns one value buffer for its whole share
// of the batch, so the per-query allocations are the output rankings alone.
func (v *Prepared) RankPRFeBatchParallel(alphas []float64) []pdb.Ranking {
	//lint:allow ctxflow ctx-free compatibility API; the engine's query path uses rankPRFeParallelCtx with the caller's ctx
	out, err := v.rankPRFeParallelCtx(context.Background(), alphas)
	pdb.MustNoErr(err) // Background never cancels
	return out
}

// rankPRFeParallelCtx is the single body behind RankPRFeBatchParallel and
// the engine's non-grid QueryRankPRFeBatch arm.
func (v *Prepared) rankPRFeParallelCtx(ctx context.Context, alphas []float64) ([]pdb.Ranking, error) {
	out := make([]pdb.Ranking, len(alphas))
	workers := par.WorkersFor(ctx, len(alphas))
	vals := make([][]float64, workers)
	err := par.ForWorkersCtx(ctx, workers, len(alphas), func(w, a int) {
		vals[w] = v.PRFeLogInto(complex(alphas[a], 0), vals[w])
		out[a] = pdb.RankByValue(vals[w])
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TopKPRFeBatch answers many PRFe top-k queries against the shared view.
// out[a] equals RankPRFe(alphas[a]).TopK(k), bit-for-bit. Monotone α grids
// in (0, 1] ride the kinetic sweep; other batches run per-α in parallel.
func (v *Prepared) TopKPRFeBatch(alphas []float64, k int) []pdb.Ranking {
	if len(alphas) >= 2 && gridForSweep(alphas) {
		//lint:allow ctxflow ctx-free compatibility API; the engine's query path uses TopKPRFeSweep with the caller's ctx
		out, err := v.TopKPRFeSweep(context.Background(), alphas, k)
		pdb.MustNoErr(err) // grid pre-checked and ctx never cancels
		return out
	}
	return v.TopKPRFeBatchParallel(alphas, k)
}

// TopKPRFeBatchParallel is the non-kinetic top-k batch path: per-α
// evaluation across workers, where each worker reuses one value buffer and
// one full-ranking scratch for all its queries — only the k-length answers
// are fresh allocations.
func (v *Prepared) TopKPRFeBatchParallel(alphas []float64, k int) []pdb.Ranking {
	//lint:allow ctxflow ctx-free compatibility API; the engine's query path uses topKPRFeParallelCtx with the caller's ctx
	out, err := v.topKPRFeParallelCtx(context.Background(), alphas, k)
	pdb.MustNoErr(err) // Background never cancels
	return out
}

// topKPRFeParallelCtx is the single body behind TopKPRFeBatchParallel and
// the engine's non-grid QueryTopKPRFeBatch arm.
func (v *Prepared) topKPRFeParallelCtx(ctx context.Context, alphas []float64, k int) ([]pdb.Ranking, error) {
	out := make([]pdb.Ranking, len(alphas))
	workers := par.WorkersFor(ctx, len(alphas))
	vals := make([][]float64, workers)
	ranks := make([]pdb.Ranking, workers)
	err := par.ForWorkersCtx(ctx, workers, len(alphas), func(w, a int) {
		vals[w] = v.PRFeLogInto(complex(alphas[a], 0), vals[w])
		ranks[w] = pdb.RankByValueInto(vals[w], ranks[w])
		out[a] = ranks[w].TopK(k)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PRFeCurve evaluates Υ_α(t) over a grid of real α values: curve[id][a] is
// the (real) PRFe value of tuple id at alphas[a] (Figure 6 / Example 7).
// The grid is split across GOMAXPROCS workers and each worker advances all
// its running products through one fused scan of the tuple arrays — the
// data is read once per worker instead of once per grid point. The matrix
// is one flat allocation; values are bit-identical to per-α PRFe.
func (v *Prepared) PRFeCurve(alphas []float64) [][]float64 {
	n := v.Len()
	m := len(alphas)
	out := make([][]float64, n)
	flat := make([]float64, n*m)
	for i := range out {
		out[i] = flat[i*m : (i+1)*m : (i+1)*m]
	}
	if n == 0 || m == 0 {
		return out
	}
	workers := parallelWorkers(m)
	per := (m + workers - 1) / workers
	parallelFor(workers, func(w int) {
		lo := w * per
		hi := lo + per
		if hi > m {
			hi = m
		}
		if lo >= hi {
			return
		}
		as := alphas[lo:hi]
		prods := make([]float64, len(as))
		for c := range prods {
			prods[c] = 1
		}
		for i, p := range v.probs {
			row := out[v.ids[i]]
			for c, a := range as {
				row[lo+c] = prods[c] * p * a
				prods[c] *= 1 - p + p*a
			}
		}
	})
	return out
}

// ParallelTopK ranks many independent value vectors (each indexed by
// TupleID) and returns the top-k of each, fanning out across GOMAXPROCS
// goroutines. The generic multi-query helper behind batch ranking.
func ParallelTopK(valueBatch [][]float64, k int) []pdb.Ranking {
	out := make([]pdb.Ranking, len(valueBatch))
	parallelFor(len(valueBatch), func(q int) {
		out[q] = pdb.RankByValue(valueBatch[q]).TopK(k)
	})
	return out
}
