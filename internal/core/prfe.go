package core

import (
	"math/cmplx"

	"repro/internal/pdb"
)

// PRFe evaluates Υ_α(t) = F^i(α) = (∏_{l<i}(1−p_l+p_l·α))·p_i·α for every
// tuple with a single scan over the score-sorted dataset (Section 4.3,
// Equation 3): O(n log n) including the sort, O(n) when pre-sorted.
//
// α may be any complex number; the paper uses real 0 < α ≤ 1 for direct
// ranking and complex α for linear combinations (Section 5.1). For large n
// the running product underflows float64 — use PRFeLog for ranking at scale.
func PRFe(d *pdb.Dataset, alpha complex128) []complex128 {
	return Prepare(d).PRFe(alpha)
}

// PRFeLog evaluates log|Υ_α(t)| for every tuple, the numerically robust form
// of PRFe for ranking: because ranking only needs the order of |Υ|, summing
// log-magnitudes avoids the underflow of the direct product (a dataset with
// n = 10⁶ and α = 0.5 drives ∏(1−p+pα) far below the float64 range).
// Tuples with Υ = 0 (p = 0, α = 0, or a preceding certain tuple with
// 1−p+pα = 0) get -Inf. Works for real and complex α alike.
func PRFeLog(d *pdb.Dataset, alpha complex128) []float64 {
	return Prepare(d).PRFeLog(alpha)
}

// ExpTerm is one term u·αⁱ of an exponential-sum weight function
// ω(i) ≈ Σ_l u_l·α_lⁱ (Section 5.1). The dftapprox package produces these.
type ExpTerm struct {
	// U is the coefficient of the term.
	U complex128
	// Alpha is the base of the term; |Alpha| ≤ 1 for sensible rankings.
	Alpha complex128
}

// PRFeCombo evaluates Υ(t) = Σ_l u_l·Υ_{α_l}(t), the linear combination of
// PRFe functions that approximates an arbitrary PRFω function, with the
// fused single-pass kernel: O(n·L) arithmetic over one scan of the data.
// The returned values are the complex Υ; for a real ω approximated with
// conjugate-closed DFT terms the imaginary parts are numerical noise, so
// rank by real part (see RealParts).
func PRFeCombo(d *pdb.Dataset, terms []ExpTerm) []complex128 {
	return Prepare(d).PRFeCombo(terms)
}

// PRFeComboMultiPass is the pre-fusion reference implementation of
// PRFeCombo: one full scan of the data per term, accumulating into the
// output between scans. Retained for equivalence tests and benchmarks; new
// code should use Prepared.PRFeCombo (fused) or PRFeComboParallel.
func PRFeComboMultiPass(v *Prepared, terms []ExpTerm) []complex128 {
	n := v.Len()
	out := make([]complex128, n)
	for _, term := range terms {
		prod := complex(1, 0)
		for i := 0; i < n; i++ {
			p := complex(v.Prob(i), 0)
			out[v.ID(i)] += term.U * prod * p * term.Alpha
			prod *= 1 - p + p*term.Alpha
		}
	}
	return out
}

// RealParts extracts the real components of complex ranking values.
func RealParts(vals []complex128) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = real(v)
	}
	return out
}

// AbsParts extracts the magnitudes of complex ranking values (the paper's
// top-k query returns the k tuples with the highest |Υω|).
func AbsParts(vals []complex128) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// RankPRFe returns the full PRFe(α) ranking for real α ∈ [0,1] using the
// log-space evaluation, the recommended entry point for plain PRFe ranking.
func RankPRFe(d *pdb.Dataset, alpha float64) pdb.Ranking {
	return Prepare(d).RankPRFe(alpha)
}
