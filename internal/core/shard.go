package core

// This file is the sharded evaluation layer: every kernel here partitions
// the score-sorted struct-of-arrays view into P contiguous shards and
// evaluates them in parallel, merging with the algebra each kernel's running
// state obeys.
//
// Why this is sound: each scalar kernel carries one running quantity across
// the sorted scan —
//
//   - PRFe and PRFe-combo carry the product ∏_{l<i}(1−p_l+p_l·α), and
//     products are associative: the product over a prefix is the product of
//     the per-shard products before it, in shard order.
//   - The rank-distribution folds (PRFω(h), PT(h)) carry the truncated
//     generating-function coefficients of ∏(1−p_l+p_l·x), and truncated
//     polynomial multiplication is likewise associative (coefficient j of a
//     product depends only on coefficients ≤ j of its factors, so
//     truncation at h commutes with the merge).
//   - ERank and PRFl carry the prefix sum Σ_{l<i} p_l, which the view
//     precomputes once in exact sequential order (shardData), so any shard
//     resumes from a bit-identical partial sum.
//
// Certification: sharded results are bit-for-bit equal to the scalar
// kernels wherever the merge reuses the scalar accumulation (P = 1 always;
// ERank/PRFl for every P; the fused PT(h) ladder against per-h scalar
// folds), and within 1e-12 relative wherever the merge regroups floating-
// point operations (P > 1 products and polynomial merges) — the same
// tolerance the scalar path already grants PRFeComboParallel. See
// shard_test.go for the property shapes.
//
// Shard counts need not divide the view: shardBounds spreads the remainder
// one tuple at a time, and counts above Len() simply produce empty shards
// (their local state is the identity, so merges pass through them). The
// goroutine fan-out is still bounded by GOMAXPROCS via internal/par.

import (
	"math"
	"math/cmplx"

	"repro/internal/pdb"
)

// shardCount normalizes a requested parallelism: at least one shard.
// Counts above Len() are allowed — the extra shards are empty — so callers
// can pass any positive knob value; the goroutine count stays bounded by
// GOMAXPROCS regardless.
func shardCount(workers int) int {
	if workers < 1 {
		return 1
	}
	return workers
}

// shardBounds partitions [0, n) into p contiguous spans: shard s is
// [bounds[s], bounds[s+1]). Spans differ in length by at most one; when
// p > n the tail shards are empty.
func shardBounds(n, p int) []int {
	bounds := make([]int, p+1)
	for s := 0; s <= p; s++ {
		bounds[s] = s * n / p
	}
	return bounds
}

// ---------------------------------------------------------------------------
// Fused PT(h) ladders: one generating-function pass answers every depth.
// ---------------------------------------------------------------------------

// checkLadder panics unless hs is a strictly increasing, non-negative depth
// ladder — the precondition the fused fold's shared prefix sums rely on.
func checkLadder(hs []int) {
	for k, h := range hs {
		if h < 0 || (k > 0 && h <= hs[k-1]) {
			//lint:allow errdiscipline documented precondition assert on a caller-built ladder, hit before any per-tuple work; tests assert the panic
			panic("core: PT(h) ladder must be strictly increasing and non-negative")
		}
	}
}

// PThLadder evaluates PT(h) for every depth of a strictly increasing ladder
// hs in ONE generating-function pass at h_max — O(n·h_max) total instead of
// O(n·Σh) for per-depth scans. The fold shares partial coefficient sums
// across rungs: Σ_{j<h_k} g[j] is a prefix of Σ_{j<h_{k+1}} g[j], so each
// coefficient is added exactly once per tuple, in the same order the scalar
// PTh fold adds it — outs[k] is bit-for-bit PTh(hs[k]).
//
// outs[k] is indexed by TupleID, exactly like PTh(hs[k]).
func (v *Prepared) PThLadder(hs []int) [][]float64 {
	outs, n := ladderOut(len(hs), v.Len())
	if len(hs) == 0 || n == 0 {
		return outs
	}
	checkLadder(hs)
	hmax := hs[len(hs)-1]
	v.pthLadderSpan(hs, outs, 0, n, polyOne(hmax), hmax)
	return outs
}

// PThLadderSharded is PThLadder across p contiguous shards: each shard
// first computes its local generating-function polynomial (truncated to
// h_max), an exclusive scan of truncated polynomial products gives every
// shard its starting coefficients, and the shards then fold in parallel.
// Agreement with PThLadder is bit-for-bit at p ≤ 1 and within 1e-12
// relative for p > 1 (the merge regroups the polynomial multiplications).
func (v *Prepared) PThLadderSharded(hs []int, workers int) [][]float64 {
	outs, n := ladderOut(len(hs), v.Len())
	if len(hs) == 0 || n == 0 {
		return outs
	}
	checkLadder(hs)
	hmax := hs[len(hs)-1]
	p := shardCount(workers)
	if p == 1 {
		v.pthLadderSpan(hs, outs, 0, n, polyOne(hmax), hmax)
		return outs
	}
	bounds := shardBounds(n, p)
	starts := v.shardPolyStarts(bounds, hmax)
	parallelForWorkers(parallelWorkers(p), p, func(_, s int) {
		if bounds[s] < bounds[s+1] {
			v.pthLadderSpan(hs, outs, bounds[s], bounds[s+1], starts[s], hmax)
		}
	})
	return outs
}

// ladderOut allocates the rungs×n answer matrix in one flat backing array.
func ladderOut(rungs, n int) ([][]float64, int) {
	outs := make([][]float64, rungs)
	flat := make([]float64, rungs*n)
	for k := range outs {
		outs[k] = flat[k*n : (k+1)*n : (k+1)*n]
	}
	return outs, n
}

// polyOne returns the multiplicative identity polynomial [1] with capacity
// for a degree-(hmax−1) truncation, so advance grows it without reallocating.
func polyOne(hmax int) []float64 {
	cap := hmax + 1
	g := make([]float64, 1, cap)
	g[0] = 1
	return g
}

// pthLadderSpan runs the fused ladder fold over sorted positions [lo, hi)
// starting from generating-function coefficients g (which it advances in
// place). The inner loop is segment-wise: rung k adds the coefficients in
// [h_{k−1}, h_k) to the shared running sum, so each g[j] is touched once.
func (v *Prepared) pthLadderSpan(hs []int, outs [][]float64, lo, hi int, g []float64, hmax int) {
	probs, ids := v.probs, v.ids
	for i := lo; i < hi; i++ {
		p := probs[i]
		id := ids[i]
		gl := len(g)
		cum := 0.0
		prev := 0
		for k, h := range hs {
			end := h
			if end > gl {
				end = gl
			}
			for j := prev; j < end; j++ {
				cum += g[j]
			}
			prev = end
			outs[k][id] = p * cum
		}
		g = advance(g, p, hmax)
	}
}

// shardPolyStarts computes each shard's starting generating-function
// coefficients: phase one builds every shard's local polynomial in
// parallel, then an exclusive scan of truncated products assigns shard s
// the polynomial of all tuples before it. The returned slices are private
// to their shard (the fold advances them in place).
func (v *Prepared) shardPolyStarts(bounds []int, hmax int) [][]float64 {
	p := len(bounds) - 1
	polys := make([][]float64, p)
	parallelForWorkers(parallelWorkers(p), p, func(_, s int) {
		g := polyOne(hmax)
		for i := bounds[s]; i < bounds[s+1]; i++ {
			g = advance(g, v.probs[i], hmax)
		}
		polys[s] = g
	})
	starts := make([][]float64, p)
	acc := polyOne(hmax)
	for s := 0; s < p; s++ {
		starts[s] = acc
		if s+1 < p {
			acc = convTrunc(acc, polys[s], hmax)
		}
	}
	return starts
}

// convTrunc multiplies two coefficient vectors, truncating the product to
// the same effective length advance maintains: at most max(maxLen, 1)
// coefficients (the length-1 identity survives even a zero truncation).
func convTrunc(a, b []float64, maxLen int) []float64 {
	if maxLen < 1 {
		maxLen = 1
	}
	lc := len(a) + len(b) - 1
	if lc > maxLen {
		lc = maxLen
	}
	c := make([]float64, lc)
	for i, ai := range a {
		if i >= lc {
			break
		}
		for j, bj := range b {
			if i+j >= lc {
				break
			}
			c[i+j] += ai * bj
		}
	}
	return c
}

// PRFOmegaSharded evaluates the PRFω(h) weight-vector family across p
// contiguous shards with the same polynomial-prefix merge as
// PThLadderSharded. Bit-for-bit PRFOmega at p ≤ 1; within 1e-12 relative
// for p > 1.
func (v *Prepared) PRFOmegaSharded(w []float64, workers int) []float64 {
	n := v.Len()
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	h := len(w)
	p := shardCount(workers)
	if p == 1 {
		v.prfOmegaSpan(w, out, 0, n, polyOne(h), h)
		return out
	}
	bounds := shardBounds(n, p)
	starts := v.shardPolyStarts(bounds, h)
	parallelForWorkers(parallelWorkers(p), p, func(_, s int) {
		if bounds[s] < bounds[s+1] {
			v.prfOmegaSpan(w, out, bounds[s], bounds[s+1], starts[s], h)
		}
	})
	return out
}

// prfOmegaSpan is the scalar PRFOmega fold over positions [lo, hi) from
// starting coefficients g — identical arithmetic, identical order.
func (v *Prepared) prfOmegaSpan(w, out []float64, lo, hi int, g []float64, h int) {
	probs, ids := v.probs, v.ids
	for i := lo; i < hi; i++ {
		p := probs[i]
		var up float64
		for j := 0; j < len(g) && j < h; j++ {
			up += w[j] * g[j]
		}
		out[ids[i]] = p * up
		g = advance(g, p, h)
	}
}

// PThSharded evaluates Pr(r(t) ≤ h) across p contiguous shards — the
// sharded form of PTh, via PRFOmegaSharded on the unit weight ladder.
func (v *Prepared) PThSharded(h, workers int) []float64 {
	return v.PRFOmegaSharded(PTWeights(h), workers)
}

// ---------------------------------------------------------------------------
// Sharded PRFe: per-shard running-product prefixes.
// ---------------------------------------------------------------------------

// PRFeSharded evaluates Υ_α across p contiguous shards: each shard's local
// factor product is computed in parallel, an exclusive scan hands every
// shard its starting prefix product, and the shards then run the scalar
// PRFe recurrence from that start. Real α > 0 additionally rides the
// lane-split kernel (lanes.go), whose real-arithmetic loop is bit-for-bit
// the complex one. Agreement with PRFe is bit-for-bit at p ≤ 1 and within
// 1e-12 for p > 1.
func (v *Prepared) PRFeSharded(alpha complex128, workers int) []complex128 {
	n := v.Len()
	out := make([]complex128, n)
	if n == 0 {
		return out
	}
	p := shardCount(workers)
	ar := real(alpha)
	realLanes := imag(alpha) == 0 && ar > 0
	if p == 1 {
		if realLanes {
			v.prfeRealSpan(out, 0, n, ar, 1)
		} else {
			v.prfeSpan(out, 0, n, alpha, 1)
		}
		return out
	}
	bounds := shardBounds(n, p)
	// Phase 1: local factor products per shard.
	local := make([]complex128, p)
	parallelForWorkers(parallelWorkers(p), p, func(_, s int) {
		prod := complex(1, 0)
		if realLanes {
			rp := 1.0
			for i := bounds[s]; i < bounds[s+1]; i++ {
				pr := v.probs[i]
				rp *= 1 - pr + pr*ar
			}
			prod = complex(rp, 0)
		} else {
			for i := bounds[s]; i < bounds[s+1]; i++ {
				pc := complex(v.probs[i], 0)
				prod *= 1 - pc + pc*alpha
			}
		}
		local[s] = prod
	})
	// Exclusive scan: shard s starts from the product of shards before it.
	starts := make([]complex128, p)
	acc := complex(1, 0)
	for s := 0; s < p; s++ {
		starts[s] = acc
		acc *= local[s]
	}
	// Phase 2: the scalar recurrence per shard, from its prefix product.
	parallelForWorkers(parallelWorkers(p), p, func(_, s int) {
		if bounds[s] >= bounds[s+1] {
			return
		}
		if realLanes {
			v.prfeRealSpan(out, bounds[s], bounds[s+1], ar, real(starts[s]))
		} else {
			v.prfeSpan(out, bounds[s], bounds[s+1], alpha, starts[s])
		}
	})
	return out
}

// prfeSpan is the scalar PRFe recurrence over positions [lo, hi) from a
// starting prefix product.
func (v *Prepared) prfeSpan(out []complex128, lo, hi int, alpha, prod complex128) {
	for i := lo; i < hi; i++ {
		p := complex(v.probs[i], 0)
		out[v.ids[i]] = prod * p * alpha
		prod *= 1 - p + p*alpha
	}
}

// PRFeLogSharded evaluates log|Υ_α| — the ranking-robust form — across p
// contiguous shards using the lane-split renormalized-product kernel
// (lanes.go): each shard tracks its running product as a (mantissa,
// base-2 exponent) pair instead of summing logarithms, so the hot loop
// costs one math.Log per tuple (the hoisted log p comes from shardData)
// instead of the scalar path's two logs plus a complex magnitude.
//
// Values agree with PRFeLog within 1e-12 (scaled); annihilated tuples
// (zero probability, or any exact-zero factor earlier in the sorted order)
// come out -Inf exactly as the scalar path reports them.
func (v *Prepared) PRFeLogSharded(alpha complex128, workers int) []float64 {
	n := v.Len()
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	aux := v.shardData()
	p := shardCount(workers)
	bounds := shardBounds(n, p)
	logAlpha := math.Log(cmplx.Abs(alpha))
	ar, ai := real(alpha), imag(alpha)
	if ai == 0 {
		// Real α: single-lane renormalized products.
		ms := make([]float64, p)
		es := make([]int64, p)
		if p > 1 {
			parallelForWorkers(parallelWorkers(p), p, func(_, s int) {
				m, e := 1.0, int64(0)
				for i := bounds[s]; i < bounds[s+1]; i++ {
					pr := v.probs[i]
					m *= 1 - pr + pr*ar
					if am := math.Abs(m); am < 0x1p-512 || am > 0x1p512 {
						m, e = renorm(m, e)
					}
				}
				ms[s], es[s] = m, e
			})
		}
		base := make([]float64, p)
		m, e := 1.0, int64(0)
		for s := 0; s < p; s++ {
			base[s] = logMag(m, e)
			m *= ms[s]
			e += es[s]
			m, e = renorm(m, e)
		}
		parallelForWorkers(parallelWorkers(p), p, func(_, s int) {
			if bounds[s] < bounds[s+1] {
				v.prfeLogRealSpan(out, aux.logProbs, bounds[s], bounds[s+1], ar, logAlpha, base[s])
			}
		})
		return out
	}
	// Complex α: re/im lanes with a shared base-2 exponent.
	mrs := make([]float64, p)
	mis := make([]float64, p)
	es := make([]int64, p)
	if p > 1 {
		parallelForWorkers(parallelWorkers(p), p, func(_, s int) {
			mr, mi, e := 1.0, 0.0, int64(0)
			for i := bounds[s]; i < bounds[s+1]; i++ {
				pr := v.probs[i]
				fr := 1 - pr + pr*ar
				fi := pr * ai
				mr, mi = mr*fr-mi*fi, mr*fi+mi*fr
				if mag2 := mr*mr + mi*mi; mag2 < 0x1p-512 || mag2 > 0x1p512 {
					mr, mi, e = renormC(mr, mi, e)
				}
			}
			mrs[s], mis[s], es[s] = mr, mi, e
		})
	}
	base := make([]float64, p)
	mr, mi, e := 1.0, 0.0, int64(0)
	for s := 0; s < p; s++ {
		base[s] = logMagC(mr, mi, e)
		mr, mi = mr*mrs[s]-mi*mis[s], mr*mis[s]+mi*mrs[s]
		e += es[s]
		mr, mi, e = renormC(mr, mi, e)
	}
	parallelForWorkers(parallelWorkers(p), p, func(_, s int) {
		if bounds[s] < bounds[s+1] {
			v.prfeLogComplexSpan(out, aux.logProbs, bounds[s], bounds[s+1], ar, ai, logAlpha, base[s])
		}
	})
	return out
}

// RankPRFeSharded ranks by the sharded log-domain evaluation — the
// Parallelism-knob form of RankPRFe.
func (v *Prepared) RankPRFeSharded(alpha float64, workers int) pdb.Ranking {
	return pdb.RankByValue(v.PRFeLogSharded(complex(alpha, 0), workers))
}

// PRFeComboSharded evaluates Σ_l u_l·Υ_{α_l} across p contiguous shards:
// phase one computes every shard's per-term factor products, an exclusive
// scan hands each shard its L starting prefixes, and each shard then runs
// the fused PRFeCombo recurrence. Bit-for-bit PRFeCombo at p ≤ 1; within
// 1e-12 for p > 1.
func (v *Prepared) PRFeComboSharded(terms []ExpTerm, workers int) []complex128 {
	n := v.Len()
	l := len(terms)
	p := shardCount(workers)
	if p == 1 || l == 0 || n == 0 {
		return v.PRFeCombo(terms)
	}
	out := make([]complex128, n)
	us := make([]complex128, l)
	alphas := make([]complex128, l)
	for j, term := range terms {
		us[j] = term.U
		alphas[j] = term.Alpha
	}
	bounds := shardBounds(n, p)
	local := make([][]complex128, p)
	parallelForWorkers(parallelWorkers(p), p, func(_, s int) {
		prods := make([]complex128, l)
		for j := range prods {
			prods[j] = 1
		}
		for i := bounds[s]; i < bounds[s+1]; i++ {
			pc := complex(v.probs[i], 0)
			for j := 0; j < l; j++ {
				prods[j] *= 1 - pc + pc*alphas[j]
			}
		}
		local[s] = prods
	})
	starts := make([][]complex128, p)
	acc := make([]complex128, l)
	for j := range acc {
		acc[j] = 1
	}
	for s := 0; s < p; s++ {
		starts[s] = acc
		if s+1 < p {
			next := make([]complex128, l)
			for j := range next {
				next[j] = acc[j] * local[s][j]
			}
			acc = next
		}
	}
	parallelForWorkers(parallelWorkers(p), p, func(_, s int) {
		prods := starts[s]
		for i := bounds[s]; i < bounds[s+1]; i++ {
			pc := complex(v.probs[i], 0)
			var sum complex128
			for j := 0; j < l; j++ {
				sum += us[j] * prods[j] * pc * alphas[j]
				prods[j] *= 1 - pc + pc*alphas[j]
			}
			out[v.ids[i]] = sum
		}
	})
	return out
}

// ---------------------------------------------------------------------------
// Sharded prefix-sum kernels: exact for every shard count.
// ---------------------------------------------------------------------------

// ERankSharded evaluates E[r(t)] across p contiguous shards. Each shard
// resumes from the prepare-time sequential prefix sum at its start
// position, so the arithmetic per tuple is bit-for-bit the scalar ERank
// kernel for EVERY shard count — the prefix values are the identical
// partial sums, just read from shardData instead of re-accumulated.
func (v *Prepared) ERankSharded(workers int) []float64 {
	n := v.Len()
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	aux := v.shardData()
	c := aux.probPrefix[n]
	p := shardCount(workers)
	bounds := shardBounds(n, p)
	parallelForWorkers(parallelWorkers(p), p, func(_, s int) {
		prefix := aux.probPrefix[bounds[s]]
		for i := bounds[s]; i < bounds[s+1]; i++ {
			pr := v.probs[i]
			er1 := pr * (1 + prefix)
			er2 := (1 - pr) * (c - pr)
			out[v.ids[i]] = er1 + er2
			prefix += pr
		}
	})
	return out
}

// PRFlSharded evaluates the PRFℓ special case ω(i) = −i across p contiguous
// shards, bit-for-bit PRFl for every shard count (same prefix-sum resume as
// ERankSharded).
func (v *Prepared) PRFlSharded(workers int) []float64 {
	n := v.Len()
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	aux := v.shardData()
	p := shardCount(workers)
	bounds := shardBounds(n, p)
	parallelForWorkers(parallelWorkers(p), p, func(_, s int) {
		prefix := aux.probPrefix[bounds[s]]
		for i := bounds[s]; i < bounds[s+1]; i++ {
			pr := v.probs[i]
			out[v.ids[i]] = -pr * (1 + prefix)
			prefix += pr
		}
	})
	return out
}
