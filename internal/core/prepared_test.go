package core

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/pdb"
)

// ---------------------------------------------------------------------------
// Reference implementations: verbatim copies of the pre-Prepared one-shot
// algorithms (clone + sort per call, array-of-structs scan). The prepared,
// fused, and parallel paths are required to reproduce their results
// bit-for-bit (or within 1e-12 where summation order legitimately differs).
// ---------------------------------------------------------------------------

func refSortedCopy(d *pdb.Dataset) []pdb.Tuple {
	c := d.Clone()
	if !c.Sorted() {
		c.SortByScore()
	}
	return c.Tuples()
}

func refPRFe(d *pdb.Dataset, alpha complex128) []complex128 {
	out := make([]complex128, d.Len())
	prod := complex(1, 0)
	for _, t := range refSortedCopy(d) {
		p := complex(t.Prob, 0)
		out[t.ID] = prod * p * alpha
		prod *= 1 - p + p*alpha
	}
	return out
}

func refPRFeLog(d *pdb.Dataset, alpha complex128) []float64 {
	out := make([]float64, d.Len())
	logProd := 0.0
	zeroed := false
	logAlpha := math.Log(cmplx.Abs(alpha))
	for _, t := range refSortedCopy(d) {
		switch {
		case zeroed, t.Prob == 0:
			out[t.ID] = math.Inf(-1)
		default:
			out[t.ID] = logProd + math.Log(t.Prob) + logAlpha
		}
		p := complex(t.Prob, 0)
		f := 1 - p + p*alpha
		if f == 0 {
			zeroed = true
		} else if !zeroed {
			logProd += math.Log(cmplx.Abs(f))
		}
	}
	return out
}

func refPRF(d *pdb.Dataset, omega WeightFunc) []float64 {
	n := d.Len()
	out := make([]float64, n)
	g := make([]float64, 1, n+1)
	g[0] = 1
	for i, t := range refSortedCopy(d) {
		var up float64
		for j := 0; j <= i && j < len(g); j++ {
			if g[j] != 0 {
				up += omega(t, j+1) * g[j]
			}
		}
		out[t.ID] = t.Prob * up
		g = advance(g, t.Prob, n)
	}
	return out
}

func refPRFOmega(d *pdb.Dataset, w []float64) []float64 {
	n := d.Len()
	h := len(w)
	out := make([]float64, n)
	g := make([]float64, 1, h+1)
	g[0] = 1
	for _, t := range refSortedCopy(d) {
		var up float64
		for j := 0; j < len(g) && j < h; j++ {
			up += w[j] * g[j]
		}
		out[t.ID] = t.Prob * up
		g = advance(g, t.Prob, h)
	}
	return out
}

func refRankDistributionTrunc(d *pdb.Dataset, h int) *pdb.RankDistribution {
	n := d.Len()
	if h > n {
		h = n
	}
	dist := make([][]float64, n)
	g := make([]float64, 1, h+1)
	g[0] = 1
	for i, t := range refSortedCopy(d) {
		rows := i + 1
		if rows > h {
			rows = h
		}
		row := make([]float64, rows)
		for j := 0; j < rows && j < len(g); j++ {
			row[j] = t.Prob * g[j]
		}
		dist[t.ID] = row
		g = advance(g, t.Prob, h)
	}
	return &pdb.RankDistribution{Dist: dist}
}

func refPRFeCombo(d *pdb.Dataset, terms []ExpTerm) []complex128 {
	n := d.Len()
	out := make([]complex128, n)
	ts := refSortedCopy(d)
	for _, term := range terms {
		prod := complex(1, 0)
		for _, t := range ts {
			p := complex(t.Prob, 0)
			out[t.ID] += term.U * prod * p * term.Alpha
			prod *= 1 - p + p*term.Alpha
		}
	}
	return out
}

func refPRFl(d *pdb.Dataset) []float64 {
	out := make([]float64, d.Len())
	prefix := 0.0
	for _, t := range refSortedCopy(d) {
		out[t.ID] = -t.Prob * (1 + prefix)
		prefix += t.Prob
	}
	return out
}

// gnarlyDataset builds a dataset exercising the awkward cases: duplicate
// scores (tie-break by ID), p = 0, p = 1, and tiny probabilities.
func gnarlyDataset(rng *rand.Rand, n int) *pdb.Dataset {
	scores := make([]float64, n)
	probs := make([]float64, n)
	for i := 0; i < n; i++ {
		scores[i] = float64(rng.Intn(n/2 + 1)) // many ties
		switch rng.Intn(10) {
		case 0:
			probs[i] = 0
		case 1:
			probs[i] = 1
		case 2:
			probs[i] = 1e-12
		default:
			probs[i] = rng.Float64()
		}
	}
	return pdb.MustDataset(scores, probs)
}

func randTerms(rng *rand.Rand, l int) []ExpTerm {
	terms := make([]ExpTerm, l)
	for i := range terms {
		theta := 2 * math.Pi * rng.Float64()
		r := rng.Float64()
		terms[i] = ExpTerm{
			U:     complex(rng.NormFloat64(), rng.NormFloat64()),
			Alpha: cmplx.Rect(r, theta),
		}
	}
	return terms
}

func equalFloats(t *testing.T, name string, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if math.IsInf(w, -1) || math.IsInf(g, -1) {
			if g != w {
				t.Fatalf("%s[%d]: got %v want %v", name, i, g, w)
			}
			continue
		}
		if math.Abs(g-w) > tol {
			t.Fatalf("%s[%d]: got %v want %v (|Δ|=%g)", name, i, g, w, math.Abs(g-w))
		}
	}
}

func equalComplexes(t *testing.T, name string, got, want []complex128, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if cmplx.Abs(got[i]-want[i]) > tol {
			t.Fatalf("%s[%d]: got %v want %v (|Δ|=%g)", name, i, got[i], want[i],
				cmplx.Abs(got[i]-want[i]))
		}
	}
}

// The prepared scalar kernels must reproduce the legacy one-shot results
// bit-for-bit on random datasets with ties and edge probabilities, whether
// or not the source dataset was pre-sorted.
func TestPreparedMatchesLegacyKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(120)
		d := gnarlyDataset(rng, n+1)
		if trial%2 == 1 {
			d.SortByScore()
		}
		v := Prepare(d)
		alpha := complex(rng.Float64(), 0)
		if trial%3 == 0 {
			alpha = complex(rng.Float64(), rng.Float64()-0.5)
		}

		equalComplexes(t, "PRFe", v.PRFe(alpha), refPRFe(d, alpha), 0)
		equalFloats(t, "PRFeLog", v.PRFeLog(alpha), refPRFeLog(d, alpha), 0)
		equalFloats(t, "PRFl", v.PRFl(), refPRFl(d), 0)

		w := make([]float64, 1+rng.Intn(16))
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		equalFloats(t, "PRFOmega", v.PRFOmega(w), refPRFOmega(d, w), 0)

		omega := func(tu pdb.Tuple, rank int) float64 {
			return tu.Score / float64(rank+1)
		}
		equalFloats(t, "PRF", v.PRF(omega), refPRF(d, omega), 0)

		h := 1 + rng.Intn(n+1)
		got := v.RankDistributionTrunc(h)
		want := refRankDistributionTrunc(d, h)
		for id := 0; id < d.Len(); id++ {
			equalFloats(t, "RankDistributionTrunc row", got.Dist[id], want.Dist[id], 0)
		}
	}
}

// The fused single-pass PRFeCombo must be bit-for-bit identical to the
// per-term multi-scan evaluation; the parallel-by-term variant must agree
// within 1e-12.
func TestPRFeComboFusedAndParallelMatchMultiPass(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 12; trial++ {
		n := 1 + rng.Intn(200)
		l := 1 + rng.Intn(40)
		d := gnarlyDataset(rng, n+1)
		terms := randTerms(rng, l)
		v := Prepare(d)

		want := refPRFeCombo(d, terms)
		equalComplexes(t, "PRFeCombo(fused)", v.PRFeCombo(terms), want, 0)
		equalComplexes(t, "PRFeComboMultiPass", PRFeComboMultiPass(v, terms), want, 0)
		equalComplexes(t, "PRFeComboParallel", v.PRFeComboParallel(terms), want, 1e-12)
	}
}

// The parallel batch APIs must agree exactly with their serial one-at-a-time
// counterparts (each grid point is the identical scalar kernel).
func TestParallelBatchesMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	d := gnarlyDataset(rng, 150)
	v := Prepare(d)

	alphas := make([]float64, 33)
	calphas := make([]complex128, len(alphas))
	for i := range alphas {
		alphas[i] = float64(i+1) / float64(len(alphas))
		calphas[i] = complex(alphas[i], 0)
	}

	logBatch := v.PRFeLogBatch(calphas)
	for a, ca := range calphas {
		equalFloats(t, "PRFeLogBatch", logBatch[a], v.PRFeLog(ca), 0)
	}

	rankBatch := v.RankPRFeBatch(alphas)
	for a, alpha := range alphas {
		want := v.RankPRFe(alpha)
		if !sameRanking(rankBatch[a], want) {
			t.Fatalf("RankPRFeBatch[%d] differs from serial RankPRFe(%v)", a, alpha)
		}
	}

	k := 10
	topBatch := v.TopKPRFeBatch(alphas, k)
	for a, alpha := range alphas {
		want := v.RankPRFe(alpha).TopK(k)
		if !sameRanking(topBatch[a], want) {
			t.Fatalf("TopKPRFeBatch[%d] differs from serial top-k at α=%v", a, alpha)
		}
	}

	curve := v.PRFeCurve(alphas)
	for a := range alphas {
		vals := v.PRFe(calphas[a])
		for id := range vals {
			if curve[id][a] != real(vals[id]) {
				t.Fatalf("PRFeCurve[%d][%d] = %v, want %v", id, a, curve[id][a], real(vals[id]))
			}
		}
	}

	values := make([][]float64, len(calphas))
	for i, ca := range calphas {
		values[i] = v.PRFeLog(ca)
	}
	multi := ParallelTopK(values, k)
	for q := range values {
		want := pdb.RankByValue(values[q]).TopK(k)
		if !sameRanking(multi[q], want) {
			t.Fatalf("ParallelTopK[%d] differs from serial top-k", q)
		}
	}

	if got, want := v.SpectrumSizeGrid(64), SpectrumSizeGrid(d, 64); got != want {
		t.Fatalf("SpectrumSizeGrid: prepared %d vs one-shot %d", got, want)
	}
	if got, want := v.SpectrumSize(), SpectrumSize(d); got != want {
		t.Fatalf("SpectrumSize: prepared %d vs one-shot %d", got, want)
	}
}

// The one-shot wrappers and the prepared methods must agree on the full
// ranking so existing call sites see identical answers.
func TestOneShotWrappersMatchPrepared(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	d := gnarlyDataset(rng, 90)
	v := Prepare(d)
	for _, alpha := range []float64{1e-9, 0.25, 0.5, 0.95, 1} {
		if !sameRanking(RankPRFe(d, alpha), v.RankPRFe(alpha)) {
			t.Fatalf("RankPRFe wrapper diverges at α=%v", alpha)
		}
	}
	if b1, ok1 := CrossingPoint(d, 0, d.Len()-1); ok1 {
		b2, ok2 := v.CrossingPoint(0, d.Len()-1)
		if !ok2 || b1 != b2 {
			t.Fatalf("CrossingPoint wrapper %v/%v vs prepared %v/%v", b1, ok1, b2, ok2)
		}
	}
}

// Preparing a sorted dataset and preparing its unsorted clone must yield the
// same view (same order, same kernel outputs).
func TestPrepareSortedAndUnsortedAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	d := gnarlyDataset(rng, 80)
	sorted := d.Clone()
	sorted.SortByScore()
	v1, v2 := Prepare(d), Prepare(sorted)
	for i := 0; i < v1.Len(); i++ {
		if v1.ID(i) != v2.ID(i) || v1.Score(i) != v2.Score(i) || v1.Prob(i) != v2.Prob(i) {
			t.Fatalf("position %d differs: (%v,%v,%v) vs (%v,%v,%v)", i,
				v1.ID(i), v1.Score(i), v1.Prob(i), v2.ID(i), v2.Score(i), v2.Prob(i))
		}
	}
}

// The flat-backed rank-distribution matrix must hold per-row capacity so a
// row append cannot clobber its neighbor.
func TestRankDistributionRowsAreCapped(t *testing.T) {
	d := pdb.MustDataset([]float64{3, 2, 1}, []float64{0.5, 0.5, 0.5})
	rd := Prepare(d).RankDistributionTrunc(2)
	for id, row := range rd.Dist {
		if cap(row) != len(row) {
			t.Fatalf("row %d: cap %d != len %d (flat rows must be full-slice-capped)",
				id, cap(row), len(row))
		}
	}
}

func TestPreparedEmptyAndDegenerate(t *testing.T) {
	empty := Prepare(pdb.MustDataset(nil, nil))
	if empty.Len() != 0 {
		t.Fatalf("empty view Len = %d", empty.Len())
	}
	if got := empty.PRFeCombo(randTerms(rand.New(rand.NewSource(1)), 3)); len(got) != 0 {
		t.Fatalf("empty combo = %v", got)
	}
	if got := empty.RankPRFeBatch([]float64{0.5}); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("empty batch = %v", got)
	}
	one := Prepare(pdb.MustDataset([]float64{1}, []float64{0.3}))
	if got := one.PRFeCombo(nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("zero-term combo = %v", got)
	}
}

// A Prepared view must be reusable concurrently: hammer the batch APIs from
// the race detector's point of view (go test -race makes this meaningful).
func TestPreparedConcurrentUse(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	d := gnarlyDataset(rng, 200)
	v := Prepare(d)
	alphas := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99}
	done := make(chan struct{})
	go func() {
		defer close(done)
		v.RankPRFeBatch(alphas)
	}()
	v.PRFeComboParallel(randTerms(rng, 32))
	v.PRFeCurve(alphas)
	<-done
}
