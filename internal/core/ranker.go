package core

import (
	"context"

	"repro/internal/par"
	"repro/internal/pdb"
)

// This file is the independent-tuples arm of the unified Ranker engine: the
// Query* methods make *Prepared satisfy engine.Ranker — context-aware,
// error-returning entry points over the same kernels the flat API calls, so
// every answer is bit-for-bit what the legacy path returns. Dispatch picks
// the fastest kernel available here: monotone α grids ride the kinetic
// sweep (one sort plus Theorem 4 crossings), other batches fan out per α
// across GOMAXPROCS workers, and single queries run the fused scans
// directly.
//
// A context parallelism cap (par.WithLimit, set by engine.Query.Parallelism)
// switches single-query dispatch onto the sharded evaluation layer
// (shard.go) with that many shards and clamps the batch fan-outs to that
// many workers. No cap (the default) keeps the exact legacy scalar kernels,
// preserving the engine's bit-for-bit conformance certification.

// QueryPRFe evaluates Υ_α per TupleID. Identical to PRFe.
func (v *Prepared) QueryPRFe(ctx context.Context, alpha complex128) ([]complex128, error) {
	if err := pdb.CheckAlphaC(alpha); err != nil {
		return nil, err
	}
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	if p := par.Limit(ctx); p > 0 {
		return v.PRFeSharded(alpha, p), nil
	}
	return v.PRFe(alpha), nil
}

// QueryPRFeBatch evaluates Υ_α per TupleID for every α of a batch, fanning
// the grid across GOMAXPROCS workers. out[a] is bit-for-bit PRFe(alphas[a]).
func (v *Prepared) QueryPRFeBatch(ctx context.Context, alphas []complex128) ([][]complex128, error) {
	if err := pdb.CheckAlphaGridC(alphas); err != nil {
		return nil, err
	}
	out := make([][]complex128, len(alphas))
	err := par.ForWorkersCtx(ctx, par.WorkersFor(ctx, len(alphas)), len(alphas), func(_, a int) {
		out[a] = v.PRFe(alphas[a])
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// QueryRankPRFe returns the full PRFe(α) ranking — RankByValue over the
// log-domain evaluation, exactly as RankPRFe.
func (v *Prepared) QueryRankPRFe(ctx context.Context, alpha float64) (pdb.Ranking, error) {
	if err := pdb.CheckAlpha(alpha); err != nil {
		return nil, err
	}
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	if p := par.Limit(ctx); p > 0 {
		return v.RankPRFeSharded(alpha, p), nil
	}
	return v.RankPRFe(alpha), nil
}

// QueryRankPRFeBatch ranks every α of a batch: strictly increasing grids in
// (0, 1] ride the kinetic sweep, anything else runs per α in parallel.
// out[a] is bit-for-bit RankPRFe(alphas[a]).
func (v *Prepared) QueryRankPRFeBatch(ctx context.Context, alphas []float64) ([]pdb.Ranking, error) {
	if err := pdb.CheckAlphaGrid(alphas); err != nil {
		return nil, err
	}
	if len(alphas) >= 2 && gridForSweep(alphas) {
		return v.RankPRFeSweep(ctx, alphas)
	}
	return v.rankPRFeParallelCtx(ctx, alphas)
}

// QueryTopKPRFeBatch answers top-k at every α of a batch with the same
// dispatch as QueryRankPRFeBatch. out[a] is bit-for-bit
// RankPRFe(alphas[a]).TopK(k).
func (v *Prepared) QueryTopKPRFeBatch(ctx context.Context, alphas []float64, k int) ([]pdb.Ranking, error) {
	if err := pdb.CheckAlphaGrid(alphas); err != nil {
		return nil, err
	}
	if err := pdb.CheckTopK(k); err != nil {
		return nil, err
	}
	if len(alphas) >= 2 && gridForSweep(alphas) {
		return v.TopKPRFeSweep(ctx, alphas, k)
	}
	return v.topKPRFeParallelCtx(ctx, alphas, k)
}

// QueryPRFeCombo evaluates Σ_l u_l·Υ_{α_l} with the fused single-pass
// kernel. Identical to PRFeCombo on the term sequence (u_l, α_l).
func (v *Prepared) QueryPRFeCombo(ctx context.Context, us, alphas []complex128) ([]complex128, error) {
	if err := pdb.CheckCombo(us, alphas); err != nil {
		return nil, err
	}
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	terms := make([]ExpTerm, len(us))
	for i := range us {
		terms[i] = ExpTerm{U: us[i], Alpha: alphas[i]}
	}
	if p := par.Limit(ctx); p > 0 {
		return v.PRFeComboSharded(terms, p), nil
	}
	return v.PRFeCombo(terms), nil
}

// QueryPRF evaluates Υω for an arbitrary weight function. Identical to PRF.
func (v *Prepared) QueryPRF(ctx context.Context, omega func(t pdb.Tuple, rank int) float64) ([]float64, error) {
	if omega == nil {
		return nil, pdb.ErrNilOmega
	}
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	return v.PRF(omega), nil
}

// QueryPRFOmega evaluates the PRFω(h) family for a weight vector. Identical
// to PRFOmega.
func (v *Prepared) QueryPRFOmega(ctx context.Context, w []float64) ([]float64, error) {
	if err := pdb.CheckWeights(w); err != nil {
		return nil, err
	}
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	if p := par.Limit(ctx); p > 0 {
		return v.PRFOmegaSharded(w, p), nil
	}
	return v.PRFOmega(w), nil
}

// QueryPTh evaluates Pr(r(t) ≤ h). Identical to PTh.
func (v *Prepared) QueryPTh(ctx context.Context, h int) ([]float64, error) {
	if err := pdb.CheckDepth(h); err != nil {
		return nil, err
	}
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	if p := par.Limit(ctx); p > 0 {
		return v.PThSharded(h, p), nil
	}
	return v.PTh(h), nil
}

// QueryERank returns E[r(t)] per tuple (lower is better). Identical to
// ERank / baselines.ERankPrepared.
func (v *Prepared) QueryERank(ctx context.Context) ([]float64, error) {
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	if p := par.Limit(ctx); p > 0 {
		return v.ERankSharded(p), nil
	}
	return v.ERank(), nil
}

// QueryExpectedRank returns the consensus expected rank (absent → |pw|+1)
// per tuple. Identical to ExpectedRank; both dispatch arms are bit-for-bit
// equal (the sharded ERank kernel is exact at every worker count).
func (v *Prepared) QueryExpectedRank(ctx context.Context) ([]float64, error) {
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	if p := par.Limit(ctx); p > 0 {
		return v.ExpectedRankSharded(p), nil
	}
	return v.ExpectedRank(), nil
}

// QueryMedianRank returns the consensus median rank per tuple. Identical to
// MedianRank. The parallelism cap is accepted but does not change dispatch:
// the kernel's early-exit cumulative scan has no sharded variant, and the
// cap is an upper bound, not a mandate.
func (v *Prepared) QueryMedianRank(ctx context.Context) ([]float64, error) {
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	return v.MedianRank(), nil
}
