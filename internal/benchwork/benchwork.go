// Package benchwork defines the repeated-query benchmark workloads shared
// by the root bench suite (bench_test.go) and cmd/bench, so the BENCH_N.json
// perf trajectory measures exactly what `go test -bench` measures. Each
// workload function performs one operation ("op" in ns/op terms); callers
// loop it b.N times.
package benchwork

import (
	"math/rand"

	"repro/internal/andxor"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dftapprox"
	"repro/internal/junction"
	"repro/internal/pdb"
)

// DatasetSeed fixes the workload dataset so runs are comparable across PRs.
const DatasetSeed = 31

// Dataset returns the standard workload dataset: IIP-like, unsorted — what
// a fresh query workload sees before any preparation.
func Dataset(n int) *pdb.Dataset { return datagen.IIPLike(n, DatasetSeed) }

// Grid returns the m-point α grid in (0, 1) used by the spectrum sweeps,
// in both real and complex form.
func Grid(m int) ([]float64, []complex128) {
	alphas := make([]float64, m)
	calphas := make([]complex128, m)
	for i := range alphas {
		alphas[i] = float64(i+1) / float64(m+1)
		calphas[i] = complex(alphas[i], 0)
	}
	return alphas, calphas
}

// Terms returns the L-term DFT approximation of PT(1000) used by the combo
// workloads.
func Terms(l int) []core.ExpTerm {
	ts := dftapprox.TermsForRankWeights(
		dftapprox.Approximate(dftapprox.Step(1000), 1000, dftapprox.DefaultOptions(l)))
	out := make([]core.ExpTerm, len(ts))
	for i, t := range ts {
		out[i] = core.ExpTerm{U: t.U, Alpha: t.Alpha}
	}
	return out
}

// SpectrumOneShot evaluates PRFeLog at every grid point through the
// one-shot path (each query rebuilds and re-sorts a fresh view).
func SpectrumOneShot(d *pdb.Dataset, calphas []complex128) {
	for _, a := range calphas {
		core.PRFeLog(d, a)
	}
}

// SpectrumPrepared evaluates the same sweep preparing once.
func SpectrumPrepared(d *pdb.Dataset, calphas []complex128) {
	v := core.Prepare(d)
	for _, a := range calphas {
		v.PRFeLog(a)
	}
}

// SpectrumParallel evaluates the sweep with the parallel batch API.
func SpectrumParallel(d *pdb.Dataset, calphas []complex128) {
	core.Prepare(d).PRFeLogBatch(calphas)
}

// RankedOneShot produces a full PRFe ranking per grid point, one-shot.
func RankedOneShot(d *pdb.Dataset, alphas []float64) {
	for _, a := range alphas {
		core.RankPRFe(d, a)
	}
}

// RankedPrepared produces the rankings over one prepared view.
func RankedPrepared(d *pdb.Dataset, alphas []float64) {
	v := core.Prepare(d)
	for _, a := range alphas {
		v.RankPRFe(a)
	}
}

// RankedParallel produces the rankings with the per-α parallel batch path
// (the non-kinetic arm of the dispatcher).
func RankedParallel(d *pdb.Dataset, alphas []float64) {
	core.Prepare(d).RankPRFeBatchParallel(alphas)
}

// RankedKinetic produces the rankings with the kinetic sweep: one sort at
// the first grid point, then the α axis is walked by adjacent-pair
// crossings with a certification pass per grid point (the RankPRFeBatch
// dispatcher's grid arm).
func RankedKinetic(d *pdb.Dataset, alphas []float64) {
	core.Prepare(d).RankPRFeSweep(alphas)
}

// CrossingPairs returns a deterministic set of sorted-position pairs for
// the crossing-point workloads, spread across span lengths. Datasets too
// small to form a pair yield an empty set.
func CrossingPairs(n, count int) [][2]int {
	if n < 2 {
		return nil
	}
	maxSpan := n / 4
	if maxSpan < 1 {
		maxSpan = 1
	}
	rng := rand.New(rand.NewSource(DatasetSeed + 7))
	pairs := make([][2]int, 0, count)
	for len(pairs) < count {
		i := rng.Intn(n)
		j := i + 1 + rng.Intn(maxSpan)
		if j >= n {
			continue
		}
		pairs = append(pairs, [2]int{i, j})
	}
	return pairs
}

// CrossingIncremental exercises the optimized CrossingPoint solver
// (hoisted α-independent terms, safeguarded Newton over a single
// incremental pass) on every pair.
func CrossingIncremental(v *core.Prepared, pairs [][2]int) {
	for _, p := range pairs {
		v.CrossingPoint(p[0], p[1])
	}
}

// CrossingReference exercises the pre-optimization bisection reference on
// every pair.
func CrossingReference(v *core.Prepared, pairs [][2]int) {
	for _, p := range pairs {
		v.CrossingPointReference(p[0], p[1])
	}
}

// ---------------------------------------------------------------------------
// Correlated-data workloads (and/xor trees, junction chains).
// ---------------------------------------------------------------------------

// XTupleTree returns the Syn-XOR correlated workload: an x-tuple and/xor
// tree with n leaves.
func XTupleTree(n int) *andxor.Tree {
	t, err := datagen.SynXOR(n, DatasetSeed)
	if err != nil {
		panic(err)
	}
	return t
}

// DeepTree returns the Syn-HIGH correlated workload: a deep, highly
// correlated and/xor tree with n leaves.
func DeepTree(n int) *andxor.Tree {
	t, err := datagen.SynHIGH(n, DatasetSeed)
	if err != nil {
		panic(err)
	}
	return t
}

// TreePRFe evaluates PRFe(0.95) on a correlated tree with the incremental
// Algorithm 3 backend (one op).
func TreePRFe(t *andxor.Tree) {
	andxor.PRFeValues(t, complex(0.95, 0))
}

// TreeCombo evaluates an L-term PRFe combination on a correlated tree.
func TreeCombo(t *andxor.Tree, terms []core.ExpTerm) {
	us := make([]complex128, len(terms))
	alphas := make([]complex128, len(terms))
	for i, term := range terms {
		us[i], alphas[i] = term.U, term.Alpha
	}
	andxor.PRFeCombo(t, us, alphas)
}

// MarkovChain builds a calibrated n-variable Markov chain: marginals and
// transitions are seeded, and each pairwise joint is constructed from the
// running marginal so adjacent tables agree by construction. A chain needs
// at least two variables, so smaller n is clamped to 2.
func MarkovChain(n int) *junction.Chain {
	if n < 2 {
		n = 2
	}
	rng := rand.New(rand.NewSource(DatasetSeed + 13))
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = rng.Float64() * 10000
	}
	pair := make([][2][2]float64, n-1)
	m := 0.6 // running Pr(Y_j = 1)
	for j := 0; j < n-1; j++ {
		q1 := 0.2 + 0.6*rng.Float64() // Pr(Y_{j+1}=1 | Y_j=1)
		q0 := 0.2 + 0.6*rng.Float64() // Pr(Y_{j+1}=1 | Y_j=0)
		pair[j] = [2][2]float64{
			{(1 - m) * (1 - q0), (1 - m) * q0},
			{m * (1 - q1), m * q1},
		}
		m = m*q1 + (1-m)*q0
	}
	c, err := junction.NewChain(scores, pair)
	if err != nil {
		panic(err)
	}
	return c
}

// ChainPRFe evaluates PRFe(0.95) on a Markov chain with the Section 9.3
// partial-sum DP backend (one op). The DP is cubic in n, so chain
// workloads stay small.
func ChainPRFe(c *junction.Chain) {
	junction.PRFeChain(c, complex(0.95, 0))
}

// ComboMultiPass evaluates the PRFe combination with the pre-fusion
// one-scan-per-term reference kernel.
func ComboMultiPass(v *core.Prepared, terms []core.ExpTerm) {
	core.PRFeComboMultiPass(v, terms)
}

// ComboFused evaluates the combination with the fused single-pass kernel.
func ComboFused(v *core.Prepared, terms []core.ExpTerm) {
	v.PRFeCombo(terms)
}

// ComboParallel evaluates the combination with the parallel-by-term kernel.
func ComboParallel(v *core.Prepared, terms []core.ExpTerm) {
	v.PRFeComboParallel(terms)
}

// ComboOneShot evaluates the combination through the one-shot path
// (prepare per call).
func ComboOneShot(d *pdb.Dataset, terms []core.ExpTerm) {
	core.PRFeCombo(d, terms)
}
