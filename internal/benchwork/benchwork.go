// Package benchwork defines the repeated-query benchmark workloads shared
// by the root bench suite (bench_test.go) and cmd/bench, so the BENCH_N.json
// perf trajectory measures exactly what `go test -bench` measures. Each
// workload function performs one operation ("op" in ns/op terms); callers
// loop it b.N times.
package benchwork

import (
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dftapprox"
	"repro/internal/pdb"
)

// DatasetSeed fixes the workload dataset so runs are comparable across PRs.
const DatasetSeed = 31

// Dataset returns the standard workload dataset: IIP-like, unsorted — what
// a fresh query workload sees before any preparation.
func Dataset(n int) *pdb.Dataset { return datagen.IIPLike(n, DatasetSeed) }

// Grid returns the m-point α grid in (0, 1) used by the spectrum sweeps,
// in both real and complex form.
func Grid(m int) ([]float64, []complex128) {
	alphas := make([]float64, m)
	calphas := make([]complex128, m)
	for i := range alphas {
		alphas[i] = float64(i+1) / float64(m+1)
		calphas[i] = complex(alphas[i], 0)
	}
	return alphas, calphas
}

// Terms returns the L-term DFT approximation of PT(1000) used by the combo
// workloads.
func Terms(l int) []core.ExpTerm {
	ts := dftapprox.TermsForRankWeights(
		dftapprox.Approximate(dftapprox.Step(1000), 1000, dftapprox.DefaultOptions(l)))
	out := make([]core.ExpTerm, len(ts))
	for i, t := range ts {
		out[i] = core.ExpTerm{U: t.U, Alpha: t.Alpha}
	}
	return out
}

// SpectrumOneShot evaluates PRFeLog at every grid point through the
// one-shot path (each query rebuilds and re-sorts a fresh view).
func SpectrumOneShot(d *pdb.Dataset, calphas []complex128) {
	for _, a := range calphas {
		core.PRFeLog(d, a)
	}
}

// SpectrumPrepared evaluates the same sweep preparing once.
func SpectrumPrepared(d *pdb.Dataset, calphas []complex128) {
	v := core.Prepare(d)
	for _, a := range calphas {
		v.PRFeLog(a)
	}
}

// SpectrumParallel evaluates the sweep with the parallel batch API.
func SpectrumParallel(d *pdb.Dataset, calphas []complex128) {
	core.Prepare(d).PRFeLogBatch(calphas)
}

// RankedOneShot produces a full PRFe ranking per grid point, one-shot.
func RankedOneShot(d *pdb.Dataset, alphas []float64) {
	for _, a := range alphas {
		core.RankPRFe(d, a)
	}
}

// RankedPrepared produces the rankings over one prepared view.
func RankedPrepared(d *pdb.Dataset, alphas []float64) {
	v := core.Prepare(d)
	for _, a := range alphas {
		v.RankPRFe(a)
	}
}

// RankedParallel produces the rankings with the parallel batch API.
func RankedParallel(d *pdb.Dataset, alphas []float64) {
	core.Prepare(d).RankPRFeBatch(alphas)
}

// ComboMultiPass evaluates the PRFe combination with the pre-fusion
// one-scan-per-term reference kernel.
func ComboMultiPass(v *core.Prepared, terms []core.ExpTerm) {
	core.PRFeComboMultiPass(v, terms)
}

// ComboFused evaluates the combination with the fused single-pass kernel.
func ComboFused(v *core.Prepared, terms []core.ExpTerm) {
	v.PRFeCombo(terms)
}

// ComboParallel evaluates the combination with the parallel-by-term kernel.
func ComboParallel(v *core.Prepared, terms []core.ExpTerm) {
	v.PRFeComboParallel(terms)
}

// ComboOneShot evaluates the combination through the one-shot path
// (prepare per call).
func ComboOneShot(d *pdb.Dataset, terms []core.ExpTerm) {
	core.PRFeCombo(d, terms)
}
