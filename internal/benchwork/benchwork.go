// Package benchwork defines the repeated-query benchmark workloads shared
// by the root bench suite (bench_test.go) and cmd/bench, so the BENCH_N.json
// perf trajectory measures exactly what `go test -bench` measures. Each
// workload function performs one operation ("op" in ns/op terms); callers
// loop it b.N times.
package benchwork

//lint:file-allow ctxflow benchmark drivers are context roots: the bench run owns its lifetime and has no caller to receive a deadline from
//lint:file-allow errdiscipline bench fixtures fail fast: a broken fixture must abort the run rather than record a bogus measurement

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"

	"repro/internal/andxor"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dftapprox"
	"repro/internal/engine"
	"repro/internal/junction"
	"repro/internal/pdb"
	"repro/internal/serve"
)

// DatasetSeed fixes the workload dataset so runs are comparable across PRs.
const DatasetSeed = 31

// Dataset returns the standard workload dataset: IIP-like, unsorted — what
// a fresh query workload sees before any preparation.
func Dataset(n int) *pdb.Dataset { return datagen.IIPLike(n, DatasetSeed) }

// Grid returns the m-point α grid in (0, 1) used by the spectrum sweeps,
// in both real and complex form.
func Grid(m int) ([]float64, []complex128) {
	alphas := make([]float64, m)
	calphas := make([]complex128, m)
	for i := range alphas {
		alphas[i] = float64(i+1) / float64(m+1)
		calphas[i] = complex(alphas[i], 0)
	}
	return alphas, calphas
}

// Terms returns the L-term DFT approximation of PT(1000) used by the combo
// workloads.
func Terms(l int) []core.ExpTerm {
	ts := dftapprox.TermsForRankWeights(
		dftapprox.Approximate(dftapprox.Step(1000), 1000, dftapprox.DefaultOptions(l)))
	out := make([]core.ExpTerm, len(ts))
	for i, t := range ts {
		out[i] = core.ExpTerm{U: t.U, Alpha: t.Alpha}
	}
	return out
}

// SpectrumOneShot evaluates PRFeLog at every grid point through the
// one-shot path (each query rebuilds and re-sorts a fresh view).
func SpectrumOneShot(d *pdb.Dataset, calphas []complex128) {
	for _, a := range calphas {
		core.PRFeLog(d, a)
	}
}

// SpectrumPrepared evaluates the same sweep preparing once.
func SpectrumPrepared(d *pdb.Dataset, calphas []complex128) {
	v := core.Prepare(d)
	for _, a := range calphas {
		v.PRFeLog(a)
	}
}

// SpectrumParallel evaluates the sweep with the parallel batch API.
func SpectrumParallel(d *pdb.Dataset, calphas []complex128) {
	core.Prepare(d).PRFeLogBatch(calphas)
}

// RankedOneShot produces a full PRFe ranking per grid point, one-shot.
func RankedOneShot(d *pdb.Dataset, alphas []float64) {
	for _, a := range alphas {
		core.RankPRFe(d, a)
	}
}

// RankedPrepared produces the rankings over one prepared view.
func RankedPrepared(d *pdb.Dataset, alphas []float64) {
	v := core.Prepare(d)
	for _, a := range alphas {
		v.RankPRFe(a)
	}
}

// RankedParallel produces the rankings with the per-α parallel batch path
// (the non-kinetic arm of the dispatcher).
func RankedParallel(d *pdb.Dataset, alphas []float64) {
	core.Prepare(d).RankPRFeBatchParallel(alphas)
}

// RankedKinetic produces the rankings with the kinetic sweep: one sort at
// the first grid point, then the α axis is walked by adjacent-pair
// crossings with a certification pass per grid point (the RankPRFeBatch
// dispatcher's grid arm).
func RankedKinetic(d *pdb.Dataset, alphas []float64) {
	if _, err := core.Prepare(d).RankPRFeSweep(context.Background(), alphas); err != nil {
		panic(err)
	}
}

// CrossingPairs returns a deterministic set of sorted-position pairs for
// the crossing-point workloads, spread across span lengths. Datasets too
// small to form a pair yield an empty set.
func CrossingPairs(n, count int) [][2]int {
	if n < 2 {
		return nil
	}
	maxSpan := n / 4
	if maxSpan < 1 {
		maxSpan = 1
	}
	rng := rand.New(rand.NewSource(DatasetSeed + 7))
	pairs := make([][2]int, 0, count)
	for len(pairs) < count {
		i := rng.Intn(n)
		j := i + 1 + rng.Intn(maxSpan)
		if j >= n {
			continue
		}
		pairs = append(pairs, [2]int{i, j})
	}
	return pairs
}

// CrossingIncremental exercises the optimized CrossingPoint solver
// (hoisted α-independent terms, safeguarded Newton over a single
// incremental pass) on every pair.
func CrossingIncremental(v *core.Prepared, pairs [][2]int) {
	for _, p := range pairs {
		v.CrossingPoint(p[0], p[1])
	}
}

// CrossingReference exercises the pre-optimization bisection reference on
// every pair.
func CrossingReference(v *core.Prepared, pairs [][2]int) {
	for _, p := range pairs {
		v.CrossingPointReference(p[0], p[1])
	}
}

// ---------------------------------------------------------------------------
// Correlated-data workloads (and/xor trees, junction chains).
// ---------------------------------------------------------------------------

// XTupleTree returns the Syn-XOR correlated workload: an x-tuple and/xor
// tree with n leaves.
func XTupleTree(n int) *andxor.Tree {
	t, err := datagen.SynXOR(n, DatasetSeed)
	if err != nil {
		panic(err)
	}
	return t
}

// DeepTree returns the Syn-HIGH correlated workload: a deep, highly
// correlated and/xor tree with n leaves.
func DeepTree(n int) *andxor.Tree {
	t, err := datagen.SynHIGH(n, DatasetSeed)
	if err != nil {
		panic(err)
	}
	return t
}

// TreePRFe evaluates PRFe(0.95) on a correlated tree with the incremental
// Algorithm 3 backend, one-shot: each op pays the leaf sort and the
// evaluation buffers (one op).
func TreePRFe(t *andxor.Tree) {
	andxor.PRFeValues(t, complex(0.95, 0))
}

// comboTerms splits ExpTerms into the parallel u/α slices the tree combo
// APIs take.
func comboTerms(terms []core.ExpTerm) (us, alphas []complex128) {
	us = make([]complex128, len(terms))
	alphas = make([]complex128, len(terms))
	for i, term := range terms {
		us[i], alphas[i] = term.U, term.Alpha
	}
	return us, alphas
}

// TreeCombo evaluates an L-term PRFe combination on a correlated tree
// through the one-shot path (prepare per call).
func TreeCombo(t *andxor.Tree, terms []core.ExpTerm) {
	us, alphas := comboTerms(terms)
	andxor.PRFeCombo(t, us, alphas)
}

// PrepareTree builds the prepared view of a tree — hoisted out of the
// prepared-combo workload so the op measures evaluation, not preparation,
// mirroring how combo/fused holds one core.Prepared.
func PrepareTree(t *andxor.Tree) *andxor.PreparedTree { return andxor.PrepareTree(t) }

// TreeComboPrepared evaluates the combination over an already-prepared tree:
// the sort and the Algorithm 3 state are amortized across the terms.
func TreeComboPrepared(pt *andxor.PreparedTree, terms []core.ExpTerm) {
	us, alphas := comboTerms(terms)
	pt.PRFeCombo(us, alphas)
}

// TreeSweepOneShot evaluates PRFe at every grid point through the per-query
// path: each α re-prepares the tree (sort + buffers), exactly what a naive
// α sweep on correlated data costs.
func TreeSweepOneShot(t *andxor.Tree, calphas []complex128) {
	for _, a := range calphas {
		andxor.PRFeValues(t, a)
	}
	// (one op = the whole grid)
}

// TreeSweepPrepared evaluates the same sweep preparing once: the batch API
// reuses the cached leaf order and pooled evaluation state across the grid.
func TreeSweepPrepared(t *andxor.Tree, calphas []complex128) {
	andxor.PrepareTree(t).PRFeBatch(calphas)
}

// MarkovChain builds the standard calibrated n-variable Markov-chain
// workload (datagen.MarkovChainLike at the shared benchmark seed).
func MarkovChain(n int) *junction.Chain {
	return datagen.MarkovChainLike(n, DatasetSeed+13)
}

// ChainPRFe evaluates PRFe(0.95) on a Markov chain (one op). Since the
// prepared engine this is the product-tree path, O(n log n) per α; the
// pre-optimization Θ(n³) DP arm is ChainPRFeDP.
func ChainPRFe(c *junction.Chain) {
	junction.PRFeChain(c, complex(0.95, 0))
}

// ChainPRFeDP evaluates the same query with the Section 9.3 partial-sum DP
// backend — the pre-optimization reference (cubic in n, so chain workloads
// stay small).
func ChainPRFeDP(c *junction.Chain) {
	junction.PRFeChainDP(c, complex(0.95, 0))
}

// ChainSweepPrepared evaluates PRFe at every grid point over one prepared
// chain: the conditional tables and score order are cached and the grid
// fans out over pooled product trees.
func ChainSweepPrepared(c *junction.Chain, calphas []complex128) {
	junction.PrepareChain(c).PRFeBatch(calphas)
}

// ChainNetwork converts the chain into a general Markov network for the
// junction-tree workloads.
func ChainNetwork(c *junction.Chain) *junction.Network {
	net, err := c.Network()
	if err != nil {
		panic(err)
	}
	return net
}

// NetworkSweepOneShot evaluates PRFe at every grid point on a general
// network through the per-query path: each α re-triangulates, re-calibrates
// and re-runs the full partial-sum DP.
func NetworkSweepOneShot(net *junction.Network, calphas []complex128) {
	for _, a := range calphas {
		if _, err := junction.PRFe(net, a); err != nil {
			panic(err)
		}
	}
}

// NetworkSweepPrepared evaluates the same sweep preparing once: one
// junction-tree build, one DP pass, then a cheap fold per grid point.
func NetworkSweepPrepared(net *junction.Network, calphas []complex128) {
	pn, err := junction.PrepareNetwork(net)
	if err != nil {
		panic(err)
	}
	pn.PRFeBatch(calphas)
}

// ---------------------------------------------------------------------------
// Unified-engine workloads: ONE generic body serves all four backends
// through Engine dispatch, replacing the former per-backend sweep
// specializations, and is measured against the direct prepared-view calls
// to certify the dispatch overhead.
// ---------------------------------------------------------------------------

// NewEngine wraps any prepared backend in the unified engine — hoisted out
// of the benchmark loops so ops measure dispatch + evaluation, not
// preparation.
func NewEngine(r engine.Ranker) *engine.Engine { return engine.New(r) }

// PrepareChain builds the prepared chain view (hoisted like PrepareTree).
func PrepareChain(c *junction.Chain) *junction.PreparedChain { return junction.PrepareChain(c) }

// PrepareNetwork builds the prepared network view.
func PrepareNetwork(net *junction.Network) *junction.PreparedNetwork {
	pn, err := junction.PrepareNetwork(net)
	if err != nil {
		panic(err)
	}
	return pn
}

// EngineRankSweep produces full PRFe rankings over an α grid through
// Engine.RankBatch — the backend-agnostic arm (one op = the whole grid).
func EngineRankSweep(e *engine.Engine, alphas []float64) {
	if _, err := e.RankBatch(context.Background(), engine.Query{
		Metric: engine.MetricPRFe, Alphas: alphas, Output: engine.OutputRanking,
	}); err != nil {
		panic(err)
	}
}

// EngineTopKSweep answers PRFe top-k over an α grid through
// Engine.RankBatch.
func EngineTopKSweep(e *engine.Engine, alphas []float64, k int) {
	if _, err := e.RankBatch(context.Background(), engine.Query{
		Metric: engine.MetricPRFe, Alphas: alphas, Output: engine.OutputTopK, K: k,
	}); err != nil {
		panic(err)
	}
}

// EngineValueSweep evaluates PRFe values over an α grid through
// Engine.RankBatch.
func EngineValueSweep(e *engine.Engine, alphas []float64) {
	if _, err := e.RankBatch(context.Background(), engine.Query{
		Metric: engine.MetricPRFe, Alphas: alphas, Output: engine.OutputValues,
	}); err != nil {
		panic(err)
	}
}

// EngineSemanticRanking answers one consensus-semantics ranking query —
// Global-Topk, Expected-Rank or Median-Rank — through Engine.Rank, at the
// given shard parallelism (0 = scalar path). One op = one full ranking.
func EngineSemanticRanking(e *engine.Engine, m engine.Metric, k, par int) {
	q := engine.Query{Metric: m, Output: engine.OutputRanking, Parallelism: par}
	if m == engine.MetricGlobalTopk {
		q.K = k
	}
	if _, err := e.Rank(context.Background(), q); err != nil {
		panic(err)
	}
}

// DirectRankSweep is the direct prepared-view call EngineRankSweep is
// measured against (same kernel, no engine dispatch).
func DirectRankSweep(v *core.Prepared, alphas []float64) {
	v.RankPRFeBatch(alphas)
}

// DirectTopKSweep is the direct arm of EngineTopKSweep.
func DirectTopKSweep(v *core.Prepared, alphas []float64, k int) {
	v.TopKPRFeBatch(alphas, k)
}

// ---------------------------------------------------------------------------
// Serving-layer workloads (PR 5): the repeated-dashboard query mix behind
// the engine-level result cache, and HTTP round trips through internal/serve.
// ---------------------------------------------------------------------------

// DashboardQueries returns the repeated-dashboard workload: the single-shot
// query mix a monitoring dashboard re-issues on every refresh — PRFe top-k
// boards at several α, a full ranking, a PT(h) board and an expected-rank
// board.
func DashboardQueries(k int) []engine.Query {
	return []engine.Query{
		{Metric: engine.MetricPRFe, Alpha: 0.95, Output: engine.OutputTopK, K: k},
		{Metric: engine.MetricPRFe, Alpha: 0.5, Output: engine.OutputTopK, K: k},
		{Metric: engine.MetricPRFe, Alpha: 0.99, Output: engine.OutputRanking},
		{Metric: engine.MetricPTh, H: k, Output: engine.OutputRanking},
		{Metric: engine.MetricERank, Output: engine.OutputTopK, K: k},
	}
}

// DashboardSweep returns the dashboard's spectrum panel: a ranked PRFe
// batch over a monotone α grid.
func DashboardSweep(gridPoints int) engine.Query {
	alphas, _ := Grid(gridPoints)
	return engine.Query{Metric: engine.MetricPRFe, Alphas: alphas, Output: engine.OutputRanking}
}

// EngineDashboard renders one dashboard refresh through the uncached
// engine: every panel re-evaluates (one op = all panels + the sweep).
func EngineDashboard(e *engine.Engine, qs []engine.Query, sweep engine.Query) {
	ctx := context.Background()
	for _, q := range qs {
		if _, err := e.Rank(ctx, q); err != nil {
			panic(err)
		}
	}
	if _, err := e.RankBatch(ctx, sweep); err != nil {
		panic(err)
	}
}

// CachedDashboard renders the same refresh through the cache-wrapped
// engine: after the first refresh every panel answers from the canonical
// (Query → Result) cache.
func CachedDashboard(ce *engine.CachedEngine, qs []engine.Query, sweep engine.Query) {
	ctx := context.Background()
	for _, q := range qs {
		if _, err := ce.Rank(ctx, q); err != nil {
			panic(err)
		}
	}
	if _, err := ce.RankBatch(ctx, sweep); err != nil {
		panic(err)
	}
}

// NewCachedEngine wraps an engine in the engine-level result cache —
// hoisted like NewEngine so ops measure lookups, not construction.
func NewCachedEngine(e *engine.Engine, capacity int) *engine.CachedEngine {
	return engine.NewCached(e, capacity)
}

// StartServeFixture starts an in-process HTTP server over the given
// engines, with per-dataset caching at the given capacity (negative
// disables) and the default wire path (byte cache + single-flight on).
// Callers must Close the returned server.
func StartServeFixture(engines map[string]*engine.Engine, cacheCapacity int) *httptest.Server {
	return StartServeFixtureOpts(engines, serve.Options{CacheCapacity: cacheCapacity})
}

// StartServeFixtureOpts is StartServeFixture with full control of the serve
// options — the bench arms use it to isolate the byte cache and the
// single-flight latch.
func StartServeFixtureOpts(engines map[string]*engine.Engine, opts serve.Options) *httptest.Server {
	s := serve.New(opts)
	for name, e := range engines {
		if err := s.AddDataset(name, e); err != nil {
			panic(err)
		}
	}
	return httptest.NewServer(s)
}

// ServeRankBody marshals the /rank request for a PRFe top-k panel.
func ServeRankBody(dataset string, alpha float64, k int) []byte {
	return mustJSON(serve.RankRequest{Dataset: dataset, Query: serve.WireQuery{
		Metric: "prfe", Alpha: alpha, Output: "topk", K: k,
	}})
}

// ServeBatchBody marshals the /rankbatch request for a ranked α sweep.
func ServeBatchBody(dataset string, gridPoints int) []byte {
	alphas, _ := Grid(gridPoints)
	return mustJSON(serve.RankRequest{Dataset: dataset, Query: serve.WireQuery{
		Metric: "prfe", Alphas: alphas, Output: "ranking",
	}})
}

// ServeBatchStreamBody marshals the streamed variant of the ranked α-sweep
// request ("stream": true — chunked per-grid-point emission).
func ServeBatchStreamBody(dataset string, gridPoints int) []byte {
	alphas, _ := Grid(gridPoints)
	return mustJSON(serve.RankRequest{Dataset: dataset, Query: serve.WireQuery{
		Metric: "prfe", Alphas: alphas, Output: "ranking",
	}, Stream: true})
}

// ServeBatchStormBody marshals a ranked-sweep request whose α grid is
// unique per round, so every cold-storm round presents a key neither cache
// has seen: the grid is shifted by a round-scaled offset far below any real
// grid spacing but well above float64 rounding at these magnitudes.
func ServeBatchStormBody(dataset string, gridPoints, round int) []byte {
	alphas, _ := Grid(gridPoints)
	for i := range alphas {
		alphas[i] += float64(round+1) * 1e-9
	}
	return mustJSON(serve.RankRequest{Dataset: dataset, Query: serve.WireQuery{
		Metric: "prfe", Alphas: alphas, Output: "ranking",
	}})
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// ServeRoundTrip posts one request body and drains the response — one op of
// the serve/* workloads. Non-200 answers panic (a benchmark must not
// silently measure error paths).
func ServeRoundTrip(c *http.Client, url string, body []byte) {
	// Pin the identity encoding: without this net/http silently negotiates
	// gzip and inflates the body behind io.Copy, so every "plain" arm would
	// actually measure compress+inflate (and lose comparability with the
	// BENCH_5 serve arms). The gzip wire is measured by ServeRoundTripGzip.
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept-Encoding", "identity")
	resp, err := c.Do(req)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		panic(fmt.Sprintf("serve round trip: status %d: %s", resp.StatusCode, data))
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		panic(err)
	}
}

// ServeRoundTripGzip is ServeRoundTrip with gzip negotiated: the explicit
// Accept-Encoding header disables net/http's transparent decompression, so
// the op measures the compressed bytes actually crossing the wire.
func ServeRoundTripGzip(c *http.Client, url string, body []byte) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := c.Do(req)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		panic(fmt.Sprintf("serve gzip round trip: status %d: %s", resp.StatusCode, data))
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		panic(err)
	}
}

// ComboMultiPass evaluates the PRFe combination with the pre-fusion
// one-scan-per-term reference kernel.
func ComboMultiPass(v *core.Prepared, terms []core.ExpTerm) {
	core.PRFeComboMultiPass(v, terms)
}

// ComboFused evaluates the combination with the fused single-pass kernel.
func ComboFused(v *core.Prepared, terms []core.ExpTerm) {
	v.PRFeCombo(terms)
}

// ComboParallel evaluates the combination with the parallel-by-term kernel.
func ComboParallel(v *core.Prepared, terms []core.ExpTerm) {
	v.PRFeComboParallel(terms)
}

// ComboOneShot evaluates the combination through the one-shot path
// (prepare per call).
func ComboOneShot(d *pdb.Dataset, terms []core.ExpTerm) {
	core.PRFeCombo(d, terms)
}
