package benchwork

//lint:file-allow ctxflow benchmark drivers are context roots: the bench run owns its lifetime and has no caller to receive a deadline from
//lint:file-allow errdiscipline bench fixtures fail fast: a broken fixture must abort the run rather than record a bogus measurement

// Sharded-kernel workloads (PR 7): the PT(h) ladder (per-h scalar vs fused
// vs shard-parallel), the lane-split PRFe log kernel, the prefix-resumed
// ERank shards, the Parallelism-knob engine sweep and the Section 5.2
// learning loop. cmd/bench runs these at forced GOMAXPROCS settings to
// record the speedup-vs-cores trajectory.

import (
	"context"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/learn"
	"repro/internal/pdb"
	"repro/internal/serve"
)

// Ladder returns the PT(h) rung set {step, 2·step, …, count·step} used by
// the ladder workloads — the Figure 9 style depth sweep.
func Ladder(count, step int) []int {
	hs := make([]int, count)
	for i := range hs {
		hs[i] = (i + 1) * step
	}
	return hs
}

// LadderPerH answers every rung with the scalar per-h kernel: one full
// generating-function pass per h — the pre-sharding reference (one op = the
// whole ladder).
func LadderPerH(v *core.Prepared, hs []int) {
	for _, h := range hs {
		v.PTh(h)
	}
}

// LadderFused answers every rung from ONE generating-function pass at the
// deepest rung (truncation stability: coefficient j never depends on
// coefficients beyond j), bit-for-bit equal to LadderPerH.
func LadderFused(v *core.Prepared, hs []int) {
	v.PThLadder(hs)
}

// LadderSharded is the fused ladder evaluated shard-parallel: per-shard
// polynomial starts by truncated convolution, then independent spans.
func LadderSharded(v *core.Prepared, hs []int, workers int) {
	v.PThLadderSharded(hs, workers)
}

// PRFeLogScalar evaluates the log-domain PRFe kernel with the scalar
// reference (two logs + a complex magnitude per element).
func PRFeLogScalar(v *core.Prepared, alpha complex128) {
	v.PRFeLog(alpha)
}

// PRFeLogLanes evaluates the same kernel with the lane-split sharded path:
// renormalized (mantissa, exponent) running products in separate re/im
// float64 lanes, one math.Log per element.
func PRFeLogLanes(v *core.Prepared, alpha complex128, workers int) {
	v.PRFeLogSharded(alpha, workers)
}

// ERankScalar evaluates expected rank with the sequential prefix-sum kernel.
func ERankScalar(v *core.Prepared) {
	v.ERank()
}

// ERankShards evaluates expected rank shard-parallel, each shard resuming
// from the prepare-time exact prefix sums (bit-for-bit for every P).
func ERankShards(v *core.Prepared, workers int) {
	v.ERankSharded(workers)
}

// EngineParallelSweep is EngineRankSweep with the Query.Parallelism knob
// set: the engine routes each grid point onto the sharded kernels and caps
// the batch fan-out at par workers.
func EngineParallelSweep(e *engine.Engine, alphas []float64, par int) {
	if _, err := e.RankBatch(context.Background(), engine.Query{
		Metric: engine.MetricPRFe, Alphas: alphas, Output: engine.OutputRanking,
		Parallelism: par,
	}); err != nil {
		panic(err)
	}
}

// ServeRankBodyParallel marshals the /rank request for a PRFe top-k panel
// with the wire-level parallelism knob set (the server clamps it to its
// Options.MaxParallelism).
func ServeRankBodyParallel(dataset string, alpha float64, k, par int) []byte {
	return mustJSON(serve.RankRequest{Dataset: dataset, Query: serve.WireQuery{
		Metric: "prfe", Alpha: alpha, Output: "topk", K: k, Parallelism: par,
	}})
}

// ServeBatchBodyParallel marshals the /rankbatch ranked-sweep request with
// the parallelism knob set.
func ServeBatchBodyParallel(dataset string, gridPoints, par int) []byte {
	alphas, _ := Grid(gridPoints)
	return mustJSON(serve.RankRequest{Dataset: dataset, Query: serve.WireQuery{
		Metric: "prfe", Alphas: alphas, Output: "ranking", Parallelism: par,
	}})
}

// LearnUserRanking fabricates the deterministic "user" preference ranking
// for the learning workload: the PRFe(0.7) order of the sample, which the
// α search must recover.
func LearnUserRanking(v *core.Prepared) pdb.Ranking {
	return v.RankPRFe(0.7)
}

// LearnAlphaWorkload fits PRFe's α to the user ranking by the Section 5.2
// recursive grid refinement over the engine's Ranker interface — the
// learning workload arm (one op = the full multi-round search).
func LearnAlphaWorkload(v *core.Prepared, user pdb.Ranking, k, iters int) {
	if _, err := learn.LearnAlphaRanker(context.Background(), v, user, k, iters); err != nil {
		panic(err)
	}
}
