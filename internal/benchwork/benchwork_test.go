package benchwork

import "testing"

// The workload builders are driven by cmd/bench with user-supplied sizes;
// they must stay total for small n rather than panicking mid-benchmark.
func TestCrossingPairsSmallN(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 5, 100} {
		pairs := CrossingPairs(n, 8)
		if n < 2 && pairs != nil {
			t.Fatalf("n=%d: expected no pairs, got %v", n, pairs)
		}
		for _, p := range pairs {
			if p[0] < 0 || p[1] <= p[0] || p[1] >= n {
				t.Fatalf("n=%d: invalid pair %v", n, p)
			}
		}
	}
}

func TestMarkovChainCalibrated(t *testing.T) {
	c := MarkovChain(50)
	if c.Len() != 50 {
		t.Fatalf("chain length %d", c.Len())
	}
	// junction.NewChain validates calibration; reaching here means the
	// generated pairwise joints were consistent.
}
