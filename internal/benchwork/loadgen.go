package benchwork

//lint:file-allow errdiscipline bench fixtures fail fast: a broken fixture must abort the run rather than record a bogus measurement

// The load-generator arm of cmd/bench: a vegeta-style closed-loop driver
// that measures the serving layer the way a service is measured — QPS and
// latency percentiles under concurrency against a live HTTP server (the
// in-process fixture or an external -load-addr) — plus a cold-storm driver
// for the single-flight latch. ns/op benchmarks time one request at a time;
// these report what N concurrent dashboards actually see.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LoadRequest is one element of the load mix: a target URL and its POST
// body. Workers cycle through the mix round-robin.
type LoadRequest struct {
	URL  string
	Body []byte
}

// LoadResult is the measured outcome of one load run, emitted into the
// BENCH_N.json load section.
type LoadResult struct {
	Concurrency int     `json:"concurrency"`
	DurationS   float64 `json:"duration_s"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	QPS         float64 `json:"qps"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	// AllocPerReq is the client-process TotalAlloc delta divided by the
	// request count. Against the in-process fixture it includes the
	// server's allocations too — which is the interesting number: a
	// byte-cache hit should not allocate a fresh 1 MB body.
	AllocPerReq float64 `json:"alloc_bytes_per_req"`
}

// loadClient builds an http.Client that can actually sustain conc parallel
// connections (the default transport caps idle conns per host at 2, which
// would serialize the run on connection churn).
func loadClient(conc int) *http.Client {
	tr := &http.Transport{
		MaxIdleConns:        conc,
		MaxIdleConnsPerHost: conc,
	}
	return &http.Client{Transport: tr}
}

// RunLoad drives the request mix with conc closed-loop workers for roughly
// dur and reports throughput, latency percentiles and allocation rate.
func RunLoad(reqs []LoadRequest, conc int, dur time.Duration) LoadResult {
	if len(reqs) == 0 || conc <= 0 {
		return LoadResult{}
	}
	client := loadClient(conc)
	defer client.CloseIdleConnections()

	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	var errors atomic.Int64
	latencies := make([][]time.Duration, conc)
	deadline := time.Now().Add(dur)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			lats := make([]time.Duration, 0, 4096)
			for i := w; time.Now().Before(deadline); i++ {
				req := reqs[i%len(reqs)]
				t0 := time.Now()
				if err := postDrain(client, req.URL, req.Body); err != nil {
					errors.Add(1)
					continue
				}
				lats = append(lats, time.Since(t0))
			}
			latencies[w] = lats
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	all := make([]time.Duration, 0, 1<<16)
	for _, lats := range latencies {
		all = append(all, lats...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	n := int64(len(all))
	res := LoadResult{
		Concurrency: conc,
		DurationS:   elapsed.Seconds(),
		Requests:    n,
		Errors:      errors.Load(),
		P50MS:       percentileMS(all, 0.50),
		P95MS:       percentileMS(all, 0.95),
		P99MS:       percentileMS(all, 0.99),
	}
	if elapsed > 0 {
		res.QPS = float64(n) / elapsed.Seconds()
	}
	if n > 0 {
		res.AllocPerReq = float64(after.TotalAlloc-before.TotalAlloc) / float64(n)
	}
	return res
}

// percentileMS picks the p-quantile (nearest-rank) of sorted latencies, in
// milliseconds.
func percentileMS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// postDrain posts one body and drains the response, erroring on non-200.
func postDrain(c *http.Client, url string, body []byte) error {
	resp, err := c.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// ColdStorm fires rounds storms of conc simultaneous identical requests,
// each round against a key the server has never seen (bodyFor must return a
// fresh body per round), and returns the total wall time. Storm clients
// negotiate gzip explicitly (and drain the compressed bytes as they arrive,
// like any client pool that can inflate on its own): with the wire-layer
// single-flight latch one evaluate+encode+compress per round serves all
// conc callers; without it every caller pays the encode and compression —
// the ratio of the two wall times is the latch's speedup.
func ColdStorm(url string, conc, rounds int, bodyFor func(round int) []byte) time.Duration {
	client := loadClient(conc)
	defer client.CloseIdleConnections()
	start := time.Now()
	for round := 0; round < rounds; round++ {
		body := bodyFor(round)
		var wg sync.WaitGroup
		release := make(chan struct{})
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-release
				if err := postDrainGzip(client, url, body); err != nil {
					panic(fmt.Sprintf("cold storm: %v", err))
				}
			}()
		}
		close(release)
		wg.Wait()
	}
	return time.Since(start)
}

// postDrainGzip is postDrain with gzip negotiated explicitly, which also
// disables net/http's transparent inflate — the storm drains the bytes that
// actually cross the wire.
func postDrainGzip(c *http.Client, url string, body []byte) error {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}
