package pool

import "sync"

type ev struct{ acc []float64 }

func (e *ev) reset() {
	for i := range e.acc {
		e.acc[i] = 0
	}
}

// bare carries accumulator state but declares no reset method.
type bare struct{ acc []float64 }

var (
	evPool   = sync.Pool{New: func() any { return &ev{acc: make([]float64, 8)} }}
	barePool = sync.Pool{New: func() any { return &bare{acc: make([]float64, 8)} }}
)

// use is a clean round trip: reset at checkout, Put on the way out.
func use() float64 {
	e := evPool.Get().(*ev)
	e.reset()
	defer evPool.Put(e)
	return e.acc[0]
}

// leak checks out and never hands back.
func leak() float64 {
	e := evPool.Get().(*ev) // want "sync.Pool.Get without a Put"
	e.reset()
	return e.acc[0]
}

// stale skips the reset the type declares.
func stale() float64 {
	e := evPool.Get().(*ev) // want "checked out without calling reset"
	defer evPool.Put(e)
	return e.acc[0]
}

// unresettable pools a type that cannot be reset at all.
func unresettable() float64 {
	b := barePool.Get().(*bare) // want "carries slice/map state but has no reset method"
	defer barePool.Put(b)
	return b.acc[0]
}

// checkout is the getEval idiom: the value escapes to the caller, who
// owns the Put; reset happens here, at checkout.
func checkout() *ev {
	if e, ok := evPool.Get().(*ev); ok {
		e.reset()
		return e
	}
	return &ev{acc: make([]float64, 8)}
}

// putBack is the matching put* helper.
func putBack(e *ev) { evPool.Put(e) }

// viaHelper leans on the helper pair: no direct Get, nothing to flag.
func viaHelper() float64 {
	e := checkout()
	defer putBack(e)
	return e.acc[0]
}
