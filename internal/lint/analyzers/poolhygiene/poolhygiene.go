// Package poolhygiene guards the two ways a sync.Pool corrupts answers
// under load.
//
// Rule P1 (leak): a function that calls pool.Get must either hand the
// value back — a Put call (or put* checkout-helper call) somewhere in the
// function, deferred or not — or be a checkout helper itself, returning
// the pooled value to a caller who assumes the pairing.
//
// Rule P2 (stale state): when the checked-out value's type has a
// reset/Reset method, that method must be called in the same function
// before the value is reused. Resetting at checkout (the repo's getEval
// idiom) rather than at Put is what keeps a forgotten Put from turning
// into wrong probabilities: stale DP accumulators from the previous
// query are the failure mode, and they only show up under concurrency.
package poolhygiene

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolhygiene",
	Doc:  "sync.Pool.Get pairs with Put on all paths, and pooled state resets at checkout",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// getSite is one pool.Get call in a function.
type getSite struct {
	call *ast.CallExpr
	// bound is the variable the pooled value lands in, when the call is
	// the `v := pool.Get().(*T)` idiom; nil otherwise.
	bound types.Object
	// typ is the concrete type the value is asserted to, nil when the
	// value stays an any.
	typ types.Type
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	var gets []getSite
	putSeen := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := astq.Callee(info, call)
		switch {
		case isPoolMethod(callee, "Get"):
			gets = append(gets, getSite{call: call})
		case isPoolMethod(callee, "Put"):
			putSeen = true
		case callee != nil && strings.HasPrefix(callee.Name(), "put"):
			// Checkout-helper idiom: putEval(ev) owns the Pool.Put.
			putSeen = true
		}
		return true
	})
	if len(gets) == 0 {
		return
	}
	resolveBindings(info, fn.Body, gets)

	for i := range gets {
		g := &gets[i]
		if !putSeen && !escapes(info, fn, g) {
			pass.Reportf(g.call.Pos(),
				"%s: sync.Pool.Get without a Put on any path: the pool drains and every call allocates", fn.Name.Name)
		}
		if g.typ != nil {
			name := types.TypeString(g.typ, types.RelativeTo(pass.Pkg))
			switch m := resetMethod(g.typ); {
			case m == nil && hasAccumulators(g.typ):
				pass.Reportf(g.call.Pos(),
					"%s: pooled %s carries slice/map state but has no reset method: recycled accumulators leak the previous query's values under load",
					fn.Name.Name, name)
			case m != nil && !callsMethod(info, fn.Body, g.bound, m):
				pass.Reportf(g.call.Pos(),
					"%s: pooled %s checked out without calling %s: state from the previous query leaks into this one under load",
					fn.Name.Name, name, m.Name())
			}
		}
	}
}

// isPoolMethod reports whether fn is (*sync.Pool).Get / Put.
func isPoolMethod(fn *types.Func, name string) bool {
	return astq.IsMethodOf(fn, "sync", "Pool", name)
}

// resolveBindings fills bound/typ for Get calls of the form
// `v := pool.Get().(*T)`, `v, ok := pool.Get().(*T)`, or
// `v := pool.Get()`.
func resolveBindings(info *types.Info, body ast.Node, gets []getSite) {
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) < 1 || len(assign.Lhs) > 2 || len(assign.Rhs) != 1 {
			return true
		}
		lhs, ok := assign.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		rhs := ast.Unparen(assign.Rhs[0])
		var call *ast.CallExpr
		var typ types.Type
		if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
			call, _ = ast.Unparen(ta.X).(*ast.CallExpr)
			if tv, ok := info.Types[ta.Type]; ok {
				typ = tv.Type
			}
		} else {
			call, _ = rhs.(*ast.CallExpr)
		}
		if call == nil {
			return true
		}
		for i := range gets {
			if gets[i].call == call {
				if obj := info.Defs[lhs]; obj != nil {
					gets[i].bound = obj
				} else if obj := info.Uses[lhs]; obj != nil {
					gets[i].bound = obj
				}
				gets[i].typ = typ
			}
		}
		return true
	})
}

// escapes reports whether the pooled value leaves the function through a
// return statement — the checkout-helper shape, where the caller owns the
// Put.
func escapes(info *types.Info, fn *ast.FuncDecl, g *getSite) bool {
	if fn.Type.Results == nil {
		return false
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			res = ast.Unparen(res)
			if g.bound != nil {
				if id, ok := res.(*ast.Ident); ok && info.Uses[id] == g.bound {
					found = true
				}
			}
			if containsCall(res, g.call) {
				found = true
			}
		}
		return !found
	})
	return found
}

func containsCall(n ast.Node, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		if node == call {
			found = true
		}
		return !found
	})
	return found
}

// hasAccumulators reports whether t (after deref) is a struct with any
// slice or map field — state that survives a round-trip through the pool
// and therefore needs explicit resetting.
func hasAccumulators(t types.Type) bool {
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Type().Underlying().(type) {
		case *types.Slice, *types.Map:
			return true
		}
	}
	return false
}

// resetMethod finds a reset or Reset method in t's method set.
func resetMethod(t types.Type) *types.Func {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if fn, ok := ms.At(i).Obj().(*types.Func); ok {
			if fn.Name() == "reset" || fn.Name() == "Reset" {
				return fn
			}
		}
	}
	return nil
}

// callsMethod reports whether body calls method m on the bound variable
// (or on anything, when the binding is unknown).
func callsMethod(info *types.Info, body ast.Node, bound types.Object, m *types.Func) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != m.Name() {
			return true
		}
		if bound != nil {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); !ok || info.Uses[id] != bound {
				return true
			}
		}
		found = true
		return false
	})
	return found
}
