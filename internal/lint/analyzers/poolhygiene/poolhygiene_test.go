package poolhygiene_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/analyzers/poolhygiene"
)

func TestPoolHygiene(t *testing.T) {
	analysistest.Run(t, "testdata", poolhygiene.Analyzer, "pool")
}
