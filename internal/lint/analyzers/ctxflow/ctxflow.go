// Package ctxflow enforces the serving layer's cancellation contract:
// deadlines must keep working no matter how large a PRF grid or batch
// gets.
//
// Rule C1: an error-returning Query*/Rank* method that accepts a
// context.Context must consult it inside every batch loop — each
// top-level loop whose body does real work (calls functions) has to
// mention ctx somewhere in its nest, either a direct check
// (pdb.CtxErr(ctx), ctx.Err()) or delegation to a ctx-aware helper
// (par.ForCtx, par.ForWorkersCtx, a Query*(ctx, ...) call). Loops inside
// function literals are exempt: closures handed to par.ForWorkersCtx run
// under the helper's grid-point cancellation already.
//
// Rule C2: no context.Background()/context.TODO() outside cmd/ trees —
// library code accepts its context from the caller, or serving deadlines
// silently detach.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "Query*/Rank* batch loops must consult their ctx; no ambient contexts below cmd/",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Commands and example mains are the legitimate roots of context
	// trees; everything else accepts its ctx from above.
	banAmbient := !astq.InCmd(pass.Pkg.Path()) && pass.Pkg.Name() != "main"
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkBatchLoops(pass, fn)
		}
		if banAmbient {
			banAmbientContexts(pass, file)
		}
	}
	return nil
}

// checkBatchLoops applies rule C1 to one declared function.
func checkBatchLoops(pass *analysis.Pass, fn *ast.FuncDecl) {
	if !strings.HasPrefix(fn.Name.Name, "Query") && !strings.HasPrefix(fn.Name.Name, "Rank") {
		return
	}
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)
	if !astq.ReturnsError(sig) {
		return
	}
	var ctxObj types.Object
	for i := 0; i < sig.Params().Len(); i++ {
		if p := sig.Params().At(i); astq.IsContextType(p.Type()) {
			ctxObj = p
			break
		}
	}
	if ctxObj == nil {
		return
	}
	for _, loop := range topLevelLoops(fn.Body) {
		if doesWork(pass.TypesInfo, loop) && !astq.MentionsObject(pass.TypesInfo, loop, ctxObj) {
			pass.Reportf(loop.Pos(),
				"%s: batch loop never consults ctx; check pdb.CtxErr(ctx) per iteration or delegate to a ctx-aware helper",
				fn.Name.Name)
		}
	}
}

// topLevelLoops collects loops not nested inside another loop or inside a
// function literal. Inner loops are the outer loop's responsibility (one
// check per grid point is the granularity the engine promises), and
// closures run under whatever driver receives them.
func topLevelLoops(body *ast.BlockStmt) []ast.Stmt {
	var loops []ast.Stmt
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n.(ast.Stmt))
			return false
		case *ast.FuncLit:
			return false
		}
		return true
	}
	ast.Inspect(body, walk)
	return loops
}

// doesWork reports whether the loop nest calls any real function.
func doesWork(info *types.Info, loop ast.Node) bool {
	works := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if works {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && astq.IsWorkCall(info, call) {
			works = true
		}
		return !works
	})
	return works
}

// banAmbientContexts applies rule C2 to one file.
func banAmbientContexts(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := astq.Callee(pass.TypesInfo, call)
		if astq.IsPkgFunc(fn, "context", "Background") || astq.IsPkgFunc(fn, "context", "TODO") {
			pass.Reportf(call.Pos(),
				"context.%s() below cmd/: accept a ctx from the caller so deadlines propagate", fn.Name())
		}
		return true
	})
}
