// Commands are the legitimate roots of context trees: no findings here.
package main

import "context"

func main() {
	_ = context.Background()
}
