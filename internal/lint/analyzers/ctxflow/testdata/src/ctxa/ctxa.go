package ctxa

import "context"

type Ranker struct{}

func work(i int) int { return i + 1 }

// QueryUnchecked's loop calls real work and never consults ctx.
func (Ranker) QueryUnchecked(ctx context.Context, xs []int) (int, error) {
	s := 0
	for _, x := range xs { // want "batch loop never consults ctx"
		s += work(x)
	}
	return s, nil
}

// QueryChecked consults ctx once per iteration.
func (Ranker) QueryChecked(ctx context.Context, xs []int) (int, error) {
	s := 0
	for _, x := range xs {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		s += work(x)
	}
	return s, nil
}

// RankDelegating passes ctx to the per-item call, which owns cancellation.
func (r Ranker) RankDelegating(ctx context.Context, xs []int) (int, error) {
	s := 0
	for _, x := range xs {
		n, err := r.QueryChecked(ctx, []int{x})
		if err != nil {
			return 0, err
		}
		s += n
	}
	return s, nil
}

// QueryTrivial's loops only move data around — no work calls, no finding.
func (Ranker) QueryTrivial(ctx context.Context, xs []int) ([]int, error) {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out, nil
}

// QueryClosure hands its loop to a driver closure; the driver receives
// ctx, so loops inside the literal are exempt.
func (Ranker) QueryClosure(ctx context.Context, xs []int) (int, error) {
	s := 0
	run := func(f func()) error { f(); return ctx.Err() }
	err := run(func() {
		for _, x := range xs {
			s += work(x)
		}
	})
	return s, err
}

// NotAQuery is outside the naming contract: no finding even though the
// loop ignores ctx.
func NotAQuery(ctx context.Context, xs []int) (int, error) {
	s := 0
	for _, x := range xs {
		s += work(x)
	}
	return s, nil
}

func ambient() context.Context {
	return context.Background() // want "context.Background.. below cmd/"
}

func todo() context.Context {
	return context.TODO() // want "context.TODO.. below cmd/"
}
