// Package errdiscipline enforces how failure propagates out of the query
// path.
//
// Rule E1: panic is reserved for constructors. A New*/Prepare* function
// validating its inputs may panic (the caller misused the API at setup
// time); Must* helpers exist to panic by contract; everything else —
// anything reachable once a query is in flight — returns an error, or a
// single malformed request can take down the server.
//
// Rule E2: fmt.Errorf calls that format an error value must wrap it with
// %w, not flatten it with %v/%s, so errors.Is against the engine's
// sentinel errors keeps working through every layer.
package errdiscipline

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"

	"repro/internal/lint/analysis"
	"repro/internal/lint/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "errdiscipline",
	Doc:  "panics only in New*/Prepare*/Must* constructors; wrap errors with %w",
	Run:  run,
}

// constructorRE matches function names allowed to panic, in both exported
// and unexported spellings (NewSweep, newSweep, MustNoErr, ...).
var constructorRE = regexp.MustCompile(`^(New|Prepare|Must|init$)|^(new|prepare|must)([A-Z_]|$)`)

func run(pass *analysis.Pass) error {
	// A command's main tree may fail fast; the panic rule governs library
	// code, where a request must never take the process down.
	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !isMain && !constructorRE.MatchString(fn.Name.Name) {
				checkPanics(pass, fn)
			}
			checkWrapping(pass, fn)
		}
	}
	return nil
}

// checkPanics applies rule E1 to one non-constructor function.
func checkPanics(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			pass.Reportf(call.Pos(),
				"panic in %s, which is not a New*/Prepare*/Must* constructor: query-path failures return errors", fn.Name.Name)
		}
		return true
	})
}

// checkWrapping applies rule E2 to every fmt.Errorf call in fn.
func checkWrapping(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !astq.IsPkgFunc(astq.Callee(info, call), "fmt", "Errorf") || len(call.Args) < 2 {
			return true
		}
		lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
		if !ok {
			return true
		}
		format, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		verbs := scanVerbs(format)
		for i, verb := range verbs {
			argIdx := 1 + i
			if argIdx >= len(call.Args) || verb == 'w' {
				continue
			}
			tv, ok := info.Types[call.Args[argIdx]]
			if ok && astq.IsErrorType(tv.Type) {
				pass.Reportf(call.Args[argIdx].Pos(),
					"error formatted with %%%c: wrap it with %%w so errors.Is sees through this layer", verb)
			}
		}
		return true
	})
}

// scanVerbs returns the verb letter for each argument-consuming verb in a
// format string, in order. Width/precision stars also consume arguments
// and are returned as '*' entries so indexes stay aligned.
func scanVerbs(format string) []rune {
	var verbs []rune
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
	flags:
		for i < len(format) {
			switch format[i] {
			case '+', '-', '#', ' ', '0', '1', '2', '3', '4', '5', '6', '7', '8', '9', '.':
				i++
			case '*':
				verbs = append(verbs, '*')
				i++
			default:
				break flags
			}
		}
		if i < len(format) && format[i] != '%' {
			verbs = append(verbs, rune(format[i]))
		}
	}
	return verbs
}
