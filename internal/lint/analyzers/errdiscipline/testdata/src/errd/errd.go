package errd

import (
	"errors"
	"fmt"
)

var ErrBad = errors.New("bad input")

// NewThing may panic: constructors validate at setup time.
func NewThing(n int) int {
	if n < 0 {
		panic("negative")
	}
	return n
}

// PrepareThing likewise.
func PrepareThing(n int) int {
	if n < 0 {
		panic("negative")
	}
	return n
}

// MustThing panics by contract.
func MustThing(n int, err error) int {
	if err != nil {
		panic(err)
	}
	return n
}

// newThing: the unexported spelling counts as a constructor too.
func newThing(n int) int {
	if n < 0 {
		panic("negative")
	}
	return n
}

// QueryThing is in-flight code: failures return errors.
func QueryThing(n int) (int, error) {
	if n < 0 {
		panic("negative") // want "panic in QueryThing"
	}
	return n, nil
}

// helper is ordinary non-constructor code.
func helper(n int) int {
	if n < 0 {
		panic("negative") // want "panic in helper"
	}
	return n
}

// flatten loses the sentinel: errors.Is can no longer see ErrBad.
func flatten(err error) error {
	return fmt.Errorf("query failed: %v", err) // want "error formatted with %v"
}

// flattenS likewise via %s.
func flattenS(err error) error {
	return fmt.Errorf("query failed: %s", err) // want "error formatted with %s"
}

// wrap keeps the chain intact.
func wrap(err error) error {
	return fmt.Errorf("query failed: %w", err)
}

// starWidth: the * consumes an argument; the error still maps to its verb.
func starWidth(err error) error {
	return fmt.Errorf("%*d attempts: %v", 3, 7, err) // want "error formatted with %v"
}

// nonError formats plain values: no finding.
func nonError(n int) error {
	return fmt.Errorf("bad count %d (%.2f%%)", n, 50.0)
}
