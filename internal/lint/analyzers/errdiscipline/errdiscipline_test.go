package errdiscipline_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/analyzers/errdiscipline"
)

func TestErrDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", errdiscipline.Analyzer, "errd")
}
