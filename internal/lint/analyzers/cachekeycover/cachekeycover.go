// Package cachekeycover proves, from the type information, that the query
// cache can never alias two distinct queries: every field of a `Query`
// struct must be encoded by its `CacheKey` method, and every cacheable
// field must be mapped by the wire layer (wire.go) that constructs
// queries from requests. A field that is genuinely not part of the cache
// identity carries an explicit annotation:
//
//	// prflint:uncacheable <reason>
//
// which both exempts it and forces CacheKey to refuse caching for it
// (that part is the golden tests' job; this analyzer enforces the
// inventory).
//
// The producing side runs in any package declaring a struct type named
// Query with a CacheKey method; it exports a package fact listing the
// fields and the annotated exceptions. The consuming side runs in any
// package with a file named wire.go and checks the fact of each imported
// package: a cacheable field the wire layer never references is exactly
// the "new Query knob silently ignored by the server" bug class.
package cachekeycover

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "cachekeycover",
	Doc:  "every Query field reaches CacheKey and wire.go, or is annotated prflint:uncacheable",
	Run:  run,
}

const annotation = "// prflint:uncacheable"

// Fact is the package fact exported by the producing side.
type Fact struct {
	Struct      string   // name of the struct type ("Query")
	Fields      []string // all named fields, in declaration order
	Uncacheable []string // fields annotated prflint:uncacheable
}

func run(pass *analysis.Pass) error {
	checkProducer(pass)
	checkConsumer(pass)
	return nil
}

// checkProducer handles the package that declares Query + CacheKey.
func checkProducer(pass *analysis.Pass) {
	st, typeObj := findQueryStruct(pass)
	if st == nil {
		return
	}
	body := cacheKeyBody(pass, typeObj)
	if body == nil {
		return
	}

	fact := Fact{Struct: typeObj.Name()}
	uncacheable := make(map[string]bool)
	for _, field := range st.Fields.List {
		reason, annotated := uncacheableAnnotation(field)
		if annotated && reason == "" {
			pass.Reportf(field.Pos(), "prflint:uncacheable annotation needs a reason")
		}
		for _, name := range field.Names {
			fact.Fields = append(fact.Fields, name.Name)
			if annotated {
				uncacheable[name.Name] = true
				continue
			}
			fieldObj := pass.TypesInfo.Defs[name]
			if !astq.MentionsObject(pass.TypesInfo, body, fieldObj) && !mentionsFieldByName(pass.TypesInfo, body, typeObj, name.Name) {
				pass.Reportf(name.Pos(),
					"%s.%s is not encoded in CacheKey: cached results would alias across queries differing only in %s; encode it or annotate %s <reason>",
					typeObj.Name(), name.Name, name.Name, strings.TrimPrefix(annotation, "// "))
			}
		}
	}
	for name := range uncacheable {
		fact.Uncacheable = append(fact.Uncacheable, name)
	}
	sort.Strings(fact.Uncacheable)
	if err := pass.ExportFact(&fact); err != nil {
		pass.Reportf(st.Pos(), "internal: %v", err)
	}
}

// findQueryStruct locates a struct type literally named "Query".
func findQueryStruct(pass *analysis.Pass) (*ast.StructType, *types.TypeName) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "Query" {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				obj, _ := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if obj != nil {
					return st, obj
				}
			}
		}
	}
	return nil, nil
}

// cacheKeyBody finds the body of the CacheKey method on typeObj.
func cacheKeyBody(pass *analysis.Pass, typeObj *types.TypeName) *ast.BlockStmt {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != "CacheKey" || fn.Recv == nil || fn.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			recv := obj.Type().(*types.Signature).Recv()
			if named := astq.NamedOf(recv.Type()); named != nil && named.Obj() == typeObj {
				return fn.Body
			}
		}
	}
	return nil
}

// uncacheableAnnotation inspects a field's doc and line comments.
func uncacheableAnnotation(field *ast.Field) (reason string, found bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, annotation) {
				return strings.TrimSpace(c.Text[len(annotation):]), true
			}
		}
	}
	return "", false
}

// mentionsFieldByName catches field accesses that resolve through a copy
// or pointer of the struct (selection object identity can differ across
// instantiations; name + receiver type is the robust check).
func mentionsFieldByName(info *types.Info, body ast.Node, typeObj *types.TypeName, field string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != field {
			return true
		}
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if named := astq.NamedOf(s.Recv()); named != nil && named.Obj() == typeObj {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkConsumer handles packages with a wire.go mapping requests to
// queries.
func checkConsumer(pass *analysis.Pass) {
	for _, file := range pass.Files {
		name := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		if name != "wire.go" {
			continue
		}
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			var fact Fact
			if !pass.ImportFact(path, &fact) {
				continue
			}
			referenced := queryFieldsReferenced(pass, file, path, fact.Struct)
			uncacheable := make(map[string]bool, len(fact.Uncacheable))
			for _, f := range fact.Uncacheable {
				uncacheable[f] = true
			}
			for _, f := range fact.Fields {
				if !uncacheable[f] && !referenced[f] {
					pass.Reportf(file.Name.Pos(),
						"cacheable %s.%s field %s is never mapped in wire.go: served queries cannot set it, so the knob is dead on the wire; map it or annotate it prflint:uncacheable",
						astq.PkgBase(path), fact.Struct, f)
				}
			}
		}
	}
}

// queryFieldsReferenced collects the fields of pkgPath.structName that
// file touches, via selector access or composite-literal keys.
func queryFieldsReferenced(pass *analysis.Pass, file *ast.File, pkgPath, structName string) map[string]bool {
	out := make(map[string]bool)
	matches := func(t types.Type) bool {
		named := astq.NamedOf(t)
		return named != nil && named.Obj().Name() == structName &&
			named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == pkgPath
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if s, ok := pass.TypesInfo.Selections[n]; ok && s.Kind() == types.FieldVal && matches(s.Recv()) {
				out[n.Sel.Name] = true
			}
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok && matches(tv.Type) {
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok {
							out[key.Name] = true
						}
					}
				}
			}
		}
		return true
	})
	return out
}
