package ckwire // want "Query field Alpha is never mapped in wire.go" "Query field Injected is never mapped in wire.go"

import "cka"

type WireQuery struct {
	Metric string `json:"metric"`
}

func (w WireQuery) ToQuery() cka.Query {
	return cka.Query{Metric: w.Metric}
}
