// Package cka is a fixture shaped like internal/engine: a Query struct
// with a CacheKey method. The Injected field is the deliberately-injected
// knob the analyzer must catch.
package cka

import "strconv"

type Query struct {
	Metric string
	Alpha  float64
	// prflint:uncacheable function-valued knob; CacheKey refuses to cache it
	Omega func(int) float64
	// prflint:uncacheable
	Hidden   int // want "prflint:uncacheable annotation needs a reason"
	Injected int // want "Query.Injected is not encoded in CacheKey"
}

func (q Query) CacheKey() (string, bool) {
	if q.Omega != nil {
		return "", false
	}
	return q.Metric + "|" + strconv.FormatFloat(q.Alpha, 'x', -1, 64), true
}
