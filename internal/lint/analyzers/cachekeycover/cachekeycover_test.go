package cachekeycover_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/analyzers/cachekeycover"
)

// TestInjectedField is the negative test the cache contract demands: cka
// declares a Query field that CacheKey does not encode (and one the wire
// layer does not map), and the analyzer must fire on both. ckwire loads
// second so the package fact exported by cka is visible, exactly as under
// go vet.
func TestInjectedField(t *testing.T) {
	analysistest.Run(t, "testdata", cachekeycover.Analyzer, "cka", "ckwire")
}
