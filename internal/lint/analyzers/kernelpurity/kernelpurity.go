// Package kernelpurity keeps the numeric kernels deterministic and
// dependency-free. The kernel packages (core, andxor, junction, rankdist,
// poly, fft, dftapprox) are the part of the tree whose outputs must be
// bit-reproducible across runs and hosts — that is what the golden files
// and the possible-worlds oracle certify against.
//
// Rule K1: kernels may not import fmt, log, os, time, or math/rand —
// formatting belongs above the kernel boundary, clocks and ambient
// randomness have no business in a deterministic evaluator.
//
// Rule K2: no ranging over a map into ordered output (append inside a
// map-range): map iteration order is deliberately randomized by the
// runtime, so any slice built that way differs run to run.
//
// Rule K3: no ==/!= between two non-constant floating-point (or complex)
// values. Comparisons against literal zeros and ones are the exactness
// tier's idiom and stay legal; variable-to-variable equality is the
// hazard and belongs in internal/exact, whose helpers document which
// comparisons are exact by construction (internal/exact is not a kernel
// package, so its own comparisons are out of scope here).
package kernelpurity

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "kernelpurity",
	Doc:  "kernel packages: no fmt/log/os/time/math-rand, no map-order output, no float ==",
	Run:  run,
}

// kernelPkgs is the closed set of kernel package base names.
var kernelPkgs = map[string]bool{
	"core": true, "andxor": true, "junction": true, "rankdist": true,
	"poly": true, "fft": true, "dftapprox": true,
}

var bannedImports = map[string]string{
	"fmt":          "formatting belongs above the kernel boundary",
	"log":          "kernels do not log",
	"os":           "kernels touch no ambient OS state",
	"time":         "kernels are clock-free",
	"math/rand":    "ambient randomness breaks reproducibility",
	"math/rand/v2": "ambient randomness breaks reproducibility",
}

func run(pass *analysis.Pass) error {
	if !kernelPkgs[astq.PkgBase(pass.Pkg.Path())] {
		return nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if why, banned := bannedImports[path]; banned {
				pass.Reportf(imp.Pos(), "kernel package imports %s: %s", path, why)
			}
		}
		checkMapOrder(pass, file)
		checkFloatEq(pass, file)
	}
	return nil
}

// checkMapOrder flags appends inside a range over a map (rule K2).
func checkMapOrder(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rs.Body, func(inner ast.Node) bool {
			call, ok := inner.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					pass.Reportf(call.Pos(),
						"append inside a map range: iteration order is randomized, so this output is nondeterministic; collect keys and sort first")
				}
			}
			return true
		})
		return true
	})
}

// checkFloatEq flags non-constant float/complex equality (rule K3).
func checkFloatEq(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		x, xok := pass.TypesInfo.Types[be.X]
		y, yok := pass.TypesInfo.Types[be.Y]
		if !xok || !yok || !isFloatish(x.Type) || !isFloatish(y.Type) {
			return true
		}
		if x.Value != nil || y.Value != nil {
			return true // one side is a constant: the exactness-tier idiom
		}
		pass.Reportf(be.OpPos,
			"%s between two non-constant floats: rounding makes this comparison unstable; use internal/exact or restructure", be.Op)
		return true
	})
}

func isFloatish(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&(types.IsFloat|types.IsComplex) != 0
}
