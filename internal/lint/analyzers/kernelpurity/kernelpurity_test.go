package kernelpurity_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/analyzers/kernelpurity"
)

func TestKernelPurity(t *testing.T) {
	analysistest.Run(t, "testdata", kernelpurity.Analyzer, "core", "notkernel")
}
