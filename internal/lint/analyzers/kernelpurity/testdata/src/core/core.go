// Package core has a kernel package's base name, so every purity rule
// applies.
package core

import "fmt" // want "kernel package imports fmt"

func Describe(x int) string { return fmt.Sprint(x) }

// Keys builds ordered output from randomized map iteration.
func Keys(m map[int]float64) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want "append inside a map range"
	}
	return out
}

// Sum only reduces over the map — order-independent, no finding.
func Sum(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s
}

// Same compares two computed floats for equality.
func Same(a, b float64) bool {
	return a == b // want "== between two non-constant floats"
}

// Differs compares two computed complex values.
func Differs(a, b complex128) bool {
	return a != b // want "!= between two non-constant floats"
}

// AtZero compares against a literal: the exactness-tier idiom, legal.
func AtZero(p float64) bool { return p == 0 }

// IsOne likewise.
func IsOne(p float64) bool { return p != 1 }
