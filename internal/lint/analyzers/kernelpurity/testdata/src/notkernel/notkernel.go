// Package notkernel is outside the kernel set: the same constructs draw
// no findings.
package notkernel

import "fmt"

func Describe(x int) string { return fmt.Sprint(x) }

func Same(a, b float64) bool { return a == b }

func Keys(m map[int]float64) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
