// Package golist is prflint's standalone driver: it loads packages with
// `go list -e -export -deps -json`, type-checks each module package from
// source against the export data of its dependencies, and runs the
// analyzer suite in dependency order so package facts (e.g.
// cachekeycover's Query field inventory) flow from engine to serve exactly
// as they do under `go vet -vettool`. This is the path scripts/lint.sh and
// `prflint ./...` take.
package golist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// listPackage is the subset of `go list -json` output the driver needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Main analyzes the packages matching patterns and prints findings to
// stderr. It returns the process exit code: 0 clean, 1 operational error,
// 2 findings.
func Main(patterns []string, analyzers []*analysis.Analyzer) int {
	return run(patterns, analyzers, os.Stderr)
}

func run(patterns []string, analyzers []*analysis.Analyzer, stderr io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "prflint: %v\n", err)
		return 1
	}

	// Export data for every listed package, for import resolution.
	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	facts := make(analysis.MemFacts)
	exit := 0
	for _, p := range pkgs { // `go list -deps` emits dependencies first
		if p.Standard || p.Module == nil || p.Module.Path == "" {
			continue
		}
		if p.Error != nil {
			fmt.Fprintf(stderr, "prflint: %s: %s\n", p.ImportPath, p.Error.Err)
			return 1
		}
		diags, fset, err := analyzeOne(p, analyzers, exports, facts)
		if err != nil {
			fmt.Fprintf(stderr, "prflint: %s: %v\n", p.ImportPath, err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintf(stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
			exit = 2
		}
	}
	return exit
}

func analyzeOne(p *listPackage, analyzers []*analysis.Analyzer, exports map[string]string, facts analysis.MemFacts) ([]analysis.Diagnostic, *token.FileSet, error) {
	fset := token.NewFileSet()
	names := make([]string, len(p.GoFiles))
	for i, f := range p.GoFiles {
		names[i] = filepath.Join(p.Dir, f)
	}
	files, err := load.ParseFiles(fset, names)
	if err != nil {
		return nil, nil, err
	}
	imp := load.ExportImporter(fset, nil, exports)
	pkg, info, err := load.Check(fset, p.ImportPath, files, imp, "")
	if err != nil {
		return nil, nil, err
	}
	diags, exported, err := analysis.RunPackage(analyzers, fset, files, pkg, info, facts)
	if err != nil {
		return nil, nil, err
	}
	for name, data := range exported {
		facts.Set(p.ImportPath, name, data)
	}
	return diags, fset, nil
}

// goList runs the go command and decodes its JSON package stream.
func goList(patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, errBuf.String())
	}
	dec := json.NewDecoder(&out)
	var pkgs []*listPackage
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}
