// Package lint assembles the prflint analyzer suite. The five analyzers
// each pin one invariant the engine's correctness rests on; see DESIGN.md
// §"Static analysis architecture" for the analyzer ↔ invariant ↔ incident
// mapping.
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/analyzers/cachekeycover"
	"repro/internal/lint/analyzers/ctxflow"
	"repro/internal/lint/analyzers/errdiscipline"
	"repro/internal/lint/analyzers/kernelpurity"
	"repro/internal/lint/analyzers/poolhygiene"
)

// Analyzers returns the full suite, in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		cachekeycover.Analyzer,
		ctxflow.Analyzer,
		errdiscipline.Analyzer,
		kernelpurity.Analyzer,
		poolhygiene.Analyzer,
	}
}
