package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// RunPackage runs every analyzer over one loaded package, applies the
// suppression filter, and returns the surviving diagnostics (sorted by
// position) together with the facts the analyzers exported. It is the one
// code path shared by the go vet driver, the standalone driver, and the
// test harness, so suppression semantics cannot drift between them.
func RunPackage(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts FactSource) ([]Diagnostic, map[string]json.RawMessage, error) {
	exported := make(map[string]json.RawMessage)
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := NewPass(a, fset, files, pkg, info, facts, &raw, exported)
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path(), err)
		}
	}
	known := map[string]bool{"lint": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	diags := Filter(fset, files, raw, known)
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, exported, nil
}
