package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestSuppressions pins the escape-hatch contract: reasoned allows
// silence their line (or file), reasonless or unknown-analyzer allows are
// findings themselves and silence nothing.
func TestSuppressions(t *testing.T) {
	known := map[string]bool{"ctxflow": true, "poolhygiene": true, "lint": true}

	const src = `package p

func a() {} //lint:allow ctxflow reason one
//lint:allow ctxflow standalone comments cover the following line
func b() {}
//lint:file-allow poolhygiene whole file is a bench harness
func c() {} //lint:allow ctxflow
func d() {} //lint:allow nosuch made-up analyzer
func e() {} //lint:allow
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tf := fset.File(f.Pos())
	at := func(line int, analyzer string) Diagnostic {
		return Diagnostic{Pos: tf.LineStart(line), Analyzer: analyzer, Message: "finding"}
	}

	diags := []Diagnostic{
		at(3, "ctxflow"),     // suppressed: trailing reasoned allow
		at(5, "ctxflow"),     // suppressed: standalone allow on line 4
		at(3, "poolhygiene"), // suppressed: file-allow covers every line
		at(7, "ctxflow"),     // survives: the allow on line 7 has no reason
		at(9, "ctxflow"),     // survives: the allow names a different analyzer
	}
	out := Filter(fset, []*ast.File{f}, diags, known)

	var findings, reasonless, unknown int
	line7Survives := false
	for _, d := range out {
		switch {
		case strings.Contains(d.Message, "without a reason"):
			reasonless++
		case strings.Contains(d.Message, "unknown analyzer nosuch"):
			unknown++
		case d.Message == "finding":
			findings++
			if fset.Position(d.Pos).Line == 7 {
				line7Survives = true
			}
		default:
			t.Errorf("unexpected diagnostic: %s", d.Message)
		}
	}
	if findings != 2 {
		t.Errorf("surviving findings: got %d, want 2\nall: %v", findings, render(fset, out))
	}
	if !line7Survives {
		t.Errorf("reasonless suppression silenced the line-7 finding\nall: %v", render(fset, out))
	}
	// Line 7's bare-analyzer allow and line 9's bare allow both lack
	// reasons.
	if reasonless != 2 {
		t.Errorf("reasonless-suppression findings: got %d, want 2\nall: %v", reasonless, render(fset, out))
	}
	if unknown != 1 {
		t.Errorf("unknown-analyzer findings: got %d, want 1\nall: %v", unknown, render(fset, out))
	}
}

// TestSuppressionAttribution checks the reasonless finding is attributed
// to the named analyzer, so it cannot itself be silenced by accident.
func TestSuppressionAttribution(t *testing.T) {
	const src = `package p

func a() {} //lint:allow ctxflow
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out := Filter(fset, []*ast.File{f}, nil, map[string]bool{"ctxflow": true, "lint": true})
	if len(out) != 1 || out[0].Analyzer != "ctxflow" {
		t.Fatalf("got %v, want one finding attributed to ctxflow", render(fset, out))
	}
}

func render(fset *token.FileSet, diags []Diagnostic) []string {
	out := make([]string, 0, len(diags))
	for _, d := range diags {
		out = append(out, fset.Position(d.Pos).String()+" ["+d.Analyzer+"] "+d.Message)
	}
	return out
}
