package analysis

// Suppression comments are the lint suite's escape hatch. Two forms:
//
//	//lint:allow <analyzer> <reason>       silences <analyzer> on this line
//	                                       (trailing comment) or, when the
//	                                       comment stands alone, on the
//	                                       next line
//	//lint:file-allow <analyzer> <reason>  silences <analyzer> in the file
//
// The reason is mandatory: a suppression with an empty reason (or naming
// an analyzer that does not exist) is reported as a finding attributed to
// the named analyzer, so the hatch leaves a written record or it does not
// open. This file implements scanning and the post-run filter every driver
// applies.

import (
	"go/ast"
	"go/token"
	"strings"
)

const (
	allowPrefix     = "//lint:allow "
	fileAllowPrefix = "//lint:file-allow "
)

// suppression is one parsed allow comment.
type suppression struct {
	pos      token.Pos
	analyzer string
	reason   string
	fileWide bool
	// line is the source line the suppression covers (the comment's own
	// line for trailing comments, the following line for standalone ones).
	line int
	file *token.File
}

// scanSuppressions parses every allow comment in the files.
func scanSuppressions(fset *token.FileSet, files []*ast.File) []suppression {
	var out []suppression
	for _, f := range files {
		tf := fset.File(f.Pos())
		if tf == nil {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				var rest string
				var fileWide bool
				switch {
				case strings.HasPrefix(text, fileAllowPrefix):
					rest = text[len(fileAllowPrefix):]
					fileWide = true
				case strings.HasPrefix(text, allowPrefix):
					rest = text[len(allowPrefix):]
				case text == "//lint:allow" || text == "//lint:file-allow":
					// Bare directive: no analyzer, no reason.
					out = append(out, suppression{pos: c.Pos(), file: tf})
					continue
				default:
					continue
				}
				name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				s := suppression{
					pos:      c.Pos(),
					analyzer: name,
					reason:   strings.TrimSpace(reason),
					fileWide: fileWide,
					file:     tf,
				}
				s.line = tf.Line(c.Pos())
				if !fileWide && isOwnLine(tf, f, c) {
					// A standalone comment covers the following line.
					s.line++
				}
				out = append(out, s)
			}
		}
	}
	return out
}

// isOwnLine reports whether comment c is the first thing on its line (a
// standalone comment) rather than trailing code.
func isOwnLine(tf *token.File, f *ast.File, c *ast.Comment) bool {
	line := tf.Line(c.Pos())
	first := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !first {
			return false
		}
		if n.Pos().IsValid() && tf.Line(n.Pos()) == line && n.Pos() < c.Pos() {
			if _, isFile := n.(*ast.File); !isFile {
				first = false
			}
		}
		return first
	})
	return first
}

// Filter applies suppression comments to diags: it drops findings covered
// by a reasoned allow comment and appends one finding per malformed
// suppression (missing reason, unknown analyzer). known maps analyzer
// names that exist in this run.
func Filter(fset *token.FileSet, files []*ast.File, diags []Diagnostic, known map[string]bool) []Diagnostic {
	sups := scanSuppressions(fset, files)
	var out []Diagnostic
	for _, d := range diags {
		if !suppressed(fset, sups, d) {
			out = append(out, d)
		}
	}
	for _, s := range sups {
		switch {
		case s.analyzer == "" || s.reason == "":
			out = append(out, Diagnostic{
				Pos:      s.pos,
				Analyzer: nonEmpty(s.analyzer, "lint"),
				Message:  "suppression without a reason: write //lint:allow <analyzer> <why this finding does not apply>",
			})
		case known != nil && !known[s.analyzer]:
			out = append(out, Diagnostic{
				Pos:      s.pos,
				Analyzer: "lint",
				Message:  "suppression names unknown analyzer " + s.analyzer,
			})
		}
	}
	return out
}

func nonEmpty(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}

// suppressed reports whether d is covered by a well-formed suppression.
func suppressed(fset *token.FileSet, sups []suppression, d Diagnostic) bool {
	if !d.Pos.IsValid() {
		return false
	}
	tf := fset.File(d.Pos)
	if tf == nil {
		return false
	}
	line := tf.Line(d.Pos)
	for _, s := range sups {
		if s.analyzer != d.Analyzer || s.reason == "" || s.file != tf {
			continue
		}
		if s.fileWide || s.line == line {
			return true
		}
	}
	return false
}
