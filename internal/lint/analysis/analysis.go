// Package analysis is the repository's static-analysis framework: a
// dependency-free mirror of the golang.org/x/tools/go/analysis surface,
// implemented on the standard library's go/ast and go/types so the lint
// suite builds in the hermetic (network-less) environment this module pins
// itself to. The API is shaped so that an analyzer written here ports to
// the upstream framework by changing one import path.
//
// An Analyzer inspects one type-checked package (a Pass) and reports
// Diagnostics. Cross-package state flows through package facts: a pass may
// export one JSON-serializable fact for its package, and later passes over
// importing packages read it back (the drivers shuttle facts between
// passes — in memory for the standalone and test drivers, through go vet's
// .vetx files for the `go vet -vettool` driver).
//
// Suppressions are part of the framework contract (see suppress.go): a
// finding can be silenced line-by-line with `//lint:allow <analyzer>
// <reason>` or file-wide with `//lint:file-allow <analyzer> <reason>`, and
// a suppression without a reason is itself a diagnostic — the escape hatch
// never silently widens.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// comments. Lowercase, no spaces.
	Name string
	// Doc states the invariant the analyzer enforces and why it exists.
	Doc string
	// Run inspects the pass and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one finding, attributed to the analyzer that produced it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// FactSource supplies the serialized fact a named analyzer exported for a
// package path, if any. Drivers implement it over their fact transport.
type FactSource interface {
	PackageFact(pkgPath, analyzer string) ([]byte, bool)
}

// Pass holds everything one analyzer sees about one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	facts FactSource
	diags *[]Diagnostic
	// exported collects the pass's fact (at most one per analyzer+package).
	exported map[string]json.RawMessage
}

// NewPass assembles a pass for one analyzer over a loaded package. diags
// accumulates findings across analyzers; exported collects facts keyed by
// analyzer name.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts FactSource, diags *[]Diagnostic, exported map[string]json.RawMessage) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		facts:     facts,
		diags:     diags,
		exported:  exported,
	}
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportFact serializes v as this pass's package fact. Calling it twice
// overwrites the earlier fact.
func (p *Pass) ExportFact(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("%s: marshaling package fact: %w", p.Analyzer.Name, err)
	}
	p.exported[p.Analyzer.Name] = data
	return nil
}

// ImportFact unmarshals into v the fact this analyzer exported when it ran
// over pkgPath, reporting whether one was found. Drivers may key facts by
// augmented package IDs (go vet's test variants look like
// "path [root.test]"), so lookups fall back from the exact path to any
// variant of it.
func (p *Pass) ImportFact(pkgPath string, v any) bool {
	if p.facts == nil {
		return false
	}
	data, ok := p.facts.PackageFact(pkgPath, p.Analyzer.Name)
	if !ok {
		return false
	}
	return json.Unmarshal(data, v) == nil
}

// MemFacts is the in-memory fact transport used by the standalone and test
// drivers: facts[pkgPath][analyzer] = serialized fact.
type MemFacts map[string]map[string]json.RawMessage

// PackageFact implements FactSource with the test-variant fallback
// documented on Pass.ImportFact.
func (m MemFacts) PackageFact(pkgPath, analyzer string) ([]byte, bool) {
	if byAnalyzer, ok := m[pkgPath]; ok {
		if data, ok := byAnalyzer[analyzer]; ok {
			return data, true
		}
	}
	// Fallback: a fact recorded under a test-variant ID ("path [x.test]").
	for key, byAnalyzer := range m {
		if len(key) > len(pkgPath) && key[:len(pkgPath)] == pkgPath && key[len(pkgPath)] == ' ' {
			if data, ok := byAnalyzer[analyzer]; ok {
				return data, true
			}
		}
	}
	return nil, false
}

// Set records a fact.
func (m MemFacts) Set(pkgPath, analyzer string, data json.RawMessage) {
	byAnalyzer, ok := m[pkgPath]
	if !ok {
		byAnalyzer = make(map[string]json.RawMessage)
		m[pkgPath] = byAnalyzer
	}
	byAnalyzer[analyzer] = data
}
