// Package load parses and type-checks one package's source files for the
// lint drivers. Import resolution is pluggable: the go vet driver resolves
// through export data named in vet.cfg, the standalone driver through
// `go list -export` output, and the test harness through fixture sources —
// all by supplying a types.Importer here.
package load

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// ParseFiles parses filenames (absolute paths) with comments retained.
func ParseFiles(fset *token.FileSet, filenames []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// NewInfo allocates a types.Info with every map analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Check type-checks files as package path, resolving imports through imp.
// goVersion may be "" or a "go1.N" string.
func Check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, goVersion string) (*types.Package, *types.Info, error) {
	info := NewInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", "amd64"),
	}
	if strings.HasPrefix(goVersion, "go1.") {
		conf.GoVersion = goVersion
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// ExportImporter builds a types.Importer over compiler export data: imports
// of path p are served from the .a file named by exports[canon(p)], where
// canon applies importMap (source import path -> package path) first.
// "unsafe" resolves to the builtin types.Unsafe package.
func ExportImporter(fset *token.FileSet, importMap map[string]string, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := importMap[path]; ok {
			path = canon
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return unsafeAware{importer.ForCompiler(fset, "gc", lookup)}
}

// unsafeAware short-circuits "unsafe", which has no export data on disk.
type unsafeAware struct{ next types.Importer }

func (u unsafeAware) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.next.Import(path)
}
