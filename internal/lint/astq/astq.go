// Package astq holds the small typed-AST queries every prflint analyzer
// asks: who is being called, is this the context type, does this subtree
// mention that object. Centralizing them keeps the analyzers themselves
// close to plain statements of their invariants.
package astq

import (
	"go/ast"
	"go/types"
	"strings"
)

// Callee resolves the function or method a call statically invokes, or
// nil for builtins, conversions, and dynamic calls through function
// values.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the package-level function pkgPath.name.
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// IsMethodOf reports whether fn is a method named name on the named type
// pkgPath.typeName (value or pointer receiver).
func IsMethodOf(fn *types.Func, pkgPath, typeName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	named := NamedOf(recv.Type())
	return named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == typeName
}

// NamedOf unwraps pointers and aliases down to a named type, or nil.
func NamedOf(t types.Type) *types.Named {
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := types.Unalias(t).(*types.Named)
	return named
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named := NamedOf(t)
	return named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// IsErrorType reports whether t is the predeclared error interface.
func IsErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// ReturnsError reports whether sig's results include an error.
func ReturnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if IsErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

// MentionsObject reports whether any identifier under n resolves to obj.
func MentionsObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		if found {
			return false
		}
		if id, ok := node.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// IsWorkCall reports whether call invokes an actual function — not a type
// conversion and not a builtin like len or append. Loops containing no
// work calls are copy/index arithmetic and exempt from ctx-check rules.
func IsWorkCall(info *types.Info, call *ast.CallExpr) bool {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := info.Uses[fun].(*types.Builtin); ok {
			return false
		}
	case *ast.SelectorExpr:
		if _, ok := info.Uses[fun.Sel].(*types.Builtin); ok {
			return false
		}
	}
	return true
}

// PkgBase returns the final segment of an import path.
func PkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// InCmd reports whether path is a command tree ("cmd/..." anywhere in the
// path), where ambient contexts are legitimate roots.
func InCmd(path string) bool {
	return strings.Contains("/"+path+"/", "/cmd/")
}
