// Package unit implements the `go vet -vettool` side of prflint: the
// still-unpublished vet command-line protocol that cmd/go speaks to an
// analysis tool. For every package in the build (including every
// dependency, standard library included), cmd/go hands the tool a vet.cfg
// describing the type-checked unit and expects:
//
//   - diagnostics on stderr and exit status 2 when there are findings
//     (suppressed when cfg.VetxOnly says only facts are wanted),
//   - a serialized fact file written to cfg.VetxOutput in every case, and
//   - exit status 0 on type-check failure when
//     cfg.SucceedOnTypecheckFailure is set (the compiler will report the
//     error with better fidelity).
//
// Packages outside this module are never analyzed — prflint's invariants
// are repo-specific — so their runs just write an empty fact file. Test
// variants ("pkg [pkg.test]" IDs) are skipped the same way: the invariants
// govern production code, and test files legitimately use the constructs
// the analyzers ban (context.Background, fmt in kernels, panics).
package unit

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"

	"go/token"
)

// Config mirrors cmd/go's vetConfig JSON (cmd/go/internal/work/exec.go).
type Config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// Main runs the analyzers under the vet protocol for one vet.cfg and
// exits. It never returns.
func Main(cfgFile string, analyzers []*analysis.Analyzer) {
	os.Exit(run(cfgFile, analyzers, os.Stderr))
}

func run(cfgFile string, analyzers []*analysis.Analyzer, stderr *os.File) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(stderr, "prflint: %v\n", err)
		return 1
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "prflint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// Empty fact set unless analysis below produces one; the output file
	// must exist either way or cmd/go records the run as failed.
	facts := map[string]json.RawMessage{}

	if analyzable(&cfg) {
		diags, exported, err := analyze(&cfg, analyzers)
		switch {
		case err != nil && cfg.SucceedOnTypecheckFailure:
			// cmd/go's hack: the compile step reports the error.
		case err != nil:
			fmt.Fprintf(stderr, "prflint: %s: %v\n", cfg.ImportPath, err)
			return 1
		default:
			facts = exported
			if len(diags) > 0 && !cfg.VetxOnly {
				fset := diags[0].fset
				for _, d := range diags {
					fmt.Fprintf(stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
				}
				writeVetx(&cfg, facts, stderr)
				return 2
			}
		}
	}
	if !writeVetx(&cfg, facts, stderr) {
		return 1
	}
	return 0
}

// analyzable reports whether this unit carries production code of this
// module. go vet roots each package at its test-augmented variant, so a
// variant unit is analyzed too — restricted to its non-test files (see
// prodFiles). External test packages and generated test mains carry no
// production code at all.
func analyzable(cfg *Config) bool {
	if cfg.ModulePath == "" {
		return false
	}
	if strings.HasSuffix(cfg.ImportPath, ".test") || strings.HasSuffix(cfg.ImportPath, "_test") {
		return false // generated test main / external test package
	}
	return cfg.ImportPath == cfg.ModulePath ||
		strings.HasPrefix(cfg.ImportPath, cfg.ModulePath+"/")
}

// prodFiles drops _test.go files: the invariants govern production code,
// and test files legitimately use the constructs the analyzers ban
// (ambient contexts, fmt in kernels, panics via must-helpers). Test files
// never export anything production files consume, so the remainder still
// type-checks as the plain package.
func prodFiles(files []string) []string {
	out := files[:0:0]
	for _, f := range files {
		if !strings.HasSuffix(f, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}

// posDiag carries the fileset a diagnostic was produced under so run can
// render positions.
type posDiag struct {
	analysis.Diagnostic
	fset *token.FileSet
}

func analyze(cfg *Config, analyzers []*analysis.Analyzer) ([]posDiag, map[string]json.RawMessage, error) {
	goFiles := prodFiles(cfg.GoFiles)
	if len(goFiles) == 0 {
		return nil, map[string]json.RawMessage{}, nil
	}
	fset := token.NewFileSet()
	files, err := load.ParseFiles(fset, goFiles)
	if err != nil {
		return nil, nil, err
	}
	imp := load.ExportImporter(fset, cfg.ImportMap, cfg.PackageFile)
	pkg, info, err := load.Check(fset, cfg.ImportPath, files, imp, cfg.GoVersion)
	if err != nil {
		return nil, nil, err
	}
	diags, exported, err := analysis.RunPackage(analyzers, fset, files, pkg, info, vetxFacts{cfg: cfg})
	if err != nil {
		return nil, nil, err
	}
	out := make([]posDiag, len(diags))
	for i, d := range diags {
		out[i] = posDiag{Diagnostic: d, fset: fset}
	}
	return out, exported, nil
}

func writeVetx(cfg *Config, facts map[string]json.RawMessage, stderr *os.File) bool {
	data, err := json.Marshal(facts)
	if err == nil {
		err = os.WriteFile(cfg.VetxOutput, data, 0o666)
	}
	if err != nil {
		fmt.Fprintf(stderr, "prflint: writing facts: %v\n", err)
		return false
	}
	return true
}

// vetxFacts reads dependency facts out of the .vetx files cmd/go shuttles
// between vet runs (cfg.PackageVetx maps package path -> file).
type vetxFacts struct {
	cfg *Config
}

func (v vetxFacts) PackageFact(pkgPath, analyzer string) ([]byte, bool) {
	file, ok := v.cfg.PackageVetx[pkgPath]
	if !ok {
		// Fact recorded under a test-variant ID ("path [x.test]").
		for id, f := range v.cfg.PackageVetx {
			if strings.HasPrefix(id, pkgPath+" ") {
				file, ok = f, true
				break
			}
		}
	}
	if !ok {
		return nil, false
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, false
	}
	var byAnalyzer map[string]json.RawMessage
	if json.Unmarshal(data, &byAnalyzer) != nil {
		return nil, false
	}
	fact, ok := byAnalyzer[analyzer]
	return fact, ok
}
