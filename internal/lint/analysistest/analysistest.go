// Package analysistest runs one analyzer over source fixtures and checks
// its findings against `// want "regexp"` expectation comments, mirroring
// golang.org/x/tools/go/analysis/analysistest. Fixtures live under
// testdata/src/<pkg>/ next to the analyzer's test file. Fixture packages
// may import the standard library (resolved from GOROOT source, which
// works offline) and each other (resolved from the fixture tree), so fact
// flow between a producing and a consuming fixture package is testable.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Run analyzes the fixture packages (paths under testdata/src, in
// dependency order when facts matter) and reports any mismatch between
// diagnostics and want comments as test failures.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	r := &runner{
		t:        t,
		srcdir:   filepath.Join(testdata, "src"),
		analyzer: a,
		fset:     token.NewFileSet(),
		loaded:   make(map[string]*types.Package),
		facts:    make(analysis.MemFacts),
	}
	r.stdlib = importer.ForCompiler(r.fset, "source", nil)
	for _, pkg := range pkgs {
		r.check(pkg)
	}
}

type runner struct {
	t        *testing.T
	srcdir   string
	analyzer *analysis.Analyzer
	fset     *token.FileSet
	stdlib   types.Importer
	loaded   map[string]*types.Package
	facts    analysis.MemFacts
}

// Import resolves fixture packages from the testdata tree, everything else
// from GOROOT source. It makes runner a types.Importer so fixtures can
// import each other.
func (r *runner) Import(path string) (*types.Package, error) {
	if pkg, ok := r.loaded[path]; ok {
		return pkg, nil
	}
	if fi, err := os.Stat(filepath.Join(r.srcdir, path)); err == nil && fi.IsDir() {
		pkg, _, _, err := r.load(path)
		return pkg, err
	}
	return r.stdlib.Import(path)
}

// load parses and type-checks one fixture package.
func (r *runner) load(path string) (*types.Package, []*ast.File, *types.Info, error) {
	dir := filepath.Join(r.srcdir, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(names)
	files, err := load.ParseFiles(r.fset, names)
	if err != nil {
		return nil, nil, nil, err
	}
	pkg, info, err := load.Check(r.fset, path, files, r, "")
	if err != nil {
		return nil, nil, nil, err
	}
	r.loaded[path] = pkg
	return pkg, files, info, nil
}

// check runs the analyzer over one fixture package and verifies wants.
func (r *runner) check(path string) {
	r.t.Helper()
	pkg, files, info, err := r.load(path)
	if err != nil {
		r.t.Fatalf("loading fixture %s: %v", path, err)
	}
	diags, exported, err := analysis.RunPackage([]*analysis.Analyzer{r.analyzer}, r.fset, files, pkg, info, r.facts)
	if err != nil {
		r.t.Fatalf("running %s on %s: %v", r.analyzer.Name, path, err)
	}
	for name, data := range exported {
		r.facts.Set(path, name, data)
	}
	r.verify(files, diags)
}

// want is one expectation parsed from a `// want "re"` comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

func (r *runner) verify(files []*ast.File, diags []analysis.Diagnostic) {
	r.t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := r.fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
					text := strings.ReplaceAll(q[1], `\"`, `"`)
					re, err := regexp.Compile(text)
					if err != nil {
						r.t.Fatalf("%s: bad want regexp %q: %v", pos, q[1], err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := r.fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			r.t.Errorf("%s: unexpected diagnostic: %s [%s]", pos, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			r.t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
