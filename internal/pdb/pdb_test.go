package pdb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDatasetValidation(t *testing.T) {
	cases := []struct {
		name   string
		scores []float64
		probs  []float64
		ok     bool
	}{
		{"valid", []float64{3, 2, 1}, []float64{0.5, 1, 0}, true},
		{"negative prob", []float64{1}, []float64{-0.1}, false},
		{"prob above one", []float64{1}, []float64{1.1}, false},
		{"nan prob", []float64{1}, []float64{math.NaN()}, false},
		{"nan score", []float64{math.NaN()}, []float64{0.5}, false},
		{"inf score", []float64{math.Inf(1)}, []float64{0.5}, false},
		{"length mismatch", []float64{1, 2}, []float64{0.5}, false},
		{"empty", nil, nil, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewDataset(c.scores, c.probs)
			if (err == nil) != c.ok {
				t.Fatalf("NewDataset(%v,%v) err=%v, want ok=%v", c.scores, c.probs, err, c.ok)
			}
		})
	}
}

func TestSortByScoreStableAndDescending(t *testing.T) {
	d := MustDataset([]float64{1, 5, 3, 5, 2}, []float64{0.1, 0.2, 0.3, 0.4, 0.5})
	if d.Sorted() {
		t.Fatal("fresh dataset should not report sorted")
	}
	d.SortByScore()
	if !d.Sorted() {
		t.Fatal("dataset should report sorted after SortByScore")
	}
	ts := d.Tuples()
	for i := 1; i < len(ts); i++ {
		if ts[i-1].Score < ts[i].Score {
			t.Fatalf("not descending at %d: %v then %v", i, ts[i-1], ts[i])
		}
		if ts[i-1].Score == ts[i].Score && ts[i-1].ID > ts[i].ID {
			t.Fatalf("tie not broken by ID at %d", i)
		}
	}
	// IDs must be preserved, not rewritten.
	if got, ok := d.ByID(0); !ok || got.Score != 1 {
		t.Fatalf("ByID(0) = %v, %v; want score 1", got, ok)
	}
}

func TestEnumerateWorldsProbabilitiesSumToOne(t *testing.T) {
	d := MustDataset([]float64{10, 8, 6, 4}, []float64{0.5, 0.6, 0.4, 1.0})
	worlds, err := EnumerateWorlds(d)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, w := range worlds {
		total += w.Prob
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("world probabilities sum to %v, want 1", total)
	}
	// Tuple 3 has p=1 so it must be in every world with positive probability.
	for _, w := range worlds {
		if w.Rank(3) == 0 {
			t.Fatalf("world %v missing certain tuple 3", w)
		}
	}
}

func TestEnumerateWorldsRefusesLargeDatasets(t *testing.T) {
	n := MaxEnumerate + 1
	scores := make([]float64, n)
	probs := make([]float64, n)
	for i := range scores {
		scores[i] = float64(i)
		probs[i] = 0.5
	}
	d := MustDataset(scores, probs)
	if _, err := EnumerateWorlds(d); err == nil {
		t.Fatal("expected error enumerating oversized dataset")
	}
}

func TestWorldRankOrderMatchesScores(t *testing.T) {
	d := MustDataset([]float64{1, 9, 5}, []float64{1, 1, 1})
	worlds, err := EnumerateWorlds(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(worlds) != 1 {
		t.Fatalf("want exactly 1 world for certain tuples, got %d", len(worlds))
	}
	w := worlds[0]
	if w.Rank(1) != 1 || w.Rank(2) != 2 || w.Rank(0) != 3 {
		t.Fatalf("ranks wrong: %v", w)
	}
}

func TestRankDistributionFromWorlds(t *testing.T) {
	// Two tuples: t0 score 10 p=0.5, t1 score 5 p=0.8.
	d := MustDataset([]float64{10, 5}, []float64{0.5, 0.8})
	worlds, _ := EnumerateWorlds(d)
	rd := RankDistributionFromWorlds(worlds, 2)
	// Pr(r(t0)=1) = 0.5; t1 rank1 iff t0 absent & t1 present = 0.5*0.8.
	if got := rd.At(0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Pr(r(t0)=1)=%v want 0.5", got)
	}
	if got := rd.At(1, 1); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("Pr(r(t1)=1)=%v want 0.4", got)
	}
	if got := rd.At(1, 2); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("Pr(r(t1)=2)=%v want 0.4", got)
	}
	if got := rd.PresenceProb(1); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("presence(t1)=%v want 0.8", got)
	}
	// Out-of-range ranks are zero.
	if rd.At(0, 0) != 0 || rd.At(0, 3) != 0 {
		t.Fatal("out-of-range rank should be 0")
	}
}

func TestSampleWorldFrequencies(t *testing.T) {
	d := MustDataset([]float64{10, 5}, []float64{0.3, 0.9})
	d.SortByScore()
	rng := rand.New(rand.NewSource(42))
	const nSamples = 200000
	count0 := 0
	for i := 0; i < nSamples; i++ {
		w := SampleWorld(d, rng)
		if w.Rank(0) > 0 {
			count0++
		}
	}
	got := float64(count0) / nSamples
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("sampled presence of t0 = %v, want ~0.3", got)
	}
}

func TestRankByValue(t *testing.T) {
	r := RankByValue([]float64{0.2, 0.9, 0.9, 0.1})
	want := Ranking{1, 2, 0, 3}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("RankByValue = %v, want %v", r, want)
		}
	}
	if r.Position(3) != 3 || r.Position(99) != -1 {
		t.Fatal("Position lookup broken")
	}
	top2 := r.TopK(2)
	if len(top2) != 2 || top2[0] != 1 || top2[1] != 2 {
		t.Fatalf("TopK(2) = %v", top2)
	}
	if got := r.TopK(10); len(got) != 4 {
		t.Fatalf("TopK larger than ranking should clamp, got %v", got)
	}
}

func TestRankByValueNaNAndInto(t *testing.T) {
	// NaN must order deterministically (below every number, ties by ID) so
	// the comparator remains a strict weak ordering for caller vectors.
	nan := math.NaN()
	r := RankByValue([]float64{nan, 0.5, nan, math.Inf(-1), 0.7})
	want := Ranking{4, 1, 3, 0, 2}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("RankByValue with NaN = %v, want %v", r, want)
		}
	}
	// Buffer reuse must not change results.
	buf := make(Ranking, 0, 8)
	buf = RankByValueInto([]float64{1, 3, 2}, buf)
	if buf[0] != 1 || buf[1] != 2 || buf[2] != 0 {
		t.Fatalf("RankByValueInto = %v", buf)
	}
	again := RankByValueInto([]float64{9, 8}, buf)
	if len(again) != 2 || again[0] != 0 || again[1] != 1 || &again[0] != &buf[0] {
		t.Fatalf("RankByValueInto should reuse the buffer, got %v", again)
	}
}

func TestRankByValueFor(t *testing.T) {
	ids := []TupleID{5, 7, 9}
	vals := map[TupleID]float64{5: 1, 7: 3, 9: 2}
	r := RankByValueFor(ids, vals)
	if r[0] != 7 || r[1] != 9 || r[2] != 5 {
		t.Fatalf("RankByValueFor = %v", r)
	}
}

func TestSubsetReassignsDenseIDs(t *testing.T) {
	d := MustDataset([]float64{3, 2, 1}, []float64{0.1, 0.2, 0.3})
	s, orig := d.Subset([]int{2, 0})
	if s.Len() != 2 || s.Tuple(0).ID != 0 || s.Tuple(1).ID != 1 {
		t.Fatalf("Subset IDs not dense: %+v", s.Tuples())
	}
	if s.Tuple(0).Score != 1 || s.Tuple(1).Score != 3 {
		t.Fatalf("Subset picked wrong tuples: %+v", s.Tuples())
	}
	if orig[0] != 2 || orig[1] != 0 {
		t.Fatalf("original-ID map wrong: %v", orig)
	}
}

// Property: enumerated world probabilities always sum to 1 and per-tuple
// presence probability recovered from the distribution equals Pr(t).
func TestQuickWorldEnumerationConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		scores := make([]float64, n)
		probs := make([]float64, n)
		for i := 0; i < n; i++ {
			scores[i] = rng.NormFloat64() * 10
			probs[i] = rng.Float64()
		}
		d := MustDataset(scores, probs)
		worlds, err := EnumerateWorlds(d)
		if err != nil {
			return false
		}
		var total float64
		for _, w := range worlds {
			total += w.Prob
		}
		if math.Abs(total-1) > 1e-9 {
			return false
		}
		rd := RankDistributionFromWorlds(worlds, n)
		for i := 0; i < n; i++ {
			if math.Abs(rd.PresenceProb(TupleID(i))-probs[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedWorldSize(t *testing.T) {
	d := MustDataset([]float64{1, 2, 3}, []float64{0.25, 0.5, 1})
	if got := d.ExpectedWorldSize(); math.Abs(got-1.75) > 1e-12 {
		t.Fatalf("C=%v want 1.75", got)
	}
}

func TestScoreAndProbMaps(t *testing.T) {
	d := MustDataset([]float64{7, 8}, []float64{0.1, 0.2})
	sm, pm := d.ScoreMap(), d.ProbMap()
	if sm[0] != 7 || sm[1] != 8 || pm[0] != 0.1 || pm[1] != 0.2 {
		t.Fatalf("maps wrong: %v %v", sm, pm)
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := MustDataset([]float64{7, 8}, []float64{0.1, 0.2})
	c := d.Clone()
	c.SortByScore()
	if d.Sorted() {
		t.Fatal("sorting the clone mutated the original")
	}
	if d.Tuple(0).Score != 7 {
		t.Fatal("clone shares backing storage with original")
	}
}

func TestTopKFromWorld(t *testing.T) {
	w := World{Present: []TupleID{4, 2, 7}}
	if got := TopKFromWorld(w, 2); len(got) != 2 || got[0] != 4 || got[1] != 2 {
		t.Fatalf("TopKFromWorld = %v", got)
	}
	if got := TopKFromWorld(w, 9); len(got) != 3 {
		t.Fatalf("clamping failed: %v", got)
	}
}
