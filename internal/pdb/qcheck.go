package pdb

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// Shared validation helpers for the unified query path. Every prepared view
// (core.Prepared, andxor.PreparedTree, junction.PreparedNetwork,
// junction.PreparedChain) runs these on its Query* methods so malformed
// parameters surface as errors from Engine.Rank instead of panics or silent
// garbage deep inside a kernel.

// ErrEmptyGrid reports a batch query with no α grid points.
var ErrEmptyGrid = errors.New("pdb: empty α grid")

// CheckAlpha rejects non-finite real α parameters. The PRFe kernels are
// defined for any finite α; the paper's regime is α ∈ (0, 1].
func CheckAlpha(alpha float64) error {
	if math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return fmt.Errorf("pdb: non-finite PRFe parameter α = %v", alpha)
	}
	return nil
}

// CheckAlphaC rejects non-finite complex α parameters.
func CheckAlphaC(alpha complex128) error {
	if cmplx.IsNaN(alpha) || cmplx.IsInf(alpha) {
		return fmt.Errorf("pdb: non-finite PRFe parameter α = %v", alpha)
	}
	return nil
}

// CheckAlphaGrid validates every point of a real α grid.
func CheckAlphaGrid(alphas []float64) error {
	if len(alphas) == 0 {
		return ErrEmptyGrid
	}
	for i, a := range alphas {
		if err := CheckAlpha(a); err != nil {
			return fmt.Errorf("grid point %d: %w", i, err)
		}
	}
	return nil
}

// CheckAlphaGridC validates every point of a complex α grid.
func CheckAlphaGridC(alphas []complex128) error {
	if len(alphas) == 0 {
		return ErrEmptyGrid
	}
	for i, a := range alphas {
		if err := CheckAlphaC(a); err != nil {
			return fmt.Errorf("grid point %d: %w", i, err)
		}
	}
	return nil
}

// CheckTopK rejects negative answer sizes. k = 0 (an empty answer) and k
// larger than the dataset are both fine — rankings truncate — and k = 0 in
// particular keeps degenerate legacy calls working (an empty user ranking
// fed to the α search, `prfrank -k 0`).
func CheckTopK(k int) error {
	if k < 0 {
		return fmt.Errorf("pdb: top-k size %d is negative", k)
	}
	return nil
}

// CheckWeights rejects NaN entries in a PRFω weight vector (a NaN weight
// would poison every tuple's value through the shared generating function).
func CheckWeights(w []float64) error {
	for i, x := range w {
		if math.IsNaN(x) {
			return fmt.Errorf("pdb: weight w[%d] is NaN", i)
		}
	}
	return nil
}

// CheckDepth rejects negative PT(h) depths (h = 0 is a valid, everywhere-zero
// query).
func CheckDepth(h int) error {
	if h < 0 {
		return fmt.Errorf("pdb: PT(h) depth %d is negative", h)
	}
	return nil
}

// CheckCombo validates a PRFe linear combination: parallel coefficient and
// α slices of equal non-zero length, all entries finite.
func CheckCombo(us, alphas []complex128) error {
	if len(us) != len(alphas) {
		return fmt.Errorf("pdb: combo has %d coefficients but %d α terms", len(us), len(alphas))
	}
	if len(us) == 0 {
		return errors.New("pdb: combo has no terms")
	}
	for i := range us {
		if cmplx.IsNaN(us[i]) || cmplx.IsInf(us[i]) {
			return fmt.Errorf("pdb: non-finite combo coefficient u[%d] = %v", i, us[i])
		}
		if err := CheckAlphaC(alphas[i]); err != nil {
			return fmt.Errorf("combo term %d: %w", i, err)
		}
	}
	return nil
}

// MustNoErr asserts an in-package call whose preconditions were just
// established — typically a batch fan-out run with context.Background,
// which never cancels — cannot have failed.
func MustNoErr(err error) {
	if err != nil {
		panic(err)
	}
}

// ErrNilOmega reports a nil ω weight function handed to a PRF query.
var ErrNilOmega = errors.New("pdb: nil ω weight function")

// CtxErr is the single-query cancellation check shared by every backend's
// Query* methods (batch paths check per job inside the par fan-out
// instead). A nil context reads as context.Background().
func CtxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// ComboSum accumulates the linear combination Σ_l us[l]·vals[l][i] over n
// tuples, in term order. Every backend whose PRFe-combo evaluates terms
// separately folds through this one helper: the summation order is part of
// the bit-for-bit contract, so it must not drift between backends.
func ComboSum(us []complex128, vals [][]complex128, n int) []complex128 {
	out := make([]complex128, n)
	for l := range us {
		for i, v := range vals[l] {
			out[i] += us[l] * v
		}
	}
	return out
}

// CheckRankingIDs validates a caller-supplied ranking against a dataset of n
// tuples: every ID in range and no duplicates — the preconditions the rank
// distance metrics otherwise enforce by panicking.
func CheckRankingIDs(r Ranking, n int) error {
	seen := make(map[TupleID]struct{}, len(r))
	for _, id := range r {
		if int(id) < 0 || int(id) >= n {
			return fmt.Errorf("pdb: ranking contains tuple %d outside 0..%d", id, n-1)
		}
		if _, dup := seen[id]; dup {
			return fmt.Errorf("pdb: ranking contains tuple %d twice", id)
		}
		seen[id] = struct{}{}
	}
	return nil
}
