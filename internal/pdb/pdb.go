// Package pdb defines the base probabilistic database model used throughout
// the repository: tuples with scores and existence probabilities, datasets,
// possible worlds, and exact/Monte-Carlo possible-world machinery for
// tuple-independent relations.
//
// The model follows Section 3.1 of Li, Saha, Deshpande, "A Unified Approach
// to Ranking in Probabilistic Databases" (VLDB 2009). A probabilistic
// relation D_T is a set of tuples; each tuple t carries an existence
// probability Pr(t) and a score score(t). A possible world is a subset of
// tuples; in the tuple-independent model the probability of a world is the
// product of the included tuples' probabilities times the excluded tuples'
// complement probabilities. Correlated models (and/xor trees, Markov
// networks) live in sibling packages and reuse these base types.
package pdb

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// TupleID identifies a tuple within a Dataset. IDs are dense indices assigned
// by the dataset (0..n-1) so that rank algorithms can use them as slice
// offsets; they are stable across sorting because sorting reorders the slice
// but never rewrites the IDs.
type TupleID int

// Tuple is a single uncertain tuple: it exists with probability Prob and, if
// it exists, has the deterministic score Score. Higher scores rank higher.
type Tuple struct {
	// ID is the dataset-assigned identity of the tuple.
	ID TupleID
	// Score is the ranking score of the tuple (deterministic in the base
	// model; see core.UncertainScores for discrete score distributions).
	Score float64
	// Prob is the existence probability, in [0, 1].
	Prob float64
}

// Dataset is an ordered collection of tuples. Most ranking algorithms require
// the dataset to be sorted by non-increasing score; SortByScore establishes
// and Sorted reports that invariant.
type Dataset struct {
	tuples []Tuple
	sorted bool
	// mu guards byID: the index is built lazily on the first ByID call and
	// discarded whenever the order changes, and ByID must stay safe for
	// concurrent readers (it was a pure read before the index existed).
	mu   sync.Mutex
	byID map[TupleID]int
}

// ErrEmptyDataset is returned by operations that require at least one tuple.
var ErrEmptyDataset = errors.New("pdb: empty dataset")

// NewDataset builds a dataset from (score, probability) pairs, assigning IDs
// 0..n-1 in input order. It returns an error if any probability lies outside
// [0,1] or any value is NaN/Inf.
func NewDataset(scores, probs []float64) (*Dataset, error) {
	if len(scores) != len(probs) {
		return nil, fmt.Errorf("pdb: %d scores but %d probabilities", len(scores), len(probs))
	}
	tuples := make([]Tuple, len(scores))
	for i := range scores {
		tuples[i] = Tuple{ID: TupleID(i), Score: scores[i], Prob: probs[i]}
	}
	d := &Dataset{tuples: tuples}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// FromTuples builds a dataset from pre-constructed tuples, reassigning IDs
// 0..n-1 in input order.
func FromTuples(ts []Tuple) (*Dataset, error) {
	tuples := make([]Tuple, len(ts))
	copy(tuples, ts)
	for i := range tuples {
		tuples[i].ID = TupleID(i)
	}
	d := &Dataset{tuples: tuples}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// MustDataset is NewDataset for tests and examples; it panics on error.
func MustDataset(scores, probs []float64) *Dataset {
	d, err := NewDataset(scores, probs)
	if err != nil {
		panic(err)
	}
	return d
}

// Validate checks every tuple for a probability in [0,1] and finite score.
func (d *Dataset) Validate() error {
	for _, t := range d.tuples {
		if math.IsNaN(t.Prob) || t.Prob < 0 || t.Prob > 1 {
			return fmt.Errorf("pdb: tuple %d has invalid probability %v", t.ID, t.Prob)
		}
		if math.IsNaN(t.Score) || math.IsInf(t.Score, 0) {
			return fmt.Errorf("pdb: tuple %d has invalid score %v", t.ID, t.Score)
		}
	}
	return nil
}

// Len returns the number of tuples.
func (d *Dataset) Len() int { return len(d.tuples) }

// Tuples returns the underlying tuple slice. Callers must not mutate it.
func (d *Dataset) Tuples() []Tuple { return d.tuples }

// Tuple returns the i-th tuple in the dataset's current order.
func (d *Dataset) Tuple(i int) Tuple { return d.tuples[i] }

// ByID returns the tuple with the given ID regardless of current order.
// The first call after a reorder builds an ID→position index, so lookups are
// amortized O(1). Safe for concurrent use as long as no goroutine is
// mutating the dataset's order at the same time (the same contract as every
// other read method).
func (d *Dataset) ByID(id TupleID) (Tuple, bool) {
	d.mu.Lock()
	if d.byID == nil {
		d.byID = make(map[TupleID]int, len(d.tuples))
		for i, t := range d.tuples {
			d.byID[t.ID] = i
		}
	}
	m := d.byID
	d.mu.Unlock()
	i, ok := m[id]
	if !ok {
		return Tuple{}, false
	}
	return d.tuples[i], true
}

// SortByScore sorts the tuples in non-increasing score order, breaking ties
// by ID so that the order is deterministic. All generating-function
// algorithms assume this order.
func (d *Dataset) SortByScore() {
	sort.SliceStable(d.tuples, func(i, j int) bool {
		if d.tuples[i].Score != d.tuples[j].Score {
			return d.tuples[i].Score > d.tuples[j].Score
		}
		return d.tuples[i].ID < d.tuples[j].ID
	})
	d.sorted = true
	d.mu.Lock()
	d.byID = nil // positions changed; rebuild lazily on next ByID
	d.mu.Unlock()
}

// Sorted reports whether SortByScore has been called since the last mutation.
func (d *Dataset) Sorted() bool { return d.sorted }

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	tuples := make([]Tuple, len(d.tuples))
	copy(tuples, d.tuples)
	return &Dataset{tuples: tuples, sorted: d.sorted}
}

// Subset returns a new dataset containing the tuples at the given positions
// of the current order, with fresh dense IDs 0..len(positions)-1 (every
// ranking algorithm indexes by TupleID, so IDs must stay dense). The second
// return value maps each new ID back to the original tuple's ID.
func (d *Dataset) Subset(positions []int) (*Dataset, []TupleID) {
	tuples := make([]Tuple, 0, len(positions))
	orig := make([]TupleID, 0, len(positions))
	for _, p := range positions {
		t := d.tuples[p]
		orig = append(orig, t.ID)
		t.ID = TupleID(len(tuples))
		tuples = append(tuples, t)
	}
	return &Dataset{tuples: tuples}, orig
}

// ExpectedWorldSize returns C = Σ p_i, the expected number of tuples in a
// random possible world (used by the expected-rank baseline).
func (d *Dataset) ExpectedWorldSize() float64 {
	var c float64
	for _, t := range d.tuples {
		c += t.Prob
	}
	return c
}

// World is one possible world: the set of present tuples (in non-increasing
// score order) together with the world's probability.
type World struct {
	// Present lists the IDs of the tuples in the world sorted by
	// non-increasing score (ties by ID), i.e. ranked order.
	Present []TupleID
	// Prob is the probability of this world.
	Prob float64
}

// Rank returns the 1-based rank of tuple id inside the world, or 0 if the
// tuple is absent (the paper writes r_pw(t) = ∞ for absent tuples; 0 is this
// package's sentinel for "absent").
func (w World) Rank(id TupleID) int {
	for i, t := range w.Present {
		if t == id {
			return i + 1
		}
	}
	return 0
}

// EnumerateWorlds enumerates all 2^n possible worlds of a tuple-independent
// dataset. It refuses datasets with more than MaxEnumerate tuples. The
// returned worlds have Present sorted in ranked (score) order.
func EnumerateWorlds(d *Dataset) ([]World, error) {
	n := d.Len()
	if n > MaxEnumerate {
		return nil, fmt.Errorf("pdb: refusing to enumerate 2^%d worlds (max %d tuples)", n, MaxEnumerate)
	}
	ordered := d.Clone()
	ordered.SortByScore()
	ts := ordered.Tuples()
	worlds := make([]World, 0, 1<<n)
	for mask := 0; mask < 1<<n; mask++ {
		prob := 1.0
		var present []TupleID
		for i, t := range ts {
			if mask&(1<<i) != 0 {
				prob *= t.Prob
				present = append(present, t.ID)
			} else {
				prob *= 1 - t.Prob
			}
		}
		if prob > 0 {
			worlds = append(worlds, World{Present: present, Prob: prob})
		}
	}
	return worlds, nil
}

// MaxEnumerate bounds exact world enumeration (2^MaxEnumerate worlds).
const MaxEnumerate = 22

// SampleWorld draws one possible world from a tuple-independent dataset.
// The Present slice is in ranked (score) order provided the dataset is
// sorted; callers should SortByScore first.
func SampleWorld(d *Dataset, rng *rand.Rand) World {
	present := make([]TupleID, 0, d.Len())
	for _, t := range d.tuples {
		if rng.Float64() < t.Prob {
			present = append(present, t.ID)
		}
	}
	return World{Present: present, Prob: math.NaN()}
}

// RankDistribution is the positional-probability matrix of a dataset:
// Dist[t][j] = Pr(r(t) = j+1), for tuple ID t and 0-based position j.
// Rows may be shorter than n when trailing probabilities are exactly zero.
type RankDistribution struct {
	// Dist is indexed by TupleID then by 0-based rank.
	Dist [][]float64
}

// At returns Pr(r(id) = rank) for a 1-based rank.
func (rd *RankDistribution) At(id TupleID, rank int) float64 {
	row := rd.Dist[id]
	if rank < 1 || rank > len(row) {
		return 0
	}
	return row[rank-1]
}

// PresenceProb returns Σ_j Pr(r(id)=j) which must equal Pr(id exists).
func (rd *RankDistribution) PresenceProb(id TupleID) float64 {
	var s float64
	for _, p := range rd.Dist[id] {
		s += p
	}
	return s
}

// RankDistributionFromWorlds computes exact positional probabilities by
// summing over an explicit list of worlds. n is the number of tuples (IDs
// must be < n). This is the brute-force gold standard the generating-function
// algorithms are tested against.
func RankDistributionFromWorlds(worlds []World, n int) *RankDistribution {
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for _, w := range worlds {
		for pos, id := range w.Present {
			dist[id][pos] += w.Prob
		}
	}
	return &RankDistribution{Dist: dist}
}

// MedianRankSentinel returns the value MedianRankFromDistribution assigns a
// tuple that is absent from a majority of worlds: n+1, one past the largest
// finite rank, so the sentinel is finite (JSON-encodable) and unambiguous.
func MedianRankSentinel(n int) float64 { return float64(n + 1) }

// MedianRankFromDistribution computes the consensus median rank per tuple
// from a positional-probability matrix: the smallest j ≥ 1 with
// Pr(r(t) ≤ j) ≥ 1/2 under the absent-tuples-rank-∞ convention, or
// MedianRankSentinel(n) when the cumulative presence mass never reaches 1/2
// (the tuple is absent from a majority of worlds). n is the number of
// tuples; every correlated backend and the enumeration oracle feed their own
// matrices through this one fold.
func MedianRankFromDistribution(rd *RankDistribution, n int) []float64 {
	out := make([]float64, n)
	for id := 0; id < n; id++ {
		out[id] = MedianRankSentinel(n)
		cum := 0.0
		for j, p := range rd.Dist[id] {
			cum += p
			if cum >= 0.5 {
				out[id] = float64(j + 1)
				break
			}
		}
	}
	return out
}

// TopKFromWorld returns the first k present tuples of a world (fewer if the
// world is smaller).
func TopKFromWorld(w World, k int) []TupleID {
	if k > len(w.Present) {
		k = len(w.Present)
	}
	out := make([]TupleID, k)
	copy(out, w.Present[:k])
	return out
}

// ScoreMap returns a map from tuple ID to score, handy for metrics that need
// score lookups after the dataset has been re-sorted.
func (d *Dataset) ScoreMap() map[TupleID]float64 {
	m := make(map[TupleID]float64, d.Len())
	for _, t := range d.tuples {
		m[t.ID] = t.Score
	}
	return m
}

// ProbMap returns a map from tuple ID to existence probability.
func (d *Dataset) ProbMap() map[TupleID]float64 {
	m := make(map[TupleID]float64, d.Len())
	for _, t := range d.tuples {
		m[t.ID] = t.Prob
	}
	return m
}
