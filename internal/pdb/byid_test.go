package pdb

import (
	"math/rand"
	"sync"
	"testing"
)

// ByID must return the correct tuple before and after re-sorting (the lazy
// ID→position index is rebuilt whenever the order changes), and must still
// reject unknown IDs.
func TestByIDSurvivesSorting(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 200
	scores := make([]float64, n)
	probs := make([]float64, n)
	for i := range scores {
		scores[i] = float64(rng.Intn(50)) // ties force real reordering
		probs[i] = rng.Float64()
	}
	d := MustDataset(scores, probs)

	check := func(stage string) {
		t.Helper()
		for id := 0; id < n; id++ {
			tu, ok := d.ByID(TupleID(id))
			if !ok {
				t.Fatalf("%s: ByID(%d) not found", stage, id)
			}
			if tu.ID != TupleID(id) || tu.Score != scores[id] || tu.Prob != probs[id] {
				t.Fatalf("%s: ByID(%d) = %+v, want score %v prob %v",
					stage, id, tu, scores[id], probs[id])
			}
		}
		if _, ok := d.ByID(TupleID(n)); ok {
			t.Fatalf("%s: ByID(%d) should not exist", stage, n)
		}
		if _, ok := d.ByID(TupleID(-1)); ok {
			t.Fatalf("%s: ByID(-1) should not exist", stage)
		}
	}

	check("insertion order")
	d.SortByScore()
	check("after SortByScore")
	// A clone must answer independently of the original's cached index.
	c := d.Clone()
	c.SortByScore()
	if tu, ok := c.ByID(0); !ok || tu.ID != 0 {
		t.Fatalf("clone ByID(0) = %+v, %v", tu, ok)
	}
	check("original after clone lookups")
}

// Concurrent first use must be safe: the lazy index build is guarded
// (meaningful under go test -race).
func TestByIDConcurrentFirstUse(t *testing.T) {
	d := MustDataset([]float64{3, 1, 2}, []float64{0.5, 0.5, 0.5})
	d.SortByScore() // drop any cached index
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := 0; id < 3; id++ {
				if tu, ok := d.ByID(TupleID(id)); !ok || tu.ID != TupleID(id) {
					t.Errorf("ByID(%d) = %+v, %v", id, tu, ok)
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkByID(b *testing.B) {
	n := 10000
	scores := make([]float64, n)
	probs := make([]float64, n)
	for i := range scores {
		scores[i] = float64(n - i)
		probs[i] = 0.5
	}
	d := MustDataset(scores, probs)
	d.ByID(0) // warm the index outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ByID(TupleID(i % n))
	}
}
