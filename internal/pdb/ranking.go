package pdb

import (
	"math"
	"math/cmplx"
	"slices"
)

// Ranking is an ordered list of tuple IDs, best first. A top-k answer is a
// Ranking of length k; a full ranking has length n.
type Ranking []TupleID

// TopK returns the first k entries (or all of them if the ranking is shorter).
func (r Ranking) TopK(k int) Ranking {
	if k > len(r) {
		k = len(r)
	}
	out := make(Ranking, k)
	copy(out, r[:k])
	return out
}

// Position returns the 0-based position of id in the ranking, or -1.
func (r Ranking) Position(id TupleID) int {
	for i, t := range r {
		if t == id {
			return i
		}
	}
	return -1
}

// Contains reports whether id appears in the ranking.
func (r Ranking) Contains(id TupleID) bool { return r.Position(id) >= 0 }

// RankByValue sorts tuple IDs 0..n-1 by non-increasing value. Ties are broken
// by ID (ascending) so results are deterministic. values is indexed by
// TupleID.
func RankByValue(values []float64) Ranking {
	return RankByValueInto(values, nil)
}

// RankByAbs ranks by non-increasing magnitude |v| — the paper's top-k
// convention for complex PRFe values. Ties break by ID.
func RankByAbs(vals []complex128) Ranking {
	abs := make([]float64, len(vals))
	for i, v := range vals {
		abs[i] = cmplx.Abs(v)
	}
	return RankByValue(abs)
}

// RankByValueInto is RankByValue ranking into out, which is reallocated only
// when its capacity is short — the allocation-free form for callers that
// rank many value vectors through one reusable buffer. (value desc, ID asc,
// NaN after every number) is a strict total order — IDs are unique — so the
// comparison-based sort is fully determined and the generic pdqsort can be
// used without a stability requirement; it avoids the reflection-based
// swapper of sort.SliceStable entirely, which both speeds the sort up and
// drops its allocations. The explicit NaN arm keeps the comparator a valid
// strict weak ordering even for caller-supplied vectors containing NaN
// (the ranking kernels themselves never produce one).
func RankByValueInto(values []float64, out Ranking) Ranking {
	if cap(out) < len(values) {
		out = make(Ranking, len(values))
	}
	out = out[:len(values)]
	for i := range out {
		out[i] = TupleID(i)
	}
	slices.SortFunc(out, func(a, b TupleID) int {
		va, vb := values[a], values[b]
		if va != vb {
			if va > vb {
				return -1
			}
			if vb > va {
				return 1
			}
			// At least one side is NaN; NaN ranks below every number.
			if an, bn := math.IsNaN(va), math.IsNaN(vb); an != bn {
				if bn {
					return -1
				}
				return 1
			}
		}
		if a < b {
			return -1
		}
		if a > b {
			return 1
		}
		return 0
	})
	return out
}

// RankByValueFor ranks an explicit set of IDs by non-increasing value taken
// from the map, ties broken by ID.
func RankByValueFor(ids []TupleID, value map[TupleID]float64) Ranking {
	out := make(Ranking, len(ids))
	copy(out, ids)
	slices.SortStableFunc(out, func(a, b TupleID) int {
		va, vb := value[a], value[b]
		if va != vb {
			if va > vb {
				return -1
			}
			return 1
		}
		if a < b {
			return -1
		}
		if a > b {
			return 1
		}
		return 0
	})
	return out
}
