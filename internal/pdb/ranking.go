package pdb

import "sort"

// Ranking is an ordered list of tuple IDs, best first. A top-k answer is a
// Ranking of length k; a full ranking has length n.
type Ranking []TupleID

// TopK returns the first k entries (or all of them if the ranking is shorter).
func (r Ranking) TopK(k int) Ranking {
	if k > len(r) {
		k = len(r)
	}
	out := make(Ranking, k)
	copy(out, r[:k])
	return out
}

// Position returns the 0-based position of id in the ranking, or -1.
func (r Ranking) Position(id TupleID) int {
	for i, t := range r {
		if t == id {
			return i
		}
	}
	return -1
}

// Contains reports whether id appears in the ranking.
func (r Ranking) Contains(id TupleID) bool { return r.Position(id) >= 0 }

// RankByValue sorts tuple IDs 0..n-1 by non-increasing value. Ties are broken
// by ID (ascending) so results are deterministic. values is indexed by
// TupleID.
func RankByValue(values []float64) Ranking {
	ids := make(Ranking, len(values))
	for i := range ids {
		ids[i] = TupleID(i)
	}
	sort.SliceStable(ids, func(a, b int) bool {
		va, vb := values[ids[a]], values[ids[b]]
		if va != vb {
			return va > vb
		}
		return ids[a] < ids[b]
	})
	return ids
}

// RankByValueFor ranks an explicit set of IDs by non-increasing value taken
// from the map, ties broken by ID.
func RankByValueFor(ids []TupleID, value map[TupleID]float64) Ranking {
	out := make(Ranking, len(ids))
	copy(out, ids)
	sort.SliceStable(out, func(a, b int) bool {
		va, vb := value[out[a]], value[out[b]]
		if va != vb {
			return va > vb
		}
		return out[a] < out[b]
	})
	return out
}
