// Package exact is the engine's exactness tier: the only sanctioned home
// for IEEE-754 equality on floating-point values. Everywhere else a float
// ==/!= is presumed to be a rounding accident (and the kernelpurity
// analyzer flags it); routing a comparison through this package is an
// explicit declaration that bit-for-bit identity is the contract.
//
// The legitimate uses in this engine are:
//
//   - tie detection inside total-order comparators, where the fallback key
//     (tuple ID, variable index) makes the order deterministic whichever
//     way rounding lands;
//   - change detection in memoized update paths, where a false "different"
//     merely costs a recomputation and a false "same" is impossible
//     because the compared values are copies of each other;
//   - sign/endpoint bookkeeping in bracketing root-finders, where the
//     values being compared were produced by the very same expression.
//
// Same and SameC are trivially inlined; there is no performance cost to
// making the intent explicit.
package exact

// Same reports whether a and b are the same IEEE-754 value under Go's ==
// (so -0 == 0, and NaN is never the Same as anything, including itself).
// Use it only where exact identity is the contract, never as a proximity
// test.
func Same(a, b float64) bool { return a == b }

// SameC is Same for complex128 values: both components must be == equal.
func SameC(a, b complex128) bool { return a == b }
