package exact

import (
	"math"
	"testing"
)

func TestSame(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{1.5, 1.5, true},
		{1.5, 1.5000000000000002, false},
		{0, math.Copysign(0, -1), true}, // IEEE ==: -0 is the same as 0
		{math.NaN(), math.NaN(), false}, // NaN is never Same, even as itself
		{math.Inf(1), math.Inf(1), true},
	}
	for _, c := range cases {
		if got := Same(c.a, c.b); got != c.want {
			t.Errorf("Same(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSameC(t *testing.T) {
	if !SameC(complex(1, 2), complex(1, 2)) {
		t.Error("SameC(1+2i, 1+2i) = false")
	}
	if SameC(complex(1, 2), complex(1, 2.0000000000000004)) {
		t.Error("SameC reported distinct imaginary parts as the same")
	}
	if SameC(complex(math.NaN(), 0), complex(math.NaN(), 0)) {
		t.Error("SameC(NaN+0i, NaN+0i) = true, want false")
	}
}
