package store

// The on-disk segment format. One dataset is one immutable `<name>.seg`
// file:
//
//	offset  size  field
//	0       8     magic "PRFSEG\r\n" (catches text-mode and charset mangling)
//	8       4     format version (little-endian uint32, currently 1)
//	12      4     kind code (1 ind, 2 xrel, 3 tree, 4 chain)
//	16      8     n — tuples (leaves for trees, variables for chains)
//	24      8     generation — monotone per name, bumped by every Import
//	32      4     section count
//	36      4     CRC-32 (IEEE) of bytes [0, 36)
//	40      24·k  section table: {id u32, crc u32, offset u64, length u64}
//	…       4     CRC-32 of the section table bytes
//	…       …     section payloads, contiguous, in table order
//
// The layout is canonical: sections appear in the fixed per-kind order,
// payloads start right after the table and abut each other, and the file
// ends exactly where the last section does. Canonical means decodable ⇒
// bit-for-bit re-encodable, which is what FuzzSegmentDecode pins: any byte
// string either fails to decode with a typed error or round-trips
// identically through Decode → Encode.
//
// Tuple payloads are stored in the engine's canonical prepared order —
// score descending, ties by ascending tuple ID — so opening a segment is a
// sequential scan straight into core.FromSorted with no parse and no sort,
// and a top-k query can materialize just a score prefix (lazy.go).
//
// Version-bump procedure: any change to this layout must (1) increment
// Version, (2) keep decoding old versions or reject them with ErrVersion,
// (3) regenerate the golden segments under testdata/ via
// `go test ./internal/store -run TestGoldenSegments -update-segments`, and (4) note
// the bump in DESIGN.md §5e. The golden drift test exists so an accidental
// layout change fails CI instead of corrupting stores.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/pdb"
)

// Version is the current segment format version.
const Version = 1

// Typed decode errors. Every failure mode wraps one of these, so callers
// (and the fuzz target) can classify corruption without string matching.
var (
	// ErrBadMagic reports a file that is not a PRF segment at all.
	ErrBadMagic = errors.New("store: bad segment magic")
	// ErrVersion reports a segment written by an unknown format version.
	ErrVersion = errors.New("store: unsupported segment version")
	// ErrTruncated reports a segment shorter than its header declares.
	ErrTruncated = errors.New("store: truncated segment")
	// ErrChecksum reports a header, table or section CRC mismatch.
	ErrChecksum = errors.New("store: segment checksum mismatch")
	// ErrCorrupt reports a structurally invalid segment: wrong section
	// layout, non-canonical tuple order, out-of-range values.
	ErrCorrupt = errors.New("store: corrupt segment")
)

const (
	magicStr    = "PRFSEG\r\n"
	fixedHdrLen = 40
	secDescLen  = 24
	maxSections = 8
	// maxTuples bounds header n before any size arithmetic, keeping the
	// expected-length computations below free of uint64 overflow.
	maxTuples = 1 << 32
	// maxTreeDepth bounds tree-spec nesting in both directions so a hostile
	// segment cannot overflow the decoder's stack.
	maxTreeDepth = 4096
)

// Section IDs.
const (
	secIDs    uint32 = 1 // uint32 per tuple: original tuple ID, prepared order
	secScores uint32 = 2 // float64 bits per tuple
	secProbs  uint32 = 3 // float64 bits per tuple
	secGroups uint32 = 4 // uint32 per leaf: x-tuple index, non-decreasing dense
	secTree   uint32 = 5 // preorder binary and/xor tree spec
	secPairs  uint32 = 6 // 4 float64 per adjacent chain pair: p00,p01,p10,p11
)

// Kind codes (header field); the string kinds are the public surface.
var kindCodes = map[string]uint32{
	KindIndependent: 1,
	KindXRelation:   2,
	KindTree:        3,
	KindChain:       4,
}

var kindNames = map[uint32]string{
	1: KindIndependent,
	2: KindXRelation,
	3: KindTree,
	4: KindChain,
}

// kindSections is the fixed, canonical section order per kind.
var kindSections = map[string][]uint32{
	KindIndependent: {secIDs, secScores, secProbs},
	KindXRelation:   {secScores, secProbs, secGroups},
	KindTree:        {secTree},
	KindChain:       {secScores, secPairs},
}

// section is one parsed section-table entry.
type section struct {
	id  uint32
	crc uint32
	off uint64
	len uint64
}

// header is the parsed fixed header plus section table.
type header struct {
	kind     string
	n        int
	gen      uint64
	sections []section
	size     int64 // total canonical file length
}

func (h *header) section(id uint32) (section, bool) {
	for _, s := range h.sections {
		if s.id == id {
			return s, true
		}
	}
	return section{}, false
}

// expectedLen returns the canonical payload length of a fixed-width
// section, or ok=false for variable-length ones (the tree spec).
func expectedLen(id uint32, n uint64) (uint64, bool) {
	switch id {
	case secIDs, secGroups:
		return 4 * n, true
	case secScores, secProbs:
		return 8 * n, true
	case secPairs:
		return 32 * (n - 1), true
	default:
		return 0, false
	}
}

// readHeader parses and validates the fixed header and section table from
// an open segment. It checks both CRCs and the full canonical layout
// (section order, lengths, contiguity, exact file size) but reads no
// section payloads.
func readHeader(r io.ReaderAt, size int64) (*header, error) {
	if size < fixedHdrLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrTruncated, size, fixedHdrLen)
	}
	fixed := make([]byte, fixedHdrLen)
	if _, err := r.ReadAt(fixed, 0); err != nil {
		return nil, fmt.Errorf("store: reading header: %w", err)
	}
	if string(fixed[:8]) != magicStr {
		return nil, fmt.Errorf("%w: %q", ErrBadMagic, fixed[:8])
	}
	if got := binary.LittleEndian.Uint32(fixed[36:40]); got != crc32.ChecksumIEEE(fixed[:36]) {
		return nil, fmt.Errorf("%w: header", ErrChecksum)
	}
	if v := binary.LittleEndian.Uint32(fixed[8:12]); v != Version {
		return nil, fmt.Errorf("%w: %d (this build reads version %d)", ErrVersion, v, Version)
	}
	kind, ok := kindNames[binary.LittleEndian.Uint32(fixed[12:16])]
	if !ok {
		return nil, fmt.Errorf("%w: unknown kind code %d", ErrCorrupt, binary.LittleEndian.Uint32(fixed[12:16]))
	}
	n := binary.LittleEndian.Uint64(fixed[16:24])
	if n == 0 || n > maxTuples {
		return nil, fmt.Errorf("%w: tuple count %d", ErrCorrupt, n)
	}
	want := kindSections[kind]
	secCount := binary.LittleEndian.Uint32(fixed[32:36])
	if secCount > maxSections || int(secCount) != len(want) {
		return nil, fmt.Errorf("%w: kind %s wants %d sections, header says %d", ErrCorrupt, kind, len(want), secCount)
	}
	tableLen := int64(secCount)*secDescLen + 4
	dataOff := fixedHdrLen + tableLen
	if size < dataOff {
		return nil, fmt.Errorf("%w: no room for the %d-entry section table", ErrTruncated, secCount)
	}
	table := make([]byte, tableLen)
	if _, err := r.ReadAt(table, fixedHdrLen); err != nil {
		return nil, fmt.Errorf("store: reading section table: %w", err)
	}
	raw, sum := table[:tableLen-4], binary.LittleEndian.Uint32(table[tableLen-4:])
	if sum != crc32.ChecksumIEEE(raw) {
		return nil, fmt.Errorf("%w: section table", ErrChecksum)
	}
	h := &header{kind: kind, n: int(n), gen: binary.LittleEndian.Uint64(fixed[24:32])}
	next := uint64(dataOff)
	for i := range want {
		d := raw[i*secDescLen:]
		s := section{
			id:  binary.LittleEndian.Uint32(d[0:4]),
			crc: binary.LittleEndian.Uint32(d[4:8]),
			off: binary.LittleEndian.Uint64(d[8:16]),
			len: binary.LittleEndian.Uint64(d[16:24]),
		}
		if s.id != want[i] {
			return nil, fmt.Errorf("%w: section %d is id %d, canonical order wants %d", ErrCorrupt, i, s.id, want[i])
		}
		if s.off != next {
			return nil, fmt.Errorf("%w: section %d at offset %d, canonical layout wants %d", ErrCorrupt, s.id, s.off, next)
		}
		if wantLen, fixedWidth := expectedLen(s.id, n); fixedWidth && s.len != wantLen {
			return nil, fmt.Errorf("%w: section %d is %d bytes, n=%d wants %d", ErrCorrupt, s.id, s.len, n, wantLen)
		}
		if s.len > uint64(size)-next { // next ≤ size is maintained inductively
			return nil, fmt.Errorf("%w: section %d runs past the file end", ErrTruncated, s.id)
		}
		next += s.len
		h.sections = append(h.sections, s)
	}
	if int64(next) != size {
		return nil, fmt.Errorf("%w: %d trailing bytes after the last section", ErrCorrupt, size-int64(next))
	}
	h.size = size
	return h, nil
}

// readSection reads one full section payload, verifying its CRC.
func readSection(r io.ReaderAt, s section) ([]byte, error) {
	buf := make([]byte, s.len)
	if _, err := r.ReadAt(buf, int64(s.off)); err != nil {
		return nil, fmt.Errorf("store: reading section %d: %w", s.id, err)
	}
	if crc32.ChecksumIEEE(buf) != s.crc {
		return nil, fmt.Errorf("%w: section %d", ErrChecksum, s.id)
	}
	return buf, nil
}

// Encode serializes a canonical Dataset into segment bytes at the current
// format version. The dataset must satisfy the canonical invariants
// (Dataset.validate); Import establishes them for parsed input.
func Encode(ds *Dataset, generation uint64) ([]byte, error) {
	if err := ds.validate(); err != nil {
		return nil, err
	}
	n := ds.len()
	order := kindSections[ds.Kind]
	payloads := make([][]byte, len(order))
	for i, id := range order {
		switch id {
		case secIDs:
			b := make([]byte, 4*n)
			for j, v := range ds.IDs {
				binary.LittleEndian.PutUint32(b[4*j:], uint32(v))
			}
			payloads[i] = b
		case secScores:
			payloads[i] = encodeFloats(ds.Scores)
		case secProbs:
			payloads[i] = encodeFloats(ds.Probs)
		case secGroups:
			b := make([]byte, 4*n)
			for j, v := range ds.Groups {
				binary.LittleEndian.PutUint32(b[4*j:], v)
			}
			payloads[i] = b
		case secTree:
			payloads[i] = encodeTree(ds.Tree)
		case secPairs:
			b := make([]byte, 32*(n-1))
			for j, p := range ds.Pairs {
				binary.LittleEndian.PutUint64(b[32*j:], math.Float64bits(p[0][0]))
				binary.LittleEndian.PutUint64(b[32*j+8:], math.Float64bits(p[0][1]))
				binary.LittleEndian.PutUint64(b[32*j+16:], math.Float64bits(p[1][0]))
				binary.LittleEndian.PutUint64(b[32*j+24:], math.Float64bits(p[1][1]))
			}
			payloads[i] = b
		}
	}

	tableLen := len(order)*secDescLen + 4
	dataOff := fixedHdrLen + tableLen
	total := dataOff
	for _, p := range payloads {
		total += len(p)
	}
	out := make([]byte, total)
	copy(out, magicStr)
	binary.LittleEndian.PutUint32(out[8:], Version)
	binary.LittleEndian.PutUint32(out[12:], kindCodes[ds.Kind])
	binary.LittleEndian.PutUint64(out[16:], uint64(n))
	binary.LittleEndian.PutUint64(out[24:], generation)
	binary.LittleEndian.PutUint32(out[32:], uint32(len(order)))
	binary.LittleEndian.PutUint32(out[36:], crc32.ChecksumIEEE(out[:36]))
	off := uint64(dataOff)
	for i, id := range order {
		d := out[fixedHdrLen+i*secDescLen:]
		binary.LittleEndian.PutUint32(d[0:], id)
		binary.LittleEndian.PutUint32(d[4:], crc32.ChecksumIEEE(payloads[i]))
		binary.LittleEndian.PutUint64(d[8:], off)
		binary.LittleEndian.PutUint64(d[16:], uint64(len(payloads[i])))
		copy(out[off:], payloads[i])
		off += uint64(len(payloads[i]))
	}
	tbl := out[fixedHdrLen : fixedHdrLen+len(order)*secDescLen]
	binary.LittleEndian.PutUint32(out[fixedHdrLen+len(order)*secDescLen:], crc32.ChecksumIEEE(tbl))
	return out, nil
}

func encodeFloats(fs []float64) []byte {
	b := make([]byte, 8*len(fs))
	for i, f := range fs {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(f))
	}
	return b
}

func decodeFloats(b []byte) []float64 {
	fs := make([]float64, len(b)/8)
	for i := range fs {
		fs[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return fs
}

// Decode parses segment bytes into the Dataset and generation they carry,
// verifying every checksum and every canonical invariant. Decode succeeding
// guarantees Encode(ds, gen) reproduces data bit-for-bit.
func Decode(data []byte) (*Dataset, uint64, error) {
	h, err := readHeader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, 0, err
	}
	ds := &Dataset{Kind: h.kind}
	for _, s := range h.sections {
		buf, err := readSection(bytes.NewReader(data), s)
		if err != nil {
			return nil, 0, err
		}
		switch s.id {
		case secIDs:
			ds.IDs = make([]pdb.TupleID, h.n)
			for i := range ds.IDs {
				ds.IDs[i] = pdb.TupleID(binary.LittleEndian.Uint32(buf[4*i:]))
			}
		case secScores:
			ds.Scores = decodeFloats(buf)
		case secProbs:
			ds.Probs = decodeFloats(buf)
		case secGroups:
			ds.Groups = make([]uint32, h.n)
			for i := range ds.Groups {
				ds.Groups[i] = binary.LittleEndian.Uint32(buf[4*i:])
			}
		case secTree:
			t, err := decodeTree(buf, h.n)
			if err != nil {
				return nil, 0, err
			}
			ds.Tree = t
		case secPairs:
			ds.Pairs = make([][2][2]float64, h.n-1)
			for i := range ds.Pairs {
				ds.Pairs[i][0][0] = math.Float64frombits(binary.LittleEndian.Uint64(buf[32*i:]))
				ds.Pairs[i][0][1] = math.Float64frombits(binary.LittleEndian.Uint64(buf[32*i+8:]))
				ds.Pairs[i][1][0] = math.Float64frombits(binary.LittleEndian.Uint64(buf[32*i+16:]))
				ds.Pairs[i][1][1] = math.Float64frombits(binary.LittleEndian.Uint64(buf[32*i+24:]))
			}
		}
	}
	if err := ds.validate(); err != nil {
		return nil, 0, err
	}
	return ds, h.gen, nil
}

// Tree-spec binary encoding: a preorder walk with fixed-width fields (no
// varints, so every well-formed structure has exactly one encoding).
//
//	node  := leaf | and | xor
//	leaf  := 0x01 keyLen:u32 key:bytes score:f64bits
//	and   := 0x02 childCount:u32 node*
//	xor   := 0x03 childCount:u32 prob:f64bits* node*
const (
	treeTagLeaf = 0x01
	treeTagAnd  = 0x02
	treeTagXor  = 0x03
	minNodeLen  = 5 // smallest encodable node: a childless and/xor
)

func encodeTree(spec *TreeSpec) []byte {
	var buf bytes.Buffer
	var walk func(s *TreeSpec)
	walk = func(s *TreeSpec) {
		var b [8]byte
		switch {
		case s.Leaf != nil:
			buf.WriteByte(treeTagLeaf)
			binary.LittleEndian.PutUint32(b[:4], uint32(len(s.Leaf.Key)))
			buf.Write(b[:4])
			buf.WriteString(s.Leaf.Key)
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(s.Leaf.Score))
			buf.Write(b[:8])
		case s.Xor != nil:
			buf.WriteByte(treeTagXor)
			binary.LittleEndian.PutUint32(b[:4], uint32(len(s.Xor.Children)))
			buf.Write(b[:4])
			for _, p := range s.Xor.Probs {
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(p))
				buf.Write(b[:8])
			}
			for i := range s.Xor.Children {
				walk(&s.Xor.Children[i])
			}
		default:
			buf.WriteByte(treeTagAnd)
			binary.LittleEndian.PutUint32(b[:4], uint32(len(s.And)))
			buf.Write(b[:4])
			for i := range s.And {
				walk(&s.And[i])
			}
		}
	}
	walk(spec)
	return buf.Bytes()
}

// treeCursor decodes the preorder tree payload with hard bounds on depth
// and fan-out so hostile input cannot blow the stack or the heap.
type treeCursor struct {
	b      []byte
	pos    int
	leaves int
}

func (c *treeCursor) remaining() int { return len(c.b) - c.pos }

func (c *treeCursor) u32() (uint32, error) {
	if c.remaining() < 4 {
		return 0, fmt.Errorf("%w: tree spec ends inside a field", ErrTruncated)
	}
	v := binary.LittleEndian.Uint32(c.b[c.pos:])
	c.pos += 4
	return v, nil
}

func (c *treeCursor) f64() (float64, error) {
	if c.remaining() < 8 {
		return 0, fmt.Errorf("%w: tree spec ends inside a field", ErrTruncated)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(c.b[c.pos:]))
	c.pos += 8
	return v, nil
}

func (c *treeCursor) node(depth int) (TreeSpec, error) {
	if depth > maxTreeDepth {
		return TreeSpec{}, fmt.Errorf("%w: tree spec nests deeper than %d", ErrCorrupt, maxTreeDepth)
	}
	if c.remaining() < 1 {
		return TreeSpec{}, fmt.Errorf("%w: tree spec ends at a node boundary", ErrTruncated)
	}
	tag := c.b[c.pos]
	c.pos++
	switch tag {
	case treeTagLeaf:
		keyLen, err := c.u32()
		if err != nil {
			return TreeSpec{}, err
		}
		if int(keyLen) > c.remaining() {
			return TreeSpec{}, fmt.Errorf("%w: leaf key runs past the spec", ErrTruncated)
		}
		key := string(c.b[c.pos : c.pos+int(keyLen)])
		c.pos += int(keyLen)
		score, err := c.f64()
		if err != nil {
			return TreeSpec{}, err
		}
		c.leaves++
		return TreeSpec{Leaf: &LeafSpec{Key: key, Score: score}}, nil
	case treeTagAnd, treeTagXor:
		count, err := c.u32()
		if err != nil {
			return TreeSpec{}, err
		}
		if int64(count)*minNodeLen > int64(c.remaining()) {
			return TreeSpec{}, fmt.Errorf("%w: node claims %d children in %d bytes", ErrCorrupt, count, c.remaining())
		}
		var probs []float64
		if tag == treeTagXor {
			probs = make([]float64, count)
			for i := range probs {
				if probs[i], err = c.f64(); err != nil {
					return TreeSpec{}, err
				}
			}
		}
		children := make([]TreeSpec, count)
		for i := range children {
			if children[i], err = c.node(depth + 1); err != nil {
				return TreeSpec{}, err
			}
		}
		if tag == treeTagXor {
			return TreeSpec{Xor: &XorSpec{Probs: probs, Children: children}}, nil
		}
		return TreeSpec{And: children}, nil
	default:
		return TreeSpec{}, fmt.Errorf("%w: unknown tree node tag %d", ErrCorrupt, tag)
	}
}

func decodeTree(b []byte, n int) (*TreeSpec, error) {
	c := &treeCursor{b: b}
	root, err := c.node(0)
	if err != nil {
		return nil, err
	}
	if c.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after the tree spec", ErrCorrupt, c.remaining())
	}
	if c.leaves != n {
		return nil, fmt.Errorf("%w: tree spec has %d leaves, header says %d", ErrCorrupt, c.leaves, n)
	}
	return &root, nil
}
