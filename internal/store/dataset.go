package store

// Dataset is the neutral, storage-ready form of one dataset: flat arrays
// (plus a tree spec for the structured kinds) in the exact canonical order
// the engine's prepared views use. Parse produces one from the same CSV and
// JSON formats the serving layer has always accepted; Encode/Decode move it
// to and from segment bytes; Engine builds the prepared ranking engine.
// The serving layer's loaders delegate here, so a dataset imported into a
// store and one parsed at startup go through identical validation.

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"

	"repro/internal/andxor"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/junction"
	"repro/internal/pdb"
)

// Kinds accepted by Parse.
const (
	KindIndependent = "ind"   // CSV: score,probability
	KindXRelation   = "xrel"  // CSV: score,probability,group
	KindTree        = "tree"  // JSON: nested and/xor spec
	KindChain       = "chain" // JSON: {"scores": [...], "pairs": [...]}
)

// Kinds lists every dataset kind, in the order the docs present them.
var Kinds = []string{KindIndependent, KindXRelation, KindTree, KindChain}

// Dataset is one parsed dataset. Which fields are set depends on Kind:
//
//	ind    IDs, Scores, Probs — tuples in prepared (score desc, ID asc)
//	       order, IDs the original 0-based input positions
//	xrel   Scores, Probs, Groups — leaves flattened group by group in
//	       XTuples leaf-ID order; Groups is the dense, non-decreasing
//	       x-tuple index per leaf
//	tree   Tree — the and/xor spec; leaf IDs are preorder positions
//	chain  Scores, Pairs — n variable scores and n−1 pairwise joints
type Dataset struct {
	Kind   string
	IDs    []pdb.TupleID
	Scores []float64
	Probs  []float64
	Groups []uint32
	Tree   *TreeSpec
	Pairs  [][2][2]float64
}

// len returns the tuple count (leaves for trees, variables for chains).
func (ds *Dataset) len() int {
	if ds.Kind == KindTree {
		return ds.Tree.leaves()
	}
	return len(ds.Scores)
}

// Len reports the number of tuples in the dataset.
func (ds *Dataset) Len() int { return ds.len() }

// validate checks the canonical invariants Encode requires and Decode
// guarantees. It validates all the way down to model semantics by building
// (and discarding) the backend model, so a dataset that validates is a
// dataset Engine can serve: decode success implies open success.
func (ds *Dataset) validate() error {
	n := ds.len()
	if n < 1 {
		return fmt.Errorf("%w: empty dataset", ErrCorrupt)
	}
	if n > maxTuples {
		return fmt.Errorf("%w: %d tuples exceeds the format cap %d", ErrCorrupt, n, maxTuples)
	}
	switch ds.Kind {
	case KindIndependent:
		if _, err := core.FromSorted(ds.IDs, ds.Scores, ds.Probs); err != nil {
			return fmt.Errorf("%w: independent arrays: %w", ErrCorrupt, err)
		}
	case KindXRelation:
		if len(ds.Probs) != n || len(ds.Groups) != n {
			return fmt.Errorf("%w: x-relation arrays disagree on length", ErrCorrupt)
		}
		if ds.Groups[0] != 0 {
			return fmt.Errorf("%w: x-relation groups must start at 0", ErrCorrupt)
		}
		for i := 1; i < n; i++ {
			if g, prev := ds.Groups[i], ds.Groups[i-1]; g != prev && g != prev+1 {
				return fmt.Errorf("%w: x-relation group indices must be dense and non-decreasing", ErrCorrupt)
			}
		}
		if _, err := andxor.XTuples(ds.xgroups()); err != nil {
			return fmt.Errorf("%w: x-relation: %w", ErrCorrupt, err)
		}
	case KindTree:
		if _, err := ds.tree(); err != nil {
			return fmt.Errorf("%w: %w", ErrCorrupt, err)
		}
	case KindChain:
		if len(ds.Pairs) != n-1 {
			return fmt.Errorf("%w: chain has %d scores but %d pairwise joints", ErrCorrupt, n, len(ds.Pairs))
		}
		if _, err := junction.NewChain(ds.Scores, ds.Pairs); err != nil {
			return fmt.Errorf("%w: chain: %w", ErrCorrupt, err)
		}
	default:
		return fmt.Errorf("%w: unknown dataset kind %q", ErrCorrupt, ds.Kind)
	}
	return nil
}

// xgroups reassembles the [][]Alternative grouping from the flattened
// x-relation arrays.
func (ds *Dataset) xgroups() [][]andxor.Alternative {
	var groups [][]andxor.Alternative
	for i := range ds.Scores {
		g := int(ds.Groups[i])
		if g == len(groups) {
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], andxor.Alternative{Score: ds.Scores[i], Prob: ds.Probs[i]})
	}
	return groups
}

// tree builds (and validates) the and/xor tree for a tree-kind dataset.
func (ds *Dataset) tree() (*andxor.Tree, error) {
	root, err := ds.Tree.node("root")
	if err != nil {
		return nil, err
	}
	return andxor.New(root)
}

// Engine builds a prepared ranking engine for the dataset. For independent
// tuples this is the sequential-scan fast path: the arrays are already in
// prepared order, so core.FromSorted admits them without re-sorting.
func (ds *Dataset) Engine() (*engine.Engine, error) {
	switch ds.Kind {
	case KindIndependent:
		v, err := core.FromSorted(ds.IDs, ds.Scores, ds.Probs)
		if err != nil {
			return nil, err
		}
		return engine.New(v), nil
	case KindXRelation:
		t, err := andxor.XTuples(ds.xgroups())
		if err != nil {
			return nil, err
		}
		return engine.New(andxor.PrepareTree(t)), nil
	case KindTree:
		t, err := ds.tree()
		if err != nil {
			return nil, err
		}
		return engine.New(andxor.PrepareTree(t)), nil
	case KindChain:
		c, err := junction.NewChain(ds.Scores, ds.Pairs)
		if err != nil {
			return nil, err
		}
		return engine.New(junction.PrepareChain(c)), nil
	default:
		return nil, fmt.Errorf("store: unknown dataset kind %q", ds.Kind)
	}
}

// Parse parses one dataset of the given kind from a reader into its
// canonical storage form.
func Parse(kind string, r io.Reader) (*Dataset, error) {
	switch kind {
	case KindIndependent:
		return ParseIndependentCSV(r)
	case KindXRelation:
		return ParseXRelationCSV(r)
	case KindTree:
		return ParseTreeJSON(r)
	case KindChain:
		return ParseChainJSON(r)
	default:
		return nil, fmt.Errorf("store: unknown dataset kind %q (want %s|%s|%s|%s)",
			kind, KindIndependent, KindXRelation, KindTree, KindChain)
	}
}

// readCSV parses score,probability[,group] rows (an optional non-numeric
// header row is skipped) and reports whether any row carried a group.
func readCSV(r io.Reader) (scores, probs []float64, groups []string, grouped bool, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, nil, false, err
		}
		line++
		if len(rec) < 2 {
			return nil, nil, nil, false, fmt.Errorf("store: line %d: need score,probability", line)
		}
		if line == 1 {
			_, err0 := strconv.ParseFloat(rec[0], 64)
			_, err1 := strconv.ParseFloat(rec[1], 64)
			// Only a row that is non-numeric in BOTH value columns reads as
			// a header; a data row with one typo'd field must error below,
			// not silently vanish (it would shift every tuple ID).
			if err0 != nil && err1 != nil {
				continue
			}
		}
		s, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, nil, nil, false, fmt.Errorf("store: line %d: bad score %q", line, rec[0])
		}
		p, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, nil, nil, false, fmt.Errorf("store: line %d: bad probability %q", line, rec[1])
		}
		scores = append(scores, s)
		probs = append(probs, p)
		g := ""
		if len(rec) >= 3 {
			g = rec[2]
		}
		if g != "" {
			grouped = true
		}
		groups = append(groups, g)
	}
	return scores, probs, groups, grouped, nil
}

// ParseIndependentCSV parses score,probability rows as a tuple-independent
// dataset and canonicalizes them into prepared (score desc, ID asc) order —
// the sort is paid here, once, so a stored segment never needs it again. A
// group column, if present, is an error — use ParseXRelationCSV for
// x-relations.
func ParseIndependentCSV(r io.Reader) (*Dataset, error) {
	scores, probs, _, grouped, err := readCSV(r)
	if err != nil {
		return nil, err
	}
	if grouped {
		return nil, errors.New("store: independent CSV has a group column; load it as an x-relation (kind xrel)")
	}
	if len(scores) == 0 {
		return nil, errors.New("store: empty dataset")
	}
	d, err := pdb.NewDataset(scores, probs)
	if err != nil {
		return nil, err
	}
	v := core.Prepare(d)
	return &Dataset{Kind: KindIndependent, IDs: v.IDs(), Scores: v.Scores(), Probs: v.Probs()}, nil
}

// ParseXRelationCSV parses score,probability,group rows as an x-relation:
// rows sharing a group label are mutually exclusive alternatives of one
// x-tuple, grouped in label first-appearance order (the shared CSV
// convention — see andxor.GroupRows). The stored arrays are the leaves
// flattened group by group, which is exactly XTuples leaf-ID order.
func ParseXRelationCSV(r io.Reader) (*Dataset, error) {
	scores, probs, labels, _, err := readCSV(r)
	if err != nil {
		return nil, err
	}
	if len(scores) == 0 {
		return nil, errors.New("store: empty dataset")
	}
	gs, _ := andxor.GroupRows(scores, probs, labels)
	if _, err := andxor.XTuples(gs); err != nil {
		return nil, err
	}
	ds := &Dataset{Kind: KindXRelation}
	for g, alts := range gs {
		for _, a := range alts {
			ds.Scores = append(ds.Scores, a.Score)
			ds.Probs = append(ds.Probs, a.Prob)
			ds.Groups = append(ds.Groups, uint32(g))
		}
	}
	return ds, nil
}

// TreeSpec is the recursive form of an and/xor tree node — exactly one of
// Leaf, And, Xor per node. It doubles as the JSON schema the loaders accept:
//
//	{"and": [
//	  {"xor": {"probs": [0.4, 0.6], "children": [
//	    {"leaf": {"score": 120}}, {"leaf": {"score": 80}}]}},
//	  {"leaf": {"key": "t3", "score": 95}}]}
type TreeSpec struct {
	Leaf *LeafSpec  `json:"leaf,omitempty"`
	And  []TreeSpec `json:"and,omitempty"`
	Xor  *XorSpec   `json:"xor,omitempty"`
}

// LeafSpec is a tree leaf: an optional mutual-exclusion key and a score.
type LeafSpec struct {
	Key   string  `json:"key,omitempty"`
	Score float64 `json:"score"`
}

// XorSpec is a ∨ node: edge probabilities paired with children.
type XorSpec struct {
	Probs    []float64  `json:"probs"`
	Children []TreeSpec `json:"children"`
}

// leaves counts the leaves of the spec.
func (ts *TreeSpec) leaves() int {
	if ts == nil {
		return 0
	}
	if ts.Leaf != nil {
		return 1
	}
	n := 0
	for i := range ts.And {
		n += ts.And[i].leaves()
	}
	if ts.Xor != nil {
		for i := range ts.Xor.Children {
			n += ts.Xor.Children[i].leaves()
		}
	}
	return n
}

// node builds the andxor node for a spec.
func (ts *TreeSpec) node(path string) (*andxor.Node, error) {
	set := 0
	if ts.Leaf != nil {
		set++
	}
	if len(ts.And) > 0 {
		set++
	}
	if ts.Xor != nil {
		set++
	}
	if set != 1 {
		return nil, fmt.Errorf("store: tree node %s must set exactly one of leaf, and, xor", path)
	}
	switch {
	case ts.Leaf != nil:
		if ts.Leaf.Key != "" {
			return andxor.NewKeyedLeaf(ts.Leaf.Key, ts.Leaf.Score), nil
		}
		return andxor.NewLeaf(ts.Leaf.Score), nil
	case ts.Xor != nil:
		if len(ts.Xor.Probs) != len(ts.Xor.Children) {
			return nil, fmt.Errorf("store: tree node %s has %d probs for %d children", path, len(ts.Xor.Probs), len(ts.Xor.Children))
		}
		kids := make([]*andxor.Node, len(ts.Xor.Children))
		for i := range ts.Xor.Children {
			n, err := ts.Xor.Children[i].node(fmt.Sprintf("%s.xor[%d]", path, i))
			if err != nil {
				return nil, err
			}
			kids[i] = n
		}
		return andxor.NewXor(ts.Xor.Probs, kids...), nil
	default:
		kids := make([]*andxor.Node, len(ts.And))
		for i := range ts.And {
			n, err := ts.And[i].node(fmt.Sprintf("%s.and[%d]", path, i))
			if err != nil {
				return nil, err
			}
			kids[i] = n
		}
		return andxor.NewAnd(kids...), nil
	}
}

// ParseTreeJSON parses a nested and/xor tree spec (see TreeSpec).
// Probability and key constraints are validated by the tree constructor.
func ParseTreeJSON(r io.Reader) (*Dataset, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec TreeSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("store: malformed tree spec: %w", err)
	}
	ds := &Dataset{Kind: KindTree, Tree: &spec}
	if _, err := ds.tree(); err != nil {
		return nil, err
	}
	return ds, nil
}

// chainSpec is the JSON form of a Markov chain: n scores and n−1 calibrated
// pairwise joints Pr(Y_j, Y_{j+1}), each a [[p00, p01], [p10, p11]] table.
type chainSpec struct {
	Scores []float64       `json:"scores"`
	Pairs  [][2][2]float64 `json:"pairs"`
}

// ParseChainJSON parses a Markov chain spec. Calibration of the pairwise
// joints is validated by the chain constructor.
func ParseChainJSON(r io.Reader) (*Dataset, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec chainSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("store: malformed chain spec: %w", err)
	}
	if _, err := junction.NewChain(spec.Scores, spec.Pairs); err != nil {
		return nil, err
	}
	return &Dataset{Kind: KindChain, Scores: spec.Scores, Pairs: spec.Pairs}, nil
}
