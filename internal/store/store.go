// Package store is a disk-backed dataset store for the ranking engine.
//
// Datasets are persisted as immutable binary segments (format.go) whose
// tuple payloads are already in the engine's canonical prepared order, so
// opening one is a sequential scan straight into a prepared view — the
// paper's amortize-the-sort insight extended to disk: the sort is paid once
// at import, not per process start. Independent-tuple segments additionally
// open lazily (lazy.go): a top-k query against a cold dataset materializes
// only the score prefix it needs.
//
// A store is a flat directory of `<name>.seg` files. Imports are atomic
// (write-temp-then-rename) and bump a per-name generation carried in the
// segment header; readers hold their own open file handle, so replacing or
// deleting a segment never disturbs a dataset that is already open — the
// snapshot semantics the serving layer's hot-swap endpoints rely on.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/pdb"
)

// Store-level errors.
var (
	// ErrNotFound reports a dataset name with no segment in the store.
	ErrNotFound = errors.New("store: dataset not found")
	// ErrBadName reports a dataset name outside [A-Za-z0-9._-]
	// (or leading-dot, empty, or longer than 128 bytes).
	ErrBadName = errors.New("store: invalid dataset name")
)

const segExt = ".seg"

// Store is a dataset store rooted at one directory.
type Store struct {
	dir string
}

// Open opens (creating if needed) the store directory.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// CheckName validates a dataset name: 1–128 bytes of [A-Za-z0-9._-], not
// starting with a dot. Names are file stems, so the alphabet is exactly the
// portable-filename set — nothing a path or an URL needs escaping for.
func CheckName(name string) error {
	if name == "" || len(name) > 128 || name[0] == '.' {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("%w: %q", ErrBadName, name)
		}
	}
	return nil
}

func (s *Store) path(name string) string {
	return filepath.Join(s.dir, name+segExt)
}

// Info describes one stored dataset, from its segment header alone.
type Info struct {
	Name       string `json:"name"`
	Kind       string `json:"kind"`
	Tuples     int    `json:"tuples"`
	Generation uint64 `json:"generation"`
	SizeBytes  int64  `json:"size_bytes"`
}

// Names lists the dataset names present in the store, sorted.
func (s *Store) Names() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing %s: %w", s.dir, err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), segExt) {
			continue
		}
		name := strings.TrimSuffix(e.Name(), segExt)
		if CheckName(name) == nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Info reads one dataset's segment header.
func (s *Store) Info(name string) (Info, error) {
	h, err := s.OpenHandle(name)
	if err != nil {
		return Info{}, err
	}
	defer h.Close()
	return h.Info(), nil
}

// Import parses nothing and trusts nothing: it validates the dataset's
// canonical invariants, serializes it at the current format version with
// the next generation for this name (1 if new), and atomically replaces any
// existing segment via rename. Open handles on the old segment keep reading
// the old snapshot.
func (s *Store) Import(name string, ds *Dataset) (Info, error) {
	if err := CheckName(name); err != nil {
		return Info{}, err
	}
	gen := uint64(1)
	if old, err := s.Info(name); err == nil {
		gen = old.Generation + 1
	}
	data, err := Encode(ds, gen)
	if err != nil {
		return Info{}, err
	}
	if err := s.writeAtomic(name, data); err != nil {
		return Info{}, err
	}
	return Info{Name: name, Kind: ds.Kind, Tuples: ds.len(), Generation: gen, SizeBytes: int64(len(data))}, nil
}

// writeAtomic writes segment bytes to a temp file in the store directory,
// syncs, and renames it over the target.
func (s *Store) writeAtomic(name string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, "."+name+".tmp*")
	if err != nil {
		return fmt.Errorf("store: importing %s: %w", name, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: importing %s: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: importing %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: importing %s: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), s.path(name)); err != nil {
		return fmt.Errorf("store: importing %s: %w", name, err)
	}
	if d, err := os.Open(s.dir); err == nil { // best-effort directory sync
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// Delete removes a dataset's segment. Open handles keep their snapshot.
func (s *Store) Delete(name string) error {
	if err := CheckName(name); err != nil {
		return err
	}
	if err := os.Remove(s.path(name)); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		return fmt.Errorf("store: deleting %s: %w", name, err)
	}
	return nil
}

// Dataset reads and fully decodes one stored dataset, verifying every
// checksum and canonical invariant.
func (s *Store) Dataset(name string) (*Dataset, uint64, error) {
	h, err := s.OpenHandle(name)
	if err != nil {
		return nil, 0, err
	}
	defer h.Close()
	return h.Dataset()
}

// Verify checks one segment end to end: header and section checksums, the
// canonical invariants, and that re-encoding the decoded dataset reproduces
// the file bit-for-bit.
func (s *Store) Verify(name string) error {
	h, err := s.OpenHandle(name)
	if err != nil {
		return err
	}
	defer h.Close()
	ds, gen, err := h.Dataset()
	if err != nil {
		return err
	}
	again, err := Encode(ds, gen)
	if err != nil {
		return err
	}
	raw := make([]byte, h.hdr.size)
	if _, err := h.f.ReadAt(raw, 0); err != nil {
		return fmt.Errorf("store: rereading %s: %w", name, err)
	}
	if string(again) != string(raw) {
		return fmt.Errorf("%w: %s does not re-encode canonically", ErrCorrupt, name)
	}
	return nil
}

// Compact rewrites one segment canonically at the current format version,
// preserving its generation. On an intact store this is a no-op rewrite;
// its value is recovering trailing garbage and upgrading old versions.
func (s *Store) Compact(name string) (Info, error) {
	ds, gen, err := s.Dataset(name)
	if err != nil {
		return Info{}, err
	}
	data, err := Encode(ds, gen)
	if err != nil {
		return Info{}, err
	}
	if err := s.writeAtomic(name, data); err != nil {
		return Info{}, err
	}
	return Info{Name: name, Kind: ds.Kind, Tuples: ds.len(), Generation: gen, SizeBytes: int64(len(data))}, nil
}

// OpenEngine opens one stored dataset as a prepared ranking engine.
// Independent-tuple datasets open lazily — the returned engine holds a
// LazyPrepared that materializes from disk on demand; the structured kinds
// decode fully here. Either way the engine is an immutable snapshot of the
// segment at open time.
func (s *Store) OpenEngine(name string) (*engine.Engine, Info, error) {
	h, err := s.OpenHandle(name)
	if err != nil {
		return nil, Info{}, err
	}
	info := h.Info()
	if h.Kind() == KindIndependent {
		return engine.New(NewLazy(h)), info, nil
	}
	defer h.Close()
	ds, _, err := h.Dataset()
	if err != nil {
		return nil, Info{}, err
	}
	e, err := ds.Engine()
	if err != nil {
		return nil, Info{}, err
	}
	return e, info, nil
}

// Handle is an open, header-validated segment. It pins the snapshot (the
// open file survives concurrent Import/Delete of the same name) and counts
// the payload bytes it reads, which is how the lazy path's o(n) claim is
// measured.
type Handle struct {
	name      string
	f         *os.File
	hdr       *header
	bytesRead atomic.Int64
}

// OpenHandle opens a segment and validates its header and section table
// (section payloads are read — and checksummed — on demand).
func (s *Store) OpenHandle(name string) (*Handle, error) {
	if err := CheckName(name); err != nil {
		return nil, err
	}
	f, err := os.Open(s.path(name))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		return nil, fmt.Errorf("store: opening %s: %w", name, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: opening %s: %w", name, err)
	}
	hdr, err := readHeader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return &Handle{name: name, f: f, hdr: hdr}, nil
}

// Name returns the dataset name the handle was opened under.
func (h *Handle) Name() string { return h.name }

// Kind returns the dataset kind.
func (h *Handle) Kind() string { return h.hdr.kind }

// Len returns the tuple count.
func (h *Handle) Len() int { return h.hdr.n }

// Generation returns the segment's import generation.
func (h *Handle) Generation() uint64 { return h.hdr.gen }

// SizeBytes returns the segment file size.
func (h *Handle) SizeBytes() int64 { return h.hdr.size }

// BytesRead returns the total payload and file bytes read through this
// handle so far.
func (h *Handle) BytesRead() int64 { return h.bytesRead.Load() }

// Info summarizes the handle's segment header.
func (h *Handle) Info() Info {
	return Info{Name: h.name, Kind: h.hdr.kind, Tuples: h.hdr.n,
		Generation: h.hdr.gen, SizeBytes: h.hdr.size}
}

// Close releases the underlying file.
func (h *Handle) Close() error { return h.f.Close() }

// Dataset reads the whole segment and fully decodes it.
func (h *Handle) Dataset() (*Dataset, uint64, error) {
	raw := make([]byte, h.hdr.size)
	if _, err := h.f.ReadAt(raw, 0); err != nil {
		return nil, 0, fmt.Errorf("store: reading %s: %w", h.name, err)
	}
	h.bytesRead.Add(h.hdr.size)
	ds, gen, err := Decode(raw)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", h.name, err)
	}
	return ds, gen, nil
}

// readSectionFull reads one whole section payload, verifying its checksum.
func (h *Handle) readSectionFull(id uint32) ([]byte, error) {
	sec, ok := h.hdr.section(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s has no section %d", ErrCorrupt, h.name, id)
	}
	buf, err := readSection(h.f, sec)
	if err != nil {
		return nil, err
	}
	h.bytesRead.Add(int64(len(buf)))
	return buf, nil
}

// readRange reads element range [lo, hi) of a fixed-width section. Partial
// reads cannot verify the section checksum — the lazy path trusts
// import-time validation and relies on full loads (and Verify) to detect
// bit rot.
func (h *Handle) readRange(id uint32, elemSize, lo, hi int) ([]byte, error) {
	sec, ok := h.hdr.section(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s has no section %d", ErrCorrupt, h.name, id)
	}
	buf := make([]byte, (hi-lo)*elemSize)
	if _, err := h.f.ReadAt(buf, int64(sec.off)+int64(lo*elemSize)); err != nil {
		return nil, fmt.Errorf("store: reading %s section %d: %w", h.name, id, err)
	}
	h.bytesRead.Add(int64(len(buf)))
	return buf, nil
}

// ReadIDs reads tuple IDs for prepared positions [lo, hi) of an
// independent-tuple segment.
func (h *Handle) ReadIDs(lo, hi int) ([]pdb.TupleID, error) {
	buf, err := h.readRange(secIDs, 4, lo, hi)
	if err != nil {
		return nil, err
	}
	ids := make([]pdb.TupleID, hi-lo)
	for i := range ids {
		id := pdb.TupleID(binary.LittleEndian.Uint32(buf[4*i:]))
		if int(id) >= h.hdr.n {
			return nil, fmt.Errorf("%w: %s has tuple ID %d out of range", ErrCorrupt, h.name, id)
		}
		ids[i] = id
	}
	return ids, nil
}

// ReadProbs reads probabilities for prepared positions [lo, hi) of an
// independent-tuple segment.
func (h *Handle) ReadProbs(lo, hi int) ([]float64, error) {
	buf, err := h.readRange(secProbs, 8, lo, hi)
	if err != nil {
		return nil, err
	}
	return decodeFloats(buf), nil
}
