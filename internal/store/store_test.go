package store

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/andxor"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/junction"
	"repro/internal/pdb"
)

// The shared sample specs — same shapes the serve tests use, so every kind
// is covered by a realistic small dataset.
const (
	indCSV = `score,probability
120,0.4
130,0.7
80,0.3
95,0.4
130,0.6
105,1.0
`
	xrelCSV = `score,probability,group
120,0.4,a
130,0.7,b
80,0.3,b
95,0.4,c
110,0.6,c
105,1.0,
`
	chainJSON = `{
  "scores": [30, 20, 10],
  "pairs": [
    [[0.30, 0.20], [0.10, 0.40]],
    [[0.28, 0.12], [0.42, 0.18]]
  ]
}`
	treeJSON = `{"and": [
  {"xor": {"probs": [0.4], "children": [{"leaf": {"score": 120}}]}},
  {"xor": {"probs": [0.7, 0.3], "children": [{"leaf": {"score": 130}}, {"leaf": {"score": 80}}]}}
]}`
)

func kindSources() map[string]string {
	return map[string]string{
		KindIndependent: indCSV,
		KindXRelation:   xrelCSV,
		KindTree:        treeJSON,
		KindChain:       chainJSON,
	}
}

func tempStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "segs"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestImportRoundTripPerKind certifies import→open for every kind: the
// decoded dataset re-encodes to the identical segment bytes, and the store
// metadata matches.
func TestImportRoundTripPerKind(t *testing.T) {
	s := tempStore(t)
	for kind, src := range kindSources() {
		ds, err := Parse(kind, strings.NewReader(src))
		if err != nil {
			t.Fatalf("%s: parse: %v", kind, err)
		}
		info, err := s.Import(kind, ds)
		if err != nil {
			t.Fatalf("%s: import: %v", kind, err)
		}
		if info.Kind != kind || info.Generation != 1 || info.Tuples != ds.Len() {
			t.Fatalf("%s: bad import info %+v", kind, info)
		}
		got, gen, err := s.Dataset(kind)
		if err != nil {
			t.Fatalf("%s: open: %v", kind, err)
		}
		if gen != 1 {
			t.Fatalf("%s: generation %d after first import", kind, gen)
		}
		want, err := Encode(ds, gen)
		if err != nil {
			t.Fatalf("%s: encode: %v", kind, err)
		}
		again, err := Encode(got, gen)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", kind, err)
		}
		if !reflect.DeepEqual(want, again) {
			t.Fatalf("%s: decoded dataset does not re-encode bit-for-bit", kind)
		}
		if err := s.Verify(kind); err != nil {
			t.Fatalf("%s: verify: %v", kind, err)
		}
	}
	names, err := s.Names()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"chain", "ind", "tree", "xrel"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("names %v, want %v", names, want)
	}
}

// referenceEngine builds each kind's engine the pre-store way — straight
// from the in-memory model constructors — as the bit-for-bit oracle.
func referenceEngine(t *testing.T, kind, src string) *engine.Engine {
	t.Helper()
	switch kind {
	case KindIndependent:
		ds, err := Parse(kind, strings.NewReader(src))
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild from the original input-order rows so the reference path
		// includes NewDataset + Prepare (sorting included).
		scores := make([]float64, len(ds.Scores))
		probs := make([]float64, len(ds.Probs))
		for pos, id := range ds.IDs {
			scores[id] = ds.Scores[pos]
			probs[id] = ds.Probs[pos]
		}
		d, err := pdb.NewDataset(scores, probs)
		if err != nil {
			t.Fatal(err)
		}
		return engine.New(core.Prepare(d))
	case KindXRelation:
		ds, err := Parse(kind, strings.NewReader(src))
		if err != nil {
			t.Fatal(err)
		}
		tr, err := andxor.XTuples(ds.xgroups())
		if err != nil {
			t.Fatal(err)
		}
		return engine.New(andxor.PrepareTree(tr))
	case KindTree:
		ds, err := Parse(kind, strings.NewReader(src))
		if err != nil {
			t.Fatal(err)
		}
		tr, err := ds.tree()
		if err != nil {
			t.Fatal(err)
		}
		return engine.New(andxor.PrepareTree(tr))
	case KindChain:
		ds, err := Parse(kind, strings.NewReader(src))
		if err != nil {
			t.Fatal(err)
		}
		c, err := junction.NewChain(ds.Scores, ds.Pairs)
		if err != nil {
			t.Fatal(err)
		}
		return engine.New(junction.PrepareChain(c))
	}
	t.Fatalf("unknown kind %s", kind)
	return nil
}

// TestOpenEngineMatchesPrepare certifies store-opened engines against
// in-memory preparation bit-for-bit, per kind: full PRFe values, the full
// ranking, and a whole-relation metric.
func TestOpenEngineMatchesPrepare(t *testing.T) {
	ctx := context.Background()
	s := tempStore(t)
	for kind, src := range kindSources() {
		ds, err := Parse(kind, strings.NewReader(src))
		if err != nil {
			t.Fatalf("%s: parse: %v", kind, err)
		}
		if _, err := s.Import(kind, ds); err != nil {
			t.Fatalf("%s: import: %v", kind, err)
		}
		got, info, err := s.OpenEngine(kind)
		if err != nil {
			t.Fatalf("%s: open engine: %v", kind, err)
		}
		want := referenceEngine(t, kind, src)
		if info.Tuples != want.Ranker().Len() || got.Ranker().Len() != want.Ranker().Len() {
			t.Fatalf("%s: length mismatch: info %d, store %d, reference %d",
				kind, info.Tuples, got.Ranker().Len(), want.Ranker().Len())
		}
		gv, err := got.Ranker().QueryPRFe(ctx, complex(0.8, 0))
		if err != nil {
			t.Fatalf("%s: store PRFe: %v", kind, err)
		}
		wv, err := want.Ranker().QueryPRFe(ctx, complex(0.8, 0))
		if err != nil {
			t.Fatalf("%s: reference PRFe: %v", kind, err)
		}
		for i := range wv {
			if math.Float64bits(real(gv[i])) != math.Float64bits(real(wv[i])) ||
				math.Float64bits(imag(gv[i])) != math.Float64bits(imag(wv[i])) {
				t.Fatalf("%s: PRFe value %d differs: %v vs %v", kind, i, gv[i], wv[i])
			}
		}
		gr, err := got.Ranker().QueryRankPRFe(ctx, 0.8)
		if err != nil {
			t.Fatalf("%s: store ranking: %v", kind, err)
		}
		wr, err := want.Ranker().QueryRankPRFe(ctx, 0.8)
		if err != nil {
			t.Fatalf("%s: reference ranking: %v", kind, err)
		}
		if !reflect.DeepEqual(gr, wr) {
			t.Fatalf("%s: rankings differ: %v vs %v", kind, gr, wr)
		}
		ge, err := got.Ranker().QueryExpectedRank(ctx)
		if err != nil {
			t.Fatalf("%s: store expected rank: %v", kind, err)
		}
		we, err := want.Ranker().QueryExpectedRank(ctx)
		if err != nil {
			t.Fatalf("%s: reference expected rank: %v", kind, err)
		}
		for i := range we {
			if math.Float64bits(ge[i]) != math.Float64bits(we[i]) {
				t.Fatalf("%s: expected rank %d differs: %v vs %v", kind, i, ge[i], we[i])
			}
		}
	}
}

func TestImportBumpsGenerationAndSwapsAtomically(t *testing.T) {
	s := tempStore(t)
	ds, err := Parse(KindIndependent, strings.NewReader(indCSV))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Import("d", ds); err != nil {
		t.Fatal(err)
	}
	// A reader opened before the re-import keeps its snapshot.
	h, err := s.OpenHandle("d")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ds2, err := Parse(KindIndependent, strings.NewReader("1,0.5\n2,0.25\n"))
	if err != nil {
		t.Fatal(err)
	}
	info, err := s.Import("d", ds2)
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 2 {
		t.Fatalf("generation %d after second import, want 2", info.Generation)
	}
	if h.Generation() != 1 || h.Len() != ds.Len() {
		t.Fatalf("open handle lost its snapshot: gen %d len %d", h.Generation(), h.Len())
	}
	if _, _, err := h.Dataset(); err != nil {
		t.Fatalf("snapshot read after swap: %v", err)
	}
	cur, err := s.Info("d")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Generation != 2 || cur.Tuples != 2 {
		t.Fatalf("store did not swap: %+v", cur)
	}
}

func TestDeleteAndNotFound(t *testing.T) {
	s := tempStore(t)
	if err := s.Delete("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: %v, want ErrNotFound", err)
	}
	if _, err := s.Info("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("info missing: %v, want ErrNotFound", err)
	}
	ds, err := Parse(KindChain, strings.NewReader(chainJSON))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Import("c", ds); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("c"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Info("c"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("info after delete: %v, want ErrNotFound", err)
	}
}

func TestCheckName(t *testing.T) {
	for _, ok := range []string{"a", "A-1", "x_y.z", strings.Repeat("n", 128)} {
		if err := CheckName(ok); err != nil {
			t.Errorf("%q rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{"", ".hidden", "a/b", "../up", "sp ace", "nul\x00", strings.Repeat("n", 129)} {
		if err := CheckName(bad); !errors.Is(err, ErrBadName) {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestCompactPreservesBytesAndGeneration(t *testing.T) {
	s := tempStore(t)
	ds, err := Parse(KindXRelation, strings.NewReader(xrelCSV))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Import("x", ds); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Import("x", ds); err != nil { // gen 2
		t.Fatal(err)
	}
	before, err := os.ReadFile(filepath.Join(s.Dir(), "x.seg"))
	if err != nil {
		t.Fatal(err)
	}
	info, err := s.Compact("x")
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 2 {
		t.Fatalf("compact changed generation to %d", info.Generation)
	}
	after, err := os.ReadFile(filepath.Join(s.Dir(), "x.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("compacting an intact canonical segment changed its bytes")
	}
}

// TestVerifyDetectsCorruption flips bytes across the file and expects
// Verify (or open) to fail with a typed error every time.
func TestVerifyDetectsCorruption(t *testing.T) {
	s := tempStore(t)
	ds, err := Parse(KindIndependent, strings.NewReader(indCSV))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Import("d", ds); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), "d.seg")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	offsets := []int{0, 9, 13, 17, 25, 33, 37, 41, 50}
	for i := 0; i < 12; i++ {
		offsets = append(offsets, rng.Intn(len(pristine)))
	}
	for _, off := range offsets {
		mut := append([]byte(nil), pristine...)
		mut[off] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		err := s.Verify("d")
		if err == nil {
			t.Fatalf("flipping byte %d went undetected", off)
		}
		if !isTypedSegmentError(err) {
			t.Fatalf("flipping byte %d: untyped error %v", off, err)
		}
	}
	// Truncations, including mid-header.
	for _, n := range []int{0, 7, 39, 60, len(pristine) - 1} {
		if err := os.WriteFile(path, pristine[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := s.Verify("d"); err == nil || !isTypedSegmentError(err) {
			t.Fatalf("truncation to %d bytes: %v", n, err)
		}
	}
}

func isTypedSegmentError(err error) bool {
	for _, typed := range []error{ErrBadMagic, ErrVersion, ErrTruncated, ErrChecksum, ErrCorrupt, ErrNotFound} {
		if errors.Is(err, typed) {
			return true
		}
	}
	return false
}

// TestParseMatchesServeConventions pins the parse-layer behaviors the
// loaders have always promised: header detection, the group-column guard,
// empty input, malformed rows.
func TestParseMatchesServeConventions(t *testing.T) {
	if _, err := Parse(KindIndependent, strings.NewReader(xrelCSV)); err == nil || !strings.Contains(err.Error(), "group column") {
		t.Fatalf("independent parse of grouped CSV: %v", err)
	}
	if _, err := Parse(KindIndependent, strings.NewReader("")); err == nil || !strings.Contains(err.Error(), "empty dataset") {
		t.Fatalf("empty csv: %v", err)
	}
	if _, err := Parse(KindIndependent, strings.NewReader("abc,0.5\n")); err == nil {
		t.Fatal("typo'd score in row 1 must error, not read as a header")
	}
	if _, err := Parse("nope", strings.NewReader("")); err == nil {
		t.Fatal("unknown kind accepted")
	}
	ds, err := Parse(KindIndependent, strings.NewReader("score,prob\n5,0.5\n3,0.25\n"))
	if err != nil || ds.Len() != 2 {
		t.Fatalf("header row not skipped: %v (%+v)", err, ds)
	}
}
