package store

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/pdb"
)

// lazyFixture imports a random n-tuple independent dataset (integer scores
// force ties; probabilities include exact 0 and 1) and returns a cold lazy
// view plus the fully prepared oracle.
func lazyFixture(t *testing.T, s *Store, n int, seed int64) (*LazyPrepared, *core.Prepared) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	scores := make([]float64, n)
	probs := make([]float64, n)
	for i := range scores {
		scores[i] = float64(rng.Intn(n / 2))
		switch rng.Intn(10) {
		case 0:
			probs[i] = 0
		case 1:
			probs[i] = 1
		default:
			probs[i] = rng.Float64()
		}
		fmt.Fprintf(&b, "%v,%v\n", scores[i], probs[i])
	}
	ds, err := Parse(KindIndependent, strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	name := fmt.Sprintf("lazy-%d-%d", n, seed)
	if _, err := s.Import(name, ds); err != nil {
		t.Fatal(err)
	}
	h, err := s.OpenHandle(name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := pdb.NewDataset(scores, probs)
	if err != nil {
		t.Fatal(err)
	}
	return NewLazy(h), core.Prepare(d)
}

// TestLazyTopKMatchesFull is the partial≡full contract: for every α grid
// and k, a cold lazy view's QueryTopKPRFeBatch equals the fully prepared
// answer exactly, and for small k it reads only a prefix of the file.
func TestLazyTopKMatchesFull(t *testing.T) {
	ctx := context.Background()
	s := tempStore(t)
	grids := [][]float64{{1}, {0.5}, {1e-3, 0.3, 0.95}, {0.5, 1}}
	for _, n := range []int{64, 1000, 5000} {
		for _, k := range []int{1, 3, 25, 200} {
			if k >= n {
				continue
			}
			for gi, alphas := range grids {
				lz, full := lazyFixture(t, s, n, int64(n*31+k*7+gi))
				got, err := lz.QueryTopKPRFeBatch(ctx, alphas, k)
				if err != nil {
					t.Fatalf("n=%d k=%d grid=%d: lazy: %v", n, k, gi, err)
				}
				want, err := full.QueryTopKPRFeBatch(ctx, alphas, k)
				if err != nil {
					t.Fatalf("n=%d k=%d grid=%d: full: %v", n, k, gi, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("n=%d k=%d grid=%d: lazy top-k differs\n got %v\nwant %v", n, k, gi, got, want)
				}
				if n == 5000 && k <= 3 && lz.full.Load() == nil {
					// The certified prefix must be a strict minority of the file.
					if read, size := lz.BytesRead(), lz.h.SizeBytes(); read >= size/2 {
						t.Fatalf("n=%d k=%d grid=%d: partial path read %d of %d bytes", n, k, gi, read, size)
					}
				}
			}
		}
	}
}

// TestLazyFallbacksMatchFull pins the paths that must decline partial
// answering — α outside (0,1], an explicit parallelism limit, huge k — to
// the full-load result.
func TestLazyFallbacksMatchFull(t *testing.T) {
	ctx := context.Background()
	s := tempStore(t)

	cases := []struct {
		name   string
		ctx    context.Context
		alphas []float64
		k      int
	}{
		{"alpha above one", ctx, []float64{1.5}, 5},
		{"alpha zero", ctx, []float64{0}, 5},
		{"alpha negative", ctx, []float64{-0.5}, 5},
		{"mixed grid", ctx, []float64{0.5, 2}, 5},
		{"parallel limit", par.WithLimit(ctx, 4), []float64{0.5}, 5},
		{"k equals n", ctx, []float64{0.5}, 2000},
		{"k zero", ctx, []float64{0.5}, 0},
	}
	for i, tc := range cases {
		lz, full := lazyFixture(t, s, 2000, int64(100+i))
		got, err := lz.QueryTopKPRFeBatch(tc.ctx, tc.alphas, tc.k)
		want, werr := full.QueryTopKPRFeBatch(tc.ctx, tc.alphas, tc.k)
		if (err == nil) != (werr == nil) {
			t.Fatalf("%s: error mismatch: lazy %v, full %v", tc.name, err, werr)
		}
		if err == nil && !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: results differ", tc.name)
		}
	}
}

// TestLazyWholeRelationMetricsMatchFull forces the full-materialization
// path and checks a sample of every-method delegation bit-for-bit.
func TestLazyWholeRelationMetricsMatchFull(t *testing.T) {
	ctx := context.Background()
	s := tempStore(t)
	lz, full := lazyFixture(t, s, 700, 42)

	gotRank, err := lz.QueryRankPRFe(ctx, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	wantRank, err := full.QueryRankPRFe(ctx, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRank, wantRank) {
		t.Fatal("full ranking differs after materialization")
	}
	// The view is now fully materialized (and the file handle closed);
	// every later query must keep answering, including the top-k fast path.
	if lz.full.Load() == nil {
		t.Fatal("whole-relation query left the view cold")
	}
	for _, fn := range []func() (any, error){
		func() (any, error) { return lz.QueryERank(ctx) },
		func() (any, error) { return lz.QueryExpectedRank(ctx) },
		func() (any, error) { return lz.QueryMedianRank(ctx) },
		func() (any, error) { return lz.QueryPTh(ctx, 5) },
		func() (any, error) { return lz.QueryPRFOmega(ctx, []float64{3, 2, 1}) },
		func() (any, error) { return lz.QueryPRFe(ctx, complex(0.5, 0.25)) },
		func() (any, error) { return lz.QueryTopKPRFeBatch(ctx, []float64{0.7}, 9) },
	} {
		if _, err := fn(); err != nil {
			t.Fatalf("query after materialization: %v", err)
		}
	}
	wantVals, err := full.QueryERank(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gotVals, err := lz.QueryERank(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotVals, wantVals) {
		t.Fatal("ERank differs after materialization")
	}
}

// TestLazyCanceledContext checks ctx errors surface without wedging the
// view: a canceled query fails, a later good query succeeds.
func TestLazyCanceledContext(t *testing.T) {
	s := tempStore(t)
	lz, full := lazyFixture(t, s, 1200, 77)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := lz.QueryTopKPRFeBatch(canceled, []float64{0.5}, 3); err == nil {
		t.Fatal("canceled context answered")
	}
	got, err := lz.QueryTopKPRFeBatch(context.Background(), []float64{0.5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.QueryTopKPRFeBatch(context.Background(), []float64{0.5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("top-k differs after a canceled attempt")
	}
}

// TestLazyConcurrentQueries hammers one cold view from many goroutines
// mixing partial top-k and whole-relation queries; every answer must match
// the oracle (run with -race in CI).
func TestLazyConcurrentQueries(t *testing.T) {
	ctx := context.Background()
	s := tempStore(t)
	lz, full := lazyFixture(t, s, 3000, 11)
	wantTopK, err := full.QueryTopKPRFeBatch(ctx, []float64{0.8}, 7)
	if err != nil {
		t.Fatal(err)
	}
	wantRank, err := full.QueryRankPRFe(ctx, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		go func(g int) {
			if g%4 == 0 {
				r, err := lz.QueryRankPRFe(ctx, 0.8)
				if err == nil && !reflect.DeepEqual(r, wantRank) {
					err = fmt.Errorf("goroutine %d: ranking diverged", g)
				}
				errs <- err
				return
			}
			r, err := lz.QueryTopKPRFeBatch(ctx, []float64{0.8}, 7)
			if err == nil && !reflect.DeepEqual(r, wantTopK) {
				err = fmt.Errorf("goroutine %d: top-k diverged", g)
			}
			errs <- err
		}(g)
	}
	for g := 0; g < 32; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
