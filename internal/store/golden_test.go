package store

// The on-disk format contract, pinned to golden segment files: segments are
// persisted state for real, so any byte-level drift — a reordered section,
// a changed checksum polynomial, an accidental field width change — must
// fail here instead of corrupting existing stores. Regenerate with:
//
//	go test ./internal/store -run TestGoldenSegments -update-segments
//
// and review the diff like the wire-format change it is: a regeneration is
// only legitimate alongside a Version bump and the migration notes in
// format.go / DESIGN.md §5e.

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateSegments = flag.Bool("update-segments", false, "rewrite testdata/*.seg golden segments")

func TestGoldenSegments(t *testing.T) {
	for kind, src := range kindSources() {
		ds, err := Parse(kind, strings.NewReader(src))
		if err != nil {
			t.Fatalf("%s: parse: %v", kind, err)
		}
		got, err := Encode(ds, 7)
		if err != nil {
			t.Fatalf("%s: encode: %v", kind, err)
		}
		path := filepath.Join("testdata", fmt.Sprintf("golden-v%d-%s.seg", Version, kind))
		if *updateSegments {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden segment (run with -update-segments to generate): %v", kind, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: segment encoding drifted from %s — if intentional, bump Version in format.go, regenerate with -update-segments, and document the migration", kind, path)
		}
		// The checked-in bytes must also keep decoding: old stores stay
		// readable.
		back, gen, err := Decode(want)
		if err != nil {
			t.Fatalf("%s: golden segment no longer decodes: %v", kind, err)
		}
		if gen != 7 || back.Kind != kind {
			t.Fatalf("%s: golden decoded to kind %s gen %d", kind, back.Kind, gen)
		}
	}
}
