package store

// FuzzSegmentDecode is the decoder's robustness contract, run in CI's fuzz
// leg: arbitrary bytes either decode — in which case re-encoding reproduces
// the input bit-for-bit (the format is canonical) and the dataset opens as
// an engine — or fail with one of the typed segment errors. Never a panic,
// never an unclassified error, never a decode-success that the engine
// layer then rejects.

import (
	"bytes"
	"strings"
	"testing"
)

func fuzzSeeds(f *testing.F) {
	f.Helper()
	for kind, src := range kindSources() {
		ds, err := Parse(kind, strings.NewReader(src))
		if err != nil {
			f.Fatal(err)
		}
		data, err := Encode(ds, 3)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// Seed classic corruptions so the interesting branches start covered.
		for _, cut := range []int{4, fixedHdrLen - 1, len(data) / 2} {
			f.Add(data[:cut])
		}
		flip := append([]byte(nil), data...)
		flip[20] ^= 0xff
		f.Add(flip)
	}
	f.Add([]byte(magicStr))
	f.Add([]byte{})
}

func FuzzSegmentDecode(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		ds, gen, err := Decode(data)
		if err != nil {
			if !isTypedSegmentError(err) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		again, err := Encode(ds, gen)
		if err != nil {
			t.Fatalf("decoded dataset fails to re-encode: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("decode→encode is not the identity: %d bytes in, %d out", len(data), len(again))
		}
		if _, err := ds.Engine(); err != nil {
			t.Fatalf("decoded dataset fails to open: %v", err)
		}
	})
}
