package store

// LazyPrepared: the cold-open path for independent-tuple segments. It
// implements engine.Ranker over an open Handle without touching the file
// until a query arrives. Top-k PRFe queries materialize only a score
// prefix: because the segment is stored in prepared (score desc, ID asc)
// order, the PRFe log kernel's running product after a prefix bounds every
// unseen tuple's value from above — for real α ∈ (0, 1] each remaining
// factor |1 − p(1−α)| ≥ α and each log p ≤ 0 only push values further
// down — so once k materialized candidates strictly beat the bound, the
// top-k is certified without reading the rest of the file. Everything
// else (full rankings, per-tuple metrics, complex α) forces one full
// materialization into a core.Prepared and delegates from then on.
//
// The partial path reproduces core.QueryTopKPRFeBatch bit-for-bit: the
// values come from the same kernel arithmetic (core.PRFeLogSpan is pinned
// to PRFeLogInto), the candidate order is the RankByValue comparator, and
// certification demands a strict win over the bound so an unmaterialized
// tuple can never displace a chosen one even on a value tie (ties beyond
// the bound would need an ID comparison the prefix cannot see).

import (
	"context"
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/pdb"
)

// minPartialPrefix is the smallest prefix worth a partial read; below this
// the whole-file scan is effectively free.
const minPartialPrefix = 256

// LazyPrepared is an engine.Ranker that materializes an independent-tuple
// segment from disk on demand. It is safe for concurrent use.
type LazyPrepared struct {
	h *Handle
	n int

	// full flips once, from nil to the fully materialized view; after that
	// every query delegates lock-free.
	full atomic.Pointer[core.Prepared]

	mu     sync.Mutex // guards the prefix state below and handle I/O
	ids    []pdb.TupleID
	probs  []float64
	closed bool
}

// NewLazy wraps an open independent-tuple segment handle. The LazyPrepared
// owns the handle and closes it once fully materialized.
func NewLazy(h *Handle) *LazyPrepared {
	return &LazyPrepared{h: h, n: h.Len()}
}

// BytesRead reports the segment bytes read so far — the measure behind the
// partial path's o(n) claim.
func (l *LazyPrepared) BytesRead() int64 { return l.h.BytesRead() }

// Len returns the number of ranked tuples (from the header; no I/O).
func (l *LazyPrepared) Len() int { return l.n }

// Materialize loads the full prepared view, reading each section once with
// checksum verification. It is idempotent and closes the underlying file
// handle on success.
func (l *LazyPrepared) Materialize(ctx context.Context) (*core.Prepared, error) {
	if p := l.full.Load(); p != nil {
		return p, nil
	}
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if p := l.full.Load(); p != nil {
		return p, nil
	}
	idBuf, err := l.h.readSectionFull(secIDs)
	if err != nil {
		return nil, err
	}
	scoreBuf, err := l.h.readSectionFull(secScores)
	if err != nil {
		return nil, err
	}
	probBuf, err := l.h.readSectionFull(secProbs)
	if err != nil {
		return nil, err
	}
	ids := make([]pdb.TupleID, l.n)
	for i := range ids {
		ids[i] = pdb.TupleID(leU32(idBuf, i))
	}
	p, err := core.FromSorted(ids, decodeFloats(scoreBuf), decodeFloats(probBuf))
	if err != nil {
		return nil, err
	}
	l.full.Store(p)
	l.ids, l.probs = nil, nil
	if !l.closed {
		l.closed = true
		_ = l.h.Close()
	}
	return p, nil
}

func leU32(b []byte, i int) uint32 {
	return uint32(b[4*i]) | uint32(b[4*i+1])<<8 | uint32(b[4*i+2])<<16 | uint32(b[4*i+3])<<24
}

// QueryTopKPRFeBatch returns the PRFe top-k at every α of a grid. For real
// α ∈ (0, 1] on a still-cold view it answers from a materialized score
// prefix when the bound certifies; otherwise it falls back to a full load.
func (l *LazyPrepared) QueryTopKPRFeBatch(ctx context.Context, alphas []float64, k int) ([]pdb.Ranking, error) {
	if p := l.full.Load(); p != nil {
		return p.QueryTopKPRFeBatch(ctx, alphas, k)
	}
	if err := pdb.CheckAlphaGrid(alphas); err != nil {
		return nil, err
	}
	if err := pdb.CheckTopK(k); err != nil {
		return nil, err
	}
	if l.partialEligible(ctx, alphas, k) {
		out, ok, err := l.partialTopK(ctx, alphas, k)
		if err != nil {
			return nil, err
		}
		if ok {
			return out, nil
		}
	}
	p, err := l.Materialize(ctx)
	if err != nil {
		return nil, err
	}
	return p.QueryTopKPRFeBatch(ctx, alphas, k)
}

// partialEligible gates the prefix path to exactly the queries whose full
// result it can reproduce bit-for-bit: the monotone bound needs every
// α ∈ (0, 1), the sharded kernel (an explicit parallelism request) has its
// own ≈-equality contract the prefix must not impersonate, and the prefix
// must stay well under n for the read to be worth anything. α = 1 is sound
// but pointless — every factor is exactly 1 so the bound pins at 0 while
// all values are ≤ 0, and certification can never fire.
func (l *LazyPrepared) partialEligible(ctx context.Context, alphas []float64, k int) bool {
	if k == 0 || par.Limit(ctx) > 0 {
		return false
	}
	if 2*l.startPrefix(k) > l.n {
		return false
	}
	for _, a := range alphas {
		if !(a > 0 && a < 1) {
			return false
		}
	}
	return true
}

// startPrefix is the first prefix length tried for a top-k query.
func (l *LazyPrepared) startPrefix(k int) int {
	return max(4*k, minPartialPrefix)
}

// partialTopK materializes doubling score prefixes, extending the PRFe log
// scan span by span, until every α's top-k is certified against the
// remaining-value bound or the prefix would pass n/2 (then it reports
// !ok and the caller does a full load).
func (l *LazyPrepared) partialTopK(ctx context.Context, alphas []float64, k int) ([]pdb.Ranking, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if p := l.full.Load(); p != nil {
		// Materialized while we waited for the lock; the fast path owns it.
		return nil, false, nil
	}
	states := make([]core.PRFeLogState, len(alphas))
	vals := make([][]float64, len(alphas))
	out := make([]pdb.Ranking, len(alphas))
	ndone := 0
	computed := 0
	for m := l.startPrefix(k); 2*m <= l.n; m *= 2 {
		if err := l.extendPrefix(m); err != nil {
			return nil, false, err
		}
		for a := range alphas {
			if err := pdb.CtxErr(ctx); err != nil {
				return nil, false, err
			}
			if out[a] != nil {
				continue
			}
			if cap(vals[a]) < m {
				grown := make([]float64, m, 2*m)
				copy(grown, vals[a])
				vals[a] = grown
			} else {
				vals[a] = vals[a][:m]
			}
			core.PRFeLogSpan(complex(alphas[a], 0), l.probs[computed:m], &states[a], vals[a][computed:m])
		}
		computed = m
		for a := range alphas {
			if out[a] != nil {
				continue
			}
			if rk, ok := certifyTopK(vals[a], l.ids, states[a], alphas[a], k); ok {
				out[a] = rk
				ndone++
			}
		}
		if ndone == len(alphas) {
			return out, true, nil
		}
	}
	return nil, false, nil
}

// extendPrefix grows the materialized (ids, probs) prefix to m positions.
func (l *LazyPrepared) extendPrefix(m int) error {
	cur := len(l.ids)
	if m <= cur {
		return nil
	}
	ids, err := l.h.ReadIDs(cur, m)
	if err != nil {
		return err
	}
	probs, err := l.h.ReadProbs(cur, m)
	if err != nil {
		return err
	}
	l.ids = append(l.ids, ids...)
	l.probs = append(l.probs, probs...)
	return nil
}

// certifyTopK ranks the materialized positions by (value desc, original ID
// asc) — the RankByValue order — and accepts the first k when the kth value
// strictly beats the bound on every unmaterialized tuple. Strictness is
// what makes ID tie-breaking sound: a tuple at exactly the bound could tie
// a chosen value with a smaller ID.
func certifyTopK(vals []float64, ids []pdb.TupleID, st core.PRFeLogState, alpha float64, k int) (pdb.Ranking, bool) {
	m := len(vals)
	if k > m {
		return nil, false
	}
	bound := math.Inf(-1)
	if !st.Zeroed {
		bound = st.LogProd + math.Log(alpha)
	}
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		va, vb := vals[a], vals[b]
		if va != vb {
			if va > vb {
				return -1
			}
			if vb > va {
				return 1
			}
			if an, bn := math.IsNaN(va), math.IsNaN(vb); an != bn {
				if bn {
					return -1
				}
				return 1
			}
		}
		if ids[a] < ids[b] {
			return -1
		}
		if ids[a] > ids[b] {
			return 1
		}
		return 0
	})
	if !(vals[order[k-1]] > bound) {
		return nil, false
	}
	rk := make(pdb.Ranking, k)
	for i := range rk {
		rk[i] = ids[order[i]]
	}
	return rk, true
}

// The remaining Ranker methods need whole-relation state; each forces one
// full materialization and delegates. Validation runs in the delegate, so
// a malformed query against a cold view pays the load before erroring —
// the price of not duplicating the query-checking layer here.

// QueryPRFe evaluates Υ_α(t) for every tuple.
func (l *LazyPrepared) QueryPRFe(ctx context.Context, alpha complex128) ([]complex128, error) {
	p, err := l.Materialize(ctx)
	if err != nil {
		return nil, err
	}
	return p.QueryPRFe(ctx, alpha)
}

// QueryPRFeBatch evaluates Υ_α(t) for every tuple at every α of a grid.
func (l *LazyPrepared) QueryPRFeBatch(ctx context.Context, alphas []complex128) ([][]complex128, error) {
	p, err := l.Materialize(ctx)
	if err != nil {
		return nil, err
	}
	return p.QueryPRFeBatch(ctx, alphas)
}

// QueryRankPRFe returns the full PRFe(α) ranking for real α.
func (l *LazyPrepared) QueryRankPRFe(ctx context.Context, alpha float64) (pdb.Ranking, error) {
	p, err := l.Materialize(ctx)
	if err != nil {
		return nil, err
	}
	return p.QueryRankPRFe(ctx, alpha)
}

// QueryRankPRFeBatch returns the full PRFe ranking at every α of a grid.
func (l *LazyPrepared) QueryRankPRFeBatch(ctx context.Context, alphas []float64) ([]pdb.Ranking, error) {
	p, err := l.Materialize(ctx)
	if err != nil {
		return nil, err
	}
	return p.QueryRankPRFeBatch(ctx, alphas)
}

// QueryPRFeCombo evaluates the linear combination Σ_l u_l·Υ_{α_l}(t).
func (l *LazyPrepared) QueryPRFeCombo(ctx context.Context, us, alphas []complex128) ([]complex128, error) {
	p, err := l.Materialize(ctx)
	if err != nil {
		return nil, err
	}
	return p.QueryPRFeCombo(ctx, us, alphas)
}

// QueryPRF evaluates Υω(t) for an arbitrary weight function.
func (l *LazyPrepared) QueryPRF(ctx context.Context, omega func(t pdb.Tuple, rank int) float64) ([]float64, error) {
	p, err := l.Materialize(ctx)
	if err != nil {
		return nil, err
	}
	return p.QueryPRF(ctx, omega)
}

// QueryPRFOmega evaluates the PRFω(h) family.
func (l *LazyPrepared) QueryPRFOmega(ctx context.Context, w []float64) ([]float64, error) {
	p, err := l.Materialize(ctx)
	if err != nil {
		return nil, err
	}
	return p.QueryPRFOmega(ctx, w)
}

// QueryPTh evaluates Pr(r(t) ≤ h).
func (l *LazyPrepared) QueryPTh(ctx context.Context, h int) ([]float64, error) {
	p, err := l.Materialize(ctx)
	if err != nil {
		return nil, err
	}
	return p.QueryPTh(ctx, h)
}

// QueryERank returns E[r(t)] per tuple.
func (l *LazyPrepared) QueryERank(ctx context.Context) ([]float64, error) {
	p, err := l.Materialize(ctx)
	if err != nil {
		return nil, err
	}
	return p.QueryERank(ctx)
}

// QueryExpectedRank returns the consensus expected rank per tuple.
func (l *LazyPrepared) QueryExpectedRank(ctx context.Context) ([]float64, error) {
	p, err := l.Materialize(ctx)
	if err != nil {
		return nil, err
	}
	return p.QueryExpectedRank(ctx)
}

// QueryMedianRank returns the consensus median rank per tuple.
func (l *LazyPrepared) QueryMedianRank(ctx context.Context) ([]float64, error) {
	p, err := l.Materialize(ctx)
	if err != nil {
		return nil, err
	}
	return p.QueryMedianRank(ctx)
}
