package rankdist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pdb"
)

func r(ids ...pdb.TupleID) pdb.Ranking { return pdb.Ranking(ids) }

func TestKendallTopKIdentical(t *testing.T) {
	if d := KendallTopK(r(1, 2, 3), r(1, 2, 3), 3); d != 0 {
		t.Fatalf("identical lists distance %v", d)
	}
}

func TestKendallTopKDisjointIsOne(t *testing.T) {
	if d := KendallTopK(r(1, 2, 3), r(4, 5, 6), 3); d != 1 {
		t.Fatalf("disjoint lists distance %v, want 1", d)
	}
}

func TestKendallTopKReversed(t *testing.T) {
	// Same elements fully reversed: all C(3,2)=3 pairs flipped, /k² = 3/9.
	if d := KendallTopK(r(1, 2, 3), r(3, 2, 1), 3); math.Abs(d-3.0/9.0) > 1e-12 {
		t.Fatalf("reversed distance %v, want 1/3", d)
	}
}

func TestKendallTopKPartialOverlap(t *testing.T) {
	// K1 = [a b], K2 = [b c], k=2.
	// Pairs over {a,b,c}: (a,b): both in K1 (a<b), only b in K2 → K1 says a
	// above b, but full list 2 must put b above a (a missed top-k) → 1.
	// (a,c): a only in K1, c only in K2 → 1. (b,c): both in K2, only b in
	// K1 → list 1 must place b above c, K2 agrees (b before c) → 0.
	// Total 2/k² = 0.5.
	if d := KendallTopK(r(1, 2), r(2, 3), 2); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("partial overlap distance %v, want 0.5", d)
	}
}

func TestKendallTopKSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(8)
		a := randomTopK(rng, k, 20)
		b := randomTopK(rng, k, 20)
		return math.Abs(KendallTopK(a, b, k)-KendallTopK(b, a, k)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKendallTopKRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(8)
		a := randomTopK(rng, k, 15)
		b := randomTopK(rng, k, 15)
		d := KendallTopK(a, b, k)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Paper claim (§3.2): if the Kendall distance is δ, the two top-k answers
// share at least a 1−√δ fraction of tuples.
func TestKendallTopKOverlapBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(8)
		a := randomTopK(rng, k, 25)
		b := randomTopK(rng, k, 25)
		d := KendallTopK(a, b, k)
		overlap := 1 - Intersection(a, b, k)
		return overlap >= 1-math.Sqrt(d)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func randomTopK(rng *rand.Rand, k, universe int) pdb.Ranking {
	perm := rng.Perm(universe)
	out := make(pdb.Ranking, k)
	for i := 0; i < k; i++ {
		out[i] = pdb.TupleID(perm[i])
	}
	return out
}

func TestKendallTopKDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate ID")
		}
	}()
	KendallTopK(r(1, 1), r(1, 2), 2)
}

func TestKendallTopKEmpty(t *testing.T) {
	if d := KendallTopK(nil, nil, 0); d != 0 {
		t.Fatalf("empty lists distance %v", d)
	}
}

func TestKendallFull(t *testing.T) {
	if d := KendallFull(r(1, 2, 3, 4), r(1, 2, 3, 4)); d != 0 {
		t.Fatalf("identical full distance %v", d)
	}
	if d := KendallFull(r(1, 2, 3, 4), r(4, 3, 2, 1)); d != 1 {
		t.Fatalf("reversed full distance %v, want 1", d)
	}
	// One adjacent swap in n=4: 1 / C(4,2) = 1/6.
	if d := KendallFull(r(1, 2, 3, 4), r(2, 1, 3, 4)); math.Abs(d-1.0/6.0) > 1e-12 {
		t.Fatalf("single swap distance %v, want 1/6", d)
	}
}

func TestKendallFullMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched sets")
		}
	}()
	KendallFull(r(1, 2), r(1, 3))
}

func TestCountInversionsAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40)
		a := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(10)
		}
		var naive int64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if a[i] > a[j] {
					naive++
				}
			}
		}
		return countInversions(a) == naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFootruleTopK(t *testing.T) {
	if d := FootruleTopK(r(1, 2), r(1, 2), 2); d != 0 {
		t.Fatalf("identical footrule %v", d)
	}
	if d := FootruleTopK(r(1, 2), r(3, 4), 2); d != 1 {
		t.Fatalf("disjoint footrule %v, want 1", d)
	}
	// [1,2] vs [2,1]: |0-1| + |1-0| = 2, / k(k+1)=6 → 1/3.
	if d := FootruleTopK(r(1, 2), r(2, 1), 2); math.Abs(d-1.0/3.0) > 1e-12 {
		t.Fatalf("swap footrule %v, want 1/3", d)
	}
}

func TestIntersectionMetric(t *testing.T) {
	if d := Intersection(r(1, 2, 3), r(1, 2, 3), 3); d != 0 {
		t.Fatalf("identical intersection %v", d)
	}
	if d := Intersection(r(1, 2, 3), r(4, 5, 6), 3); d != 1 {
		t.Fatalf("disjoint intersection %v", d)
	}
	if d := Intersection(r(1, 2, 3), r(3, 4, 5), 3); math.Abs(d-2.0/3.0) > 1e-12 {
		t.Fatalf("one-shared intersection %v, want 2/3", d)
	}
}

// Footrule bounds Kendall for full lists (Diaconis-Graham): K ≤ F ≤ 2K in
// unnormalized form. We sanity-check the top-k variants stay within [0,1]
// and agree on extremes.
func TestMetricsAgreeOnExtremes(t *testing.T) {
	a, b := r(1, 2, 3, 4), r(5, 6, 7, 8)
	if KendallTopK(a, b, 4) != 1 || FootruleTopK(a, b, 4) != 1 || Intersection(a, b, 4) != 1 {
		t.Fatal("disjoint lists should be at distance 1 under all metrics")
	}
}
