// Package rankdist implements the distance measures between (top-k) rankings
// used throughout the paper's evaluation: the normalized Kendall tau distance
// for top-k lists of Fagin, Kumar and Sivakumar ("Comparing top-k lists",
// SODA 2003) in the K̂ (optimistic, p=0) variant the paper adopts in
// Section 3.2, plus the classical full-list Kendall tau, Spearman's footrule
// for top-k lists, and the intersection metric.
package rankdist

import (
	"fmt" //lint:allow kernelpurity fmt.Errorf/Sprintf on construction and validation paths only; no formatting in the per-tuple inner loops

	"repro/internal/pdb"
)

// KendallTopK computes the paper's normalized Kendall distance between two
// top-k lists. For every unordered pair {i, j} of K1 ∪ K2, K̂(i,j) = 1 when
// the two underlying full rankings can be *inferred* to order i and j
// oppositely, and 0 otherwise (the optimistic p=0 convention):
//
//   - both in both lists: 1 iff their order differs;
//   - both in K1, only i in K2: 1 iff K1 ranks j above i (the full list 2
//     must rank i above j, because j missed the top-k and i did not);
//   - i only in K1, j only in K2: always 1;
//   - both missing from one of the lists entirely: 0 (nothing inferable).
//
// The raw count is divided by k² so the distance lies in [0,1]; 0 means
// identical lists and 1 means disjoint lists. Lists shorter than k are
// allowed (k defaults to the longer length); duplicate IDs within one list
// are a programming error and cause a panic.
func KendallTopK(k1, k2 pdb.Ranking, k int) float64 {
	if k <= 0 {
		k = len(k1)
		if len(k2) > k {
			k = len(k2)
		}
	}
	if k == 0 {
		return 0
	}
	pos1 := positions(k1)
	pos2 := positions(k2)

	// Union of the two lists.
	union := make([]pdb.TupleID, 0, len(pos1)+len(pos2))
	for _, id := range k1 {
		union = append(union, id)
	}
	for _, id := range k2 {
		if _, ok := pos1[id]; !ok {
			union = append(union, id)
		}
	}

	var raw int
	for a := 0; a < len(union); a++ {
		for b := a + 1; b < len(union); b++ {
			i, j := union[a], union[b]
			pi1, in1i := pos1[i]
			pj1, in1j := pos1[j]
			pi2, in2i := pos2[i]
			pj2, in2j := pos2[j]
			switch {
			case in1i && in1j && in2i && in2j:
				if (pi1 < pj1) != (pi2 < pj2) {
					raw++
				}
			case in1i && in1j: // both in K1, at most one in K2
				// The one present in K2 is known to rank above the
				// absent one in full list 2.
				if in2i && pj1 < pi1 {
					raw++
				}
				if in2j && pi1 < pj1 {
					raw++
				}
			case in2i && in2j: // both in K2, at most one in K1
				if in1i && pj2 < pi2 {
					raw++
				}
				if in1j && pi2 < pj2 {
					raw++
				}
			case in1i && in2j, in1j && in2i:
				// i appears only in one list, j only in the other:
				// each list ranks its own member above the other's.
				raw++
			default:
				// Both only in the same list: case 4, contributes 0.
			}
		}
	}
	return float64(raw) / float64(k*k)
}

func positions(r pdb.Ranking) map[pdb.TupleID]int {
	m := make(map[pdb.TupleID]int, len(r))
	for i, id := range r {
		if _, dup := m[id]; dup {
			//lint:allow errdiscipline documented contract: rankings are engine-produced permutations, so a duplicate is a caller bug; tests assert the panic
			panic(fmt.Sprintf("rankdist: duplicate tuple %d in ranking", id))
		}
		m[id] = i
	}
	return m
}

// KendallFull computes the classical normalized Kendall tau distance between
// two full rankings over the same element set: the fraction of the C(n,2)
// pairs ordered oppositely. Panics if the rankings are not permutations of
// the same set.
func KendallFull(r1, r2 pdb.Ranking) float64 {
	if len(r1) != len(r2) {
		//lint:allow errdiscipline documented contract: KendallFull panics on non-permutation input; tests assert the panic
		panic("rankdist: full rankings differ in length")
	}
	n := len(r1)
	if n < 2 {
		return 0
	}
	pos2 := positions(r2)
	seq := make([]int, n)
	for i, id := range r1 {
		p, ok := pos2[id]
		if !ok {
			//lint:allow errdiscipline documented contract: KendallFull panics on non-permutation input; tests assert the panic
			panic(fmt.Sprintf("rankdist: tuple %d missing from second ranking", id))
		}
		seq[i] = p
	}
	inv := countInversions(seq)
	return float64(inv) / float64(n*(n-1)/2)
}

// countInversions counts inversions via merge sort in O(n log n).
func countInversions(a []int) int64 {
	buf := make([]int, len(a))
	tmp := make([]int, len(a))
	copy(buf, a)
	return mergeCount(buf, tmp, 0, len(buf))
}

func mergeCount(a, tmp []int, lo, hi int) int64 {
	if hi-lo <= 1 {
		return 0
	}
	mid := (lo + hi) / 2
	inv := mergeCount(a, tmp, lo, mid) + mergeCount(a, tmp, mid, hi)
	i, j, k := lo, mid, lo
	for i < mid && j < hi {
		if a[i] <= a[j] {
			tmp[k] = a[i]
			i++
		} else {
			tmp[k] = a[j]
			inv += int64(mid - i)
			j++
		}
		k++
	}
	for i < mid {
		tmp[k] = a[i]
		i++
		k++
	}
	for j < hi {
		tmp[k] = a[j]
		j++
		k++
	}
	copy(a[lo:hi], tmp[lo:hi])
	return inv
}

// FootruleTopK computes the normalized Spearman footrule for top-k lists:
// elements absent from a list are charged position k+1 (the "location
// parameter ℓ = k+1" convention of Fagin et al.), and the result is divided
// by the maximum value k(k+1) so it lies in [0,1].
func FootruleTopK(k1, k2 pdb.Ranking, k int) float64 {
	if k <= 0 {
		k = len(k1)
		if len(k2) > k {
			k = len(k2)
		}
	}
	if k == 0 {
		return 0
	}
	pos1 := positions(k1)
	pos2 := positions(k2)
	union := make(map[pdb.TupleID]struct{}, len(pos1)+len(pos2))
	for id := range pos1 {
		union[id] = struct{}{}
	}
	for id := range pos2 {
		union[id] = struct{}{}
	}
	var sum int
	for id := range union {
		p1, ok1 := pos1[id]
		if !ok1 {
			p1 = k
		}
		p2, ok2 := pos2[id]
		if !ok2 {
			p2 = k
		}
		d := p1 - p2
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return float64(sum) / float64(k*(k+1))
}

// Intersection computes 1 − |K1 ∩ K2| / k, the (complement of the) overlap
// of the two top-k answers. 0 means identical sets, 1 means disjoint.
func Intersection(k1, k2 pdb.Ranking, k int) float64 {
	if k <= 0 {
		k = len(k1)
		if len(k2) > k {
			k = len(k2)
		}
	}
	if k == 0 {
		return 0
	}
	pos1 := positions(k1)
	shared := 0
	for _, id := range k2 {
		if _, ok := pos1[id]; ok {
			shared++
		}
	}
	return 1 - float64(shared)/float64(k)
}
