package poly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func polyEq(t *testing.T, got, want Poly, tol float64, msg string) {
	t.Helper()
	g, w := got.Trim(), want.Trim()
	maxLen := len(g)
	if len(w) > maxLen {
		maxLen = len(w)
	}
	for i := 0; i < maxLen; i++ {
		var gv, wv float64
		if i < len(g) {
			gv = g[i]
		}
		if i < len(w) {
			wv = w[i]
		}
		if math.Abs(gv-wv) > tol {
			t.Fatalf("%s: coefficient %d: got %v want %v (full: %v vs %v)", msg, i, gv, wv, g, w)
		}
	}
}

func randPoly(rng *rand.Rand, n int) Poly {
	p := make(Poly, n)
	for i := range p {
		p[i] = rng.NormFloat64()
	}
	return p
}

func TestMulNaiveBasic(t *testing.T) {
	// (1+x)(1-x) = 1-x².
	got := MulNaive(Poly{1, 1}, Poly{1, -1})
	polyEq(t, got, Poly{1, 0, -1}, 1e-12, "(1+x)(1-x)")
}

func TestMulFFTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ la, lb int }{{1, 1}, {3, 4}, {17, 31}, {100, 57}} {
		a, b := randPoly(rng, tc.la), randPoly(rng, tc.lb)
		polyEq(t, MulFFT(a, b), MulNaive(a, b), 1e-7, "fft vs naive")
	}
}

func TestMulEmptyOperands(t *testing.T) {
	if got := MulNaive(nil, Poly{1}); got != nil {
		t.Fatalf("nil * p = %v", got)
	}
	if got := Mul(Poly{1, 2}, nil); got != nil {
		t.Fatalf("p * nil = %v", got)
	}
}

func TestMulTruncMatchesFullTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		a, b := randPoly(rng, 1+rng.Intn(20)), randPoly(rng, 1+rng.Intn(20))
		n := 1 + rng.Intn(25)
		full := MulNaive(a, b).Truncate(n)
		polyEq(t, MulTrunc(a, b, n), full, 1e-12, "MulTrunc")
	}
	if got := MulTrunc(Poly{1}, Poly{1}, 0); got != nil { // nolint
		t.Fatalf("MulTrunc with n=0 should be nil, got %v", got)
	}
}

func TestAddAndScale(t *testing.T) {
	polyEq(t, Add(Poly{1, 2}, Poly{3, 4, 5}), Poly{4, 6, 5}, 0, "Add")
	polyEq(t, Poly{1, -2}.Scale(3), Poly{3, -6}, 0, "Scale")
}

func TestTrimAndDegree(t *testing.T) {
	if d := (Poly{0, 0, 0}).Degree(); d != -1 {
		t.Fatalf("zero poly degree %d", d)
	}
	if d := (Poly{1, 2, 0}).Degree(); d != 1 {
		t.Fatalf("degree %d want 1", d)
	}
}

func TestEvalHorner(t *testing.T) {
	p := Poly{1, 2, 3} // 1 + 2x + 3x²
	if got := p.Eval(2); got != 17 {
		t.Fatalf("Eval(2)=%v want 17", got)
	}
	if got := p.EvalC(complex(0, 1)); math.Abs(real(got)-(-2)) > 1e-12 || math.Abs(imag(got)-2) > 1e-12 {
		// 1 + 2i + 3i² = -2 + 2i.
		t.Fatalf("EvalC(i)=%v want -2+2i", got)
	}
}

func TestDerivative(t *testing.T) {
	polyEq(t, Poly{5, 1, 2, 3}.Derivative(), Poly{1, 4, 9}, 0, "Derivative")
	if got := (Poly{5}).Derivative(); got != nil {
		t.Fatalf("derivative of constant = %v", got)
	}
}

func TestMultiProductMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		m := 1 + rng.Intn(8)
		ps := make([]Poly, m)
		for i := range ps {
			ps[i] = randPoly(rng, 1+rng.Intn(6))
		}
		polyEq(t, MultiProduct(ps), MultiProductNaive(ps), 1e-6, "MultiProduct")
	}
	polyEq(t, MultiProduct(nil), Poly{1}, 0, "empty product")
	if got := MultiProduct([]Poly{{1, 1}, nil}); got != nil {
		t.Fatalf("product with zero factor = %v", got)
	}
}

func TestMultiProductManyLinearFactors(t *testing.T) {
	// ∏_{i=1..64} (1 + x) = Σ C(64,j) x^j.
	ps := make([]Poly, 64)
	for i := range ps {
		ps[i] = Poly{1, 1}
	}
	got := MultiProduct(ps)
	want := make(Poly, 65)
	want[0] = 1
	for j := 1; j <= 64; j++ {
		want[j] = want[j-1] * float64(64-j+1) / float64(j)
	}
	if len(got) != len(want) {
		t.Fatalf("binomial product has %d coefficients, want %d", len(got), len(want))
	}
	for j := range want {
		if rel := math.Abs(got[j]-want[j]) / want[j]; rel > 1e-9 {
			t.Fatalf("C(64,%d): got %v want %v (rel err %g)", j, got[j], want[j], rel)
		}
	}
}

func TestInterpolateDFTRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 10; trial++ {
		p := randPoly(rng, 1+rng.Intn(30))
		got := InterpolateDFT(len(p)-1, p.EvalC)
		polyEq(t, got, p, 1e-8, "InterpolateDFT")
	}
}

func TestExprExpandBothWays(t *testing.T) {
	// ((1 + x + x²)(x² + 2x³) + x³(2 + 3x⁴))(1 + 2x), the Appendix B example.
	x2 := Product{Var{}, Var{}}
	x3 := Product{Var{}, Var{}, Var{}}
	x4 := Product{Var{}, Var{}, Var{}, Var{}}
	e := Product{
		Sum{
			Product{
				Sum{Const(1), Var{}, x2},
				Sum{x2, Product{Const(2), x3}},
			},
			Product{x3, Sum{Const(2), Product{Const(3), x4}}},
		},
		Sum{Const(1), Product{Const(2), Var{}}},
	}
	naive := ExpandNaive(e)
	dft := ExpandDFT(e)
	polyEq(t, dft, naive, 1e-8, "expr naive vs DFT")
	// Spot-check one coefficient by direct algebra:
	// (1+x+x²)(x²+2x³) = x² +3x³ +3x⁴ +2x⁵; plus x³(2+3x⁴)=2x³+3x⁷
	// → x²+5x³+3x⁴+2x⁵+3x⁷; times (1+2x):
	// x²+7x³+13x⁴+8x⁵+4x⁶+3x⁷+6x⁸.
	want := Poly{0, 0, 1, 7, 13, 8, 4, 3, 6}
	polyEq(t, naive, want, 1e-9, "expr value")
}

func TestLinHelper(t *testing.T) {
	e := Lin(0.3, 0.7)
	polyEq(t, ExpandNaive(e), Poly{0.3, 0.7}, 1e-12, "Lin")
	if e.DegreeBound() != 1 {
		t.Fatalf("Lin degree bound %d", e.DegreeBound())
	}
}

// Property: multiplication is commutative and distributes over addition.
func TestQuickRingAxioms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randPoly(rng, 1+rng.Intn(12)), randPoly(rng, 1+rng.Intn(12)), randPoly(rng, 1+rng.Intn(12))
		ab := MulNaive(a, b)
		ba := MulNaive(b, a)
		for i := range ab {
			if math.Abs(ab[i]-ba[i]) > 1e-9 {
				return false
			}
		}
		lhs := MulNaive(a, Add(b, c))
		rhs := Add(MulNaive(a, b), MulNaive(a, c))
		maxLen := len(lhs)
		if len(rhs) > maxLen {
			maxLen = len(rhs)
		}
		for i := 0; i < maxLen; i++ {
			var lv, rv float64
			if i < len(lhs) {
				lv = lhs[i]
			}
			if i < len(rhs) {
				rv = rhs[i]
			}
			if math.Abs(lv-rv) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: evaluation commutes with multiplication.
func TestQuickEvalHomomorphism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randPoly(rng, 1+rng.Intn(10)), randPoly(rng, 1+rng.Intn(10))
		x := rng.NormFloat64()
		lhs := MulNaive(a, b).Eval(x)
		rhs := a.Eval(x) * b.Eval(x)
		return math.Abs(lhs-rhs) <= 1e-6*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInterpolateNewtonRecoversPolynomials(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		p := randPoly(rng, 1+rng.Intn(15))
		xs := ChebyshevNodes(len(p))
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = p.Eval(x)
		}
		got := InterpolateNewton(xs, ys)
		polyEq(t, got, p, 1e-7, "InterpolateNewton")
	}
	if got := InterpolateNewton(nil, nil); got != nil {
		t.Fatalf("empty interpolation: %v", got)
	}
	if got := InterpolateNewton([]float64{1, 2}, []float64{1}); got != nil {
		t.Fatalf("mismatched lengths: %v", got)
	}
}

func TestChebyshevNodesDistinctInRange(t *testing.T) {
	xs := ChebyshevNodes(20)
	seen := map[float64]bool{}
	for _, x := range xs {
		if x < -1 || x > 1 {
			t.Fatalf("node %v out of range", x)
		}
		if seen[x] {
			t.Fatalf("duplicate node %v", x)
		}
		seen[x] = true
	}
}

func TestExpandVandermondeMatchesNaive(t *testing.T) {
	// The Appendix B example expression.
	x2 := Product{Var{}, Var{}}
	x3 := Product{Var{}, Var{}, Var{}}
	e := Product{
		Sum{
			Product{Sum{Const(1), Var{}, x2}, Sum{x2, Product{Const(2), x3}}},
			Product{x3, Sum{Const(2), Product{Const(3), Product{x2, x2}}}},
		},
		Sum{Const(1), Product{Const(2), Var{}}},
	}
	polyEq(t, ExpandVandermonde(e), ExpandNaive(e), 1e-6, "ExpandVandermonde")
}

// All three expansion algorithms of Appendix B agree on random expressions.
func TestQuickExpansionAlgorithmsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randExpr(rng, 0)
		if e.DegreeBound() > 20 {
			return true // keep the Vandermonde path in its reliable range
		}
		naive := ExpandNaive(e)
		dft := ExpandDFT(e)
		vand := ExpandVandermonde(e)
		maxLen := len(naive)
		if len(dft) > maxLen {
			maxLen = len(dft)
		}
		if len(vand) > maxLen {
			maxLen = len(vand)
		}
		// Scale tolerance by the coefficient magnitude.
		scale := 1.0
		for _, c := range naive {
			if math.Abs(c) > scale {
				scale = math.Abs(c)
			}
		}
		at := func(p Poly, i int) float64 {
			if i < len(p) {
				return p[i]
			}
			return 0
		}
		for i := 0; i < maxLen; i++ {
			if math.Abs(at(naive, i)-at(dft, i)) > 1e-6*scale {
				return false
			}
			if math.Abs(at(naive, i)-at(vand, i)) > 1e-5*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// randExpr builds a small random nested expression.
func randExpr(rng *rand.Rand, depth int) Expr {
	if depth >= 3 || rng.Float64() < 0.3 {
		if rng.Intn(2) == 0 {
			return Const(rng.NormFloat64())
		}
		return Var{}
	}
	n := 1 + rng.Intn(3)
	kids := make([]Expr, n)
	for i := range kids {
		kids[i] = randExpr(rng, depth+1)
	}
	if rng.Intn(2) == 0 {
		return Sum(kids)
	}
	return Product(kids)
}
