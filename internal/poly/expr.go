package poly

// Expr is a nested polynomial expression over a single variable x, as in
// Appendix B.2: constants, the variable, sums, and products, arbitrarily
// nested. The and/xor generating functions of Section 4.2 are exactly such
// expressions, so Expand{Naive,DFT} provide two ways to put them in standard
// form Σ cᵢxⁱ.
type Expr interface {
	// DegreeBound returns an upper bound on the degree of the expression.
	DegreeBound() int
	// EvalC evaluates the expression at a complex point in O(size) time.
	EvalC(x complex128) complex128
	// expand returns the expression in standard form via recursive
	// polynomial arithmetic.
	expand() Poly
}

// Const is a constant expression.
type Const float64

// Var is the variable x.
type Var struct{}

// Sum is the sum of sub-expressions.
type Sum []Expr

// Product is the product of sub-expressions.
type Product []Expr

// DegreeBound implements Expr.
func (Const) DegreeBound() int { return 0 }

// EvalC implements Expr.
func (c Const) EvalC(complex128) complex128 { return complex(float64(c), 0) }

func (c Const) expand() Poly { return Poly{float64(c)} }

// DegreeBound implements Expr.
func (Var) DegreeBound() int { return 1 }

// EvalC implements Expr.
func (Var) EvalC(x complex128) complex128 { return x }

func (Var) expand() Poly { return Poly{0, 1} }

// DegreeBound implements Expr.
func (s Sum) DegreeBound() int {
	d := 0
	for _, e := range s {
		if ed := e.DegreeBound(); ed > d {
			d = ed
		}
	}
	return d
}

// EvalC implements Expr.
func (s Sum) EvalC(x complex128) complex128 {
	var acc complex128
	for _, e := range s {
		acc += e.EvalC(x)
	}
	return acc
}

func (s Sum) expand() Poly {
	var acc Poly
	for _, e := range s {
		acc = Add(acc, e.expand())
	}
	return acc
}

// DegreeBound implements Expr.
func (p Product) DegreeBound() int {
	d := 0
	for _, e := range p {
		d += e.DegreeBound()
	}
	return d
}

// EvalC implements Expr.
func (p Product) EvalC(x complex128) complex128 {
	acc := complex(1, 0)
	for _, e := range p {
		acc *= e.EvalC(x)
	}
	return acc
}

func (p Product) expand() Poly {
	ps := make([]Poly, 0, len(p))
	for _, e := range p {
		ps = append(ps, e.expand())
	}
	return MultiProduct(ps)
}

// ExpandNaive expands a nested expression to standard form with recursive
// polynomial arithmetic (products via MultiProduct).
func ExpandNaive(e Expr) Poly { return e.expand() }

// ExpandDFT expands a nested expression with Algorithm 2 of Appendix B.2:
// evaluate the expression at deg+1 roots of unity (O(n) each, O(n²) total)
// and recover the coefficients with one inverse DFT. For expressions whose
// intermediate products blow up, this is asymptotically O(n²) regardless of
// nesting structure.
func ExpandDFT(e Expr) Poly {
	return InterpolateDFT(e.DegreeBound(), e.EvalC)
}

// Lin returns the expression a + b·x, the ubiquitous factor of the paper's
// generating functions (e.g. 1−p+p·x for an independent tuple).
func Lin(a, b float64) Expr { return Sum{Const(a), Product{Const(b), Var{}}} }
