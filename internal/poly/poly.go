// Package poly provides the polynomial machinery behind the paper's
// generating-function algorithms (Section 4) and the expansion algorithms of
// Appendix B: naive and FFT-based products, divide-and-conquer multi-products
// (Appendix B.1), truncated products for PRFω(h), and DFT-based expansion of
// nested polynomial expressions (Appendix B.2).
package poly

import (
	"container/heap"
	"math/cmplx"

	"repro/internal/fft"
)

// Poly is a dense univariate polynomial with real coefficients, lowest degree
// first: Poly{a0, a1, a2} represents a0 + a1·x + a2·x².
// The zero polynomial is represented by an empty (or all-zero) slice.
type Poly []float64

// fftThreshold is the coefficient-count product above which Mul switches from
// the schoolbook product to the FFT product.
const fftThreshold = 1 << 14

// Trim removes trailing (near-)zero coefficients, returning the canonical
// representation. Exact zeros only: numerical noise is the caller's business.
func (p Poly) Trim() Poly {
	n := len(p)
	for n > 0 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}

// Degree returns the degree of p, with -1 for the zero polynomial.
func (p Poly) Degree() int { return len(p.Trim()) - 1 }

// Clone returns a copy of p.
func (p Poly) Clone() Poly {
	q := make(Poly, len(p))
	copy(q, p)
	return q
}

// Add returns a+b.
func Add(a, b Poly) Poly {
	if len(b) > len(a) {
		a, b = b, a
	}
	out := make(Poly, len(a))
	copy(out, a)
	for i := range b {
		out[i] += b[i]
	}
	return out
}

// Scale returns c·p as a new polynomial.
func (p Poly) Scale(c float64) Poly {
	out := make(Poly, len(p))
	for i := range p {
		out[i] = c * p[i]
	}
	return out
}

// MulNaive returns a·b by the O(|a|·|b|) schoolbook product.
func MulNaive(a, b Poly) Poly {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make(Poly, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			out[i+j] += ai * bj
		}
	}
	return out
}

// MulFFT returns a·b via a complex FFT convolution.
func MulFFT(a, b Poly) Poly {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	ca := make([]complex128, len(a))
	cb := make([]complex128, len(b))
	for i, v := range a {
		ca[i] = complex(v, 0)
	}
	for i, v := range b {
		cb[i] = complex(v, 0)
	}
	cc := fft.Convolve(ca, cb)
	out := make(Poly, len(cc))
	for i, v := range cc {
		out[i] = real(v)
	}
	return out
}

// Mul returns a·b, choosing the schoolbook or FFT product by size.
func Mul(a, b Poly) Poly {
	if len(a)*len(b) >= fftThreshold && len(a) > 16 && len(b) > 16 {
		return MulFFT(a, b)
	}
	return MulNaive(a, b)
}

// MulTrunc returns (a·b) mod x^n, i.e. only coefficients 0..n-1. This is the
// workhorse of the PRFω(h) algorithms, which never need terms beyond x^h.
func MulTrunc(a, b Poly, n int) Poly {
	if len(a) == 0 || len(b) == 0 || n <= 0 {
		return nil
	}
	la, lb := len(a), len(b)
	if la > n {
		la = n
	}
	if lb > n {
		lb = n
	}
	outLen := la + lb - 1
	if outLen > n {
		outLen = n
	}
	out := make(Poly, outLen)
	for i := 0; i < la; i++ {
		ai := a[i]
		if ai == 0 {
			continue
		}
		maxJ := outLen - i
		if maxJ > lb {
			maxJ = lb
		}
		for j := 0; j < maxJ; j++ {
			out[i+j] += ai * b[j]
		}
	}
	return out
}

// Truncate returns p mod x^n.
func (p Poly) Truncate(n int) Poly {
	if n >= len(p) {
		return p.Clone()
	}
	if n <= 0 {
		return nil
	}
	out := make(Poly, n)
	copy(out, p[:n])
	return out
}

// Eval evaluates p at the real point x by Horner's rule.
func (p Poly) Eval(x float64) float64 {
	var acc float64
	for i := len(p) - 1; i >= 0; i-- {
		acc = acc*x + p[i]
	}
	return acc
}

// EvalC evaluates p at the complex point x by Horner's rule.
func (p Poly) EvalC(x complex128) complex128 {
	var acc complex128
	for i := len(p) - 1; i >= 0; i-- {
		acc = acc*x + complex(p[i], 0)
	}
	return acc
}

// Derivative returns p'.
func (p Poly) Derivative() Poly {
	if len(p) <= 1 {
		return nil
	}
	out := make(Poly, len(p)-1)
	for i := 1; i < len(p); i++ {
		out[i-1] = float64(i) * p[i]
	}
	return out
}

// polyHeap orders polynomials by length for smallest-first merging.
type polyHeap []Poly

func (h polyHeap) Len() int            { return len(h) }
func (h polyHeap) Less(i, j int) bool  { return len(h[i]) < len(h[j]) }
func (h polyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *polyHeap) Push(x interface{}) { *h = append(*h, x.(Poly)) }
func (h *polyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	p := old[n-1]
	*h = old[:n-1]
	return p
}

// MultiProduct computes ∏ ps[i] with the divide-and-conquer strategy of
// Appendix B.1: always merging the two currently-smallest factors (a Huffman
// merge), with FFT products for large factors. Total work is
// O(D log D log m) where D is the output degree, versus O(D²) for the naive
// left-to-right product.
func MultiProduct(ps []Poly) Poly {
	if len(ps) == 0 {
		return Poly{1}
	}
	h := make(polyHeap, 0, len(ps))
	for _, p := range ps {
		if len(p) == 0 {
			return nil // a zero factor annihilates the product
		}
		h = append(h, p)
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(Poly)
		b := heap.Pop(&h).(Poly)
		heap.Push(&h, Mul(a, b))
	}
	return h[0]
}

// MultiProductNaive computes ∏ ps[i] by left-to-right schoolbook products,
// the O(D²) baseline of Appendix B (used by ablation benchmarks).
func MultiProductNaive(ps []Poly) Poly {
	acc := Poly{1}
	for _, p := range ps {
		acc = MulNaive(acc, p)
		if len(acc) == 0 {
			return nil
		}
	}
	return acc
}

// InterpolateDFT recovers the coefficients of a polynomial of degree ≤ deg
// from the ability to evaluate it at arbitrary complex points, using
// Algorithm 2 of Appendix B.2: evaluate at the (deg+1)-th roots of unity
// u^k = e^{-2πik/(deg+1)} and apply the inverse DFT (F⁻¹ = F*/(n+1)).
func InterpolateDFT(deg int, eval func(x complex128) complex128) Poly {
	n := deg + 1
	if n <= 0 {
		return nil
	}
	vals := make([]complex128, n)
	for k := 0; k < n; k++ {
		// u^k with u = e^{-2πi/n}: the same kernel as the forward DFT,
		// so the inverse DFT recovers the coefficients directly.
		vals[k] = eval(cmplx.Exp(complex(0, -2*3.141592653589793238462643383279502884*float64(k)/float64(n))))
	}
	coeffs := fft.Inverse(vals)
	out := make(Poly, n)
	for i, c := range coeffs {
		out[i] = real(c)
	}
	return out
}
