package poly

import "math"

// Appendix B.2, Algorithm 1: expand a nested polynomial expression by
// evaluating it at n+1 distinct real points and solving the Vandermonde
// system. The appendix cites the O(n²) Björck-Pereyra solver; the standard
// equivalent implemented here goes through Newton's divided differences and
// a Newton-to-monomial basis conversion, also O(n²).
//
// Real-point interpolation is numerically delicate at high degree (the
// Vandermonde system's conditioning grows exponentially), which is exactly
// why the appendix's Algorithm 2 — roots of unity plus an inverse DFT, see
// InterpolateDFT — is "much easier to implement" and better behaved. Both
// are provided; tests pin the degree range where the real-point method is
// trustworthy.

// InterpolateNewton recovers the degree-(len(xs)−1) polynomial through the
// points (xs[i], ys[i]) in O(n²) via divided differences. The xs must be
// pairwise distinct.
func InterpolateNewton(xs, ys []float64) Poly {
	n := len(xs)
	if n == 0 || len(ys) != n {
		return nil
	}
	// Divided differences in place: a[i] = f[x_0..x_i].
	a := make([]float64, n)
	copy(a, ys)
	for k := 1; k < n; k++ {
		for i := n - 1; i >= k; i-- {
			a[i] = (a[i] - a[i-1]) / (xs[i] - xs[i-k])
		}
	}
	// Newton form → monomial coefficients:
	// p(x) = a_0 + (x−x_0)(a_1 + (x−x_1)(a_2 + …)), expanded by Horner.
	coeff := make(Poly, 1, n)
	coeff[0] = a[n-1]
	for i := n - 2; i >= 0; i-- {
		// coeff ← coeff·(x − xs[i]) + a[i].
		next := make(Poly, len(coeff)+1)
		for j, c := range coeff {
			next[j+1] += c
			next[j] -= c * xs[i]
		}
		next[0] += a[i]
		coeff = next
	}
	return coeff
}

// ChebyshevNodes returns n distinct points in [−1, 1] clustered toward the
// endpoints — the numerically preferred sample points for real-point
// interpolation.
func ChebyshevNodes(n int) []float64 {
	xs := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = math.Cos(math.Pi * (float64(i) + 0.5) / float64(n))
	}
	return xs
}

// ExpandVandermonde expands a nested expression to standard form with
// Appendix B.2's Algorithm 1: evaluate at deg+1 real (Chebyshev) points and
// interpolate. Reliable up to degree ≈ 25; beyond that prefer ExpandDFT.
func ExpandVandermonde(e Expr) Poly {
	deg := e.DegreeBound()
	xs := ChebyshevNodes(deg + 1)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = real(e.EvalC(complex(x, 0)))
	}
	return InterpolateNewton(xs, ys)
}
