package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference implementation.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64(j) * float64(k) / float64(n)
			sum += x[j] * cmplx.Rect(1, ang)
		}
		out[k] = sum
	}
	return out
}

func maxAbsDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestForwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 31, 32, 100, 128, 257} {
		x := randComplex(rng, n)
		got := Forward(x)
		want := naiveDFT(x, false)
		if d := maxAbsDiff(got, want); d > 1e-8*float64(n) {
			t.Fatalf("n=%d: Forward differs from naive by %g", n, d)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 3, 6, 8, 15, 64, 99, 256} {
		x := randComplex(rng, n)
		back := Inverse(Forward(x))
		if d := maxAbsDiff(back, x); d > 1e-9*float64(n+1) {
			t.Fatalf("n=%d: round trip error %g", n, d)
		}
	}
}

func TestForwardDoesNotMutateInput(t *testing.T) {
	x := []complex128{1, 2, 3, 4, 5}
	orig := make([]complex128, len(x))
	copy(orig, x)
	Forward(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("Forward mutated its input")
		}
	}
}

func TestConvolveMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct{ la, lb int }{{1, 1}, {2, 3}, {5, 5}, {17, 9}, {64, 33}} {
		a := randComplex(rng, tc.la)
		b := randComplex(rng, tc.lb)
		got := Convolve(a, b)
		want := make([]complex128, tc.la+tc.lb-1)
		for i := range a {
			for j := range b {
				want[i+j] += a[i] * b[j]
			}
		}
		if d := maxAbsDiff(got, want); d > 1e-8 {
			t.Fatalf("la=%d lb=%d: convolution error %g", tc.la, tc.lb, d)
		}
	}
}

func TestConvolveEmpty(t *testing.T) {
	if got := Convolve(nil, []complex128{1}); got != nil {
		t.Fatalf("Convolve(nil, x) = %v, want nil", got)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Fatalf("NextPow2(%d)=%d want %d", in, got, want)
		}
	}
}

func TestParsevalProperty(t *testing.T) {
	// Parseval: Σ|x|² = (1/n)Σ|X|².
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		x := randComplex(rng, n)
		X := Forward(x)
		var ex, eX float64
		for i := range x {
			ex += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			eX += real(X[i])*real(X[i]) + imag(X[i])*imag(X[i])
		}
		return math.Abs(ex-eX/float64(n)) <= 1e-7*(1+ex)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		a := randComplex(rng, n)
		b := randComplex(rng, n)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a[i] + b[i]
		}
		fa, fb, fs := Forward(a), Forward(b), Forward(sum)
		for i := range fs {
			if cmplx.Abs(fs[i]-(fa[i]+fb[i])) > 1e-7*float64(n+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
