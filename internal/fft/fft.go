// Package fft implements the discrete Fourier transform used by the
// polynomial substrate (Appendix B of the paper) and by the DFT-based
// approximation of weight functions (Section 5.1).
//
// Power-of-two sizes use an iterative radix-2 Cooley-Tukey transform;
// arbitrary sizes fall back to Bluestein's chirp-z algorithm, which reduces a
// length-n DFT to a power-of-two cyclic convolution. Everything is stdlib
// only.
package fft

import (
	"math"
	"math/cmplx"
)

// Forward computes the (unnormalized) forward DFT of x:
//
//	X[k] = Σ_j x[j]·e^{-2πi·jk/n}
//
// The input slice is not modified. Any length is accepted.
func Forward(x []complex128) []complex128 {
	return transform(x, false)
}

// Inverse computes the inverse DFT of X, including the 1/n normalization:
//
//	x[j] = (1/n)·Σ_k X[k]·e^{+2πi·jk/n}
func Inverse(x []complex128) []complex128 {
	out := transform(x, true)
	n := complex(float64(len(out)), 0)
	for i := range out {
		out[i] /= n
	}
	return out
}

func transform(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	copy(out, x)
	if n <= 1 {
		return out
	}
	if isPow2(n) {
		radix2(out, inverse)
		return out
	}
	return bluestein(out, inverse)
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// radix2 performs an in-place iterative Cooley-Tukey FFT. len(a) must be a
// power of two. inverse selects the conjugate transform (no normalization).
func radix2(a []complex128, inverse bool) {
	n := len(a)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for j := 0; j < half; j++ {
				u := a[start+j]
				v := a[start+j+half] * w
				a[start+j] = u + v
				a[start+j+half] = u - v
				w *= wl
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT via the chirp-z transform:
// jk = (j² + k² − (k−j)²)/2, so X[k] = b*[k]·Σ_j (x[j]b*[j])·b[k−j]
// with b[m] = e^{iπm²/n}, a cyclic convolution evaluated at a power of two.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// b[m] = exp(sign·iπ·m²/n). Use m² mod 2n to keep the angle bounded.
	b := make([]complex128, n)
	for m := 0; m < n; m++ {
		msq := (int64(m) * int64(m)) % int64(2*n)
		b[m] = cmplx.Rect(1, sign*math.Pi*float64(msq)/float64(n))
	}
	// X[k] = b[k]·Σ_j (x[j]·b[j])·conj(b[k−j]), a cyclic convolution with
	// the chirp conj(b) (using (k−j)² = k² + j² − 2jk).
	m := NextPow2(2*n - 1)
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	for j := 0; j < n; j++ {
		fa[j] = x[j] * b[j]
	}
	fb[0] = cmplx.Conj(b[0])
	for j := 1; j < n; j++ {
		c := cmplx.Conj(b[j])
		fb[j] = c
		fb[m-j] = c
	}
	radix2(fa, false)
	radix2(fb, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	radix2(fa, true)
	inv := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = fa[k] * inv * b[k]
	}
	return out
}

// Convolve returns the linear convolution of a and b (length la+lb−1) using
// a power-of-two FFT. Empty inputs yield an empty result.
func Convolve(a, b []complex128) []complex128 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	m := NextPow2(outLen)
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	copy(fa, a)
	copy(fb, b)
	radix2(fa, false)
	radix2(fb, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	radix2(fa, true)
	inv := complex(1/float64(m), 0)
	out := make([]complex128, outLen)
	for i := range out {
		out[i] = fa[i] * inv
	}
	return out
}
