package experiments

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
	"time"
)

// Every registered experiment must run cleanly at a tiny scale and produce
// its headline sections. These are the integration tests for the harness;
// numeric fidelity is covered by the packages' own unit tests and recorded
// in EXPERIMENTS.md.

func tinyConfig(buf *bytes.Buffer) Config {
	return Config{Out: buf, Scale: 0.002, Seed: 1}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "table3"}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Fatalf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(All()), len(want))
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID should miss unknown ids")
	}
}

func TestTable1Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := runTable1(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "E-Score", "U-Top", "Syn-IND"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig4Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := runFig4(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DFT", "DFT+DF", "DFT+DF+IS", "DFT+DF+IS+ES", "MSE"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestFig5Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := runFig5(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"step", "linear", "smooth"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestFig6Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := runFig6(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "crossing at") {
		t.Fatalf("no crossing points reported:\n%s", out)
	}
	if !strings.Contains(out, "no crossing (domination)") {
		t.Fatal("the dominated pair must be reported")
	}
}

func TestFig7Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := runFig7(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "IIP") || !strings.Contains(buf.String(), "Syn-IND") {
		t.Fatal("both datasets must appear")
	}
}

func TestFig8Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := runFig8(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 8(i)") || !strings.Contains(buf.String(), "Figure 8(ii)") {
		t.Fatal("both parts must appear")
	}
}

func TestFig9Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := runFig9(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "learning PRFe") || !strings.Contains(buf.String(), "learning PRFω") {
		t.Fatal("both learning parts must appear")
	}
}

func TestFig10Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := runFig10(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Syn-XOR", "Syn-LOW", "Syn-MED", "Syn-HIGH"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestFig11Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := runFig11(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 11(i)", "Figure 11(ii)", "Figure 11(iii)"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestTable3Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := runTable3(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fitted") {
		t.Fatal("fitted exponents missing")
	}
}

func TestScaledClamping(t *testing.T) {
	cfg := Config{Out: io.Discard, Scale: 0.00001, Seed: 1}
	if got := cfg.scaled(100000, 500); got != 500 {
		t.Fatalf("scaled floor: %d", got)
	}
	cfg.Scale = 2
	if got := cfg.scaled(1000, 1); got != 2000 {
		t.Fatalf("scaled: %d", got)
	}
}

func TestSampleIndicesDistinctSorted(t *testing.T) {
	idx := sampleIndices(100, 30, 7)
	seen := map[int]bool{}
	for i, v := range idx {
		if v < 0 || v >= 100 {
			t.Fatalf("index out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate index %d", v)
		}
		seen[v] = true
		if i > 0 && idx[i-1] > v {
			t.Fatal("not sorted")
		}
	}
	if got := sampleIndices(10, 50, 7); len(got) != 10 {
		t.Fatalf("clamp failed: %d", len(got))
	}
}

func TestLogGridAvoidsExactZero(t *testing.T) {
	is, alphas := logGrid(5, 10)
	if is[0] != 0 || alphas[0] <= 0 {
		t.Fatalf("first grid point: i=%d α=%v", is[0], alphas[0])
	}
	if alphas[4] <= alphas[1] {
		t.Fatal("grid not increasing")
	}
}

func TestFitExponentLinearAndQuadratic(t *testing.T) {
	ns := []int{1000, 2000, 4000, 8000}
	lin := make([]time.Duration, len(ns))
	quad := make([]time.Duration, len(ns))
	for i, n := range ns {
		lin[i] = time.Duration(n) * time.Microsecond
		quad[i] = time.Duration(n*n/1000) * time.Microsecond
	}
	if b := fitExponent(ns, lin); math.Abs(b-1) > 0.05 {
		t.Fatalf("linear data fitted exponent %v", b)
	}
	if b := fitExponent(ns, quad); math.Abs(b-2) > 0.05 {
		t.Fatalf("quadratic data fitted exponent %v", b)
	}
}
