package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/pdb"
)

func init() {
	register("table1",
		"Table 1: normalized Kendall distance between top-100 answers of E-Score, PT(100), U-Rank, E-Rank, U-Top on IIP-100,000 and Syn-IND-100,000",
		runTable1)
}

// baselineRankings computes the five Table 1 rankings on an independent
// dataset. U-Top is the exact odds-scan answer (the paper's most-probable
// top-k set).
func baselineRankings(d *pdb.Dataset, k, h int) (labels []string, ranks []pdb.Ranking) {
	labels = []string{"E-Score", fmt.Sprintf("PT(%d)", h), "U-Rank", "E-Rank", "U-Top"}
	// All five semantics share one prepared (sorted) view of the dataset.
	v := core.Prepare(d)
	eScore := pdb.RankByValue(baselines.EScore(d))
	pt := pdb.RankByValue(v.PTh(h))
	uRank := mustRanking(baselines.URankPrepared(v, k))
	eRank := baselines.ERankRanking(baselines.ERankPrepared(v))
	uTop, _, errUT := baselines.UTopKPrepared(v, k)
	pdb.MustNoErr(errUT)
	ranks = []pdb.Ranking{eScore, pt, uRank, eRank, uTop}
	return labels, ranks
}

func runTable1(cfg Config) error {
	n := cfg.scaled(100000, 500)
	k := 100
	if k > n/2 {
		k = n / 2
	}
	h := k
	for name, build := range map[string]func() *pdb.Dataset{
		"IIP": func() *pdb.Dataset { return datagen.IIPLike(n, cfg.Seed) },
		"Syn-IND": func() *pdb.Dataset {
			return datagen.SynIND(n, cfg.Seed+1)
		},
	} {
		d := build()
		labels, ranks := baselineRankings(d, k, h)
		dist := make([][]float64, len(ranks))
		for i := range dist {
			dist[i] = make([]float64, len(ranks))
			for j := range ranks {
				if i != j {
					dist[i][j] = kendall(ranks[i], ranks[j], k)
				}
			}
		}
		header(cfg.Out, fmt.Sprintf("Table 1 — %s-%d (k=%d)", name, n, k))
		matrix(cfg.Out, labels, dist)
	}
	fmt.Fprintln(cfg.Out, "\nPaper: the five semantics disagree wildly (distances 0.12-0.95, no")
	fmt.Fprintln(cfg.Out, "consistent pattern across datasets); E-Rank is the clearest outlier on IIP.")
	return nil
}
