package experiments

import (
	"fmt"

	"repro/internal/dftapprox"
)

func init() {
	register("fig4",
		"Figure 4: effect of the DFT adaptation steps on approximating the step function (N=1000, L=20)",
		runFig4)
	register("fig5",
		"Figure 5: approximating step / linear / smooth weight functions with increasing numbers of exponentials",
		runFig5)
}

func runFig4(cfg Config) error {
	n := cfg.scaled(1000, 100)
	const l = 20
	omega := dftapprox.Step(n)
	header(cfg.Out, fmt.Sprintf("Figure 4 — step function N=%d, L=%d", n, l))
	variants := dftapprox.VariantOptions(l)
	allTerms := make([][]dftapprox.Term, len(variants))
	for v, opt := range variants {
		allTerms[v] = dftapprox.Approximate(omega, n, opt)
	}
	// Print the approximation series at a coarse grid over [0, 2.5N], the
	// paper's plotted range.
	fmt.Fprintf(cfg.Out, "%8s %10s", "x", "w(x)")
	for _, name := range dftapprox.VariantNames {
		fmt.Fprintf(cfg.Out, " %14s", name)
	}
	fmt.Fprintln(cfg.Out)
	for _, frac := range []float64{0, 0.02, 0.05, 0.25, 0.5, 0.75, 0.95, 1.0, 1.05, 1.5, 2.0, 2.2, 2.5} {
		x := int(frac * float64(n))
		fmt.Fprintf(cfg.Out, "%8d %10.3f", x, omega(x))
		for v := range variants {
			fmt.Fprintf(cfg.Out, " %14.4f", dftapprox.Eval(allTerms[v], x))
		}
		fmt.Fprintln(cfg.Out)
	}
	fmt.Fprintf(cfg.Out, "%19s", "MSE over [0,2.5N]:")
	for v := range variants {
		fmt.Fprintf(cfg.Out, " %14.5f", dftapprox.MeanSquaredError(omega, allTerms[v], n*5/2))
	}
	fmt.Fprintln(cfg.Out)
	fmt.Fprintln(cfg.Out, "\nPaper: bare DFT is periodic; DF kills the periodicity but biases the")
	fmt.Fprintln(cfg.Out, "plateau; IS removes the bias; ES repairs the boundary near x=0.")
	return nil
}

func runFig5(cfg Config) error {
	n := cfg.scaled(1000, 100)
	funcs := []struct {
		name  string
		omega func(int) float64
		ls    []int
	}{
		{"step", dftapprox.Step(n), []int{10, 20, 30, 50, 100}},
		{"linear", dftapprox.LinearDecay(n), []int{5, 10, 20, 50}},
		{"smooth", dftapprox.Smooth(n), []int{10, 20, 30, 50}},
	}
	header(cfg.Out, fmt.Sprintf("Figure 5 — approximation error vs number of exponentials (N=%d)", n))
	fmt.Fprintf(cfg.Out, "%8s %6s %12s %12s\n", "func", "L", "MSE", "maxErr")
	for _, f := range funcs {
		// Normalize the error scale for the linear function (amplitude N).
		amp := 1.0
		if f.name == "linear" {
			amp = float64(n)
		}
		for _, l := range f.ls {
			terms := dftapprox.Approximate(f.omega, n, dftapprox.DefaultOptions(l))
			mse := dftapprox.MeanSquaredError(f.omega, terms, 2*n) / (amp * amp)
			maxe := dftapprox.MaxAbsError(f.omega, terms, 2*n) / amp
			fmt.Fprintf(cfg.Out, "%8s %6d %12.6f %12.6f\n", f.name, l, mse, maxe)
		}
	}
	fmt.Fprintln(cfg.Out, "\nPaper: smooth and linear functions need far fewer exponentials than the")
	fmt.Fprintln(cfg.Out, "discontinuous step function; error decreases with L for all three.")
	return nil
}
