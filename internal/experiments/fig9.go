package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/learn"
	"repro/internal/pdb"
)

func init() {
	register("fig9",
		"Figure 9: learning PRFe(α) and PRFω from user preferences synthesized by five ranking functions",
		runFig9)
}

// userFunc is one of the paper's assumed "true" user ranking functions.
type userFunc struct {
	name string
	rank func(d *pdb.Dataset, k int) pdb.Ranking
}

func fig9UserFuncs() []userFunc {
	return []userFunc{
		{"PT(100)", func(d *pdb.Dataset, k int) pdb.Ranking {
			h := 100
			if h > d.Len() {
				h = d.Len()
			}
			return pdb.RankByValue(core.PTh(d, h))
		}},
		{"PRFe(.95)", func(d *pdb.Dataset, _ int) pdb.Ranking {
			return core.RankPRFe(d, 0.95)
		}},
		{"E-Score", func(d *pdb.Dataset, _ int) pdb.Ranking {
			return pdb.RankByValue(baselines.EScore(d))
		}},
		{"U-Rank", func(d *pdb.Dataset, k int) pdb.Ranking {
			kk := 100
			if kk > d.Len() {
				kk = d.Len()
			}
			return mustRanking(baselines.URank(d, kk))
		}},
		{"E-Rank", func(d *pdb.Dataset, _ int) pdb.Ranking {
			return baselines.ERankRanking(baselines.ERank(d))
		}},
	}
}

func runFig9(cfg Config) error {
	n := cfg.scaled(100000, 2000)
	k := 100
	d := datagen.IIPLike(n, cfg.Seed)
	funcs := fig9UserFuncs()

	// Part (i): learn a single PRFe α from samples of increasing size.
	header(cfg.Out, fmt.Sprintf("Figure 9(i) — learning PRFe(α), IIP-%d, k=%d", n, k))
	sampleSizes := []int{cfg.scaled(1000, 100), cfg.scaled(10000, 500), cfg.scaled(100000, 1000)}
	fmt.Fprintf(cfg.Out, "%10s", "samples")
	for _, f := range funcs {
		fmt.Fprintf(cfg.Out, " %12s", f.name)
	}
	fmt.Fprintln(cfg.Out)
	for _, m := range sampleSizes {
		fmt.Fprintf(cfg.Out, "%10d", m)
		sample, _ := d.Subset(sampleIndices(n, m, cfg.Seed+int64(m)))
		for _, f := range funcs {
			// The user ranks the sample as if it were the whole relation.
			user := f.rank(sample, k)
			res := learn.LearnAlpha(sample, user, k, 8)
			// Evaluate on the full dataset: learned PRFe vs true function.
			truth := f.rank(d, k)
			learned := core.RankPRFe(d, res.Alpha)
			fmt.Fprintf(cfg.Out, " %12.4f", kendall(truth, learned, k))
		}
		fmt.Fprintln(cfg.Out)
	}

	// Part (ii): learn a PRFω weight vector (RankSVM-style) from small
	// samples, as the paper does with SVM-light (sample ≤ 200).
	header(cfg.Out, fmt.Sprintf("Figure 9(ii) — learning PRFω, IIP-%d, k=%d", n, k))
	h := 100
	fmt.Fprintf(cfg.Out, "%10s", "samples")
	for _, f := range funcs {
		fmt.Fprintf(cfg.Out, " %12s", f.name)
	}
	fmt.Fprintln(cfg.Out)
	for _, m := range []int{50, 100, 200} {
		fmt.Fprintf(cfg.Out, "%10d", m)
		sample, _ := d.Subset(sampleIndices(n, m, cfg.Seed+int64(1000+m)))
		for _, f := range funcs {
			user := f.rank(sample, k)
			w := learn.LearnOmega(sample, user, learn.OmegaOptions{H: h, Iters: 400})
			truth := f.rank(d, k)
			learned := learn.RankWithOmega(d, w)
			fmt.Fprintf(cfg.Out, " %12.4f", kendall(truth, learned, k))
		}
		fmt.Fprintln(cfg.Out)
	}
	fmt.Fprintln(cfg.Out, "\nPaper: PRFe is learned perfectly when the truth is PRFe; PT(h)/U-Rank are")
	fmt.Fprintln(cfg.Out, "learned well from small samples; E-Rank is hard (sharp valley, dataset-size")
	fmt.Fprintln(cfg.Out, "sensitive); PRFω learning recovers PT(h) and PRFe but U-Rank only partially.")
	return nil
}
