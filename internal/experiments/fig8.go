package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dftapprox"
	"repro/internal/pdb"
)

func init() {
	register("fig8",
		"Figure 8: ranking quality of PT(h)/smooth/linear approximated by L PRFe terms (DFT variants and term sweep)",
		runFig8)
}

// comboRanking ranks a prepared view by the real part of a linear
// combination of PRFe functions derived from sequence-approximation terms,
// using the fused single-pass kernel.
func comboRanking(v *core.Prepared, terms []dftapprox.Term) pdb.Ranking {
	rankTerms := dftapprox.TermsForRankWeights(terms)
	coreTerms := make([]core.ExpTerm, len(rankTerms))
	for i, t := range rankTerms {
		coreTerms[i] = core.ExpTerm{U: t.U, Alpha: t.Alpha}
	}
	vals := v.PRFeCombo(coreTerms)
	return pdb.RankByValue(core.RealParts(vals))
}

func runFig8(cfg Config) error {
	// Part (i): PT(1000) with k=1000 on IIP-100,000 under the four DFT
	// variants, L sweep.
	n := cfg.scaled(100000, 2000)
	h := cfg.scaled(1000, 50)
	k := h
	d := datagen.IIPLike(n, cfg.Seed)
	v := core.Prepare(d) // one sort amortized over every L and variant below
	exact := pdb.RankByValue(v.PTh(h))
	step := dftapprox.Step(h)

	header(cfg.Out, fmt.Sprintf("Figure 8(i) — approximating PT(%d), IIP-%d, k=%d", h, n, k))
	fmt.Fprintf(cfg.Out, "%6s", "L")
	for _, name := range dftapprox.VariantNames {
		fmt.Fprintf(cfg.Out, " %14s", name)
	}
	fmt.Fprintln(cfg.Out)
	for _, l := range []int{10, 20, 50, 100, 200} {
		fmt.Fprintf(cfg.Out, "%6d", l)
		for _, opt := range dftapprox.VariantOptions(l) {
			terms := dftapprox.Approximate(step, h, opt)
			r := comboRanking(v, terms)
			fmt.Fprintf(cfg.Out, " %14.4f", kendall(exact, r, k))
		}
		fmt.Fprintln(cfg.Out)
	}

	// Part (ii): three weight functions, two dataset sizes.
	n2 := cfg.scaled(1000000, 5000)
	d2 := datagen.IIPLike(n2, cfg.Seed+7)
	v2 := core.Prepare(d2)
	header(cfg.Out, fmt.Sprintf("Figure 8(ii) — #terms vs quality, IIP-%d and IIP-%d", n, n2))
	funcs := []struct {
		name  string
		omega func(int) float64
	}{
		{fmt.Sprintf("PT(%d)", h), step},
		{"sfunc", dftapprox.Smooth(h)},
		{"linear", dftapprox.LinearDecay(h)},
	}
	fmt.Fprintf(cfg.Out, "%10s %6s %14s %14s\n", "func", "L",
		fmt.Sprintf("Kendall n=%d", n), fmt.Sprintf("Kendall n=%d", n2))
	for _, f := range funcs {
		// All three weight functions vanish beyond h, so the exact ranking
		// is an O(n·h) PRFω(h) evaluation.
		wv := weightVector(f.omega, h)
		exact1 := pdb.RankByValue(v.PRFOmega(wv))
		exact2 := pdb.RankByValue(v2.PRFOmega(wv))
		for _, l := range []int{10, 20, 40, 80} {
			terms := dftapprox.Approximate(f.omega, h, dftapprox.DefaultOptions(l))
			r1 := comboRanking(v, terms)
			r2 := comboRanking(v2, terms)
			fmt.Fprintf(cfg.Out, "%10s %6d %14.4f %14.4f\n", f.name, l,
				kendall(exact1, r1, k), kendall(exact2, r2, k))
		}
	}
	fmt.Fprintln(cfg.Out, "\nPaper: bare DFT stays near distance 0.8; the full pipeline reaches <0.1")
	fmt.Fprintln(cfg.Out, "with ~20 terms; smooth and linear functions are easier than the step.")
	return nil
}

// weightVector samples a 0-based sequence function into a PRFω(h) weight
// vector (w[j] is the weight of rank j+1).
func weightVector(omega func(int) float64, h int) []float64 {
	w := make([]float64, h)
	for i := range w {
		w[i] = omega(i)
	}
	return w
}
