package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/pdb"
)

func init() {
	register("fig6",
		"Figure 6 (Example 7): PRFe curves Υα(t) of four tuples and their crossing points",
		runFig6)
	register("fig7",
		"Figure 7: Kendall distance between PRFe(α=1−0.9^i) and prior ranking functions, IIP-100,000 and Syn-IND-1,000 (k=100)",
		runFig7)
}

func runFig6(cfg Config) error {
	// The Example 7 database: (t1:100,.4) (t2:80,.6) (t3:50,.5) (t4:30,.9).
	d := pdb.MustDataset([]float64{100, 80, 50, 30}, []float64{0.4, 0.6, 0.5, 0.9})
	v := core.Prepare(d) // one sorted view for the curves and crossings
	header(cfg.Out, "Figure 6 — Υα(ti) for Example 7")
	alphas := make([]float64, 21)
	for i := range alphas {
		alphas[i] = float64(i) / 20
	}
	curves := v.PRFeCurve(alphas)
	fmt.Fprintf(cfg.Out, "%6s %10s %10s %10s %10s   ranking\n", "alpha", "f1", "f2", "f3", "f4")
	for a, alpha := range alphas {
		vals := make([]float64, 4)
		for i := 0; i < 4; i++ {
			vals[i] = curves[i][a]
		}
		r := pdb.RankByValue(vals)
		fmt.Fprintf(cfg.Out, "%6.2f %10.5f %10.5f %10.5f %10.5f   %v\n",
			alpha, vals[0], vals[1], vals[2], vals[3], r)
	}
	fmt.Fprintln(cfg.Out, "\nCrossing points (Theorem 4: each pair crosses at most once):")
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if beta, ok := v.CrossingPoint(i, j); ok {
				fmt.Fprintf(cfg.Out, "  sorted positions (%d,%d): crossing at α=%.4f\n", i+1, j+1, beta)
			} else {
				fmt.Fprintf(cfg.Out, "  sorted positions (%d,%d): no crossing (domination)\n", i+1, j+1)
			}
		}
	}
	// The kinetic sweep counts the crossings it passes through, making the
	// spectrum exact; a grid sample can only lower-bound it.
	fmt.Fprintf(cfg.Out, "\nSpectrum: %d distinct rankings over α ∈ (0,1) exactly (kinetic sweep); ", v.SpectrumSize())
	fmt.Fprintf(cfg.Out, "a 20-point grid sees %d.\n", v.SpectrumSizeGrid(20))
	fmt.Fprintln(cfg.Out, "\nPaper: the ranking morphs from {t1,t2,t3,t4} (α→0, the Pr(r=1) order)")
	fmt.Fprintln(cfg.Out, "to {t4,t2,t3,t1} (α=1, the probability order), one adjacent swap at a time.")
	return nil
}

func runFig7(cfg Config) error {
	k := 100
	datasets := []struct {
		name string
		d    *pdb.Dataset
	}{
		{"IIP", datagen.IIPLike(cfg.scaled(100000, 1000), cfg.Seed)},
		{"Syn-IND", datagen.SynIND(1000, cfg.Seed+1)},
	}
	is, alphas := logGrid(21, 10)
	for _, ds := range datasets {
		d := ds.d
		n := d.Len()
		kk := k
		if kk > n/2 {
			kk = n / 2
		}
		// Reference rankings, all off one shared prepared view.
		v := core.Prepare(d)
		score := pdb.RankByValue(baselines.ByScore(d))
		prob := pdb.RankByValue(baselines.ByProbability(d))
		eScore := pdb.RankByValue(baselines.EScore(d))
		pt := pdb.RankByValue(v.PTh(kk))
		uRank := mustRanking(baselines.URankPrepared(v, kk))
		eRank := baselines.ERankRanking(baselines.ERankPrepared(v))
		uTop, _, errUT := baselines.UTopKPrepared(v, kk)
		pdb.MustNoErr(errUT)
		refs := []struct {
			name string
			r    pdb.Ranking
		}{
			{"Score", score}, {"Prob", prob}, {"E-Score", eScore},
			{fmt.Sprintf("PT(%d)", kk), pt}, {"U-Rank", uRank},
			{"E-Rank", eRank}, {"U-Top", uTop},
		}
		header(cfg.Out, fmt.Sprintf("Figure 7 — %s-%d, k=%d, α=1−0.9^i", ds.name, n, kk))
		fmt.Fprintf(cfg.Out, "%4s %8s", "i", "alpha")
		for _, ref := range refs {
			fmt.Fprintf(cfg.Out, " %9s", ref.name)
		}
		fmt.Fprintln(cfg.Out)
		// The α grid is monotone, so the batch rides the kinetic sweep:
		// one sort at the first grid point, adjacent swaps after that.
		sweep := v.RankPRFeBatch(alphas)
		for j, alpha := range alphas {
			fmt.Fprintf(cfg.Out, "%4d %8.5f", is[j], alpha)
			for _, ref := range refs {
				fmt.Fprintf(cfg.Out, " %9.4f", kendall(sweep[j], ref.r, kk))
			}
			fmt.Fprintln(cfg.Out)
		}
	}
	fmt.Fprintln(cfg.Out, "\nPaper: PRFe is close to Score for small α and to Prob for α→1; for every")
	fmt.Fprintln(cfg.Out, "other function there is an α making the distance small (uni-valley curves).")
	return nil
}
