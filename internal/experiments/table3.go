package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/andxor"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/junction"
	"repro/internal/pdb"
)

func init() {
	register("table3",
		"Table 3: empirical scaling check of the complexity summary (doubling experiment with fitted growth exponents)",
		runTable3)
}

// fitExponent estimates b in t ≈ a·n^b by least squares on log-log points.
func fitExponent(ns []int, ts []time.Duration) float64 {
	var sx, sy, sxx, sxy float64
	m := float64(len(ns))
	for i := range ns {
		x := math.Log(float64(ns[i]))
		y := math.Log(ts[i].Seconds() + 1e-9)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	return (m*sxy - sx*sy) / (m*sxx - sx*sx)
}

func runTable3(cfg Config) error {
	header(cfg.Out, "Table 3 — empirical scaling of the ranking algorithms")
	fmt.Fprintf(cfg.Out, "%-34s %-14s %-10s %s\n", "algorithm", "paper bound", "fitted n^b", "times")

	type algo struct {
		name  string
		bound string
		sizes []int
		run   func(n int)
	}
	mk := func(n int) *pdb.Dataset {
		d := datagen.SynIND(n, cfg.Seed)
		d.SortByScore()
		return d
	}
	algos := []algo{
		{
			name: "IND PRFe (Alg. 3 via Eq. 3)", bound: "O(n log n)",
			sizes: []int{20000, 40000, 80000, 160000},
			run:   func(n int) { core.PRFeLog(mk(n), complex(0.9, 0)) },
		},
		{
			name: "IND PRFω(h=100)", bound: "O(n·h)",
			sizes: []int{20000, 40000, 80000, 160000},
			run:   func(n int) { core.PTh(mk(n), 100) },
		},
		{
			name: "IND full PRF (Alg. 1)", bound: "O(n²)",
			sizes: []int{500, 1000, 2000, 4000},
			run: func(n int) {
				core.PRF(mk(n), func(_ pdb.Tuple, i int) float64 { return 1 / float64(i) })
			},
		},
		{
			name: "And/Xor PRFe incremental (Alg. 3)", bound: "O(Σdᵢ + n log n)",
			sizes: []int{10000, 20000, 40000, 80000},
			run: func(n int) {
				tree, err := datagen.SynMED(n, cfg.Seed)
				if err == nil {
					andxor.PRFeValues(tree, complex(0.9, 0))
				}
			},
		},
		{
			name: "And/Xor PRFe naive re-evaluation", bound: "O(n²)",
			sizes: []int{250, 500, 1000, 2000},
			run: func(n int) {
				tree, err := datagen.SynMED(n, cfg.Seed)
				if err == nil {
					andxor.PRFeValuesNaive(tree, complex(0.9, 0))
				}
			},
		},
		{
			name: "And/Xor PRFω(h=50) (Alg. 2)", bound: "O(n²·h) worst",
			sizes: []int{250, 500, 1000},
			run: func(n int) {
				tree, err := datagen.SynMED(n, cfg.Seed)
				if err == nil {
					andxor.PTh(tree, 50)
				}
			},
		},
		{
			name: "Chain PRFe product tree (prepared)", bound: "O(n log n)",
			sizes: []int{4000, 8000, 16000, 32000},
			run: func(n int) {
				junction.PrepareChain(datagen.MarkovChainLike(n, cfg.Seed)).PRFe(complex(0.9, 0))
			},
		},
		{
			name: "Chain PRFe partial-sum DP (§9.3)", bound: "O(n³)",
			sizes: []int{50, 100, 200, 400},
			run: func(n int) {
				junction.PRFeChainDP(datagen.MarkovChainLike(n, cfg.Seed), complex(0.9, 0))
			},
		},
	}
	for _, a := range algos {
		sizes := make([]int, len(a.sizes))
		for i, s := range a.sizes {
			sizes[i] = cfg.scaled(s, 100)
		}
		times := make([]time.Duration, len(sizes))
		rows := ""
		for i, n := range sizes {
			times[i] = timeIt(func() { a.run(n) })
			rows += fmt.Sprintf(" %d:%s", n, fmtDur(times[i]))
		}
		fmt.Fprintf(cfg.Out, "%-34s %-14s %-10.2f%s\n", a.name, a.bound, fitExponent(sizes, times), rows)
	}
	fmt.Fprintln(cfg.Out, "\nThe fitted exponents should track the paper's bounds: ≈1 for the")
	fmt.Fprintln(cfg.Out, "(near-)linear algorithms, ≈2 for the quadratic ones. Generation time is")
	fmt.Fprintln(cfg.Out, "excluded from none of the tree rows (dominated by ranking at these sizes).")
	return nil
}
