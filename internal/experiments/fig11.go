package experiments

import (
	"fmt"

	"repro/internal/andxor"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dftapprox"
)

func init() {
	register("fig11",
		"Figure 11: execution times — (i) four functions vs n; (ii) exact PT(h) vs PRFe-combination approximations; (iii) correlated datasets",
		runFig11)
}

func runFig11(cfg Config) error {
	// Part (i): PRFe, PT(100), U-Rank(k), E-Rank on IIP datasets of growing
	// size.
	header(cfg.Out, "Figure 11(i) — execution time vs number of tuples (IIP)")
	fmt.Fprintf(cfg.Out, "%10s %12s %12s %12s %12s %12s\n", "n", "prepare", "PRFe(.95)", "PT(100)", "U-Rank(100)", "E-Rank")
	for _, base := range []int{200000, 400000, 600000, 800000, 1000000} {
		n := cfg.scaled(base, 1000)
		d := datagen.IIPLike(n, cfg.Seed)
		h := 100
		k := 100
		// One sort for the whole row; every kernel below is a pure scan.
		var v *core.Prepared
		tPrep := timeIt(func() { v = core.Prepare(d) })
		tPRFe := timeIt(func() { v.PRFeLog(complex(0.95, 0)) })
		tPT := timeIt(func() { v.PTh(h) })
		tUR := timeIt(func() { mustRanking(baselines.URankPrepared(v, k)) })
		tER := timeIt(func() { baselines.ERankPrepared(v) })
		fmt.Fprintf(cfg.Out, "%10d %12s %12s %12s %12s %12s\n", n,
			fmtDur(tPrep), fmtDur(tPRFe), fmtDur(tPT), fmtDur(tUR), fmtDur(tER))
	}

	// Part (ii): exact PT(h) vs L-term PRFe approximations.
	header(cfg.Out, "Figure 11(ii) — exact PT(h) vs approximation by L PRFe terms (IIP)")
	fmt.Fprintf(cfg.Out, "%10s %8s %12s %10s %10s %10s\n", "n", "h", "exact", "w20", "w50", "w100")
	for _, base := range []int{200000, 600000, 1000000} {
		n := cfg.scaled(base, 1000)
		h := cfg.scaled(10000, 100)
		if h > n/2 {
			h = n / 2
		}
		d := datagen.IIPLike(n, cfg.Seed)
		v := core.Prepare(d)
		tExact := timeIt(func() { v.PTh(h) })
		times := make(map[int]string)
		for _, l := range []int{20, 50, 100} {
			terms := dftapprox.TermsForRankWeights(
				dftapprox.Approximate(dftapprox.Step(h), h, dftapprox.DefaultOptions(l)))
			coreTerms := make([]core.ExpTerm, len(terms))
			for i, t := range terms {
				coreTerms[i] = core.ExpTerm{U: t.U, Alpha: t.Alpha}
			}
			// Fused single-pass combination over the shared view.
			times[l] = fmtDur(timeIt(func() { v.PRFeCombo(coreTerms) }))
		}
		fmt.Fprintf(cfg.Out, "%10d %8d %12s %10s %10s %10s\n",
			n, h, fmtDur(tExact), times[20], times[50], times[100])
	}

	// Part (iii): correlated datasets (Syn-XOR low correlation, Syn-HIGH
	// high correlation): incremental PRFe vs exact PT(h) vs approximations.
	header(cfg.Out, "Figure 11(iii) — correlated datasets (and/xor trees)")
	fmt.Fprintf(cfg.Out, "%10s %10s %8s %12s %12s %10s %10s\n",
		"dataset", "n", "h", "PRFe(.95)", "exact PT(h)", "w20", "w50")
	for _, base := range []int{20000, 60000, 100000} {
		n := cfg.scaled(base, 500)
		// Exact PT(h) on trees is O(n²h); keep h proportionate so the
		// harness completes (the paper's own exact runs took ~1000s).
		h := n / 10
		if h > 1000 {
			h = 1000
		}
		for _, which := range []string{"Syn-XOR", "Syn-HIGH"} {
			var tree *andxor.Tree
			var err error
			if which == "Syn-XOR" {
				tree, err = datagen.SynXOR(n, cfg.Seed)
			} else {
				tree, err = datagen.SynHIGH(n, cfg.Seed)
			}
			if err != nil {
				return err
			}
			// One PreparedTree per dataset: the PRFe and approximation
			// timings below measure evaluation over the shared view, with
			// the leaf sort and Algorithm 3 buffers paid once up front.
			pt := andxor.PrepareTree(tree)
			tPRFe := timeIt(func() { pt.PRFe(complex(0.95, 0)) })
			// Exact PT(h) on trees is O(n²h); beyond ~2e9 operations we
			// report it as skipped, which is the paper's own point (their
			// exact runs took up to an hour).
			exactStr := "(skipped)"
			if float64(n)*float64(n)*float64(h) <= 2e9 {
				exactStr = fmtDur(timeIt(func() { andxor.PTh(tree, h) }))
			}
			approxTime := func(l int) string {
				terms := dftapprox.TermsForRankWeights(
					dftapprox.Approximate(dftapprox.Step(h), h, dftapprox.DefaultOptions(l)))
				us := make([]complex128, len(terms))
				alphas := make([]complex128, len(terms))
				for i, t := range terms {
					us[i], alphas[i] = t.U, t.Alpha
				}
				return fmtDur(timeIt(func() { pt.PRFeCombo(us, alphas) }))
			}
			fmt.Fprintf(cfg.Out, "%10s %10d %8d %12s %12s %10s %10s\n",
				which, n, h, fmtDur(tPRFe), exactStr, approxTime(20), approxTime(50))
		}
	}
	fmt.Fprintln(cfg.Out, "\nPaper: PRFe and E-Rank are linear and k-insensitive (a million tuples in")
	fmt.Fprintln(cfg.Out, "1-2s); PT(h)/U-Rank grow with h·n and k·n; the PRFe-combination")
	fmt.Fprintln(cfg.Out, "approximation beats exact PT(h) by orders of magnitude at large h.")
	return nil
}
