package experiments

import (
	"fmt"

	"repro/internal/andxor"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/pdb"
)

func init() {
	register("fig10",
		"Figure 10: effect of correlations — Kendall distance between correlation-aware and independence-assuming rankings on Syn-XOR/LOW/MED/HIGH",
		runFig10)
}

type corrDataset struct {
	name string
	tree *andxor.Tree
}

func fig10Datasets(cfg Config, n int) ([]corrDataset, error) {
	synXOR, err := datagen.SynXOR(n, cfg.Seed)
	if err != nil {
		return nil, err
	}
	synLOW, err := datagen.SynLOW(n, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	synMED, err := datagen.SynMED(n, cfg.Seed+2)
	if err != nil {
		return nil, err
	}
	synHIGH, err := datagen.SynHIGH(n, cfg.Seed+3)
	if err != nil {
		return nil, err
	}
	return []corrDataset{
		{"Syn-XOR", synXOR}, {"Syn-LOW", synLOW}, {"Syn-MED", synMED}, {"Syn-HIGH", synHIGH},
	}, nil
}

func runFig10(cfg Config) error {
	k := 100
	// Part (i): PRFe across α — cheap on trees, so use a larger n.
	n1 := cfg.scaled(10000, 1000)
	ds, err := fig10Datasets(cfg, n1)
	if err != nil {
		return err
	}
	header(cfg.Out, fmt.Sprintf("Figure 10(i) — PRFe(α): correlation-aware vs independence-assuming, n=%d, k=%d", n1, k))
	alphas := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 0.99, 1.0}
	fmt.Fprintf(cfg.Out, "%6s", "alpha")
	for _, d := range ds {
		fmt.Fprintf(cfg.Out, " %10s", d.name)
	}
	fmt.Fprintln(cfg.Out)
	// Independence-assuming sweeps: one prepared view per dataset; the
	// monotone α grid rides the kinetic sweep (sort once, then crossings).
	// Correlation-aware sweeps: one PreparedTree per dataset; the grid reuses
	// the cached leaf order and pooled Algorithm 3 state.
	indepSweeps := make([][]pdb.Ranking, len(ds))
	awareSweeps := make([][]pdb.Ranking, len(ds))
	for i, d := range ds {
		indepSweeps[i] = core.Prepare(d.tree.Dataset()).RankPRFeBatch(alphas)
		awareSweeps[i] = andxor.PrepareTree(d.tree).RankPRFeBatch(alphas)
	}
	for a, alpha := range alphas {
		fmt.Fprintf(cfg.Out, "%6.2f", alpha)
		for i := range ds {
			fmt.Fprintf(cfg.Out, " %10.4f", kendall(awareSweeps[i][a], indepSweeps[i][a], k))
		}
		fmt.Fprintln(cfg.Out)
	}

	// Part (ii): PRFe(0.9), PT(100), U-Rank — PT/U-Rank on trees cost
	// O(n²h), so a smaller n keeps the harness responsive.
	n2 := cfg.scaled(2000, 300)
	k2 := 100
	if k2 > n2/4 {
		k2 = n2 / 4
	}
	ds2, err := fig10Datasets(cfg, n2)
	if err != nil {
		return err
	}
	header(cfg.Out, fmt.Sprintf("Figure 10(ii) — per-function correlation sensitivity, n=%d, k=%d", n2, k2))
	fmt.Fprintf(cfg.Out, "%10s %12s %12s %12s\n", "dataset", "PRFe(0.9)", fmt.Sprintf("PT(%d)", k2), "U-Rank")
	for _, d := range ds2 {
		v := core.Prepare(d.tree.Dataset())
		pt := andxor.PrepareTree(d.tree)
		prfeDist := kendall(pt.RankPRFe(0.9), v.RankPRFe(0.9), k2)
		ptDist := kendall(
			pdb.RankByValue(andxor.PTh(d.tree, k2)),
			pdb.RankByValue(v.PTh(k2)), k2)
		urDist := kendall(
			mustRanking(baselines.URankTree(d.tree, k2)),
			mustRanking(baselines.URankPrepared(v, k2)), k2)
		fmt.Fprintf(cfg.Out, "%10s %12.4f %12.4f %12.4f\n", d.name, prfeDist, ptDist, urDist)
	}
	fmt.Fprintln(cfg.Out, "\nPaper: ignoring correlations is nearly harmless on Syn-XOR (x-tuples) but")
	fmt.Fprintln(cfg.Out, "increasingly harmful from Syn-LOW to Syn-HIGH; all curves approach 0 as α→1")
	fmt.Fprintln(cfg.Out, "(PRFe degenerates to ranking by marginal probability).")
	return nil
}
