// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 3.2 Table 1, Section 5.1 Figures 4–5, Section 7
// Figure 6, Section 8 Figures 7–11) plus an empirical check of the Table 3
// complexity summary.
//
// Each experiment is registered by its paper id ("table1", "fig7", …) and
// prints the same rows/series the paper reports. Dataset sizes default to
// the paper's, multiplied by Config.Scale so the full suite can run in CI;
// EXPERIMENTS.md records paper-vs-measured results for both scaled and
// spot-checked paper-scale runs.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/pdb"
	"repro/internal/rankdist"
)

// Config controls an experiment run.
type Config struct {
	// Out receives the experiment's report.
	Out io.Writer
	// Scale multiplies the paper's dataset sizes (1.0 = paper scale).
	Scale float64
	// Seed makes runs reproducible.
	Seed int64
}

// scaled returns max(lo, round(base·Scale)).
func (c Config) scaled(base, lo int) int {
	n := int(float64(base) * c.Scale)
	if n < lo {
		n = lo
	}
	return n
}

// Experiment is a registered table/figure reproduction.
type Experiment struct {
	// ID is the registry key ("table1", "fig4", …).
	ID string
	// Paper describes the artifact being reproduced.
	Paper string
	// Run executes the experiment.
	Run func(cfg Config) error
}

var registry []Experiment

func register(id, paper string, run func(cfg Config) error) {
	registry = append(registry, Experiment{ID: id, Paper: paper, Run: run})
}

// All returns the registered experiments in registration (paper) order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// mustRanking unwraps a (Ranking, error) pair from the consensus
// baselines; every experiment queries well-formed synthetic data, so an
// error here is a bug, not an input condition.
func mustRanking(r pdb.Ranking, err error) pdb.Ranking {
	pdb.MustNoErr(err)
	return r
}

// kendall is shorthand for the normalized Kendall top-k distance.
func kendall(a, b pdb.Ranking, k int) float64 {
	return rankdist.KendallTopK(a.TopK(k), b.TopK(k), k)
}

// timeIt runs f once and returns the wall-clock duration.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// header prints a section header.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// matrix prints a labeled symmetric distance matrix.
func matrix(w io.Writer, labels []string, dist [][]float64) {
	fmt.Fprintf(w, "%-10s", "")
	for _, l := range labels {
		fmt.Fprintf(w, "%10s", l)
	}
	fmt.Fprintln(w)
	for i, l := range labels {
		fmt.Fprintf(w, "%-10s", l)
		for j := range labels {
			if i == j {
				fmt.Fprintf(w, "%10s", "-")
			} else {
				fmt.Fprintf(w, "%10.4f", dist[i][j])
			}
		}
		fmt.Fprintln(w)
	}
}

// sampleIndices draws m distinct indices from [0, n) deterministically.
func sampleIndices(n, m int, seed int64) []int {
	if m > n {
		m = n
	}
	perm := permFromSeed(n, seed)
	idx := perm[:m]
	out := make([]int, m)
	copy(out, idx)
	sort.Ints(out)
	return out
}

// permFromSeed is rand.Perm with a local source (kept tiny to avoid
// importing math/rand everywhere).
func permFromSeed(n int, seed int64) []int {
	// xorshift-based Fisher-Yates; deterministic and dependency-free.
	state := uint64(seed)*2685821657736338717 + 1
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// fmtDur prints a duration in seconds with 3 decimals.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// logGrid returns the α values 1−0.9^i for i = 0, step, 2·step, … count
// points (the Figure 7 x-axis).
func logGrid(count, step int) ([]int, []float64) {
	is := make([]int, count)
	alphas := make([]float64, count)
	for j := 0; j < count; j++ {
		i := j * step
		is[j] = i
		alphas[j] = 1 - math.Pow(0.9, float64(i))
		if alphas[j] == 0 {
			// α=0 exactly zeroes every Υ; use the α→0 limit instead,
			// which ranks by Pr(r(t)=1) (footnote 8 of the paper).
			alphas[j] = 1e-12
		}
	}
	return is, alphas
}
