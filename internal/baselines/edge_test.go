package baselines

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/pdb"
)

// Degenerate datasets must not panic or produce NaNs anywhere in the
// baseline suite (failure-injection tests).

func degenerateDatasets() map[string]*pdb.Dataset {
	return map[string]*pdb.Dataset{
		"single tuple":    pdb.MustDataset([]float64{5}, []float64{0.5}),
		"all certain":     pdb.MustDataset([]float64{3, 2, 1}, []float64{1, 1, 1}),
		"all impossible":  pdb.MustDataset([]float64{3, 2, 1}, []float64{0, 0, 0}),
		"identical score": pdb.MustDataset([]float64{7, 7, 7, 7}, []float64{0.2, 0.4, 0.6, 0.8}),
		"negative scores": pdb.MustDataset([]float64{-1, -5, -3}, []float64{0.5, 0.5, 0.5}),
	}
}

func TestBaselinesOnDegenerateDatasets(t *testing.T) {
	for name, d := range degenerateDatasets() {
		t.Run(name, func(t *testing.T) {
			n := d.Len()
			k := 2
			if k > n {
				k = n
			}
			checkFinite := func(label string, vals []float64) {
				t.Helper()
				for i, v := range vals {
					if math.IsNaN(v) {
						t.Fatalf("%s[%d] is NaN", label, i)
					}
				}
			}
			checkFinite("EScore", EScore(d))
			checkFinite("ByProbability", ByProbability(d))
			checkFinite("ByScore", ByScore(d))
			checkFinite("ERank", ERank(d))
			checkFinite("PTh", PTh(d, k))
			checkFinite("KSelectionPRF", KSelectionPRF(d))
			ur, urErr := URank(d, k)
			_, utP, utErr := UTopK(d, k)
			_, ksV, ksErr := KSelection(d, k)
			if name == "all impossible" {
				// Every top-k baseline reports the degenerate input.
				for label, err := range map[string]error{"URank": urErr, "UTopK": utErr, "KSelection": ksErr} {
					if !errors.Is(err, ErrAllZeroProbabilities) {
						t.Fatalf("%s err = %v, want ErrAllZeroProbabilities", label, err)
					}
				}
			} else {
				if urErr != nil || utErr != nil || ksErr != nil {
					t.Fatalf("unexpected errors: %v %v %v", urErr, utErr, ksErr)
				}
				if len(ur) > k {
					t.Fatalf("URank too long: %v", ur)
				}
				if math.IsNaN(utP) {
					t.Fatal("UTopK probability NaN")
				}
				if math.IsNaN(ksV) {
					t.Fatal("KSelection value NaN")
				}
			}
			tau := ConsensusTopK(d, k)
			if e := ExpectedSymDiff(d, tau); math.IsNaN(e) || e < 0 {
				t.Fatalf("ExpectedSymDiff = %v", e)
			}
		})
	}
}

// All-certain tuples: every semantics must agree with the score order.
func TestAllSemanticsAgreeOnCertainData(t *testing.T) {
	d := pdb.MustDataset([]float64{40, 30, 20, 10}, []float64{1, 1, 1, 1})
	want := pdb.Ranking{0, 1, 2, 3}
	uRank, err := URank(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]pdb.Ranking{
		"E-Score":   pdb.RankByValue(EScore(d)),
		"PT(4)":     pdb.RankByValue(PTh(d, 4)).TopK(4),
		"U-Rank":    uRank,
		"E-Rank":    ERankRanking(ERank(d)),
		"consensus": ConsensusTopK(d, 4),
		"PRFe(0.5)": core.RankPRFe(d, 0.5),
	}
	for name, got := range checks {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s = %v, want %v", name, got, want)
			}
		}
	}
	set, p, err := UTopK(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 || set[0] != 0 || set[1] != 1 {
		t.Fatalf("U-Top on certain data: %v %v", set, p)
	}
}

// Property: U-Top's probability is a true probability and the returned set
// is feasible (all members have p>0).
func TestQuickUTopKSanity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		scores := make([]float64, n)
		probs := make([]float64, n)
		for i := range scores {
			scores[i] = rng.Float64() * 100
			probs[i] = rng.Float64()
		}
		d := pdb.MustDataset(scores, probs)
		k := 1 + rng.Intn(n)
		set, p, err := UTopK(d, k)
		if err != nil {
			// Random probs can starve a size-k answer; only the typed
			// degenerate outcomes are acceptable.
			return errors.Is(err, ErrNoPositiveAnswer) || errors.Is(err, ErrAllZeroProbabilities)
		}
		if p < 0 || p > 1+1e-12 {
			return false
		}
		pm := d.ProbMap()
		for _, id := range set {
			if pm[id] <= 0 {
				return false
			}
		}
		return len(set) <= k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: k-selection value is monotone in k (adding a pick never hurts).
func TestQuickKSelectionMonotoneInK(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		scores := make([]float64, n)
		probs := make([]float64, n)
		for i := range scores {
			scores[i] = rng.Float64() * 100
			probs[i] = rng.Float64()
		}
		d := pdb.MustDataset(scores, probs)
		prev := 0.0
		for k := 1; k <= n; k++ {
			_, v, err := KSelection(d, k)
			if err != nil {
				return false
			}
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: E-Rank values lie in [0, n] and the certain top tuple has the
// best expected rank.
func TestQuickERankBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		scores := make([]float64, n)
		probs := make([]float64, n)
		for i := range scores {
			scores[i] = float64(n - i)
			probs[i] = rng.Float64()
		}
		probs[0] = 1 // certain best-scored tuple: always rank 1
		d := pdb.MustDataset(scores, probs)
		er := ERank(d)
		if math.Abs(er[0]-1) > 1e-9 {
			return false
		}
		for _, v := range er {
			if v < 0 || v > float64(n)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the URank answer's first position maximizes Pr(r(t)=1), which
// equals the U-Top answer for k=1.
func TestQuickURankTopOneConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		scores := make([]float64, n)
		probs := make([]float64, n)
		for i := range scores {
			scores[i] = rng.Float64() * 100
			probs[i] = 0.05 + 0.9*rng.Float64()
		}
		d := pdb.MustDataset(scores, probs)
		ur, urErr := URank(d, 1)
		ut, _, utErr := UTopK(d, 1)
		return urErr == nil && utErr == nil &&
			len(ur) == 1 && len(ut) == 1 && ur[0] == ut[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
