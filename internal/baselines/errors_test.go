package baselines

// Regression tests for the typed-error contract of the consensus top-k
// baselines: degenerate queries (empty dataset, k outside 1..n, all-zero
// probabilities, no positive size-k answer) must surface a sentinel
// matchable with errors.Is instead of silent zero values.

import (
	"errors"
	"testing"

	"repro/internal/andxor"
	"repro/internal/core"
	"repro/internal/pdb"
)

func TestTopKBaselineTypedErrors(t *testing.T) {
	empty := pdb.MustDataset(nil, nil)
	ok := pdb.MustDataset([]float64{10, 5, 1}, []float64{0.9, 0.5, 0.2})
	zeros := pdb.MustDataset([]float64{10, 5, 1}, []float64{0, 0, 0})
	starved := pdb.MustDataset([]float64{10, 5, 1}, []float64{0.5, 0, 0})

	cases := []struct {
		name string
		d    *pdb.Dataset
		k    int
		want error
	}{
		{"empty dataset", empty, 1, ErrEmptyDataset},
		{"k zero", ok, 0, ErrBadK},
		{"k negative", ok, -2, ErrBadK},
		{"k beyond n", ok, 4, ErrBadK},
		{"all-zero probabilities", zeros, 2, ErrAllZeroProbabilities},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if set, err := URank(tc.d, tc.k); !errors.Is(err, tc.want) || set != nil {
				t.Errorf("URank = %v, %v; want %v", set, err, tc.want)
			}
			if set, p, err := UTopK(tc.d, tc.k); !errors.Is(err, tc.want) || set != nil || p != 0 {
				t.Errorf("UTopK = %v, %v, %v; want %v", set, p, err, tc.want)
			}
			if set, v, err := KSelection(tc.d, tc.k); !errors.Is(err, tc.want) || set != nil || v != 0 {
				t.Errorf("KSelection = %v, %v, %v; want %v", set, v, err, tc.want)
			}
		})
	}

	// One positive tuple cannot fill a size-2 U-Top answer: this is the one
	// condition specific to UTopK (URank and KSelection still have answers).
	if _, _, err := UTopK(starved, 2); !errors.Is(err, ErrNoPositiveAnswer) {
		t.Errorf("UTopK starved err = %v, want ErrNoPositiveAnswer", err)
	}
	if set, err := URank(starved, 2); err != nil || len(set) == 0 {
		t.Errorf("URank starved = %v, %v; want an answer", set, err)
	}
	if _, _, err := KSelection(starved, 2); err != nil {
		t.Errorf("KSelection starved err = %v, want nil", err)
	}

	// Prepared-view entry points share the same contract.
	v := core.Prepare(ok)
	if _, err := URankPrepared(v, 99); !errors.Is(err, ErrBadK) {
		t.Errorf("URankPrepared k=99 err = %v, want ErrBadK", err)
	}
	if _, _, err := UTopKPrepared(v, 0); !errors.Is(err, ErrBadK) {
		t.Errorf("UTopKPrepared k=0 err = %v, want ErrBadK", err)
	}
	if _, _, err := KSelectionPrepared(core.Prepare(empty), 1); !errors.Is(err, ErrEmptyDataset) {
		t.Errorf("KSelectionPrepared empty err = %v, want ErrEmptyDataset", err)
	}
}

func TestURankTreeTypedErrors(t *testing.T) {
	tree, err := andxor.XTuples([][]andxor.Alternative{
		{{Score: 10, Prob: 0.6}, {Score: 8, Prob: 0.3}},
		{{Score: 5, Prob: 0.7}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := URankTree(tree, 0); !errors.Is(err, ErrBadK) {
		t.Errorf("URankTree k=0 err = %v, want ErrBadK", err)
	}
	if _, err := URankTree(tree, tree.Len()+1); !errors.Is(err, ErrBadK) {
		t.Errorf("URankTree k>n err = %v, want ErrBadK", err)
	}
	zero, err := andxor.XTuples([][]andxor.Alternative{
		{{Score: 10, Prob: 0}},
		{{Score: 5, Prob: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := URankTree(zero, 1); !errors.Is(err, ErrAllZeroProbabilities) {
		t.Errorf("URankTree all-zero err = %v, want ErrAllZeroProbabilities", err)
	}
	got, err := URankTree(tree, 2)
	if err != nil || len(got) != 2 {
		t.Errorf("URankTree valid = %v, %v", got, err)
	}
}
