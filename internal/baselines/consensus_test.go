package baselines

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/andxor"
	"repro/internal/pdb"
)

// figure1Tree rebuilds the Figure 1 traffic database (see andxor tests).
func figure1Tree(t *testing.T) *andxor.Tree {
	t.Helper()
	tree, err := andxor.New(andxor.NewAnd(
		andxor.NewXor([]float64{0.4}, andxor.NewLeaf(120)),
		andxor.NewXor([]float64{0.7, 0.3}, andxor.NewLeaf(130), andxor.NewLeaf(80)),
		andxor.NewXor([]float64{0.4, 0.6}, andxor.NewLeaf(95), andxor.NewLeaf(110)),
		andxor.NewXor([]float64{1.0}, andxor.NewLeaf(105)),
	))
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// Example 6 (with the paper's arithmetic slip corrected): the consensus
// top-2 of the Figure 1 database under symmetric difference is {t2, t5} and
// its expected distance is 1.736. (The paper's expression lists pw4 with
// distance 4, but pw4 = {t1,t5,t6,t3} has top-2 {t1,t5}, at distance 2 from
// {t2,t5}; the corrected expectation is 2·0.628 + 4·0.120 = 1.736.)
func TestExample6ConsensusTop2(t *testing.T) {
	tree := figure1Tree(t)
	tau := ConsensusTopKTree(tree, 2)
	want := map[pdb.TupleID]bool{1: true, 4: true} // t2, t5
	if len(tau) != 2 || !want[tau[0]] || !want[tau[1]] {
		t.Fatalf("consensus top-2 = %v, want {t2, t5}", tau)
	}
	got := ExpectedSymDiffTree(tree, tau)
	// Cross-check against full enumeration.
	worlds, err := tree.EnumerateWorlds(0)
	if err != nil {
		t.Fatal(err)
	}
	var brute float64
	for _, w := range worlds {
		brute += w.Prob * float64(SymDiffWorld(tau, w, 2))
	}
	if math.Abs(got-brute) > 1e-9 {
		t.Fatalf("closed form %v vs enumeration %v", got, brute)
	}
	if math.Abs(got-1.736) > 1e-9 {
		t.Fatalf("E[disΔ] = %v, want 1.736", got)
	}
}

// Theorem 2: the PT(k) top-k minimizes the expected symmetric difference
// over all k-subsets.
func TestQuickTheorem2ConsensusOptimality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		k := 1 + rng.Intn(n)
		d := randDataset(rng, n)
		tau := ConsensusTopK(d, k)
		best := ExpectedSymDiff(d, tau)
		// Compare against every k-subset by enumeration.
		worlds, err := pdb.EnumerateWorlds(d)
		if err != nil {
			return false
		}
		for mask := 0; mask < 1<<n; mask++ {
			if popcount(mask) != k {
				continue
			}
			var cand pdb.Ranking
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					cand = append(cand, pdb.TupleID(i))
				}
			}
			var e float64
			for _, w := range worlds {
				e += w.Prob * float64(SymDiffWorld(cand, w, k))
			}
			if e < best-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// The closed-form expected symmetric difference must match enumeration for
// arbitrary (not just optimal) answers.
func TestQuickExpectedSymDiffClosedForm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		k := 1 + rng.Intn(n)
		d := randDataset(rng, n)
		perm := rng.Perm(n)
		tau := make(pdb.Ranking, k)
		for i := 0; i < k; i++ {
			tau[i] = pdb.TupleID(perm[i])
		}
		got := ExpectedSymDiff(d, tau)
		worlds, err := pdb.EnumerateWorlds(d)
		if err != nil {
			return false
		}
		var want float64
		for _, w := range worlds {
			want += w.Prob * float64(SymDiffWorld(tau, w, k))
		}
		return math.Abs(got-want) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Theorem 3: the PRFω top-k minimizes the expected weighted symmetric
// difference, and the closed form matches enumeration.
func TestQuickTheorem3WeightedConsensus(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		k := 1 + rng.Intn(n)
		d := randDataset(rng, n)
		w := make([]float64, k)
		for i := range w {
			w[i] = rng.Float64() + 0.01 // positive weights
		}
		tau := ConsensusTopKWeighted(d, k, w)
		got := ExpectedWeightedSymDiff(d, tau, w)
		worlds, err := pdb.EnumerateWorlds(d)
		if err != nil {
			return false
		}
		var want float64
		for _, pw := range worlds {
			want += pw.Prob * WeightedSymDiffWorld(tau, pw, w)
		}
		if math.Abs(got-want) > 1e-9 {
			return false
		}
		// Optimality over all k-subsets.
		for mask := 0; mask < 1<<n; mask++ {
			if popcount(mask) != k {
				continue
			}
			var cand pdb.Ranking
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					cand = append(cand, pdb.TupleID(i))
				}
			}
			var e float64
			for _, pw := range worlds {
				e += pw.Prob * WeightedSymDiffWorld(cand, pw, w)
			}
			if e < got-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Constant weights reduce the weighted form to (one side of) the symmetric
// difference consensus: the optimal answers coincide.
func TestWeightedReducesToPlainConsensus(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := randDataset(rng, 12)
	k := 4
	w := make([]float64, k)
	for i := range w {
		w[i] = 1
	}
	plain := ConsensusTopK(d, k)
	weighted := ConsensusTopKWeighted(d, k, w)
	for i := range plain {
		if plain[i] != weighted[i] {
			t.Fatalf("plain %v vs weighted %v", plain, weighted)
		}
	}
}

func TestExpectedWeightedSymDiffTree(t *testing.T) {
	tree := figure1Tree(t)
	w := []float64{1, 0.5}
	tau := pdb.Ranking{1, 4}
	got := ExpectedWeightedSymDiffTree(tree, tau, w)
	worlds, _ := tree.EnumerateWorlds(0)
	var want float64
	for _, pw := range worlds {
		want += pw.Prob * WeightedSymDiffWorld(tau, pw, w)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("tree weighted consensus: %v vs %v", got, want)
	}
}

func TestURankTreeMatchesEnumeration(t *testing.T) {
	tree := figure1Tree(t)
	got, err := URankTree(tree, 3)
	if err != nil {
		t.Fatal(err)
	}
	worlds, _ := tree.EnumerateWorlds(0)
	rd := pdb.RankDistributionFromWorlds(worlds, tree.Len())
	chosen := make(map[pdb.TupleID]bool)
	for pos := 1; pos <= 3; pos++ {
		bestP := math.Inf(-1)
		for id := 0; id < tree.Len(); id++ {
			if chosen[pdb.TupleID(id)] {
				continue
			}
			if p := rd.At(pdb.TupleID(id), pos); p > bestP {
				bestP = p
			}
		}
		// Figure 1 has an exact tie at position 2 (t5 and t6 both at .324),
		// so accept any maximizer within floating-point tolerance.
		if got := rd.At(got[pos-1], pos); got < bestP-1e-9 {
			t.Fatalf("U-Rank tree position %d: chosen tuple has Pr %v, max is %v", pos, got, bestP)
		}
		chosen[got[pos-1]] = true
	}
}

func TestPThTreeAgainstPTh(t *testing.T) {
	// On an independence-shaped tree the two PT(h) paths must agree.
	rng := rand.New(rand.NewSource(31))
	d := randDataset(rng, 15)
	tree, err := andxor.Independent(d)
	if err != nil {
		t.Fatal(err)
	}
	a := PTh(d, 5)
	b := PThTree(tree, 5)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("PT(5) mismatch at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestERankTreeMatchesIndependentClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	d := randDataset(rng, 12)
	tree, err := andxor.Independent(d)
	if err != nil {
		t.Fatal(err)
	}
	a := ERank(d)
	b := ERankTree(tree)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("E-Rank mismatch at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
