package baselines

import (
	"repro/internal/andxor"
	"repro/internal/core"
	"repro/internal/pdb"
)

// Section 6: consensus top-k answers. The most consensus answer under a
// distance function dis() is the top-k list τ minimizing E[dis(τ, τ_pw)]
// over the random world pw. Theorem 2 shows that under the symmetric
// difference metric the consensus answer is exactly PT(k)'s top-k; Theorem 3
// generalizes to weighted symmetric difference, whose consensus answer is
// the PRFω top-k for the corresponding weights.

// ConsensusTopK returns the consensus top-k answer under the symmetric
// difference metric for independent tuples: the k tuples with the largest
// Pr(r(t) ≤ k) (Theorem 2).
func ConsensusTopK(d *pdb.Dataset, k int) pdb.Ranking {
	return core.TopK(core.PTh(d, k), k)
}

// ConsensusTopKTree is ConsensusTopK on a correlated dataset.
func ConsensusTopKTree(t *andxor.Tree, k int) pdb.Ranking {
	return core.TopK(andxor.PTh(t, k), k)
}

// ExpectedSymDiff computes E[dis_Δ(τ, τ_pw)] exactly from the truncated rank
// distribution, using the closed form in the proof of Theorem 2:
//
//	E = Σ_{t∉τ} Pr(r(t)≤k) + Σ_{t∈τ} (1 − Pr(r(t)≤k))
//
// where k = len(τ) and Pr(r(t)>k) includes the probability that t is absent.
func ExpectedSymDiff(d *pdb.Dataset, tau pdb.Ranking) float64 {
	k := len(tau)
	pt := core.PTh(d, k)
	return expectedSymDiffFromPT(pt, tau)
}

// ExpectedSymDiffTree is ExpectedSymDiff on a correlated dataset.
func ExpectedSymDiffTree(t *andxor.Tree, tau pdb.Ranking) float64 {
	pt := andxor.PTh(t, len(tau))
	return expectedSymDiffFromPT(pt, tau)
}

func expectedSymDiffFromPT(pt []float64, tau pdb.Ranking) float64 {
	inTau := make(map[pdb.TupleID]bool, len(tau))
	for _, id := range tau {
		inTau[id] = true
	}
	var e float64
	for id, p := range pt {
		if inTau[pdb.TupleID(id)] {
			e += 1 - p
		} else {
			e += p
		}
	}
	return e
}

// ExpectedWeightedSymDiff computes E[dis_ω(τ, τ_pw)] for the weighted
// symmetric difference of Definition 5 with weight vector w (w[i] weighs
// rank i+1; ranks beyond len(w) weigh 0):
//
//	E = Σ_{t∉τ} Υω(t)        (proof of Theorem 3)
func ExpectedWeightedSymDiff(d *pdb.Dataset, tau pdb.Ranking, w []float64) float64 {
	vals := core.PRFOmega(d, w)
	return weightedSymDiffFromUpsilon(vals, tau)
}

// ExpectedWeightedSymDiffTree is the correlated-data version.
func ExpectedWeightedSymDiffTree(t *andxor.Tree, tau pdb.Ranking, w []float64) float64 {
	vals := andxor.PRFOmega(t, w)
	return weightedSymDiffFromUpsilon(vals, tau)
}

func weightedSymDiffFromUpsilon(vals []float64, tau pdb.Ranking) float64 {
	inTau := make(map[pdb.TupleID]bool, len(tau))
	for _, id := range tau {
		inTau[id] = true
	}
	var e float64
	for id, v := range vals {
		if !inTau[pdb.TupleID(id)] {
			e += v
		}
	}
	return e
}

// ConsensusTopKWeighted returns the consensus answer under the weighted
// symmetric difference with weights w: the k = len(w)... tuples with the
// largest Υω values (Theorem 3). k is passed separately because w may be
// longer or shorter than the answer size.
func ConsensusTopKWeighted(d *pdb.Dataset, k int, w []float64) pdb.Ranking {
	return core.TopK(core.PRFOmega(d, w), k)
}

// SymDiffWorld computes dis_Δ(τ, topk(pw)) for one concrete world — the
// brute-force distance used to cross-check the closed forms in tests.
func SymDiffWorld(tau pdb.Ranking, w pdb.World, k int) int {
	top := pdb.TopKFromWorld(w, k)
	inTau := make(map[pdb.TupleID]bool, len(tau))
	for _, id := range tau {
		inTau[id] = true
	}
	inTop := make(map[pdb.TupleID]bool, len(top))
	for _, id := range top {
		inTop[id] = true
	}
	d := 0
	for _, id := range tau {
		if !inTop[id] {
			d++
		}
	}
	for _, id := range top {
		if !inTau[id] {
			d++
		}
	}
	return d
}

// WeightedSymDiffWorld computes dis_ω(τ, topk(pw)) for one world: Σ w[i] over
// positions i of the world's top-k whose tuple is missing from τ
// (Definition 5, with τ₂ = the world's answer).
func WeightedSymDiffWorld(tau pdb.Ranking, w pdb.World, weights []float64) float64 {
	top := pdb.TopKFromWorld(w, len(weights))
	inTau := make(map[pdb.TupleID]bool, len(tau))
	for _, id := range tau {
		inTau[id] = true
	}
	var d float64
	for i, id := range top {
		if !inTau[id] {
			d += weights[i]
		}
	}
	return d
}
