// Package baselines implements every prior ranking semantics the paper
// compares against (Section 3.2): expected score (E-Score), ranking by
// probability, probabilistic threshold top-k PT(h), uncertain rank-k
// (U-Rank, in the paper's distinct-tuples variant), uncertain top-k (U-Top),
// expected ranks (E-Rank), k-selection queries, and the consensus top-k
// answers of Section 6.
//
// Independent-tuple versions use the core package's generating-function
// machinery at the complexities the paper quotes; correlated versions run on
// probabilistic and/xor trees through the andxor package. U-Top has no
// polynomial algorithm for correlated data, so the tree version is a
// Monte-Carlo estimator (documented substitution, DESIGN.md §6).
package baselines

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/andxor"
	"repro/internal/core"
	"repro/internal/pdb"
)

// Typed errors for degenerate top-k queries. These used to be silent zero
// values (nil sets, probability 0, quietly clamped k), which made "the
// answer is empty" indistinguishable from "the question was malformed";
// callers now branch on errors.Is.
var (
	// ErrEmptyDataset reports a top-k query against a dataset with no tuples.
	ErrEmptyDataset = errors.New("baselines: empty dataset")
	// ErrBadK reports k outside 1..n. k > n in particular is an error, not
	// a clamp: the caller asked for more tuples than exist.
	ErrBadK = errors.New("baselines: k out of range")
	// ErrAllZeroProbabilities reports a dataset whose every tuple has
	// probability zero — the only possible world is empty, so no top-k
	// semantics has a meaningful answer.
	ErrAllZeroProbabilities = errors.New("baselines: every tuple has probability zero")
	// ErrNoPositiveAnswer reports a U-Top query where no size-k set has
	// positive probability of being exactly the top-k (fewer than k tuples
	// with p > 0).
	ErrNoPositiveAnswer = errors.New("baselines: no size-k answer has positive probability")
)

// checkTopKQuery validates the shared preconditions of the top-k
// baselines: a non-empty dataset, k in 1..n, and at least one tuple with
// positive probability. prob(i) is indexed by view position.
func checkTopKQuery(n, k int, prob func(i int) float64) error {
	if n == 0 {
		return ErrEmptyDataset
	}
	if k < 1 || k > n {
		return fmt.Errorf("%w: k=%d with %d tuples", ErrBadK, k, n)
	}
	for i := 0; i < n; i++ {
		if prob(i) > 0 {
			return nil
		}
	}
	return ErrAllZeroProbabilities
}

// EScore returns Pr(t)·score(t) per tuple — the expected-score ranking
// function. Invariant to correlations (a drawback the paper points out), so
// the same function serves trees via Tree.Dataset().
func EScore(d *pdb.Dataset) []float64 {
	out := make([]float64, d.Len())
	for _, t := range d.Tuples() {
		out[t.ID] = t.Prob * t.Score
	}
	return out
}

// ByProbability returns Pr(t) per tuple (ranking by probabilities, the
// ω(t,i)=1 special case of PRF).
func ByProbability(d *pdb.Dataset) []float64 {
	out := make([]float64, d.Len())
	for _, t := range d.Tuples() {
		out[t.ID] = t.Prob
	}
	return out
}

// ByScore returns score(t) per tuple (the deterministic ranking that ignores
// probabilities entirely; the "Score" series of Figure 7).
func ByScore(d *pdb.Dataset) []float64 {
	out := make([]float64, d.Len())
	for _, t := range d.Tuples() {
		out[t.ID] = t.Score
	}
	return out
}

// PTh returns Pr(r(t) ≤ h) per tuple for independent tuples; the paper's
// PT(h) returns the k tuples with the largest such values. On a prepared
// view, call core.Prepared.PTh directly.
func PTh(d *pdb.Dataset, h int) []float64 { return core.PTh(d, h) }

// PThTree is PT(h) on a correlated dataset.
func PThTree(t *andxor.Tree, h int) []float64 { return andxor.PTh(t, h) }

// URank returns the paper's distinct-tuples U-Rank top-k: position i gets
// the tuple maximizing Pr(r(t)=i) among tuples not already chosen at an
// earlier position. O(nk + n log n) via truncated rank distributions.
// Degenerate queries (empty dataset, k outside 1..n, all-zero
// probabilities) return a typed error; see ErrEmptyDataset, ErrBadK,
// ErrAllZeroProbabilities.
func URank(d *pdb.Dataset, k int) (pdb.Ranking, error) {
	return URankPrepared(core.Prepare(d), k)
}

// URankPrepared is URank on a prepared view (no re-sort, no clone).
func URankPrepared(v *core.Prepared, k int) (pdb.Ranking, error) {
	if err := checkTopKQuery(v.Len(), k, v.Prob); err != nil {
		return nil, err
	}
	rd := v.RankDistributionTrunc(k)
	return uRankFromDistribution(rd, v.Len(), k), nil
}

// URankTree is U-Rank on a correlated dataset, with the same typed-error
// contract as URank (probabilities are the leaves' marginals).
func URankTree(t *andxor.Tree, k int) (pdb.Ranking, error) {
	prob := func(i int) float64 { return t.Leaf(pdb.TupleID(i)).Prob }
	if err := checkTopKQuery(t.Len(), k, prob); err != nil {
		return nil, err
	}
	rd := andxor.RankDistributionTrunc(t, k)
	return uRankFromDistribution(rd, t.Len(), k), nil
}

func uRankFromDistribution(rd *pdb.RankDistribution, n, k int) pdb.Ranking {
	chosen := make([]bool, n)
	out := make(pdb.Ranking, 0, k)
	for pos := 1; pos <= k; pos++ {
		best := pdb.TupleID(-1)
		bestP := math.Inf(-1)
		for id := 0; id < n; id++ {
			if chosen[id] {
				continue
			}
			if p := rd.At(pdb.TupleID(id), pos); p > bestP {
				bestP = p
				best = pdb.TupleID(id)
			}
		}
		if best < 0 {
			break
		}
		chosen[best] = true
		out = append(out, best)
	}
	return out
}

// ERank returns E[r(t)] per tuple for independent tuples in O(n log n),
// using the Section 3.3 decomposition er1 + er2 with
// er1(tᵢ) = pᵢ·(1 + Σ_{l<i} p_l) and er2(t) = (1−p)·(C − p).
// Lower is better; see ERankRanking.
func ERank(d *pdb.Dataset) []float64 {
	return ERankPrepared(core.Prepare(d))
}

// ERankPrepared is ERank on a prepared view (no re-sort, no clone). The
// kernel itself lives on the view (core.Prepared.ERank) so the unified
// Ranker engine can serve E-Rank queries without importing this package.
func ERankPrepared(v *core.Prepared) []float64 { return v.ERank() }

// ERankTree returns E[r(t)] on a correlated dataset (O(n²) via derivative
// evaluation of the tree's generating function).
func ERankTree(t *andxor.Tree) []float64 { return andxor.ExpectedRanks(t) }

// ERankRanking converts expected ranks (lower better) into a best-first
// Ranking by negating the values.
func ERankRanking(expectedRanks []float64) pdb.Ranking {
	neg := make([]float64, len(expectedRanks))
	for i, v := range expectedRanks {
		neg[i] = -v
	}
	return pdb.RankByValue(neg)
}

// UTopK computes the exact uncertain top-k (U-Top) answer for independent
// tuples: the k-set with the largest probability of being exactly the top-k
// of a random world. Returns the set ordered by score and its probability.
//
// The O(n log n) algorithm scans candidates for the lowest-scored member m
// of the answer: the optimal completion takes the k−1 tuples among t₁..t_{m−1}
// maximizing the odds p/(1−p) (tuples with p=1 are forced; tuples with p=0
// never help). A second pass reconstructs the best set.
//
// Degenerate queries return a typed error (ErrEmptyDataset, ErrBadK,
// ErrAllZeroProbabilities); when fewer than k tuples have p > 0 no size-k
// set can be the top-k, and the result is ErrNoPositiveAnswer rather than
// an arbitrary zero-probability set.
func UTopK(d *pdb.Dataset, k int) (pdb.Ranking, float64, error) {
	return UTopKPrepared(core.Prepare(d), k)
}

// UTopKPrepared is UTopK on a prepared view (no re-sort, no clone).
func UTopKPrepared(v *core.Prepared, k int) (pdb.Ranking, float64, error) {
	n := v.Len()
	if err := checkTopKQuery(n, k, v.Prob); err != nil {
		return nil, 0, err
	}
	bestM, bestLog := -1, math.Inf(-1)
	sel := newTopGainSelector(k - 1)
	baseFinite := 0.0 // Σ log(1−p) over prefix tuples with p<1
	ones := 0         // count of p=1 tuples in prefix (forced members)
	for m := 0; m < n; m++ {
		p := v.Prob(m)
		if ones <= k-1 && p > 0 && m >= k-1 {
			// Shrink the finite-gain slots if forced members grew.
			sel.setCapacity(k - 1 - ones)
			if sel.len()+ones == k-1 {
				logProb := math.Log(p) + baseFinite + sel.sum
				// The (1−p) of selected members must not be charged:
				// sel.sum already contains log p − log(1−p) per member.
				if logProb > bestLog {
					bestLog = logProb
					bestM = m
				}
			}
		}
		// Add t to the prefix pool for future m.
		switch {
		case p >= 1:
			ones++
		case p > 0:
			baseFinite += math.Log(1 - p)
			sel.add(math.Log(p) - math.Log(1-p))
		default:
			// p=0 tuples can never appear; they contribute log(1)=0 when
			// excluded and are never worth selecting.
		}
		if ones > k-1 {
			// More than k−1 certain tuples now precede every later
			// candidate, so no later tuple can be the k-th member.
			break
		}
	}
	if bestM < 0 {
		return nil, 0, fmt.Errorf("%w: k=%d", ErrNoPositiveAnswer, k)
	}
	// Reconstruct: forced p=1 tuples plus the top finite gains in
	// t₀..t_{bestM−1}, then t_{bestM} itself.
	type cand struct {
		id   pdb.TupleID
		gain float64
	}
	var cands []cand
	var forced []pdb.TupleID
	for m := 0; m < bestM; m++ {
		p := v.Prob(m)
		switch {
		case p >= 1:
			forced = append(forced, v.ID(m))
		case p > 0:
			cands = append(cands, cand{v.ID(m), math.Log(p) - math.Log(1-p)})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].gain > cands[j].gain })
	members := map[pdb.TupleID]bool{v.ID(bestM): true}
	for _, id := range forced {
		members[id] = true
	}
	for i := 0; i < len(cands) && len(members) < k; i++ {
		members[cands[i].id] = true
	}
	out := make(pdb.Ranking, 0, k)
	for m := 0; m < n; m++ {
		if members[v.ID(m)] {
			out = append(out, v.ID(m))
		}
	}
	return out, math.Exp(bestLog), nil
}

// topGainSelector maintains the largest `cap` gains seen so far and their
// sum, with capacity shrinking allowed (never growing).
type topGainSelector struct {
	capacity int
	h        minHeap
	sum      float64
}

func newTopGainSelector(capacity int) *topGainSelector {
	return &topGainSelector{capacity: capacity}
}

func (s *topGainSelector) len() int { return len(s.h) }

func (s *topGainSelector) setCapacity(c int) {
	if c < 0 {
		c = 0
	}
	s.capacity = c
	for len(s.h) > c {
		s.sum -= heap.Pop(&s.h).(float64)
	}
}

func (s *topGainSelector) add(g float64) {
	if s.capacity == 0 {
		return
	}
	if len(s.h) < s.capacity {
		heap.Push(&s.h, g)
		s.sum += g
		return
	}
	if g > s.h[0] {
		s.sum += g - s.h[0]
		s.h[0] = g
		heap.Fix(&s.h, 0)
	}
}

type minHeap []float64

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// WorldSampler produces random possible worlds; both *pdb.Dataset (via
// SampleWorld) and *andxor.Tree satisfy it through small adapters.
type WorldSampler interface {
	SampleWorld(rng *rand.Rand) pdb.World
}

// DatasetSampler adapts an independent dataset to WorldSampler.
type DatasetSampler struct{ D *pdb.Dataset }

// SampleWorld implements WorldSampler.
func (s DatasetSampler) SampleWorld(rng *rand.Rand) pdb.World { return pdb.SampleWorld(s.D, rng) }

// TreeSampler adapts an and/xor tree to WorldSampler.
type TreeSampler struct{ T *andxor.Tree }

// SampleWorld implements WorldSampler.
func (s TreeSampler) SampleWorld(rng *rand.Rand) pdb.World { return s.T.Sample(rng) }

// UTopKMonteCarlo estimates the U-Top answer by sampling worlds and
// returning the modal top-k set (scored order). Used for correlated data,
// where no polynomial exact algorithm is known.
func UTopKMonteCarlo(s WorldSampler, k, samples int, rng *rand.Rand) pdb.Ranking {
	counts := make(map[string]int)
	repr := make(map[string]pdb.Ranking)
	var keyBuf []byte
	for i := 0; i < samples; i++ {
		w := s.SampleWorld(rng)
		top := pdb.TopKFromWorld(w, k)
		keyBuf = keyBuf[:0]
		for _, id := range top {
			keyBuf = append(keyBuf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		}
		key := string(keyBuf)
		counts[key]++
		if _, ok := repr[key]; !ok {
			cp := make(pdb.Ranking, len(top))
			copy(cp, top)
			repr[key] = cp
		}
	}
	bestKey, bestCount := "", -1
	for key, c := range counts {
		if c > bestCount || (c == bestCount && key < bestKey) {
			bestKey, bestCount = key, c
		}
	}
	return repr[bestKey]
}

// KSelection solves the k-selection query exactly for independent tuples
// with non-negative scores: the set S of k tuples maximizing the expected
// score of the best present tuple of S, via the O(nk) dynamic program
//
//	g(i,j) = max( g(i+1,j), pᵢ·sᵢ + (1−pᵢ)·g(i+1,j−1) )
//
// over the score-sorted order. Returns the chosen set (score order) and its
// expected best score. Degenerate queries return a typed error
// (ErrEmptyDataset, ErrBadK, ErrAllZeroProbabilities).
func KSelection(d *pdb.Dataset, k int) (pdb.Ranking, float64, error) {
	return KSelectionPrepared(core.Prepare(d), k)
}

// KSelectionPrepared is KSelection on a prepared view (no re-sort, no
// clone). The DP table is one flat allocation sliced into rows.
func KSelectionPrepared(v *core.Prepared, k int) (pdb.Ranking, float64, error) {
	n := v.Len()
	if err := checkTopKQuery(n, k, v.Prob); err != nil {
		return nil, 0, err
	}
	// g[i][j]: best value using tuples i..n−1 with j picks left.
	g := make([][]float64, n+1)
	flat := make([]float64, (n+1)*(k+1))
	for i := range g {
		g[i] = flat[i*(k+1) : (i+1)*(k+1) : (i+1)*(k+1)]
	}
	for i := n - 1; i >= 0; i-- {
		p, s := v.Prob(i), v.Score(i)
		for j := 1; j <= k; j++ {
			skip := g[i+1][j]
			take := p*s + (1-p)*g[i+1][j-1]
			if take > skip {
				g[i][j] = take
			} else {
				g[i][j] = skip
			}
		}
	}
	out := make(pdb.Ranking, 0, k)
	j := k
	for i := 0; i < n && j > 0; i++ {
		p, s := v.Prob(i), v.Score(i)
		take := p*s + (1-p)*g[i+1][j-1]
		if take >= g[i+1][j] {
			out = append(out, v.ID(i))
			j--
		}
	}
	return out, g[0][k], nil
}

// KSelectionPRF returns the PRF special case ω(t,i) = δ(i=1)·score(t), i.e.
// score(t)·Pr(r(t)=1) per tuple — the paper's PRF view of k-selection.
func KSelectionPRF(d *pdb.Dataset) []float64 {
	return core.PRF(d, func(t pdb.Tuple, rank int) float64 {
		if rank == 1 {
			return t.Score
		}
		return 0
	})
}
