package baselines

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/andxor"
	"repro/internal/pdb"
)

func randDataset(rng *rand.Rand, n int) *pdb.Dataset {
	scores := make([]float64, n)
	probs := make([]float64, n)
	for i := 0; i < n; i++ {
		scores[i] = rng.Float64() * 100
		probs[i] = rng.Float64()
	}
	return pdb.MustDataset(scores, probs)
}

func TestEScoreAndByProbability(t *testing.T) {
	d := pdb.MustDataset([]float64{10, 20}, []float64{0.5, 0.25})
	es := EScore(d)
	if es[0] != 5 || es[1] != 5 {
		t.Fatalf("EScore = %v", es)
	}
	bp := ByProbability(d)
	if bp[0] != 0.5 || bp[1] != 0.25 {
		t.Fatalf("ByProbability = %v", bp)
	}
	bs := ByScore(d)
	if bs[0] != 10 || bs[1] != 20 {
		t.Fatalf("ByScore = %v", bs)
	}
}

// E-Rank closed form vs enumeration (absent tuples take rank |pw|).
func TestQuickERankMatchesEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(9)
		d := randDataset(rng, n)
		got := ERank(d)
		worlds, err := pdb.EnumerateWorlds(d)
		if err != nil {
			return false
		}
		want := make([]float64, n)
		for _, w := range worlds {
			for id := 0; id < n; id++ {
				r := w.Rank(pdb.TupleID(id))
				if r == 0 {
					r = len(w.Present)
				}
				want[id] += w.Prob * float64(r)
			}
		}
		for id := range want {
			if math.Abs(got[id]-want[id]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// The Section 3.2 E-Rank anomaly: a highly probable but lower-scored tuple
// is ranked above a slightly less probable high-scored tuple, because the
// (1−p)·C penalty for possibly being absent dominates when the expected
// world size C is large. The paper's instance uses n=100,000 (t2 vs t1000);
// this is the same effect at n=5,000 (t2 vs t40).
func TestERankAnomalyFavorsProbableTuple(t *testing.T) {
	n := 5000
	scores := make([]float64, n)
	probs := make([]float64, n)
	for i := 0; i < n; i++ {
		scores[i] = float64(n - i)
		probs[i] = 0.5
	}
	probs[1] = 0.98  // 2nd highest score, prob .98
	probs[39] = 0.99 // 40th highest score, prob .99
	d := pdb.MustDataset(scores, probs)
	er := ERank(d)
	ranking := ERankRanking(er)
	if ranking.Position(39) > ranking.Position(1) {
		t.Fatalf("E-Rank should (anomalously) place t40 above t2: positions %d vs %d",
			ranking.Position(39), ranking.Position(1))
	}
}

func TestERankRankingOrder(t *testing.T) {
	er := []float64{5, 1, 3}
	r := ERankRanking(er)
	want := pdb.Ranking{1, 2, 0}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranking %v, want %v", r, want)
		}
	}
}

// U-Rank greedy distinct-tuples answer vs direct recomputation from the
// enumerated rank distribution.
func TestQuickURankMatchesEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		k := 1 + rng.Intn(n)
		d := randDataset(rng, n)
		got, err := URank(d, k)
		if err != nil {
			return false
		}
		worlds, err := pdb.EnumerateWorlds(d)
		if err != nil {
			return false
		}
		rd := pdb.RankDistributionFromWorlds(worlds, n)
		chosen := make(map[pdb.TupleID]bool)
		for pos := 1; pos <= k; pos++ {
			best, bestP := pdb.TupleID(-1), math.Inf(-1)
			for id := 0; id < n; id++ {
				if chosen[pdb.TupleID(id)] {
					continue
				}
				if p := rd.At(pdb.TupleID(id), pos); p > bestP {
					bestP, best = p, pdb.TupleID(id)
				}
			}
			chosen[best] = true
			if got[pos-1] != best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// bruteUTop computes argmax_S Pr(top-k(pw) = S) by enumeration.
func bruteUTop(t *testing.T, d *pdb.Dataset, k int) (map[pdb.TupleID]bool, float64) {
	t.Helper()
	worlds, err := pdb.EnumerateWorlds(d)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]float64)
	sets := make(map[string][]pdb.TupleID)
	for _, w := range worlds {
		top := pdb.TopKFromWorld(w, k)
		if len(top) < k {
			continue // only size-k answers compete
		}
		key := ""
		for _, id := range top {
			key += string(rune(id)) + ","
		}
		counts[key] += w.Prob
		sets[key] = top
	}
	bestKey, bestP := "", -1.0
	for key, p := range counts {
		if p > bestP {
			bestKey, bestP = key, p
		}
	}
	out := make(map[pdb.TupleID]bool)
	for _, id := range sets[bestKey] {
		out[id] = true
	}
	return out, bestP
}

func TestQuickUTopKMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		k := 1 + rng.Intn(n)
		d := randDataset(rng, n)
		// Sprinkle in p=1 and p=0 edge tuples.
		ts := make([]pdb.Tuple, n)
		copy(ts, d.Tuples())
		if rng.Intn(2) == 0 {
			ts[rng.Intn(n)].Prob = 1
		}
		if rng.Intn(2) == 0 {
			ts[rng.Intn(n)].Prob = 0
		}
		d2, _ := pdb.FromTuples(ts)
		gotSet, gotP, utErr := UTopK(d2, k)
		if utErr != nil {
			// Typed degenerate outcome: fewer than k tuples can ever appear,
			// so no size-k answer has positive probability.
			if !errors.Is(utErr, ErrNoPositiveAnswer) && !errors.Is(utErr, ErrAllZeroProbabilities) {
				return false
			}
			_, bruteP := bruteUTopQuiet(d2, k)
			return bruteP == 0
		}
		worlds, err := pdb.EnumerateWorlds(d2)
		if err != nil {
			return false
		}
		// Probability that the returned set is exactly the top-k.
		var checkP float64
		for _, w := range worlds {
			top := pdb.TopKFromWorld(w, k)
			if len(top) != len(gotSet) {
				continue
			}
			same := true
			for i := range top {
				if top[i] != gotSet[i] {
					same = false
					break
				}
			}
			if same {
				checkP += w.Prob
			}
		}
		if math.Abs(checkP-gotP) > 1e-9 {
			return false
		}
		// And it must be the maximum over all size-k answers.
		_, bruteP := bruteUTopQuiet(d2, k)
		return gotP >= bruteP-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func bruteUTopQuiet(d *pdb.Dataset, k int) (map[pdb.TupleID]bool, float64) {
	worlds, _ := pdb.EnumerateWorlds(d)
	counts := make(map[string]float64)
	for _, w := range worlds {
		top := pdb.TopKFromWorld(w, k)
		if len(top) < k {
			continue
		}
		key := ""
		for _, id := range top {
			key += string(rune('A'+id)) + ","
		}
		counts[key] += w.Prob
	}
	bestP := 0.0
	for _, p := range counts {
		if p > bestP {
			bestP = p
		}
	}
	return nil, bestP
}

func TestUTopKSimple(t *testing.T) {
	// Two tuples, k=1: {t0} wins with p=.9 vs {t1} with .1·.8.
	d := pdb.MustDataset([]float64{10, 5}, []float64{0.9, 0.8})
	set, p, err := UTopK(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || set[0] != 0 {
		t.Fatalf("UTop = %v", set)
	}
	if math.Abs(p-0.9) > 1e-12 {
		t.Fatalf("p = %v, want 0.9", p)
	}
}

func TestUTopKWithCertainTuples(t *testing.T) {
	// A certain tuple below k certain tuples forces itself into any answer.
	d := pdb.MustDataset([]float64{10, 8, 6}, []float64{0.5, 1, 0.5})
	set, p, err := UTopK(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range set {
		if id == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("answer %v must contain the certain tuple", set)
	}
	if p <= 0 {
		t.Fatalf("p = %v", p)
	}
}

func TestUTopKDegenerate(t *testing.T) {
	// Fewer positive tuples than k: typed error instead of a silent
	// zero-probability fallback set.
	d := pdb.MustDataset([]float64{10, 5}, []float64{0.5, 0})
	if set, p, err := UTopK(d, 2); !errors.Is(err, ErrNoPositiveAnswer) || set != nil || p != 0 {
		t.Fatalf("UTop = %v, %v, %v; want ErrNoPositiveAnswer", set, p, err)
	}
	if _, _, err := UTopK(pdb.MustDataset(nil, nil), 3); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("empty dataset err = %v, want ErrEmptyDataset", err)
	}
}

func TestUTopKMonteCarloAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	d := pdb.MustDataset(
		[]float64{100, 90, 80, 70, 60},
		[]float64{0.9, 0.85, 0.2, 0.9, 0.3},
	)
	exact, _, err := UTopK(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	mc := UTopKMonteCarlo(DatasetSampler{D: d}, 2, 20000, rng)
	if len(mc) != len(exact) {
		t.Fatalf("MC answer %v vs exact %v", mc, exact)
	}
	for i := range mc {
		if mc[i] != exact[i] {
			t.Fatalf("MC answer %v vs exact %v", mc, exact)
		}
	}
}

func TestUTopKMonteCarloOnTree(t *testing.T) {
	tree, err := andxor.XTuples([][]andxor.Alternative{
		{{Score: 10, Prob: 0.95}},
		{{Score: 9, Prob: 0.9}, {Score: 1, Prob: 0.1}},
		{{Score: 2, Prob: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	top := UTopKMonteCarlo(TreeSampler{T: tree}, 2, 20000, rng)
	// Most likely world starts {10, 9}: IDs 0 and 1.
	if len(top) != 2 || top[0] != 0 || top[1] != 1 {
		t.Fatalf("tree MC UTop = %v", top)
	}
}

// k-selection DP vs brute force over all k-subsets.
func TestQuickKSelectionMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		k := 1 + rng.Intn(n)
		d := randDataset(rng, n)
		_, gotVal, ksErr := KSelection(d, k)
		if ksErr != nil {
			return false
		}
		bestVal := 0.0
		ts := make([]pdb.Tuple, n)
		copy(ts, d.Tuples())
		// Enumerate subsets of size k.
		for mask := 0; mask < 1<<n; mask++ {
			if popcount(mask) != k {
				continue
			}
			if v := expectedBest(ts, mask); v > bestVal {
				bestVal = v
			}
		}
		return math.Abs(gotVal-bestVal) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		c += x & 1
		x >>= 1
	}
	return c
}

// expectedBest computes E[max score among present set members] directly.
func expectedBest(ts []pdb.Tuple, mask int) float64 {
	var members []pdb.Tuple
	for i, t := range ts {
		if mask&(1<<i) != 0 {
			members = append(members, t)
		}
	}
	// Sort members by score descending.
	for i := range members {
		for j := i + 1; j < len(members); j++ {
			if members[j].Score > members[i].Score {
				members[i], members[j] = members[j], members[i]
			}
		}
	}
	v, pNone := 0.0, 1.0
	for _, m := range members {
		v += pNone * m.Prob * m.Score
		pNone *= 1 - m.Prob
	}
	return v
}

func TestKSelectionReturnsRequestedSize(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	d := randDataset(rng, 10)
	set, val, err := KSelection(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 4 {
		t.Fatalf("set size %d", len(set))
	}
	if val < 0 {
		t.Fatalf("negative value %v", val)
	}
	// k beyond n is a typed error now, not a silent clamp.
	if _, _, err := KSelection(d, 99); !errors.Is(err, ErrBadK) {
		t.Fatalf("k=99 err = %v, want ErrBadK", err)
	}
	if _, _, err := KSelection(pdb.MustDataset(nil, nil), 2); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("empty dataset err = %v, want ErrEmptyDataset", err)
	}
}

func TestKSelectionPRFSpecialCase(t *testing.T) {
	d := pdb.MustDataset([]float64{10, 5}, []float64{0.5, 0.8})
	vals := KSelectionPRF(d)
	// score·Pr(r=1): t0: 10·0.5 = 5; t1: 5·(0.5·0.8)=2.
	if math.Abs(vals[0]-5) > 1e-12 || math.Abs(vals[1]-2) > 1e-12 {
		t.Fatalf("KSelectionPRF = %v", vals)
	}
}
