package junction

import (
	"context"
	"sort"
	"sync"

	"repro/internal/exact"
	"repro/internal/par"
	"repro/internal/pdb"
)

// PreparedNetwork is the arbitrary-correlations analogue of core.Prepared:
// it pays the junction-tree construction (min-fill triangulation, spanning
// tree, two-pass calibration) and the DP indexing exactly once, caches the
// rank-distribution matrix the first time any ranking function needs it, and
// pools the partial-sum DP buffers so repeated queries stop reallocating
// per-clique state. PRFe over an α grid then costs one DP pass plus one
// cheap fold per grid point, instead of one tree build plus one full DP pass
// per point.
//
// A PreparedNetwork is safe for concurrent use: the calibrated tree and the
// cached matrix are immutable once built, and every DP query checks a
// private evaluation state out of an internal pool.
type PreparedNetwork struct {
	jt   *JTree
	marg []float64 // cached Pr(X_v = 1)
	pool sync.Pool // *dpEval

	rdOnce sync.Once
	rd     *pdb.RankDistribution
}

// PrepareNetwork builds and calibrates the junction tree of a Markov network
// and returns the prepared view. The network is never mutated; the one-shot
// package functions (RankDistribution, PRF, PRFe) are thin prepare-then-call
// wrappers over the same methods.
func PrepareNetwork(net *Network) (*PreparedNetwork, error) {
	jt, err := BuildJunctionTree(net)
	if err != nil {
		return nil, err
	}
	return PrepareJunctionTree(jt), nil
}

// PrepareJunctionTree wraps an already-built junction tree as a prepared
// view (for callers that inspect the tree as well as query it).
func PrepareJunctionTree(jt *JTree) *PreparedNetwork {
	pn := &PreparedNetwork{jt: jt, marg: make([]float64, jt.net.n)}
	for v := range pn.marg {
		pn.marg[v] = jt.VariableMarginal(v)
	}
	return pn
}

// Len returns the number of variables (tuples).
func (pn *PreparedNetwork) Len() int { return pn.jt.net.n }

// Network returns the underlying Markov network.
func (pn *PreparedNetwork) Network() *Network { return pn.jt.net }

// JTree returns the calibrated junction tree.
func (pn *PreparedNetwork) JTree() *JTree { return pn.jt }

// Marginal returns the cached presence marginal Pr(X_v = 1).
func (pn *PreparedNetwork) Marginal(v int) float64 { return pn.marg[v] }

func (pn *PreparedNetwork) getEval() *dpEval {
	if e, ok := pn.pool.Get().(*dpEval); ok {
		e.reset()
		return e
	}
	return pn.jt.newDPEval()
}

func (pn *PreparedNetwork) putEval(e *dpEval) { pn.pool.Put(e) }

// RankDistribution returns the positional-probability matrix, computing it
// with the Section 9.4 DP on first use and serving the cached matrix (which
// is immutable) afterwards.
func (pn *PreparedNetwork) RankDistribution() *pdb.RankDistribution {
	pn.rdOnce.Do(func() {
		e := pn.getEval()
		pn.rd = e.rankDistribution()
		pn.putEval(e)
	})
	return pn.rd
}

// PRF computes Υω for every tuple: the cached rank-distribution matrix
// folded with the weight function. Results are identical to the one-shot
// PRF.
func (pn *PreparedNetwork) PRF(omega func(tu pdb.Tuple, rank int) float64) []float64 {
	net := pn.jt.net
	rd := pn.RankDistribution()
	out := make([]float64, net.n)
	for v := 0; v < net.n; v++ {
		tu := pdb.Tuple{ID: pdb.TupleID(v), Score: net.scores[v], Prob: pn.marg[v]}
		for j, p := range rd.Dist[v] {
			if p != 0 {
				out[v] += omega(tu, j+1) * p
			}
		}
	}
	return out
}

// PRFe computes Υ_α for every tuple by folding the cached rank distribution
// with powers of α. After the first ranking query the marginal cost of a new
// α is one O(n²) fold. Results are identical to the one-shot PRFe.
func (pn *PreparedNetwork) PRFe(alpha complex128) []complex128 {
	rd := pn.RankDistribution()
	out := make([]complex128, pn.Len())
	for v := range out {
		out[v] = prfeFold(rd.Dist[v], alpha)
	}
	return out
}

// PRFeBatch evaluates PRFe for every α of a grid: the DP runs once and the
// per-α folds fan out across GOMAXPROCS goroutines. out[a] equals
// PRFe(alphas[a]) bit-for-bit.
func (pn *PreparedNetwork) PRFeBatch(alphas []complex128) [][]complex128 {
	//lint:allow ctxflow ctx-free compatibility API; the engine's query path uses prfeBatchCtx with the caller's ctx
	out, err := pn.prfeBatchCtx(context.Background(), alphas)
	pdb.MustNoErr(err)
	return out
}

// prfeBatchCtx is PRFeBatch with cooperative cancellation between grid
// points — the single fold-loop body shared with the engine's
// QueryPRFeBatch arm.
func (pn *PreparedNetwork) prfeBatchCtx(ctx context.Context, alphas []complex128) ([][]complex128, error) {
	rd := pn.RankDistribution()
	out := make([][]complex128, len(alphas))
	err := par.ForWorkersCtx(ctx, par.WorkersFor(ctx, len(alphas)), len(alphas), func(_, a int) {
		row := make([]complex128, pn.Len())
		for v := range row {
			row[v] = prfeFold(rd.Dist[v], alphas[a])
		}
		out[a] = row
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RankPRFe returns the PRFe(α) ranking of the network's tuples for real α,
// ranking by |Υ|.
func (pn *PreparedNetwork) RankPRFe(alpha float64) pdb.Ranking {
	return pdb.RankByAbs(pn.PRFe(complex(alpha, 0)))
}

// ERank returns E[r(t)] per tuple over the cached matrix and marginals,
// with the er2 DP passes running on a pooled evaluation state. Results are
// identical to JTree.ExpectedRanks.
func (pn *PreparedNetwork) ERank() []float64 {
	rd := pn.RankDistribution()
	e := pn.getEval()
	out := e.expectedRanks(rd, pn.marg)
	pn.putEval(e)
	return out
}

// ExpectedRank returns the consensus expected rank (the Li/Deshpande
// convention: absent tuples take rank |pw|+1): ERank plus the absence mass
// 1 − marginal, the exact gap between the two conventions on every world.
func (pn *PreparedNetwork) ExpectedRank() []float64 {
	out := pn.ERank()
	for v := range out {
		out[v] += 1 - pn.marg[v]
	}
	return out
}

// MedianRank returns the consensus median rank per tuple — the smallest j
// with Pr(r(t) ≤ j) ≥ 1/2, sentinel n+1 when the tuple is absent from a
// majority of worlds — folded from the cached rank-distribution matrix.
func (pn *PreparedNetwork) MedianRank() []float64 {
	return pdb.MedianRankFromDistribution(pn.RankDistribution(), pn.Len())
}

// ---------------------------------------------------------------------------
// Prepared Markov chains: the Section 9.3 special case, where PRFe admits a
// far better batch algorithm than the partial-sum DP.
// ---------------------------------------------------------------------------

// PreparedChain serves repeated PRFe queries on a Markov chain. Preparing
// caches the score order, the per-position marginals and the conditional
// transition tables; each PRFe evaluation then runs the product-tree
// algorithm below instead of the Θ(n³) rank-distribution DP.
//
// The algorithm: for fixed α, Υ_α(t) = α·E[X_t·α^{S_t}] with S_t the number
// of higher-ranked present tuples, and the expectation factorizes along the
// chain into a product of 2×2 transfer matrices — position 0 carries a
// marginal row, position j > 0 carries T[a][b] = Pr(Y_j=b|Y_{j−1}=a)·w_j(b),
// where the weight w marks higher-ranked variables with α, the target with
// the X_t = 1 evidence, and everything else with 1. A segment tree over the
// matrices shares all prefix/suffix sub-products across the n queries:
// walking the tuples in rank order, each step relabels one leaf (evidence
// in, evidence out, mark the tuple that just joined the higher-ranked set)
// and re-reads the root product, so every Υ_α(t) costs O(log n) matrix
// multiplications and the whole batch is one O(n log n) bottom-up pass —
// versus Θ(n²) per tuple for the DP.
//
// A PreparedChain is safe for concurrent use: queries check private
// product-tree states out of an internal pool, and the batch methods fan α
// values across GOMAXPROCS goroutines.
type PreparedChain struct {
	c     *Chain
	order []int           // variables by non-increasing score, ties by index
	m     [][2]float64    // m[j][y] = Pr(Y_j = y)
	cond  [][2][2]float64 // cond[j][a][b] = Pr(Y_{j+1}=b | Y_j=a); zero rows for zero marginals
	pool  sync.Pool       // *chainEval

	rdOnce sync.Once // guards rd: the Θ(n³) chain DP runs at most once
	rd     *pdb.RankDistribution

	erMu sync.Mutex // guards er: n more partial-sum DPs, also run at most once
	er   []float64
}

// RankDistribution returns the chain's positional-probability matrix,
// computing it with the Section 9.3 partial-sum DP (Θ(n³)) on first use and
// serving the cached immutable matrix afterwards. The ω-based ranking
// functions (PRF, PRFω(h), PT(h), E-Rank) fold this matrix; PRFe does not
// need it — the product-tree algorithm stays O(n log n) per α.
func (pc *PreparedChain) RankDistribution() *pdb.RankDistribution {
	pc.rdOnce.Do(func() { pc.rd = pc.c.RankDistribution() })
	return pc.rd
}

// PrepareChain builds the prepared view of a chain. The chain is never
// mutated; the one-shot PRFeChain is a thin prepare-then-call wrapper.
func PrepareChain(c *Chain) *PreparedChain {
	n := c.Len()
	pc := &PreparedChain{
		c:    c,
		m:    make([][2]float64, n),
		cond: make([][2][2]float64, n-1),
	}
	for j := 0; j < n-1; j++ {
		pc.m[j] = [2]float64{c.pair[j][0][0] + c.pair[j][0][1], c.pair[j][1][0] + c.pair[j][1][1]}
	}
	pc.m[n-1] = [2]float64{c.pair[n-2][0][0] + c.pair[n-2][1][0], c.pair[n-2][0][1] + c.pair[n-2][1][1]}
	for j := range pc.cond {
		for a := 0; a < 2; a++ {
			if pc.m[j][a] > 0 {
				for b := 0; b < 2; b++ {
					pc.cond[j][a][b] = c.pair[j][a][b] / pc.m[j][a]
				}
			}
		}
	}
	pc.order = make([]int, n)
	for i := range pc.order {
		pc.order[i] = i
	}
	// (score desc, index asc) is a strict total order, so this yields the
	// exact permutation Chain.RankDistribution's order uses.
	scores := c.scores
	sort.SliceStable(pc.order, func(a, b int) bool {
		if !exact.Same(scores[pc.order[a]], scores[pc.order[b]]) {
			return scores[pc.order[a]] > scores[pc.order[b]]
		}
		return pc.order[a] < pc.order[b]
	})
	return pc
}

// Len returns the number of variables.
func (pc *PreparedChain) Len() int { return pc.c.Len() }

// Chain returns the underlying chain.
func (pc *PreparedChain) Chain() *Chain { return pc.c }

// mat2 is a 2×2 complex matrix in row-major order: m[a*2+b] = entry (a, b).
type mat2 [4]complex128

func mulMat2(l, r mat2) mat2 {
	return mat2{
		l[0]*r[0] + l[1]*r[2], l[0]*r[1] + l[1]*r[3],
		l[2]*r[0] + l[3]*r[2], l[2]*r[1] + l[3]*r[3],
	}
}

// chainEval is one product-tree state: a 1-indexed segment tree whose leaves
// hold the per-position transfer matrices and whose internal nodes hold the
// products of their children — the shared prefix/suffix messages.
type chainEval struct {
	sz   int // leaf offset: smallest power of two ≥ n
	tree []mat2
}

func newChainEval(n int) *chainEval {
	sz := 1
	for sz < n {
		sz <<= 1
	}
	return &chainEval{sz: sz, tree: make([]mat2, 2*sz)}
}

// setLeaf replaces leaf j's matrix and refreshes the O(log n) ancestor
// products.
func (e *chainEval) setLeaf(j int, m mat2) {
	i := e.sz + j
	e.tree[i] = m
	for i >>= 1; i >= 1; i >>= 1 {
		e.tree[i] = mulMat2(e.tree[2*i], e.tree[2*i+1])
	}
}

// rebuild recomputes every internal product after the leaves were written
// directly.
func (e *chainEval) rebuild() {
	for i := e.sz - 1; i >= 1; i-- {
		e.tree[i] = mulMat2(e.tree[2*i], e.tree[2*i+1])
	}
}

// root returns the full-chain product T_0·T_1⋯T_{n−1}.
func (e *chainEval) root() mat2 { return e.tree[1] }

// baseMat returns position j's unmarked transfer matrix: the marginal row
// for position 0, the conditional table afterwards.
func (pc *PreparedChain) baseMat(j int) mat2 {
	if j == 0 {
		return mat2{complex(pc.m[0][0], 0), complex(pc.m[0][1], 0), 0, 0}
	}
	t := &pc.cond[j-1]
	return mat2{
		complex(t[0][0], 0), complex(t[0][1], 0),
		complex(t[1][0], 0), complex(t[1][1], 0),
	}
}

func (pc *PreparedChain) getEval() *chainEval {
	//lint:allow poolhygiene prfeInto rewrites every leaf (real and padding) and rebuilds all internal products before any read, so a recycled tree carries no observable state
	if e, ok := pc.pool.Get().(*chainEval); ok {
		return e
	}
	return newChainEval(pc.Len())
}

func (pc *PreparedChain) putEval(e *chainEval) { pc.pool.Put(e) }

// prfeInto evaluates Υ_α for every variable into out, walking the tuples in
// rank order over one product tree.
func (pc *PreparedChain) prfeInto(e *chainEval, alpha complex128, out []complex128) {
	n := pc.Len()
	identity := mat2{1, 0, 0, 1}
	for j := 0; j < n; j++ {
		e.tree[e.sz+j] = pc.baseMat(j)
	}
	for j := n; j < e.sz; j++ {
		e.tree[e.sz+j] = identity
	}
	e.rebuild()
	for _, v := range pc.order {
		// Evidence X_v = 1: zero column 0 of v's (currently unmarked) matrix.
		b := pc.baseMat(v)
		e.setLeaf(v, mat2{0, b[1], 0, b[3]})
		r := e.root()
		out[v] = alpha * (r[0] + r[1]) // Σ_y (T_0⋯T_{n−1})[0][y]
		// v now joins the higher-ranked set of everything after it: scale
		// column 1 (the Y_v = 1 states) by α.
		e.setLeaf(v, mat2{b[0], alpha * b[1], b[2], alpha * b[3]})
	}
}

// PRFe evaluates Υ_α for every tuple with the product-tree algorithm:
// O(n log n) for the whole tuple set at one α. See PRFeChainDP for the
// Θ(n³) rank-distribution reference it is certified against.
func (pc *PreparedChain) PRFe(alpha complex128) []complex128 {
	out := make([]complex128, pc.Len())
	e := pc.getEval()
	pc.prfeInto(e, alpha, out)
	pc.putEval(e)
	return out
}

// PRFeBatch evaluates PRFe for every α of a grid, fanning the grid across
// GOMAXPROCS goroutines with one pooled product tree per worker. out[a]
// equals PRFe(alphas[a]) bit-for-bit.
func (pc *PreparedChain) PRFeBatch(alphas []complex128) [][]complex128 {
	//lint:allow ctxflow ctx-free compatibility API; the engine's query path uses prfeBatchCtx with the caller's ctx
	out, err := pc.prfeBatchCtx(context.Background(), alphas)
	pdb.MustNoErr(err)
	return out
}

// prfeBatchCtx is PRFeBatch with cooperative cancellation between grid
// points.
func (pc *PreparedChain) prfeBatchCtx(ctx context.Context, alphas []complex128) ([][]complex128, error) {
	out := make([][]complex128, len(alphas))
	workers := par.WorkersFor(ctx, len(alphas))
	evals := make([]*chainEval, workers)
	err := par.ForWorkersCtx(ctx, workers, len(alphas), func(w, a int) {
		if evals[w] == nil {
			evals[w] = pc.getEval()
		}
		row := make([]complex128, pc.Len())
		pc.prfeInto(evals[w], alphas[a], row)
		out[a] = row
	})
	for _, e := range evals {
		if e != nil {
			pc.putEval(e)
		}
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RankPRFe returns the PRFe(α) ranking of the chain's tuples for real α,
// ranking by |Υ|.
func (pc *PreparedChain) RankPRFe(alpha float64) pdb.Ranking {
	return pdb.RankByAbs(pc.PRFe(complex(alpha, 0)))
}

// RankPRFeBatch computes the PRFe ranking at every α of a grid in parallel,
// fused per worker: one pooled product tree and one value buffer serve a
// worker's whole share of the grid, so only the rankings themselves are
// fresh allocations.
func (pc *PreparedChain) RankPRFeBatch(alphas []float64) []pdb.Ranking {
	out := make([]pdb.Ranking, len(alphas))
	//lint:allow ctxflow ctx-free compatibility API; the engine's query path uses rankBatchCtx with the caller's ctx
	pdb.MustNoErr(pc.rankBatchCtx(context.Background(), alphas, func(a int, r pdb.Ranking) { out[a] = r }))
	return out
}

// rankBatchCtx is the cancellation-aware per-α ranking loop shared by the
// full-ranking and top-k batch paths.
func (pc *PreparedChain) rankBatchCtx(ctx context.Context, alphas []float64, emit func(a int, r pdb.Ranking)) error {
	workers := par.WorkersFor(ctx, len(alphas))
	evals := make([]*chainEval, workers)
	vals := make([][]complex128, workers)
	err := par.ForWorkersCtx(ctx, workers, len(alphas), func(w, a int) {
		if evals[w] == nil {
			evals[w] = pc.getEval()
			vals[w] = make([]complex128, pc.Len())
		}
		pc.prfeInto(evals[w], complex(alphas[a], 0), vals[w])
		emit(a, pdb.RankByAbs(vals[w]))
	})
	for _, e := range evals {
		if e != nil {
			pc.putEval(e)
		}
	}
	return err
}
