// Package junction implements Section 9 of the paper: PRF computation over
// probabilistic databases with arbitrary correlations represented as Markov
// networks over binary tuple-presence variables.
//
// The pipeline is self-contained: a Markov network (a list of factors) is
// triangulated with the min-fill heuristic, its maximal cliques are
// assembled into a junction tree via a maximum-weight spanning tree (which
// satisfies the running-intersection property on chordal graphs), the tree
// is calibrated with two-pass sum-product message passing, and the
// positional probabilities Pr(r(t)=j) are extracted with the recursive
// partial-sum dynamic program of Section 9.4:
//
//	Pr(S, P_S) for each separator S, where P_S is the sum of the presence
//	indicators of higher-ranked tuples strictly below S.
//
// Instead of physically conditioning on X_t = 1 and re-calibrating (the
// paper's presentation, which may split the tree), the DP simply restricts
// its summation to assignments with X_t = 1 — mathematically identical
// because Pr(x ∧ X_t=1) = [x_t=1]·∏Pr(C)/∏Pr(S), and structurally simpler.
//
// The overall complexity matches the paper: polynomial for bounded-treewidth
// networks, O(n⁴·2^tw) for the full rank-distribution matrix.
//
// Two prepared views serve repeated queries. PreparedNetwork builds and
// calibrates the junction tree once, caches the rank-distribution matrix on
// first use (so PRFe over an α grid costs one DP pass plus an O(n²) fold
// per point) and pools the DP buffers. PreparedChain exploits the
// Section 9.3 chain structure further: a segment tree of 2×2 transfer
// matrices shares all prefix/suffix sub-products across the n tuples,
// evaluating PRFe for the whole tuple set in O(n log n) per α instead of the
// Θ(n³) partial-sum DP (kept as PRFeChainDP, the certification reference).
package junction

import (
	"errors"
	"fmt" //lint:allow kernelpurity fmt.Errorf/Sprintf on construction and validation paths only; no formatting in the per-tuple inner loops
	"math"
	"sort"

	"repro/internal/exact"
	"repro/internal/pdb"
)

// Factor is a non-negative potential over a subset of variables. Table has
// 2^len(Vars) entries; bit k of the index is the assignment of Vars[k].
type Factor struct {
	// Vars lists the variable indices in scope, strictly increasing.
	Vars []int
	// Table holds the potential values, indexed by the bit pattern of the
	// variable assignments (Vars[0] = least significant bit).
	Table []float64
}

// Network is a Markov network over n binary tuple-presence variables, plus
// the tuples' ranking scores. The joint distribution is the normalized
// product of the factors.
type Network struct {
	n       int
	scores  []float64
	factors []Factor
}

// NewNetwork validates and builds a Markov network. Every variable must
// appear in at least one factor (add unary factors for marginals), factor
// tables must be non-negative with at least one positive entry overall.
func NewNetwork(scores []float64, factors []Factor) (*Network, error) {
	n := len(scores)
	if n == 0 {
		return nil, errors.New("junction: empty network")
	}
	covered := make([]bool, n)
	for fi, f := range factors {
		if len(f.Table) != 1<<len(f.Vars) {
			return nil, fmt.Errorf("junction: factor %d has %d entries for %d variables",
				fi, len(f.Table), len(f.Vars))
		}
		for i := 1; i < len(f.Vars); i++ {
			if f.Vars[i] <= f.Vars[i-1] {
				return nil, fmt.Errorf("junction: factor %d scope not strictly increasing", fi)
			}
		}
		for _, v := range f.Vars {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("junction: factor %d references variable %d (n=%d)", fi, v, n)
			}
			covered[v] = true
		}
		for _, p := range f.Table {
			if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
				return nil, fmt.Errorf("junction: factor %d has invalid entry %v", fi, p)
			}
		}
	}
	for v, ok := range covered {
		if !ok {
			return nil, fmt.Errorf("junction: variable %d appears in no factor", v)
		}
	}
	for _, s := range scores {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("junction: invalid score %v", s)
		}
	}
	return &Network{n: n, scores: scores, factors: factors}, nil
}

// Len returns the number of variables (tuples).
func (net *Network) Len() int { return net.n }

// Score returns the ranking score of tuple v.
func (net *Network) Score(v int) float64 { return net.scores[v] }

// FromIndependent builds the trivial network for a tuple-independent
// dataset: one unary factor per tuple.
func FromIndependent(d *pdb.Dataset) (*Network, error) {
	n := d.Len()
	scores := make([]float64, n)
	factors := make([]Factor, n)
	for _, t := range d.Tuples() {
		scores[t.ID] = t.Score
		factors[t.ID] = Factor{Vars: []int{int(t.ID)}, Table: []float64{1 - t.Prob, t.Prob}}
	}
	return NewNetwork(scores, factors)
}

// sortedOrder returns variable indices by non-increasing score (ties by
// index), the ranking order used everywhere.
func (net *Network) sortedOrder() []int {
	order := make([]int, net.n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if !exact.Same(net.scores[order[a]], net.scores[order[b]]) {
			return net.scores[order[a]] > net.scores[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// EnumerateWorlds lists all assignments with positive probability — the
// brute-force oracle for tests. Refuses networks with more than
// pdb.MaxEnumerate variables.
func (net *Network) EnumerateWorlds() ([]pdb.World, error) {
	if net.n > pdb.MaxEnumerate {
		return nil, fmt.Errorf("junction: %d variables is too many to enumerate", net.n)
	}
	var z float64
	weights := make([]float64, 1<<net.n)
	for mask := 0; mask < 1<<net.n; mask++ {
		w := 1.0
		for _, f := range net.factors {
			idx := 0
			for k, v := range f.Vars {
				if mask&(1<<v) != 0 {
					idx |= 1 << k
				}
			}
			w *= f.Table[idx]
		}
		weights[mask] = w
		z += w
	}
	if z <= 0 {
		return nil, errors.New("junction: all assignments have zero weight")
	}
	order := net.sortedOrder()
	var worlds []pdb.World
	for mask := 0; mask < 1<<net.n; mask++ {
		if weights[mask] == 0 {
			continue
		}
		var present []pdb.TupleID
		for _, v := range order {
			if mask&(1<<v) != 0 {
				present = append(present, pdb.TupleID(v))
			}
		}
		worlds = append(worlds, pdb.World{Present: present, Prob: weights[mask] / z})
	}
	return worlds, nil
}
