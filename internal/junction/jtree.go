package junction

import (
	"errors"
	"fmt" //lint:allow kernelpurity fmt.Errorf/Sprintf on construction and validation paths only; no formatting in the per-tuple inner loops
	"sort"
	"sync"
)

// clique is a node of the junction tree.
type clique struct {
	vars []int // sorted variable indices
	// Tree structure (filled by build):
	parent   int   // parent clique index, -1 for the root
	children []int // child clique indices
	// sepVars is the separator with the parent: vars ∩ parent.vars.
	sepVars []int
	// ownVars is vars \ sepVars — the variables summed out at this clique,
	// each appearing here and nowhere closer to the root (RIP).
	ownVars []int
	// pot is the calibrated marginal Pr(C = x) indexed by the bit pattern
	// over vars (vars[0] = LSB).
	pot []float64
	// sepPot is the calibrated separator marginal Pr(S = x) over sepVars.
	sepPot []float64
}

// JTree is a calibrated junction tree for a Network.
type JTree struct {
	net     *Network
	cliques []clique
	root    int
	tw      int

	// layouts caches the query-independent DP index maps (see rankdp.go);
	// built lazily, exactly once, by layoutsOnce.
	layouts    []cliqueLayout
	layoutOnce sync.Once
}

// Treewidth returns the treewidth of the triangulation (max clique size −1).
func (jt *JTree) Treewidth() int { return jt.tw }

// NumCliques returns the number of clique nodes.
func (jt *JTree) NumCliques() int { return len(jt.cliques) }

// VariableMarginal returns Pr(X_v = 1) from the calibrated potentials.
func (jt *JTree) VariableMarginal(v int) float64 {
	for _, c := range jt.cliques {
		k := indexOf(c.vars, v)
		if k < 0 {
			continue
		}
		var p float64
		for idx, w := range c.pot {
			if idx&(1<<k) != 0 {
				p += w
			}
		}
		return p
	}
	return 0
}

// BuildJunctionTree triangulates the network's moral graph with min-fill,
// collects maximal cliques, connects them by a maximum-weight spanning tree
// (running-intersection property on chordal graphs), assigns factors, and
// calibrates with two-pass sum-product message passing.
func BuildJunctionTree(net *Network) (*JTree, error) {
	n := net.n
	// Moral graph adjacency: factor scopes are cliques.
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	for _, f := range net.factors {
		for i := 0; i < len(f.Vars); i++ {
			for j := i + 1; j < len(f.Vars); j++ {
				adj[f.Vars[i]][f.Vars[j]] = true
				adj[f.Vars[j]][f.Vars[i]] = true
			}
		}
	}

	cliqueSets := minFillCliques(adj)
	cliqueSets = dropNonMaximal(cliqueSets)

	cs := make([]clique, len(cliqueSets))
	for i, vars := range cliqueSets {
		cs[i] = clique{vars: vars, parent: -1}
	}
	jt := &JTree{net: net, cliques: cs}
	for _, c := range cs {
		if len(c.vars)-1 > jt.tw {
			jt.tw = len(c.vars) - 1
		}
	}
	if err := jt.spanningTree(); err != nil {
		return nil, err
	}
	if err := jt.assignFactorsAndCalibrate(); err != nil {
		return nil, err
	}
	return jt, nil
}

// minFillCliques triangulates by repeatedly eliminating the vertex whose
// elimination adds the fewest fill edges, recording {v} ∪ N(v) as a clique.
func minFillCliques(adj []map[int]bool) [][]int {
	n := len(adj)
	// Work on a copy.
	g := make([]map[int]bool, n)
	for i := range adj {
		g[i] = make(map[int]bool, len(adj[i]))
		for j := range adj[i] {
			g[i][j] = true
		}
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	var out [][]int
	for remaining := n; remaining > 0; remaining-- {
		// Pick the alive vertex with minimum fill.
		best, bestFill := -1, 1<<30
		for v := 0; v < n; v++ {
			if !alive[v] {
				continue
			}
			fill := 0
			nbrs := aliveNeighbors(g, alive, v)
			for i := 0; i < len(nbrs); i++ {
				for j := i + 1; j < len(nbrs); j++ {
					if !g[nbrs[i]][nbrs[j]] {
						fill++
					}
				}
			}
			if fill < bestFill {
				best, bestFill = v, fill
			}
		}
		nbrs := aliveNeighbors(g, alive, best)
		cl := append([]int{best}, nbrs...)
		sort.Ints(cl)
		out = append(out, cl)
		// Add fill edges, then eliminate.
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				g[nbrs[i]][nbrs[j]] = true
				g[nbrs[j]][nbrs[i]] = true
			}
		}
		alive[best] = false
	}
	return out
}

func aliveNeighbors(g []map[int]bool, alive []bool, v int) []int {
	var out []int
	for u := range g[v] {
		if alive[u] {
			//lint:allow kernelpurity the collected neighbors are sorted immediately below
			out = append(out, u)
		}
	}
	sort.Ints(out)
	return out
}

// dropNonMaximal removes cliques contained in another clique.
func dropNonMaximal(cls [][]int) [][]int {
	var out [][]int
	for i, a := range cls {
		maximal := true
		for j, b := range cls {
			if i == j {
				continue
			}
			if len(a) < len(b) || (len(a) == len(b) && i > j) {
				if isSubset(a, b) {
					maximal = false
					break
				}
			}
		}
		if maximal {
			out = append(out, a)
		}
	}
	return out
}

func isSubset(a, b []int) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
	}
	return true
}

func intersect(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

func subtract(a, b []int) []int {
	var out []int
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

func indexOf(vars []int, v int) int {
	for i, x := range vars {
		if x == v {
			return i
		}
	}
	return -1
}

// spanningTree connects the cliques with a maximum-|separator| spanning tree
// (Prim), allowing empty separators to bridge disconnected components, and
// roots the tree at clique 0.
func (jt *JTree) spanningTree() error {
	m := len(jt.cliques)
	if m == 0 {
		return errors.New("junction: no cliques")
	}
	inTree := make([]bool, m)
	bestW := make([]int, m)
	bestTo := make([]int, m)
	for i := range bestW {
		bestW[i] = -1
		bestTo[i] = -1
	}
	inTree[0] = true
	for i := 1; i < m; i++ {
		bestW[i] = len(intersect(jt.cliques[0].vars, jt.cliques[i].vars))
		bestTo[i] = 0
	}
	for added := 1; added < m; added++ {
		pick, pw := -1, -1
		for i := 0; i < m; i++ {
			if !inTree[i] && bestW[i] > pw {
				pick, pw = i, bestW[i]
			}
		}
		if pick < 0 {
			return errors.New("junction: spanning tree construction failed")
		}
		inTree[pick] = true
		jt.cliques[pick].parent = bestTo[pick]
		jt.cliques[bestTo[pick]].children = append(jt.cliques[bestTo[pick]].children, pick)
		for i := 0; i < m; i++ {
			if !inTree[i] {
				if w := len(intersect(jt.cliques[pick].vars, jt.cliques[i].vars)); w > bestW[i] {
					bestW[i], bestTo[i] = w, pick
				}
			}
		}
	}
	jt.root = 0
	for i := range jt.cliques {
		c := &jt.cliques[i]
		if c.parent >= 0 {
			c.sepVars = intersect(c.vars, jt.cliques[c.parent].vars)
		}
		c.ownVars = subtract(c.vars, c.sepVars)
	}
	return nil
}

// assignFactorsAndCalibrate multiplies each factor into one clique
// containing its scope, then runs collect/distribute sum-product passes and
// normalizes all potentials into proper marginals.
func (jt *JTree) assignFactorsAndCalibrate() error {
	for i := range jt.cliques {
		c := &jt.cliques[i]
		c.pot = make([]float64, 1<<len(c.vars))
		for j := range c.pot {
			c.pot[j] = 1
		}
	}
	for fi, f := range jt.net.factors {
		placed := false
		for i := range jt.cliques {
			if isSubset(f.Vars, jt.cliques[i].vars) {
				jt.multiplyFactorIn(i, f)
				placed = true
				break
			}
		}
		if !placed {
			return fmt.Errorf("junction: factor %d scope %v not covered by any clique", fi, f.Vars)
		}
	}

	// Collect: leaves → root, in reverse topological (children first) order.
	order := jt.topoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		ci := order[i]
		c := &jt.cliques[ci]
		if c.parent < 0 {
			continue
		}
		msg := jt.marginalizeTo(ci, c.sepVars)
		c.sepPot = msg
		jt.multiplyTableIn(c.parent, c.sepVars, msg, nil)
	}
	// Distribute: root → leaves.
	for _, ci := range order {
		c := &jt.cliques[ci]
		if c.parent < 0 {
			continue
		}
		par := jt.marginalizeTo(c.parent, c.sepVars)
		// Update: multiply child by par/old, replace separator by par.
		jt.multiplyTableIn(ci, c.sepVars, par, c.sepPot)
		c.sepPot = par
	}
	// Normalize everything by Z (the root's total mass).
	var z float64
	for _, w := range jt.cliques[jt.root].pot {
		z += w
	}
	if z <= 0 {
		return errors.New("junction: zero partition function")
	}
	for i := range jt.cliques {
		c := &jt.cliques[i]
		for j := range c.pot {
			c.pot[j] /= z
		}
		for j := range c.sepPot {
			c.sepPot[j] /= z
		}
	}
	return nil
}

// topoOrder returns clique indices root-first.
func (jt *JTree) topoOrder() []int {
	out := make([]int, 0, len(jt.cliques))
	var walk func(i int)
	walk = func(i int) {
		out = append(out, i)
		for _, ch := range jt.cliques[i].children {
			walk(ch)
		}
	}
	walk(jt.root)
	return out
}

// multiplyFactorIn multiplies factor f into clique ci's potential.
func (jt *JTree) multiplyFactorIn(ci int, f Factor) {
	c := &jt.cliques[ci]
	pos := make([]int, len(f.Vars))
	for k, v := range f.Vars {
		pos[k] = indexOf(c.vars, v)
	}
	for idx := range c.pot {
		fidx := 0
		for k := range f.Vars {
			if idx&(1<<pos[k]) != 0 {
				fidx |= 1 << k
			}
		}
		c.pot[idx] *= f.Table[fidx]
	}
}

// marginalizeTo sums clique ci's potential down to the given variables.
func (jt *JTree) marginalizeTo(ci int, vars []int) []float64 {
	c := &jt.cliques[ci]
	pos := make([]int, len(vars))
	for k, v := range vars {
		pos[k] = indexOf(c.vars, v)
	}
	out := make([]float64, 1<<len(vars))
	for idx, w := range c.pot {
		if w == 0 {
			continue
		}
		oidx := 0
		for k := range vars {
			if idx&(1<<pos[k]) != 0 {
				oidx |= 1 << k
			}
		}
		out[oidx] += w
	}
	return out
}

// multiplyTableIn multiplies table num (over vars) — divided entry-wise by
// den when den is non-nil — into clique ci's potential. Zero denominators
// imply zero numerators on consistent assignments; those entries stay zero.
func (jt *JTree) multiplyTableIn(ci int, vars []int, num, den []float64) {
	c := &jt.cliques[ci]
	pos := make([]int, len(vars))
	for k, v := range vars {
		pos[k] = indexOf(c.vars, v)
	}
	for idx := range c.pot {
		tidx := 0
		for k := range vars {
			if idx&(1<<pos[k]) != 0 {
				tidx |= 1 << k
			}
		}
		factor := num[tidx]
		if den != nil {
			if den[tidx] == 0 {
				c.pot[idx] = 0
				continue
			}
			factor /= den[tidx]
		}
		c.pot[idx] *= factor
	}
}
