package junction

import (
	"math/bits"

	"repro/internal/pdb"
)

// This file implements the Section 9.4 dynamic program: given the calibrated
// junction tree, compute for each tuple t the distribution of
//
//	P = Σ_{u ranked above t} X_u   jointly with   X_t = 1,
//
// which is exactly the rank distribution: Pr(r(t)=j) = Pr(X_t=1 ∧ P=j−1).
//
// The recursion computes, bottom-up, Pr(S, P_S) for every separator S, where
// P_S sums the δ-marked indicators appearing strictly below S. At a clique C
// with parent separator S and children separators S_1..S_k:
//
//	Pr(C, ΣP_{S_l}) = Pr(C)·∏_l Pr(S_l, P_{S_l})/Pr(S_l)   (Markov property)
//
// convolved child by child, then C's own variables (C \ S, each counted at
// exactly one clique thanks to the running-intersection property) shift the
// partial sum, and C \ S is marginalized out. The evidence X_t = 1 is folded
// in by restricting every summation to consistent assignments, which is
// equivalent to the paper's "condition and re-calibrate" step but never
// splits the tree.
//
// The DP runs over a dpEval, which separates the query-independent indexing
// (cliqueLayout: assignment→separator maps, own-variable bit positions —
// built once per tree) from the per-evaluation buffers (the acc/msg arrays —
// reused across every tuple of a rank-distribution pass, and pooled by
// PreparedNetwork across queries). Assignments ruled out by a zero clique
// potential or by the X_t = 1 evidence are skipped up front rather than
// materialized and discarded, which matters on wide cliques where evidence
// kills half of the 2^|C| assignments before any convolution runs.

// cliqueLayout caches the query-independent index maps of one clique's DP
// step.
type cliqueLayout struct {
	// sepMap maps a clique assignment to the induced assignment of the
	// parent separator.
	sepMap []int
	// childSep maps, per child, a clique assignment to the induced
	// assignment of that child's separator.
	childSep [][]int
	// ownPos holds the bit positions (within vars) of the clique's own
	// variables, aligned with ownVars.
	ownPos []int
}

// layoutsOnce builds (once) and returns the per-clique layouts.
func (jt *JTree) layoutsOnce() []cliqueLayout {
	jt.layoutOnce.Do(func() {
		ls := make([]cliqueLayout, len(jt.cliques))
		for ci := range jt.cliques {
			c := &jt.cliques[ci]
			nv := len(c.vars)
			l := &ls[ci]
			l.sepMap = sepIndexMap(c.vars, c.sepVars, nv)
			l.childSep = make([][]int, len(c.children))
			for k, chi := range c.children {
				l.childSep[k] = sepIndexMap(c.vars, jt.cliques[chi].sepVars, nv)
			}
			l.ownPos = make([]int, len(c.ownVars))
			for k, v := range c.ownVars {
				l.ownPos[k] = indexOf(c.vars, v)
			}
		}
		jt.layouts = ls
	})
	return jt.layouts
}

// sepIndexMap precomputes, for every assignment of vars, the induced
// assignment of sepVars ⊆ vars.
func sepIndexMap(vars, sepVars []int, nv int) []int {
	pos := make([]int, len(sepVars))
	for k, v := range sepVars {
		pos[k] = indexOf(vars, v)
	}
	m := make([]int, 1<<nv)
	for idx := range m {
		sidx := 0
		for k := range pos {
			if idx&(1<<pos[k]) != 0 {
				sidx |= 1 << k
			}
		}
		m[idx] = sidx
	}
	return m
}

// dpEval is one evaluation state for the partial-sum DP: per-clique
// assignment (acc) and separator-message (msg) buffers whose top-level
// arrays are allocated once and reused for every rankDP call. A dpEval is
// not safe for concurrent use; PreparedNetwork pools them per worker.
type dpEval struct {
	jt      *JTree
	layouts []cliqueLayout
	acc     [][][]float64
	msg     [][][]float64
	delta   []bool
}

// newDPEval sizes the buffers for the tree.
func (jt *JTree) newDPEval() *dpEval {
	e := &dpEval{
		jt:      jt,
		layouts: jt.layoutsOnce(),
		acc:     make([][][]float64, len(jt.cliques)),
		msg:     make([][][]float64, len(jt.cliques)),
		delta:   make([]bool, jt.net.n),
	}
	for ci := range jt.cliques {
		c := &jt.cliques[ci]
		e.acc[ci] = make([][]float64, 1<<len(c.vars))
		e.msg[ci] = make([][]float64, 1<<len(c.sepVars))
	}
	return e
}

// reset clears the per-query delta mask before a pooled dpEval is handed
// to a new query. acc and msg need no clearing — every DP pass replaces
// their entries wholesale before reading them — but delta is read-modify
// (callers flip individual bits), so a stale mask from the previous query
// would silently count the wrong variables.
func (e *dpEval) reset() {
	for i := range e.delta {
		e.delta[i] = false
	}
}

// unitVec and zeroVec are shared read-only seed vectors: the DP only ever
// replaces acc/msg entries, never writes through them.
var (
	unitVec = []float64{1}
	zeroVec = []float64{0}
)

// rankDP computes Pr(X_target=1 ∧ P = p) for p = 0..n−1, where P counts the
// variables marked in e.delta.
func (e *dpEval) rankDP(target int) []float64 {
	msg := e.cliqueDP(e.jt.root, target)
	// The root has no parent separator: msg has a single assignment slot.
	return msg[0]
}

// cliqueDP returns, for each assignment s of the clique's parent separator,
// the vector over p of
//
//	Pr(S_p = s ∧ X_target=1 below ∧ P_{S_p} = p)
//
// (with the X_target evidence applied only if target appears in the subtree
// strictly below or inside this clique but outside the parent separator —
// applying it once is guaranteed because the cliques containing target form
// a connected subtree and the restriction at every one of them is
// consistent).
func (e *dpEval) cliqueDP(ci, target int) [][]float64 {
	jt := e.jt
	c := &jt.cliques[ci]
	l := &e.layouts[ci]
	targetPos := indexOf(c.vars, target)
	acc := e.acc[ci]

	// Seed consistent assignments with the empty partial sum. Assignments
	// with a zero clique potential, or inconsistent with the X_target = 1
	// evidence, are dropped here — before any child message is convolved
	// into them — instead of being materialized and nilled at the multiply
	// step.
	for idx := range acc {
		if c.pot[idx] == 0 || (targetPos >= 0 && idx&(1<<targetPos) == 0) {
			acc[idx] = nil
			continue
		}
		acc[idx] = unitVec
	}

	// Fold in children one by one.
	for k, chi := range c.children {
		ch := &jt.cliques[chi]
		childMsg := e.cliqueDP(chi, target)
		sep := l.childSep[k]
		for idx := range acc {
			if acc[idx] == nil {
				continue
			}
			sidx := sep[idx]
			den := ch.sepPot[sidx]
			if den == 0 {
				// Zero-probability separator assignment: the clique
				// assignment itself has probability 0.
				acc[idx] = nil
				continue
			}
			conv := convolve(acc[idx], childMsg[sidx])
			for p := range conv {
				conv[p] /= den
			}
			acc[idx] = conv
		}
	}

	// Multiply by the clique marginal and shift by the clique's own δ-marked
	// variables.
	ownDeltaMask := 0
	for k, v := range c.ownVars {
		if e.delta[v] {
			ownDeltaMask |= 1 << l.ownPos[k]
		}
	}
	for idx := range acc {
		if acc[idx] == nil {
			continue
		}
		w := c.pot[idx]
		shift := bits.OnesCount(uint(idx & ownDeltaMask))
		v := acc[idx]
		out := make([]float64, len(v)+shift)
		for p, x := range v {
			out[p+shift] = x * w
		}
		acc[idx] = out
	}

	// Marginalize out C \ S_p.
	out := e.msg[ci]
	for sidx := range out {
		out[sidx] = nil
	}
	for idx, v := range acc {
		if v == nil {
			continue
		}
		sidx := l.sepMap[idx]
		out[sidx] = addVec(out[sidx], v)
	}
	for sidx := range out {
		if out[sidx] == nil {
			out[sidx] = zeroVec
		}
	}
	return out
}

func convolve(a, b []float64) []float64 {
	out := make([]float64, len(a)+len(b)-1)
	for i, x := range a {
		if x == 0 {
			continue
		}
		for j, y := range b {
			out[i+j] += x * y
		}
	}
	return out
}

func addVec(a, b []float64) []float64 {
	if len(b) > len(a) {
		a, b = b, a
	}
	out := make([]float64, len(a))
	copy(out, a)
	for i := range b {
		out[i] += b[i]
	}
	return out
}

// RankDistribution computes the full positional-probability matrix of the
// network. One-shot wrapper: prepares the network (junction-tree build and
// calibration) and runs the DP once. Anything that queries the same network
// more than once should hold a PreparedNetwork instead.
func RankDistribution(net *Network) (*pdb.RankDistribution, error) {
	pn, err := PrepareNetwork(net)
	if err != nil {
		return nil, err
	}
	return pn.RankDistribution(), nil
}

// RankDistribution runs the Section 9.4 DP for every tuple on an
// already-built tree — the per-query reference kernel behind
// PreparedNetwork.RankDistribution.
func (jt *JTree) RankDistribution() *pdb.RankDistribution {
	return jt.newDPEval().rankDistribution()
}

// rankDistribution runs the full per-tuple DP over this evaluation state.
func (e *dpEval) rankDistribution() *pdb.RankDistribution {
	net := e.jt.net
	n := net.n
	order := net.sortedOrder()
	dist := make([][]float64, n)
	for i, v := range order {
		// delta marks variables ranked strictly above v.
		for j := range e.delta {
			e.delta[j] = false
		}
		for j := 0; j < i; j++ {
			e.delta[order[j]] = true
		}
		sums := e.rankDP(v)
		row := make([]float64, i+1)
		for p := 0; p < len(sums) && p <= i; p++ {
			row[p] = sums[p] // Pr(X_v=1 ∧ P=p) = Pr(r(v)=p+1)
		}
		dist[v] = row
	}
	return &pdb.RankDistribution{Dist: dist}
}

// PRF computes Υω for every tuple of the network: the rank-distribution
// matrix folded with the weight function. One-shot prepare-then-call
// wrapper.
func PRF(net *Network, omega func(tu pdb.Tuple, rank int) float64) ([]float64, error) {
	pn, err := PrepareNetwork(net)
	if err != nil {
		return nil, err
	}
	return pn.PRF(omega), nil
}

// PRFe computes Υ_α for every tuple of the network via the rank
// distribution. One-shot prepare-then-call wrapper. (No faster
// special-purpose algorithm is known for general graphical models; the
// paper's O(n log n) PRFe algorithms apply to and/xor trees, and
// PreparedChain serves the Markov-chain special case.)
func PRFe(net *Network, alpha complex128) ([]complex128, error) {
	pn, err := PrepareNetwork(net)
	if err != nil {
		return nil, err
	}
	return pn.PRFe(alpha), nil
}

// prfeFold folds one rank-distribution row with powers of α — the shared
// kernel of every PRFe-from-rank-distribution path, so prepared and
// one-shot results are bit-for-bit identical.
func prfeFold(row []float64, alpha complex128) complex128 {
	var out complex128
	pw := alpha
	for _, p := range row {
		out += complex(p, 0) * pw
		pw *= alpha
	}
	return out
}

// ExpectedRanks returns E[r(t)] for every tuple of the network, with absent
// tuples taking rank |pw| (the E-Rank convention). Following the Section 3.3
// decomposition, er1 comes from the rank distribution and er2 from the joint
// distribution of (X_t, Σ_{u≠t} X_u), both computed with the Section 9.4
// partial-sum DP — generalizing the prior expected-rank algorithms to
// bounded-treewidth graphical models exactly as the paper remarks.
func (jt *JTree) ExpectedRanks() []float64 {
	e := jt.newDPEval()
	return e.expectedRanks(e.rankDistribution(), nil)
}

// expectedRanks folds er1 from the rank distribution and computes er2 with
// one all-but-v marked DP per tuple. marg, when non-nil, supplies cached
// variable marginals.
func (e *dpEval) expectedRanks(rd *pdb.RankDistribution, marg []float64) []float64 {
	jt := e.jt
	n := jt.net.n
	// C = E[|pw|] = Σ marginals.
	var c float64
	for v := 0; v < n; v++ {
		if marg != nil {
			c += marg[v]
		} else {
			c += jt.VariableMarginal(v)
		}
	}
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		// er1 = Σ_j j·Pr(r(t)=j).
		var er1 float64
		for j, p := range rd.Dist[v] {
			er1 += float64(j+1) * p
		}
		// er2 = C − E[|pw|·δ(t∈pw)], with E[|pw|·δ] = Σ_p (p+1)·Pr(X_t=1 ∧
		// #others = p), computed by marking every other variable.
		for u := range e.delta {
			e.delta[u] = u != v
		}
		sums := e.rankDP(v)
		var withT float64
		for p, q := range sums {
			withT += float64(p+1) * q
		}
		out[v] = er1 + (c - withT)
	}
	return out
}
