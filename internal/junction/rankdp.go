package junction

import (
	"repro/internal/pdb"
)

// This file implements the Section 9.4 dynamic program: given the calibrated
// junction tree, compute for each tuple t the distribution of
//
//	P = Σ_{u ranked above t} X_u   jointly with   X_t = 1,
//
// which is exactly the rank distribution: Pr(r(t)=j) = Pr(X_t=1 ∧ P=j−1).
//
// The recursion computes, bottom-up, Pr(S, P_S) for every separator S, where
// P_S sums the δ-marked indicators appearing strictly below S. At a clique C
// with parent separator S and children separators S_1..S_k:
//
//	Pr(C, ΣP_{S_l}) = Pr(C)·∏_l Pr(S_l, P_{S_l})/Pr(S_l)   (Markov property)
//
// convolved child by child, then C's own variables (C \ S, each counted at
// exactly one clique thanks to the running-intersection property) shift the
// partial sum, and C \ S is marginalized out. The evidence X_t = 1 is folded
// in by restricting every summation to consistent assignments, which is
// equivalent to the paper's "condition and re-calibrate" step but never
// splits the tree.

// rankDP computes Pr(X_target=1 ∧ P = p) for p = 0..n−1, where P counts the
// variables marked in delta.
func (jt *JTree) rankDP(target int, delta []bool) []float64 {
	msg := jt.cliqueDP(jt.root, target, delta)
	// The root has no parent separator: msg has a single assignment slot.
	return msg[0]
}

// cliqueDP returns, for each assignment s of the clique's parent separator,
// the vector over p of
//
//	Pr(S_p = s ∧ X_target=1 below ∧ P_{S_p} = p)
//
// (with the X_target evidence applied only if target appears in the subtree
// strictly below or inside this clique but outside the parent separator —
// applying it once is guaranteed because the cliques containing target form
// a connected subtree and the restriction at every one of them is
// consistent).
func (jt *JTree) cliqueDP(ci, target int, delta []bool) [][]float64 {
	c := &jt.cliques[ci]
	nv := len(c.vars)
	targetPos := indexOf(c.vars, target)

	// acc[idx] = partial-sum vector for clique assignment idx.
	acc := make([][]float64, 1<<nv)
	for idx := range acc {
		acc[idx] = []float64{1}
	}

	// Fold in children one by one.
	for _, chi := range c.children {
		ch := &jt.cliques[chi]
		childMsg := jt.cliqueDP(chi, target, delta)
		sepPos := make([]int, len(ch.sepVars))
		for k, v := range ch.sepVars {
			sepPos[k] = indexOf(c.vars, v)
		}
		for idx := range acc {
			if acc[idx] == nil {
				continue
			}
			sidx := 0
			for k := range sepPos {
				if idx&(1<<sepPos[k]) != 0 {
					sidx |= 1 << k
				}
			}
			den := ch.sepPot[sidx]
			if den == 0 {
				// Zero-probability separator assignment: the clique
				// assignment itself has probability 0.
				acc[idx] = nil
				continue
			}
			conv := convolve(acc[idx], childMsg[sidx])
			for p := range conv {
				conv[p] /= den
			}
			acc[idx] = conv
		}
	}

	// Multiply by the clique marginal, apply evidence, and shift by the
	// clique's own δ-marked variables.
	ownDeltaPos := make([]int, 0, len(c.ownVars))
	for _, v := range c.ownVars {
		if delta[v] {
			ownDeltaPos = append(ownDeltaPos, indexOf(c.vars, v))
		}
	}
	for idx := range acc {
		if acc[idx] == nil {
			continue
		}
		w := c.pot[idx]
		if targetPos >= 0 && idx&(1<<targetPos) == 0 {
			w = 0 // evidence X_target = 1
		}
		if w == 0 {
			acc[idx] = nil
			continue
		}
		shift := 0
		for _, pos := range ownDeltaPos {
			if idx&(1<<pos) != 0 {
				shift++
			}
		}
		v := acc[idx]
		out := make([]float64, len(v)+shift)
		for p, x := range v {
			out[p+shift] = x * w
		}
		acc[idx] = out
	}

	// Marginalize out C \ S_p.
	sepPos := make([]int, len(c.sepVars))
	for k, v := range c.sepVars {
		sepPos[k] = indexOf(c.vars, v)
	}
	out := make([][]float64, 1<<len(c.sepVars))
	for idx, v := range acc {
		if v == nil {
			continue
		}
		sidx := 0
		for k := range sepPos {
			if idx&(1<<sepPos[k]) != 0 {
				sidx |= 1 << k
			}
		}
		out[sidx] = addVec(out[sidx], v)
	}
	for sidx := range out {
		if out[sidx] == nil {
			out[sidx] = []float64{0}
		}
	}
	return out
}

func convolve(a, b []float64) []float64 {
	out := make([]float64, len(a)+len(b)-1)
	for i, x := range a {
		if x == 0 {
			continue
		}
		for j, y := range b {
			out[i+j] += x * y
		}
	}
	return out
}

func addVec(a, b []float64) []float64 {
	if len(b) > len(a) {
		a, b = b, a
	}
	out := make([]float64, len(a))
	copy(out, a)
	for i := range b {
		out[i] += b[i]
	}
	return out
}

// RankDistribution computes the full positional-probability matrix of the
// network: one junction-tree build plus one partial-sum DP per tuple.
func RankDistribution(net *Network) (*pdb.RankDistribution, error) {
	jt, err := BuildJunctionTree(net)
	if err != nil {
		return nil, err
	}
	return jt.RankDistribution(), nil
}

// RankDistribution runs the Section 9.4 DP for every tuple on an
// already-built tree.
func (jt *JTree) RankDistribution() *pdb.RankDistribution {
	net := jt.net
	n := net.n
	order := net.sortedOrder()
	delta := make([]bool, n)
	dist := make([][]float64, n)
	for i, v := range order {
		// delta marks variables ranked strictly above v.
		for j := range delta {
			delta[j] = false
		}
		for j := 0; j < i; j++ {
			delta[order[j]] = true
		}
		sums := jt.rankDP(v, delta)
		row := make([]float64, i+1)
		for p := 0; p < len(sums) && p <= i; p++ {
			row[p] = sums[p] // Pr(X_v=1 ∧ P=p) = Pr(r(v)=p+1)
		}
		dist[v] = row
	}
	return &pdb.RankDistribution{Dist: dist}
}

// PRF computes Υω for every tuple of the network: the rank-distribution
// matrix folded with the weight function.
func PRF(net *Network, omega func(tu pdb.Tuple, rank int) float64) ([]float64, error) {
	jt, err := BuildJunctionTree(net)
	if err != nil {
		return nil, err
	}
	rd := jt.RankDistribution()
	out := make([]float64, net.n)
	for v := 0; v < net.n; v++ {
		tu := pdb.Tuple{ID: pdb.TupleID(v), Score: net.scores[v], Prob: jt.VariableMarginal(v)}
		for j, p := range rd.Dist[v] {
			if p != 0 {
				out[v] += omega(tu, j+1) * p
			}
		}
	}
	return out, nil
}

// PRFe computes Υ_α for every tuple of the network via the rank
// distribution. (No faster special-purpose algorithm is known for graphical
// models; the paper's O(n log n) PRFe algorithms apply to and/xor trees.)
func PRFe(net *Network, alpha complex128) ([]complex128, error) {
	jt, err := BuildJunctionTree(net)
	if err != nil {
		return nil, err
	}
	rd := jt.RankDistribution()
	out := make([]complex128, net.n)
	for v := 0; v < net.n; v++ {
		pw := alpha
		for _, p := range rd.Dist[v] {
			out[v] += complex(p, 0) * pw
			pw *= alpha
		}
	}
	return out, nil
}

// ExpectedRanks returns E[r(t)] for every tuple of the network, with absent
// tuples taking rank |pw| (the E-Rank convention). Following the Section 3.3
// decomposition, er1 comes from the rank distribution and er2 from the joint
// distribution of (X_t, Σ_{u≠t} X_u), both computed with the Section 9.4
// partial-sum DP — generalizing the prior expected-rank algorithms to
// bounded-treewidth graphical models exactly as the paper remarks.
func (jt *JTree) ExpectedRanks() []float64 {
	net := jt.net
	n := net.n
	rd := jt.RankDistribution()
	// C = E[|pw|] = Σ marginals.
	var c float64
	for v := 0; v < n; v++ {
		c += jt.VariableMarginal(v)
	}
	out := make([]float64, n)
	delta := make([]bool, n)
	for v := 0; v < n; v++ {
		// er1 = Σ_j j·Pr(r(t)=j).
		var er1 float64
		for j, p := range rd.Dist[v] {
			er1 += float64(j+1) * p
		}
		// er2 = C − E[|pw|·δ(t∈pw)], with E[|pw|·δ] = Σ_p (p+1)·Pr(X_t=1 ∧
		// #others = p), computed by marking every other variable.
		for u := range delta {
			delta[u] = u != v
		}
		sums := jt.rankDP(v, delta)
		var withT float64
		for p, q := range sums {
			withT += float64(p+1) * q
		}
		out[v] = er1 + (c - withT)
	}
	return out
}
