package junction

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/andxor"
	"repro/internal/core"
	"repro/internal/pdb"
)

func randDataset(rng *rand.Rand, n int) *pdb.Dataset {
	scores := make([]float64, n)
	probs := make([]float64, n)
	for i := 0; i < n; i++ {
		scores[i] = rng.Float64() * 100
		probs[i] = rng.Float64()
	}
	return pdb.MustDataset(scores, probs)
}

// randNetwork builds a random Markov network: unary factors on every
// variable plus random pairwise/ternary factors.
func randNetwork(rng *rand.Rand, n int) *Network {
	factors := make([]Factor, 0, 2*n)
	scores := make([]float64, n)
	for v := 0; v < n; v++ {
		scores[v] = rng.Float64() * 100
		p := 0.05 + 0.9*rng.Float64()
		factors = append(factors, Factor{Vars: []int{v}, Table: []float64{1 - p, p}})
	}
	extra := rng.Intn(n + 1)
	for e := 0; e < extra; e++ {
		a := rng.Intn(n)
		b := rng.Intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		tbl := make([]float64, 4)
		for i := range tbl {
			tbl[i] = 0.1 + rng.Float64()
		}
		factors = append(factors, Factor{Vars: []int{a, b}, Table: tbl})
	}
	if n >= 3 && rng.Intn(2) == 0 {
		vs := rng.Perm(n)[:3]
		if vs[0] > vs[1] {
			vs[0], vs[1] = vs[1], vs[0]
		}
		if vs[1] > vs[2] {
			vs[1], vs[2] = vs[2], vs[1]
		}
		if vs[0] > vs[1] {
			vs[0], vs[1] = vs[1], vs[0]
		}
		tbl := make([]float64, 8)
		for i := range tbl {
			tbl[i] = 0.1 + rng.Float64()
		}
		factors = append(factors, Factor{Vars: []int{vs[0], vs[1], vs[2]}, Table: tbl})
	}
	net, err := NewNetwork(scores, factors)
	if err != nil {
		panic(err)
	}
	return net
}

func TestNetworkValidation(t *testing.T) {
	cases := []struct {
		name    string
		scores  []float64
		factors []Factor
	}{
		{"empty", nil, nil},
		{"uncovered variable", []float64{1, 2}, []Factor{{Vars: []int{0}, Table: []float64{0.5, 0.5}}}},
		{"bad table size", []float64{1}, []Factor{{Vars: []int{0}, Table: []float64{0.5}}}},
		{"negative entry", []float64{1}, []Factor{{Vars: []int{0}, Table: []float64{-1, 2}}}},
		{"unsorted scope", []float64{1, 2}, []Factor{{Vars: []int{1, 0}, Table: []float64{1, 1, 1, 1}}}},
		{"out of range", []float64{1}, []Factor{{Vars: []int{3}, Table: []float64{1, 1}}}},
		{"nan score", []float64{math.NaN()}, []Factor{{Vars: []int{0}, Table: []float64{1, 1}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewNetwork(c.scores, c.factors); err == nil {
				t.Fatalf("expected error for %s", c.name)
			}
		})
	}
}

func TestZeroDistributionRejected(t *testing.T) {
	net, err := NewNetwork([]float64{1}, []Factor{{Vars: []int{0}, Table: []float64{0, 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildJunctionTree(net); err == nil {
		t.Fatal("expected zero partition function error")
	}
	if _, err := net.EnumerateWorlds(); err == nil {
		t.Fatal("expected enumeration error for zero distribution")
	}
}

func TestIndependentNetworkMatchesCore(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := randDataset(rng, 12)
	net, err := FromIndependent(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RankDistribution(net)
	if err != nil {
		t.Fatal(err)
	}
	want := core.RankDistribution(d)
	for id := 0; id < 12; id++ {
		for j := 1; j <= 12; j++ {
			g, w := got.At(pdb.TupleID(id), j), want.At(pdb.TupleID(id), j)
			if math.Abs(g-w) > 1e-9 {
				t.Fatalf("id=%d j=%d: %v vs %v", id, j, g, w)
			}
		}
	}
}

func TestCalibratedMarginalsMatchEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := randNetwork(rng, 2+rng.Intn(7))
		jt, err := BuildJunctionTree(net)
		if err != nil {
			return false
		}
		worlds, err := net.EnumerateWorlds()
		if err != nil {
			return false
		}
		for v := 0; v < net.Len(); v++ {
			var want float64
			for _, w := range worlds {
				if w.Rank(pdb.TupleID(v)) > 0 {
					want += w.Prob
				}
			}
			if math.Abs(jt.VariableMarginal(v)-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The Section 9.4 DP must reproduce enumeration on arbitrary networks.
func TestQuickRankDistributionMatchesEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := randNetwork(rng, 2+rng.Intn(7))
		got, err := RankDistribution(net)
		if err != nil {
			return false
		}
		worlds, err := net.EnumerateWorlds()
		if err != nil {
			return false
		}
		want := pdb.RankDistributionFromWorlds(worlds, net.Len())
		for id := 0; id < net.Len(); id++ {
			for j := 1; j <= net.Len(); j++ {
				if math.Abs(got.At(pdb.TupleID(id), j)-want.At(pdb.TupleID(id), j)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTreewidths(t *testing.T) {
	// A chain has treewidth 1.
	scores := []float64{4, 3, 2, 1}
	factors := []Factor{
		{Vars: []int{0}, Table: []float64{0.5, 0.5}},
		{Vars: []int{1}, Table: []float64{0.5, 0.5}},
		{Vars: []int{2}, Table: []float64{0.5, 0.5}},
		{Vars: []int{3}, Table: []float64{0.5, 0.5}},
		{Vars: []int{0, 1}, Table: []float64{1, 2, 3, 4}},
		{Vars: []int{1, 2}, Table: []float64{1, 2, 3, 4}},
		{Vars: []int{2, 3}, Table: []float64{1, 2, 3, 4}},
	}
	net, err := NewNetwork(scores, factors)
	if err != nil {
		t.Fatal(err)
	}
	jt, err := BuildJunctionTree(net)
	if err != nil {
		t.Fatal(err)
	}
	if jt.Treewidth() != 1 {
		t.Fatalf("chain treewidth %d, want 1", jt.Treewidth())
	}
	// A triangle factor forces treewidth 2.
	factors = append(factors, Factor{Vars: []int{0, 1, 2}, Table: []float64{1, 1, 1, 1, 1, 1, 1, 1}})
	net2, _ := NewNetwork(scores, factors)
	jt2, err := BuildJunctionTree(net2)
	if err != nil {
		t.Fatal(err)
	}
	if jt2.Treewidth() != 2 {
		t.Fatalf("triangle treewidth %d, want 2", jt2.Treewidth())
	}
}

func TestDisconnectedComponents(t *testing.T) {
	// Two independent pairs: the spanning tree must bridge them with an
	// empty separator and still produce exact results.
	scores := []float64{4, 3, 2, 1}
	factors := []Factor{
		{Vars: []int{0, 1}, Table: []float64{0.1, 0.2, 0.3, 0.4}},
		{Vars: []int{2, 3}, Table: []float64{0.4, 0.3, 0.2, 0.1}},
	}
	net, err := NewNetwork(scores, factors)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RankDistribution(net)
	if err != nil {
		t.Fatal(err)
	}
	worlds, err := net.EnumerateWorlds()
	if err != nil {
		t.Fatal(err)
	}
	want := pdb.RankDistributionFromWorlds(worlds, 4)
	for id := 0; id < 4; id++ {
		for j := 1; j <= 4; j++ {
			if math.Abs(got.At(pdb.TupleID(id), j)-want.At(pdb.TupleID(id), j)) > 1e-9 {
				t.Fatalf("id=%d j=%d: %v vs %v", id, j,
					got.At(pdb.TupleID(id), j), want.At(pdb.TupleID(id), j))
			}
		}
	}
}

// randChain builds a random calibrated chain via random initial marginal and
// random stochastic transitions.
func randChain(rng *rand.Rand, n int) *Chain {
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = rng.Float64() * 100
	}
	marg := [2]float64{}
	marg[1] = 0.1 + 0.8*rng.Float64()
	marg[0] = 1 - marg[1]
	pair := make([][2][2]float64, n-1)
	for j := 0; j < n-1; j++ {
		var next [2]float64
		for a := 0; a < 2; a++ {
			t1 := 0.1 + 0.8*rng.Float64() // Pr(Y_{j+1}=1 | Y_j=a)
			pair[j][a][1] = marg[a] * t1
			pair[j][a][0] = marg[a] * (1 - t1)
			next[1] += pair[j][a][1]
			next[0] += pair[j][a][0]
		}
		marg = next
	}
	c, err := NewChain(scores, pair)
	if err != nil {
		panic(err)
	}
	return c
}

func TestQuickChainMatchesGenericAndEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		c := randChain(rng, n)
		direct := c.RankDistribution()
		net, err := c.Network()
		if err != nil {
			return false
		}
		generic, err := RankDistribution(net)
		if err != nil {
			return false
		}
		worlds, err := net.EnumerateWorlds()
		if err != nil {
			return false
		}
		want := pdb.RankDistributionFromWorlds(worlds, n)
		for id := 0; id < n; id++ {
			for j := 1; j <= n; j++ {
				w := want.At(pdb.TupleID(id), j)
				if math.Abs(direct.At(pdb.TupleID(id), j)-w) > 1e-9 {
					return false
				}
				if math.Abs(generic.At(pdb.TupleID(id), j)-w) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestChainValidation(t *testing.T) {
	if _, err := NewChain([]float64{1}, nil); err == nil {
		t.Fatal("single-variable chain should fail")
	}
	// Table not summing to 1.
	bad := [][2][2]float64{{{0.5, 0.5}, {0.5, 0.5}}}
	if _, err := NewChain([]float64{1, 2}, bad); err == nil {
		t.Fatal("non-distribution pair should fail")
	}
	// Inconsistent adjacent marginals.
	p1 := [2][2]float64{{0.25, 0.25}, {0.25, 0.25}} // Pr(Y_1=1)=0.5
	p2 := [2][2]float64{{0.7, 0.1}, {0.1, 0.1}}     // Pr(Y_1=1)=0.2
	if _, err := NewChain([]float64{3, 2, 1}, [][2][2]float64{p1, p2}); err == nil {
		t.Fatal("inconsistent marginals should fail")
	}
}

func TestPRFOnNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := randNetwork(rng, 6)
	worlds, err := net.EnumerateWorlds()
	if err != nil {
		t.Fatal(err)
	}
	rd := pdb.RankDistributionFromWorlds(worlds, 6)
	// PT(2) weights via generic PRF.
	got, err := PRF(net, func(_ pdb.Tuple, rank int) float64 {
		if rank <= 2 {
			return 1
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		want := rd.At(pdb.TupleID(v), 1) + rd.At(pdb.TupleID(v), 2)
		if math.Abs(got[v]-want) > 1e-9 {
			t.Fatalf("v=%d: %v vs %v", v, got[v], want)
		}
	}
}

func TestPRFeOnNetworkMatchesCoreForIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := randDataset(rng, 10)
	net, err := FromIndependent(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PRFe(net, complex(0.8, 0))
	if err != nil {
		t.Fatal(err)
	}
	want := core.PRFe(d, complex(0.8, 0))
	for i := range got {
		if math.Abs(real(got[i])-real(want[i])) > 1e-9 {
			t.Fatalf("i=%d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestPRFeChainAgreesWithNetworkPRFe(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := randChain(rng, 8)
	direct := PRFeChain(c, complex(0.9, 0))
	net, err := c.Network()
	if err != nil {
		t.Fatal(err)
	}
	generic, err := PRFe(net, complex(0.9, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if math.Abs(real(direct[i])-real(generic[i])) > 1e-9 {
			t.Fatalf("i=%d: %v vs %v", i, direct[i], generic[i])
		}
	}
}

func TestVariableMarginalOnAbsentVariableIsZero(t *testing.T) {
	// Degenerate probe of the lookup path: marginal of a valid variable in
	// a one-variable network.
	net, err := NewNetwork([]float64{1}, []Factor{{Vars: []int{0}, Table: []float64{0.3, 0.7}}})
	if err != nil {
		t.Fatal(err)
	}
	jt, err := BuildJunctionTree(net)
	if err != nil {
		t.Fatal(err)
	}
	if got := jt.VariableMarginal(0); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("marginal %v, want 0.7", got)
	}
	if jt.NumCliques() != 1 {
		t.Fatalf("cliques %d", jt.NumCliques())
	}
}

// Expected ranks on Markov networks match brute-force enumeration.
func TestQuickNetworkExpectedRanksMatchEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := randNetwork(rng, 2+rng.Intn(6))
		jt, err := BuildJunctionTree(net)
		if err != nil {
			return false
		}
		got := jt.ExpectedRanks()
		worlds, err := net.EnumerateWorlds()
		if err != nil {
			return false
		}
		want := make([]float64, net.Len())
		for _, w := range worlds {
			for id := 0; id < net.Len(); id++ {
				r := w.Rank(pdb.TupleID(id))
				if r == 0 {
					r = len(w.Present)
				}
				want[id] += w.Prob * float64(r)
			}
		}
		for id := range want {
			if math.Abs(got[id]-want[id]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Cross-model validation: an x-tuple database encoded as a Markov network
// (one factor per exclusion group) must produce exactly the same rank
// distribution as the and/xor tree implementation.
func TestQuickNetworkMatchesAndXorTreeOnXTuples(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nGroups := 1 + rng.Intn(4)
		var groups [][]andxor.Alternative
		var scores []float64
		var factors []Factor
		varBase := 0
		for g := 0; g < nGroups; g++ {
			size := 1 + rng.Intn(3)
			alts := make([]andxor.Alternative, size)
			rem := rng.Float64()
			vars := make([]int, size)
			for i := range alts {
				p := rem / float64(size)
				alts[i] = andxor.Alternative{Score: rng.Float64() * 100, Prob: p}
				scores = append(scores, alts[i].Score)
				vars[i] = varBase + i
			}
			groups = append(groups, alts)
			// Exclusion factor: weight 1−Σp for the empty assignment, p_i
			// for exactly alternative i present, 0 otherwise.
			tbl := make([]float64, 1<<size)
			var sum float64
			for i, a := range alts {
				tbl[1<<i] = a.Prob
				sum += a.Prob
			}
			tbl[0] = 1 - sum
			factors = append(factors, Factor{Vars: vars, Table: tbl})
			varBase += size
		}
		tree, err := andxor.XTuples(groups)
		if err != nil {
			return false
		}
		net, err := NewNetwork(scores, factors)
		if err != nil {
			return false
		}
		treeRD := andxor.RankDistribution(tree)
		netRD, err := RankDistribution(net)
		if err != nil {
			return false
		}
		n := len(scores)
		for id := 0; id < n; id++ {
			for j := 1; j <= n; j++ {
				if math.Abs(treeRD.At(pdb.TupleID(id), j)-netRD.At(pdb.TupleID(id), j)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
