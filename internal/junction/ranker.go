package junction

import (
	"context"

	"repro/internal/par"
	"repro/internal/pdb"
)

// This file holds the two graphical-model arms of the unified Ranker
// engine: the Query* methods make *PreparedNetwork and *PreparedChain
// satisfy engine.Ranker.
//
// On a PreparedNetwork every ranking function folds the cached
// rank-distribution matrix (one Section 9.4 DP pass, ever), so the marginal
// cost of a query after the first is an O(n²) fold. On a PreparedChain the
// PRFe family runs the O(n log n) product-tree algorithm; the ω-based
// family (PRF, PRFω(h), PT(h), E-Rank) has no known sub-cubic algorithm and
// folds the chain's Θ(n³) rank-distribution DP, computed once and cached.

// ---------------------------------------------------------------------------
// PreparedNetwork: arbitrary correlations via the junction tree.
// ---------------------------------------------------------------------------

// QueryPRFe evaluates Υ_α per TupleID by folding the cached rank
// distribution. Identical to PRFe.
func (pn *PreparedNetwork) QueryPRFe(ctx context.Context, alpha complex128) ([]complex128, error) {
	if err := pdb.CheckAlphaC(alpha); err != nil {
		return nil, err
	}
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	return pn.PRFe(alpha), nil
}

// QueryPRFeBatch evaluates Υ_α for every α of a grid: the DP runs (at most)
// once and the per-α folds fan out across workers. out[a] is bit-for-bit
// PRFe(alphas[a]).
func (pn *PreparedNetwork) QueryPRFeBatch(ctx context.Context, alphas []complex128) ([][]complex128, error) {
	if err := pdb.CheckAlphaGridC(alphas); err != nil {
		return nil, err
	}
	return pn.prfeBatchCtx(ctx, alphas)
}

// QueryRankPRFe returns the PRFe(α) ranking by |Υ|. Identical to RankPRFe.
func (pn *PreparedNetwork) QueryRankPRFe(ctx context.Context, alpha float64) (pdb.Ranking, error) {
	if err := pdb.CheckAlpha(alpha); err != nil {
		return nil, err
	}
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	return pn.RankPRFe(alpha), nil
}

// rankBatchCtx runs the per-α fold-and-rank loop with one value buffer per
// worker.
func (pn *PreparedNetwork) rankBatchCtx(ctx context.Context, alphas []float64, emit func(a int, r pdb.Ranking)) error {
	rd := pn.RankDistribution()
	n := pn.Len()
	workers := par.WorkersFor(ctx, len(alphas))
	vals := make([][]complex128, workers)
	return par.ForWorkersCtx(ctx, workers, len(alphas), func(w, a int) {
		if vals[w] == nil {
			vals[w] = make([]complex128, n)
		}
		alpha := complex(alphas[a], 0)
		for v := 0; v < n; v++ {
			vals[w][v] = prfeFold(rd.Dist[v], alpha)
		}
		emit(a, pdb.RankByAbs(vals[w]))
	})
}

// QueryRankPRFeBatch ranks every α of a grid in parallel over the cached
// matrix. out[a] is bit-for-bit RankPRFe(alphas[a]).
func (pn *PreparedNetwork) QueryRankPRFeBatch(ctx context.Context, alphas []float64) ([]pdb.Ranking, error) {
	if err := pdb.CheckAlphaGrid(alphas); err != nil {
		return nil, err
	}
	out := make([]pdb.Ranking, len(alphas))
	if err := pn.rankBatchCtx(ctx, alphas, func(a int, r pdb.Ranking) { out[a] = r }); err != nil {
		return nil, err
	}
	return out, nil
}

// QueryTopKPRFeBatch answers top-k at every α of a grid. out[a] is
// bit-for-bit RankPRFe(alphas[a]).TopK(k).
func (pn *PreparedNetwork) QueryTopKPRFeBatch(ctx context.Context, alphas []float64, k int) ([]pdb.Ranking, error) {
	if err := pdb.CheckAlphaGrid(alphas); err != nil {
		return nil, err
	}
	if err := pdb.CheckTopK(k); err != nil {
		return nil, err
	}
	out := make([]pdb.Ranking, len(alphas))
	if err := pn.rankBatchCtx(ctx, alphas, func(a int, r pdb.Ranking) { out[a] = r.TopK(k) }); err != nil {
		return nil, err
	}
	return out, nil
}

// QueryPRFeCombo evaluates Σ_l u_l·Υ_{α_l}: per-term folds of the cached
// matrix summed in term order.
func (pn *PreparedNetwork) QueryPRFeCombo(ctx context.Context, us, alphas []complex128) ([]complex128, error) {
	if err := pdb.CheckCombo(us, alphas); err != nil {
		return nil, err
	}
	vals, err := pn.QueryPRFeBatch(ctx, alphas[:len(us)])
	if err != nil {
		return nil, err
	}
	return pdb.ComboSum(us, vals, pn.Len()), nil
}

// QueryPRF evaluates Υω by folding the cached rank distribution with the
// weight function. Identical to PRF.
func (pn *PreparedNetwork) QueryPRF(ctx context.Context, omega func(t pdb.Tuple, rank int) float64) ([]float64, error) {
	if omega == nil {
		return nil, pdb.ErrNilOmega
	}
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	return pn.PRF(omega), nil
}

// QueryPRFOmega evaluates the PRFω(h) family: the weight vector folded as
// an ω function over the cached matrix.
func (pn *PreparedNetwork) QueryPRFOmega(ctx context.Context, w []float64) ([]float64, error) {
	if err := pdb.CheckWeights(w); err != nil {
		return nil, err
	}
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	return pn.PRF(weightVecOmega(w)), nil
}

// QueryPTh evaluates Pr(r(t) ≤ h): the step weight folded over the cached
// matrix.
func (pn *PreparedNetwork) QueryPTh(ctx context.Context, h int) ([]float64, error) {
	if err := pdb.CheckDepth(h); err != nil {
		return nil, err
	}
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	return pn.PRF(stepOmega(h)), nil
}

// QueryERank returns E[r(t)] per tuple via the partial-sum DP. Identical to
// ERank / JTree.ExpectedRanks.
func (pn *PreparedNetwork) QueryERank(ctx context.Context) ([]float64, error) {
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	return pn.ERank(), nil
}

// QueryExpectedRank returns the consensus expected rank (absent → |pw|+1)
// per tuple. Identical to ExpectedRank.
func (pn *PreparedNetwork) QueryExpectedRank(ctx context.Context) ([]float64, error) {
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	return pn.ExpectedRank(), nil
}

// QueryMedianRank returns the consensus median rank per tuple over the
// cached rank-distribution matrix. Identical to MedianRank.
func (pn *PreparedNetwork) QueryMedianRank(ctx context.Context) ([]float64, error) {
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	return pn.MedianRank(), nil
}

// weightVecOmega adapts a PRFω weight vector to the ω-function form the
// rank-distribution folds take: w[j] weighs rank j+1, ranks beyond len(w)
// weigh zero.
func weightVecOmega(w []float64) func(t pdb.Tuple, rank int) float64 {
	return func(_ pdb.Tuple, rank int) float64 {
		if rank >= 1 && rank <= len(w) {
			return w[rank-1]
		}
		return 0
	}
}

// stepOmega is the PT(h) step weight as an ω function.
func stepOmega(h int) func(t pdb.Tuple, rank int) float64 {
	return func(_ pdb.Tuple, rank int) float64 {
		if rank <= h {
			return 1
		}
		return 0
	}
}

// ---------------------------------------------------------------------------
// PreparedChain: the Section 9.3 Markov-chain special case.
// ---------------------------------------------------------------------------

// QueryPRFe evaluates Υ_α per TupleID with the O(n log n) product-tree
// algorithm. Identical to PRFe / PRFeChain.
func (pc *PreparedChain) QueryPRFe(ctx context.Context, alpha complex128) ([]complex128, error) {
	if err := pdb.CheckAlphaC(alpha); err != nil {
		return nil, err
	}
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	return pc.PRFe(alpha), nil
}

// QueryPRFeBatch evaluates Υ_α for every α of a grid over pooled product
// trees. out[a] is bit-for-bit PRFe(alphas[a]).
func (pc *PreparedChain) QueryPRFeBatch(ctx context.Context, alphas []complex128) ([][]complex128, error) {
	if err := pdb.CheckAlphaGridC(alphas); err != nil {
		return nil, err
	}
	return pc.prfeBatchCtx(ctx, alphas)
}

// QueryRankPRFe returns the PRFe(α) ranking by |Υ|. Identical to RankPRFe.
func (pc *PreparedChain) QueryRankPRFe(ctx context.Context, alpha float64) (pdb.Ranking, error) {
	if err := pdb.CheckAlpha(alpha); err != nil {
		return nil, err
	}
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	return pc.RankPRFe(alpha), nil
}

// QueryRankPRFeBatch ranks every α of a grid in parallel. out[a] is
// bit-for-bit RankPRFe(alphas[a]).
func (pc *PreparedChain) QueryRankPRFeBatch(ctx context.Context, alphas []float64) ([]pdb.Ranking, error) {
	if err := pdb.CheckAlphaGrid(alphas); err != nil {
		return nil, err
	}
	out := make([]pdb.Ranking, len(alphas))
	if err := pc.rankBatchCtx(ctx, alphas, func(a int, r pdb.Ranking) { out[a] = r }); err != nil {
		return nil, err
	}
	return out, nil
}

// QueryTopKPRFeBatch answers top-k at every α of a grid. out[a] is
// bit-for-bit RankPRFe(alphas[a]).TopK(k).
func (pc *PreparedChain) QueryTopKPRFeBatch(ctx context.Context, alphas []float64, k int) ([]pdb.Ranking, error) {
	if err := pdb.CheckAlphaGrid(alphas); err != nil {
		return nil, err
	}
	if err := pdb.CheckTopK(k); err != nil {
		return nil, err
	}
	out := make([]pdb.Ranking, len(alphas))
	if err := pc.rankBatchCtx(ctx, alphas, func(a int, r pdb.Ranking) { out[a] = r.TopK(k) }); err != nil {
		return nil, err
	}
	return out, nil
}

// QueryPRFeCombo evaluates Σ_l u_l·Υ_{α_l}: per-term product-tree passes
// summed in term order.
func (pc *PreparedChain) QueryPRFeCombo(ctx context.Context, us, alphas []complex128) ([]complex128, error) {
	if err := pdb.CheckCombo(us, alphas); err != nil {
		return nil, err
	}
	vals, err := pc.prfeBatchCtx(ctx, alphas[:len(us)])
	if err != nil {
		return nil, err
	}
	return pdb.ComboSum(us, vals, pc.Len()), nil
}

// QueryPRF evaluates Υω by folding the cached chain rank distribution
// (Θ(n³) on first use, O(n²) afterwards — no sub-cubic chain algorithm is
// known for arbitrary ω; the product-tree trick is PRFe-specific).
func (pc *PreparedChain) QueryPRF(ctx context.Context, omega func(t pdb.Tuple, rank int) float64) ([]float64, error) {
	if omega == nil {
		return nil, pdb.ErrNilOmega
	}
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	rd := pc.RankDistribution()
	out := make([]float64, pc.Len())
	for v := range out {
		// One cancellation check per tuple row: the inner fold is Θ(n)
		// calls into user-supplied ω, so a stuck deadline surfaces after
		// at most one row, matching the engine's grid-point granularity.
		if err := pdb.CtxErr(ctx); err != nil {
			return nil, err
		}
		tu := pdb.Tuple{ID: pdb.TupleID(v), Score: pc.c.scores[v], Prob: pc.m[v][1]}
		for j, p := range rd.Dist[v] {
			if p != 0 {
				out[v] += omega(tu, j+1) * p
			}
		}
	}
	return out, nil
}

// QueryPRFOmega evaluates the PRFω(h) family over the cached chain rank
// distribution.
func (pc *PreparedChain) QueryPRFOmega(ctx context.Context, w []float64) ([]float64, error) {
	if err := pdb.CheckWeights(w); err != nil {
		return nil, err
	}
	return pc.QueryPRF(ctx, weightVecOmega(w))
}

// QueryPTh evaluates Pr(r(t) ≤ h) over the cached chain rank distribution.
func (pc *PreparedChain) QueryPTh(ctx context.Context, h int) ([]float64, error) {
	if err := pdb.CheckDepth(h); err != nil {
		return nil, err
	}
	return pc.QueryPRF(ctx, stepOmega(h))
}

// QueryERank returns E[r(t)] per tuple with the Section 3.3 decomposition:
// er1 folds the cached rank distribution, er2 runs one all-others-marked
// partial-sum DP per tuple (the same convention as the junction-tree
// ExpectedRanks: absent tuples take rank |pw|). The vector is deterministic
// on an immutable view, so it is computed once and cached; callers get a
// private copy.
func (pc *PreparedChain) QueryERank(ctx context.Context) ([]float64, error) {
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	pc.erMu.Lock()
	cached := pc.er
	pc.erMu.Unlock()
	if cached == nil {
		computed, err := pc.computeERank(ctx)
		if err != nil {
			return nil, err // canceled mid-compute: nothing cached
		}
		pc.erMu.Lock()
		if pc.er == nil {
			pc.er = computed
		}
		cached = pc.er
		pc.erMu.Unlock()
	}
	out := make([]float64, len(cached))
	copy(out, cached)
	return out, nil
}

// QueryExpectedRank returns the consensus expected rank (absent → |pw|+1)
// per tuple: the cached Cormode-convention vector plus the absence mass
// 1 − Pr(Y_t = 1), the exact gap between the two conventions.
func (pc *PreparedChain) QueryExpectedRank(ctx context.Context) ([]float64, error) {
	out, err := pc.QueryERank(ctx)
	if err != nil {
		return nil, err
	}
	for v := range out {
		out[v] += 1 - pc.m[v][1]
	}
	return out, nil
}

// QueryMedianRank returns the consensus median rank per tuple folded from
// the cached Θ(n³) chain rank distribution.
func (pc *PreparedChain) QueryMedianRank(ctx context.Context) ([]float64, error) {
	if err := pdb.CtxErr(ctx); err != nil {
		return nil, err
	}
	return pdb.MedianRankFromDistribution(pc.RankDistribution(), pc.Len()), nil
}

func (pc *PreparedChain) computeERank(ctx context.Context) ([]float64, error) {
	rd := pc.RankDistribution()
	n := pc.Len()
	var c float64 // E[|pw|] = Σ marginals
	for v := 0; v < n; v++ {
		c += pc.m[v][1]
	}
	out := make([]float64, n)
	delta := make([]bool, n)
	for v := 0; v < n; v++ {
		if err := pdb.CtxErr(ctx); err != nil {
			return nil, err
		}
		var er1 float64
		for j, p := range rd.Dist[v] {
			er1 += float64(j+1) * p
		}
		for u := range delta {
			delta[u] = u != v
		}
		sums := pc.c.partialSumDP(v, delta)
		var withT float64 // E[|pw|·δ(t∈pw)]
		for p, q := range sums {
			withT += float64(p+1) * q
		}
		out[v] = er1 + (c - withT)
	}
	return out, nil
}
