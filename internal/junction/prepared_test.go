package junction

import (
	"math"
	"math/cmplx"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/pdb"
)

var chainGrid = []complex128{
	complex(1e-9, 0), complex(0.2, 0), complex(0.5, 0), complex(0.9, 0),
	complex(0.95, 0), complex(1, 0), complex(0.7, 0.2),
}

// withWorkersJ forces real goroutine fan-out for the parallel batch paths on
// single-core hosts, so -race runs observe them concurrently.
func withWorkersJ(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// edgeChains returns adversarial chains: exact score ties, deterministic
// (0/1) transitions, an always-absent variable, and the minimum length.
func edgeChains(t *testing.T) map[string]*Chain {
	t.Helper()
	mk := func(scores []float64, pair [][2][2]float64) *Chain {
		c, err := NewChain(scores, pair)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	return map[string]*Chain{
		"ties": mk([]float64{5, 5, 5}, [][2][2]float64{
			{{0.2, 0.3}, {0.25, 0.25}},
			{{0.3, 0.15}, {0.35, 0.2}},
		}),
		"deterministic": mk([]float64{3, 1, 2}, [][2][2]float64{
			{{0, 0}, {0, 1}}, // Y_0 always 1, Y_1 always 1
			{{0, 0}, {1, 0}}, // Y_2 always 0
		}),
		"min-length": mk([]float64{2, 9}, [][2][2]float64{
			{{0.1, 0.4}, {0.2, 0.3}},
		}),
	}
}

func forEachSuiteChain(t *testing.T, fn func(name string, c *Chain)) {
	t.Helper()
	for name, c := range edgeChains(t) {
		fn(name, c)
	}
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fn("random", randChain(rng, 2+rng.Intn(10)))
	}
}

// The product-tree PRFe must match the Θ(n³) partial-sum DP reference on
// every chain and α.
func TestPreparedChainPRFeMatchesDP(t *testing.T) {
	forEachSuiteChain(t, func(name string, c *Chain) {
		pc := PrepareChain(c)
		for _, alpha := range chainGrid {
			want := PRFeChainDP(c, alpha)
			got := pc.PRFe(alpha)
			wrapper := PRFeChain(c, alpha)
			for v := range want {
				if cmplx.Abs(got[v]-want[v]) > 1e-10 || cmplx.Abs(wrapper[v]-want[v]) > 1e-10 {
					t.Fatalf("%s: alpha=%v v=%d: product-tree %v wrapper %v, DP %v",
						name, alpha, v, got[v], wrapper[v], want[v])
				}
			}
		}
	})
}

// The product-tree PRFe must match the possible-worlds definition
// Υ_α(t) = Σ_{pw ∋ t} Pr(pw)·α^{rank(t, pw)} exactly computed by
// enumeration — an oracle independent of both chain algorithms.
func TestPreparedChainPRFeMatchesEnumeration(t *testing.T) {
	forEachSuiteChain(t, func(name string, c *Chain) {
		net, err := c.Network()
		if err != nil {
			t.Fatal(err)
		}
		worlds, err := net.EnumerateWorlds()
		if err != nil {
			t.Fatal(err)
		}
		pc := PrepareChain(c)
		for _, alpha := range chainGrid[1:] {
			want := make([]complex128, c.Len())
			for _, w := range worlds {
				pw := alpha
				for _, id := range w.Present {
					want[id] += complex(w.Prob, 0) * pw
					pw *= alpha
				}
			}
			got := pc.PRFe(alpha)
			for v := range want {
				if cmplx.Abs(got[v]-want[v]) > 1e-9 {
					t.Fatalf("%s: alpha=%v v=%d: got %v want %v", name, alpha, v, got[v], want[v])
				}
			}
		}
	})
}

// Chain batch results are element-wise identical to serial calls.
func TestPreparedChainBatchMatchesSerial(t *testing.T) {
	withWorkersJ(t, 4)
	forEachSuiteChain(t, func(name string, c *Chain) {
		pc := PrepareChain(c)
		batch := pc.PRFeBatch(chainGrid)
		for a, alpha := range chainGrid {
			want := pc.PRFe(alpha)
			for v := range want {
				if batch[a][v] != want[v] {
					t.Fatalf("%s: alpha=%v v=%d: batch %v serial %v", name, alpha, v, batch[a][v], want[v])
				}
			}
		}
		alphas := []float64{0.2, 0.5, 0.9, 1}
		ranks := pc.RankPRFeBatch(alphas)
		for a, alpha := range alphas {
			want := pc.RankPRFe(alpha)
			for i := range want {
				if ranks[a][i] != want[i] {
					t.Fatalf("%s: alpha=%v: batch ranking %v serial %v", name, alpha, ranks[a], want)
				}
			}
		}
	})
}

// The prepared network must reproduce the reference kernels on the same
// calibrated tree bit for bit: rank distribution, PRFe fold, and expected
// ranks — including after the first (cached) query.
func TestPreparedNetworkMatchesJTreeReference(t *testing.T) {
	withWorkersJ(t, 4)
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		net := randNetwork(rng, 2+rng.Intn(6))
		pn, err := PrepareNetwork(net)
		if err != nil {
			t.Fatal(err)
		}
		jt, err := BuildJunctionTree(net)
		if err != nil {
			t.Fatal(err)
		}
		wantRD := jt.RankDistribution()
		for rep := 0; rep < 2; rep++ {
			gotRD := pn.RankDistribution()
			for v := 0; v < net.Len(); v++ {
				for j := range wantRD.Dist[v] {
					if gotRD.Dist[v][j] != wantRD.Dist[v][j] {
						t.Fatalf("seed=%d v=%d j=%d: rank dist %v want %v",
							seed, v, j, gotRD.Dist[v][j], wantRD.Dist[v][j])
					}
				}
			}
		}
		batch := pn.PRFeBatch(chainGrid)
		for a, alpha := range chainGrid {
			serial := pn.PRFe(alpha)
			for v := 0; v < net.Len(); v++ {
				want := prfeFold(wantRD.Dist[v], alpha)
				if serial[v] != want || batch[a][v] != want {
					t.Fatalf("seed=%d alpha=%v v=%d: serial %v batch %v want %v",
						seed, alpha, v, serial[v], batch[a][v], want)
				}
			}
		}
		wantER := jt.ExpectedRanks()
		gotER := pn.ERank()
		for v := range wantER {
			if gotER[v] != wantER[v] {
				t.Fatalf("seed=%d v=%d: ERank %v want %v", seed, v, gotER[v], wantER[v])
			}
		}
	}
}

// A wide clique whose potential zeroes most assignments: the up-front
// inconsistent-assignment skip must not change any probability. (The DP
// result is pinned against brute-force enumeration.)
func TestWideCliqueSparsePotentialMatchesEnumeration(t *testing.T) {
	const n = 6
	rng := rand.New(rand.NewSource(99))
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = rng.Float64() * 10
	}
	vars := []int{0, 1, 2, 3, 4, 5}
	table := make([]float64, 1<<n)
	for i := range table {
		// Keep ~1/4 of the assignments; zero the rest.
		if rng.Intn(4) == 0 {
			table[i] = rng.Float64()
		}
	}
	table[0] = 0.5 // ensure a positive entry regardless of the draw
	net, err := NewNetwork(scores, []Factor{{Vars: vars, Table: table}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RankDistribution(net)
	if err != nil {
		t.Fatal(err)
	}
	worlds, err := net.EnumerateWorlds()
	if err != nil {
		t.Fatal(err)
	}
	want := pdb.RankDistributionFromWorlds(worlds, n)
	for id := 0; id < n; id++ {
		for j := 1; j <= n; j++ {
			if diff := math.Abs(got.At(pdb.TupleID(id), j) - want.At(pdb.TupleID(id), j)); diff > 1e-9 {
				t.Fatalf("id=%d j=%d: got %v want %v", id, j, got.At(pdb.TupleID(id), j), want.At(pdb.TupleID(id), j))
			}
		}
	}
}
