package junction_test

import (
	"fmt"

	"repro/internal/junction"
)

// A PreparedNetwork triangulates and calibrates the junction tree once and
// caches the rank-distribution matrix, so every subsequent ranking function
// (PRF, PRFe at any α, expected ranks) reuses one Section 9.4 DP pass. The
// network here is a 3-variable chain with a strong positive coupling
// between the top-scored tuples.
func ExamplePrepareNetwork() {
	scores := []float64{30, 20, 10}
	factors := []junction.Factor{
		{Vars: []int{0, 1}, Table: []float64{0.2, 0.1, 0.1, 0.6}},
		{Vars: []int{1, 2}, Table: []float64{0.5, 0.5, 0.8, 0.2}},
	}
	net, _ := junction.NewNetwork(scores, factors)
	pn, _ := junction.PrepareNetwork(net)
	fmt.Println(pn.RankPRFe(0.95))
	fmt.Printf("Pr(r(t0)=1) = %.3f\n", pn.RankDistribution().At(0, 1))
	// Output:
	// [0 1 2]
	// Pr(r(t0)=1) = 0.625
}

// A PreparedChain evaluates PRFe on a Markov chain with the product-tree
// algorithm: O(n log n) for all n tuples at one α, versus Θ(n³) for the
// partial-sum DP it is certified against.
func ExamplePrepareChain() {
	scores := []float64{3, 1, 2}
	pair := [][2][2]float64{
		{{0.2, 0.3}, {0.1, 0.4}}, // Pr(Y_0, Y_1)
		{{0.2, 0.1}, {0.4, 0.3}}, // Pr(Y_1, Y_2)
	}
	chain, _ := junction.NewChain(scores, pair)
	pc := junction.PrepareChain(chain)
	vals := pc.PRFe(complex(0.5, 0))
	for v, u := range vals {
		fmt.Printf("t%d: %.4f\n", v, real(u))
	}
	// Output:
	// t0: 0.2500
	// t1: 0.1964
	// t2: 0.1488
}
