package junction

import (
	"errors"
	"fmt" //lint:allow kernelpurity fmt.Errorf/Sprintf on construction and validation paths only; no formatting in the per-tuple inner loops
	"math"

	"repro/internal/exact"
	"repro/internal/pdb"
)

// Chain is the Section 9.3 special case: a Markov chain Y_0 … Y_{n−1} of
// binary tuple-presence variables described by calibrated pairwise joints —
// exactly the junction tree of a chain-shaped Markov network, whose cliques
// are the consecutive pairs.
type Chain struct {
	scores []float64
	// pair[j][a][b] = Pr(Y_j = a ∧ Y_{j+1} = b).
	pair [][2][2]float64
}

// NewChain validates the pairwise joints: each table must be a distribution,
// and adjacent tables must agree on the shared marginal (calibration).
func NewChain(scores []float64, pair [][2][2]float64) (*Chain, error) {
	n := len(scores)
	if n < 2 {
		return nil, errors.New("junction: chain needs at least two variables")
	}
	if len(pair) != n-1 {
		return nil, fmt.Errorf("junction: %d variables need %d pairwise joints, got %d", n, n-1, len(pair))
	}
	for j, t := range pair {
		var sum float64
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				if t[a][b] < 0 || math.IsNaN(t[a][b]) {
					return nil, fmt.Errorf("junction: pair %d has invalid entry %v", j, t[a][b])
				}
				sum += t[a][b]
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			return nil, fmt.Errorf("junction: pair %d sums to %v, want 1", j, sum)
		}
	}
	for j := 0; j+1 < len(pair); j++ {
		for b := 0; b < 2; b++ {
			right := pair[j][0][b] + pair[j][1][b]
			left := pair[j+1][b][0] + pair[j+1][b][1]
			if math.Abs(right-left) > 1e-9 {
				return nil, fmt.Errorf("junction: pairs %d and %d disagree on Pr(Y_%d=%d): %v vs %v",
					j, j+1, j+1, b, right, left)
			}
		}
	}
	return &Chain{scores: scores, pair: pair}, nil
}

// Len returns the number of variables.
func (c *Chain) Len() int { return len(c.scores) }

// Score returns variable i's ranking score.
func (c *Chain) Score(i int) float64 { return c.scores[i] }

// PairJoint returns the calibrated pairwise joint Pr(Y_j = a ∧ Y_{j+1} = b)
// as validated by NewChain. The enumeration oracle rebuilds world
// probabilities from these joints from first principles, independent of
// every chain kernel.
func (c *Chain) PairJoint(j int) [2][2]float64 { return c.pair[j] }

// Network converts the chain into a general Markov network (first joint as a
// pairwise factor, then conditionals), for cross-checking against the
// generic junction-tree pipeline.
func (c *Chain) Network() (*Network, error) {
	n := len(c.scores)
	factors := make([]Factor, 0, n-1)
	// Factor over (Y_0, Y_1): the joint itself. Table bit 0 ↦ Y_0.
	t0 := c.pair[0]
	factors = append(factors, Factor{
		Vars:  []int{0, 1},
		Table: []float64{t0[0][0], t0[1][0], t0[0][1], t0[1][1]},
	})
	for j := 1; j < n-1; j++ {
		// Conditional Pr(Y_{j+1} | Y_j) from the calibrated joint.
		m := [2]float64{c.pair[j][0][0] + c.pair[j][0][1], c.pair[j][1][0] + c.pair[j][1][1]}
		tbl := make([]float64, 4)
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				if m[a] > 0 {
					tbl[a+2*b] = c.pair[j][a][b] / m[a]
				}
			}
		}
		factors = append(factors, Factor{Vars: []int{j, j + 1}, Table: tbl})
	}
	return NewNetwork(c.scores, factors)
}

// RankDistribution computes the positional probabilities with the direct
// Section 9.3 chain dynamic program: O(n²) per tuple, O(n³) total.
func (c *Chain) RankDistribution() *pdb.RankDistribution {
	n := len(c.scores)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Sort by non-increasing score, ties by index.
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if c.scores[b] > c.scores[a] || (exact.Same(c.scores[b], c.scores[a]) && b < a) {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}
	delta := make([]bool, n)
	dist := make([][]float64, n)
	for i, v := range order {
		for j := range delta {
			delta[j] = false
		}
		for j := 0; j < i; j++ {
			delta[order[j]] = true
		}
		sums := c.partialSumDP(v, delta)
		row := make([]float64, i+1)
		for p := 0; p < len(sums) && p <= i; p++ {
			row[p] = sums[p]
		}
		dist[v] = row
	}
	return &pdb.RankDistribution{Dist: dist}
}

// partialSumDP computes Pr(Y_target = 1 ∧ Σ_{δ} Y = p) along the chain.
func (c *Chain) partialSumDP(target int, delta []bool) []float64 {
	n := len(c.scores)
	// g[y] is the vector over p of Pr(Y_j = y ∧ partial sum ∧ evidence),
	// where the partial sum covers δ-variables with index < j.
	m0 := [2]float64{c.pair[0][0][0] + c.pair[0][0][1], c.pair[0][1][0] + c.pair[0][1][1]}
	g := [2][]float64{{m0[0]}, {m0[1]}}
	if target == 0 {
		g[0] = []float64{0}
	}
	for j := 0; j < n-1; j++ {
		mj := [2]float64{c.pair[j][0][0] + c.pair[j][0][1], c.pair[j][1][0] + c.pair[j][1][1]}
		var next [2][]float64
		next[0] = []float64{0}
		next[1] = []float64{0}
		for y := 0; y < 2; y++ {
			if mj[y] == 0 {
				continue
			}
			// Fold Y_j's δ contribution while transitioning out of it.
			shift := 0
			if delta[j] && y == 1 {
				shift = 1
			}
			for yn := 0; yn < 2; yn++ {
				cond := c.pair[j][y][yn] / mj[y]
				if cond == 0 {
					continue
				}
				src := g[y]
				dst := make([]float64, len(src)+shift)
				for p, x := range src {
					dst[p+shift] = x * cond
				}
				next[yn] = addVec(next[yn], dst)
			}
		}
		g = next
		if target == j+1 {
			g[0] = []float64{0}
		}
	}
	// Fold the last variable's δ contribution and sum out.
	var out []float64
	for y := 0; y < 2; y++ {
		shift := 0
		if delta[n-1] && y == 1 {
			shift = 1
		}
		v := make([]float64, len(g[y])+shift)
		for p, x := range g[y] {
			v[p+shift] = x
		}
		out = addVec(out, v)
	}
	return out
}

// PRFeChain evaluates Υ_α per tuple. One-shot prepare-then-call wrapper over
// the PreparedChain product-tree algorithm (O(n log n) per α); the former
// Θ(n³) rank-distribution backend is kept as PRFeChainDP, the cross-check
// oracle and pre-optimization benchmark arm.
func PRFeChain(c *Chain, alpha complex128) []complex128 {
	return PrepareChain(c).PRFe(alpha)
}

// PRFeChainDP evaluates Υ_α per tuple with the Section 9.3 partial-sum DP:
// the full rank distribution (Θ(n³)) folded with powers of α. Kept as the
// reference kernel PreparedChain.PRFe is certified against, and as the
// baseline arm of the correlated benchmark workloads.
func PRFeChainDP(c *Chain, alpha complex128) []complex128 {
	rd := c.RankDistribution()
	out := make([]complex128, c.Len())
	for v := 0; v < c.Len(); v++ {
		out[v] = prfeFold(rd.Dist[v], alpha)
	}
	return out
}
