package dftapprox

import (
	"math"
	"testing"
)

func TestStepApproximationQuality(t *testing.T) {
	const n = 200
	omega := Step(n)
	terms := Approximate(omega, n, DefaultOptions(30))
	if len(terms) == 0 || len(terms) > 30 {
		t.Fatalf("%d terms", len(terms))
	}
	// Inside the support (away from the discontinuity) the approximation
	// must be close to 1; beyond ~aN it must decay to ~0 (no periodic
	// wrap-around).
	// Pointwise wobble of an L-term Fourier fit near the plateau edges is
	// inherent (Gibbs); ranking quality is validated end-to-end by the
	// Figure 8 experiment. Here we only require the fit to track the step.
	approx := EvalSeries(terms, 6*n)
	for i := n / 8; i < n-n/8; i++ {
		if math.Abs(approx[i]-1) > 0.45 {
			t.Fatalf("approx(%d) = %v, want ≈1", i, approx[i])
		}
	}
	for i := 3 * n; i < 6*n; i++ {
		if math.Abs(approx[i]) > 0.1 {
			t.Fatalf("approx(%d) = %v, want ≈0 (periodicity must be damped)", i, approx[i])
		}
	}
}

func TestBareDFTIsPeriodicDampingFixesIt(t *testing.T) {
	const n = 100
	omega := Step(n)
	variants := VariantOptions(20)
	bare := Approximate(omega, n, variants[0])   // DFT
	damped := Approximate(omega, n, variants[1]) // DFT+DF
	// The bare DFT has period a·n = 200: the value at i and i+200 match.
	p0 := Eval(bare, 50)
	p1 := Eval(bare, 250)
	if math.Abs(p0-p1) > 1e-6 {
		t.Fatalf("bare DFT should be periodic: %v vs %v", p0, p1)
	}
	if math.Abs(p0-1) > 0.3 {
		t.Fatalf("bare DFT should roughly fit the support: %v", p0)
	}
	// Damping kills the second period.
	d1 := Eval(damped, 250)
	if math.Abs(d1) > 0.2 {
		t.Fatalf("damped approx at wrap-around = %v, want ≈0", d1)
	}
}

func TestInitialScalingRemovesDampingBias(t *testing.T) {
	const n = 400
	omega := Step(n)
	variants := VariantOptions(30)
	df := Approximate(omega, n, variants[1])   // DFT+DF
	dfis := Approximate(omega, n, variants[2]) // DFT+DF+IS
	// Without IS the damped approximation decays like η^i inside the
	// support; with IS it stays near 1. Compare at the right edge.
	at := n - n/10
	biased := Eval(df, at)
	unbiased := Eval(dfis, at)
	if !(math.Abs(unbiased-1) < math.Abs(biased-1)) {
		t.Fatalf("IS should reduce bias at i=%d: DF err %v vs DF+IS err %v",
			at, math.Abs(biased-1), math.Abs(unbiased-1))
	}
	if math.Abs(unbiased-1) > 0.15 {
		t.Fatalf("DF+IS value at %d = %v, want ≈1", at, unbiased)
	}
}

func TestExtendShiftImprovesLeftBoundary(t *testing.T) {
	const n = 400
	omega := Step(n)
	variants := VariantOptions(30)
	dfis := Approximate(omega, n, variants[2]) // DFT+DF+IS
	full := Approximate(omega, n, variants[3]) // DFT+DF+IS+ES
	// Average absolute error over the first few indices (the discontinuity
	// DFT struggles with).
	errAt := func(terms []Term) float64 {
		var e float64
		for i := 0; i < 8; i++ {
			e += math.Abs(Eval(terms, i) - 1)
		}
		return e / 8
	}
	if !(errAt(full) < errAt(dfis)) {
		t.Fatalf("ES should improve the boundary: full %v vs dfis %v", errAt(full), errAt(dfis))
	}
}

func TestSmoothEasierThanStep(t *testing.T) {
	const n, l = 300, 12
	stepTerms := Approximate(Step(n), n, DefaultOptions(l))
	smoothTerms := Approximate(Smooth(n), n, DefaultOptions(l))
	stepErr := MeanSquaredError(Step(n), stepTerms, n)
	smoothErr := MeanSquaredError(Smooth(n), smoothTerms, n)
	if !(smoothErr < stepErr) {
		t.Fatalf("smooth functions should be easier: smooth MSE %v vs step MSE %v", smoothErr, stepErr)
	}
}

func TestMoreTermsImproveApproximation(t *testing.T) {
	const n = 300
	omega := Step(n)
	prev := math.Inf(1)
	improved := 0
	for _, l := range []int{6, 14, 30, 60} {
		terms := Approximate(omega, n, DefaultOptions(l))
		err := MeanSquaredError(omega, terms, 2*n)
		if err < prev {
			improved++
		}
		prev = err
	}
	if improved < 2 {
		t.Fatalf("error should broadly decrease with more terms (improved %d/3 times)", improved)
	}
}

func TestApproximationIsRealValued(t *testing.T) {
	const n = 150
	terms := Approximate(Step(n), n, DefaultOptions(21))
	// Conjugate closure: the imaginary parts of the sum must cancel.
	pw := make([]complex128, len(terms))
	for j := range pw {
		pw[j] = 1
	}
	for i := 0; i < 2*n; i++ {
		var sum complex128
		for j, tm := range terms {
			sum += tm.U * pw[j]
			pw[j] *= tm.Alpha
		}
		if im := imag(sum); math.Abs(im) > 1e-8 {
			t.Fatalf("imaginary residue %v at i=%d", im, i)
		}
	}
}

func TestAlphaMagnitudesAtMostOne(t *testing.T) {
	terms := Approximate(Step(100), 100, DefaultOptions(15))
	for _, tm := range terms {
		if mag := math.Hypot(real(tm.Alpha), imag(tm.Alpha)); mag > 1+1e-12 {
			t.Fatalf("|α| = %v > 1", mag)
		}
	}
}

func TestEvalSeriesMatchesEval(t *testing.T) {
	terms := Approximate(LinearDecay(50), 50, DefaultOptions(11))
	series := EvalSeries(terms, 120)
	for i := 0; i < 120; i += 13 {
		if math.Abs(series[i]-Eval(terms, i)) > 1e-9 {
			t.Fatalf("series/eval mismatch at %d: %v vs %v", i, series[i], Eval(terms, i))
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	if terms := Approximate(Step(10), 0, DefaultOptions(5)); terms != nil {
		t.Fatalf("n=0 should yield no terms, got %v", terms)
	}
	if terms := Approximate(Step(10), 10, DefaultOptions(0)); terms != nil {
		t.Fatalf("L=0 should yield no terms, got %v", terms)
	}
	zero := func(int) float64 { return 0 }
	if terms := Approximate(zero, 10, DefaultOptions(5)); terms != nil {
		t.Fatalf("zero function should yield no terms, got %v", terms)
	}
}

func TestTermsForRankWeights(t *testing.T) {
	terms := []Term{{U: complex(2, 0), Alpha: complex(0.5, 0)}}
	rw := TermsForRankWeights(terms)
	// w[j-1] = 2·0.5^{j-1}; PRFe form: Υ uses α^j, so U must become 4.
	if rw[0].U != complex(4, 0) || rw[0].Alpha != complex(0.5, 0) {
		t.Fatalf("rank-weight terms = %+v", rw)
	}
}

func TestWeightFunctionLibrary(t *testing.T) {
	if Step(5)(4) != 1 || Step(5)(5) != 0 || Step(5)(-1) != 0 {
		t.Fatal("Step wrong")
	}
	if LinearDecay(5)(0) != 5 || LinearDecay(5)(4) != 1 || LinearDecay(5)(5) != 0 {
		t.Fatal("LinearDecay wrong")
	}
	s := Smooth(100)
	if s(0) <= 0 || s(100) != 0 {
		t.Fatal("Smooth boundary wrong")
	}
	// Smooth must have a small discrete derivative.
	for i := 1; i < 100; i++ {
		if math.Abs(s(i)-s(i-1)) > 0.1 {
			t.Fatalf("Smooth jumps at %d", i)
		}
	}
	ld := LogDiscount(100)
	if math.Abs(ld(0)-1) > 1e-12 {
		t.Fatalf("LogDiscount(0) = %v, want 1 (rank 1)", ld(0))
	}
	if !(ld(1) < ld(0) && ld(50) < ld(1)) {
		t.Fatal("LogDiscount not decreasing")
	}
}

func TestMaxAbsError(t *testing.T) {
	terms := Approximate(Step(100), 100, DefaultOptions(40))
	if e := MaxAbsError(Step(100), terms, 90); e > 0.5 {
		t.Fatalf("max error %v unexpectedly large", e)
	}
}
