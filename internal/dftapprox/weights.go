package dftapprox

import "math"

// Standard weight functions from the paper's figures. All take the 0-based
// sequence index i (the weight of rank j is the function at i = j−1) and are
// (near) zero beyond their support N, as the approximation algorithm
// assumes.

// Step returns the PT(h)-style step function: 1 on [0, n), 0 beyond —
// Figure 4's and Figure 5(i)'s target.
func Step(n int) func(int) float64 {
	return func(i int) float64 {
		if i >= 0 && i < n {
			return 1
		}
		return 0
	}
}

// LinearDecay returns ω(i) = n−i for i < n, 0 beyond (Figure 5(ii)).
func LinearDecay(n int) func(int) float64 {
	return func(i int) float64 {
		if i >= 0 && i < n {
			return float64(n - i)
		}
		return 0
	}
}

// Smooth returns a fixed smooth function with small bounded first
// derivative, the stand-in for Figure 5(iii)/Figure 8's unspecified "sfunc":
// an exponentially damped cosine mixture, positive on [0, n) and ≈0 beyond.
func Smooth(n int) func(int) float64 {
	return func(i int) float64 {
		if i < 0 || i >= n {
			return 0
		}
		x := float64(i) / float64(n)
		return math.Exp(-3*x) * (0.6 + 0.4*math.Cos(5*math.Pi*x)) * (1 - x)
	}
}

// LogDiscount returns the information-retrieval discount factor
// ω(i) = ln 2 / ln(i+2) (Section 3.3; rank j=i+1 gives ln2/ln(j+1)),
// truncated to 0 beyond n.
func LogDiscount(n int) func(int) float64 {
	return func(i int) float64 {
		if i < 0 || i >= n {
			return 0
		}
		return math.Ln2 / math.Log(float64(i)+2)
	}
}
