// Package dftapprox implements the Section 5.1 algorithm for approximating a
// PRFω weight function by a short linear combination of complex
// exponentials,
//
//	ω(i) ≈ Σ_{l=1..L} u_l · α_l^i ,
//
// which turns one O(n·h) PRFω evaluation into L O(n) PRFe evaluations.
//
// The pipeline starts from a plain discrete Fourier transform and adds the
// paper's three adaptations, each independently switchable so the Figure 4
// ablation can be reproduced:
//
//   - DF (damping factor): multiply by η^i with B·η^{aN} ≤ ε, killing the
//     periodic wrap-around of the bare DFT;
//   - IS (initial scaling): run the DFT on η^{-i}·ω(i) so the damping does
//     not bias the approximation downward on [0, N);
//   - ES (extend and shift): extrapolate ω to the left of 0 and shift right,
//     moving the discontinuity at i=0 away from the region that matters.
package dftapprox

import (
	"math"
	"math/cmplx"
	"sort"

	"repro/internal/exact"
	"repro/internal/fft"
)

// Term is one exponential u·αⁱ of the approximation.
type Term struct {
	// U is the coefficient.
	U complex128
	// Alpha is the base; |Alpha| = η ≤ 1.
	Alpha complex128
}

// Options configures Approximate. The zero value is not useful; start from
// DefaultOptions.
type Options struct {
	// L is the number of exponential terms (DFT coefficients kept).
	L int
	// A is the domain multiplier: the DFT runs on [0, A·N).
	A int
	// B is the extension fraction for ES: ω is extrapolated over [−B·N, 0).
	B float64
	// Epsilon is the damping target: maxω·η^{A·N} ≤ Epsilon.
	Epsilon float64
	// Damping enables the DF step.
	Damping bool
	// InitialScaling enables the IS step (requires Damping).
	InitialScaling bool
	// ExtendShift enables the ES step.
	ExtendShift bool
}

// DefaultOptions returns the recommended configuration: all three
// adaptations on, a=2, b=0.1, ε=1e−3.
//
// ε trades off two error sources. The damping leaks B·ε of weight past the
// wrap-around at a·N (the paper's periodicity problem), arguing for small ε;
// but initial scaling blows the discontinuity at N up to height η^{−N} =
// (B/ε)^{1/a}, whose Gibbs ringing pollutes the whole domain, arguing for
// large ε. ε=1e−3 keeps both below ~1% for a=2; the paper's illustrative
// 1e−5 makes the ringing the dominant error at small L.
func DefaultOptions(l int) Options {
	return Options{L: l, A: 2, B: 0.1, Epsilon: 1e-3, Damping: true, InitialScaling: true, ExtendShift: true}
}

// VariantOptions returns the four Figure 4 ablation settings in order:
// DFT, DFT+DF, DFT+DF+IS, DFT+DF+IS+ES.
func VariantOptions(l int) []Options {
	base := Options{L: l, A: 2, B: 0.1, Epsilon: 1e-3}
	df := base
	df.Damping = true
	dfis := df
	dfis.InitialScaling = true
	full := dfis
	full.ExtendShift = true
	return []Options{base, df, dfis, full}
}

// VariantNames matches VariantOptions for reporting.
var VariantNames = []string{"DFT", "DFT+DF", "DFT+DF+IS", "DFT+DF+IS+ES"}

// Approximate builds the exponential-sum approximation of ω over the
// support [0, N): omega(i) is sampled at integers and assumed (near) zero
// for i ≥ N. The returned terms are conjugate-closed so Eval's real part is
// the approximation.
func Approximate(omega func(i int) float64, n int, opts Options) []Term {
	if n <= 0 || opts.L <= 0 {
		return nil
	}
	if opts.A < 1 {
		opts.A = 2
	}
	if opts.Epsilon <= 0 {
		opts.Epsilon = 1e-5
	}

	shift := 0
	if opts.ExtendShift {
		shift = int(opts.B * float64(n))
		if shift < 1 {
			shift = 1
		}
	}
	m := opts.A*n + shift // DFT domain size

	// Bound B on |ω| for the damping target.
	bound := 0.0
	for i := 0; i < n; i++ {
		if a := math.Abs(omega(i)); a > bound {
			bound = a
		}
	}
	if bound == 0 {
		return nil
	}

	eta := 1.0
	if opts.Damping {
		// B·η^{aN} ≤ ε ⇒ η = (ε/B)^{1/(aN)}.
		eta = math.Pow(opts.Epsilon/bound, 1/float64(opts.A*n))
		if eta > 1 {
			eta = 1
		}
	}

	// Build the (extended, shifted, initially-scaled) sample sequence.
	seq := make([]complex128, m)
	for i := 0; i < m; i++ {
		j := i - shift // position in the original domain
		var v float64
		switch {
		case j >= 0:
			v = omega(j)
		default:
			// ES extrapolation: ramp smoothly from 0 up to ω(0) over the
			// extension, making the periodic sequence continuous both at
			// the i=0 boundary and at the wrap-around (the bare flat
			// extension would leave a height-ω(0) jump at the wrap, whose
			// ringing is exactly the boundary error ES is meant to kill).
			frac := float64(i+1) / float64(shift+1)
			v = omega(0) * 0.5 * (1 - math.Cos(math.Pi*frac))
		}
		if opts.InitialScaling && eta < 1 {
			v *= math.Pow(eta, -float64(i))
		}
		seq[i] = complex(v, 0)
	}

	psi := fft.Forward(seq)

	// Keep the L largest coefficients, conjugate-closed so the result stays
	// real: the partner of index k is m−k (k=0 and k=m/2 are self-paired).
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ma, mb := cmplx.Abs(psi[order[a]]), cmplx.Abs(psi[order[b]])
		if !exact.Same(ma, mb) {
			return ma > mb
		}
		return order[a] < order[b]
	})
	chosen := make(map[int]bool, opts.L)
	for _, k := range order {
		if len(chosen) >= opts.L {
			break
		}
		if chosen[k] {
			continue
		}
		partner := (m - k) % m
		if partner == k {
			chosen[k] = true
			continue
		}
		if len(chosen)+2 > opts.L {
			continue // a pair no longer fits; try smaller (self-paired) ones
		}
		chosen[k] = true
		chosen[partner] = true
	}

	// Assemble terms: ω(i) ≈ Σ_k (ψ(k)/m)·η^{i+shift}·e^{2πik(i+shift)/m}
	//               = Σ_k u_k·α_k^i with α_k = η·e^{2πik/m}.
	terms := make([]Term, 0, len(chosen))
	ks := make([]int, 0, len(chosen))
	for k := range chosen {
		//lint:allow kernelpurity the collected keys are sorted immediately below
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		alpha := complex(eta, 0) * cmplx.Exp(complex(0, 2*math.Pi*float64(k)/float64(m)))
		u := psi[k] / complex(float64(m), 0)
		if shift > 0 {
			// ω(j) = ω̄(j+shift) ≈ Σ (ψ(k)/m)·α^{j+shift}: fold α^shift
			// into the coefficient. (With IS the DFT ran on η^{-i}·ω̄ and
			// the η^i re-damping is already part of α^i, so the same
			// formula covers every variant.)
			u *= cmplx.Pow(alpha, complex(float64(shift), 0))
		}
		terms = append(terms, Term{U: u, Alpha: alpha})
	}
	return terms
}

// Eval returns the real part of Σ u·αⁱ at integer i ≥ 0.
func Eval(terms []Term, i int) float64 {
	var sum complex128
	for _, t := range terms {
		sum += t.U * cmplx.Pow(t.Alpha, complex(float64(i), 0))
	}
	return real(sum)
}

// EvalSeries evaluates the approximation at 0..n−1 with incremental powers
// (O(L·n) without cmplx.Pow per point).
func EvalSeries(terms []Term, n int) []float64 {
	out := make([]float64, n)
	for _, t := range terms {
		pw := complex(1, 0)
		for i := 0; i < n; i++ {
			out[i] += real(t.U * pw)
			pw *= t.Alpha
		}
	}
	return out
}

// MaxAbsError returns max_{0≤i<n} |ω(i) − Eval(terms, i)|.
func MaxAbsError(omega func(i int) float64, terms []Term, n int) float64 {
	approx := EvalSeries(terms, n)
	var worst float64
	for i := 0; i < n; i++ {
		if d := math.Abs(omega(i) - approx[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// MeanSquaredError returns the MSE of the approximation over [0, n).
func MeanSquaredError(omega func(i int) float64, terms []Term, n int) float64 {
	approx := EvalSeries(terms, n)
	var sum float64
	for i := 0; i < n; i++ {
		d := omega(i) - approx[i]
		sum += d * d
	}
	return sum / float64(n)
}

// TermsForRankWeights converts sequence terms (ω(i) for 0-based i, i.e. the
// weight of rank i+1 is ω(i)) into the PRFe form: with w[j−1] = Σ u·α^{j−1},
// Υ = Σ_j w[j−1]·Pr(r=j) = Σ_l (u_l/α_l)·Υ_{α_l}, so each coefficient is
// divided by its base.
func TermsForRankWeights(terms []Term) []Term {
	out := make([]Term, len(terms))
	for i, t := range terms {
		out[i] = Term{U: t.U / t.Alpha, Alpha: t.Alpha}
	}
	return out
}
