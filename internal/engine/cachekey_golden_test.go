package engine

// The cache-key compatibility contract, pinned to a golden file: the key
// encoding is persisted state in spirit (warm caches, the serving layer's
// byte keys compose it), so any drift — a re-tagged field, a metric byte
// collision, an accidental re-numbering — must fail a test instead of
// silently aliasing entries. Regenerate with:
//
//	go test ./internal/engine -run TestCacheKeyGolden -update-cachekeys
//
// and review the diff like a wire-format change.

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
)

var updateCacheKeys = flag.Bool("update-cachekeys", false, "rewrite testdata/cachekeys.golden")

// goldenQueries is the canonical matrix: every cacheable metric at every
// output form with representative parameters, plus the Parallelism knob and
// grid/top-k variants. Names are stable identifiers, one golden line each.
func goldenQueries() []struct {
	name string
	q    Query
} {
	terms := []core.ExpTerm{
		{U: complex(0.75, 0), Alpha: complex(0.9, 0)},
		{U: complex(-0.25, 0.5), Alpha: complex(0.4, 0.1)},
	}
	return []struct {
		name string
		q    Query
	}{
		{"prfe/values", Query{Metric: MetricPRFe, Alpha: 0.85}},
		{"prfe/ranking", Query{Metric: MetricPRFe, Alpha: 0.85, Output: OutputRanking}},
		{"prfe/topk", Query{Metric: MetricPRFe, Alpha: 0.85, Output: OutputTopK, K: 10}},
		{"prfe/grid", Query{Metric: MetricPRFe, Alphas: []float64{0.25, 0.5, 0.75}}},
		{"prfe/parallel", Query{Metric: MetricPRFe, Alpha: 0.85, Parallelism: 4}},
		{"prfomega/values", Query{Metric: MetricPRFOmega, Weights: []float64{3, 2, 1}}},
		{"prfomega/ranking", Query{Metric: MetricPRFOmega, Weights: []float64{3, 2, 1}, Output: OutputRanking}},
		{"pth/values", Query{Metric: MetricPTh, H: 7}},
		{"pth/topk", Query{Metric: MetricPTh, H: 7, Output: OutputTopK, K: 3}},
		{"erank/values", Query{Metric: MetricERank}},
		{"erank/ranking", Query{Metric: MetricERank, Output: OutputRanking}},
		{"prfecombo/values", Query{Metric: MetricPRFeCombo, Terms: terms}},
		{"prfecombo/ranking", Query{Metric: MetricPRFeCombo, Terms: terms, Output: OutputRanking}},
		{"globaltopk/values", Query{Metric: MetricGlobalTopk, K: 5}},
		{"globaltopk/values-k7", Query{Metric: MetricGlobalTopk, K: 7}},
		{"globaltopk/ranking", Query{Metric: MetricGlobalTopk, K: 5, Output: OutputRanking}},
		{"globaltopk/topk", Query{Metric: MetricGlobalTopk, K: 5, Output: OutputTopK}},
		{"expectedrank/values", Query{Metric: MetricExpectedRank}},
		{"expectedrank/ranking", Query{Metric: MetricExpectedRank, Output: OutputRanking}},
		{"expectedrank/topk", Query{Metric: MetricExpectedRank, Output: OutputTopK, K: 4}},
		{"expectedrank/parallel", Query{Metric: MetricExpectedRank, Parallelism: 4}},
		{"medianrank/values", Query{Metric: MetricMedianRank}},
		{"medianrank/ranking", Query{Metric: MetricMedianRank, Output: OutputRanking}},
		{"medianrank/topk", Query{Metric: MetricMedianRank, Output: OutputTopK, K: 4}},
	}
}

func TestCacheKeyGolden(t *testing.T) {
	var b strings.Builder
	seen := map[string]string{}
	for _, gq := range goldenQueries() {
		key, ok := gq.q.CacheKey()
		if !ok {
			t.Fatalf("%s: unexpectedly uncacheable", gq.name)
		}
		if prev, dup := seen[key]; dup {
			t.Fatalf("%s and %s collide on cache key %q", gq.name, prev, key)
		}
		seen[key] = gq.name
		fmt.Fprintf(&b, "%s\t%s\n", gq.name, key)
	}
	path := filepath.Join("testdata", "cachekeys.golden")
	if *updateCacheKeys {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-cachekeys to generate): %v", err)
	}
	if got := b.String(); got != string(want) {
		t.Errorf("cache keys drifted from %s — if intentional, regenerate with -update-cachekeys and treat as a wire-format change.\n got:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// TestCachedEngineSemanticsRoundTrip certifies the new metrics across the
// cache: for every metric × output × Parallelism the cached answer (miss
// and hit) equals the uncached one, and mutating a returned result never
// corrupts later hits.
func TestCachedEngineSemanticsRoundTrip(t *testing.T) {
	ctx := context.Background()
	e := New(core.Prepare(datagen.IIPLike(64, 17)))
	ce := NewCached(e, 0)
	rng := rand.New(rand.NewSource(99))
	queries := []Query{
		{Metric: MetricGlobalTopk, K: 5},
		{Metric: MetricGlobalTopk, K: 5, Output: OutputRanking},
		{Metric: MetricGlobalTopk, K: 5, Output: OutputTopK},
		{Metric: MetricExpectedRank},
		{Metric: MetricExpectedRank, Output: OutputRanking},
		{Metric: MetricExpectedRank, Output: OutputTopK, K: 6},
		{Metric: MetricMedianRank},
		{Metric: MetricMedianRank, Output: OutputRanking},
		{Metric: MetricMedianRank, Output: OutputTopK, K: 6},
	}
	for _, base := range queries {
		for _, p := range []int{0, 1, 4} {
			q := base
			q.Parallelism = p
			want, err := e.Rank(ctx, q)
			if err != nil {
				t.Fatalf("%v/%v P=%d uncached: %v", q.Metric, q.Output, p, err)
			}
			miss, err := ce.Rank(ctx, q)
			if err != nil {
				t.Fatalf("%v/%v P=%d miss: %v", q.Metric, q.Output, p, err)
			}
			if !reflect.DeepEqual(miss, want) {
				t.Fatalf("%v/%v P=%d: cache miss differs from uncached", q.Metric, q.Output, p)
			}
			// Vandalize the returned copy: later hits must be unaffected.
			for i := range miss.Values {
				miss.Values[i] = rng.Float64()
			}
			for i := range miss.Ranking {
				miss.Ranking[i] = 0
			}
			hit, err := ce.Rank(ctx, q)
			if err != nil {
				t.Fatalf("%v/%v P=%d hit: %v", q.Metric, q.Output, p, err)
			}
			if !reflect.DeepEqual(hit, want) {
				t.Fatalf("%v/%v P=%d: cache hit differs from uncached (mutation leaked)", q.Metric, q.Output, p)
			}
		}
	}
	if st := ce.Stats(); st.Hits == 0 || st.Misses == 0 {
		t.Errorf("round trip never exercised the cache: %+v", st)
	}
}
