package engine

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/andxor"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/junction"
	"repro/internal/pdb"
)

// Compile-time proof that all four prepared views satisfy Ranker.
var (
	_ Ranker = (*core.Prepared)(nil)
	_ Ranker = (*andxor.PreparedTree)(nil)
	_ Ranker = (*junction.PreparedNetwork)(nil)
	_ Ranker = (*junction.PreparedChain)(nil)
)

func testEngine(t *testing.T) *Engine {
	t.Helper()
	return New(core.Prepare(datagen.IIPLike(64, 7)))
}

func TestQueryValidation(t *testing.T) {
	e := testEngine(t)
	ctx := context.Background()
	cases := []struct {
		name string
		q    Query
		want string
	}{
		{"no metric", Query{}, "no Metric"},
		{"nan alpha", Query{Metric: MetricPRFe, Alpha: math.NaN(), Output: OutputRanking}, "non-finite"},
		{"nan weight", Query{Metric: MetricPRFOmega, Weights: []float64{1, math.NaN()}}, "NaN"},
		{"negative depth", Query{Metric: MetricPTh, H: -3}, "negative"},
		{"nil omega", Query{Metric: MetricPRF}, "Omega"},
		{"empty combo", Query{Metric: MetricPRFeCombo}, "no terms"},
		{"bad topk", Query{Metric: MetricPRFe, Alpha: 0.5, Output: OutputTopK, K: -1}, "negative"},
		{"unknown metric", Query{Metric: Metric(99)}, "unknown metric"},
		{"grid on Rank", Query{Metric: MetricPRFe, Alphas: []float64{0.1, 0.9}, Output: OutputRanking}, "use RankBatch"},
	}
	for _, tc := range cases {
		if _, err := e.Rank(ctx, tc.q); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	if _, err := e.RankBatch(ctx, Query{Metric: MetricERank}); err == nil {
		t.Error("RankBatch on a grid-less metric must error")
	}
	if _, err := e.RankBatch(ctx, Query{Metric: MetricPRFe}); err == nil {
		t.Error("RankBatch without a grid must error")
	}
	var nilEngine *Engine
	if _, err := nilEngine.Rank(ctx, Query{Metric: MetricERank}); err == nil {
		t.Error("nil engine must error, not panic")
	}
}

func TestRankShapes(t *testing.T) {
	e := testEngine(t)
	ctx := context.Background()
	n := e.Ranker().Len()

	res, err := e.Rank(ctx, Query{Metric: MetricPRFe, Alpha: 0.9})
	if err != nil || len(res.Complex) != n || res.Ranking != nil || res.Values != nil {
		t.Fatalf("PRFe values: res=%+v err=%v", res, err)
	}
	res, err = e.Rank(ctx, Query{Metric: MetricPRFe, Alpha: 0.9, Output: OutputTopK, K: 5})
	if err != nil || len(res.Ranking) != 5 {
		t.Fatalf("PRFe topk: res=%+v err=%v", res, err)
	}
	res, err = e.Rank(ctx, Query{Metric: MetricERank, Output: OutputRanking})
	if err != nil || len(res.Ranking) != n {
		t.Fatalf("ERank ranking: res=%+v err=%v", res, err)
	}

	grid := []float64{0.1, 0.5, 0.9}
	batch, err := e.RankBatch(ctx, Query{Metric: MetricPRFe, Alphas: grid, Output: OutputRanking})
	if err != nil || len(batch) != 3 {
		t.Fatalf("batch: len=%d err=%v", len(batch), err)
	}
	for a, r := range batch {
		if r.Alpha != grid[a] || len(r.Ranking) != n {
			t.Fatalf("batch[%d]: alpha=%v len=%d", a, r.Alpha, len(r.Ranking))
		}
	}
}

// TestCancellationAllBackends: a pre-canceled context must surface as an
// error from every backend and every query shape, with no partial answer.
func TestCancellationAllBackends(t *testing.T) {
	d := datagen.IIPLike(48, 3)
	tree, err := datagen.SynXOR(48, 3)
	if err != nil {
		t.Fatal(err)
	}
	chain := datagen.MarkovChainLike(24, 3)
	net, err := chain.Network()
	if err != nil {
		t.Fatal(err)
	}
	pn, err := junction.PrepareNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	backends := map[string]Ranker{
		"independent": core.Prepare(d),
		"tree":        andxor.PrepareTree(tree),
		"network":     pn,
		"chain":       junction.PrepareChain(chain),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	grid := []float64{0.1, 0.2, 0.5, 0.8, 1.0}
	for name, r := range backends {
		e := New(r)
		if _, err := e.Rank(ctx, Query{Metric: MetricPRFe, Alpha: 0.5, Output: OutputRanking}); err == nil {
			t.Errorf("%s: Rank ignored canceled context", name)
		}
		if _, err := e.Rank(ctx, Query{Metric: MetricERank}); err == nil {
			t.Errorf("%s: ERank ignored canceled context", name)
		}
		if _, err := e.RankBatch(ctx, Query{Metric: MetricPRFe, Alphas: grid, Output: OutputRanking}); err == nil {
			t.Errorf("%s: RankBatch ignored canceled context", name)
		}
		if _, err := e.RankBatch(ctx, Query{Metric: MetricPRFe, Alphas: grid, Output: OutputTopK, K: 3}); err == nil {
			t.Errorf("%s: top-k RankBatch ignored canceled context", name)
		}
	}
}

// TestERankRankingAscending: E-Rank ranks lower-is-better; the engine must
// return the tuple with the smallest expected rank first.
func TestERankRankingAscending(t *testing.T) {
	d := pdb.MustDataset([]float64{10, 20, 30}, []float64{0.9, 0.1, 0.2})
	e := New(core.Prepare(d))
	res, err := e.Rank(context.Background(), Query{Metric: MetricERank, Output: OutputRanking})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := e.Rank(context.Background(), Query{Metric: MetricERank})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Ranking); i++ {
		if vals.Values[res.Ranking[i-1]] > vals.Values[res.Ranking[i]] {
			t.Fatalf("E-Rank ranking not ascending in expected rank: %v with values %v", res.Ranking, vals.Values)
		}
	}
}
