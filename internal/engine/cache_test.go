package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/andxor"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/junction"
	"repro/internal/pdb"
)

// cacheTestQueries covers every cacheable metric in every output form, plus
// batch grids — the workload the bit-for-bit certification runs over.
func cacheTestQueries() []Query {
	terms := []core.ExpTerm{
		{U: complex(1, 0), Alpha: complex(0.9, 0)},
		{U: complex(-0.5, 0.25), Alpha: complex(0.5, 0.1)},
	}
	return []Query{
		{Metric: MetricPRFe, Alpha: 0.7},
		{Metric: MetricPRFe, Alpha: 0.7, Output: OutputRanking},
		{Metric: MetricPRFe, Alpha: 0.7, Output: OutputTopK, K: 5},
		{Metric: MetricPRFOmega, Weights: []float64{3, 2, 1}},
		{Metric: MetricPRFOmega, Weights: []float64{3, 2, 1}, Output: OutputRanking},
		{Metric: MetricPTh, H: 4},
		{Metric: MetricPTh, H: 4, Output: OutputTopK, K: 3},
		{Metric: MetricERank},
		{Metric: MetricERank, Output: OutputRanking},
		{Metric: MetricPRFeCombo, Terms: terms},
		{Metric: MetricPRFeCombo, Terms: terms, Output: OutputRanking},
	}
}

func cacheTestGrids() []Query {
	grid := []float64{0.2, 0.5, 0.8}
	return []Query{
		{Metric: MetricPRFe, Alphas: grid},
		{Metric: MetricPRFe, Alphas: grid, Output: OutputRanking},
		{Metric: MetricPRFe, Alphas: grid, Output: OutputTopK, K: 4},
	}
}

// cacheBackends returns one engine per correlation model, small enough that
// the full query matrix stays fast.
func cacheBackends(t *testing.T) map[string]*Engine {
	t.Helper()
	tree, err := datagen.SynXOR(48, 11)
	if err != nil {
		t.Fatal(err)
	}
	chain := datagen.MarkovChainLike(24, 11)
	net, err := chain.Network()
	if err != nil {
		t.Fatal(err)
	}
	pn, err := junction.PrepareNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Engine{
		"independent": New(core.Prepare(datagen.IIPLike(64, 11))),
		"tree":        New(andxor.PrepareTree(tree)),
		"chain":       New(junction.PrepareChain(chain)),
		"network":     New(pn),
	}
}

// TestCachedEngineBitForBit certifies cache ≡ uncached on every backend,
// metric and output form: the first (filling) call, and a second (hit)
// call, both DeepEqual the uncached engine's answer.
func TestCachedEngineBitForBit(t *testing.T) {
	ctx := context.Background()
	for name, e := range cacheBackends(t) {
		t.Run(name, func(t *testing.T) {
			ce := NewCached(e, 0)
			for i, q := range cacheTestQueries() {
				want, err := e.Rank(ctx, q)
				if err != nil {
					t.Fatalf("query %d (%v/%v): uncached: %v", i, q.Metric, q.Output, err)
				}
				first, err := ce.Rank(ctx, q)
				if err != nil {
					t.Fatalf("query %d: cached fill: %v", i, err)
				}
				hit, err := ce.Rank(ctx, q)
				if err != nil {
					t.Fatalf("query %d: cached hit: %v", i, err)
				}
				if !reflect.DeepEqual(first, want) || !reflect.DeepEqual(hit, want) {
					t.Errorf("query %d (%v/%v): cached result differs from uncached", i, q.Metric, q.Output)
				}
				// Hits are deep copies: equal bit-for-bit, never aliased.
				if hit == first {
					t.Errorf("query %d: hit aliases the cached result", i)
				}
			}
			for i, q := range cacheTestGrids() {
				want, err := e.RankBatch(ctx, q)
				if err != nil {
					t.Fatalf("grid %d: uncached: %v", i, err)
				}
				first, err := ce.RankBatch(ctx, q)
				if err != nil {
					t.Fatalf("grid %d: cached fill: %v", i, err)
				}
				hit, err := ce.RankBatch(ctx, q)
				if err != nil {
					t.Fatalf("grid %d: cached hit: %v", i, err)
				}
				if !reflect.DeepEqual(first, want) || !reflect.DeepEqual(hit, want) {
					t.Errorf("grid %d (%v): cached batch differs from uncached", i, q.Output)
				}
				if len(hit) > 0 && &hit[0] == &first[0] {
					t.Errorf("grid %d: batch hit aliases the cached results", i)
				}
			}
			st := ce.Stats()
			if st.Hits == 0 || st.Misses == 0 || st.Entries == 0 {
				t.Errorf("stats not counting: %+v", st)
			}
			// Every query ran twice: fill (miss) then hit — the hit counter is
			// how the "hit, not re-evaluated" property is observed now that
			// hits return copies instead of aliases.
			wantLookups := int64(len(cacheTestQueries()) + len(cacheTestGrids()))
			if st.Hits != wantLookups || st.Misses != wantLookups {
				t.Errorf("hits/misses = %d/%d, want %d/%d", st.Hits, st.Misses, wantLookups, wantLookups)
			}
		})
	}
}

// TestCacheKeyCanonical checks that the key separates every query that can
// answer differently and identifies the ones that cannot.
func TestCacheKeyCanonical(t *testing.T) {
	distinct := append(cacheTestQueries(), cacheTestGrids()...)
	distinct = append(distinct,
		Query{Metric: MetricPRFe, Alpha: 0.7000001},
		Query{Metric: MetricPRFe, Alpha: 0.7, Output: OutputTopK, K: 6},
		Query{Metric: MetricPTh, H: 5},
		Query{Metric: MetricPRFOmega, Weights: []float64{3, 2, 1, 0}},
		Query{Metric: MetricPRFe, Alphas: []float64{0.2, 0.5, 0.80000001}},
	)
	seen := map[string]int{}
	for i, q := range distinct {
		key, ok := q.CacheKey()
		if !ok {
			t.Fatalf("query %d unexpectedly uncacheable", i)
		}
		if j, dup := seen[key]; dup {
			t.Errorf("queries %d and %d collide on key %q", i, j, key)
		}
		seen[key] = i
	}

	// Same query → same key.
	a := Query{Metric: MetricPRFe, Alpha: 0.3, Output: OutputRanking, K: 0}
	b := Query{Metric: MetricPRFe, Alpha: 0.3, Output: OutputRanking, K: 99}
	ka, _ := a.CacheKey()
	kb, _ := b.CacheKey()
	if ka != kb {
		t.Errorf("K must not split non-top-k queries: %q vs %q", ka, kb)
	}

	// Uncacheable forms.
	if _, ok := (Query{}).CacheKey(); ok {
		t.Error("metric-less query must be uncacheable")
	}
	if _, ok := (Query{Metric: MetricPRF, Omega: func(pdb.Tuple, int) float64 { return 1 }}).CacheKey(); ok {
		t.Error("MetricPRF must be uncacheable")
	}
}

// TestCachedEngineUncacheablePassThrough runs a MetricPRF query through the
// cache wrapper: it must answer correctly without populating the cache.
func TestCachedEngineUncacheablePassThrough(t *testing.T) {
	ctx := context.Background()
	e := New(core.Prepare(datagen.IIPLike(32, 3)))
	ce := NewCached(e, 0)
	q := Query{Metric: MetricPRF, Omega: func(_ pdb.Tuple, rank int) float64 { return 1.0 / float64(rank) }}
	want, err := e.Rank(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ce.Rank(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("pass-through result differs")
	}
	if st := ce.Stats(); st.Entries != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Errorf("uncacheable query touched the cache: %+v", st)
	}
}

// TestCachedEngineDisabled: a negative capacity disables caching (the same
// sentinel the serving layer uses) — answers stay correct, nothing is
// stored or counted.
func TestCachedEngineDisabled(t *testing.T) {
	ctx := context.Background()
	e := New(core.Prepare(datagen.IIPLike(32, 3)))
	ce := NewCached(e, -1)
	q := Query{Metric: MetricPRFe, Alpha: 0.9, Output: OutputTopK, K: 5}
	want, err := e.Rank(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ce.Rank(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ce.Rank(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, want) || !reflect.DeepEqual(b, want) {
		t.Error("disabled cache changed answers")
	}
	if a == b {
		t.Error("disabled cache memoized anyway")
	}
	if _, err := ce.RankBatch(ctx, Query{Metric: MetricPRFe, Alphas: []float64{0.2, 0.6}}); err != nil {
		t.Fatal(err)
	}
	if st := ce.Stats(); st != (CacheStats{}) {
		t.Errorf("disabled cache reported stats: %+v", st)
	}
}

// TestCacheErrorsNotCached: failing queries must not populate the cache —
// neither validation errors nor context cancellation.
func TestCacheErrorsNotCached(t *testing.T) {
	e := New(core.Prepare(datagen.IIPLike(32, 3)))
	ce := NewCached(e, 0)
	bad := Query{Metric: MetricPTh, H: -1}
	for i := 0; i < 2; i++ {
		if _, err := ce.Rank(context.Background(), bad); err == nil {
			t.Fatal("invalid query must error")
		}
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ce.Rank(canceled, Query{Metric: MetricPRFe, Alpha: 0.5}); err == nil {
		t.Fatal("canceled context must error")
	}
	st := ce.Stats()
	if st.Entries != 0 {
		t.Errorf("errors were cached: %+v", st)
	}
	if st.Misses != 3 {
		t.Errorf("misses = %d, want 3", st.Misses)
	}

	// The canceled query must still be answerable (and cacheable) afterwards.
	if _, err := ce.Rank(context.Background(), Query{Metric: MetricPRFe, Alpha: 0.5}); err != nil {
		t.Fatal(err)
	}
	if ce.Stats().Entries != 1 {
		t.Error("valid retry after cancellation did not cache")
	}
}

// TestCacheEviction: the entry bound holds under arbitrary inserts and the
// eviction counter accounts for the overflow.
func TestCacheEviction(t *testing.T) {
	c := NewCache(32)
	for i := 0; i < 500; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	st := c.Stats()
	if st.Entries > st.Capacity {
		t.Errorf("entries %d exceed capacity %d", st.Entries, st.Capacity)
	}
	if st.Capacity != 32 {
		t.Errorf("capacity = %d, want 32", st.Capacity)
	}
	if st.Evictions != int64(500-st.Entries) {
		t.Errorf("evictions %d + entries %d ≠ inserts 500", st.Evictions, st.Entries)
	}
	// Refreshing an existing key must not grow the cache.
	c2 := NewCache(16)
	c2.Put("k", 1)
	c2.Put("k", 2)
	if c2.Len() != 1 {
		t.Errorf("refresh grew the cache to %d entries", c2.Len())
	}
	if v, ok := c2.Get("k"); !ok || v.(int) != 2 {
		t.Errorf("refresh did not update the value: %v %v", v, ok)
	}
}

// TestCacheLRUOrder pins the recency policy on a single-entry-per-shard
// cache: with capacity 1 per shard, a re-used key must survive an insert
// that lands on its shard only if it was refreshed more recently.
func TestCacheLRUOrder(t *testing.T) {
	c := NewCache(cacheShardCount) // one entry per shard
	// Find two keys in the same shard.
	base := "a"
	var same string
	for i := 0; ; i++ {
		k := fmt.Sprintf("b%d", i)
		if c.shard(k) == c.shard(base) {
			same = k
			break
		}
	}
	c.Put(base, 1)
	c.Put(same, 2) // evicts base (LRU in a 1-slot shard)
	if _, ok := c.Get(base); ok {
		t.Error("LRU entry survived over-capacity insert")
	}
	if v, ok := c.Get(same); !ok || v.(int) != 2 {
		t.Error("most-recent entry was evicted")
	}
}

// TestCachedEngineHitIsolation certifies the aliasing fix: a caller that
// mutates the slices of a cache hit must not corrupt what later hits see.
func TestCachedEngineHitIsolation(t *testing.T) {
	ctx := context.Background()
	e := New(core.Prepare(datagen.IIPLike(64, 7)))
	ce := NewCached(e, 0)
	queries := []Query{
		{Metric: MetricPRFe, Alpha: 0.8, Output: OutputRanking},
		{Metric: MetricPTh, H: 5},
		{Metric: MetricPRFe, Alpha: 0.6},
	}
	for i, q := range queries {
		want, err := e.Rank(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ce.Rank(ctx, q); err != nil { // fill
			t.Fatal(err)
		}
		victim, err := ce.Rank(ctx, q) // hit
		if err != nil {
			t.Fatal(err)
		}
		// Vandalize every slice the caller got back.
		for j := range victim.Ranking {
			victim.Ranking[j] = -1
		}
		for j := range victim.Values {
			victim.Values[j] = -12345
		}
		for j := range victim.Complex {
			victim.Complex[j] = complex(-1, -1)
		}
		after, err := ce.Rank(ctx, q) // next hit must be unaffected
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(after, want) {
			t.Errorf("query %d: mutating a hit corrupted the cache", i)
		}
	}

	// Same for batches.
	gq := Query{Metric: MetricPRFe, Alphas: []float64{0.2, 0.7}, Output: OutputRanking}
	wantGrid, err := e.RankBatch(ctx, gq)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ce.RankBatch(ctx, gq); err != nil {
		t.Fatal(err)
	}
	victim, err := ce.RankBatch(ctx, gq)
	if err != nil {
		t.Fatal(err)
	}
	for i := range victim {
		for j := range victim[i].Ranking {
			victim[i].Ranking[j] = -1
		}
	}
	after, err := ce.RankBatch(ctx, gq)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, wantGrid) {
		t.Error("mutating a batch hit corrupted the cache")
	}
}

// countingRanker wraps a Ranker and counts (slowed-down) batch-ranking
// evaluations, so single-flight tests can certify "exactly one evaluation".
type countingRanker struct {
	Ranker
	evals atomic.Int64
	delay time.Duration
}

func (c *countingRanker) QueryRankPRFeBatch(ctx context.Context, alphas []float64) ([]pdb.Ranking, error) {
	c.evals.Add(1)
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	return c.Ranker.QueryRankPRFeBatch(ctx, alphas)
}

func (c *countingRanker) QueryRankPRFe(ctx context.Context, alpha float64) (pdb.Ranking, error) {
	c.evals.Add(1)
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	return c.Ranker.QueryRankPRFe(ctx, alpha)
}

// TestCachedEngineSingleFlight hammers one cold key from many goroutines
// (run with -race): the backend must evaluate exactly once, and every
// waiter must get a result DeepEqual to the leader's.
func TestCachedEngineSingleFlight(t *testing.T) {
	cr := &countingRanker{Ranker: core.Prepare(datagen.IIPLike(256, 13)), delay: 5 * time.Millisecond}
	ce := NewCached(New(cr), 0)
	q := Query{Metric: MetricPRFe, Alphas: []float64{0.1, 0.5, 0.9}, Output: OutputRanking}

	const workers = 24
	results := make([][]Result, workers)
	errs := make([]error, workers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			results[w], errs[w] = ce.RankBatch(context.Background(), q)
		}()
	}
	close(start)
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if !reflect.DeepEqual(results[w], results[0]) {
			t.Fatalf("worker %d: answer diverged from the flight leader's", w)
		}
	}
	if got := cr.evals.Load(); got != 1 {
		t.Errorf("backend evaluated %d times for one cold storm, want exactly 1", got)
	}
	flights, shared := ce.FlightStats()
	if flights != 1 {
		t.Errorf("flights = %d, want 1", flights)
	}
	// Everyone but the leader either shared the flight or hit the cache
	// after the flight completed.
	st := ce.Stats()
	if shared+st.Hits != workers-1 {
		t.Errorf("shared %d + hits %d ≠ %d waiters", shared, st.Hits, workers-1)
	}
}

// TestFlightGroupLeaderCancel: a leader cut off by its own context must not
// poison waiters — a live waiter retries and becomes the next leader.
func TestFlightGroupLeaderCancel(t *testing.T) {
	var g FlightGroup
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, err := g.Do(leaderCtx, "k", func() (any, error) {
			close(leaderIn)
			<-leaderCtx.Done()
			return nil, leaderCtx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader error = %v, want context.Canceled", err)
		}
	}()
	<-leaderIn

	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		v, err := g.Do(context.Background(), "k", func() (any, error) { return 42, nil })
		if err != nil || v.(int) != 42 {
			t.Errorf("waiter got (%v, %v), want (42, nil)", v, err)
		}
	}()
	// Give the waiter a moment to join the leader's flight, then cancel.
	time.Sleep(10 * time.Millisecond)
	cancelLeader()
	<-leaderDone
	<-waiterDone

	// A waiter whose own context dies while waiting gets its own ctx error.
	blocked := make(chan struct{})
	go func() {
		_, _ = g.Do(context.Background(), "k2", func() (any, error) {
			close(blocked)
			select {} // never returns; the test only needs the waiter path
		})
	}()
	<-blocked
	wctx, wcancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer wcancel()
	if _, err := g.Do(wctx, "k2", func() (any, error) { return nil, nil }); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired waiter error = %v, want deadline exceeded", err)
	}
}

// TestCachedEngineConcurrent hammers one CachedEngine with identical and
// distinct queries from many goroutines (run with -race): every answer must
// equal the serial reference.
func TestCachedEngineConcurrent(t *testing.T) {
	ctx := context.Background()
	e := New(core.Prepare(datagen.IIPLike(256, 5)))
	// A small capacity forces concurrent eviction alongside hits.
	ce := NewCached(e, 8)
	queries := []Query{
		{Metric: MetricPRFe, Alpha: 0.9, Output: OutputTopK, K: 10},
		{Metric: MetricPRFe, Alpha: 0.5, Output: OutputRanking},
		{Metric: MetricPTh, H: 8},
		{Metric: MetricERank, Output: OutputRanking},
		{Metric: MetricPRFOmega, Weights: []float64{2, 1}},
	}
	want := make([]*Result, len(queries))
	for i, q := range queries {
		r, err := e.Rank(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	gridQ := Query{Metric: MetricPRFe, Alphas: []float64{0.1, 0.4, 0.7}, Output: OutputRanking}
	wantGrid, err := e.RankBatch(ctx, gridQ)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				qi := (i + w) % len(queries)
				got, err := ce.Rank(ctx, queries[qi])
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want[qi]) {
					errs <- fmt.Errorf("worker %d: query %d diverged under concurrency", w, qi)
					return
				}
				if i%5 == 0 {
					gotGrid, err := ce.RankBatch(ctx, gridQ)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(gotGrid, wantGrid) {
						errs <- fmt.Errorf("worker %d: batch diverged under concurrency", w)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
