// Package engine is the unified, backend-agnostic query layer of the PRF
// ranking system — the code realization of the paper's central claim that
// one parameterized ranking function family (PRF, PRFω(h), PRFe(α))
// subsumes the zoo of earlier semantics, across every correlation model the
// paper covers.
//
// The split of responsibilities:
//
//   - Ranker is the capability interface every prepared view implements:
//     core.Prepared (tuple-independent relations), andxor.PreparedTree
//     (and/xor-tree correlations), junction.PreparedNetwork (arbitrary
//     correlations via junction trees) and junction.PreparedChain (the
//     Markov-chain special case). Each backend routes a capability to its
//     fastest kernel — kinetic sweeps for monotone α grids on independent
//     data, incremental Algorithm 3 on trees, cached rank-distribution
//     folds on networks, segment trees of transfer matrices on chains — and
//     validates inputs into errors instead of panicking.
//   - Query declares what to compute (a Metric plus its parameters) and in
//     what form (Output: values, a full ranking, or a top-k answer).
//   - Engine executes a Query against any Ranker: Rank for a single
//     evaluation, RankBatch for an α grid. Both take a context.Context and
//     abort promptly on cancellation — the fan-outs in internal/par check
//     the context between jobs, and serial sweeps check between grid
//     points.
//
// Engine answers are certified bit-for-bit equal to the legacy flat
// functions (see ranker_conformance_test.go at the repository root): the
// engine adds dispatch and validation, never arithmetic.
package engine

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/pdb"
)

// Ranker is the backend capability interface of the unified engine. All
// four prepared views satisfy it. Values returned by the Query* methods are
// indexed by TupleID; rankings are best-first.
//
// The ranking convention is the backend's native one — log-domain
// magnitudes on independent data, |Υ| on correlated backends — so rankings
// agree bit-for-bit with the legacy per-backend functions.
type Ranker interface {
	// Len returns the number of ranked tuples.
	Len() int
	// QueryPRFe evaluates Υ_α(t) for every tuple.
	QueryPRFe(ctx context.Context, alpha complex128) ([]complex128, error)
	// QueryPRFeBatch evaluates Υ_α(t) for every tuple at every α of a grid.
	QueryPRFeBatch(ctx context.Context, alphas []complex128) ([][]complex128, error)
	// QueryRankPRFe returns the full PRFe(α) ranking for real α.
	QueryRankPRFe(ctx context.Context, alpha float64) (pdb.Ranking, error)
	// QueryRankPRFeBatch returns the full PRFe ranking at every α of a grid,
	// using the fastest batch kernel the backend has.
	QueryRankPRFeBatch(ctx context.Context, alphas []float64) ([]pdb.Ranking, error)
	// QueryTopKPRFeBatch returns the PRFe top-k at every α of a grid.
	QueryTopKPRFeBatch(ctx context.Context, alphas []float64, k int) ([]pdb.Ranking, error)
	// QueryPRFeCombo evaluates the linear combination Σ_l u_l·Υ_{α_l}(t).
	QueryPRFeCombo(ctx context.Context, us, alphas []complex128) ([]complex128, error)
	// QueryPRF evaluates Υω(t) for an arbitrary weight function.
	QueryPRF(ctx context.Context, omega func(t pdb.Tuple, rank int) float64) ([]float64, error)
	// QueryPRFOmega evaluates the PRFω(h) family: w[j] weighs rank j+1,
	// ranks beyond len(w) weigh zero.
	QueryPRFOmega(ctx context.Context, w []float64) ([]float64, error)
	// QueryPTh evaluates Pr(r(t) ≤ h), the PT(h)/Global-top-k function.
	QueryPTh(ctx context.Context, h int) ([]float64, error)
	// QueryERank returns E[r(t)] per tuple (lower is better).
	QueryERank(ctx context.Context) ([]float64, error)
	// QueryExpectedRank returns the consensus expected rank per tuple
	// (Li/Deshpande convention: an absent tuple takes rank |pw|+1; lower is
	// better).
	QueryExpectedRank(ctx context.Context) ([]float64, error)
	// QueryMedianRank returns the consensus median rank per tuple: the
	// smallest j with Pr(r(t) ≤ j) ≥ 1/2, or the sentinel n+1 when the
	// tuple is absent from a majority of worlds (lower is better).
	QueryMedianRank(ctx context.Context) ([]float64, error)
}

// Metric selects the ranking function a Query evaluates.
type Metric uint8

const (
	// MetricPRFe is PRFe(α): Υ_α(t) = Σ_j Pr(r(t)=j)·α^j (Section 4.3).
	MetricPRFe Metric = iota + 1
	// MetricPRFOmega is PRFω(h): a weight vector over the first h ranks.
	MetricPRFOmega
	// MetricPTh is PT(h)/Global-top-k: Pr(r(t) ≤ h).
	MetricPTh
	// MetricPRF is the general Υω for an arbitrary weight function.
	MetricPRF
	// MetricERank is the expected rank E[r(t)] (lower is better; rankings
	// returned for it are already best-first).
	MetricERank
	// MetricPRFeCombo is a linear combination Σ_l u_l·Υ_{α_l}(t) — the
	// Section 5.1 approximation backend for arbitrary PRFω functions.
	MetricPRFeCombo
	// MetricGlobalTopk is the Global-Topk semantics of Zhang/Chomicki:
	// value(t) = Pr(t ∈ top-k(pw)) = Pr(r(t) ≤ K), and the answer is the K
	// tuples maximizing that probability. Query.K is both the world top-k
	// depth and the answer size, and must be ≥ 1 for every output form.
	MetricGlobalTopk
	// MetricExpectedRank is the consensus expected rank of Li/Deshpande
	// ("Consensus Answers"): E[r_pw(t)] where an absent tuple takes rank
	// |pw|+1. It differs from MetricERank (the Cormode convention, absent →
	// |pw|) by exactly Pr(t absent). Lower is better; rankings are
	// best-first.
	MetricExpectedRank
	// MetricMedianRank is the consensus median rank: the smallest j with
	// Pr(r_pw(t) ≤ j) ≥ 1/2 under the absent-→-∞ convention, with the
	// finite sentinel n+1 when no such j exists. Lower is better; rankings
	// are best-first.
	MetricMedianRank
)

func (m Metric) String() string {
	switch m {
	case MetricPRFe:
		return "PRFe"
	case MetricPRFOmega:
		return "PRFω"
	case MetricPTh:
		return "PT(h)"
	case MetricPRF:
		return "PRF"
	case MetricERank:
		return "E-Rank"
	case MetricPRFeCombo:
		return "PRFe-combo"
	case MetricGlobalTopk:
		return "Global-Topk"
	case MetricExpectedRank:
		return "Expected-Rank"
	case MetricMedianRank:
		return "Median-Rank"
	default:
		return fmt.Sprintf("Metric(%d)", uint8(m))
	}
}

// Output selects the answer form of a Query.
type Output uint8

const (
	// OutputValues returns the per-tuple values (Result.Values or
	// Result.Complex, indexed by TupleID) without ranking them.
	OutputValues Output = iota
	// OutputRanking returns the full best-first ranking.
	OutputRanking
	// OutputTopK returns the first K entries of the ranking.
	OutputTopK
)

func (o Output) String() string {
	switch o {
	case OutputValues:
		return "values"
	case OutputRanking:
		return "ranking"
	case OutputTopK:
		return "top-k"
	default:
		return fmt.Sprintf("Output(%d)", uint8(o))
	}
}

// Query declares one ranking computation. Zero values of the fields a
// metric does not use are ignored.
type Query struct {
	// Metric selects the ranking function. Required.
	Metric Metric
	// Output selects the answer form; the zero value is OutputValues.
	Output Output

	// Alpha is the PRFe parameter for single evaluations (Engine.Rank).
	Alpha float64
	// Alphas is the α grid for batch evaluations (Engine.RankBatch).
	// Strictly increasing grids inside (0, 1] ride the fastest batch kernel
	// a backend has (the kinetic sweep on independent data).
	Alphas []float64
	// Weights is the PRFω(h) weight vector: Weights[j] weighs rank j+1.
	Weights []float64
	// H is the PT(h) depth.
	H int
	// Omega is the arbitrary weight function for MetricPRF. Must be O(1)
	// per call.
	// prflint:uncacheable function values cannot be hashed or transported; CacheKey refuses Omega queries and the wire layer selects weights via Metric+Weights
	Omega func(t pdb.Tuple, rank int) float64
	// Terms are the PRFe-combination terms for MetricPRFeCombo.
	Terms []core.ExpTerm
	// K is the answer size for OutputTopK.
	K int
	// Parallelism caps this query's worker fan-out and, on backends that
	// support it, switches single evaluations onto sharded parallel kernels
	// with that many shards (core.Prepared's sharded evaluation layer). The
	// zero value keeps the backend's default dispatch: the exact legacy
	// scalar kernels, GOMAXPROCS-wide batch fan-out. Sharded answers agree
	// with the scalar ones bit-for-bit or within 1e-12 (see
	// core.PRFeSharded and friends); results are cached per Parallelism
	// value so the certification holds per knob setting. Negative values
	// are rejected.
	Parallelism int
}

// Result is the answer to one Query (one grid point, for batches).
type Result struct {
	// Metric echoes the query.
	Metric Metric
	// Alpha is the α this result answers (meaningful for MetricPRFe; in a
	// batch each Result carries its grid point).
	Alpha float64
	// Values holds per-tuple real values, indexed by TupleID — set for
	// PRF, PRFω, PT(h) and E-Rank queries with OutputValues.
	Values []float64
	// Complex holds per-tuple complex Υ values, indexed by TupleID — set
	// for PRFe and PRFe-combo queries with OutputValues.
	Complex []complex128
	// Ranking is the best-first answer for OutputRanking and OutputTopK.
	Ranking pdb.Ranking
}

// Engine executes declarative ranking queries against one backend. It is
// stateless beyond the backend reference and safe for concurrent use
// (prepared views are safe for concurrent queries).
type Engine struct {
	r Ranker
}

// New wraps a backend in an Engine.
func New(r Ranker) *Engine { return &Engine{r: r} }

// Ranker returns the wrapped backend.
func (e *Engine) Ranker() Ranker { return e.r }

// Validation errors shared by Rank and RankBatch.
var (
	errNoMetric   = errors.New("engine: query has no Metric")
	errNilRanker  = errors.New("engine: nil Ranker backend")
	errBatchAlpha = errors.New("engine: RankBatch needs a non-empty Alphas grid (use Rank for single-α queries)")
)

// validateCommon checks the metric-specific parameters.
func (q *Query) validateCommon() error {
	switch q.Metric {
	case MetricPRFe:
		// α itself is checked by the backend (single vs grid differs).
	case MetricPRFOmega:
		if err := pdb.CheckWeights(q.Weights); err != nil {
			return err
		}
	case MetricPTh:
		if err := pdb.CheckDepth(q.H); err != nil {
			return err
		}
	case MetricPRF:
		if q.Omega == nil {
			return errors.New("engine: MetricPRF needs a non-nil Omega weight function")
		}
	case MetricERank:
		// no parameters
	case MetricPRFeCombo:
		us, alphas := splitTerms(q.Terms)
		if err := pdb.CheckCombo(us, alphas); err != nil {
			return err
		}
	case MetricGlobalTopk:
		// K is the world top-k depth for every output form, not just the
		// answer size, so the OutputTopK-only CheckTopK below is not enough.
		if q.K < 1 {
			return fmt.Errorf("engine: MetricGlobalTopk needs K ≥ 1 (got %d)", q.K)
		}
	case MetricExpectedRank, MetricMedianRank:
		// no parameters
	case 0:
		return errNoMetric
	default:
		return fmt.Errorf("engine: unknown metric %v", q.Metric)
	}
	if q.Output == OutputTopK {
		if err := pdb.CheckTopK(q.K); err != nil {
			return err
		}
	}
	if q.Parallelism < 0 {
		return fmt.Errorf("engine: parallelism %d is negative", q.Parallelism)
	}
	return nil
}

// queryCtx applies the query's execution knobs to the context: a positive
// Parallelism becomes the par.WithLimit cap every backend fan-out and
// sharded kernel below reads.
func (q *Query) queryCtx(ctx context.Context) context.Context {
	if q.Parallelism > 0 {
		return par.WithLimit(ctx, q.Parallelism)
	}
	return ctx
}

// splitTerms converts the ExpTerm form into the parallel slices the
// backends take, preserving term order (summation order is part of the
// bit-for-bit contract).
func splitTerms(terms []core.ExpTerm) (us, alphas []complex128) {
	us = make([]complex128, len(terms))
	alphas = make([]complex128, len(terms))
	for i, t := range terms {
		us[i], alphas[i] = t.U, t.Alpha
	}
	return us, alphas
}

// Rank executes a single-evaluation query. The context is honored by every
// backend: cancellation surfaces as ctx.Err() without partial results.
func (e *Engine) Rank(ctx context.Context, q Query) (*Result, error) {
	if e == nil || e.r == nil {
		return nil, errNilRanker
	}
	if err := q.validateCommon(); err != nil {
		return nil, err
	}
	if len(q.Alphas) > 0 {
		// A grid on a single-evaluation call would silently answer at the
		// zero-value Alpha — reject instead of guessing.
		return nil, errors.New("engine: Rank got an Alphas grid; use RankBatch for grids (or set Alpha for a single evaluation)")
	}
	ctx = q.queryCtx(ctx)
	res := &Result{Metric: q.Metric, Alpha: q.Alpha}

	switch q.Metric {
	case MetricPRFe:
		if q.Output == OutputValues {
			vals, err := e.r.QueryPRFe(ctx, complex(q.Alpha, 0))
			if err != nil {
				return nil, err
			}
			res.Complex = vals
			return res, nil
		}
		rk, err := e.r.QueryRankPRFe(ctx, q.Alpha)
		if err != nil {
			return nil, err
		}
		res.Ranking = finishRanking(rk, q)
		return res, nil

	case MetricPRFeCombo:
		us, alphas := splitTerms(q.Terms)
		vals, err := e.r.QueryPRFeCombo(ctx, us, alphas)
		if err != nil {
			return nil, err
		}
		if q.Output == OutputValues {
			res.Complex = vals
			return res, nil
		}
		// Combinations approximate real-valued PRFω functions, so ranking
		// goes by real part (the learn.RankWithCombo convention); magnitude
		// would invert the sign of negatively-weighted tuples.
		res.Ranking = finishRanking(pdb.RankByValue(core.RealParts(vals)), q)
		return res, nil
	}

	// The real-valued metrics share one shape: evaluate, then rank.
	vals, err := e.realValues(ctx, q)
	if err != nil {
		return nil, err
	}
	if q.Output == OutputValues {
		res.Values = vals
		return res, nil
	}
	res.Ranking = finishRanking(e.rankRealValues(q.Metric, vals), q)
	return res, nil
}

// realValues evaluates the real-valued metrics.
func (e *Engine) realValues(ctx context.Context, q Query) ([]float64, error) {
	switch q.Metric {
	case MetricPRFOmega:
		return e.r.QueryPRFOmega(ctx, q.Weights)
	case MetricPTh:
		return e.r.QueryPTh(ctx, q.H)
	case MetricPRF:
		return e.r.QueryPRF(ctx, q.Omega)
	case MetricERank:
		return e.r.QueryERank(ctx)
	case MetricGlobalTopk:
		// Pr(t ∈ top-k(pw)) is exactly PT(K) on every correlation model, so
		// Global-Topk rides each backend's fastest PT(h) kernel.
		return e.r.QueryPTh(ctx, q.K)
	case MetricExpectedRank:
		return e.r.QueryExpectedRank(ctx)
	case MetricMedianRank:
		return e.r.QueryMedianRank(ctx)
	default:
		return nil, fmt.Errorf("engine: unknown metric %v", q.Metric)
	}
}

// rankRealValues turns per-tuple values into a best-first ranking. The rank
// metrics (E-Rank, Expected-Rank, Median-Rank) are ascending-is-better and
// get negated, matching baselines.ERankRanking bit-for-bit; everything else
// ranks by non-increasing value with ties broken by ID.
func (e *Engine) rankRealValues(m Metric, vals []float64) pdb.Ranking {
	if m == MetricERank || m == MetricExpectedRank || m == MetricMedianRank {
		neg := make([]float64, len(vals))
		for i, v := range vals {
			neg[i] = -v
		}
		return pdb.RankByValue(neg)
	}
	return pdb.RankByValue(vals)
}

func finishRanking(r pdb.Ranking, q Query) pdb.Ranking {
	if q.Output == OutputTopK {
		return r.TopK(q.K)
	}
	return r
}

// DefaultStreamChunk is the grid-chunk size RankBatchStream uses when the
// caller passes a non-positive one: small enough that the first results
// reach the consumer promptly, large enough that monotone grids still
// amortize the kinetic sweep's initial sort across several points.
const DefaultStreamChunk = 8

// RankBatchStream evaluates the same α grid as RankBatch but emits results
// incrementally instead of materializing the whole batch: the grid is split
// into consecutive chunks of up to chunk points, each chunk runs through
// the exact batch kernels RankBatch uses, and emit is called once per chunk
// with that chunk's results, in grid order. Every emitted Result is
// identical to the one RankBatch would return at the same grid point (the
// batch kernels are certified per-α against the re-sort reference, so chunk
// boundaries never change answers). The context is honored between chunks
// and inside the kernels; an emit error aborts the stream and is returned
// unchanged. The serving layer's streamed /rankbatch is built on this.
func (e *Engine) RankBatchStream(ctx context.Context, q Query, chunk int, emit func(rs []Result) error) error {
	if e == nil || e.r == nil {
		return errNilRanker
	}
	if q.Metric != MetricPRFe {
		return fmt.Errorf("engine: RankBatchStream supports MetricPRFe α grids; %v has no grid axis", q.Metric)
	}
	if len(q.Alphas) == 0 {
		return errBatchAlpha
	}
	if chunk <= 0 {
		chunk = DefaultStreamChunk
	}
	for start := 0; start < len(q.Alphas); start += chunk {
		end := start + chunk
		if end > len(q.Alphas) {
			end = len(q.Alphas)
		}
		sub := q
		sub.Alphas = q.Alphas[start:end]
		rs, err := e.RankBatch(ctx, sub)
		if err != nil {
			return err
		}
		if err := emit(rs); err != nil {
			return err
		}
	}
	return nil
}

// RankBatch executes a PRFe query at every point of the q.Alphas grid —
// the α-sweep workhorse. out[a] answers grid point a exactly as Rank would
// with Alpha = q.Alphas[a]; monotone grids in (0, 1] additionally ride the
// backend's fastest sweep kernel. Only MetricPRFe is grid-parameterized;
// other metrics have no α axis to batch over.
func (e *Engine) RankBatch(ctx context.Context, q Query) ([]Result, error) {
	if e == nil || e.r == nil {
		return nil, errNilRanker
	}
	if q.Metric != MetricPRFe {
		return nil, fmt.Errorf("engine: RankBatch supports MetricPRFe α grids; %v has no grid axis", q.Metric)
	}
	if len(q.Alphas) == 0 {
		return nil, errBatchAlpha
	}
	if q.Output == OutputTopK {
		if err := pdb.CheckTopK(q.K); err != nil {
			return nil, err
		}
	}
	if q.Parallelism < 0 {
		return nil, fmt.Errorf("engine: parallelism %d is negative", q.Parallelism)
	}
	ctx = q.queryCtx(ctx)
	out := make([]Result, len(q.Alphas))
	for a, alpha := range q.Alphas {
		out[a] = Result{Metric: q.Metric, Alpha: alpha}
	}
	switch q.Output {
	case OutputValues:
		grid := make([]complex128, len(q.Alphas))
		for a, alpha := range q.Alphas {
			grid[a] = complex(alpha, 0)
		}
		rows, err := e.r.QueryPRFeBatch(ctx, grid)
		if err != nil {
			return nil, err
		}
		for a := range out {
			out[a].Complex = rows[a]
		}
	case OutputRanking:
		rks, err := e.r.QueryRankPRFeBatch(ctx, q.Alphas)
		if err != nil {
			return nil, err
		}
		for a := range out {
			out[a].Ranking = rks[a]
		}
	case OutputTopK:
		rks, err := e.r.QueryTopKPRFeBatch(ctx, q.Alphas, q.K)
		if err != nil {
			return nil, err
		}
		for a := range out {
			out[a].Ranking = rks[a]
		}
	default:
		return nil, fmt.Errorf("engine: unknown output mode %v", q.Output)
	}
	return out, nil
}
